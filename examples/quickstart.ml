(* Quickstart: run a bundled benchmark under every applicable technique and
   compare against sequential execution.

     dune exec examples/quickstart.exe
*)

module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads

let () =
  let wl = Wl.Registry.find "CG" in
  Printf.printf "workload: %s (%s, function %s)\n\n" wl.Wl.Workload.name
    wl.Wl.Workload.suite wl.Wl.Workload.func;
  List.iter
    (fun technique ->
      match Cx.applicable technique wl with
      | Error reason ->
          Printf.printf "%-12s inapplicable: %s\n" (Cx.technique_name technique) reason
      | Ok () ->
          let o = Cx.run_request @@ Cx.Request.make ~technique ~threads:24 wl in
          Printf.printf "%-12s %6.2fx speedup on 24 simulated cores (verified: %b)\n"
            (Cx.technique_name technique) o.Cx.speedup o.Cx.verified)
    [ Cx.Barrier; Cx.Doacross; Cx.Dswp; Cx.Domore; Cx.Speccross ];
  print_newline ();
  (* The same loop nest on the conflict-free sparsity used for the
     speculative experiments. *)
  let o = Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Ref_spec ~technique:Cx.Speccross ~threads:24 wl in
  Printf.printf
    "speccross on the banded (conflict-free) input: %.2fx — barriers were pure waste\n"
    o.Cx.speedup;
  print_newline ();
  (* The same entry point runs on real OCaml 5 domains: select the native
     backend.  Costs come back as wall-clock time instead of simulated
     cycles, and the run is watchdog-bounded — a failure (or an armed
     --inject fault) cancels the cohort and degrades to a weaker technique
     instead of hanging. *)
  let n =
    Cx.run_request @@ Cx.Request.make
      ~backend:(`Native { Cx.native_defaults with Cx.deadline_ms = Some 60_000. })
      ~input:Wl.Workload.Train ~technique:Cx.Domore ~threads:2 wl
  in
  Printf.printf "domore on 2 real domains: %s vs sequential %s (verified: %b)\n"
    (Cx.cost_to_string n.Cx.cost)
    (Cx.cost_to_string n.Cx.seq_cost)
    n.Cx.verified;
  List.iter
    (fun (s : Cx.degrade_step) ->
      Printf.printf "  degraded %s -> %s: %s\n"
        (Cx.technique_name s.Cx.d_from)
        (Cx.technique_name s.Cx.d_to)
        s.Cx.d_reason)
    n.Cx.degraded
