(* A particle-system frame loop (the FLUIDANIMATE shape): several
   differently-shaped invocations per frame, including irregular
   scatter-updates onto neighbours.  Demonstrates composing within-epoch
   DOMORE scheduling with speculative barriers (Figure 5.6's winning
   configuration) against plain LOCALWRITE + barriers.

     dune exec examples/particle_system.exe
*)

module Ir = Xinv_ir
module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv
module Sp = Xinv_speccross
module Par = Xinv_parallel

let () =
  let wl = Wl.Registry.find "FLUIDANIMATE-2" in
  let program = wl.Wl.Workload.program Wl.Workload.Ref in
  Printf.printf "frame loop: %d invocations per frame, %d frames\n"
    (List.length program.Ir.Program.inners)
    program.Ir.Program.outer_trip;
  List.iter
    (fun (il : Ir.Program.inner) ->
      Printf.printf "  %-24s %s\n" il.Ir.Program.ilabel
        (Par.Intra.name (Wl.Workload.technique_of wl il.Ir.Program.ilabel)))
    program.Ir.Program.inners;
  print_newline ();

  (* Why classic DOMORE cannot run ahead here. *)
  (match Cx.applicable Cx.Domore wl with
  | Error reason -> Printf.printf "scheduler-thread DOMORE: %s\n\n" reason
  | Ok () -> ());

  (* Strategy shoot-out at 16 cores. *)
  let threads = 16 in
  let baseline = (Cx.run_request @@ Cx.Request.make ~technique:Cx.Barrier ~threads wl).Cx.speedup in
  Printf.printf "LOCALWRITE + barriers           : %5.2fx\n" baseline;
  let spec = (Cx.run_request @@ Cx.Request.make ~technique:Cx.Speccross ~threads wl).Cx.speedup in
  Printf.printf "LOCALWRITE + speculative        : %5.2fx\n" spec;

  (* Within-epoch duplicated DOMORE + speculative barriers. *)
  let seq_env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
  let seq_cost = Ir.Seq_interp.run program seq_env in
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
  let prof =
    Sp.Profiler.profile
      (wl.Wl.Workload.program Wl.Workload.Train)
      (wl.Wl.Workload.fresh_env Wl.Workload.Train)
  in
  let cfg =
    {
      (Sp.Runtime.default_config ~workers:(threads - 1)) with
      Sp.Runtime.sig_kind =
        Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
      spec_distance = Stdlib.max (threads - 1) prof.Sp.Profiler.spec_distance;
      mode_of =
        (fun label ->
          match Wl.Workload.technique_of wl label with
          | Par.Intra.Localwrite ->
              Sp.Runtime.M_domore Xinv_domore.Policy.Mem_partition
          | _ -> Sp.Runtime.M_doall);
    }
  in
  let r = Sp.Runtime.run ~config:cfg program env in
  assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
  Printf.printf "within-epoch DOMORE + speculative: %5.2fx (%d misspeculations)\n"
    (Par.Run.speedup ~seq_cost r)
    r.Par.Run.misspecs
