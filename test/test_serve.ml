(* Tests for the serve subsystem: wire-codec round-trips and fuzzing
   (truncation, bit flips, garbage), the fairness queue, the daemon's
   scheduling contract (admission control, deadlines, cancellation, one
   shared pool across a thousand runs), a differential harness proving a
   submitted run ≡ the in-process [Crossinv.run_request] for every
   registry workload on both backends, and a two-client socket
   integration test against a live daemon. *)

module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads
module Wire = Xinv_serve.Wire
module Proto = Xinv_serve.Protocol
module SReq = Xinv_serve.Request
module Fair = Xinv_serve.Fair
module Server = Xinv_serve.Server
module SClient = Xinv_serve.Client

let tmpdir () =
  let d = Filename.temp_file "xinvserve" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with _ -> ()
  end

(* ---------- wire primitives ---------- *)

let test_wire_prims () =
  let w = Wire.writer () in
  Wire.put_u8 w 0;
  Wire.put_u8 w 255;
  Wire.put_u32 w 0;
  Wire.put_u32 w 0x7FFFFFFF;
  Wire.put_i64 w (-123456789);
  Wire.put_f64 w (-3.25);
  Wire.put_f64 w infinity;
  Wire.put_bool w true;
  Wire.put_bool w false;
  Wire.put_string w "";
  Wire.put_string w "nul\000bytes\255kept";
  Wire.put_opt w Wire.put_u32 None;
  Wire.put_opt w Wire.put_u32 (Some 7);
  Wire.put_list w Wire.put_string [ "a"; ""; "bc" ];
  let r = Wire.reader (Wire.contents w) in
  Alcotest.(check int) "u8 0" 0 (Wire.get_u8 r);
  Alcotest.(check int) "u8 255" 255 (Wire.get_u8 r);
  Alcotest.(check int) "u32 0" 0 (Wire.get_u32 r);
  Alcotest.(check int) "u32 max" 0x7FFFFFFF (Wire.get_u32 r);
  Alcotest.(check int) "i64 negative" (-123456789) (Wire.get_i64 r);
  Alcotest.(check (float 0.)) "f64" (-3.25) (Wire.get_f64 r);
  Alcotest.(check bool) "f64 inf" true (Wire.get_f64 r = infinity);
  Alcotest.(check bool) "bool t" true (Wire.get_bool r);
  Alcotest.(check bool) "bool f" false (Wire.get_bool r);
  Alcotest.(check string) "empty string" "" (Wire.get_string r);
  Alcotest.(check string) "binary string" "nul\000bytes\255kept"
    (Wire.get_string r);
  Alcotest.(check (option int)) "opt none" None (Wire.get_opt r Wire.get_u32);
  Alcotest.(check (option int)) "opt some" (Some 7)
    (Wire.get_opt r Wire.get_u32);
  Alcotest.(check (list string)) "list" [ "a"; ""; "bc" ]
    (Wire.get_list r Wire.get_string);
  Alcotest.(check bool) "reader done" true (Wire.reader_done r);
  (match Wire.get_u8 r with
  | _ -> Alcotest.fail "read past end must raise"
  | exception Wire.Error Wire.Truncated -> ());
  (* a bool byte that is neither 0 nor 1 is a domain error *)
  let w2 = Wire.writer () in
  Wire.put_u8 w2 2;
  match Wire.get_bool (Wire.reader (Wire.contents w2)) with
  | _ -> Alcotest.fail "bad bool byte must raise"
  | exception Wire.Error (Wire.Bad_payload _) -> ()

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let s = Wire.encode_frame ~tag:9 payload in
      let tag, back = Wire.decode_frame s in
      Alcotest.(check int) "tag" 9 tag;
      Alcotest.(check string) "payload" payload back)
    [ ""; "x"; String.make 1000 '\000'; "frame\255\001" ]

(* ---------- request / protocol round-trips ---------- *)

let sample_request =
  SReq.make ~input:Wl.Workload.Train ~backend:`Native ~technique:"domore"
    ~threads:3 ~policy:`Auto ~grain:2 ~batch:16 ~sig_kind:`Bloom
    ~spec_distance:5 ~checkpoint_every:250 ~verify:false ~cache:`Ro
    ~fault:"stall@1:7" ~deadline_ms:1250.5 ~priority:`High ~tenant:"acme"
    (`Name "FDTD")

let sample_snapshot () =
  let m = Xinv_obs.Metrics.create () in
  Xinv_obs.Metrics.incr (Xinv_obs.Metrics.counter m "serve.submitted");
  Xinv_obs.Metrics.set (Xinv_obs.Metrics.gauge m "serve.queue.depth") 3.5;
  let h = Xinv_obs.Metrics.histogram m "serve.queue_wait_ms" in
  List.iter (Xinv_obs.Metrics.observe h) [ 0.5; 3.; 700. ];
  Xinv_obs.Snapshot.take m

let client_msgs () =
  [
    Proto.Run sample_request;
    Proto.Run (SReq.make (`Inline "\000\001binary\255"));
    Proto.Ping;
    Proto.Stats;
    Proto.Shutdown;
    Proto.Tune (Proto.tune_req ~budget:4 ~max_domains:2 "JACOBI");
  ]

let server_msgs () =
  [
    Proto.Outcome
      {
        Proto.o_workload = "FDTD";
        o_technique = "barrier";
        o_cost_kind = `Wall_ns;
        o_cost = 123456.;
        o_seq_cost = 654321.;
        o_speedup = 5.3;
        o_verified = true;
        o_mismatches = 0;
        o_degraded = [ ("domore", "barrier", "stall") ];
        o_analysis_ns = 999.;
        o_cache_hits = 2;
        o_cache_misses = 1;
        o_policy_source = "cached";
        o_tasks = 4096;
        o_queue_wait_ns = 1.5e6;
      };
    Proto.Rejected (Proto.Queue_full 1024);
    Proto.Rejected (Proto.Unknown_workload "NOPE");
    Proto.Rejected (Proto.Bad_request "bad");
    Proto.Rejected Proto.Shutting_down;
    Proto.Rejected Proto.Deadline_exceeded;
    Proto.Rejected Proto.Cancelled;
    Proto.Failed "Exception: boom";
    Proto.Pong
      {
        Proto.p_uptime_ns = 1e9;
        p_pool_domains = 2;
        p_pool_creates = 1;
        p_queued = 7;
        p_served = 41;
      };
    Proto.Stats_reply (sample_snapshot ());
    Proto.Tune_reply
      {
        Proto.r_policy_key = "native/domore/4";
        r_wall_ns = 5e6;
        r_seq_wall_ns = 2e7;
        r_trials = 9;
        r_source = "searched";
      };
    Proto.Shutdown_ack { served = 1000 };
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun m ->
      let back = Proto.decode_client (Proto.encode_client m) in
      Alcotest.(check bool) "client msg round-trips" true (m = back))
    (client_msgs ());
  List.iter
    (fun m ->
      let back = Proto.decode_server (Proto.encode_server m) in
      Alcotest.(check bool) "server msg round-trips" true (m = back))
    (server_msgs ())

let test_protocol_wrong_side () =
  (* a server decoder fed a client frame (and vice versa) rejects the tag *)
  (match Proto.decode_server (Proto.encode_client Proto.Ping) with
  | _ -> Alcotest.fail "server decoder must reject client tag"
  | exception Wire.Error (Wire.Bad_tag _) -> ());
  match Proto.decode_client (Proto.encode_server (Proto.Failed "x")) with
  | _ -> Alcotest.fail "client decoder must reject server tag"
  | exception Wire.Error (Wire.Bad_tag _) -> ()

(* qcheck: random requests survive the wire unchanged *)
let gen_request =
  let open QCheck.Gen in
  let str = string_size ~gen:(char_range '\000' '\255') (int_range 0 12) in
  let* workload =
    oneof [ map (fun s -> `Name s) str; map (fun s -> `Inline s) str ]
  in
  let* input =
    oneofl
      [ Wl.Workload.Train; Wl.Workload.Train_spec; Wl.Workload.Ref;
        Wl.Workload.Ref_spec ]
  in
  let* backend = oneofl [ `Sim; `Native ] in
  let* technique = str in
  let* threads = int_range 1 64 in
  let* policy = oneofl [ `Fixed; `Auto ] in
  let* grain = int_range 1 100 in
  let* batch = int_range 1 100 in
  let* sig_kind =
    oneofl [ None; Some `Range; Some `Segmented; Some `Bloom; Some `Exact ]
  in
  let* spec_distance = opt (int_range 0 50) in
  let* checkpoint_every = int_range 1 100000 in
  let* verify = bool in
  let* cache = oneofl [ `Off; `Ro; `Rw ] in
  let* fault = opt str in
  let* deadline = opt (map float_of_int (int_range 1 1000000)) in
  let* priority = oneofl [ `High; `Normal ] in
  let* tenant = str in
  return
    (SReq.make ~input ~backend ~technique ~threads ~policy ~grain ~batch
       ?sig_kind ?spec_distance ~checkpoint_every ~verify ~cache ?fault
       ?deadline_ms:deadline ~priority ~tenant workload)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"random run request survives the wire" ~count:200
    (QCheck.make gen_request)
    (fun req -> Proto.decode_client (Proto.encode_client (Proto.Run req))
                = Proto.Run req)

(* ---------- adversarial decoding ---------- *)

let test_truncation () =
  let frame = Proto.encode_client (Proto.Run sample_request) in
  for n = 0 to String.length frame - 1 do
    match Proto.decode_client (String.sub frame 0 n) with
    | _ -> Alcotest.failf "prefix of %d bytes decoded" n
    | exception Wire.Error Wire.Truncated -> ()
    | exception e ->
        Alcotest.failf "prefix of %d bytes: unexpected %s" n
          (Printexc.to_string e)
  done

let test_bitflips () =
  let frame = Proto.encode_client (Proto.Run sample_request) in
  let original = Proto.Run sample_request in
  for i = 0 to String.length frame - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b i (Char.chr (Char.code frame.[i] lxor (1 lsl bit)));
      match Proto.decode_client (Bytes.to_string b) with
      | m ->
          (* only a tag-byte flip can decode at all, and then never to the
             original message *)
          if m = original then
            Alcotest.failf "flip byte %d bit %d decoded to the original" i bit
      | exception Wire.Error _ -> ()
      | exception e ->
          Alcotest.failf "flip byte %d bit %d: unexpected %s" i bit
            (Printexc.to_string e)
    done
  done

let prop_garbage =
  QCheck.Test.make ~name:"garbage bytes raise a typed wire error" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200)
              (QCheck.Gen.char_range '\000' '\255'))
    (fun s ->
      match Proto.decode_client s with
      | _ -> s = Proto.encode_client Proto.Ping (* astronomically unlikely *)
      | exception Wire.Error _ -> true)

(* ---------- fairness queue ---------- *)

let test_fair_priority_and_rotation () =
  let q = Fair.create ~capacity:16 in
  let ok = function Ok () -> () | Error _ -> Alcotest.fail "push rejected" in
  ok (Fair.push q ~priority:`Normal ~tenant:"a" "a1");
  ok (Fair.push q ~priority:`Normal ~tenant:"a" "a2");
  ok (Fair.push q ~priority:`Normal ~tenant:"b" "b1");
  ok (Fair.push q ~priority:`High ~tenant:"c" "c1");
  ok (Fair.push q ~priority:`High ~tenant:"d" "d1");
  ok (Fair.push q ~priority:`High ~tenant:"c" "c2");
  Alcotest.(check int) "length" 6 (Fair.length q);
  (* high level drains first, round-robin c,d,c; then normal a,b,a *)
  let order = List.init 6 (fun _ -> Option.get (Fair.pop q)) in
  Alcotest.(check (list string)) "dispatch order"
    [ "c1"; "d1"; "c2"; "a1"; "b1"; "a2" ]
    order;
  Alcotest.(check (option string)) "empty" None (Fair.pop q)

let test_fair_capacity () =
  let q = Fair.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true
    (Fair.push q ~priority:`Normal ~tenant:"t" 1 = Ok ());
  Alcotest.(check bool) "push 2" true
    (Fair.push q ~priority:`High ~tenant:"u" 2 = Ok ());
  Alcotest.(check bool) "push 3 rejected" true
    (Fair.push q ~priority:`Normal ~tenant:"t" 3 = Error (`Full 2));
  ignore (Fair.pop q);
  Alcotest.(check bool) "push after pop" true
    (Fair.push q ~priority:`Normal ~tenant:"t" 4 = Ok ())

let test_fair_remove () =
  let q = Fair.create ~capacity:8 in
  List.iter
    (fun (p, t, x) -> ignore (Fair.push q ~priority:p ~tenant:t x))
    [ (`Normal, "a", 1); (`Normal, "a", 2); (`High, "b", 3) ];
  Alcotest.(check (option int)) "remove hit" (Some 2)
    (Fair.remove q (fun x -> x = 2));
  Alcotest.(check (option int)) "remove miss" None
    (Fair.remove q (fun x -> x = 99));
  Alcotest.(check int) "length after remove" 2 (Fair.length q);
  Alcotest.(check (option int)) "high first" (Some 3) (Fair.pop q);
  Alcotest.(check (option int)) "then normal" (Some 1) (Fair.pop q);
  Alcotest.(check (list string)) "tenants empty" [] (Fair.tenants q)

(* ---------- daemon scheduling contract (in-process) ---------- *)

let sim_req ?(workload = "FDTD") ?(tenant = "default") ?(priority = `Normal)
    ?deadline_ms () =
  SReq.make ~backend:`Sim ~technique:"barrier" ~threads:8
    ~input:Wl.Workload.Train ?deadline_ms ~priority ~tenant (`Name workload)

let native_req ?(workload = "FDTD") ?(tenant = "default")
    ?(priority = `Normal) ?fault () =
  SReq.make ~backend:`Native ~technique:"barrier" ~threads:2
    ~input:Wl.Workload.Train ?fault ~priority ~tenant (`Name workload)

let with_server ?(domains = 2) ?(capacity = 1024) ?(cache = `Off) ?cache_dir
    ?default_deadline_ms f =
  let srv =
    Server.create
      {
        Server.domains;
        queue_capacity = capacity;
        cache;
        cache_dir;
        default_deadline_ms;
      }
  in
  Fun.protect ~finally:(fun () -> Server.stop srv) (fun () -> f srv)

let test_admission_control () =
  with_server ~domains:1 ~capacity:3 (fun srv ->
      (* scheduler not started: everything stays queued *)
      let jobs = List.init 3 (fun _ -> Server.submit srv (sim_req ())) in
      Alcotest.(check int) "queued" 3 (Server.queued srv);
      List.iter
        (fun j ->
          Alcotest.(check bool) "accepted job pending" true
            (Server.peek j = None))
        jobs;
      let over = Server.submit srv (sim_req ()) in
      Alcotest.(check bool) "overflow rejected full" true
        (Server.peek over = Some (Proto.Rejected (Proto.Queue_full 3)));
      Server.stop srv;
      (* stop without drain rejects the queued jobs *)
      List.iter
        (fun j ->
          Alcotest.(check bool) "queued job rejected at stop" true
            (Server.await j = Proto.Rejected Proto.Shutting_down))
        jobs;
      let late = Server.submit srv (sim_req ()) in
      Alcotest.(check bool) "post-stop submit rejected" true
        (Server.peek late = Some (Proto.Rejected Proto.Shutting_down)))

let test_bad_requests () =
  with_server ~domains:1 (fun srv ->
      Server.start srv;
      let j1 = Server.submit srv (sim_req ~workload:"NO_SUCH" ()) in
      Alcotest.(check bool) "unknown workload" true
        (Server.await j1 = Proto.Rejected (Proto.Unknown_workload "NO_SUCH"));
      let j2 =
        Server.submit srv
          (SReq.make ~technique:"warp-drive" (`Name "FDTD"))
      in
      (match Server.await j2 with
      | Proto.Rejected (Proto.Bad_request _) -> ()
      | m -> Alcotest.failf "bad technique: %s" (Format.asprintf "%a" Proto.pp_server m));
      let j3 =
        Server.submit srv (native_req ~fault:"not-a-fault-spec" ())
      in
      match Server.await j3 with
      | Proto.Rejected (Proto.Bad_request _) -> ()
      | m ->
          Alcotest.failf "bad fault spec: %s"
            (Format.asprintf "%a" Proto.pp_server m))

let test_deadline_missed_in_queue () =
  with_server ~domains:1 (fun srv ->
      let j = Server.submit srv (sim_req ~deadline_ms:0.001 ()) in
      Thread.delay 0.03;
      Server.start srv;
      Alcotest.(check bool) "deadline rejection" true
        (Server.await j = Proto.Rejected Proto.Deadline_exceeded);
      let snap = Server.snapshot srv in
      Alcotest.(check (option int)) "deadline_missed counter" (Some 1)
        (Xinv_obs.Snapshot.counter snap "serve.deadline_missed");
      Alcotest.(check (option int)) "tenant deadline counter" (Some 1)
        (Xinv_obs.Snapshot.counter snap
           "serve.tenant.default.deadline_missed"))

let test_cancel_queued () =
  with_server ~domains:1 (fun srv ->
      let j = Server.submit srv (sim_req ()) in
      Alcotest.(check int) "queued before cancel" 1 (Server.queued srv);
      Server.cancel srv j;
      Alcotest.(check bool) "cancelled" true
        (Server.await j = Proto.Rejected Proto.Cancelled);
      Alcotest.(check int) "withdrawn" 0 (Server.queued srv);
      Server.cancel srv j (* finished: no-op *))

(* The client-disconnect regression: cancelling a running job unwinds only
   that cohort.  Job A parks a worker via an injected fault; the cancel
   must free the shared pool for tenant B's run, with zero pool churn. *)
let test_cancel_running_pool_survives () =
  with_server ~domains:2 (fun srv ->
      Server.start srv;
      let a =
        Server.submit srv (native_req ~tenant:"a" ~fault:"poison@1:0" ())
      in
      (* wait until A has been popped and is executing *)
      let deadline = Unix.gettimeofday () +. 5. in
      while
        Server.queued srv > 0
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.005
      done;
      Thread.delay 0.05 (* let the attempt arm its watchdog and park *);
      let b = Server.submit srv (native_req ~tenant:"b" ()) in
      Server.cancel srv a;
      Alcotest.(check bool) "A cancelled" true
        (Server.await a = Proto.Rejected Proto.Cancelled);
      (match Server.await b with
      | Proto.Outcome s ->
          Alcotest.(check bool) "B verified on the shared pool" true
            s.Proto.o_verified
      | m ->
          Alcotest.failf "B: %s" (Format.asprintf "%a" Proto.pp_server m));
      Alcotest.(check int) "pool survived the cancel" 1
        (Server.pool_creates srv);
      let snap = Server.snapshot srv in
      Alcotest.(check (option int)) "cancelled counter" (Some 1)
        (Xinv_obs.Snapshot.counter snap "serve.cancelled"))

(* ---------- differential: submit ≡ run_request ---------- *)

let pick_technique ~backend wl =
  let candidates =
    List.filter (fun t -> t <> Cx.Sequential) (Cx.supported ~backend)
    @ [ Cx.Sequential ]
  in
  List.find
    (fun t ->
      match Cx.applicable ~backend ~cache:`Off t wl with
      | Ok () -> true
      | Error _ -> false)
    candidates

let summary_of_inprocess wl o =
  Proto.summary_of_outcome ~workload:wl.Wl.Workload.name ~queue_wait_ns:0. o

let test_differential_submit_vs_inprocess () =
  with_server ~domains:6 (fun srv ->
      Server.start srv;
      List.iter
        (fun (wl : Wl.Workload.t) ->
          List.iter
            (fun backend ->
              let technique = pick_technique ~backend wl in
              let threads = match backend with `Sim -> 8 | `Native -> 2 in
              let o_in =
                Cx.run_request
                @@ Cx.Request.make
                     ~backend:
                       (match backend with
                       | `Sim -> `Sim None
                       | `Native -> `Native Cx.native_defaults)
                     ~input:Wl.Workload.Train ~technique ~threads wl
              in
              let s_in = summary_of_inprocess wl o_in in
              let req =
                SReq.make
                  ~backend:(backend :> [ `Sim | `Native ])
                  ~technique:(Cx.technique_name technique)
                  ~threads ~input:Wl.Workload.Train
                  (`Name wl.Wl.Workload.name)
              in
              let label =
                Printf.sprintf "%s/%s" wl.Wl.Workload.name
                  (match backend with `Sim -> "sim" | `Native -> "native")
              in
              match Server.await (Server.submit srv req) with
              | Proto.Outcome s ->
                  Alcotest.(check string) (label ^ " workload")
                    s_in.Proto.o_workload s.Proto.o_workload;
                  Alcotest.(check string) (label ^ " technique")
                    s_in.Proto.o_technique s.Proto.o_technique;
                  Alcotest.(check bool) (label ^ " verified") true
                    (s_in.Proto.o_verified && s.Proto.o_verified);
                  Alcotest.(check int) (label ^ " mismatches")
                    s_in.Proto.o_mismatches s.Proto.o_mismatches;
                  Alcotest.(check string) (label ^ " policy source")
                    s_in.Proto.o_policy_source s.Proto.o_policy_source;
                  Alcotest.(check bool) (label ^ " degradations") true
                    (s_in.Proto.o_degraded = s.Proto.o_degraded);
                  if backend = `Sim then begin
                    (* virtual time: the whole outcome is bit-identical *)
                    Alcotest.(check bool) (label ^ " cost kind") true
                      (s.Proto.o_cost_kind = `Cycles);
                    Alcotest.(check (float 0.)) (label ^ " cost")
                      s_in.Proto.o_cost s.Proto.o_cost;
                    Alcotest.(check (float 0.)) (label ^ " seq cost")
                      s_in.Proto.o_seq_cost s.Proto.o_seq_cost;
                    Alcotest.(check (float 0.)) (label ^ " speedup")
                      s_in.Proto.o_speedup s.Proto.o_speedup
                  end
                  else begin
                    Alcotest.(check bool) (label ^ " cost kind") true
                      (s.Proto.o_cost_kind = `Wall_ns);
                    Alcotest.(check int) (label ^ " tasks")
                      s_in.Proto.o_tasks s.Proto.o_tasks
                  end
              | m ->
                  Alcotest.failf "%s: %s" label
                    (Format.asprintf "%a" Proto.pp_server m))
            [ `Sim; `Native ])
        (Wl.Registry.all ()))

(* ---------- one shared pool across a thousand queued runs ---------- *)

let test_thousand_requests_one_pool () =
  with_server ~domains:2 ~capacity:1024 (fun srv ->
      let jobs =
        List.init 1000 (fun i ->
            let tenant = Printf.sprintf "t%d" (i mod 7) in
            let priority = if i mod 13 = 0 then `High else `Normal in
            let req =
              if i mod 10 = 0 then native_req ~tenant ~priority ()
              else sim_req ~tenant ~priority ()
            in
            Server.submit srv req)
      in
      Alcotest.(check int) "all queued" 1000 (Server.queued srv);
      Server.start srv;
      let bad = ref 0 in
      List.iter
        (fun j ->
          match Server.await j with
          | Proto.Outcome s when s.Proto.o_verified -> ()
          | _ -> incr bad)
        jobs;
      Alcotest.(check int) "all verified" 0 !bad;
      Alcotest.(check int) "exactly one pool" 1 (Server.pool_creates srv);
      Alcotest.(check int) "served" 1000 (Server.served srv);
      let snap = Server.snapshot srv in
      Alcotest.(check (option int)) "pool.create counter" (Some 1)
        (Xinv_obs.Snapshot.counter snap "serve.pool.create");
      Alcotest.(check (option int)) "completed counter" (Some 1000)
        (Xinv_obs.Snapshot.counter snap "serve.completed");
      let wait_hist =
        List.find
          (fun h -> h.Xinv_obs.Snapshot.s_name = "serve.queue_wait_ms")
          snap.Xinv_obs.Snapshot.s_hists
      in
      Alcotest.(check int) "every run's queue wait observed" 1000
        wait_hist.Xinv_obs.Snapshot.s_count)

(* ---------- tune through the daemon ---------- *)

let test_tune_then_auto () =
  let dir = tmpdir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_server ~domains:4 ~cache:`Rw ~cache_dir:dir (fun srv ->
          Server.start srv;
          let tj =
            Server.submit_tune srv
              (Proto.tune_req ~budget:2 ~max_domains:2
                 ~input:Wl.Workload.Train "FDTD")
          in
          (match Server.await tj with
          | Proto.Tune_reply r ->
              Alcotest.(check bool) "trials ran" true (r.Proto.r_trials >= 1);
              Alcotest.(check bool) "policy key non-empty" true
                (String.length r.Proto.r_policy_key > 0)
          | m ->
              Alcotest.failf "tune: %s"
                (Format.asprintf "%a" Proto.pp_server m));
          (* a later [`Auto] run resolves the policy the tune stored *)
          let req =
            SReq.make ~policy:`Auto ~cache:`Rw ~input:Wl.Workload.Train
              ~backend:`Native ~technique:"barrier" ~threads:2 (`Name "FDTD")
          in
          match Server.await (Server.submit srv req) with
          | Proto.Outcome s ->
              Alcotest.(check string) "tuned policy applied" "cached"
                s.Proto.o_policy_source;
              Alcotest.(check bool) "verified" true s.Proto.o_verified
          | m ->
              Alcotest.failf "auto run: %s"
                (Format.asprintf "%a" Proto.pp_server m)))

(* ---------- socket integration ---------- *)

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 5. in
  let rec go () =
    match SClient.with_connection path (fun _ -> ()) with
    | () -> ()
    | exception _ ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "daemon socket never came up"
        else begin
          Thread.delay 0.01;
          go ()
        end
  in
  go ()

let test_socket_two_clients () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xinv-test-%d.sock" (Unix.getpid ()))
  in
  let srv =
    Server.create { Server.default_config with Server.domains = 2 }
  in
  let daemon = Thread.create (fun () -> Server.serve srv ~socket) () in
  wait_for_socket socket;
  let failures = Mutex.create () and failed = ref [] in
  let client name reqs =
    Thread.create
      (fun () ->
        SClient.with_connection socket (fun fd ->
            List.iter
              (fun req ->
                match SClient.request fd (Proto.Run req) with
                | Proto.Outcome s when s.Proto.o_verified -> ()
                | m ->
                    Mutex.lock failures;
                    failed :=
                      Printf.sprintf "%s: %s" name
                        (Format.asprintf "%a" Proto.pp_server m)
                      :: !failed;
                    Mutex.unlock failures)
              reqs))
      ()
  in
  let alice =
    client "alice"
      (List.init 5 (fun i ->
           if i mod 2 = 0 then sim_req ~tenant:"alice" ()
           else native_req ~tenant:"alice" ()))
  in
  let bob =
    client "bob"
      (List.init 5 (fun i ->
           sim_req ~tenant:"bob"
             ~priority:(if i mod 2 = 0 then `High else `Normal)
             ()))
  in
  Thread.join alice;
  Thread.join bob;
  Alcotest.(check (list string)) "no client failures" [] !failed;
  (* liveness + stats over the same socket *)
  (match SClient.call ~socket Proto.Ping with
  | Proto.Pong p ->
      Alcotest.(check int) "one pool over the socket" 1 p.Proto.p_pool_creates;
      Alcotest.(check int) "served" 10 p.Proto.p_served
  | m -> Alcotest.failf "ping: %s" (Format.asprintf "%a" Proto.pp_server m));
  (match SClient.call ~socket Proto.Stats with
  | Proto.Stats_reply snap ->
      Alcotest.(check (option int)) "alice completed" (Some 5)
        (Xinv_obs.Snapshot.counter snap "serve.tenant.alice.completed");
      Alcotest.(check (option int)) "bob completed" (Some 5)
        (Xinv_obs.Snapshot.counter snap "serve.tenant.bob.completed")
  | m -> Alcotest.failf "stats: %s" (Format.asprintf "%a" Proto.pp_server m));
  (* a garbage frame gets a typed rejection, not a hang or a crash *)
  (match
     SClient.with_connection socket (fun fd ->
         let junk = String.make 64 'Z' in
         ignore (Unix.write_substring fd junk 0 (String.length junk));
         Proto.recv_server fd)
   with
  | Proto.Rejected (Proto.Bad_request _) -> ()
  | m -> Alcotest.failf "garbage: %s" (Format.asprintf "%a" Proto.pp_server m));
  (* an inline workload (a Marshal image) is refused at the socket
     boundary without ever being submitted *)
  (match
     SClient.call ~socket (Proto.Run (SReq.make (`Inline "\000\001junk\255")))
   with
  | Proto.Rejected (Proto.Bad_request _) -> ()
  | m ->
      Alcotest.failf "inline over socket: %s"
        (Format.asprintf "%a" Proto.pp_server m));
  (* a client that vanishes mid-request must not kill the daemon: its
     parked job is cancelled, and the reply that would have hit the dead
     socket (SIGPIPE, fatal by default) is dropped *)
  let ghost = SClient.connect socket in
  Proto.send_client ghost
    (Proto.Run (native_req ~tenant:"ghost" ~fault:"poison@1:0" ()));
  Thread.delay 0.05 (* let the run start and park on the poisoned cond *);
  Unix.close ghost;
  let deadline = Unix.gettimeofday () +. 5. in
  while Server.served srv < 11 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Alcotest.(check int) "ghost job finished after disconnect" 11
    (Server.served srv);
  (match SClient.call ~socket Proto.Ping with
  | Proto.Pong _ -> ()
  | m ->
      Alcotest.failf "ping after ghost disconnect: %s"
        (Format.asprintf "%a" Proto.pp_server m));
  (* an idle keep-alive connection (no request in flight) must not stall
     the shutdown below; the daemon EOFs it while exiting *)
  let idle = SClient.connect socket in
  (* clean shutdown: ack, socket unlinked, accept loop exits *)
  (match SClient.call ~socket Proto.Shutdown with
  | Proto.Shutdown_ack { served } ->
      Alcotest.(check int) "ack served count" 11 served
  | m ->
      Alcotest.failf "shutdown: %s" (Format.asprintf "%a" Proto.pp_server m));
  Thread.join daemon;
  (match Proto.recv_server idle with
  | exception Wire.Error Wire.Closed -> ()
  | exception _ -> ()
  | m ->
      Alcotest.failf "idle connection outlived shutdown: %s"
        (Format.asprintf "%a" Proto.pp_server m));
  Unix.close idle;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  Alcotest.(check int) "pool never churned" 1 (Server.pool_creates srv)

let suite =
  [
    Alcotest.test_case "wire primitives round-trip" `Quick test_wire_prims;
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "protocol messages round-trip" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "decoders reject the other side's tags" `Quick
      test_protocol_wrong_side;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    Alcotest.test_case "every truncation is a typed error" `Quick
      test_truncation;
    Alcotest.test_case "every bit flip is detected" `Quick test_bitflips;
    QCheck_alcotest.to_alcotest prop_garbage;
    Alcotest.test_case "fair: priority then tenant rotation" `Quick
      test_fair_priority_and_rotation;
    Alcotest.test_case "fair: bounded capacity" `Quick test_fair_capacity;
    Alcotest.test_case "fair: remove withdraws a queued item" `Quick
      test_fair_remove;
    Alcotest.test_case "admission control and shutdown rejection" `Quick
      test_admission_control;
    Alcotest.test_case "malformed requests are typed rejections" `Quick
      test_bad_requests;
    Alcotest.test_case "queued deadline expiry rejects" `Quick
      test_deadline_missed_in_queue;
    Alcotest.test_case "cancel withdraws a queued job" `Quick
      test_cancel_queued;
    Alcotest.test_case "cancel unwinds one cohort, pool survives" `Quick
      test_cancel_running_pool_survives;
    Alcotest.test_case "submitted runs match in-process run_request" `Slow
      test_differential_submit_vs_inprocess;
    Alcotest.test_case "1000 queued runs on one shared pool" `Slow
      test_thousand_requests_one_pool;
    Alcotest.test_case "tune request feeds later auto runs" `Slow
      test_tune_then_auto;
    Alcotest.test_case "two clients over the socket" `Slow
      test_socket_two_clients;
  ]
