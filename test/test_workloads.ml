(* Tests for the benchmark workloads: determinism, dependence structure
   matching the dissertation's description, applicability matching
   Table 5.1, and end-to-end correctness through the public facade. *)

module Ir = Xinv_ir
module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv

let all = Wl.Registry.all ()

let test_registry () =
  Alcotest.(check int) "eleven workloads" 11 (List.length all);
  Alcotest.(check int) "six DOMORE benchmarks" 6 (List.length (Wl.Registry.domore_set ()));
  Alcotest.(check int) "eight SPECCROSS benchmarks" 8
    (List.length (Wl.Registry.speccross_set ()));
  Alcotest.(check bool) "find case-insensitive" true
    ((Wl.Registry.find "cg").Wl.Workload.name = "CG");
  Alcotest.check_raises "unknown workload"
    (Invalid_argument "Registry.find: unknown workload NOPE") (fun () ->
      ignore (Wl.Registry.find "NOPE"))

let test_footprints_sound () =
  (* Every workload's exec closures must stay within their declared
     footprints: all compiler decisions depend on it. *)
  List.iter
    (fun (wl : Wl.Workload.t) ->
      let p = wl.Wl.Workload.program Wl.Workload.Train in
      let env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
      match Ir.Validate.program ~max_outer:6 p env with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s: %s" wl.Wl.Workload.name
            (Format.asprintf "%a" Ir.Validate.pp_violation v))
    all

let test_sequential_deterministic () =
  List.iter
    (fun (wl : Wl.Workload.t) ->
      let p = wl.Wl.Workload.program Wl.Workload.Ref in
      let e1 = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
      let e2 = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
      let c1 = Ir.Seq_interp.run p e1 and c2 = Ir.Seq_interp.run p e2 in
      Alcotest.(check (float 1e-9)) (wl.Wl.Workload.name ^ " cost deterministic") c1 c2;
      Alcotest.(check bool)
        (wl.Wl.Workload.name ^ " state deterministic")
        true
        (Ir.Memory.equal e1.Ir.Env.mem e2.Ir.Env.mem))
    all

let test_train_differs_from_ref () =
  List.iter
    (fun (wl : Wl.Workload.t) ->
      let tr = wl.Wl.Workload.program Wl.Workload.Train in
      let rf = wl.Wl.Workload.program Wl.Workload.Ref in
      let env_tr = wl.Wl.Workload.fresh_env Wl.Workload.Train in
      let env_rf = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
      Alcotest.(check bool)
        (wl.Wl.Workload.name ^ " train smaller than ref")
        true
        (Ir.Program.total_iterations tr env_tr < Ir.Program.total_iterations rf env_rf))
    all

let test_applicability_matches_table_5_1 () =
  List.iter
    (fun (wl : Wl.Workload.t) ->
      let ok = function Ok () -> true | Error _ -> false in
      Alcotest.(check bool)
        (wl.Wl.Workload.name ^ " DOMORE applicability")
        wl.Wl.Workload.domore_expected
        (ok (Cx.applicable Cx.Domore wl));
      (* SPECCROSS: the registry marks FLUIDANIMATE-1 as not evaluated even
         though the region is mechanically eligible. *)
      if wl.Wl.Workload.name <> "FLUIDANIMATE-1" then
        Alcotest.(check bool)
          (wl.Wl.Workload.name ^ " SPECCROSS applicability")
          wl.Wl.Workload.speccross_expected
          (ok (Cx.applicable Cx.Speccross wl)))
    all

let test_cg_dependence_structure () =
  let wl = Wl.Registry.find "CG" in
  (* Reference input: no within-invocation conflicts, frequent
     cross-invocation conflicts (Figure 3.1's 72.4% manifest rate). *)
  let p = wl.Wl.Workload.program Wl.Workload.Ref in
  let res = Ir.Profile.run p (wl.Wl.Workload.fresh_env Wl.Workload.Ref) in
  let update_sid =
    (List.hd (Ir.Program.body_stmts p)).Ir.Stmt.sid
  in
  List.iter
    (fun ((src, dst), (stat : Ir.Profile.pair_stat)) ->
      if src = update_sid && dst = update_sid then
        Alcotest.(check int) "no within-invocation conflicts" 0 stat.Ir.Profile.within)
    res.Ir.Profile.pairs;
  let rate = Ir.Profile.manifest_rate res p ~src_sid:update_sid ~dst_sid:update_sid in
  Alcotest.(check bool)
    (Printf.sprintf "manifest rate near 72%% (got %.1f%%)" (100. *. rate))
    true
    (rate > 0.6 && rate < 0.85);
  (* Banded (spec) input: never any cross-invocation conflict. *)
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref_spec in
  let res_spec = Ir.Profile.run (wl.Wl.Workload.program Wl.Workload.Ref_spec) env in
  Alcotest.(check (option int)) "banded input conflict-free" None
    res_spec.Ir.Profile.min_task_distance

let test_min_distances_shape () =
  (* Table 5.3: conflict-free rows and roughly one-invocation distances. *)
  let dist name input =
    let wl = Wl.Registry.find name in
    let env = wl.Wl.Workload.fresh_env input in
    (Xinv_speccross.Profiler.profile (wl.Wl.Workload.program input) env)
      .Xinv_speccross.Profiler.min_task_distance
  in
  List.iter
    (fun name ->
      Alcotest.(check (option int)) (name ^ " has no conflicts") None
        (dist name Wl.Workload.Ref))
    [ "EQUAKE"; "LLUBENCH"; "SYMM" ];
  List.iter
    (fun name ->
      match dist name Wl.Workload.Ref with
      | None -> Alcotest.failf "%s should have conflicts" name
      | Some d -> Alcotest.(check bool) (name ^ " distance positive") true (d > 0))
    [ "FDTD"; "JACOBI"; "LOOPDEP"; "FLUIDANIMATE-2" ]

let test_jacobi_distance_tracks_input () =
  let d input =
    let wl = Wl.Registry.find "JACOBI" in
    let env = wl.Wl.Workload.fresh_env input in
    Option.get
      (Xinv_speccross.Profiler.profile (wl.Wl.Workload.program input) env)
        .Xinv_speccross.Profiler.min_task_distance
  in
  Alcotest.(check bool) "ref distance larger than train (bigger rows)" true
    (d Wl.Workload.Ref > d Wl.Workload.Train)

let exec_techniques (wl : Wl.Workload.t) =
  List.filter
    (fun t -> match Cx.applicable t wl with Ok () -> true | Error _ -> false)
    [ Cx.Barrier; Cx.Domore; Cx.Speccross ]

(* End-to-end: every workload, under every applicable technique, matches the
   sequential final state at a couple of thread counts. *)
let test_end_to_end_verified () =
  List.iter
    (fun (wl : Wl.Workload.t) ->
      List.iter
        (fun technique ->
          List.iter
            (fun threads ->
              let input =
                match technique with
                | Cx.Speccross when wl.Wl.Workload.name = "CG" -> Wl.Workload.Ref_spec
                | _ -> Wl.Workload.Ref
              in
              let o = Cx.run_request @@ Cx.Request.make ~input ~technique ~threads wl in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s@%d verified" wl.Wl.Workload.name
                   (Cx.technique_name technique) threads)
                true o.Cx.verified)
            [ 3; 8 ])
        (exec_techniques wl))
    all

let test_speedups_in_band () =
  (* Coarse bands from the dissertation's evaluation at 24 threads. *)
  let s name technique input =
    (Cx.run_request @@ Cx.Request.make ~input ~technique ~threads:24 (Wl.Registry.find name)).Cx.speedup
  in
  Alcotest.(check bool) "CG barrier below 1x" true
    (s "CG" Cx.Barrier Wl.Workload.Ref < 1.0);
  Alcotest.(check bool) "CG DOMORE between 8x and 13x" true
    (let v = s "CG" Cx.Domore Wl.Workload.Ref in
     v > 8. && v < 13.);
  Alcotest.(check bool) "JACOBI speccross beats barrier" true
    (s "JACOBI" Cx.Speccross Wl.Workload.Ref > s "JACOBI" Cx.Barrier Wl.Workload.Ref);
  Alcotest.(check bool) "ECLAT DOMORE plateaus below 8x" true
    (s "ECLAT" Cx.Domore Wl.Workload.Ref < 8.)

let test_headline_geomeans () =
  (* DOMORE: geomean over its six benchmarks, vs barrier and vs sequential
     (dissertation: 2.1x over barrier-parallel, 3.2x over sequential).
     We check the qualitative claims rather than exact values. *)
  let domore = Wl.Registry.domore_set () in
  let speed technique (wl : Wl.Workload.t) =
    (Cx.run_request @@ Cx.Request.make ~technique ~threads:24 wl).Cx.speedup
  in
  let g_domore = Xinv_util.Stats.geomean (List.map (speed Cx.Domore) domore) in
  let g_barrier = Xinv_util.Stats.geomean (List.map (speed Cx.Barrier) domore) in
  Alcotest.(check bool)
    (Printf.sprintf "DOMORE geomean (%.2f) > 3x sequential" g_domore)
    true (g_domore > 3.);
  Alcotest.(check bool)
    (Printf.sprintf "DOMORE (%.2f) at least 2x over barrier (%.2f)" g_domore g_barrier)
    true
    (g_domore > 2. *. g_barrier)

let test_cg_spec_fallback_vs_speculation () =
  let wl = Wl.Registry.find "CG" in
  (* Conflict-heavy ref input: the profiler's distance is below the worker
     count, so SPECCROSS falls back to real barriers (zero requests). *)
  let fallback = Cx.run_request @@ Cx.Request.make ~technique:Cx.Speccross ~threads:24 wl in
  (match fallback.Cx.run with
  | Some r -> Alcotest.(check int) "fallback: no checking requests" 0 r.Xinv_parallel.Run.checks
  | None -> Alcotest.fail "expected a run");
  (* Banded input: genuine speculation, one request per task. *)
  let spec =
    Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Ref_spec ~technique:Cx.Speccross ~threads:24 wl
  in
  match spec.Cx.run with
  | Some r ->
      Alcotest.(check bool) "speculated: requests issued" true
        (r.Xinv_parallel.Run.checks > 0);
      Alcotest.(check int) "no misspeculation on banded input" 0
        r.Xinv_parallel.Run.misspecs
  | None -> Alcotest.fail "expected a run"

let test_domore_rejection_reasons () =
  let reason t name =
    match Cx.applicable t (Wl.Registry.find name) with
    | Error r -> r
    | Ok () -> ""
  in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "FLUID-2 taint names cellof" true
    (contains "cellof" (reason Cx.Domore "FLUIDANIMATE-2"));
  Alcotest.(check bool) "LOOPDEP taint names C" true
    (contains ": C" (reason Cx.Domore "LOOPDEP"));
  Alcotest.(check bool) "JACOBI partition collapse" true
    (contains "no worker statements" (reason Cx.Domore "JACOBI"))

let test_scheduler_ratio_bands () =
  (* Table 5.2 bands: ECLAT has the heaviest scheduler of the scalable
     benchmarks, LLUBENCH/BLACKSCHOLES the lightest. *)
  let ratio name =
    let o = Cx.run_request @@ Cx.Request.make ~technique:Cx.Domore ~threads:24 (Wl.Registry.find name) in
    match o.Cx.run with
    | Some r -> 100. *. Xinv_domore.Domore.scheduler_worker_ratio r
    | None -> 0.
  in
  let eclat = ratio "ECLAT" and llu = ratio "LLUBENCH" and bs = ratio "BLACKSCHOLES" in
  Alcotest.(check bool)
    (Printf.sprintf "ECLAT ratio %.1f%% in [8, 17]" eclat)
    true
    (eclat > 8. && eclat < 17.);
  Alcotest.(check bool) "ECLAT heavier than LLUBENCH and BLACKSCHOLES" true
    (eclat > llu && eclat > bs)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "footprints sound" `Quick test_footprints_sound;
    Alcotest.test_case "sequential deterministic" `Quick test_sequential_deterministic;
    Alcotest.test_case "train < ref" `Quick test_train_differs_from_ref;
    Alcotest.test_case "Table 5.1 applicability" `Quick test_applicability_matches_table_5_1;
    Alcotest.test_case "CG dependence structure" `Quick test_cg_dependence_structure;
    Alcotest.test_case "Table 5.3 distance shapes" `Quick test_min_distances_shape;
    Alcotest.test_case "JACOBI distance tracks input" `Quick test_jacobi_distance_tracks_input;
    Alcotest.test_case "end-to-end verified" `Slow test_end_to_end_verified;
    Alcotest.test_case "speedups in band" `Slow test_speedups_in_band;
    Alcotest.test_case "headline geomeans" `Slow test_headline_geomeans;
    Alcotest.test_case "Table 5.2 ratio bands" `Slow test_scheduler_ratio_bands;
    Alcotest.test_case "CG speculation vs fallback" `Slow test_cg_spec_fallback_vs_speculation;
    Alcotest.test_case "DOMORE rejection reasons" `Quick test_domore_rejection_reasons;
  ]
