(* Observability layer: metrics registry, event recorder, Perfetto export
   and the zero-perturbation guarantee (obs on/off runs are bit-identical). *)

module Obs = Xinv_obs
module Sim = Xinv_sim
module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads

(* ---- a minimal JSON parser, enough to validate exporter output ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
              (* skip the four hex digits; exact code point is irrelevant here *)
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | Some c -> Buffer.add_char b c
          | None -> fail "bad escape");
          advance ();
          loop ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

let member k = function
  | Obj kvs -> (
      match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let str_of = function Str s -> s | _ -> ""
let num_of = function Num f -> f | _ -> nan

(* ---- metrics registry ---- *)

let test_metrics_counter () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "tasks" in
  let c' = Obs.Metrics.counter m "tasks" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c';
  Obs.Metrics.add c 5;
  Alcotest.(check (list (pair string int)))
    "find-or-create shares the handle" [ ("tasks", 7) ] (Obs.Metrics.counters m)

let test_metrics_gauge () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "lead" in
  Obs.Metrics.set g 3.5;
  Obs.Metrics.acc g 1.5;
  let h = Obs.Metrics.gauge m "other" in
  Obs.Metrics.set h 1.0;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges in registration order"
    [ ("lead", 5.0); ("other", 1.0) ]
    (Obs.Metrics.gauges m)

let test_metrics_histogram () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m ~bounds:[| 1.; 10.; 100. |] "lat" in
  List.iter (fun v -> Obs.Metrics.observe h v) [ 0.5; 5.; 5.; 50.; 500. ];
  Alcotest.(check int) "count" 5 h.Obs.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sum" 560.5 h.Obs.Metrics.h_sum;
  (* p50 falls in the (1,10] bucket, whose upper bound is reported. *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 10. (Obs.Metrics.quantile h 0.5);
  Alcotest.(check bool) "p99 lands in the overflow bucket" true
    (Obs.Metrics.quantile h 0.99 = infinity)

(* ---- recorder ---- *)

let test_recorder_order () =
  let r = Obs.Recorder.create () in
  for i = 0 to 99 do
    Obs.Recorder.record r ~at:(float_of_int i) ~tid:(i mod 3)
      (Obs.Event.Barrier_crossed { episode = i })
  done;
  Alcotest.(check int) "length" 100 (Obs.Recorder.length r);
  let seen = ref (-1.) in
  Obs.Recorder.iter
    (fun (e : Obs.Recorder.entry) ->
      Alcotest.(check bool) "append order preserved" true (e.Obs.Recorder.at > !seen);
      seen := e.Obs.Recorder.at)
    r;
  Alcotest.(check (float 0.)) "last timestamp" 99. !seen

(* ---- Perfetto export: valid JSON, tracks, phases, monotone timestamps ---- *)

let domore_traced_run () =
  let wl = Wl.Registry.find "CG" in
  let program = wl.Wl.Workload.program Wl.Workload.Train in
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
  match Xinv_ir.Mtcg.generate program env with
  | Xinv_ir.Mtcg.Inapplicable reason -> Alcotest.fail reason
  | Xinv_ir.Mtcg.Plan plan ->
      let obs = Obs.Recorder.create () in
      let config = Xinv_domore.Domore.default_config ~workers:3 in
      let r = Xinv_domore.Domore.run ~config ~obs ~trace:true ~plan program env in
      (r, obs)

let test_perfetto_export () =
  let r, obs = domore_traced_run () in
  let eng = r.Xinv_parallel.Run.engine in
  let json = Obs.Perfetto.to_json ~engine:eng ~recorder:obs () in
  let doc = parse_json json in
  let events = match member "traceEvents" doc with Arr l -> l | _ -> [] in
  Alcotest.(check bool) "has events" true (events <> []);
  (* Exactly one thread_name metadata record per engine thread. *)
  let tracks =
    List.filter_map
      (fun e ->
        if member "ph" e = Str "M" && member "name" e = Str "thread_name" then
          Some (int_of_float (num_of (member "tid" e)))
        else None)
      events
  in
  Alcotest.(check (list int)) "one track per tid"
    (List.init (Sim.Engine.thread_count eng) Fun.id)
    (List.sort compare tracks);
  (* Duration, instant and counter events are all present. *)
  let count ph =
    List.length (List.filter (fun e -> member "ph" e = Str ph) events)
  in
  Alcotest.(check bool) "duration events" true (count "X" > 0);
  Alcotest.(check bool) "instant events" true (count "i" > 0);
  Alcotest.(check bool) "counter events" true (count "C" > 0);
  (* Engine.segments round-trip: every segment is one X event. *)
  Alcotest.(check int) "segments round-trip" (List.length (Sim.Engine.segments eng))
    (count "X");
  (* Per-track X timestamps are monotone non-decreasing with non-negative
     durations. *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if member "ph" e = Str "X" then begin
        let tid = int_of_float (num_of (member "tid" e)) in
        let ts = num_of (member "ts" e) in
        let dur = num_of (member "dur" e) in
        let prev = try Hashtbl.find last tid with Not_found -> -1. in
        Alcotest.(check bool) "ts monotone per track" true (ts >= prev);
        Alcotest.(check bool) "dur non-negative" true (dur >= 0.);
        Hashtbl.replace last tid ts
      end)
    events

let test_report_contents () =
  let r, _ = domore_traced_run () in
  let report = Xinv_parallel.Run.report r in
  Alcotest.(check bool) "events were logged" true (report.Obs.Report.events_logged > 0);
  Alcotest.(check bool) "queue occupancy computed" true
    (report.Obs.Report.queue_occupancy <> None);
  let dispatched =
    List.assoc_opt "domore.tasks_dispatched" report.Obs.Report.counters
  in
  Alcotest.(check (option int)) "dispatch counter matches tasks"
    (Some r.Xinv_parallel.Run.tasks) dispatched;
  let rendered = Format.asprintf "%a" Obs.Report.pp report in
  Alcotest.(check bool) "report names sync conditions" true
    (contains ~affix:"sync-conditions forwarded" rendered);
  Alcotest.(check bool) "report breaks stalls down by cause" true
    (contains ~affix:"worker stall time by cause" rendered)

let test_misspec_report () =
  let wl = Wl.Registry.find "JACOBI" in
  let obs = Obs.Recorder.create () in
  let o =
    Cx.run ~input:Wl.Workload.Train ~obs ~technique:(Cx.Speccross_inject 5)
      ~threads:8 wl
  in
  let r = match o.Cx.run with Some r -> r | None -> Alcotest.fail "no run" in
  let report = Xinv_parallel.Run.report r in
  Alcotest.(check bool) "run misspeculated" true (r.Xinv_parallel.Run.misspecs > 0);
  Alcotest.(check int) "report agrees with the run" r.Xinv_parallel.Run.misspecs
    report.Obs.Report.misspeculations;
  Alcotest.(check bool) "recovery time attributed" true
    (report.Obs.Report.recovery_cycles > 0.);
  Alcotest.(check bool) "redone epochs counted" true
    (report.Obs.Report.epochs_redone > 0);
  let rendered = Format.asprintf "%a" Obs.Report.pp report in
  Alcotest.(check bool) "report prints the speculation line" true
    (contains ~affix:"epochs committed" rendered)

(* ---- the tentpole guarantee: observation cannot perturb the run ---- *)

let fixed_runs =
  [
    ("CG", Cx.Domore, 8);
    ("BLACKSCHOLES", Cx.Domore, 8);
    ("JACOBI", Cx.Speccross, 8);
    ("FDTD", Cx.Speccross, 8);
  ]

let test_obs_off_bit_identical () =
  List.iter
    (fun (name, technique, threads) ->
      let wl = Wl.Registry.find name in
      let off = Cx.run ~input:Wl.Workload.Train ~technique ~threads wl in
      let obs = Obs.Recorder.create () in
      let on = Cx.run ~input:Wl.Workload.Train ~obs ~technique ~threads wl in
      let tag field = Printf.sprintf "%s/%s: %s" name (Cx.technique_name technique) field in
      let get o f = match o.Cx.run with Some r -> f r | None -> Alcotest.fail "no run" in
      Alcotest.(check (float 0.)) (tag "makespan")
        (get off (fun r -> r.Xinv_parallel.Run.makespan))
        (get on (fun r -> r.Xinv_parallel.Run.makespan));
      Alcotest.(check int) (tag "tasks")
        (get off (fun r -> r.Xinv_parallel.Run.tasks))
        (get on (fun r -> r.Xinv_parallel.Run.tasks));
      Alcotest.(check int) (tag "checks")
        (get off (fun r -> r.Xinv_parallel.Run.checks))
        (get on (fun r -> r.Xinv_parallel.Run.checks));
      Alcotest.(check int) (tag "misspecs")
        (get off (fun r -> r.Xinv_parallel.Run.misspecs))
        (get on (fun r -> r.Xinv_parallel.Run.misspecs));
      Alcotest.(check bool) (tag "verified") off.Cx.verified on.Cx.verified;
      Alcotest.(check bool) (tag "instrumented run logged events") true
        (Obs.Recorder.length obs > 0))
    fixed_runs

let suite =
  [
    Alcotest.test_case "metrics counter" `Quick test_metrics_counter;
    Alcotest.test_case "metrics gauge" `Quick test_metrics_gauge;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "recorder order" `Quick test_recorder_order;
    Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "misspeculation report" `Quick test_misspec_report;
    Alcotest.test_case "obs off/on bit-identical" `Slow test_obs_off_bit_identical;
  ]
