(* Observability layer: metrics registry, event recorder, Perfetto export
   and the zero-perturbation guarantee (obs on/off runs are bit-identical). *)

module Obs = Xinv_obs
module Sim = Xinv_sim
module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads

(* ---- a minimal JSON parser, enough to validate exporter output ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'u' ->
              (* skip the four hex digits; exact code point is irrelevant here *)
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | Some c -> Buffer.add_char b c
          | None -> fail "bad escape");
          advance ();
          loop ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

let member k = function
  | Obj kvs -> (
      match List.assoc_opt k kvs with Some v -> v | None -> Null)
  | _ -> Null

let str_of = function Str s -> s | _ -> ""
let num_of = function Num f -> f | _ -> nan

(* ---- metrics registry ---- *)

let test_metrics_counter () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "tasks" in
  let c' = Obs.Metrics.counter m "tasks" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr c';
  Obs.Metrics.add c 5;
  Alcotest.(check (list (pair string int)))
    "find-or-create shares the handle" [ ("tasks", 7) ] (Obs.Metrics.counters m)

let test_metrics_gauge () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "lead" in
  Obs.Metrics.set g 3.5;
  Obs.Metrics.acc g 1.5;
  let h = Obs.Metrics.gauge m "other" in
  Obs.Metrics.set h 1.0;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges in registration order"
    [ ("lead", 5.0); ("other", 1.0) ]
    (Obs.Metrics.gauges m)

let test_metrics_histogram () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m ~bounds:[| 1.; 10.; 100. |] "lat" in
  List.iter (fun v -> Obs.Metrics.observe h v) [ 0.5; 5.; 5.; 50.; 500. ];
  Alcotest.(check int) "count" 5 h.Obs.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "sum" 560.5 h.Obs.Metrics.h_sum;
  (* p50 falls in the (1,10] bucket, whose upper bound is reported. *)
  Alcotest.(check (float 1e-9)) "p50 bucket bound" 10. (Obs.Metrics.quantile h 0.5);
  Alcotest.(check bool) "p99 lands in the overflow bucket" true
    (Obs.Metrics.quantile h 0.99 = infinity)

(* ---- recorder ---- *)

let test_recorder_order () =
  let r = Obs.Recorder.create () in
  for i = 0 to 99 do
    Obs.Recorder.record r ~at:(float_of_int i) ~tid:(i mod 3)
      (Obs.Event.Barrier_crossed { episode = i })
  done;
  Alcotest.(check int) "length" 100 (Obs.Recorder.length r);
  let seen = ref (-1.) in
  Obs.Recorder.iter
    (fun (e : Obs.Recorder.entry) ->
      Alcotest.(check bool) "append order preserved" true (e.Obs.Recorder.at > !seen);
      seen := e.Obs.Recorder.at)
    r;
  Alcotest.(check (float 0.)) "last timestamp" 99. !seen

(* ---- Perfetto export: valid JSON, tracks, phases, monotone timestamps ---- *)

let domore_traced_run () =
  let wl = Wl.Registry.find "CG" in
  let program = wl.Wl.Workload.program Wl.Workload.Train in
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
  match Xinv_ir.Mtcg.generate program env with
  | Xinv_ir.Mtcg.Inapplicable reason -> Alcotest.fail reason
  | Xinv_ir.Mtcg.Plan plan ->
      let obs = Obs.Recorder.create () in
      let config = Xinv_domore.Domore.default_config ~workers:3 in
      let r = Xinv_domore.Domore.run ~config ~obs ~trace:true ~plan program env in
      (r, obs)

let test_perfetto_export () =
  let r, obs = domore_traced_run () in
  let eng = r.Xinv_parallel.Run.engine in
  let json = Obs.Perfetto.to_json ~engine:eng ~recorder:obs () in
  let doc = parse_json json in
  let events = match member "traceEvents" doc with Arr l -> l | _ -> [] in
  Alcotest.(check bool) "has events" true (events <> []);
  (* Exactly one thread_name metadata record per engine thread. *)
  let tracks =
    List.filter_map
      (fun e ->
        if member "ph" e = Str "M" && member "name" e = Str "thread_name" then
          Some (int_of_float (num_of (member "tid" e)))
        else None)
      events
  in
  Alcotest.(check (list int)) "one track per tid"
    (List.init (Sim.Engine.thread_count eng) Fun.id)
    (List.sort compare tracks);
  (* Duration, instant and counter events are all present. *)
  let count ph =
    List.length (List.filter (fun e -> member "ph" e = Str ph) events)
  in
  Alcotest.(check bool) "duration events" true (count "X" > 0);
  Alcotest.(check bool) "instant events" true (count "i" > 0);
  Alcotest.(check bool) "counter events" true (count "C" > 0);
  (* Engine.segments round-trip: every segment is one X event. *)
  Alcotest.(check int) "segments round-trip" (List.length (Sim.Engine.segments eng))
    (count "X");
  (* Per-track X timestamps are monotone non-decreasing with non-negative
     durations. *)
  let last = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if member "ph" e = Str "X" then begin
        let tid = int_of_float (num_of (member "tid" e)) in
        let ts = num_of (member "ts" e) in
        let dur = num_of (member "dur" e) in
        let prev = try Hashtbl.find last tid with Not_found -> -1. in
        Alcotest.(check bool) "ts monotone per track" true (ts >= prev);
        Alcotest.(check bool) "dur non-negative" true (dur >= 0.);
        Hashtbl.replace last tid ts
      end)
    events

let test_report_contents () =
  let r, _ = domore_traced_run () in
  let report = Xinv_parallel.Run.report r in
  Alcotest.(check bool) "events were logged" true (report.Obs.Report.events_logged > 0);
  Alcotest.(check bool) "queue occupancy computed" true
    (report.Obs.Report.queue_occupancy <> None);
  let dispatched =
    List.assoc_opt "domore.tasks_dispatched" report.Obs.Report.counters
  in
  Alcotest.(check (option int)) "dispatch counter matches tasks"
    (Some r.Xinv_parallel.Run.tasks) dispatched;
  let rendered = Format.asprintf "%a" Obs.Report.pp report in
  Alcotest.(check bool) "report names sync conditions" true
    (contains ~affix:"sync-conditions forwarded" rendered);
  Alcotest.(check bool) "report breaks stalls down by cause" true
    (contains ~affix:"worker stall time by cause" rendered)

let test_misspec_report () =
  let wl = Wl.Registry.find "JACOBI" in
  let obs = Obs.Recorder.create () in
  let o =
    Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Train ~obs ~technique:(Cx.Speccross_inject 5)
      ~threads:8 wl
  in
  let r = match o.Cx.run with Some r -> r | None -> Alcotest.fail "no run" in
  let report = Xinv_parallel.Run.report r in
  Alcotest.(check bool) "run misspeculated" true (r.Xinv_parallel.Run.misspecs > 0);
  Alcotest.(check int) "report agrees with the run" r.Xinv_parallel.Run.misspecs
    report.Obs.Report.misspeculations;
  Alcotest.(check bool) "recovery time attributed" true
    (report.Obs.Report.recovery_cycles > 0.);
  Alcotest.(check bool) "redone epochs counted" true
    (report.Obs.Report.epochs_redone > 0);
  let rendered = Format.asprintf "%a" Obs.Report.pp report in
  Alcotest.(check bool) "report prints the speculation line" true
    (contains ~affix:"epochs committed" rendered)

(* ---- the tentpole guarantee: observation cannot perturb the run ---- *)

let fixed_runs =
  [
    ("CG", Cx.Domore, 8);
    ("BLACKSCHOLES", Cx.Domore, 8);
    ("JACOBI", Cx.Speccross, 8);
    ("FDTD", Cx.Speccross, 8);
  ]

let test_obs_off_bit_identical () =
  List.iter
    (fun (name, technique, threads) ->
      let wl = Wl.Registry.find name in
      let off = Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Train ~technique ~threads wl in
      let obs = Obs.Recorder.create () in
      let on = Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Train ~obs ~technique ~threads wl in
      let tag field = Printf.sprintf "%s/%s: %s" name (Cx.technique_name technique) field in
      let get o f = match o.Cx.run with Some r -> f r | None -> Alcotest.fail "no run" in
      Alcotest.(check (float 0.)) (tag "makespan")
        (get off (fun r -> r.Xinv_parallel.Run.makespan))
        (get on (fun r -> r.Xinv_parallel.Run.makespan));
      Alcotest.(check int) (tag "tasks")
        (get off (fun r -> r.Xinv_parallel.Run.tasks))
        (get on (fun r -> r.Xinv_parallel.Run.tasks));
      Alcotest.(check int) (tag "checks")
        (get off (fun r -> r.Xinv_parallel.Run.checks))
        (get on (fun r -> r.Xinv_parallel.Run.checks));
      Alcotest.(check int) (tag "misspecs")
        (get off (fun r -> r.Xinv_parallel.Run.misspecs))
        (get on (fun r -> r.Xinv_parallel.Run.misspecs));
      Alcotest.(check bool) (tag "verified") off.Cx.verified on.Cx.verified;
      Alcotest.(check bool) (tag "instrumented run logged events") true
        (Obs.Recorder.length obs > 0))
    fixed_runs

(* ---- flight recorder: ring wraparound and drop accounting ---- *)

let test_flight_wraparound () =
  (* Capacities 1, 2 and 2^k +/- 1 around the events count: the index
     arithmetic must survive non-power-of-two rings and single-slot rings. *)
  let nevents = 13 in
  List.iter
    (fun cap ->
      let fl = Obs.Flight.create ~capacity:cap ~domains:1 () in
      for i = 0 to nevents - 1 do
        Obs.Flight.record fl ~domain:0 Obs.Flight.Mark ~a:i ~b:(i * 10)
      done;
      let tag f = Printf.sprintf "cap %d: %s" cap f in
      let kept = min cap nevents in
      Alcotest.(check int) (tag "recorded") nevents
        (Obs.Flight.recorded fl ~domain:0);
      Alcotest.(check int) (tag "length") kept (Obs.Flight.length fl ~domain:0);
      Alcotest.(check int) (tag "drops") (nevents - kept)
        (Obs.Flight.drops fl ~domain:0);
      let entries = Obs.Flight.read fl ~domain:0 in
      Alcotest.(check int) (tag "read length") kept (List.length entries);
      (* Drop-oldest: the retained payloads are exactly the newest [kept]
         values, oldest first. *)
      Alcotest.(check (list int)) (tag "retained payloads")
        (List.init kept (fun k -> nevents - kept + k))
        (List.map (fun (e : Obs.Flight.entry) -> e.Obs.Flight.f_a) entries);
      List.iter
        (fun (e : Obs.Flight.entry) ->
          Alcotest.(check int) (tag "b rides along") (e.Obs.Flight.f_a * 10)
            e.Obs.Flight.f_b;
          Alcotest.(check string) (tag "kind survives") "mark"
            (Obs.Flight.kind_name e.Obs.Flight.f_kind))
        entries)
    [ 1; 2; 3; 4; 5; 7; 8; 9 ];
  (* Multi-ring accounting stays per-domain. *)
  let fl = Obs.Flight.create ~capacity:2 ~domains:3 () in
  Obs.Flight.record fl ~domain:2 Obs.Flight.Mark ~a:1 ~b:0;
  Alcotest.(check int) "untouched ring empty" 0 (Obs.Flight.length fl ~domain:0);
  Alcotest.(check int) "total length" 1 (Obs.Flight.total_length fl);
  Alcotest.(check int) "total drops" 0 (Obs.Flight.total_drops fl)

(* ---- stall-cause table parity with the native engines ---- *)

let test_flight_cause_parity () =
  let module Stallcat = Xinv_native.Stallcat in
  Alcotest.(check int) "cause count" (List.length Stallcat.all)
    Obs.Flight.ncauses;
  List.iteri
    (fun i cause ->
      Alcotest.(check string)
        (Printf.sprintf "cause %d" i)
        (Stallcat.name cause) (Obs.Flight.cause_name i))
    Stallcat.all;
  Alcotest.(check string) "out of range decodes benignly" "unknown"
    (Obs.Flight.cause_name 99)

(* ---- snapshot and OpenMetrics exposition ---- *)

let test_snapshot_openmetrics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "cache.hit" in
  Obs.Metrics.add c 7;
  let g = Obs.Metrics.gauge m "spec-lead" in
  Obs.Metrics.set g 2.5;
  let h = Obs.Metrics.histogram m ~bounds:[| 1.; 10. |] "queue.depth" in
  List.iter (fun v -> Obs.Metrics.observe h v) [ 0.5; 5.; 50. ];
  let snap = Obs.Snapshot.take m in
  Alcotest.(check (option int)) "counter lookup" (Some 7)
    (Obs.Snapshot.counter snap "cache.hit");
  Alcotest.(check (option (float 1e-9))) "gauge lookup" (Some 2.5)
    (Obs.Snapshot.gauge snap "spec-lead");
  (* A snapshot is a copy: later mutation must not leak in. *)
  Obs.Metrics.add c 100;
  Obs.Metrics.observe h 5.;
  Alcotest.(check (option int)) "snapshot is frozen" (Some 7)
    (Obs.Snapshot.counter snap "cache.hit");
  let om = Obs.Snapshot.to_openmetrics snap in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" affix) true
        (contains ~affix om))
    [
      "# TYPE xinv_cache_hit counter";
      "xinv_cache_hit_total 7";
      "# TYPE xinv_spec_lead gauge";
      "xinv_spec_lead 2.5";
      "# TYPE xinv_queue_depth histogram";
      "xinv_queue_depth_bucket{le=\"+Inf\"} 3";
      "xinv_queue_depth_count 3";
      "# EOF";
    ];
  (* Cumulative buckets: le="1" counts 1 observation, le="10" counts 2. *)
  Alcotest.(check bool) "buckets are cumulative" true
    (contains ~affix:"_bucket{le=\"1\"} 1" om
    && contains ~affix:"_bucket{le=\"10\"} 2" om)

(* ---- critical-path analysis over a synthetic recording ---- *)

let test_critpath_synthetic () =
  let fl = Obs.Flight.create ~capacity:64 ~domains:2 () in
  (* Domain 0 dispatches to domain 1; domain 1 receives, stalls on the
     sync-cond, and commits: dispatch -> first-event and commit edges give
     a chain of length >= 2. *)
  Obs.Flight.record fl ~domain:0 Obs.Flight.Dispatch ~a:0 ~b:1;
  Obs.Flight.record fl ~domain:1 Obs.Flight.Sync_recv ~a:0 ~b:0;
  Obs.Flight.record fl ~domain:1 Obs.Flight.Stall_end ~a:2 ~b:5000;
  Obs.Flight.record fl ~domain:1 Obs.Flight.Epoch_commit ~a:0 ~b:0;
  let v = Obs.Critpath.analyze ~wall_ns:10000. fl in
  Alcotest.(check int) "events" 4 v.Obs.Critpath.v_events;
  Alcotest.(check int) "drops" 0 v.Obs.Critpath.v_drops;
  Alcotest.(check bool) "chain crosses the dispatch and the commit" true
    (v.Obs.Critpath.v_chain >= 2);
  Alcotest.(check (option string)) "dominant cause" (Some "sync-cond")
    v.Obs.Critpath.v_dominant;
  Alcotest.(check (float 1e-9)) "sync-cond attribution" 5000.
    (List.assoc "sync-cond" v.Obs.Critpath.v_stalls);
  Alcotest.(check int) "all causes listed" Obs.Flight.ncauses
    (List.length v.Obs.Critpath.v_stalls);
  (* 5000 ns blocked of 2 x 10000 ns capacity = 25% >= the 5% threshold. *)
  Alcotest.(check bool) "bottleneck names the cause" true
    (String.length v.Obs.Critpath.v_bottleneck > 9
    && String.sub v.Obs.Critpath.v_bottleneck 0 9 = "sync-cond");
  (* Authoritative stall totals override flight-derived ones. *)
  let v' =
    Obs.Critpath.analyze ~wall_ns:10000. ~stalls:[ ("barrier", 9000.) ] fl
  in
  Alcotest.(check (option string)) "?stalls overrides dominance"
    (Some "barrier") v'.Obs.Critpath.v_dominant;
  (* Valid JSON with the fields bench rows embed. *)
  let doc = parse_json (Obs.Critpath.to_json v) in
  Alcotest.(check string) "json dominant" "sync-cond"
    (str_of (member "dominant" doc));
  Alcotest.(check (float 1e-9)) "json stall_ns" 5000.
    (num_of (member "sync-cond" (member "stall_ns" doc)));
  (* An idle recording blames compute, not a stall. *)
  let empty = Obs.Flight.create ~capacity:8 ~domains:1 () in
  let ve = Obs.Critpath.analyze ~wall_ns:1000. empty in
  Alcotest.(check (option string)) "no stalls -> no dominant" None
    ve.Obs.Critpath.v_dominant;
  Alcotest.(check bool) "no stalls -> compute-bound verdict" true
    (String.length ve.Obs.Critpath.v_bottleneck >= 7
    && String.sub ve.Obs.Critpath.v_bottleneck 0 7 = "compute")

(* ---- flight-recorder perturbation: recorded native runs bit-identical ---- *)

(* Every registry workload, every natively-supported technique: the run
   with the flight recorder attached must verify against sequential memory
   exactly like the bare run (both compare bit-for-bit against the same
   sequential execution), with identical work accounting.  The sim backend
   must ignore the recorder entirely. *)
let test_flight_off_bit_identical () =
  let native_techniques = [ Cx.Barrier; Cx.Domore; Cx.Speccross ] in
  List.iter
    (fun (wl : Wl.Workload.t) ->
      List.iter
        (fun technique ->
          match Cx.applicable ~backend:`Native technique wl with
          | Error _ -> ()
          | Ok () ->
              let go flight =
                Cx.run_request @@ Cx.Request.make
                  ~backend:(`Native { Cx.native_defaults with Cx.flight })
                  ~input:Wl.Workload.Train ~technique ~threads:2 wl
              in
              let off = go false and on = go true in
              let tag f =
                Printf.sprintf "%s/%s: %s" wl.Wl.Workload.name
                  (Cx.technique_name technique) f
              in
              let nget o f =
                match o.Cx.nrun with
                | Some n -> f n
                | None -> Alcotest.fail (tag "no nrun")
              in
              Alcotest.(check bool) (tag "off verified") true off.Cx.verified;
              Alcotest.(check bool) (tag "on verified") true on.Cx.verified;
              Alcotest.(check int) (tag "tasks")
                (nget off (fun n -> n.Xinv_native.Nrun.tasks))
                (nget on (fun n -> n.Xinv_native.Nrun.tasks));
              Alcotest.(check int) (tag "invocations")
                (nget off (fun n -> n.Xinv_native.Nrun.invocations))
                (nget on (fun n -> n.Xinv_native.Nrun.invocations));
              Alcotest.(check bool) (tag "bare run records nothing") true
                (off.Cx.flight = None);
              Alcotest.(check bool) (tag "recorded run surfaces the flight")
                true
                (match on.Cx.flight with
                | Some fl -> Obs.Flight.total_length fl > 0
                | None -> false))
        native_techniques;
      (* The sim backend has no flight recorder to attach. *)
      let sim =
        Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Train ~technique:Cx.Barrier ~threads:2 wl
      in
      Alcotest.(check bool)
        (wl.Wl.Workload.name ^ ": sim outcome has no flight")
        true
        (sim.Cx.flight = None && sim.Cx.postmortems = []))
    (Wl.Registry.all ())

let suite =
  [
    Alcotest.test_case "metrics counter" `Quick test_metrics_counter;
    Alcotest.test_case "metrics gauge" `Quick test_metrics_gauge;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "recorder order" `Quick test_recorder_order;
    Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "misspeculation report" `Quick test_misspec_report;
    Alcotest.test_case "obs off/on bit-identical" `Slow test_obs_off_bit_identical;
    Alcotest.test_case "flight ring wraparound" `Quick test_flight_wraparound;
    Alcotest.test_case "flight cause-table parity" `Quick test_flight_cause_parity;
    Alcotest.test_case "snapshot and openmetrics" `Quick test_snapshot_openmetrics;
    Alcotest.test_case "critical path synthetic" `Quick test_critpath_synthetic;
    Alcotest.test_case "flight off/on bit-identical" `Slow
      test_flight_off_bit_identical;
  ]
