(* Robustness layer: fault injection, watchdogs, cohort cancellation and
   graceful degradation behind the unified Crossinv.run entry point.

   The fault matrix runs every native engine under every fault kind it can
   suffer and demands a clean unwind, a verified degraded result and
   reconciled counters — never a hang (every wait is watchdog-bounded). *)

module Ir = Xinv_ir
module Nat = Xinv_native
module Wl = Xinv_workloads
module C = Xinv_core.Crossinv

(* ---------- fault specs ---------- *)

let test_spec_parsing () =
  let exact kind domain site = Nat.Fault.Exact { kind; domain; site } in
  List.iter
    (fun (s, expect) ->
      match Nat.Fault.spec_of_string s with
      | Error m -> Alcotest.fail (s ^ ": " ^ m)
      | Ok sp ->
          Alcotest.(check bool) (s ^ ": parses to expected spec") true (sp = expect);
          (* round trip *)
          Alcotest.(check bool)
            (s ^ ": survives to_string/of_string")
            true
            (Nat.Fault.spec_of_string (Nat.Fault.spec_to_string sp) = Ok sp))
    [
      ("raise@2:5", exact Nat.Fault.Worker_raise 2 5);
      ("stall@*:3", exact Nat.Fault.Queue_stall (-1) 3);
      ("poison@0:1", exact Nat.Fault.Poison_cond 0 1);
      ("sched-die@4", exact Nat.Fault.Scheduler_die (-1) 4);
      ("checker-die@2", exact Nat.Fault.Checker_die (-1) 2);
      ("rand:42", Nat.Fault.Random 42);
    ];
  List.iter
    (fun s ->
      match Nat.Fault.spec_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (s ^ ": should not parse"))
    [ "bogus"; "raise@"; "raise@x:y"; "rand:"; "raise@1:-2" ]

let test_random_resolve_deterministic () =
  let resolve () = Nat.Fault.resolve ~domains:4 ~sites:100 (Nat.Fault.Random 9) in
  Alcotest.(check bool)
    "same seed, same fault" true
    (Nat.Fault.info (resolve ()) = Nat.Fault.info (resolve ()))

let test_fires_once () =
  let f =
    Nat.Fault.resolve ~domains:4 ~sites:10
      (Nat.Fault.Exact { kind = Nat.Fault.Worker_raise; domain = -1; site = 3 })
  in
  let fo = Some f in
  Alcotest.(check bool) "not before the armed site" false
    (Nat.Fault.fires fo Nat.Fault.Worker_raise ~domain:1 ~site:2);
  Alcotest.(check bool) "not on another kind" false
    (Nat.Fault.fires fo Nat.Fault.Queue_stall ~domain:1 ~site:3);
  Alcotest.(check bool) "fires at-or-after on any domain" true
    (Nat.Fault.fires fo Nat.Fault.Worker_raise ~domain:2 ~site:5);
  Alcotest.(check bool) "fires exactly once" false
    (Nat.Fault.fires fo Nat.Fault.Worker_raise ~domain:2 ~site:5);
  Alcotest.(check bool) "fired is observable" true (Nat.Fault.fired fo);
  Alcotest.(check bool) "None never fires" false
    (Nat.Fault.fires None Nat.Fault.Worker_raise ~domain:0 ~site:0);
  let pinned =
    Nat.Fault.resolve ~domains:4 ~sites:10
      (Nat.Fault.Exact { kind = Nat.Fault.Poison_cond; domain = 2; site = 0 })
  in
  Alcotest.(check bool) "pinned domain ignores others" false
    (Nat.Fault.fires (Some pinned) Nat.Fault.Poison_cond ~domain:1 ~site:4);
  Alcotest.(check bool) "pinned domain fires on its own" true
    (Nat.Fault.fires (Some pinned) Nat.Fault.Poison_cond ~domain:2 ~site:4)

(* ---------- watchdog ---------- *)

let test_watchdog_stalled_queue () =
  (* A consumer popping an empty queue whose producer never shows up must
     get a typed Stalled promptly, not spin forever. *)
  let q = Nat.Spsc.create ~dummy:0 ~capacity:4 in
  let wd = Nat.Watchdog.create ~wait_timeout_ms:50. () in
  (match Nat.Spsc.pop ~wd ~role:"consumer" q with
  | (_ : int) -> Alcotest.fail "pop of an empty queue returned"
  | exception Nat.Watchdog.Stalled { role; waited_ns; _ } ->
      Alcotest.(check string) "stall names the waiter" "consumer" role;
      Alcotest.(check bool) "waited at least the timeout" true
        (waited_ns >= 50e6 *. 0.5);
      Alcotest.(check bool) "gave up well before forever" true
        (waited_ns < 30e9));
  Alcotest.(check int) "stall counted" 1 (Nat.Watchdog.stalls wd)

let test_watchdog_cancellation () =
  let wd = Nat.Watchdog.unbounded () in
  Alcotest.(check bool) "no root cause yet" true
    (Nat.Watchdog.root_cause wd = None);
  Alcotest.(check bool) "first cancel wins" true (Nat.Watchdog.cancel wd Exit);
  Alcotest.(check bool) "second cancel loses" false
    (Nat.Watchdog.cancel wd Not_found);
  (match Nat.Watchdog.root_cause wd with
  | Some Exit -> ()
  | _ -> Alcotest.fail "root cause is the first exception");
  Alcotest.check_raises "waits observe the token"
    (Nat.Watchdog.Cancelled "w") (fun () ->
      Nat.Watchdog.wait wd ~role:"w" ~for_:"nothing" (fun () -> false))

(* ---------- primitive unwinding ---------- *)

let test_spsc_close () =
  let q = Nat.Spsc.create ~dummy:0 ~capacity:4 in
  Alcotest.(check bool) "push 1" true (Nat.Spsc.try_push q 1);
  Alcotest.(check bool) "push 2" true (Nat.Spsc.try_push q 2);
  Nat.Spsc.close q;
  Alcotest.check_raises "producer wakes with Closed" Nat.Spsc.Closed (fun () ->
      Nat.Spsc.push q 3);
  Alcotest.(check int) "consumer drains first" 1 (Nat.Spsc.pop q);
  Alcotest.(check int) "consumer drains second" 2 (Nat.Spsc.pop q);
  Alcotest.check_raises "then observes Closed" Nat.Spsc.Closed (fun () ->
      ignore (Nat.Spsc.pop q : int))

let test_nbar_poison () =
  let bar = Nat.Nbar.create ~parties:2 in
  let woke = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        match Nat.Nbar.wait bar with
        | () -> ()
        | exception Nat.Nbar.Poisoned -> Atomic.set woke true)
  in
  Nat.Nbar.poison bar;
  Domain.join d;
  Alcotest.(check bool) "blocked party wakes with Poisoned" true
    (Atomic.get woke);
  Alcotest.check_raises "later waits fail fast" Nat.Nbar.Poisoned (fun () ->
      Nat.Nbar.wait bar)

(* ---------- graceful degradation matrix ---------- *)

let wl () = Wl.Registry.find "SYMM"

let native_opts ?(degrade = true) spec_str =
  let spec =
    match Nat.Fault.spec_of_string spec_str with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  {
    C.native_defaults with
    C.fault = Some spec;
    wait_timeout_ms = Some 2000.;
    degrade;
  }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Every failed attempt must leave a parseable postmortem next to a Perfetto
   trace: the triggering event, a full stall attribution and a bottleneck
   verdict.  This is the acceptance criterion for the whole fault matrix. *)
let check_postmortem path =
  Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
  let body = read_file path in
  Alcotest.(check bool) "postmortem header" true
    (contains body "# xinv-postmortem/1");
  Alcotest.(check bool) "postmortem has reason:" true (contains body "\nreason: ");
  let has_event =
    List.exists
      (fun k -> contains body ("\nevent: " ^ k))
      [ "fault_injected"; "run_stalled"; "run_cancelled"; "exception" ]
  in
  Alcotest.(check bool) "postmortem names the triggering event" true has_event;
  Alcotest.(check bool) "postmortem has stall-attribution:" true
    (contains body "\nstall-attribution:\n  ");
  Alcotest.(check bool) "postmortem has bottleneck:" true
    (contains body "\nbottleneck: ");
  let trace = Filename.remove_extension path ^ ".trace.json" in
  Alcotest.(check bool) (trace ^ " exists") true (Sys.file_exists trace)

let fresh_pm_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xinv-pm-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  d

(* One engine, one fault kind: the run must not hang, must unwind cleanly,
   must degrade to a weaker technique and still produce a verified result,
   and the counters must reconcile with the outcome. *)
let check_degrades technique spec_str () =
  let obs = Xinv_obs.Recorder.create () in
  let pm_dir = fresh_pm_dir () in
  let opts = { (native_opts spec_str) with C.postmortem_dir = Some pm_dir } in
  let o =
    C.run_request @@ C.Request.make
      ~backend:(`Native opts) ~input:Wl.Workload.Train ~obs ~technique
      ~threads:4 (wl ())
  in
  Alcotest.(check int)
    "one postmortem per degradation step"
    (List.length o.C.degraded)
    (List.length o.C.postmortems);
  List.iter check_postmortem o.C.postmortems;
  Alcotest.(check bool) "degraded at least one level" true (o.C.degraded <> []);
  Alcotest.(check bool) "executed a weaker technique" true
    (o.C.technique <> technique);
  Alcotest.(check bool) "degraded run verified" true o.C.verified;
  let counters = Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs) in
  Alcotest.(check (option int))
    "fault fired exactly once" (Some 1)
    (List.assoc_opt "fault.injected" counters);
  Alcotest.(check (option int))
    "degrade.level matches the steps taken"
    (Some (List.length o.C.degraded))
    (List.assoc_opt "degrade.level" counters);
  let is_stall_kind =
    String.length spec_str >= 5
    && (String.sub spec_str 0 5 = "stall" || String.sub spec_str 0 5 = "poiso")
  in
  if is_stall_kind then
    Alcotest.(check bool) "stalls were counted" true
      (match List.assoc_opt "watchdog.stall" counters with
      | Some n -> n >= 1
      | None -> false)

let fault_matrix =
  [
    (C.Barrier, "raise@*:2");
    (C.Barrier, "poison@*:2");
    (C.Domore, "raise@*:2");
    (C.Domore, "sched-die@2");
    (C.Domore, "stall@*:2");
    (C.Domore, "poison@*:2");
    (C.Domore_dup, "raise@*:2");
    (C.Domore_dup, "poison@*:2");
    (C.Speccross, "raise@*:2");
    (C.Speccross, "sched-die@2");
    (C.Speccross, "checker-die@2");
    (C.Speccross, "stall@*:2");
    (C.Speccross, "poison@*:2");
  ]

let test_no_degrade_raises_typed_error () =
  match
    C.run_request @@ C.Request.make
      ~backend:(`Native (native_opts ~degrade:false "raise@*:1"))
      ~input:Wl.Workload.Train ~technique:C.Barrier ~threads:3 (wl ())
  with
  | (_ : C.outcome) -> Alcotest.fail "the injected fault should escape"
  | exception Nat.Fault.Injected { kind = Nat.Fault.Worker_raise; _ } -> ()

let test_degraded_sequential_still_answers () =
  (* Degrading all the way down must still give the sequential result: the
     scheduler dies, DOMORE's whole chain falls through to plain barriers
     or sequential execution, and the answer stays bit-exact. *)
  let o =
    C.run_request @@ C.Request.make
      ~backend:(`Native (native_opts "sched-die@0"))
      ~input:Wl.Workload.Train ~technique:C.Domore ~threads:4 (wl ())
  in
  Alcotest.(check bool) "verified" true o.C.verified;
  Alcotest.(check bool) "speedup stays finite" true (Float.is_finite o.C.speedup)

(* ---------- backend applicability ---------- *)

let test_backend_applicability () =
  let wl = wl () in
  (match C.applicable ~backend:`Native C.Doacross wl with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "DOACROSS has no native engine");
  List.iter
    (fun t ->
      match C.applicable ~backend:`Native t wl with
      | Ok () -> ()
      | Error r -> Alcotest.fail r)
    [ C.Sequential; C.Barrier; C.Speccross ];
  let native = C.supported ~backend:`Native in
  Alcotest.(check bool) "native lists domore" true (List.mem C.Domore native);
  Alcotest.(check bool) "native omits dswp" false (List.mem C.Dswp native);
  Alcotest.(check bool) "sim lists tls" true
    (List.mem C.Tls (C.supported ~backend:`Sim))

(* ---------- deprecated wrappers ---------- *)

(* The optional-argument entry points must keep working for one release
   after the Request.t redesign, and must be exact synonyms for the
   record form.  This is the only call site allowed to silence the
   deprecation alert. *)
let[@alert "-deprecated"] test_deprecated_wrappers () =
  let wl = wl () in
  let o = C.run ~input:Wl.Workload.Train ~technique:C.Barrier ~threads:4 wl in
  Alcotest.(check bool) "run still verifies" true o.C.verified;
  (match o.C.cost with
  | C.Sim_cycles _ -> ()
  | C.Wall_ns _ -> Alcotest.fail "run must default to the simulator");
  let r =
    C.run_request
    @@ C.Request.make ~input:Wl.Workload.Train ~technique:C.Barrier ~threads:4
         wl
  in
  Alcotest.(check bool)
    "wrapper and record form agree on cost" true
    (C.cost_value o.C.cost = C.cost_value r.C.cost);
  Alcotest.(check string)
    "wrapper and record form agree on source" r.C.policy_source
    o.C.policy_source;
  let p =
    {
      Xinv_cache.Policy.backend = `Sim;
      technique = "barrier";
      domains = 4;
      grain = 1;
      batch = 32;
      sig_kind = `Segmented;
      spec_distance = None;
      epoch_size = 1000;
    }
  in
  let n = C.run_policy ~input:Wl.Workload.Train p wl in
  Alcotest.(check bool) "run_policy still verifies" true n.C.verified;
  Alcotest.(check string)
    "run_policy labels the source" "searched" n.C.policy_source

let suite =
  [
    Alcotest.test_case "fault: spec parsing and round trip" `Quick
      test_spec_parsing;
    Alcotest.test_case "fault: random resolution is deterministic" `Quick
      test_random_resolve_deterministic;
    Alcotest.test_case "fault: fires exactly once at-or-after the site" `Quick
      test_fires_once;
    Alcotest.test_case "watchdog: empty queue pop raises Stalled" `Quick
      test_watchdog_stalled_queue;
    Alcotest.test_case "watchdog: first cancel wins, waits observe it" `Quick
      test_watchdog_cancellation;
    Alcotest.test_case "spsc: close drains then raises" `Quick test_spsc_close;
    Alcotest.test_case "nbar: poison wakes blocked parties" `Quick
      test_nbar_poison;
    Alcotest.test_case "degrade: no-degrade raises the typed error" `Quick
      test_no_degrade_raises_typed_error;
    Alcotest.test_case "degrade: bottom of the chain still answers" `Quick
      test_degraded_sequential_still_answers;
    Alcotest.test_case "api: per-backend applicability and support" `Quick
      test_backend_applicability;
    Alcotest.test_case "api: deprecated wrappers still work" `Quick
      test_deprecated_wrappers;
  ]
  @ List.map
      (fun (technique, spec) ->
        Alcotest.test_case
          (Printf.sprintf "matrix: %s survives %s"
             (C.technique_name technique)
             spec)
          `Quick
          (check_degrades technique spec))
      fault_matrix
