(* Tests for the discrete-event simulator: engine semantics, synchronization
   primitives, accounting, determinism. *)

module Sim = Xinv_sim
module Engine = Xinv_sim.Engine
module Proc = Xinv_sim.Proc

let test_advance_and_now () =
  let eng = Engine.create () in
  let seen = ref [] in
  ignore
    (Engine.spawn eng ~name:"a" (fun () ->
         Proc.work 10.;
         seen := Proc.now () :: !seen;
         Proc.work 5.;
         seen := Proc.now () :: !seen));
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "times" [ 15.; 10. ] !seen;
  Alcotest.(check (float 1e-9)) "makespan" 15. (Engine.now eng);
  Alcotest.(check (float 1e-9)) "charged work" 15.
    (Engine.charged eng 0 Sim.Category.Work)

let test_parallel_threads_independent_clocks () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng (fun () -> Proc.work 100.));
  ignore (Engine.spawn eng (fun () -> Proc.work 30.));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "makespan is max" 100. (Engine.now eng);
  Alcotest.(check (float 1e-9)) "total work sums" 130.
    (Engine.total eng Sim.Category.Work)

let test_spawn_from_inside () =
  let eng = Engine.create () in
  let child_done = ref false in
  ignore
    (Engine.spawn eng (fun () ->
         Proc.work 5.;
         ignore (Proc.spawn (fun () -> Proc.work 7.; child_done := true))));
  Engine.run eng;
  Alcotest.(check bool) "child ran" true !child_done;
  Alcotest.(check (float 1e-9)) "child started at parent time" 12. (Engine.now eng)

let test_deadlock_detection () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng ~name:"stuck" (fun () -> Proc.suspend (fun _ -> ())));
  Alcotest.check_raises "deadlock raised"
    (Engine.Deadlock "at t=0: stuck(#0,Suspended)") (fun () -> Engine.run eng)

let test_deadlock_two_threads () =
  (* Two threads each waiting on a cell only the other would set: the
     diagnosis must carry the simulated clock and each thread's state. *)
  let eng = Engine.create () in
  let a = Sim.Mono_cell.create ~init:0 () and b = Sim.Mono_cell.create ~init:0 () in
  ignore
    (Engine.spawn eng ~name:"left" (fun () ->
         Proc.work 7.;
         Sim.Mono_cell.wait_ge a 1;
         Sim.Mono_cell.set b 1));
  ignore
    (Engine.spawn eng ~name:"right" (fun () ->
         Proc.work 11.;
         Sim.Mono_cell.wait_ge b 1;
         Sim.Mono_cell.set a 1));
  Alcotest.check_raises "both stuck threads reported with clock and state"
    (Engine.Deadlock "at t=11: left(#0,Suspended), right(#1,Suspended)") (fun () ->
      Engine.run eng)

let test_determinism () =
  let run_once () =
    let eng = Engine.create () in
    let log = ref [] in
    for i = 0 to 4 do
      ignore
        (Engine.spawn eng (fun () ->
             Proc.work (float_of_int (10 - i));
             log := (i, Proc.now ()) :: !log))
    done;
    Engine.run eng;
    !log
  in
  Alcotest.(check bool) "identical runs" true (run_once () = run_once ())

let test_barrier () =
  let eng = Engine.create () in
  let bar = Sim.Barrier.create ~parties:3 in
  let release_times = ref [] in
  for i = 0 to 2 do
    ignore
      (Engine.spawn eng (fun () ->
           Proc.work (float_of_int ((i + 1) * 10));
           Sim.Barrier.wait bar;
           release_times := Proc.now () :: !release_times))
  done;
  Engine.run eng;
  Alcotest.(check int) "episodes" 1 (Sim.Barrier.waits bar);
  List.iter
    (fun t -> Alcotest.(check (float 1e-9)) "all released at last arrival" 30. t)
    !release_times

let test_barrier_wait_charged () =
  let eng = Engine.create () in
  let bar = Sim.Barrier.create ~parties:2 in
  ignore (Engine.spawn eng (fun () -> Sim.Barrier.wait bar));
  ignore (Engine.spawn eng (fun () -> Proc.work 50.; Sim.Barrier.wait bar));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "early thread charged barrier wait" 50.
    (Engine.charged eng 0 Sim.Category.Barrier_wait)

let test_barrier_cyclic () =
  let eng = Engine.create () in
  let bar = Sim.Barrier.create ~parties:2 in
  let hits = ref 0 in
  for _ = 1 to 2 do
    ignore
      (Engine.spawn eng (fun () ->
           for _ = 1 to 3 do
             Proc.work 1.;
             Sim.Barrier.wait bar;
             incr hits
           done))
  done;
  Engine.run eng;
  Alcotest.(check int) "episodes" 3 (Sim.Barrier.waits bar);
  Alcotest.(check int) "hits" 6 !hits

let test_channel_fifo () =
  let eng = Engine.create () in
  let q = Sim.Channel.create () in
  let got = ref [] in
  ignore
    (Engine.spawn eng (fun () ->
         List.iter (Sim.Channel.produce q) [ 1; 2; 3 ]));
  ignore
    (Engine.spawn eng (fun () ->
         for _ = 1 to 3 do
           got := Sim.Channel.consume q :: !got
         done));
  Engine.run eng;
  Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (List.rev !got)

let test_channel_blocks_until_produced () =
  let eng = Engine.create () in
  let q = Sim.Channel.create () in
  let consumed_at = ref 0. in
  ignore
    (Engine.spawn eng (fun () ->
         ignore (Sim.Channel.consume q);
         consumed_at := Proc.now ()));
  ignore (Engine.spawn eng (fun () -> Proc.work 42.; Sim.Channel.produce q ()));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "consumer waited" 42. !consumed_at;
  Alcotest.(check int) "produced count" 1 (Sim.Channel.produced q)

let test_channel_costs () =
  let eng = Engine.create () in
  let q = Sim.Channel.create ~produce_cost:3. ~consume_cost:2. () in
  ignore
    (Engine.spawn eng (fun () ->
         Sim.Channel.produce q 1;
         ignore (Sim.Channel.consume q)));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "queue cycles charged" 5.
    (Engine.charged eng 0 Sim.Category.Queue)

let test_try_consume () =
  let eng = Engine.create () in
  ignore
    (Engine.spawn eng (fun () ->
         let q = Sim.Channel.create () in
         Alcotest.(check (option int)) "empty" None (Sim.Channel.try_consume q);
         Sim.Channel.produce q 9;
         Alcotest.(check (option int)) "nonempty" (Some 9) (Sim.Channel.try_consume q)));
  Engine.run eng

let test_mutex_exclusion () =
  let eng = Engine.create () in
  let m = Sim.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Engine.spawn eng (fun () ->
           Sim.Mutex.with_lock m (fun () ->
               incr inside;
               max_inside := Stdlib.max !max_inside !inside;
               Proc.work 10.;
               decr inside)))
  done;
  Engine.run eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check (float 1e-9)) "serialized" 40. (Engine.now eng);
  Alcotest.(check int) "contended count" 3 (Sim.Mutex.contended m)

let test_mono_cell () =
  let eng = Engine.create () in
  let c = Sim.Mono_cell.create ~init:0 () in
  let woke_at = ref 0. in
  ignore
    (Engine.spawn eng (fun () ->
         Sim.Mono_cell.wait_ge c 5;
         woke_at := Proc.now ()));
  ignore
    (Engine.spawn eng (fun () ->
         Proc.work 10.;
         Sim.Mono_cell.set c 3;
         Proc.work 10.;
         Sim.Mono_cell.set c 7));
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "woken when threshold reached" 20. !woke_at;
  Alcotest.(check int) "value" 7 (Sim.Mono_cell.get c)

let test_mono_cell_raise_to () =
  let c = Sim.Mono_cell.create ~init:5 () in
  Sim.Mono_cell.raise_to c 3;
  Alcotest.(check int) "no-op below" 5 (Sim.Mono_cell.get c);
  Sim.Mono_cell.raise_to c 9;
  Alcotest.(check int) "raised" 9 (Sim.Mono_cell.get c)

let test_trace_capture () =
  let eng = Engine.create ~trace:true () in
  ignore (Engine.spawn eng (fun () -> Proc.work ~label:"body" 10.));
  Engine.run eng;
  match Engine.segments eng with
  | [ seg ] ->
      Alcotest.(check string) "label" "body" seg.Sim.Trace.label;
      Alcotest.(check (float 1e-9)) "end" 10. seg.Sim.Trace.t_end;
      let rendered = Sim.Trace.render ~width:4 [ seg ] in
      Alcotest.(check bool) "renders" true (String.length rendered > 0)
  | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs)

let test_machine_work_factor () =
  let m = Sim.Machine.default in
  Alcotest.(check (float 1e-9)) "1 thread = no contention" 1.
    (Sim.Machine.work_factor m ~threads:1);
  Alcotest.(check bool) "more threads slower" true
    (Sim.Machine.work_factor m ~threads:24 > Sim.Machine.work_factor m ~threads:2)

let test_mutex_exception_safety () =
  let eng = Engine.create () in
  let m = Sim.Mutex.create () in
  let second_ran = ref false in
  ignore
    (Engine.spawn eng (fun () ->
         (try Sim.Mutex.with_lock m (fun () -> raise Exit) with Exit -> ());
         (* The lock must have been released by the failing critical
            section. *)
         Sim.Mutex.with_lock m (fun () -> second_ran := true)));
  Engine.run eng;
  Alcotest.(check bool) "lock released after exception" true !second_ran

let test_category_indexing () =
  Alcotest.(check int) "dense index count" Sim.Category.count
    (List.length Sim.Category.all);
  let idx = List.map Sim.Category.index Sim.Category.all in
  Alcotest.(check (list int)) "indices are 0..n-1"
    (List.init Sim.Category.count Fun.id)
    (List.sort compare idx);
  List.iter
    (fun c ->
      Alcotest.(check bool) "names non-empty" true
        (String.length (Sim.Category.to_string c) > 0))
    Sim.Category.all

let test_trace_by_thread () =
  let eng = Engine.create ~trace:true () in
  for _ = 1 to 2 do
    ignore (Engine.spawn eng (fun () -> Proc.work 5.; Proc.work 3.))
  done;
  Engine.run eng;
  let groups = Sim.Trace.by_thread (Engine.segments eng) in
  Alcotest.(check int) "two threads" 2 (List.length groups);
  List.iter
    (fun (_, segs) -> Alcotest.(check int) "two segments each" 2 (List.length segs))
    groups

let test_trace_render_pinned () =
  (* Crafted two-thread trace; pins the exact rendered output so the
     cursor-based cell scan stays equivalent to the original per-cell probe. *)
  let seg tid label cat t_start t_end =
    { Sim.Trace.tid; label; cat; t_start; t_end }
  in
  let segs =
    [
      seg 0 "a" Sim.Category.Work 0. 10.;
      seg 1 "c" Sim.Category.Work 5. 15.;
      seg 0 "b" Sim.Category.Runtime 10. 20.;
    ]
  in
  let expected =
    String.concat "\n"
      [
        "    time  T0       | T1      ";
        "       0  a        | .       ";
        "       5  a        | c       ";
        "      10  b        | c       ";
        "      15  b        | .       ";
      ]
  in
  Alcotest.(check string) "pinned render" expected (Sim.Trace.render ~width:4 segs)

let test_trace_by_thread_ordering () =
  let seg tid label t_start t_end =
    { Sim.Trace.tid; label; cat = Sim.Category.Work; t_start; t_end }
  in
  (* Interleaved insertion across threads, including an out-of-tid-order
     first appearance (tid 2 before tid 0). *)
  let segs =
    [
      seg 2 "x" 0. 1.;
      seg 0 "p" 0. 2.;
      seg 2 "y" 1. 3.;
      seg 0 "q" 2. 4.;
      seg 2 "z" 3. 5.;
    ]
  in
  let groups = Sim.Trace.by_thread segs in
  Alcotest.(check (list int)) "groups sorted by tid" [ 0; 2 ] (List.map fst groups);
  let labels tid =
    List.map (fun s -> s.Sim.Trace.label) (List.assoc tid groups)
  in
  Alcotest.(check (list string)) "tid 0 oldest-first" [ "p"; "q" ] (labels 0);
  Alcotest.(check (list string)) "tid 2 oldest-first" [ "x"; "y"; "z" ] (labels 2)

let test_trace_disabled_by_default () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng (fun () -> Proc.work 5.));
  Engine.run eng;
  Alcotest.(check int) "no segments captured" 0 (List.length (Engine.segments eng))

let test_machine_pp () =
  let s = Format.asprintf "%a" Sim.Machine.pp Sim.Machine.default in
  Alcotest.(check bool) "machine pp renders" true (String.length s > 40)

let test_engine_charge_api () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng ~name:"w" (fun () -> Proc.work 7.));
  Engine.run eng;
  Engine.charge eng 0 Sim.Category.Checker 3.;
  Alcotest.(check (float 1e-9)) "explicit charge recorded" 3.
    (Engine.charged eng 0 Sim.Category.Checker);
  Alcotest.(check (float 1e-9)) "busy sums categories" 10. (Engine.busy eng 0);
  Alcotest.(check string) "thread name" "w" (Engine.name_of eng 0);
  Alcotest.(check int) "thread count" 1 (Engine.thread_count eng)

let prop_engine_deterministic_makespan =
  QCheck.Test.make ~name:"engine makespan deterministic" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 1 100))
    (fun costs ->
      let run () =
        let eng = Engine.create () in
        List.iteri
          (fun i c ->
            ignore
              (Engine.spawn eng (fun () ->
                   Proc.work (float_of_int c);
                   Proc.work (float_of_int (i + 1)))))
          costs;
        Engine.run eng;
        Engine.now eng
      in
      run () = run ())

let suite =
  [
    Alcotest.test_case "advance/now" `Quick test_advance_and_now;
    Alcotest.test_case "parallel threads" `Quick test_parallel_threads_independent_clocks;
    Alcotest.test_case "spawn from inside" `Quick test_spawn_from_inside;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "deadlock two threads" `Quick test_deadlock_two_threads;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "barrier release" `Quick test_barrier;
    Alcotest.test_case "barrier wait accounting" `Quick test_barrier_wait_charged;
    Alcotest.test_case "barrier cyclic reuse" `Quick test_barrier_cyclic;
    Alcotest.test_case "channel fifo" `Quick test_channel_fifo;
    Alcotest.test_case "channel blocking" `Quick test_channel_blocks_until_produced;
    Alcotest.test_case "channel costs" `Quick test_channel_costs;
    Alcotest.test_case "try_consume" `Quick test_try_consume;
    Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
    Alcotest.test_case "mono cell threshold" `Quick test_mono_cell;
    Alcotest.test_case "mono cell raise_to" `Quick test_mono_cell_raise_to;
    Alcotest.test_case "trace capture" `Quick test_trace_capture;
    Alcotest.test_case "work factor" `Quick test_machine_work_factor;
    Alcotest.test_case "mutex exception safety" `Quick test_mutex_exception_safety;
    Alcotest.test_case "category indexing" `Quick test_category_indexing;
    Alcotest.test_case "trace by thread" `Quick test_trace_by_thread;
    Alcotest.test_case "trace render pinned" `Quick test_trace_render_pinned;
    Alcotest.test_case "trace by_thread ordering" `Quick test_trace_by_thread_ordering;
    Alcotest.test_case "trace disabled by default" `Quick test_trace_disabled_by_default;
    Alcotest.test_case "machine pp" `Quick test_machine_pp;
    Alcotest.test_case "engine charge api" `Quick test_engine_charge_api;
    QCheck_alcotest.to_alcotest prop_engine_deterministic_makespan;
  ]
