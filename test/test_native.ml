(* Tests for the native (real OCaml 5 domains) backend: the lock-free
   primitives it is built from, and cross-validation of every registry
   workload against both sequential execution and the simulator. *)

module Ir = Xinv_ir
module Par = Xinv_parallel
module Nat = Xinv_native
module Wl = Xinv_workloads
module C = Xinv_core.Crossinv

(* ---------- primitives ---------- *)

let test_spsc_two_domains () =
  let q = Nat.Spsc.create ~dummy:(-1) ~capacity:8 in
  let n = 10_000 in
  let producer = Domain.spawn (fun () -> for i = 0 to n - 1 do Nat.Spsc.push q i done) in
  let bad = ref 0 in
  for i = 0 to n - 1 do
    if Nat.Spsc.pop q <> i then incr bad
  done;
  Domain.join producer;
  Alcotest.(check int) "FIFO order preserved across domains" 0 !bad;
  Alcotest.(check (option int)) "drained" None (Nat.Spsc.try_pop q)

let test_spsc_capacity_rounding () =
  let q = Nat.Spsc.create ~dummy:0 ~capacity:5 in
  for i = 1 to 8 do
    Alcotest.(check bool) "push fits rounded capacity" true (Nat.Spsc.try_push q i)
  done;
  Alcotest.(check bool) "ninth blocks" false (Nat.Spsc.try_push q 9);
  Alcotest.(check int) "length" 8 (Nat.Spsc.length q)

let test_nbar_rounds () =
  let parties = 4 in
  let bar = Nat.Nbar.create ~parties in
  let rounds = 1000 in
  let counters = Array.init parties (fun _ -> Atomic.make 0) in
  let lagging = Atomic.make 0 in
  let loop me () =
    for _ = 1 to rounds do
      (* Everyone must have finished the previous round before anyone
         starts the next one. *)
      Array.iteri
        (fun o c ->
          if o <> me && abs (Atomic.get c - Atomic.get counters.(me)) > 1 then
            Atomic.incr lagging)
        counters;
      Atomic.incr counters.(me);
      Nat.Nbar.wait bar
    done
  in
  let ds = Array.init (parties - 1) (fun i -> Domain.spawn (loop (i + 1))) in
  loop 0 ();
  Array.iter Domain.join ds;
  Alcotest.(check int) "no round skew beyond one" 0 (Atomic.get lagging);
  Alcotest.(check int) "round count" rounds (Nat.Nbar.waits bar)

let test_pool_reuse_and_errors () =
  Nat.Pool.with_pool ~workers:2 (fun pool ->
      let hits = Atomic.make 0 in
      let job () = Atomic.incr hits in
      Nat.Pool.run pool [| job; job; job |];
      Nat.Pool.run pool [| job; job |];
      Alcotest.(check int) "all jobs ran on a reused pool" 5 (Atomic.get hits);
      Alcotest.check_raises "worker exception propagates" (Failure "boom")
        (fun () -> Nat.Pool.run pool [| job; (fun () -> failwith "boom") |]);
      (* The pool survives a failed batch. *)
      Nat.Pool.run pool [| job |];
      Alcotest.(check int) "pool survives failure" 7 (Atomic.get hits))

let test_work_spin () =
  let w = Nat.Work.Spin 10.0 in
  let ns = Nat.Nrun.timed (fun () -> Nat.Work.burn w 10_000.0) in
  (* 10k cycles at 10ns each: at least 100us of real spinning (calibration
     jitter only ever makes it longer on a loaded machine). *)
  Alcotest.(check bool)
    (Printf.sprintf "calibrated spin takes real time (%.0fns)" ns)
    true
    (ns > 10_000.0)

(* ---------- cross-validation against the simulator ---------- *)

let sim_seq_env (wl : Wl.Workload.t) input =
  let env = wl.Wl.Workload.fresh_env input in
  let (_ : float) = Ir.Seq_interp.run (wl.Wl.Workload.program input) env in
  env

(* Direct memory comparison for one workload: the simulator's sequential
   interpreter vs the native engines' final state. *)
let test_native_memory_direct () =
  let wl = Wl.Registry.find "SYMM" in
  let input = Wl.Workload.Train in
  let seq = sim_seq_env wl input in
  let program = wl.Wl.Workload.program input in
  Nat.Pool.with_pool ~workers:3 (fun pool ->
      let env = wl.Wl.Workload.fresh_env input in
      (match Ir.Mtcg.generate program env with
      | Ir.Mtcg.Inapplicable r -> Alcotest.fail r
      | Ir.Mtcg.Plan plan ->
          let (_ : Nat.Nrun.t) = Nat.Ndomore.run ~pool ~plan program env in
          ());
      Alcotest.(check (list (pair string int)))
        "native DOMORE memory = sim sequential memory" []
        (Ir.Memory.diff seq.Ir.Env.mem env.Ir.Env.mem))

let threads = 4

let sim_outcome technique wl =
  C.run ~input:Wl.Workload.Train ~technique ~threads wl

let native_outcome ?pool technique wl =
  C.run
    ~backend:(`Native { C.native_defaults with C.pool })
    ~input:Wl.Workload.Train ~technique ~threads wl

let nrun (n : C.outcome) = Option.get n.C.nrun

let check_verified name (n : C.outcome) =
  Alcotest.(check (list (pair string int)))
    (name ^ ": native memory = sequential memory")
    [] n.C.mismatches

let test_crossval_barrier () =
  Nat.Pool.with_pool ~workers:(threads - 1) (fun pool ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          let n = native_outcome ~pool C.Barrier wl in
          check_verified (wl.Wl.Workload.name ^ "/barrier") n;
          let s = sim_outcome C.Barrier wl in
          Alcotest.(check bool)
            (wl.Wl.Workload.name ^ "/barrier: sim verified")
            true s.C.verified)
        (Wl.Registry.all ()))

let test_crossval_domore () =
  Nat.Pool.with_pool ~workers:(threads - 1) (fun pool ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          match C.applicable C.Domore wl with
          | Error _ -> ()
          | Ok () ->
              let name = wl.Wl.Workload.name in
              let n = native_outcome ~pool C.Domore wl in
              check_verified (name ^ "/domore") n;
              let s = sim_outcome C.Domore wl in
              let sr = Option.get s.C.run in
              Alcotest.(check int)
                (name ^ "/domore: task counts match")
                sr.Par.Run.tasks (nrun n).Nat.Nrun.tasks;
              (* Same deterministic scheduling decisions => the very same
                 sync conditions stream to the workers. *)
              Alcotest.(check int)
                (name ^ "/domore: sync-condition counts match")
                sr.Par.Run.checks (nrun n).Nat.Nrun.conds;
              let d = native_outcome ~pool C.Domore_dup wl in
              check_verified (name ^ "/domore-dup") d;
              Alcotest.(check int)
                (name ^ "/domore-dup: task counts match")
                sr.Par.Run.tasks (nrun d).Nat.Nrun.tasks)
        (Wl.Registry.all ()))

let test_crossval_speccross () =
  Nat.Pool.with_pool ~workers:(threads - 1) (fun pool ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          match C.applicable C.Speccross wl with
          | Error _ -> ()
          | Ok () ->
              let name = wl.Wl.Workload.name in
              let n = native_outcome ~pool C.Speccross wl in
              check_verified (name ^ "/speccross") n;
              let s = sim_outcome C.Speccross wl in
              Alcotest.(check bool)
                (name ^ "/speccross: sim verified")
                true s.C.verified;
              let sr = Option.get s.C.run in
              (* A dependence inside the profiled speculative range (FDTD's
                 WAR pairs at distance spec_distance - 1) misspeculates in
                 both engines; when the simulator saw none, the throttle
                 provably orders every profiled dependence and the native
                 run must be race-free too.  First-attempt task counts only
                 coincide when neither side recovered. *)
              if sr.Par.Run.misspecs = 0 then begin
                Alcotest.(check int)
                  (name ^ "/speccross: native misspeculations")
                  0 (nrun n).Nat.Nrun.misspecs;
                Alcotest.(check int)
                  (name ^ "/speccross: task counts match")
                  sr.Par.Run.tasks (nrun n).Nat.Nrun.tasks
              end)
        (Wl.Registry.all ()))

let test_native_inject_recovers () =
  let wl = Wl.Registry.find "SYMM" in
  let n =
    C.run ~backend:(`Native C.native_defaults) ~input:Wl.Workload.Train
      ~technique:(C.Speccross_inject 2) ~threads wl
  in
  Alcotest.(check int) "exactly one forced misspeculation" 1
    (nrun n).Nat.Nrun.misspecs;
  check_verified "SYMM/inject" n

let test_native_bloom_speccross () =
  (* Exercise the Bloom signature kind natively (Segmented is the default):
     termination and correctness, not zero false positives. *)
  let wl = Wl.Registry.find "SYMM" in
  let input = Wl.Workload.Train in
  let seq = sim_seq_env wl input in
  let program = wl.Wl.Workload.program input in
  Nat.Pool.with_pool ~workers:3 (fun pool ->
      let env = wl.Wl.Workload.fresh_env input in
      let config =
        {
          (Nat.Nspec.default_config ~workers:3) with
          Nat.Nspec.sig_kind = Xinv_runtime.Signature.Bloom { bits = 4096; hashes = 3 };
          mode_of = C.spec_mode_of_plan wl;
          spec_distance = 64;
        }
      in
      let (_ : Nat.Nrun.t) = Nat.Nspec.run ~pool ~config program env in
      Alcotest.(check (list (pair string int)))
        "bloom-checked native SPECCROSS memory" []
        (Ir.Memory.diff seq.Ir.Env.mem env.Ir.Env.mem))

let test_native_obs_counters () =
  let wl = Wl.Registry.find "SYMM" in
  let obs = Xinv_obs.Recorder.create () in
  let n =
    C.run ~backend:(`Native C.native_defaults) ~input:Wl.Workload.Train ~obs
      ~technique:C.Domore ~threads wl
  in
  let counters = Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs) in
  Alcotest.(check (option int))
    "native run feeds domore.tasks_dispatched"
    (Some (nrun n).Nat.Nrun.tasks)
    (List.assoc_opt "domore.tasks_dispatched" counters)

let suite =
  [
    Alcotest.test_case "spsc: FIFO across two domains" `Quick test_spsc_two_domains;
    Alcotest.test_case "spsc: capacity rounds up" `Quick test_spsc_capacity_rounding;
    Alcotest.test_case "nbar: sense-reversing rounds" `Quick test_nbar_rounds;
    Alcotest.test_case "pool: reuse and error propagation" `Quick
      test_pool_reuse_and_errors;
    Alcotest.test_case "work: calibrated spin" `Quick test_work_spin;
    Alcotest.test_case "memory: native DOMORE vs sim sequential" `Quick
      test_native_memory_direct;
    Alcotest.test_case "cross-validate barrier (all workloads)" `Quick
      test_crossval_barrier;
    Alcotest.test_case "cross-validate DOMORE (all workloads)" `Quick
      test_crossval_domore;
    Alcotest.test_case "cross-validate SPECCROSS (all workloads)" `Quick
      test_crossval_speccross;
    Alcotest.test_case "speccross: injected misspeculation recovers" `Quick
      test_native_inject_recovers;
    Alcotest.test_case "speccross: bloom signatures" `Quick
      test_native_bloom_speccross;
    Alcotest.test_case "obs: native runs feed metrics" `Quick
      test_native_obs_counters;
  ]
