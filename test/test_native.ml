(* Tests for the native (real OCaml 5 domains) backend: the lock-free
   primitives it is built from, and cross-validation of every registry
   workload against both sequential execution and the simulator. *)

module Ir = Xinv_ir
module Par = Xinv_parallel
module Nat = Xinv_native
module Wl = Xinv_workloads
module C = Xinv_core.Crossinv

(* ---------- primitives ---------- *)

let test_spsc_two_domains () =
  let q = Nat.Spsc.create ~dummy:(-1) ~capacity:8 in
  let n = 10_000 in
  let producer = Domain.spawn (fun () -> for i = 0 to n - 1 do Nat.Spsc.push q i done) in
  let bad = ref 0 in
  for i = 0 to n - 1 do
    if Nat.Spsc.pop q <> i then incr bad
  done;
  Domain.join producer;
  Alcotest.(check int) "FIFO order preserved across domains" 0 !bad;
  Alcotest.(check (option int)) "drained" None (Nat.Spsc.try_pop q)

let test_spsc_exact_capacity () =
  (* Exact occupancy semantics: a capacity-[n] queue admits exactly [n]
     items, even though the backing buffer rounds up to a power of two.
     Boundary capacities: 1, 2, and 2^k +/- 1 around several k. *)
  List.iter
    (fun cap ->
      let q = Nat.Spsc.create ~dummy:0 ~capacity:cap in
      Alcotest.(check int)
        (Printf.sprintf "capacity %d reported exactly" cap)
        cap (Nat.Spsc.capacity q);
      for i = 1 to cap do
        Alcotest.(check bool)
          (Printf.sprintf "cap %d: push %d fits" cap i)
          true (Nat.Spsc.try_push q i)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "cap %d: push %d rejected" cap (cap + 1))
        false
        (Nat.Spsc.try_push q (cap + 1));
      Alcotest.(check int) "length = capacity when full" cap (Nat.Spsc.length q);
      (* One pop must open exactly one slot (wrap math at exact capacity). *)
      Alcotest.(check (option int)) "FIFO head" (Some 1) (Nat.Spsc.try_pop q);
      Alcotest.(check bool) "slot reopens after pop" true
        (Nat.Spsc.try_push q (cap + 1));
      Alcotest.(check bool) "and only one slot" false (Nat.Spsc.try_push q 0))
    [ 1; 2; 3; 5; 7; 8; 9; 15; 17; 31; 33 ]

let test_spsc_batch_equivalence () =
  (* Property: the stream a Batch producer publishes is word-for-word the
     stream a plain push loop would have produced, for random word counts,
     ring capacities, batch sizes, and consumer chunk sizes, with a consumer
     that randomly mixes pop and pop_chunk. *)
  let rng = Xinv_util.Prng.create ~seed:42 in
  for trial = 1 to 30 do
    let n = Xinv_util.Prng.int_in rng 1 400 in
    let cap = Xinv_util.Prng.int_in rng 1 16 in
    let bsize = Xinv_util.Prng.int_in rng 1 16 in
    let crng = Xinv_util.Prng.split rng in
    let input = Array.init n (fun i -> (trial * 1000) + i) in
    let q = Nat.Spsc.create ~dummy:(-1) ~capacity:cap in
    let out = Array.make n (-2) in
    let consumer =
      Domain.spawn (fun () ->
          let buf = Array.make 8 (-1) in
          let got = ref 0 in
          while !got < n do
            if Xinv_util.Prng.bool crng then begin
              let want = Stdlib.min (Xinv_util.Prng.int_in crng 1 8) (n - !got) in
              let k = Nat.Spsc.pop_chunk q buf ~pos:0 ~len:want in
              Array.blit buf 0 out !got k;
              got := !got + k;
              if k = 0 then Domain.cpu_relax ()
            end
            else begin
              out.(!got) <- Nat.Spsc.pop q;
              incr got
            end
          done)
    in
    let b = Nat.Spsc.Batch.create ~size:bsize q in
    Array.iter
      (fun x ->
        (* Randomly interleave non-blocking adds (with retry), blocking
           pushes, and spontaneous flushes — all must preserve order. *)
        (match Xinv_util.Prng.int rng 4 with
        | 0 ->
            while not (Nat.Spsc.Batch.add b x) do
              Domain.cpu_relax ()
            done
        | 1 ->
            Nat.Spsc.Batch.push b x;
            ignore (Nat.Spsc.Batch.try_flush b)
        | _ -> Nat.Spsc.Batch.push b x);
        if Xinv_util.Prng.chance rng 0.1 then Nat.Spsc.Batch.flush b)
      input;
    Nat.Spsc.Batch.flush b;
    Domain.join consumer;
    Alcotest.(check (array int))
      (Printf.sprintf "trial %d (n=%d cap=%d batch=%d): streams identical"
         trial n cap bsize)
      input out
  done

let test_spsc_batch_close_drain () =
  (* Early close: already-published words drain in order, then Closed; a
     producer buffer stranded behind a closed-and-full ring raises Closed
     out of flush rather than spinning forever. *)
  let q = Nat.Spsc.create ~dummy:0 ~capacity:8 in
  let b = Nat.Spsc.Batch.create ~size:4 q in
  for i = 1 to 6 do
    Nat.Spsc.Batch.push b i
  done;
  Nat.Spsc.Batch.flush b;
  Alcotest.(check int) "flushed buffer is empty" 0 (Nat.Spsc.Batch.pending b);
  Nat.Spsc.close q;
  for i = 1 to 6 do
    Alcotest.(check int) "drains in order after close" i (Nat.Spsc.pop q)
  done;
  Alcotest.check_raises "pop past the drained tail" Nat.Spsc.Closed (fun () ->
      ignore (Nat.Spsc.pop q));
  Alcotest.check_raises "push into closed queue" Nat.Spsc.Closed (fun () ->
      Nat.Spsc.Batch.push b 7);
  let qf = Nat.Spsc.create ~dummy:0 ~capacity:2 in
  let bf = Nat.Spsc.Batch.create ~size:4 qf in
  for i = 1 to 4 do
    Alcotest.(check bool) "buffers while ring is filling" true
      (Nat.Spsc.Batch.add bf i)
  done;
  Alcotest.(check int) "all four words buffered locally" 4
    (Nat.Spsc.Batch.pending bf);
  Nat.Spsc.close qf;
  Alcotest.check_raises "flush of stranded words after close" Nat.Spsc.Closed
    (fun () -> Nat.Spsc.Batch.flush bf)

let test_pad_isolation () =
  let a = Nat.Pad.atomic 7 in
  Atomic.incr a;
  Alcotest.(check int) "padded atomic behaves like Atomic" 8 (Atomic.get a);
  let arr = Nat.Pad.atomic_array 3 1 in
  Atomic.set arr.(1) 9;
  Alcotest.(check (list int)) "padded array elements are independent"
    [ 1; 9; 1 ]
    (List.map Atomic.get (Array.to_list arr));
  let c = Nat.Pad.cell 5 in
  c.Nat.Pad.v <- 6;
  Alcotest.(check int) "padded cell is mutable" 6 c.Nat.Pad.v;
  Alcotest.(check bool) "pad spans at least a cache line" true
    (Nat.Pad.pad_words >= Nat.Pad.words_per_cache_line)

let test_nbar_rounds () =
  let parties = 4 in
  let bar = Nat.Nbar.create ~parties in
  let rounds = 1000 in
  let counters = Array.init parties (fun _ -> Atomic.make 0) in
  let lagging = Atomic.make 0 in
  let loop me () =
    for _ = 1 to rounds do
      (* Everyone must have finished the previous round before anyone
         starts the next one. *)
      Array.iteri
        (fun o c ->
          if o <> me && abs (Atomic.get c - Atomic.get counters.(me)) > 1 then
            Atomic.incr lagging)
        counters;
      Atomic.incr counters.(me);
      Nat.Nbar.wait bar
    done
  in
  let ds = Array.init (parties - 1) (fun i -> Domain.spawn (loop (i + 1))) in
  loop 0 ();
  Array.iter Domain.join ds;
  Alcotest.(check int) "no round skew beyond one" 0 (Atomic.get lagging);
  Alcotest.(check int) "round count" rounds (Nat.Nbar.waits bar)

let test_pool_reuse_and_errors () =
  Nat.Pool.with_pool ~workers:2 (fun pool ->
      let hits = Atomic.make 0 in
      let job () = Atomic.incr hits in
      Nat.Pool.run pool [| job; job; job |];
      Nat.Pool.run pool [| job; job |];
      Alcotest.(check int) "all jobs ran on a reused pool" 5 (Atomic.get hits);
      Alcotest.check_raises "worker exception propagates" (Failure "boom")
        (fun () -> Nat.Pool.run pool [| job; (fun () -> failwith "boom") |]);
      (* The pool survives a failed batch. *)
      Nat.Pool.run pool [| job |];
      Alcotest.(check int) "pool survives failure" 7 (Atomic.get hits))

let test_work_spin () =
  let w = Nat.Work.Spin 10.0 in
  let ns = Nat.Nrun.timed (fun () -> Nat.Work.burn w 10_000.0) in
  (* 10k cycles at 10ns each: at least 100us of real spinning (calibration
     jitter only ever makes it longer on a loaded machine). *)
  Alcotest.(check bool)
    (Printf.sprintf "calibrated spin takes real time (%.0fns)" ns)
    true
    (ns > 10_000.0)

(* ---------- cross-validation against the simulator ---------- *)

let sim_seq_env (wl : Wl.Workload.t) input =
  let env = wl.Wl.Workload.fresh_env input in
  let (_ : float) = Ir.Seq_interp.run (wl.Wl.Workload.program input) env in
  env

(* Direct memory comparison for one workload: the simulator's sequential
   interpreter vs the native engines' final state. *)
let test_native_memory_direct () =
  let wl = Wl.Registry.find "SYMM" in
  let input = Wl.Workload.Train in
  let seq = sim_seq_env wl input in
  let program = wl.Wl.Workload.program input in
  Nat.Pool.with_pool ~workers:3 (fun pool ->
      let env = wl.Wl.Workload.fresh_env input in
      (match Ir.Mtcg.generate program env with
      | Ir.Mtcg.Inapplicable r -> Alcotest.fail r
      | Ir.Mtcg.Plan plan ->
          let (_ : Nat.Nrun.t) = Nat.Ndomore.run ~pool ~plan program env in
          ());
      Alcotest.(check (list (pair string int)))
        "native DOMORE memory = sim sequential memory" []
        (Ir.Memory.diff seq.Ir.Env.mem env.Ir.Env.mem))

let threads = 4

let sim_outcome technique wl =
  C.run_request @@ C.Request.make ~input:Wl.Workload.Train ~technique ~threads wl

let native_outcome ?pool technique wl =
  C.run_request @@ C.Request.make
    ~backend:(`Native { C.native_defaults with C.pool })
    ~input:Wl.Workload.Train ~technique ~threads wl

let nrun (n : C.outcome) = Option.get n.C.nrun

let check_verified name (n : C.outcome) =
  Alcotest.(check (list (pair string int)))
    (name ^ ": native memory = sequential memory")
    [] n.C.mismatches

let test_crossval_barrier () =
  Nat.Pool.with_pool ~workers:(threads - 1) (fun pool ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          let n = native_outcome ~pool C.Barrier wl in
          check_verified (wl.Wl.Workload.name ^ "/barrier") n;
          let s = sim_outcome C.Barrier wl in
          Alcotest.(check bool)
            (wl.Wl.Workload.name ^ "/barrier: sim verified")
            true s.C.verified)
        (Wl.Registry.all ()))

let test_crossval_domore () =
  Nat.Pool.with_pool ~workers:(threads - 1) (fun pool ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          match C.applicable C.Domore wl with
          | Error _ -> ()
          | Ok () ->
              let name = wl.Wl.Workload.name in
              let n = native_outcome ~pool C.Domore wl in
              check_verified (name ^ "/domore") n;
              let s = sim_outcome C.Domore wl in
              let sr = Option.get s.C.run in
              Alcotest.(check int)
                (name ^ "/domore: task counts match")
                sr.Par.Run.tasks (nrun n).Nat.Nrun.tasks;
              (* Same deterministic scheduling decisions => the very same
                 sync conditions stream to the workers. *)
              Alcotest.(check int)
                (name ^ "/domore: sync-condition counts match")
                sr.Par.Run.checks (nrun n).Nat.Nrun.conds;
              let d = native_outcome ~pool C.Domore_dup wl in
              check_verified (name ^ "/domore-dup") d;
              Alcotest.(check int)
                (name ^ "/domore-dup: task counts match")
                sr.Par.Run.tasks (nrun d).Nat.Nrun.tasks)
        (Wl.Registry.all ()))

let test_crossval_speccross () =
  Nat.Pool.with_pool ~workers:(threads - 1) (fun pool ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          match C.applicable C.Speccross wl with
          | Error _ -> ()
          | Ok () ->
              let name = wl.Wl.Workload.name in
              let n = native_outcome ~pool C.Speccross wl in
              check_verified (name ^ "/speccross") n;
              let s = sim_outcome C.Speccross wl in
              Alcotest.(check bool)
                (name ^ "/speccross: sim verified")
                true s.C.verified;
              let sr = Option.get s.C.run in
              (* A dependence inside the profiled speculative range (FDTD's
                 WAR pairs at distance spec_distance - 1) misspeculates in
                 both engines; when the simulator saw none, the throttle
                 provably orders every profiled dependence and the native
                 run must be race-free too.  First-attempt task counts only
                 coincide when neither side recovered. *)
              if sr.Par.Run.misspecs = 0 then begin
                Alcotest.(check int)
                  (name ^ "/speccross: native misspeculations")
                  0 (nrun n).Nat.Nrun.misspecs;
                Alcotest.(check int)
                  (name ^ "/speccross: task counts match")
                  sr.Par.Run.tasks (nrun n).Nat.Nrun.tasks
              end)
        (Wl.Registry.all ()))

let test_native_inject_recovers () =
  let wl = Wl.Registry.find "SYMM" in
  let n =
    C.run_request @@ C.Request.make ~backend:(`Native C.native_defaults) ~input:Wl.Workload.Train
      ~technique:(C.Speccross_inject 2) ~threads wl
  in
  Alcotest.(check int) "exactly one forced misspeculation" 1
    (nrun n).Nat.Nrun.misspecs;
  check_verified "SYMM/inject" n

let test_native_bloom_speccross () =
  (* Exercise the Bloom signature kind natively (Segmented is the default):
     termination and correctness, not zero false positives. *)
  let wl = Wl.Registry.find "SYMM" in
  let input = Wl.Workload.Train in
  let seq = sim_seq_env wl input in
  let program = wl.Wl.Workload.program input in
  Nat.Pool.with_pool ~workers:3 (fun pool ->
      let env = wl.Wl.Workload.fresh_env input in
      let config =
        {
          (Nat.Nspec.default_config ~workers:3) with
          Nat.Nspec.sig_kind = Xinv_runtime.Signature.Bloom { bits = 4096; hashes = 3 };
          mode_of = C.spec_mode_of_plan wl;
          spec_distance = 64;
        }
      in
      let (_ : Nat.Nrun.t) = Nat.Nspec.run ~pool ~config program env in
      Alcotest.(check (list (pair string int)))
        "bloom-checked native SPECCROSS memory" []
        (Ir.Memory.diff seq.Ir.Env.mem env.Ir.Env.mem))

let test_grain_memory_identical () =
  (* Chunked dispatch is a scheduling change, not a semantics change: every
     engine at a grain that divides nothing evenly (7) and a small batch (5)
     must still produce sequential memory on every applicable workload. *)
  let opts = { C.native_defaults with C.grain = 7; batch = 5 } in
  List.iter
    (fun (tech, tname) ->
      List.iter
        (fun (wl : Wl.Workload.t) ->
          match C.applicable ~backend:`Native tech wl with
          | Error _ -> ()
          | Ok () ->
              let n =
                C.run_request @@ C.Request.make ~backend:(`Native opts) ~input:Wl.Workload.Train
                  ~technique:tech ~threads wl
              in
              check_verified
                (wl.Wl.Workload.name ^ "/" ^ tname ^ "/grain7.batch5")
                n)
        (Wl.Registry.all ()))
    [
      (C.Barrier, "barrier");
      (C.Domore, "domore");
      (C.Domore_dup, "domore-dup");
      (C.Speccross, "speccross");
    ]

let test_stall_report_structure () =
  (* Every engine reports its blocked time under the shared cause
     vocabulary, so bench rows and the Obs stall report can name the
     bottleneck without string guessing. *)
  let known = List.map Nat.Stallcat.name Nat.Stallcat.all in
  let wl = Wl.Registry.find "SYMM" in
  List.iter
    (fun tech ->
      let n =
        C.run_request @@ C.Request.make ~backend:(`Native C.native_defaults) ~input:Wl.Workload.Train
          ~technique:tech ~threads wl
      in
      List.iter
        (fun (cause, ns) ->
          Alcotest.(check bool)
            (C.technique_name tech ^ ": known stall cause " ^ cause)
            true (List.mem cause known);
          Alcotest.(check bool)
            (C.technique_name tech ^ ": positive blocked time for " ^ cause)
            true (ns > 0.))
        (nrun n).Nat.Nrun.stalls)
    [ C.Barrier; C.Domore; C.Speccross ]

let test_native_obs_counters () =
  let wl = Wl.Registry.find "SYMM" in
  let obs = Xinv_obs.Recorder.create () in
  let n =
    C.run_request @@ C.Request.make ~backend:(`Native C.native_defaults) ~input:Wl.Workload.Train ~obs
      ~technique:C.Domore ~threads wl
  in
  let counters = Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs) in
  Alcotest.(check (option int))
    "native run feeds domore.tasks_dispatched"
    (Some (nrun n).Nat.Nrun.tasks)
    (List.assoc_opt "domore.tasks_dispatched" counters)

let suite =
  [
    Alcotest.test_case "spsc: FIFO across two domains" `Quick test_spsc_two_domains;
    Alcotest.test_case "spsc: exact capacities incl. boundaries" `Quick
      test_spsc_exact_capacity;
    Alcotest.test_case "spsc: batched stream = unbatched stream" `Quick
      test_spsc_batch_equivalence;
    Alcotest.test_case "spsc: early close drains then raises" `Quick
      test_spsc_batch_close_drain;
    Alcotest.test_case "pad: cache-line isolation helpers" `Quick
      test_pad_isolation;
    Alcotest.test_case "nbar: sense-reversing rounds" `Quick test_nbar_rounds;
    Alcotest.test_case "pool: reuse and error propagation" `Quick
      test_pool_reuse_and_errors;
    Alcotest.test_case "work: calibrated spin" `Quick test_work_spin;
    Alcotest.test_case "memory: native DOMORE vs sim sequential" `Quick
      test_native_memory_direct;
    Alcotest.test_case "cross-validate barrier (all workloads)" `Quick
      test_crossval_barrier;
    Alcotest.test_case "cross-validate DOMORE (all workloads)" `Quick
      test_crossval_domore;
    Alcotest.test_case "cross-validate SPECCROSS (all workloads)" `Quick
      test_crossval_speccross;
    Alcotest.test_case "speccross: injected misspeculation recovers" `Quick
      test_native_inject_recovers;
    Alcotest.test_case "speccross: bloom signatures" `Quick
      test_native_bloom_speccross;
    Alcotest.test_case "grain > 1: memory identical on every engine" `Quick
      test_grain_memory_identical;
    Alcotest.test_case "stalls: causes use the shared vocabulary" `Quick
      test_stall_report_structure;
    Alcotest.test_case "obs: native runs feed metrics" `Quick
      test_native_obs_counters;
  ]
