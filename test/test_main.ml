let () =
  Alcotest.run "xinv"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("ir", Test_ir.suite);
      ("runtime", Test_runtime.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("domore", Test_domore.suite);
      ("speccross", Test_speccross.suite);
      ("native", Test_native.suite);
      ("robust", Test_robust.suite);
      ("workloads", Test_workloads.suite);
      ("cache", Test_cache.suite);
      ("tune", Test_tune.suite);
      ("serve", Test_serve.suite);
      ("experiments", Test_experiments.suite);
    ]
