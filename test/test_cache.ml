(* Tests for the incremental analysis cache: fingerprint stability and
   sensitivity, artifact envelope robustness, on-disk store durability, and
   the differential harness proving cached analysis ≡ fresh analysis for
   every registry workload on both backends. *)

module Ir = Xinv_ir
module Wl = Xinv_workloads
module C = Xinv_core.Crossinv
module Fp = Xinv_cache.Fingerprint
module Art = Xinv_cache.Artifact
module Store = Xinv_cache.Store
module An = Xinv_cache.Analysis

(* ---------- scratch directories ---------- *)

let tmpdir () =
  let d = Filename.temp_file "xinvcache" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with _ -> ()
  end

let with_dir f =
  let d = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ---------- hand-built workload for targeted mutations ---------- *)

(* One irregular update statement, every aspect parameterizable so each test
   can flip exactly one analysis-relevant property. *)
let hand_program ?(prefix = "") ?(outer = 3) ?(extra_read = false)
    ?(commutes = false) ?(side_effect = false) ?(off = 0) () =
  let data = prefix ^ "data" and tgt = prefix ^ "tgt" in
  let idx =
    let open Ir.Expr in
    ld tgt ((o * c 4) + i + c off)
  in
  let s =
    Ir.Stmt.make
      ~reads:
        ((if extra_read then [ Ir.Access.make data (Ir.Expr.c 0) ] else [])
        @ [ Ir.Access.make data idx ])
      ~writes:[ Ir.Access.make data idx ]
      ~commutes ~side_effect
      ~cost:(Ir.Stmt.fixed_cost 1.0)
      (prefix ^ "upd")
  in
  Ir.Program.make ~name:(prefix ^ "hand") ~outer_trip:outer
    [
      Ir.Program.inner ~label:(prefix ^ "L")
        ~trip:(Ir.Program.const_trip 4)
        [ s ];
    ]

let hand_env ?(prefix = "") ?(pval = 7) ?(tgt_tweak = false)
    ?(float_tweak = false) () =
  let data = prefix ^ "data" and tgt = prefix ^ "tgt" in
  let tgts = Array.init 16 (fun k -> k mod 8) in
  if tgt_tweak then tgts.(3) <- (tgts.(3) + 1) mod 8;
  let floats = Array.make 8 0. in
  if float_tweak then floats.(2) <- 42.;
  Ir.Env.make
    ~params:[ ("n", pval) ]
    (Ir.Memory.create
       [ Ir.Memory.Ints (tgt, tgts); Ir.Memory.Floats (data, floats) ])

let hex p env = Fp.to_hex (Fp.key p env)

(* ---------- fingerprint ---------- *)

let test_fp_deterministic () =
  let spec = Wl.Synth.default in
  let p1, fresh1 = Wl.Synth.make spec in
  let p2, fresh2 = Wl.Synth.make spec in
  (* p2's statements carry different sids than p1's: equality across the two
     builds is exactly sid/physical-identity insensitivity. *)
  let f1 = Fp.key p1 (fresh1 ()) and f2 = Fp.key p2 (fresh2 ()) in
  Alcotest.(check bool) "same spec, same fingerprint" true (Fp.equal f1 f2);
  Alcotest.(check bool)
    "repeated keying is stable" true
    (Fp.equal f1 (Fp.key p1 (fresh1 ())));
  Alcotest.(check int) "32 hex chars" 32 (String.length (Fp.to_hex f1));
  (match Fp.of_hex (Fp.to_hex f1) with
  | Some f -> Alcotest.(check bool) "of_hex . to_hex = id" true (Fp.equal f f1)
  | None -> Alcotest.fail "of_hex rejected to_hex output");
  Alcotest.(check (option Alcotest.reject)) "of_hex rejects junk" None
    (Fp.of_hex "zz");
  let k, names = Fp.keyed p1 (fresh1 ()) in
  Alcotest.(check bool) "keyed = key" true (Fp.equal k f1);
  Alcotest.(check (list string))
    "keyed names = name_vector" (Fp.name_vector p1 (fresh1 ()))
    names

(* Restart stability: the fingerprint is a function of the workload alone,
   not of the process that computes it.  These literals were produced by
   this same traversal; any change to the traversal or the mixing must bump
   {!Art.schema_version} and these pins. *)
let test_fp_golden () =
  let p, fresh = Wl.Synth.make Wl.Synth.default in
  Alcotest.(check string)
    "Synth default pinned" "4b82a318229614b20190191d9f5f6fef"
    (hex p (fresh ()));
  Alcotest.(check string)
    "hand workload pinned" "ecd4414d032e407d085b85b16e5deec4"
    (hex (hand_program ()) (hand_env ()));
  let symm = Wl.Registry.find "SYMM" in
  Alcotest.(check string)
    "SYMM train pinned" "71fc7f4fa1b8ae9517b5095918a97850"
    (hex
       (symm.Wl.Workload.program Wl.Workload.Train)
       (symm.Wl.Workload.fresh_env Wl.Workload.Train))

let test_fp_name_insensitive () =
  let a = (hand_program (), hand_env ()) in
  let b = (hand_program ~prefix:"x_" (), hand_env ~prefix:"x_" ()) in
  Alcotest.(check string)
    "consistent renaming preserves the fingerprint" (hex (fst a) (snd a))
    (hex (fst b) (snd b));
  Alcotest.(check bool)
    "but the name vectors differ" false
    (Fp.name_vector (fst a) (snd a) = Fp.name_vector (fst b) (snd b))

let test_fp_data_sensitivity () =
  let p = hand_program () in
  let base = hex p (hand_env ()) in
  Alcotest.(check string)
    "float contents are value data: fingerprint unchanged" base
    (hex p (hand_env ~float_tweak:true ()));
  Alcotest.(check bool)
    "integer (index-array) contents change it" false
    (base = hex p (hand_env ~tgt_tweak:true ()));
  Alcotest.(check bool)
    "runtime parameters change it" false
    (base = hex p (hand_env ~pval:8 ()))

let test_fp_structure_sensitivity () =
  let base = hex (hand_program ()) (hand_env ()) in
  let differs name p = Alcotest.(check bool) name false (base = hex p (hand_env ())) in
  differs "extra read access" (hand_program ~extra_read:true ());
  differs "commutativity flag" (hand_program ~commutes:true ());
  differs "side-effect flag" (hand_program ~side_effect:true ());
  differs "affine constant in the index" (hand_program ~off:1 ());
  differs "outer trip count" (hand_program ~outer:4 ())

let prop_fp_synth_mutations () =
  (* 200 random synthetic workloads: rebuilding is stable, and mutating any
     spec field that feeds analysis (problem size, access pattern seed, cost
     model, conflict structure) moves the fingerprint.  Deterministic
     master seed, so the property is reproducible. *)
  let rng = Xinv_util.Prng.create ~seed:9 in
  let fp_of spec =
    let p, fresh = Wl.Synth.make spec in
    hex p (fresh ())
  in
  for _ = 1 to 200 do
    let spec =
      {
        Wl.Synth.outer = Xinv_util.Prng.int_in rng 2 5;
        inners = Xinv_util.Prng.int_in rng 1 2;
        trip = Xinv_util.Prng.int_in rng 4 8;
        cells = Xinv_util.Prng.int_in rng 8 32;
        within_safe = Xinv_util.Prng.int_in rng 0 1 = 1;
        base_cost = 1.0 +. float_of_int (Xinv_util.Prng.int_in rng 0 3);
        seed = Xinv_util.Prng.int_in rng 0 1_000_000;
      }
    in
    let base = fp_of spec in
    Alcotest.(check string) "rebuild is stable" base (fp_of spec);
    let moved name spec' =
      Alcotest.(check bool) name false (base = fp_of spec')
    in
    moved "seed" { spec with Wl.Synth.seed = spec.Wl.Synth.seed + 1 };
    moved "trip" { spec with Wl.Synth.trip = spec.Wl.Synth.trip + 1 };
    moved "cells" { spec with Wl.Synth.cells = spec.Wl.Synth.cells + 1 };
    moved "outer" { spec with Wl.Synth.outer = spec.Wl.Synth.outer + 1 };
    moved "inners" { spec with Wl.Synth.inners = spec.Wl.Synth.inners + 1 };
    (* [within_safe] only steers how the index array is drawn; when the
       uniform draw happens to be duplicate-free the two modes produce the
       same workload.  The honest property: the fingerprint moves exactly
       when the index contents move. *)
    let tgt_of spec =
      let _, fresh = Wl.Synth.make spec in
      Array.copy
        (Ir.Memory.int_data (fresh ()).Ir.Env.mem "tgt")
    in
    let flipped =
      { spec with Wl.Synth.within_safe = not spec.Wl.Synth.within_safe }
    in
    Alcotest.(check bool)
      "within_safe moves fp iff it moves the index array"
      (tgt_of spec <> tgt_of flipped)
      (base <> fp_of flipped);
    moved "base_cost"
      { spec with Wl.Synth.base_cost = spec.Wl.Synth.base_cost +. 0.5 }
  done

(* ---------- artifact envelope ---------- *)

let sample_artifact () =
  let p, fresh = Wl.Synth.make Wl.Synth.default in
  let env = fresh () in
  let names = Fp.name_vector p env in
  let prof = Xinv_speccross.Profiler.profile p (fresh ()) in
  { (Art.empty ~names) with Art.profile = Some prof }

let test_artifact_roundtrip () =
  let a = sample_artifact () in
  (match Art.decode (Art.encode a) with
  | Ok a' -> Alcotest.(check bool) "decode . encode = id" true (a = a')
  | Error r -> Alcotest.fail ("roundtrip rejected: " ^ r));
  let neg =
    { (Art.empty ~names:[ "x" ]) with Art.domore = Some (Error "sequential") }
  in
  match Art.decode (Art.encode neg) with
  | Ok n -> Alcotest.(check bool) "negative verdict survives" true (n = neg)
  | Error r -> Alcotest.fail ("negative roundtrip rejected: " ^ r)

let test_artifact_rejects () =
  let raw = Art.encode (sample_artifact ()) in
  (match Art.decode "" with
  | Error "truncated" -> ()
  | _ -> Alcotest.fail "zero-length accepted");
  (* Every prefix truncation is rejected. *)
  for k = 0 to String.length raw - 1 do
    match Art.decode (String.sub raw 0 k) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes accepted" k
  done;
  (* A wrong-version file is rejected as "version", not misread. *)
  let v = Bytes.of_string raw in
  Bytes.set v 10 (Char.chr (Char.code (Bytes.get v 10) + 1));
  (match Art.decode (Bytes.to_string v) with
  | Error "version" -> ()
  | Error r -> Alcotest.failf "version bump rejected as %s" r
  | Ok _ -> Alcotest.fail "version bump accepted")

let test_artifact_bitflip_fuzz () =
  (* Single-bit corruption anywhere in the file — header, digest or payload
     — must be detected.  This sweeps every byte (> 100 mutations). *)
  let raw = Art.encode (sample_artifact ()) in
  let mutations = ref 0 in
  for pos = 0 to String.length raw - 1 do
    List.iter
      (fun bit ->
        incr mutations;
        let m = Bytes.of_string raw in
        Bytes.set m pos (Char.chr (Char.code (Bytes.get m pos) lxor bit));
        match Art.decode (Bytes.to_string m) with
        | Error _ -> ()
        | Ok _ ->
            Alcotest.failf "flip of bit %d at byte %d went undetected" bit pos)
      [ 0x01; 0x10; 0x80 ]
  done;
  Alcotest.(check bool) "fuzz corpus >= 100 mutations" true (!mutations >= 100)

(* ---------- store ---------- *)

let test_store_roundtrip () =
  with_dir (fun dir ->
      let obs = Xinv_obs.Recorder.create () in
      let st = Store.open_ ~obs ~dir () in
      let p, fresh = Wl.Synth.make Wl.Synth.default in
      let env = fresh () in
      let fp, names = Fp.keyed p env in
      (match Store.load st fp with
      | Error "absent" -> ()
      | _ -> Alcotest.fail "empty store should miss");
      let art = { (Art.empty ~names) with Art.domore = Some (Error "r") } in
      Store.save st fp art;
      (match Store.load st fp with
      | Ok a -> Alcotest.(check bool) "stored = loaded" true (a = art)
      | Error r -> Alcotest.fail ("load failed: " ^ r));
      Alcotest.(check int) "one store" 1 (Store.stores st);
      Alcotest.(check int) "no quarantine" 0 (Store.invalidated st);
      let counters =
        Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs)
      in
      Alcotest.(check (option int))
        "cache.store counter wired" (Some 1)
        (List.assoc_opt "cache.store" counters);
      let s = Store.stats ~dir in
      Alcotest.(check int) "stats sees one entry" 1 s.Store.s_entries;
      Alcotest.(check int) "ls agrees" 1 (List.length (Store.ls ~dir));
      Alcotest.(check int) "clear removes it" 1 (Store.clear ~dir);
      Alcotest.(check int) "dir empty after clear" 0
        (Store.stats ~dir).Store.s_entries)

let test_store_quarantine () =
  with_dir (fun dir ->
      let st = Store.open_ ~dir () in
      let p, fresh = Wl.Synth.make Wl.Synth.default in
      let fp = Fp.key p (fresh ()) in
      let path = Filename.concat dir (Fp.to_hex fp ^ ".xc") in
      let oc = open_out_bin path in
      output_string oc "definitely not a cache entry";
      close_out oc;
      (match Store.load st fp with
      | Error "magic" | Error "truncated" -> ()
      | Error r -> Alcotest.failf "unexpected reason %s" r
      | Ok _ -> Alcotest.fail "garbage accepted");
      Alcotest.(check int) "quarantined" 1 (Store.invalidated st);
      Alcotest.(check bool) "entry moved aside" false (Sys.file_exists path);
      Alcotest.(check int) "stats counts quarantine" 1
        (Store.stats ~dir).Store.s_quarantined;
      match Store.load st fp with
      | Error "absent" -> ()
      | _ -> Alcotest.fail "slot should be free after quarantine")

let test_store_lru_eviction () =
  with_dir (fun dir ->
      let fp_of seed =
        let p, fresh =
          Wl.Synth.make { Wl.Synth.default with Wl.Synth.seed }
        in
        Fp.keyed p (fresh ())
      in
      (* Size one entry in a probe directory, then cap the real store at two
         and a half entries: the third save must evict the oldest. *)
      let entry_bytes =
        with_dir (fun probe ->
            let ps = Store.open_ ~dir:probe () in
            let fp, names = fp_of 99 in
            Store.save ps fp
              { (Art.empty ~names) with Art.domore = Some (Error "r") };
            (Store.stats ~dir:probe).Store.s_bytes)
      in
      let cap = (entry_bytes * 5) / 2 in
      let st = Store.open_ ~max_bytes:cap ~dir () in
      let save_at seed mtime =
        let fp, names = fp_of seed in
        Store.save st fp
          { (Art.empty ~names) with Art.domore = Some (Error "r") };
        let path = Filename.concat dir (Fp.to_hex fp ^ ".xc") in
        Unix.utimes path mtime mtime;
        fp
      in
      let old_fp = save_at 1 1000. in
      let mid_fp = save_at 2 2000. in
      let new_fp = save_at 3 3000. in
      Alcotest.(check bool) "evicted something" true (Store.evictions st > 0);
      (match Store.load st old_fp with
      | Error "absent" -> ()
      | _ -> Alcotest.fail "oldest entry should have been evicted");
      (match Store.load st new_fp with
      | Ok _ -> ()
      | Error r -> Alcotest.fail ("newest entry lost: " ^ r));
      ignore mid_fp;
      Alcotest.(check bool) "size respects the cap" true
        ((Store.stats ~dir).Store.s_bytes <= cap))

let test_store_crash_mid_write () =
  with_dir (fun dir ->
      let st = Store.open_ ~dir () in
      let p, fresh = Wl.Synth.make Wl.Synth.default in
      let env = fresh () in
      let fp, names = Fp.keyed p env in
      let art = { (Art.empty ~names) with Art.domore = Some (Error "r") } in
      (* Writer dies before publication: readers never see the entry. *)
      Store.inject st (Some Store.Crash_before_rename);
      Store.save st fp art;
      (match Store.load st fp with
      | Error "absent" -> ()
      | _ -> Alcotest.fail "unpublished entry became visible");
      Alcotest.(check int) "tmp left behind" 1 (Store.stats ~dir).Store.s_tmp;
      (* Writer dies mid-write: same story, torn bytes stay invisible. *)
      Store.inject st (Some Store.Torn_write);
      Store.save st fp art;
      (match Store.load st fp with
      | Error "absent" -> ()
      | _ -> Alcotest.fail "torn entry became visible");
      (* Re-opening the store sweeps the debris of both crashes. *)
      let _st2 = Store.open_ ~dir () in
      Alcotest.(check int) "tmp swept at open" 0 (Store.stats ~dir).Store.s_tmp;
      (* The injected fault fired exactly once each; a normal save works. *)
      Store.save st fp art;
      match Store.load st fp with
      | Ok a -> Alcotest.(check bool) "entry intact" true (a = art)
      | Error r -> Alcotest.fail ("post-crash save failed: " ^ r))

let test_store_concurrent_readers () =
  (* Two domains racing on one directory: a writer republishing the entry in
     two sizes as fast as it can, a reader polling it.  Atomic tmp+rename
     means the reader sees only absent or complete entries — a single decode
     failure (torn read) fails the test. *)
  with_dir (fun dir ->
      let p, fresh = Wl.Synth.make Wl.Synth.default in
      let env = fresh () in
      let fp, names = Fp.keyed p env in
      let small = { (Art.empty ~names) with Art.domore = Some (Error "x") } in
      let big =
        {
          (Art.empty ~names) with
          Art.profile = Some (Xinv_speccross.Profiler.profile p (fresh ()));
        }
      in
      let reader_store = Store.open_ ~dir () in
      let stop = Atomic.make false in
      let writer =
        Domain.spawn (fun () ->
            let st = Store.open_ ~dir () in
            for k = 1 to 300 do
              Store.save st fp (if k land 1 = 0 then small else big)
            done;
            Atomic.set stop true)
      in
      let seen = ref 0 and torn = ref 0 in
      while not (Atomic.get stop) do
        match Store.load reader_store fp with
        | Ok a ->
            incr seen;
            if not (a = small || a = big) then incr torn
        | Error "absent" -> ()
        | Error _ -> incr torn
      done;
      Domain.join writer;
      Alcotest.(check int) "no torn or corrupt reads" 0 !torn;
      Alcotest.(check int) "nothing quarantined by the race" 0
        (Store.invalidated reader_store);
      Alcotest.(check bool) "reader observed published entries" true (!seen > 0))

(* ---------- analysis: cached = fresh ---------- *)

let check_verdict_equal msg (a : Ir.Mtcg.verdict) (b : Ir.Mtcg.verdict) =
  match (a, b) with
  | Ir.Mtcg.Inapplicable ra, Ir.Mtcg.Inapplicable rb ->
      Alcotest.(check string) (msg ^ ": same reason") ra rb
  | Ir.Mtcg.Plan pa, Ir.Mtcg.Plan pb ->
      Alcotest.(check bool)
        (msg ^ ": same partition") true
        (pa.Ir.Mtcg.partition = pb.Ir.Mtcg.partition);
      Alcotest.(check (float 0.))
        (msg ^ ": same guard ratio") pa.Ir.Mtcg.guard_ratio
        pb.Ir.Mtcg.guard_ratio;
      Alcotest.(check bool)
        (msg ^ ": same PDG edges") true
        (pa.Ir.Mtcg.pdg.Ir.Pdg.edges = pb.Ir.Mtcg.pdg.Ir.Pdg.edges);
      Alcotest.(check bool)
        (msg ^ ": same region slice") true
        (pa.Ir.Mtcg.slice = pb.Ir.Mtcg.slice);
      Alcotest.(check bool)
        (msg ^ ": same per-inner slices") true
        (pa.Ir.Mtcg.slices = pb.Ir.Mtcg.slices);
      Alcotest.(check (list int))
        (msg ^ ": same scheduler_extra")
        (List.map (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.sid) pa.Ir.Mtcg.scheduler_extra)
        (List.map (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.sid) pb.Ir.Mtcg.scheduler_extra)
  | _ -> Alcotest.fail (msg ^ ": verdict shapes differ")

let test_plan_cached_equals_fresh () =
  with_dir (fun dir ->
      let symm = Wl.Registry.find "SYMM" in
      let p = symm.Wl.Workload.program Wl.Workload.Train in
      let env () = symm.Wl.Workload.fresh_env Wl.Workload.Train in
      let fresh = Ir.Mtcg.generate p (env ()) in
      let writer = An.make ~mode:`Rw ~dir () in
      check_verdict_equal "cold (miss) run" fresh (An.plan writer p (env ()));
      Alcotest.(check (pair int int))
        "cold is a miss" (0, 1)
        (An.hits writer, An.misses writer);
      (* A different handle — as a different process would — replays it. *)
      let reader = An.make ~mode:`Ro ~dir () in
      check_verdict_equal "warm (hit) run" fresh (An.plan reader p (env ()));
      Alcotest.(check (pair int int))
        "warm is a hit" (1, 0)
        (An.hits reader, An.misses reader))

let test_profile_cached_equals_fresh () =
  with_dir (fun dir ->
      let p, fresh_env = Wl.Synth.make Wl.Synth.default in
      let fresh = Xinv_speccross.Profiler.profile p (fresh_env ()) in
      let writer = An.make ~mode:`Rw ~dir () in
      Alcotest.(check bool)
        "cold profile = fresh profile" true
        (An.profile writer p (fresh_env ()) = fresh);
      let reader = An.make ~mode:`Ro ~dir () in
      let env = fresh_env () in
      let before = Ir.Memory.snapshot env.Ir.Env.mem in
      Alcotest.(check bool)
        "warm profile = fresh profile" true
        (An.profile reader p env = fresh);
      Alcotest.(check (pair int int))
        "served from the store" (1, 0)
        (An.hits reader, An.misses reader);
      (* The uncached profiler executes the program (training run); a hit
         must leave the environment untouched. *)
      Alcotest.(check bool)
        "hit does not mutate the environment" true
        (Ir.Memory.equal before env.Ir.Env.mem))

let test_negative_verdict_cached () =
  with_dir (fun dir ->
      (* FDTD's region is sequential: DOMORE rejects it.  The rejection is
         itself cacheable — same reason, no PDG rebuild. *)
      let fdtd = Wl.Registry.find "FDTD" in
      let p = fdtd.Wl.Workload.program Wl.Workload.Ref in
      let env () = fdtd.Wl.Workload.fresh_env Wl.Workload.Ref in
      let fresh = Ir.Mtcg.generate p (env ()) in
      (match fresh with
      | Ir.Mtcg.Inapplicable _ -> ()
      | Ir.Mtcg.Plan _ -> Alcotest.fail "expected FDTD to be inapplicable");
      let writer = An.make ~mode:`Rw ~dir () in
      check_verdict_equal "cold verdict" fresh (An.plan writer p (env ()));
      let reader = An.make ~mode:`Ro ~dir () in
      check_verdict_equal "cached verdict" fresh (An.plan reader p (env ()));
      Alcotest.(check int) "negative result was a hit" 1 (An.hits reader);
      (* The facade agrees end to end. *)
      match C.applicable ~cache:`Ro ~cache_dir:dir C.Domore fdtd with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "applicable disagrees with cached verdict")

let test_alias_detected () =
  with_dir (fun dir ->
      (* Renamed clone: same fingerprint, different names.  Replaying the
         original's artifact would wire the plan to the wrong arrays, so the
         lookup must treat it as a miss. *)
      let writer = An.make ~mode:`Rw ~dir () in
      ignore (An.plan writer (hand_program ()) (hand_env ()));
      let reader = An.make ~mode:`Ro ~dir () in
      let clone = hand_program ~prefix:"x_" () in
      let clone_env = hand_env ~prefix:"x_" () in
      Alcotest.(check string)
        "clone shares the fingerprint"
        (hex (hand_program ()) (hand_env ()))
        (hex clone clone_env);
      check_verdict_equal "alias analyzed fresh"
        (Ir.Mtcg.generate clone (hand_env ~prefix:"x_" ()))
        (An.plan reader clone clone_env);
      Alcotest.(check (pair int int))
        "alias counted as a miss" (0, 1)
        (An.hits reader, An.misses reader))

let test_ro_never_writes () =
  with_dir (fun dir ->
      let ro = An.make ~mode:`Ro ~dir () in
      let p, fresh = Wl.Synth.make Wl.Synth.default in
      ignore (An.plan ro p (fresh ()));
      ignore (An.profile ro p (fresh ()));
      Alcotest.(check int) "both were misses" 2 (An.misses ro);
      Alcotest.(check int) "ro mode published nothing" 0
        (Store.stats ~dir).Store.s_entries)

let test_obs_wiring () =
  with_dir (fun dir ->
      let obs = Xinv_obs.Recorder.create () in
      let an = An.make ~obs ~mode:`Rw ~dir () in
      let p, fresh = Wl.Synth.make Wl.Synth.default in
      ignore (An.plan an p (fresh ()));
      ignore (An.plan an p (fresh ()));
      let counters = Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs) in
      Alcotest.(check (option int))
        "cache.miss counter" (Some 1)
        (List.assoc_opt "cache.miss" counters);
      Alcotest.(check (option int))
        "cache.hit counter" (Some 1)
        (List.assoc_opt "cache.hit" counters);
      let has pred =
        List.exists
          (fun (e : Xinv_obs.Recorder.entry) -> pred e.Xinv_obs.Recorder.ev)
          (Xinv_obs.Recorder.entries obs)
      in
      Alcotest.(check bool) "Fingerprint_miss event" true
        (has (function Xinv_obs.Event.Fingerprint_miss _ -> true | _ -> false));
      Alcotest.(check bool) "Fingerprint_hit event" true
        (has (function Xinv_obs.Event.Fingerprint_hit _ -> true | _ -> false)))

let test_corrupt_store_fuzz () =
  (* Corruption injected at the store level, observed through the full
     analysis path: for dozens of single-byte mutations of a valid entry,
     the cached pipeline must return the exact fresh verdict (corrupt entry
     quarantined, fresh analysis run) and never crash. *)
  with_dir (fun dir ->
      let symm = Wl.Registry.find "SYMM" in
      let p = symm.Wl.Workload.program Wl.Workload.Train in
      let env () = symm.Wl.Workload.fresh_env Wl.Workload.Train in
      let fresh = Ir.Mtcg.generate p (env ()) in
      let seed = An.make ~mode:`Rw ~dir () in
      ignore (An.plan seed p (env ()));
      let fp = Fp.key p (env ()) in
      let path = Filename.concat dir (Fp.to_hex fp ^ ".xc") in
      let raw =
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let quarantines = ref 0 in
      List.iter
        (fun pos ->
          let m = Bytes.of_string raw in
          Bytes.set m pos (Char.chr (Char.code (Bytes.get m pos) lxor 0x40));
          let oc = open_out_bin path in
          output_bytes oc m;
          close_out oc;
          let an = An.make ~mode:`Ro ~dir () in
          check_verdict_equal
            (Printf.sprintf "corrupt@%d falls back to fresh" pos)
            fresh (An.plan an p (env ()));
          quarantines := !quarantines + Store.invalidated (An.store an);
          (* clean slate for the next mutation *)
          ignore (Store.clear ~dir))
        (List.init 24 (fun k -> k * String.length raw / 24));
      Alcotest.(check bool) "mutations were quarantined" true (!quarantines > 0))

(* ---------- differential: full runs, every workload, both backends ---------- *)

let sim_techniques = [ C.Inspector; C.Tls; C.Domore; C.Domore_dup; C.Speccross ]

let test_differential_sim_registry () =
  List.iter
    (fun (wl : Wl.Workload.t) ->
      List.iter
        (fun tech ->
          match C.applicable tech wl with
          | Error _ -> ()
          | Ok () -> (
              let go ?(cache = `Off) ?cache_dir () =
                C.run_request @@ C.Request.make ?cache_dir ~cache ~input:Wl.Workload.Train ~technique:tech
                  ~threads:4 wl
              in
              match go () with
              | exception Failure _ ->
                  (* applicable on ref, inapplicable on train: nothing to
                     compare at this input scale *)
                  ()
              | fresh ->
                  with_dir (fun dir ->
                      let name what =
                        Printf.sprintf "%s/%s: %s" wl.Wl.Workload.name
                          (C.technique_name tech) what
                      in
                      let cold = go ~cache:`Rw ~cache_dir:dir () in
                      let warm = go ~cache:`Rw ~cache_dir:dir () in
                      Alcotest.(check bool)
                        (name "cold run populated the cache")
                        true (cold.C.cache_misses > 0);
                      Alcotest.(check (pair bool int))
                        (name "warm run served entirely from cache")
                        (true, 0)
                        (warm.C.cache_hits > 0, warm.C.cache_misses);
                      (* The simulator is deterministic: bit-equal virtual
                         cost is the strongest possible cached = fresh
                         statement. *)
                      Alcotest.(check (float 0.))
                        (name "cold cost bit-equal to fresh")
                        (C.cost_value fresh.C.cost)
                        (C.cost_value cold.C.cost);
                      Alcotest.(check (float 0.))
                        (name "warm cost bit-equal to fresh")
                        (C.cost_value fresh.C.cost)
                        (C.cost_value warm.C.cost);
                      Alcotest.(check bool)
                        (name "warm profile = fresh profile")
                        true
                        (warm.C.profile = fresh.C.profile);
                      Alcotest.(check (list (pair string int)))
                        (name "no mismatches, cached or fresh")
                        fresh.C.mismatches warm.C.mismatches;
                      Alcotest.(check bool)
                        (name "all three verified")
                        true
                        (fresh.C.verified && cold.C.verified && warm.C.verified))))
        sim_techniques)
    (Wl.Registry.all ())

let test_differential_native_registry () =
  List.iter
    (fun (wl : Wl.Workload.t) ->
      List.iter
        (fun tech ->
          match C.applicable ~backend:`Native tech wl with
          | Error _ -> ()
          | Ok () -> (
              let go ?(cache = `Off) ?cache_dir () =
                C.run_request @@ C.Request.make
                  ~backend:(`Native C.native_defaults)
                  ?cache_dir ~cache ~input:Wl.Workload.Train ~technique:tech
                  ~threads:2 wl
              in
              match go () with
              | exception Failure _ -> ()
              | fresh ->
                  with_dir (fun dir ->
                      let name what =
                        Printf.sprintf "native %s/%s: %s" wl.Wl.Workload.name
                          (C.technique_name tech) what
                      in
                      let cold = go ~cache:`Rw ~cache_dir:dir () in
                      let warm = go ~cache:`Rw ~cache_dir:dir () in
                      Alcotest.(check (pair bool int))
                        (name "warm run served entirely from cache")
                        (true, 0)
                        (warm.C.cache_hits > 0, warm.C.cache_misses);
                      Alcotest.(check bool)
                        (name "all three verified")
                        true
                        (fresh.C.verified && cold.C.verified && warm.C.verified);
                      Alcotest.(check bool)
                        (name "no degradation anywhere")
                        true
                        (fresh.C.degraded = [] && cold.C.degraded = []
                       && warm.C.degraded = []);
                      (* Dispatch counts are a function of the plan alone —
                         a replayed plan must drive the engines
                         identically. *)
                      let counts (o : C.outcome) =
                        match o.C.nrun with
                        | None -> (-1, -1, -1)
                        | Some nr ->
                            ( nr.Xinv_native.Nrun.tasks,
                              nr.Xinv_native.Nrun.conds,
                              nr.Xinv_native.Nrun.invocations )
                      in
                      Alcotest.(check (triple int int int))
                        (name "task/cond/invocation counts match fresh")
                        (counts fresh) (counts warm))))
        [ C.Domore; C.Speccross ])
    (Wl.Registry.all ())

let test_degradation_with_cache () =
  (* An armed fault degrades the cached run exactly like the fresh one; the
     degradation chain's second attempt replays the plan published by the
     first (hit inside a single run). *)
  with_dir (fun dir ->
      let wl = Wl.Registry.find "SYMM" in
      let fault =
        match Xinv_native.Fault.spec_of_string "sched-die@2" with
        | Ok sp -> sp
        | Error m -> Alcotest.fail m
      in
      let go ?(cache = `Off) ?cache_dir () =
        C.run_request @@ C.Request.make
          ~backend:(`Native { C.native_defaults with C.fault = Some fault })
          ?cache_dir ~cache ~input:Wl.Workload.Train ~technique:C.Domore
          ~threads:2 wl
      in
      let fresh = go () in
      let cold = go ~cache:`Rw ~cache_dir:dir () in
      let warm = go ~cache:`Rw ~cache_dir:dir () in
      let chain (o : C.outcome) =
        List.map (fun (s : C.degrade_step) -> (s.C.d_from, s.C.d_to)) o.C.degraded
      in
      Alcotest.(check bool) "fault forced degradation" true (fresh.C.degraded <> []);
      Alcotest.(check bool)
        "cached runs degrade along the same chain" true
        (chain fresh = chain cold && chain fresh = chain warm);
      Alcotest.(check bool)
        "degraded cached runs still verify" true
        (fresh.C.verified && cold.C.verified && warm.C.verified);
      Alcotest.(check int) "warm run all hits" 0 warm.C.cache_misses;
      Alcotest.(check bool) "warm run hit per attempt" true (warm.C.cache_hits >= 2))

let suite =
  [
    Alcotest.test_case "fingerprint: deterministic, sid-insensitive" `Quick
      test_fp_deterministic;
    Alcotest.test_case "fingerprint: pinned across restarts" `Quick
      test_fp_golden;
    Alcotest.test_case "fingerprint: name-insensitive" `Quick
      test_fp_name_insensitive;
    Alcotest.test_case "fingerprint: float-blind, int/param-sensitive" `Quick
      test_fp_data_sensitivity;
    Alcotest.test_case "fingerprint: structure mutations move it" `Quick
      test_fp_structure_sensitivity;
    Alcotest.test_case "fingerprint: 200 random synth mutations" `Quick
      prop_fp_synth_mutations;
    Alcotest.test_case "artifact: roundtrip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact: rejects truncation and wrong version" `Quick
      test_artifact_rejects;
    Alcotest.test_case "artifact: bit-flip fuzz (every byte)" `Quick
      test_artifact_bitflip_fuzz;
    Alcotest.test_case "store: roundtrip, counters, maintenance" `Quick
      test_store_roundtrip;
    Alcotest.test_case "store: corrupt entry quarantined" `Quick
      test_store_quarantine;
    Alcotest.test_case "store: LRU size cap" `Quick test_store_lru_eviction;
    Alcotest.test_case "store: crash mid-write stays invisible" `Quick
      test_store_crash_mid_write;
    Alcotest.test_case "store: concurrent reader never sees torn entries"
      `Quick test_store_concurrent_readers;
    Alcotest.test_case "analysis: cached plan = fresh plan" `Quick
      test_plan_cached_equals_fresh;
    Alcotest.test_case "analysis: cached profile = fresh, no mutation" `Quick
      test_profile_cached_equals_fresh;
    Alcotest.test_case "analysis: negative verdict cached" `Quick
      test_negative_verdict_cached;
    Alcotest.test_case "analysis: renamed alias re-analyzed" `Quick
      test_alias_detected;
    Alcotest.test_case "analysis: ro mode never writes" `Quick
      test_ro_never_writes;
    Alcotest.test_case "analysis: metrics and events wired" `Quick
      test_obs_wiring;
    Alcotest.test_case "analysis: corrupted-store fuzz falls back" `Quick
      test_corrupt_store_fuzz;
    Alcotest.test_case "differential: sim registry cached = fresh" `Slow
      test_differential_sim_registry;
    Alcotest.test_case "differential: native registry cached = fresh" `Slow
      test_differential_native_registry;
    Alcotest.test_case "differential: degradation with cache" `Slow
      test_degradation_with_cache;
  ]
