(* Tests for the policy autotuner: search-space canonicalization, search
   determinism under an injected synthetic cost model, the searched →
   cached round-trip through the analysis cache, policy replay fidelity
   (a tuned policy's run stays memory-bit-identical to sequential) for
   every registry workload, and the online adaptive controller. *)

module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv
module Policy = Xinv_cache.Policy
module Space = Xinv_tune.Space
module Search = Xinv_tune.Search
module Tune = Xinv_tune.Tune
module Prng = Xinv_util.Prng

(* ---------- scratch directories ---------- *)

let tmpdir () =
  let d = Filename.temp_file "xinvtune" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with _ -> ()
  end

let with_dir f =
  let d = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let symm () = Wl.Registry.find "SYMM"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------- space ---------- *)

let test_space_axes () =
  let axes = Space.default_axes ~max_domains:2 (symm ()) in
  Alcotest.(check bool)
    "sequential always searchable" true
    (List.mem "sequential" axes.Space.techniques);
  Alcotest.(check bool)
    "domains capped" true
    (List.for_all (fun d -> d <= 2) axes.Space.domains);
  Alcotest.(check bool) "space non-empty" true (Space.size axes > 0)

let test_space_canon () =
  let axes = Space.default_axes ~max_domains:4 (symm ()) in
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 200 do
    let p = Space.random rng axes in
    let c = Space.canon p in
    Alcotest.(check string)
      "canon idempotent" (Policy.key c)
      (Policy.key (Space.canon c))
  done;
  (* A sequential policy has no domains to count: canon collapses them. *)
  let seq =
    Space.canon { Policy.default with technique = "sequential"; domains = 4 }
  in
  Alcotest.(check int) "sequential canon is d1" 1 seq.Policy.domains

let test_space_neighbours () =
  let axes = Space.default_axes ~max_domains:4 (symm ()) in
  let p = Space.canon Policy.default in
  let ns = Space.neighbours axes p in
  Alcotest.(check bool) "has neighbours" true (ns <> []);
  Alcotest.(check bool)
    "self excluded" true
    (not (List.exists (Policy.equal p) ns));
  let keys = List.map Policy.key ns in
  Alcotest.(check int)
    "neighbours deduplicated"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun n ->
      Alcotest.(check string)
        "neighbours are canonical" (Policy.key n)
        (Policy.key (Space.canon n)))
    ns

let test_space_seeds () =
  let axes = Space.default_axes ~max_domains:4 (symm ()) in
  let ss = Space.seeds axes in
  Alcotest.(check int)
    "one seed per technique"
    (List.length axes.Space.techniques)
    (List.length ss);
  List.iter
    (fun s ->
      Alcotest.(check string)
        "seeds are canonical" (Policy.key s)
        (Policy.key (Space.canon s)))
    ss

(* ---------- search determinism (synthetic cost model) ---------- *)

(* A deterministic synthetic cost: hash of the policy key, so every
   distinct configuration has a distinct, reproducible "wall time". *)
let synthetic ~incumbent_ns:_ (p : Policy.t) =
  let h = Hashtbl.hash (Policy.key p) in
  {
    Search.m_wall_ns = float_of_int (1000 + (h mod 100_000));
    m_seq_ns = 50_000.;
    m_ok = true;
    m_pruned = false;
  }

let run_search ~strategy ~seed =
  let axes = Space.default_axes ~max_domains:4 (symm ()) in
  Search.search ~strategy ~budget:24 ~seed ~axes ~measure:synthetic ()

let trial_keys r =
  List.map (fun t -> Policy.key t.Search.t_policy) r.Search.trials

let test_search_deterministic () =
  List.iter
    (fun strategy ->
      let a = run_search ~strategy ~seed:7 in
      let b = run_search ~strategy ~seed:7 in
      Alcotest.(check (list string))
        (Search.strategy_name strategy ^ ": same seed, same trials")
        (trial_keys a) (trial_keys b);
      Alcotest.(check string)
        (Search.strategy_name strategy ^ ": same seed, same best")
        (Policy.key a.Search.best)
        (Policy.key b.Search.best))
    [ Search.Hill; Search.Ga ]

let test_search_contract () =
  List.iter
    (fun strategy ->
      let r = run_search ~strategy ~seed:3 in
      let name = Search.strategy_name strategy in
      Alcotest.(check bool)
        (name ^ ": budget respected") true
        (r.Search.evaluated <= 24);
      (match r.Search.trials with
      | first :: _ ->
          Alcotest.(check string)
            (name ^ ": trial 1 is the default policy")
            (Policy.key Policy.default)
            (Policy.key first.Search.t_policy)
      | [] -> Alcotest.fail (name ^ ": no trials"));
      let keys = trial_keys r in
      Alcotest.(check int)
        (name ^ ": no configuration measured twice")
        (List.length keys)
        (List.length (List.sort_uniq compare keys));
      (* The best really is the cheapest successful trial. *)
      let min_ns =
        List.fold_left
          (fun acc t ->
            if t.Search.t_ok && not t.Search.t_pruned then
              Float.min acc t.Search.t_wall_ns
            else acc)
          Float.infinity r.Search.trials
      in
      Alcotest.(check (float 0.01))
        (name ^ ": best is the cheapest trial")
        min_ns r.Search.best_wall_ns)
    [ Search.Hill; Search.Ga ]

let test_search_failures_never_win () =
  (* Every candidate except the default fails: the default must remain
     the incumbent no matter how attractive the failures' wall times. *)
  let axes = Space.default_axes ~max_domains:4 (symm ()) in
  let measure ~incumbent_ns:_ (p : Policy.t) =
    if Policy.equal (Space.canon p) (Space.canon Policy.default) then
      { Search.m_wall_ns = 5000.; m_seq_ns = 5000.; m_ok = true;
        m_pruned = false }
    else
      { Search.m_wall_ns = 1.; m_seq_ns = 5000.; m_ok = false;
        m_pruned = true }
  in
  let r = Search.search ~strategy:Search.Hill ~budget:12 ~seed:5 ~axes
      ~measure () in
  Alcotest.(check string)
    "failed trials never become best"
    (Policy.key (Space.canon Policy.default))
    (Policy.key r.Search.best)

(* ---------- tune: searched -> cached round-trip ---------- *)

let test_tune_roundtrip () =
  with_dir (fun dir ->
      let wl = symm () in
      let cold =
        Tune.tune ~cache:`Rw ~cache_dir:dir ~input:Wl.Workload.Train ~budget:6
          ~seed:7 ~max_domains:2 wl
      in
      Alcotest.(check string)
        "cold tune searches" "searched"
        (Tune.source_name cold.Tune.source);
      Alcotest.(check bool) "cold tune ran trials" true (cold.Tune.trials <> []);
      let warm =
        Tune.tune ~cache:`Rw ~cache_dir:dir ~input:Wl.Workload.Train ~budget:6
          ~seed:7 ~max_domains:2 wl
      in
      Alcotest.(check string)
        "warm tune cached" "cached"
        (Tune.source_name warm.Tune.source);
      Alcotest.(check int)
        "warm tune runs zero search trials" 0
        (List.length warm.Tune.trials);
      Alcotest.(check string)
        "warm policy identical to searched"
        (Policy.key cold.Tune.tuned.Policy.policy)
        (Policy.key warm.Tune.tuned.Policy.policy);
      (* `Auto resolution inside the facade finds the same artifact. *)
      let o =
        Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Train ~cache:`Ro ~cache_dir:dir
          ~policy:`Auto ~technique:Cx.Barrier ~threads:2 wl
      in
      Alcotest.(check string)
        "run --policy auto resolves the cached policy" "cached"
        o.Cx.policy_source;
      Alcotest.(check bool) "auto run verified" true o.Cx.verified;
      (* JSON report carries the schema marker. *)
      let json = Tune.report_json cold in
      Alcotest.(check bool)
        "report carries xinv-tune/1 schema" true
        (contains json "\"schema\": \"xinv-tune/1\""))

(* ---------- policy replay fidelity: every registry workload ---------- *)

(* The autotuner must never trade correctness for speed: whatever policy
   it lands on, replaying it produces memory bit-identical to the
   sequential run (a [`Reified] request verifies against the sequential
   baseline). *)
let test_policy_replay_all () =
  List.iter
    (fun wl ->
      let r =
        Tune.tune ~input:Wl.Workload.Train ~budget:4 ~seed:13 ~max_domains:2 wl
      in
      let o =
        Cx.run_request
        @@ Cx.Request.make ~input:Wl.Workload.Train
             ~backend:(`Native Cx.native_defaults)
             ~policy:(`Reified (r.Tune.tuned.Policy.policy, "searched"))
             ~technique:Cx.Sequential ~threads:1 wl
      in
      Alcotest.(check bool)
        (wl.Wl.Workload.name ^ ": tuned policy replay bit-identical")
        true o.Cx.verified;
      Alcotest.(check string)
        (wl.Wl.Workload.name ^ ": replay labelled searched")
        "searched" o.Cx.policy_source)
    (Wl.Registry.all ())

(* ---------- adaptive controller ---------- *)

let test_adaptive_commit () =
  let ctl = Cx.adaptive ~probe_runs:2 ~margin:1.1 () in
  Alcotest.(check bool) "starts probing" true (Cx.adaptive_phase ctl = `Probing);
  let d1 = Cx.adaptive_note ctl ~cand_ns:100. ~seq_ns:100. in
  Alcotest.(check bool) "probe 1 keeps" true (d1 = `Keep);
  Alcotest.(check bool)
    "still probing" true
    (Cx.adaptive_phase ctl = `Probing);
  let d2 = Cx.adaptive_note ctl ~cand_ns:100. ~seq_ns:100. in
  Alcotest.(check bool) "probe 2 keeps" true (d2 = `Keep);
  Alcotest.(check bool)
    "committed to candidate" true
    (Cx.adaptive_phase ctl = `Candidate);
  (* Two consecutive losing runs abandon a committed candidate. *)
  let d3 = Cx.adaptive_note ctl ~cand_ns:200. ~seq_ns:100. in
  Alcotest.(check bool) "one bad run tolerated" true (d3 = `Keep);
  let d4 = Cx.adaptive_note ctl ~cand_ns:200. ~seq_ns:100. in
  Alcotest.(check bool) "second bad run switches" true (d4 = `Switch);
  Alcotest.(check bool)
    "now sequential" true
    (Cx.adaptive_phase ctl = `Sequential);
  Alcotest.(check int) "one switch recorded" 1 (Cx.adaptive_switches ctl);
  (* Sequential is terminal. *)
  let d5 = Cx.adaptive_note ctl ~cand_ns:1. ~seq_ns:100. in
  Alcotest.(check bool) "sequential is terminal" true (d5 = `Keep);
  Alcotest.(check bool)
    "stays sequential" true
    (Cx.adaptive_phase ctl = `Sequential)

let test_adaptive_probe_bailout () =
  (* A candidate that loses the probe outright is abandoned at the end of
     the probe window — the stream can never end slower than margin x
     sequential. *)
  let ctl = Cx.adaptive ~probe_runs:2 ~margin:1.1 () in
  ignore (Cx.adaptive_note ctl ~cand_ns:300. ~seq_ns:100.);
  let d = Cx.adaptive_note ctl ~cand_ns:300. ~seq_ns:100. in
  Alcotest.(check bool) "probe loss switches" true (d = `Switch);
  Alcotest.(check bool)
    "sequential after probe loss" true
    (Cx.adaptive_phase ctl = `Sequential);
  Alcotest.(check int) "switch counted" 1 (Cx.adaptive_switches ctl)

let test_adaptive_stream () =
  (* End-to-end: a stream of adaptive runs leaves the probing phase and
     every run stays verified; if the controller bailed out, the final
     run really executed sequentially. *)
  let wl = symm () in
  let ctl = Cx.adaptive ~probe_runs:2 () in
  let last = ref None in
  for _ = 1 to 4 do
    let o =
      Cx.run_request @@ Cx.Request.make ~input:Wl.Workload.Train ~policy:(`Adaptive ctl)
        ~technique:Cx.Barrier ~threads:2 wl
    in
    Alcotest.(check bool) "adaptive run verified" true o.Cx.verified;
    last := Some o
  done;
  Alcotest.(check bool)
    "controller left probing" true
    (Cx.adaptive_phase ctl <> `Probing);
  (match (Cx.adaptive_phase ctl, !last) with
  | `Sequential, Some o ->
      Alcotest.(check string)
        "bailed-out stream runs sequentially" "adaptive:sequential"
        o.Cx.policy_source
  | _ -> ())

let suite =
  [
    Alcotest.test_case "space axes" `Quick test_space_axes;
    Alcotest.test_case "space canon" `Quick test_space_canon;
    Alcotest.test_case "space neighbours" `Quick test_space_neighbours;
    Alcotest.test_case "space seeds" `Quick test_space_seeds;
    Alcotest.test_case "search deterministic" `Quick test_search_deterministic;
    Alcotest.test_case "search contract" `Quick test_search_contract;
    Alcotest.test_case "search failures never win" `Quick
      test_search_failures_never_win;
    Alcotest.test_case "tune searched/cached round-trip" `Slow
      test_tune_roundtrip;
    Alcotest.test_case "policy replay all workloads" `Slow
      test_policy_replay_all;
    Alcotest.test_case "adaptive commit and abandon" `Quick
      test_adaptive_commit;
    Alcotest.test_case "adaptive probe bailout" `Quick
      test_adaptive_probe_bailout;
    Alcotest.test_case "adaptive stream" `Slow test_adaptive_stream;
  ]
