(* Tests for the runtime substrate: shadow memory, signatures, signature log,
   checkpoints. *)

module Rt = Xinv_runtime
module Ir = Xinv_ir

let e tid iter = { Rt.Shadow.tid; iter }

let deps_eq = Alcotest.(check (list (pair int int)))

let as_pairs = List.map (fun (d : Rt.Shadow.entry) -> (d.Rt.Shadow.tid, d.Rt.Shadow.iter))

let test_shadow_war_waw_raw () =
  let sh = Rt.Shadow.create () in
  (* write by t0/i0; read by t1/i1 must wait for the write *)
  deps_eq "first write no deps" [] (as_pairs (Rt.Shadow.note_write sh 5 (e 0 0)));
  deps_eq "RAW" [ (0, 0) ] (as_pairs (Rt.Shadow.note_read sh 5 (e 1 1)));
  (* write by t2/i2 waits for last write and the reader *)
  deps_eq "WAW+WAR" [ (0, 0); (1, 1) ] (as_pairs (Rt.Shadow.note_write sh 5 (e 2 2)));
  (* same-thread accesses never synchronize *)
  deps_eq "same tid" [] (as_pairs (Rt.Shadow.note_write sh 5 (e 2 3)))

let test_shadow_no_rar () =
  let sh = Rt.Shadow.create () in
  deps_eq "r1" [] (as_pairs (Rt.Shadow.note_read sh 9 (e 0 0)));
  deps_eq "read-after-read free" [] (as_pairs (Rt.Shadow.note_read sh 9 (e 1 1)));
  (* but a write must wait for all foreign readers *)
  let deps = as_pairs (Rt.Shadow.note_write sh 9 (e 2 2)) in
  Alcotest.(check bool) "write waits for both readers" true
    (List.mem (0, 0) deps && List.mem (1, 1) deps)

let test_shadow_reader_latest_kept () =
  let sh = Rt.Shadow.create () in
  ignore (Rt.Shadow.note_read sh 1 (e 0 3));
  ignore (Rt.Shadow.note_read sh 1 (e 0 7));
  deps_eq "latest read per tid" [ (0, 7) ] (as_pairs (Rt.Shadow.note_write sh 1 (e 1 9)))

let test_sync_cond () =
  let open Rt.Sync_cond in
  Alcotest.(check bool) "eq" true (equal End_token End_token);
  Alcotest.(check bool) "neq" false
    (equal (No_sync { iter = 1 }) (Wait { dep_tid = 0; dep_iter = 1 }));
  Alcotest.(check string) "pp" "(T1, I2)"
    (Format.asprintf "%a" pp (Wait { dep_tid = 1; dep_iter = 2 }))

let kinds =
  [
    ("range", Rt.Signature.Range);
    ("segmented", Rt.Signature.Segmented [| 0; 100; 200 |]);
    ("bloom", Rt.Signature.Bloom { bits = 512; hashes = 3 });
    ("exact", Rt.Signature.Exact);
  ]

let test_signature_basics () =
  List.iter
    (fun (name, kind) ->
      let s = Rt.Signature.create kind in
      Alcotest.(check bool) (name ^ " empty") true (Rt.Signature.is_empty s);
      Rt.Signature.add_list s [ 5; 42; 199 ];
      Alcotest.(check int) (name ^ " count") 3 (Rt.Signature.count s);
      let t = Rt.Signature.create kind in
      Alcotest.(check bool) (name ^ " empty never intersects") false
        (Rt.Signature.intersects s t);
      Rt.Signature.add t 42;
      Alcotest.(check bool) (name ^ " overlap detected") true
        (Rt.Signature.intersects s t))
    kinds

(* Soundness: if two address sets share an element, every signature kind
   must report an intersection (no false negatives). *)
let prop_signature_sound =
  QCheck.Test.make ~name:"signatures have no false negatives" ~count:300
    QCheck.(pair (list (int_range 0 299)) (list (int_range 0 299)))
    (fun (xs, ys) ->
      let shared = List.exists (fun x -> List.mem x ys) xs in
      (not shared)
      || List.for_all
           (fun (_, kind) ->
             let a = Rt.Signature.create kind and b = Rt.Signature.create kind in
             Rt.Signature.add_list a xs;
             Rt.Signature.add_list b ys;
             Rt.Signature.intersects a b)
           kinds)

(* Exact signatures are precise: intersection iff a shared address exists. *)
let prop_exact_precise =
  QCheck.Test.make ~name:"exact signature is precise" ~count:300
    QCheck.(pair (list (int_range 0 99)) (list (int_range 0 99)))
    (fun (xs, ys) ->
      let shared = xs <> [] && ys <> [] && List.exists (fun x -> List.mem x ys) xs in
      let a = Rt.Signature.create Rt.Signature.Exact in
      let b = Rt.Signature.create Rt.Signature.Exact in
      Rt.Signature.add_list a xs;
      Rt.Signature.add_list b ys;
      Rt.Signature.intersects a b = shared)

(* Segmented ranges are strictly more precise than a global range. *)
let test_segmented_beats_range () =
  let bounds = [| 0; 100 |] in
  let a = Rt.Signature.create (Rt.Signature.Segmented bounds) in
  let b = Rt.Signature.create (Rt.Signature.Segmented bounds) in
  (* a touches array0[5] and array1[150]; b touches array0[50]: the global
     ranges [5,150] and [50,50] overlap, the per-array ranges do not. *)
  Rt.Signature.add_list a [ 5; 150 ];
  Rt.Signature.add b 50;
  Alcotest.(check bool) "segmented disjoint" false (Rt.Signature.intersects a b);
  let ra = Rt.Signature.create Rt.Signature.Range in
  let rb = Rt.Signature.create Rt.Signature.Range in
  Rt.Signature.add_list ra [ 5; 150 ];
  Rt.Signature.add rb 50;
  Alcotest.(check bool) "plain range false positive" true (Rt.Signature.intersects ra rb)

let test_signature_merge () =
  List.iter
    (fun (name, kind) ->
      let a = Rt.Signature.create kind and b = Rt.Signature.create kind in
      Rt.Signature.add a 10;
      Rt.Signature.add b 210;
      Rt.Signature.merge ~into:a b;
      let probe = Rt.Signature.create kind in
      Rt.Signature.add probe 210;
      Alcotest.(check bool) (name ^ " merged content visible") true
        (Rt.Signature.intersects a probe))
    kinds

let test_siglog () =
  let log = Rt.Siglog.create ~workers:2 in
  let sg i =
    let s = Rt.Signature.create Rt.Signature.Exact in
    Rt.Signature.add s i;
    s
  in
  Rt.Siglog.store log ~worker:0 ~epoch:1 ~task:0 (sg 1);
  Rt.Siglog.store log ~worker:0 ~epoch:1 ~task:1 (sg 2);
  Rt.Siglog.store log ~worker:0 ~epoch:2 ~task:0 (sg 3);
  Rt.Siglog.store log ~worker:1 ~epoch:1 ~task:0 (sg 4);
  Alcotest.(check int) "stored" 4 (Rt.Siglog.stored log);
  let w = Rt.Siglog.between log ~worker:0 ~from_epoch:1 ~from_task:1 ~upto_epoch:3 in
  Alcotest.(check (list (pair int int))) "window (epoch, task)" [ (1, 1); (2, 0) ]
    (List.map (fun (e, t, _) -> (e, t)) w);
  let empty = Rt.Siglog.between log ~worker:1 ~from_epoch:2 ~from_task:0 ~upto_epoch:2 in
  Alcotest.(check int) "empty window" 0 (List.length empty);
  Rt.Siglog.clear_before log ~epoch:2;
  Alcotest.(check int) "cleared" 1 (Rt.Siglog.stored log)

let test_checkpoint () =
  let m = Ir.Memory.create [ Ir.Memory.Floats ("a", [| 1.; 2. |]) ] in
  let ck = Rt.Checkpoint.create () in
  Alcotest.(check (option int)) "none yet" None (Rt.Checkpoint.latest_epoch ck);
  Rt.Checkpoint.save ck ~epoch:4 m;
  Ir.Memory.set_float m "a" 0 99.;
  Alcotest.(check int) "restore epoch" 4 (Rt.Checkpoint.restore ck ~into:m);
  Alcotest.(check (float 1e-9)) "value restored" 1. (Ir.Memory.get_float m "a" 0);
  Rt.Checkpoint.save ck ~epoch:9 m;
  Alcotest.(check int) "saves counted" 2 (Rt.Checkpoint.saves ck);
  Alcotest.(check (option int)) "latest" (Some 9) (Rt.Checkpoint.latest_epoch ck)

(* ---------- PR1: optimized primitives vs naive reference models ---------- *)

(* Naive shadow memory: the seed implementation (assoc lists, Hashtbl),
   kept as the executable specification the optimized open-addressing table
   must match dependence-for-dependence, order included. *)
module Ref_shadow = struct
  type slot = { mutable w : (int * int) option; mutable rs : (int * int) list }

  type t = (int, slot) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let slot sh addr =
    match Hashtbl.find_opt sh addr with
    | Some s -> s
    | None ->
        let s = { w = None; rs = [] } in
        Hashtbl.replace sh addr s;
        s

  let foreign tid = function Some (t, i) when t <> tid -> [ (t, i) ] | _ -> []

  let note_read sh addr ~tid ~iter =
    let s = slot sh addr in
    let deps = foreign tid s.w in
    let rest = List.remove_assoc tid s.rs in
    let prev = try List.assoc tid s.rs with Not_found -> min_int in
    s.rs <- (tid, Stdlib.max prev iter) :: rest;
    deps

  let note_write sh addr ~tid ~iter =
    let s = slot sh addr in
    let readers = List.filter (fun (t, _) -> t <> tid) s.rs in
    let deps = foreign tid s.w @ readers in
    s.w <- Some (tid, iter);
    s.rs <- [];
    deps
end

(* A random access trace: (addr, tid, write?) per step; the step index is the
   iteration number, so iterations increase monotonically like a real run. *)
let trace_gen =
  QCheck.(
    list_of_size Gen.(int_range 0 200)
      (triple (int_range 0 40) (int_range 0 5) bool))

let prop_shadow_matches_reference =
  QCheck.Test.make ~name:"optimized shadow = naive reference (deps, order)" ~count:200
    trace_gen
    (fun trace ->
      let sh = Rt.Shadow.create () and rf = Ref_shadow.create () in
      List.for_all
        (fun (step, (addr, tid, w)) ->
          let iter = step in
          let got =
            as_pairs
              (if w then Rt.Shadow.note_write sh addr (e tid iter)
               else Rt.Shadow.note_read sh addr (e tid iter))
          in
          let want =
            if w then Ref_shadow.note_write rf addr ~tid ~iter
            else Ref_shadow.note_read rf addr ~tid ~iter
          in
          got = want)
        (List.mapi (fun i x -> (i, x)) trace))

(* The zero-allocation Deps accumulator must agree with the list API plus the
   seed's List.mem dedup, across a whole iteration's worth of notes. *)
let prop_deps_accumulator_matches =
  QCheck.Test.make ~name:"Deps accumulator = list API + List.mem dedup" ~count:200
    QCheck.(pair trace_gen (int_range 0 5))
    (fun (trace, tid) ->
      let sh1 = Rt.Shadow.create () and sh2 = Rt.Shadow.create () in
      (* Warm both tables identically with the trace ... *)
      List.iteri
        (fun i (addr, t, w) ->
          if w then (
            ignore (Rt.Shadow.note_write sh1 addr (e t i));
            ignore (Rt.Shadow.note_write sh2 addr (e t i)))
          else (
            ignore (Rt.Shadow.note_read sh1 addr (e t i));
            ignore (Rt.Shadow.note_read sh2 addr (e t i))))
        trace;
      (* ... then collect one iteration's dependences over a fixed footprint
         both ways. *)
      let iter = List.length trace in
      let raddrs = [ 0; 7; 13; 21 ] and waddrs = [ 3; 7; 33 ] in
      let dedup = ref [] in
      let note found =
        List.iter
          (fun (d : Rt.Shadow.entry) ->
            let c = (d.Rt.Shadow.tid, d.Rt.Shadow.iter) in
            if not (List.mem c !dedup) then dedup := c :: !dedup)
          found
      in
      List.iter (fun a -> note (Rt.Shadow.note_read sh1 a (e tid iter))) raddrs;
      List.iter (fun a -> note (Rt.Shadow.note_write sh1 a (e tid iter))) waddrs;
      let deps = Rt.Shadow.Deps.create () in
      List.iter (fun a -> Rt.Shadow.note_read_deps sh2 a ~tid ~iter deps) raddrs;
      List.iter (fun a -> Rt.Shadow.note_write_deps sh2 a ~tid ~iter deps) waddrs;
      Rt.Shadow.Deps.to_list deps = List.rev !dedup)

let test_shadow_reset_o1 () =
  let sh = Rt.Shadow.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    ignore (Rt.Shadow.note_write sh i (e (i land 3) i))
  done;
  Alcotest.(check int) "entries before reset" n (Rt.Shadow.entries sh);
  let cap = Rt.Shadow.capacity sh in
  Rt.Shadow.reset sh;
  Alcotest.(check int) "empty after reset" 0 (Rt.Shadow.entries sh);
  Alcotest.(check int) "reset does not rehash or shrink" cap (Rt.Shadow.capacity sh);
  Alcotest.(check (option (pair int int)))
    "stale entries invisible" None
    (Option.map (fun (d : Rt.Shadow.entry) -> (d.tid, d.iter)) (Rt.Shadow.last_write sh 5));
  (* refilling reuses the retained capacity *)
  for i = 0 to n - 1 do
    ignore (Rt.Shadow.note_write sh i (e 1 i))
  done;
  Alcotest.(check int) "refill finds capacity in place" cap (Rt.Shadow.capacity sh)

(* Every signature kind must over-approximate the exact oracle, including on
   addresses outside the Segmented bounds (clamped, not crashing). *)
let prop_signature_over_approximates_exact =
  QCheck.Test.make ~name:"signature intersects never under-approximates exact" ~count:300
    QCheck.(pair (list (int_range (-50) 349)) (list (int_range (-50) 349)))
    (fun (xs, ys) ->
      let exact_a = Rt.Signature.create Rt.Signature.Exact in
      let exact_b = Rt.Signature.create Rt.Signature.Exact in
      Rt.Signature.add_list exact_a xs;
      Rt.Signature.add_list exact_b ys;
      (not (Rt.Signature.intersects exact_a exact_b))
      || List.for_all
           (fun (_, kind) ->
             let a = Rt.Signature.create kind and b = Rt.Signature.create kind in
             Rt.Signature.add_list a xs;
             Rt.Signature.add_list b ys;
             Rt.Signature.intersects a b)
           kinds)

let test_segmented_clamps_out_of_range () =
  let bounds = [| 100; 200 |] in
  let a = Rt.Signature.create (Rt.Signature.Segmented bounds) in
  (* below the first bound: clamps into segment 0 instead of crashing *)
  Rt.Signature.add a 7;
  Rt.Signature.add a 150;
  let b = Rt.Signature.create (Rt.Signature.Segmented bounds) in
  Rt.Signature.add b 120;
  (* the clamped address widened segment 0's range to [7, 150], covering 120 *)
  Alcotest.(check bool) "clamped add is sound (may widen)" true
    (Rt.Signature.intersects a b);
  let a' = Rt.Signature.create (Rt.Signature.Segmented bounds) in
  Rt.Signature.add a' 7;
  Alcotest.(check bool) "shared clamped address intersects" true
    (Rt.Signature.intersects a a');
  let c = Rt.Signature.create (Rt.Signature.Segmented bounds) in
  Rt.Signature.add c 250;
  Alcotest.(check bool) "distinct segments stay disjoint" false
    (Rt.Signature.intersects a c)

let prop_add_array_equals_add_list =
  QCheck.Test.make ~name:"add_array/add_iter = add_list" ~count:100
    QCheck.(list (int_range 0 299))
    (fun xs ->
      List.for_all
        (fun (_, kind) ->
          let a = Rt.Signature.create kind in
          let b = Rt.Signature.create kind in
          let c = Rt.Signature.create kind in
          Rt.Signature.add_list a xs;
          Rt.Signature.add_array b (Array.of_list xs);
          Rt.Signature.add_iter c (fun sink -> List.iter sink xs);
          let probe = Rt.Signature.create kind in
          Rt.Signature.add_list probe xs;
          Rt.Signature.count a = Rt.Signature.count b
          && Rt.Signature.count a = Rt.Signature.count c
          && (xs = []
             || (Rt.Signature.intersects a probe && Rt.Signature.intersects b probe
               && Rt.Signature.intersects c probe)))
        kinds)

(* The compact int encoding (the native queues' wire format, also carried by
   the simulator's DOMORE channels) must round-trip every constructor. *)
let prop_sync_cond_roundtrip =
  let open QCheck in
  let gen =
    Gen.oneof
      [
        Gen.return Rt.Sync_cond.End_token;
        Gen.map
          (fun iter -> Rt.Sync_cond.No_sync { iter })
          (Gen.oneof
             [ Gen.int_range 0 1_000_000; Gen.return (max_int lsr 2) ]);
        Gen.map2
          (fun dep_tid dep_iter -> Rt.Sync_cond.Wait { dep_tid; dep_iter })
          (Gen.oneof
             [ Gen.int_range 0 Rt.Sync_cond.max_tid;
               Gen.return Rt.Sync_cond.max_tid ])
          (Gen.oneof
             [ Gen.int_range 0 1_000_000; Gen.return Rt.Sync_cond.max_iter ]);
      ]
  in
  let print c = Format.asprintf "%a" Rt.Sync_cond.pp c in
  QCheck.Test.make ~name:"Sync_cond.to_int/of_int round-trips" ~count:500
    (QCheck.make ~print gen) (fun c ->
      Rt.Sync_cond.equal c (Rt.Sync_cond.of_int (Rt.Sync_cond.to_int c)))

(* Statistical envelope on the Bloom scheme: the false-positive rate of
   intersection tests between disjoint address sets must stay within the
   rate its bits/hashes parameters predict (and soundness keeps holding:
   overlapping sets always intersect). *)
let test_bloom_fp_rate () =
  let bits = 4096 and hashes = 3 and adds = 8 in
  let kind = Rt.Signature.Bloom { bits; hashes } in
  let st = Random.State.make [| 0x5eed |] in
  let trials = 400 in
  let fp = ref 0 in
  for _ = 1 to trials do
    (* Disjoint by construction: evens on one side, odds on the other. *)
    let a = Rt.Signature.create kind and b = Rt.Signature.create kind in
    for _ = 1 to adds do
      Rt.Signature.add a (2 * Random.State.int st 1_000_000);
      Rt.Signature.add b ((2 * Random.State.int st 1_000_000) + 1)
    done;
    if Rt.Signature.intersects a b then incr fp
  done;
  (* P(one bit set) = 1-(1-1/bits)^(adds*hashes); independent-bit model for
     a shared set bit between two such filters, with generous slack for the
     400-trial sample and for double-hash correlation. *)
  let p = 1. -. ((1. -. (1. /. float bits)) ** float (adds * hashes)) in
  let theory = 1. -. ((1. -. (p *. p)) ** float bits) in
  let observed = float !fp /. float trials in
  Alcotest.(check bool)
    (Printf.sprintf "FP rate %.3f within envelope of theoretical %.3f" observed
       theory)
    true
    (observed <= (2.5 *. theory) +. 0.03);
  (* Soundness side: a genuinely shared address always intersects. *)
  for i = 0 to 99 do
    let a = Rt.Signature.create kind and b = Rt.Signature.create kind in
    Rt.Signature.add a i;
    Rt.Signature.add b i;
    Rt.Signature.add b (i + 1_000_000);
    Alcotest.(check bool) "no false negatives" true (Rt.Signature.intersects a b)
  done

let suite =
  [
    Alcotest.test_case "shadow RAW/WAR/WAW" `Quick test_shadow_war_waw_raw;
    Alcotest.test_case "shadow no RAR sync" `Quick test_shadow_no_rar;
    Alcotest.test_case "shadow latest reader" `Quick test_shadow_reader_latest_kept;
    Alcotest.test_case "sync conditions" `Quick test_sync_cond;
    Alcotest.test_case "signature basics" `Quick test_signature_basics;
    QCheck_alcotest.to_alcotest prop_signature_sound;
    QCheck_alcotest.to_alcotest prop_exact_precise;
    Alcotest.test_case "segmented precision" `Quick test_segmented_beats_range;
    Alcotest.test_case "signature merge" `Quick test_signature_merge;
    Alcotest.test_case "signature log" `Quick test_siglog;
    Alcotest.test_case "checkpoint" `Quick test_checkpoint;
    QCheck_alcotest.to_alcotest prop_shadow_matches_reference;
    QCheck_alcotest.to_alcotest prop_deps_accumulator_matches;
    Alcotest.test_case "shadow reset is O(1)" `Quick test_shadow_reset_o1;
    QCheck_alcotest.to_alcotest prop_signature_over_approximates_exact;
    Alcotest.test_case "segmented clamps out-of-range" `Quick test_segmented_clamps_out_of_range;
    QCheck_alcotest.to_alcotest prop_add_array_equals_add_list;
    QCheck_alcotest.to_alcotest prop_sync_cond_roundtrip;
    Alcotest.test_case "bloom false-positive envelope" `Quick test_bloom_fp_rate;
  ]
