(* crossinv: command-line driver for the cross-invocation parallelization
   library.  Subcommands: list, run, experiment, all, profile. *)

module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads
module Exp = Xinv_experiments.Experiments

open Cmdliner

let workload_conv =
  let parse s =
    match Wl.Registry.find s with
    | wl -> Ok wl
    | exception Invalid_argument _ ->
        Error
          (`Msg
            (Printf.sprintf "unknown workload %s (available: %s)" s
               (String.concat ", " (Wl.Registry.names ()))))
  in
  Arg.conv (parse, fun ppf (wl : Wl.Workload.t) -> Format.fprintf ppf "%s" wl.Wl.Workload.name)

let technique_conv =
  let parse s =
    match Cx.technique_of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown technique %s" s))
  in
  Arg.conv (parse, fun ppf t -> Format.fprintf ppf "%s" (Cx.technique_name t))

let input_conv =
  let parse s =
    match Wl.Workload.input_of_string s with
    | Some i -> Ok i
    | None -> Error (`Msg (Printf.sprintf "unknown input %s (train|ref|ref-spec)" s))
  in
  Arg.conv (parse, fun ppf i -> Format.fprintf ppf "%s" (Wl.Workload.input_name i))

let threads_arg =
  Arg.(value & opt int 24 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Simulated cores.")

let input_arg =
  Arg.(
    value
    & opt input_conv Wl.Workload.Ref
    & info [ "i"; "input" ] ~docv:"INPUT" ~doc:"Input set: train, ref or ref-spec.")

(* ---- list ---- *)

let list_cmd =
  let run () =
    print_endline "Workloads:";
    List.iter
      (fun (wl : Wl.Workload.t) ->
        Printf.printf "  %-16s (%s, %s)\n" wl.Wl.Workload.name wl.Wl.Workload.suite
          wl.Wl.Workload.func)
      (Wl.Registry.all ());
    print_endline "\nExperiments:";
    List.iter
      (fun (e : Exp.t) -> Printf.printf "  %-8s %s\n" e.Exp.id e.Exp.title)
      Exp.all;
    let techs backend =
      String.concat ", " (List.map Cx.technique_name (Cx.supported ~backend))
    in
    Printf.printf "\nTechniques (sim backend):    %s\n" (techs `Sim);
    Printf.printf "Techniques (native backend): %s\n" (techs `Native)
  in
  Cmd.v (Cmd.info "list" ~doc:"List workloads, experiments and techniques.")
    Term.(const run $ const ())

(* ---- run ---- *)

let tech_arg =
  Arg.(
    value
    & opt technique_conv Cx.Domore
    & info [ "x"; "technique"; "k" ] ~docv:"TECH" ~doc:"Parallelization technique.")

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Execution backend: $(b,sim) (simulated multicore, virtual time) or \
           $(b,native) (real OCaml domains, wall-clock time).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Real domains for the native backend; alias for $(b,--threads) under \
           $(b,--backend native).")

let run_threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t"; "threads" ] ~docv:"N"
        ~doc:
          "Execution contexts: simulated cores (default 24) or real domains \
           (default 4).")

let fault_conv =
  let parse s =
    match Xinv_native.Fault.spec_of_string s with
    | Ok sp -> Ok sp
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun ppf sp -> Format.fprintf ppf "%s" (Xinv_native.Fault.spec_to_string sp) )

let inject_arg =
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject" ] ~docv:"FAULTSPEC"
        ~doc:
          "Arm one fault on the native backend: $(b,raise@D:S), $(b,stall@D:S) or \
           $(b,poison@D:S) with $(i,D) a domain index or $(b,*); \
           $(b,sched-die@S); $(b,checker-die@S); or $(b,rand:SEED).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Overall native-run deadline in milliseconds, degradation included.")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "On a native failure, raise the typed error instead of retrying under \
           a weaker technique.")

let grain_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "grain" ] ~docv:"N"
        ~doc:
          "Native chunk size: iterations dispatched/distributed as one block \
           (barrier block-cyclic blocks, DOMORE chunk frames, SPECCROSS \
           speculative blocks).  Default 1 reproduces the per-iteration \
           protocols exactly.")

let batch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Native write-combining factor: queue words per atomic publish in \
           the DOMORE scheduler (default 32); 1 publishes per word like the \
           unbatched protocol.")

let cache_mode_arg =
  Arg.(
    value
    & opt (enum [ ("off", `Off); ("ro", `Ro); ("rw", `Rw) ]) `Off
    & info [ "cache" ] ~docv:"MODE"
        ~doc:
          "Incremental analysis cache: $(b,off) (default), $(b,ro) (reuse \
           stored analyses, never write) or $(b,rw) (reuse and publish fresh \
           analyses).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Analysis-cache directory (default $(b,\\$XDG_CACHE_HOME/xinv) or \
           $(b,~/.cache/xinv)).")

let flight_arg =
  Arg.(
    value & flag
    & info [ "flight" ]
        ~doc:
          "Attach the native flight recorder: per-domain ring buffers of \
           dispatch/sync/barrier/commit/stall events with bounded overhead.  \
           Implied by $(b,--postmortem-dir).")

let postmortem_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "postmortem-dir" ] ~docv:"DIR"
        ~doc:
          "Dump a text postmortem plus a Perfetto trace of the flight \
           recording into $(i,DIR) for every failed native attempt (injected \
           fault, watchdog stall, worker exception), whether it degrades or \
           escapes.")

let policy_arg =
  Arg.(
    value
    & opt (enum [ ("fixed", `Fixed); ("auto", `Auto); ("adaptive", `Adaptive) ])
        `Fixed
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Where the run's configuration comes from: $(b,fixed) (the flags on \
           this command line, the default), $(b,auto) (a tuned policy stored \
           in the analysis cache by $(b,xinv tune), falling back to the flags \
           on a miss — requires $(b,--cache)) or $(b,adaptive) (auto \
           resolution under the online probe-and-switch controller).")

(* Invalid numeric arguments are a usage error, distinct from run failures:
   typed one-line message, exit 3. *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "invalid argument: %s\n" msg;
      exit 3)
    fmt

let run_cmd =
  let run wl technique threads input backend domains verbose stats inject
      deadline_ms no_degrade grain batch cache cache_dir flight postmortem_dir
      policy =
    (match (backend, domains) with
    | `Sim, Some _ ->
        prerr_endline
          "--domains only applies to the native backend (use --threads for \
           simulated cores, or add --backend native)";
        exit 1
    | _ -> ());
    if backend = `Sim && (inject <> None || deadline_ms <> None || no_degrade)
    then begin
      prerr_endline
        "--inject, --deadline-ms and --no-degrade only apply to the native \
         backend (add --backend native)";
      exit 1
    end;
    if backend = `Sim && (grain <> None || batch <> None) then begin
      prerr_endline
        "--grain and --batch only apply to the native backend (add --backend \
         native)";
      exit 1
    end;
    if backend = `Sim && (flight || postmortem_dir <> None) then begin
      prerr_endline
        "--flight and --postmortem-dir only apply to the native backend (add \
         --backend native)";
      exit 1
    end;
    (match grain with
    | Some g when g < 1 -> usage_error "--grain must be >= 1 (got %d)" g
    | _ -> ());
    (match batch with
    | Some b when b < 1 -> usage_error "--batch must be >= 1 (got %d)" b
    | _ -> ());
    (match domains with
    | Some d when d < 1 -> usage_error "--domains must be >= 1 (got %d)" d
    | _ -> ());
    (match deadline_ms with
    | Some ms when ms <= 0. ->
        usage_error "--deadline-ms must be > 0 (got %g)" ms
    | _ -> ());
    let threads =
      match (domains, threads) with
      | Some n, _ | None, Some n -> n
      | None, None -> ( match backend with `Sim -> 24 | `Native -> 4)
    in
    if threads < 1 then
      usage_error "--threads/--domains must be >= 1 (got %d)" threads;
    let backend_name = match backend with `Sim -> "sim" | `Native -> "native" in
    (* The applicability probe reads the cache but never warms it, so the
       run's own hit/miss line reflects what was on disk beforehand. *)
    let probe_cache = match cache with `Off -> `Off | `Ro | `Rw -> `Ro in
    match Cx.applicable ~backend ~cache:probe_cache ?cache_dir technique wl with
    | Error reason ->
        Printf.eprintf "%s is inapplicable to %s on the %s backend: %s\n"
          (Cx.technique_name technique)
          wl.Wl.Workload.name backend_name reason;
        Printf.eprintf "techniques supported on %s: %s\n" backend_name
          (String.concat ", "
             (List.map Cx.technique_name (Cx.supported ~backend)));
        exit 1
    | Ok () ->
        let obs = if stats then Some (Xinv_obs.Recorder.create ()) else None in
        let b =
          match backend with
          | `Sim -> `Sim None
          | `Native ->
              `Native
                {
                  Cx.native_defaults with
                  Cx.fault = inject;
                  deadline_ms;
                  degrade = not no_degrade;
                  grain = Option.value grain ~default:Cx.native_defaults.Cx.grain;
                  batch = Option.value batch ~default:Cx.native_defaults.Cx.batch;
                  flight;
                  postmortem_dir;
                }
        in
        let policy =
          match policy with
          | `Fixed -> `Fixed
          | `Auto -> `Auto
          | `Adaptive -> `Adaptive (Cx.adaptive ())
        in
        let o =
          (* With --no-degrade (or an exhausted deadline) the native run
             surfaces its typed error; report it instead of a backtrace. *)
          match
            Cx.run_request @@ Cx.Request.make ~backend:b ~input ~cache ?cache_dir ?obs ~policy ~technique
              ~threads wl
          with
          | o -> o
          | exception Xinv_native.Fault.Injected { kind; domain; site } ->
              Printf.eprintf "fault injected: %s at domain %d, site %d\n"
                (Xinv_native.Fault.kind_name kind)
                domain site;
              Option.iter
                (Printf.eprintf "postmortem written under %s\n")
                postmortem_dir;
              exit 3
          | exception Xinv_native.Watchdog.Stalled { role; waiting_for; waited_ns }
            ->
              Printf.eprintf "stalled: %s waited %.1f ms for %s\n" role
                (waited_ns /. 1e6) waiting_for;
              Option.iter
                (Printf.eprintf "postmortem written under %s\n")
                postmortem_dir;
              exit 3
        in
        Printf.printf "%s under %s, %d %s (%s backend, input %s):\n"
          wl.Wl.Workload.name
          (Cx.technique_name technique)
          threads
          (match backend with `Sim -> "threads" | `Native -> "domains")
          backend_name
          (Wl.Workload.input_name input);
        Printf.printf "  sequential cost  %s\n" (Cx.cost_to_string o.Cx.seq_cost);
        Printf.printf "  cost             %s\n" (Cx.cost_to_string o.Cx.cost);
        Printf.printf "  speedup          %.2fx\n" o.Cx.speedup;
        if o.Cx.policy_source <> "fixed" then
          Printf.printf "  policy source    %s\n" o.Cx.policy_source;
        (match cache with
        | `Off ->
            Printf.printf "  analysis         %.3f ms\n" (o.Cx.analysis_ns /. 1e6)
        | `Ro | `Rw ->
            let status =
              if o.Cx.cache_hits > 0 && o.Cx.cache_misses = 0 then "cache hit"
              else if o.Cx.cache_hits = 0 then "cache miss"
              else "cache partial"
            in
            Printf.printf "  analysis         %.3f ms (%s: %d hit, %d miss)\n"
              (o.Cx.analysis_ns /. 1e6)
              status o.Cx.cache_hits o.Cx.cache_misses);
        Printf.printf "  verified         %b\n" o.Cx.verified;
        List.iter
          (fun (s : Cx.degrade_step) ->
            Printf.printf "  degraded         %s -> %s (%s)\n"
              (Cx.technique_name s.Cx.d_from)
              (Cx.technique_name s.Cx.d_to)
              s.Cx.d_reason)
          o.Cx.degraded;
        (* A resolved policy or a degradation can execute something other
           than the requested technique; name it either way. *)
        if o.Cx.degraded <> [] || o.Cx.technique <> technique then
          Printf.printf "  executed as      %s\n"
            (Cx.technique_name o.Cx.technique);
        List.iter
          (fun p -> Printf.printf "  postmortem       %s\n" p)
          o.Cx.postmortems;
        (match o.Cx.flight with
        | Some fl ->
            Printf.printf "  flight           %d events recorded, %d dropped\n"
              (Xinv_obs.Flight.total_length fl)
              (Xinv_obs.Flight.total_drops fl);
            if verbose then
              Format.printf "  %a@." Xinv_obs.Critpath.pp
                (Xinv_obs.Critpath.analyze
                   ?wall_ns:
                     (Option.map (fun nr -> nr.Xinv_native.Nrun.wall_ns) o.Cx.nrun)
                   ?stalls:
                     (Option.map (fun nr -> nr.Xinv_native.Nrun.stalls) o.Cx.nrun)
                   fl)
        | None -> ());
        (match o.Cx.run with
        | Some r when verbose -> Format.printf "  %a@." Xinv_parallel.Run.pp r
        | _ -> ());
        (match o.Cx.nrun with
        | Some nr when verbose -> Format.printf "  %a@." Xinv_native.Nrun.pp nr
        | _ -> ());
        (match o.Cx.profile with
        | Some prof when verbose ->
            Format.printf "  %a@." Xinv_speccross.Profiler.pp prof
        | _ -> ());
        (match (obs, o.Cx.run) with
        | Some _, Some r when stats ->
            Format.printf "%a@." Xinv_obs.Report.pp (Xinv_parallel.Run.report r)
        | Some obs, _ when stats ->
            List.iter
              (fun (name, v) -> Printf.printf "  %-32s %d\n" name v)
              (Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs))
        | _ -> ());
        if not o.Cx.verified then exit 2
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Detailed stats.") in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Instrument the run and print the observability report.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one workload under one technique and verify the result, on the \
          simulated multicore or on real domains (--backend native), with \
          optional fault injection and deadlines.")
    Term.(
      const run $ wl_arg $ tech_arg $ run_threads_arg $ input_arg $ backend_arg
      $ domains_arg $ verbose $ stats $ inject_arg $ deadline_arg
      $ no_degrade_arg $ grain_arg $ batch_arg $ cache_mode_arg $ cache_dir_arg
      $ flight_arg $ postmortem_dir_arg $ policy_arg)

(* ---- stats ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The native stats document: wall-clock fields and flight-derived
   attribution, where the sim report would show virtual time. *)
let native_stats_json ~(wl : Wl.Workload.t) ~technique ~threads ~(o : Cx.outcome)
    ~(nr : Xinv_native.Nrun.t) ~verdict ~counters =
  let b = Buffer.create 4096 in
  let fnum f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f in
  let obj kvs =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) v) kvs)
    ^ "}"
  in
  Buffer.add_string b "{\n  \"schema\": \"xinv-stats/2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"workload\": \"%s\",\n" (json_escape wl.Wl.Workload.name));
  Buffer.add_string b
    (Printf.sprintf "  \"technique\": \"%s\",\n"
       (json_escape (Cx.technique_name o.Cx.technique)));
  Buffer.add_string b
    (Printf.sprintf "  \"requested\": \"%s\",\n"
       (json_escape (Cx.technique_name technique)));
  Buffer.add_string b "  \"backend\": \"native\",\n";
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" threads);
  Buffer.add_string b (Printf.sprintf "  \"wall_ns\": %s,\n" (fnum nr.Xinv_native.Nrun.wall_ns));
  Buffer.add_string b
    (Printf.sprintf "  \"seq_wall_ns\": %s,\n" (fnum (Cx.cost_value o.Cx.seq_cost)));
  Buffer.add_string b (Printf.sprintf "  \"speedup\": %s,\n" (fnum o.Cx.speedup));
  Buffer.add_string b (Printf.sprintf "  \"verified\": %b,\n" o.Cx.verified);
  Buffer.add_string b
    (Printf.sprintf "  \"degraded\": %d,\n" (List.length o.Cx.degraded));
  Buffer.add_string b
    (Printf.sprintf "  \"tasks\": %d,\n" nr.Xinv_native.Nrun.tasks);
  Buffer.add_string b
    (Printf.sprintf "  \"invocations\": %d,\n" nr.Xinv_native.Nrun.invocations);
  Buffer.add_string b
    (Printf.sprintf "  \"sync_forwarded\": %d,\n" nr.Xinv_native.Nrun.conds);
  Buffer.add_string b
    (Printf.sprintf "  \"signature_checks\": %d,\n" nr.Xinv_native.Nrun.checks);
  Buffer.add_string b
    (Printf.sprintf "  \"misspeculations\": %d,\n" nr.Xinv_native.Nrun.misspecs);
  Buffer.add_string b
    (Printf.sprintf "  \"barrier_episodes\": %d,\n"
       nr.Xinv_native.Nrun.barrier_episodes);
  Buffer.add_string b
    (Printf.sprintf "  \"stall_by_cause\": %s,\n"
       (obj (List.map (fun (k, v) -> (k, fnum v)) nr.Xinv_native.Nrun.stalls)));
  Buffer.add_string b
    (Printf.sprintf "  \"dominant_stall\": %s,\n"
       (match Xinv_native.Nrun.dominant_stall nr with
       | Some c -> Printf.sprintf "\"%s\"" (json_escape c)
       | None -> "null"));
  Buffer.add_string b
    (Printf.sprintf "  \"flight\": %s,\n"
       (match o.Cx.flight with
       | None -> "null"
       | Some fl ->
           obj
             [
               ("events", string_of_int (Xinv_obs.Flight.total_length fl));
               ("drops", string_of_int (Xinv_obs.Flight.total_drops fl));
               ("capacity", string_of_int (Xinv_obs.Flight.capacity fl));
               ("rings", string_of_int (Xinv_obs.Flight.domains fl));
             ]));
  Buffer.add_string b
    (Printf.sprintf "  \"critpath\": %s,\n"
       (match verdict with
       | None -> "null"
       | Some v -> Xinv_obs.Critpath.to_json v));
  Buffer.add_string b
    (Printf.sprintf "  \"counters\": %s\n"
       (obj (List.map (fun (k, v) -> (k, string_of_int v)) counters)));
  Buffer.add_string b "}\n";
  Buffer.contents b

let native_stats_text ~(wl : Wl.Workload.t) ~threads ~(o : Cx.outcome)
    ~(nr : Xinv_native.Nrun.t) ~verdict ~counters =
  Printf.printf "%s under %s, %d domains (native backend):\n"
    wl.Wl.Workload.name
    (Cx.technique_name o.Cx.technique)
    threads;
  Printf.printf "  wall             %.3f ms\n" (nr.Xinv_native.Nrun.wall_ns /. 1e6);
  Printf.printf "  sequential       %.3f ms\n" (Cx.cost_value o.Cx.seq_cost /. 1e6);
  Printf.printf "  speedup          %.2fx\n" o.Cx.speedup;
  Printf.printf "  verified         %b\n" o.Cx.verified;
  Printf.printf "  tasks            %d (%d invocations)\n"
    nr.Xinv_native.Nrun.tasks nr.Xinv_native.Nrun.invocations;
  if nr.Xinv_native.Nrun.conds > 0 then
    Printf.printf "  sync forwarded   %d\n" nr.Xinv_native.Nrun.conds;
  if nr.Xinv_native.Nrun.checks > 0 then
    Printf.printf "  sig checks       %d (%d misspeculations)\n"
      nr.Xinv_native.Nrun.checks nr.Xinv_native.Nrun.misspecs;
  if nr.Xinv_native.Nrun.barrier_episodes > 0 then
    Printf.printf "  barrier episodes %d\n" nr.Xinv_native.Nrun.barrier_episodes;
  let wall = Stdlib.max nr.Xinv_native.Nrun.wall_ns 1. in
  let capacity = wall *. float_of_int threads in
  if nr.Xinv_native.Nrun.stalls <> [] then begin
    Printf.printf "  blocked wall time by cause (%% of %d-domain capacity):\n"
      threads;
    List.iter
      (fun (cause, ns) ->
        Printf.printf "    %-14s %10.3f ms  %5.1f%%\n" cause (ns /. 1e6)
          (100. *. ns /. capacity))
      (List.sort (fun (_, a) (_, b) -> compare b a) nr.Xinv_native.Nrun.stalls)
  end;
  (match o.Cx.flight with
  | Some fl ->
      Printf.printf "  flight           %d events recorded, %d dropped\n"
        (Xinv_obs.Flight.total_length fl)
        (Xinv_obs.Flight.total_drops fl)
  | None -> ());
  (match verdict with
  | Some v -> Format.printf "  %a@." Xinv_obs.Critpath.pp v
  | None -> ());
  if counters <> [] then begin
    print_endline "  counters:";
    List.iter (fun (k, v) -> Printf.printf "    %-32s %d\n" k v) counters
  end

let stats_cmd =
  let run wl technique threads input backend domains json csv =
    (match (backend, domains) with
    | `Sim, Some _ ->
        prerr_endline
          "--domains only applies to the native backend (add --backend native)";
        exit 1
    | _ -> ());
    match Cx.applicable ~backend technique wl with
    | Error reason ->
        Printf.eprintf "%s is inapplicable to %s: %s\n" (Cx.technique_name technique)
          wl.Wl.Workload.name reason;
        exit 1
    | Ok () -> (
        match backend with
        | `Sim ->
            let obs = Xinv_obs.Recorder.create () in
            let o = Cx.run_request @@ Cx.Request.make ~input ~obs ~technique ~threads wl in
            let r =
              match o.Cx.run with
              | Some r -> r
              | None ->
                  Printf.eprintf "sequential execution has no stats\n";
                  exit 1
            in
            let report = Xinv_parallel.Run.report r in
            if json then print_string (Xinv_obs.Report.to_json report)
            else if csv then print_string (Xinv_obs.Report.to_csv report)
            else Format.printf "%a@." Xinv_obs.Report.pp report
        | `Native ->
            let threads = Option.value domains ~default:4 in
            let obs = Xinv_obs.Recorder.create () in
            let o =
              Cx.run_request @@ Cx.Request.make
                ~backend:(`Native { Cx.native_defaults with Cx.flight = true })
                ~input ~obs ~technique ~threads wl
            in
            let nr =
              match o.Cx.nrun with
              | Some nr -> nr
              | None -> assert false (* native backend always fills nrun *)
            in
            let verdict =
              Option.map
                (Xinv_obs.Critpath.analyze ~wall_ns:nr.Xinv_native.Nrun.wall_ns
                   ~stalls:nr.Xinv_native.Nrun.stalls)
                o.Cx.flight
            in
            let counters =
              Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs)
            in
            if json then
              print_string
                (native_stats_json ~wl ~technique ~threads ~o ~nr ~verdict
                   ~counters)
            else if csv then begin
              Printf.printf "wall_ns,%.0f\n" nr.Xinv_native.Nrun.wall_ns;
              Printf.printf "seq_wall_ns,%.0f\n" (Cx.cost_value o.Cx.seq_cost);
              Printf.printf "speedup,%.3f\n" o.Cx.speedup;
              Printf.printf "verified,%b\n" o.Cx.verified;
              List.iter
                (fun (c, ns) -> Printf.printf "stall.%s,%.0f\n" c ns)
                nr.Xinv_native.Nrun.stalls;
              (match o.Cx.flight with
              | Some fl ->
                  Printf.printf "flight.events,%d\n"
                    (Xinv_obs.Flight.total_length fl);
                  Printf.printf "flight.drops,%d\n"
                    (Xinv_obs.Flight.total_drops fl)
              | None -> ());
              List.iter (fun (k, v) -> Printf.printf "%s,%d\n" k v) counters
            end
            else native_stats_text ~wl ~threads ~o ~nr ~verdict ~counters)
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the JSON document: $(b,xinv-stats/1) for the sim backend, \
             $(b,xinv-stats/2) (wall-clock fields, flight and critical-path \
             attribution) for the native backend.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit key,value CSV.") in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run one workload instrumented and print the stall/utilization report \
          (text, --json or --csv), on either backend (--backend native adds \
          flight-recorder and critical-path attribution).")
    Term.(
      const run $ wl_arg $ tech_arg $ threads_arg $ input_arg $ backend_arg
      $ domains_arg $ json $ csv)

(* ---- top ---- *)

(* One live frame against a flight recorder that is still being written:
   per-domain event counts, utilization, dominant stall, last sampled queue
   depth and commit rate.  Reads are racy by design — Flight.read skips
   torn slots. *)
let render_frame ~(wl : Wl.Workload.t) ~technique ~frame fl =
  let module Fl = Xinv_obs.Flight in
  let elapsed = float_of_int (Fl.elapsed_ns fl) in
  Printf.printf
    "xinv top — %s under %s  |  frame %d  |  %.2f s  |  %d events (%d dropped)\n"
    wl.Wl.Workload.name
    (Cx.technique_name technique)
    frame (elapsed /. 1e9) (Fl.total_length fl) (Fl.total_drops fl);
  Printf.printf "  %-6s %10s %7s  %-14s %6s %10s\n" "domain" "events" "util%"
    "dominant stall" "queue" "commits/s";
  for d = 0 to Fl.domains fl - 1 do
    let entries = Fl.read fl ~domain:d in
    let stall = Array.make Fl.ncauses 0 in
    let queue = ref (-1) in
    let commits = ref 0 in
    let lo = ref max_int and hi = ref 0 in
    List.iter
      (fun (e : Fl.entry) ->
        if e.Fl.f_at < !lo then lo := e.Fl.f_at;
        if e.Fl.f_at > !hi then hi := e.Fl.f_at;
        match e.Fl.f_kind with
        | Fl.Stall_end ->
            if e.Fl.f_a >= 0 && e.Fl.f_a < Fl.ncauses then
              stall.(e.Fl.f_a) <- stall.(e.Fl.f_a) + e.Fl.f_b
        | Fl.Queue_sample -> queue := e.Fl.f_b
        | Fl.Epoch_commit -> incr commits
        | _ -> ())
      entries;
    (* Utilization over the ring's own retained window, so a drop-oldest
       ring still reports the recent past rather than the whole run. *)
    let window =
      if !hi > !lo then float_of_int (!hi - !lo) else Stdlib.max elapsed 1.
    in
    let total_stall = float_of_int (Array.fold_left ( + ) 0 stall) in
    let util = Float.max 0. (Float.min 100. (100. *. (1. -. (total_stall /. window)))) in
    let dominant = ref "-" and best = ref 0 in
    Array.iteri
      (fun i v ->
        if v > !best then begin
          best := v;
          dominant := Fl.cause_name i
        end)
      stall;
    Printf.printf "  %-6d %10d %6.1f%%  %-14s %6s %10.1f\n" d
      (Fl.recorded fl ~domain:d)
      util !dominant
      (if !queue < 0 then "-" else string_of_int !queue)
      (float_of_int !commits /. (window /. 1e9))
  done

let top_cmd =
  let run wl technique domains interval_ms runs frames openmetrics =
    (match Cx.applicable ~backend:`Native technique wl with
    | Error reason ->
        Printf.eprintf "%s is inapplicable to %s on the native backend: %s\n"
          (Cx.technique_name technique)
          wl.Wl.Workload.name reason;
        exit 1
    | Ok () -> ());
    if domains < 1 || interval_ms < 1 || runs < 1 || frames < 0 then begin
      prerr_endline "--domains, --interval-ms and --runs must be >= 1";
      exit 1
    end;
    let cur = Atomic.make None in
    let finished = Atomic.make false in
    let failure = Atomic.make None in
    let obs = Xinv_obs.Recorder.create () in
    let opts =
      {
        Cx.native_defaults with
        Cx.flight = true;
        on_flight = Some (fun f -> Atomic.set cur (Some f));
      }
    in
    let runner =
      Domain.spawn (fun () ->
        (try
           for _ = 1 to runs do
             ignore
               (Cx.run_request @@ Cx.Request.make ~backend:(`Native opts) ~obs ~technique ~threads:domains
                  wl)
           done
         with e -> Atomic.set failure (Some (Printexc.to_string e)));
        Atomic.set finished true)
    in
    let tty = Unix.isatty Unix.stdout in
    let interval = float_of_int interval_ms /. 1e3 in
    let frame_no = ref 0 in
    let show fl =
      incr frame_no;
      if tty then print_string "\027[H\027[2J";
      if openmetrics then
        print_string
          (Xinv_obs.Snapshot.to_openmetrics
             (Xinv_obs.Snapshot.take (Xinv_obs.Recorder.metrics obs)))
      else render_frame ~wl ~technique ~frame:!frame_no fl;
      flush stdout
    in
    while
      (not (Atomic.get finished)) && (frames = 0 || !frame_no < frames)
    do
      Unix.sleepf interval;
      match Atomic.get cur with None -> () | Some fl -> show fl
    done;
    Domain.join runner;
    (* Always end on a complete frame: short runs may finish between
       refresh ticks, and the last recording is quiesced and consistent. *)
    (match Atomic.get cur with None -> () | Some fl -> show fl);
    match Atomic.get failure with
    | Some msg ->
        Printf.eprintf "runner failed: %s\n" msg;
        exit 3
    | None -> ()
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let domains =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Real domains for the observed runs.")
  in
  let interval =
    Arg.(
      value & opt int 200
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Refresh interval (default 200).")
  in
  let runs =
    Arg.(
      value & opt int 10
      & info [ "runs" ] ~docv:"R"
          ~doc:"Back-to-back runs to observe before exiting (default 10).")
  in
  let frames =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"K"
          ~doc:
            "Stop after $(i,K) refresh frames (0, the default, refreshes \
             until the runs finish).  A final quiesced frame is always \
             printed.")
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:
            "Print an OpenMetrics exposition of the run's metric registry \
             each frame instead of the per-domain table.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Observe a live native run: periodic per-domain utilization, \
          dominant stall, queue depth and commit rate from the flight \
          recorder (or --openmetrics text exposition).")
    Term.(
      const run $ wl_arg $ tech_arg $ domains $ interval $ runs $ frames
      $ openmetrics)

(* ---- experiment ---- *)

let experiment_cmd =
  let run ids =
    List.iter
      (fun id ->
        match Exp.find id with
        | e ->
            print_endline (e.Exp.render ());
            print_newline ()
        | exception Invalid_argument msg ->
            prerr_endline msg;
            exit 1)
      ids
  in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one or more paper figures/tables (e.g. fig5.2 tab5.1).")
    Term.(const run $ ids)

(* ---- all ---- *)

let all_cmd =
  let run () =
    List.iter
      (fun (e : Exp.t) ->
        Printf.printf "==== %s: %s ====\n%!" e.Exp.id e.Exp.title;
        print_endline (e.Exp.render ());
        print_newline ())
      Exp.all
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every figure and table of the evaluation.")
    Term.(const run $ const ())

(* ---- profile ---- *)

let profile_cmd =
  let run (wl : Wl.Workload.t) input =
    let env = wl.Wl.Workload.fresh_env input in
    let prof = Xinv_speccross.Profiler.profile (wl.Wl.Workload.program input) env in
    Format.printf "%s (%s input):@.%a@." wl.Wl.Workload.name
      (Wl.Workload.input_name input)
      Xinv_speccross.Profiler.pp prof
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Run the dependence-distance profiler on a workload.")
    Term.(const run $ wl_arg $ input_arg)

(* ---- plan ---- *)

let plan_cmd =
  let run (wl : Wl.Workload.t) dot =
    let program = wl.Wl.Workload.program Wl.Workload.Ref in
    let pdg = Xinv_ir.Pdg.build program in
    if dot then begin
      let part = Xinv_ir.Partition.compute program pdg in
      print_endline (Xinv_ir.Dot.pdg ~partition:part pdg);
      prerr_endline "(DAG-SCC on stderr)";
      prerr_endline (Xinv_ir.Dot.dag_scc pdg)
    end
    else begin
      Printf.printf "inner-loop plan (Table 5.1):
";
      List.iter
        (fun (label, t) ->
          Printf.printf "  %-24s %s
" label (Xinv_parallel.Intra.name t))
        wl.Wl.Workload.plan;
      print_newline ();
      let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
      match Xinv_ir.Mtcg.generate program env with
      | Xinv_ir.Mtcg.Inapplicable reason ->
          Printf.printf "DOMORE transformation: inapplicable (%s)
" reason
      | Xinv_ir.Mtcg.Plan plan ->
          Printf.printf "DOMORE transformation (scheduler/worker estimate %.1f%%):

"
            (100. *. plan.Xinv_ir.Mtcg.guard_ratio);
          print_endline (Xinv_ir.Mtcg.render plan)
    end
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit the PDG as Graphviz DOT.") in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show the parallelization plan and generated DOMORE code for a workload.")
    Term.(const run $ wl_arg $ dot)

(* ---- trace ---- *)

let trace_cmd =
  let run (wl : Wl.Workload.t) technique threads width out =
    let program = wl.Wl.Workload.program Wl.Workload.Train in
    let env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
    let obs =
      match out with Some _ -> Some (Xinv_obs.Recorder.create ()) | None -> None
    in
    let r =
      match technique with
      | Cx.Barrier ->
          Xinv_parallel.Barrier_exec.run ~trace:true ?obs ~threads
            ~plan:(Wl.Workload.plan_fn wl) program env
      | Cx.Speccross ->
          let cfg =
            {
              (Xinv_speccross.Runtime.default_config ~workers:(threads - 1)) with
              Xinv_speccross.Runtime.sig_kind =
                Xinv_runtime.Signature.Segmented
                  (Xinv_ir.Memory.bounds env.Xinv_ir.Env.mem);
            }
          in
          Xinv_speccross.Runtime.run ~config:cfg ?obs ~trace:true program env
      | Cx.Domore -> (
          match Xinv_ir.Mtcg.generate program env with
          | Xinv_ir.Mtcg.Inapplicable reason ->
              Printf.eprintf "DOMORE inapplicable to %s: %s\n" wl.Wl.Workload.name
                reason;
              exit 1
          | Xinv_ir.Mtcg.Plan mplan ->
              let config =
                Xinv_domore.Domore.default_config ~workers:(Stdlib.max 1 (threads - 1))
              in
              Xinv_domore.Domore.run ~config ?obs ~trace:true ~plan:mplan program env)
      | _ ->
          prerr_endline "trace supports -x barrier, -x domore and -x speccross";
          exit 1
    in
    match out with
    | Some path ->
        let json =
          Xinv_obs.Perfetto.to_json
            ~process_name:
              (Printf.sprintf "crossinv %s %s" wl.Wl.Workload.name
                 (Cx.technique_name technique))
            ~engine:r.Xinv_parallel.Run.engine ?recorder:obs ()
        in
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Printf.printf "wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n"
          path
    | None ->
        print_endline
          (Xinv_sim.Trace.render ~width
             (Xinv_sim.Engine.segments r.Xinv_parallel.Run.engine))
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let tech_arg =
    Arg.(
      value
      & opt technique_conv Cx.Barrier
      & info [ "x"; "technique"; "k" ] ~docv:"TECH" ~doc:"barrier or speccross.")
  in
  let width =
    Arg.(value & opt int 40 & info [ "rows" ] ~docv:"N" ~doc:"Timeline rows.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write a Chrome/Perfetto trace_event JSON file instead of the timeline.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Render the execution plan of a (train-scale) run as a timeline, or export \
          it as a Perfetto trace with --out.")
    Term.(const run $ wl_arg $ tech_arg $ threads_arg $ width $ out)

(* ---- tune ---- *)

let tune_cmd =
  let module Tune = Xinv_tune.Tune in
  let module Search = Xinv_tune.Search in
  let run wl budget strategy seed domains_max trial_deadline_ms input cache
      cache_dir json stats =
    if budget < 1 then usage_error "--budget must be >= 1 (got %d)" budget;
    (match domains_max with
    | Some d when d < 1 -> usage_error "--domains-max must be >= 1 (got %d)" d
    | _ -> ());
    (match trial_deadline_ms with
    | Some ms when ms <= 0. ->
        usage_error "--trial-deadline-ms must be > 0 (got %g)" ms
    | _ -> ());
    let obs = if stats then Some (Xinv_obs.Recorder.create ()) else None in
    let r =
      Tune.tune ?obs ~cache ?cache_dir ~input ~budget ~strategy ~seed
        ?max_domains:domains_max ?trial_deadline_ms wl
    in
    if json then print_string (Tune.report_json r)
    else begin
      let t = r.Tune.tuned in
      Printf.printf "tuned %s (%s input, %s search, seed %d, budget %d):\n"
        r.Tune.workload
        (Wl.Workload.input_name r.Tune.input)
        (Search.strategy_name r.Tune.strategy)
        r.Tune.seed r.Tune.budget;
      Printf.printf "  source           %s%s\n"
        (Tune.source_name r.Tune.source)
        (match r.Tune.source with
        | `Cached -> " (0 search trials this session)"
        | `Searched ->
            Printf.sprintf " (%d trials)" (List.length r.Tune.trials));
      Printf.printf "  best policy      %s\n"
        (Xinv_cache.Policy.key t.Xinv_cache.Policy.policy);
      Printf.printf "  wall             %.3f ms\n"
        (t.Xinv_cache.Policy.wall_ns /. 1e6);
      Printf.printf "  sequential       %.3f ms\n"
        (t.Xinv_cache.Policy.seq_wall_ns /. 1e6);
      if t.Xinv_cache.Policy.wall_ns > 0. then
        Printf.printf "  speedup          %.2fx\n"
          (t.Xinv_cache.Policy.seq_wall_ns /. t.Xinv_cache.Policy.wall_ns);
      List.iter
        (fun (tr : Search.trial) ->
          Printf.printf "  trial %-3d %-52s %s%s\n" tr.Search.t_index
            (Xinv_cache.Policy.key tr.Search.t_policy)
            (if Float.is_finite tr.Search.t_wall_ns then
               Printf.sprintf "%.3f ms" (tr.Search.t_wall_ns /. 1e6)
             else "failed")
            (if tr.Search.t_pruned then " (pruned)"
             else if not tr.Search.t_ok then " (not ok)"
             else ""))
        r.Tune.trials;
      match obs with
      | Some obs when stats ->
          List.iter
            (fun (name, v) -> Printf.printf "  %-32s %d\n" name v)
            (Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics obs))
      | _ -> ()
    end
  in
  let wl_arg =
    Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD")
  in
  let budget =
    Arg.(
      value & opt int 32
      & info [ "budget" ] ~docv:"N"
          ~doc:"Maximum measured search trials (default 32).")
  in
  let strategy =
    Arg.(
      value
      & opt (enum [ ("hill", Search.Hill); ("ga", Search.Ga) ]) Search.Hill
      & info [ "strategy" ] ~docv:"STRAT"
          ~doc:
            "Search strategy: $(b,hill) (seeded first-improvement \
             hill-climbing with random restarts, the default) or $(b,ga) \
             (generational crossover/mutation).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Deterministic search seed (default 42).")
  in
  let domains_max =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains-max" ] ~docv:"N"
          ~doc:
            "Cap the domain-count axis (default: the machine's recommended \
             domain count).")
  in
  let trial_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "trial-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Hard per-trial watchdog deadline in milliseconds (default 2000; \
             trials are also cut off at 1.5x the incumbent's wall time).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the $(b,xinv-tune/1) JSON report.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Instrument the search and print the tune.* counters.")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search for the fastest execution policy (backend, technique, \
          domains, grain, batch, signature kind, speculative distance, epoch \
          size) of one workload on this machine, and persist the winner in \
          the analysis cache with --cache rw; a later tune or run --policy \
          auto reuses it with zero search.")
    Term.(
      const run $ wl_arg $ budget $ strategy $ seed $ domains_max
      $ trial_deadline $ input_arg $ cache_mode_arg $ cache_dir_arg $ json
      $ stats)

(* ---- cache ---- *)

let cache_cmd =
  let module Store = Xinv_cache.Store in
  let resolve dir = Option.value dir ~default:(Store.default_dir ()) in
  let stats_c =
    let run dir =
      let dir = resolve dir in
      let s = Store.stats ~dir in
      Printf.printf "cache directory    %s\n" dir;
      Printf.printf "entries            %d\n" s.Store.s_entries;
      Printf.printf "bytes              %d\n" s.Store.s_bytes;
      Printf.printf "quarantined        %d\n" s.Store.s_quarantined;
      Printf.printf "stale tmp files    %d\n" s.Store.s_tmp
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Entry count, total size and quarantine count.")
      Term.(const run $ cache_dir_arg)
  in
  let human_bytes n =
    let f = float_of_int n in
    if f >= 1048576. then Printf.sprintf "%.1f MiB" (f /. 1048576.)
    else if f >= 1024. then Printf.sprintf "%.1f KiB" (f /. 1024.)
    else Printf.sprintf "%d B" n
  in
  let ls_c =
    let run dir =
      let dir = resolve dir in
      let entries =
        List.sort
          (fun (a : Store.entry_info) (b : Store.entry_info) ->
            Float.compare a.Store.e_mtime b.Store.e_mtime)
          (Store.ls ~dir)
      in
      List.iter
        (fun (e : Store.entry_info) ->
          (* Components stored per entry: D = DOMORE plan (or negative
             verdict), P = SPECCROSS profile, T = tuned policy. *)
          let components =
            match open_in_bin (Filename.concat dir (e.Store.e_fp ^ ".xc")) with
            | exception Sys_error _ -> "?"
            | ic -> (
                let raw =
                  try really_input_string ic (in_channel_length ic)
                  with _ -> ""
                in
                close_in_noerr ic;
                match Xinv_cache.Artifact.decode raw with
                | Error reason -> "invalid:" ^ reason
                | Ok a ->
                    String.concat ""
                      [
                        (match a.Xinv_cache.Artifact.domore with
                        | Some (Ok _) -> "D"
                        | Some (Error _) -> "d"
                        | None -> "-");
                        (match a.Xinv_cache.Artifact.profile with
                        | Some _ -> "P"
                        | None -> "-");
                        (match a.Xinv_cache.Artifact.policy with
                        | Some _ -> "T"
                        | None -> "-");
                      ])
          in
          let tm = Unix.localtime e.Store.e_mtime in
          Printf.printf "%s  %10s  %04d-%02d-%02d %02d:%02d:%02d  %s\n"
            e.Store.e_fp
            (human_bytes e.Store.e_bytes)
            (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
            tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec components)
        entries;
      let total = List.fold_left (fun n e -> n + e.Store.e_bytes) 0 entries in
      Printf.printf "total: %d %s, %s\n" (List.length entries)
        (if List.length entries = 1 then "entry" else "entries")
        (human_bytes total)
    in
    Cmd.v
      (Cmd.info "ls"
         ~doc:
           "List entries sorted by modification time (oldest first) with \
            human-readable size, timestamp and stored components — D = \
            DOMORE plan, d = cached inapplicability, P = SPECCROSS profile, \
            T = tuned policy — plus a totals footer.")
      Term.(const run $ cache_dir_arg)
  in
  let clear_c =
    let run dir =
      let dir = resolve dir in
      let n = Store.clear ~dir in
      Printf.printf "removed %d entries from %s\n" n dir
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Remove all entries, quarantined files and stale tmp files.")
      Term.(const run $ cache_dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the incremental analysis cache (see $(b,run \
          --cache)).")
    [ stats_c; ls_c; clear_c ]

(* ---- serve mode: daemon + thin clients ---- *)

module Serve = Xinv_serve.Server
module SReq = Xinv_serve.Request
module Proto = Xinv_serve.Protocol
module SClient = Xinv_serve.Client
module SWire = Xinv_serve.Wire

let default_socket () =
  match Sys.getenv_opt "XDG_RUNTIME_DIR" with
  | Some d when d <> "" -> Filename.concat d "xinv-serve.sock"
  | _ ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "xinv-serve-%d.sock" (Unix.getuid ()))

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket the daemon listens on (default \
           $(b,\\$XDG_RUNTIME_DIR/xinv-serve.sock), else \
           $(b,<tmpdir>/xinv-serve-<uid>.sock)).")

let resolve_socket s = Option.value s ~default:(default_socket ())

(* One round trip; connection refusals and protocol corruption are client
   errors (exit 1), distinct from the daemon's typed rejections. *)
let client_call socket msg =
  let socket = resolve_socket socket in
  match SClient.call ~socket msg with
  | reply -> reply
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cannot reach daemon at %s: %s\n" socket
        (Unix.error_message e);
      exit 1
  | exception SWire.Error e ->
      Printf.eprintf "protocol error talking to %s: %s\n" socket
        (SWire.error_to_string e);
      exit 1

let serve_cmd =
  let run socket domains queue_capacity cache cache_dir default_deadline_ms =
    if domains < 1 then usage_error "--domains must be >= 1 (got %d)" domains;
    if queue_capacity < 1 then
      usage_error "--queue-capacity must be >= 1 (got %d)" queue_capacity;
    (match default_deadline_ms with
    | Some ms when ms <= 0. ->
        usage_error "--default-deadline-ms must be > 0 (got %g)" ms
    | _ -> ());
    let socket = resolve_socket socket in
    let server =
      Serve.create
        { Serve.domains; queue_capacity; cache; cache_dir; default_deadline_ms }
    in
    Printf.printf
      "xinv serve: listening on %s (%d pool domains, queue %d, cache %s)\n%!"
      socket domains queue_capacity
      (match cache with `Off -> "off" | `Ro -> "ro" | `Rw -> "rw");
    Serve.serve server ~socket;
    Printf.printf "xinv serve: shut down after %d requests\n"
      (Serve.served server)
  in
  let domains =
    Arg.(
      value
      & opt int Serve.default_config.Serve.domains
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains in the shared pool, created once at startup.")
  in
  let capacity =
    Arg.(
      value
      & opt int Serve.default_config.Serve.queue_capacity
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Admission-control bound: requests beyond $(i,N) queued are \
             rejected with a typed $(b,queue full) reply, never blocked.")
  in
  let default_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:
            "End-to-end deadline applied to requests that carry none of \
             their own (queue wait included).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident parallelization daemon: one shared domain pool, \
          one analysis-cache configuration and one metrics registry serving \
          run/tune/stats requests from $(b,xinv submit), $(b,xinv ping), \
          $(b,xinv serve-stats) and $(b,xinv shutdown) over a Unix-domain \
          socket ($(b,xinv-serve/1) protocol).")
    Term.(
      const run $ socket_arg $ domains $ capacity $ cache_mode_arg
      $ cache_dir_arg $ default_deadline)

let submit_cmd =
  let sig_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("range", `Range);
                  ("segmented", `Segmented);
                  ("bloom", `Bloom);
                  ("exact", `Exact);
                ]))
          None
      & info [ "sig" ] ~docv:"KIND"
          ~doc:"SPECCROSS signature kind: range, segmented, bloom or exact.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "spec-distance" ] ~docv:"N"
          ~doc:"SPECCROSS speculative distance (epochs in flight).")
  in
  let priority_arg =
    Arg.(
      value
      & opt (enum [ ("normal", `Normal); ("high", `High) ]) `Normal
      & info [ "priority" ] ~docv:"LEVEL"
          ~doc:
            "Scheduling level: $(b,high) requests run before every queued \
             $(b,normal) one.")
  in
  let tenant_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:
            "Fairness cohort: the daemon round-robins across tenants within \
             a priority level and keeps per-tenant counters.")
  in
  let no_verify_arg =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:"Skip comparing the parallel run against the oracle.")
  in
  let run socket wl technique threads input backend policy grain batch sig_kind
      spec_distance cache inject deadline_ms priority tenant no_verify =
    (match grain with
    | Some g when g < 1 -> usage_error "--grain must be >= 1 (got %d)" g
    | _ -> ());
    (match batch with
    | Some b when b < 1 -> usage_error "--batch must be >= 1 (got %d)" b
    | _ -> ());
    (match deadline_ms with
    | Some ms when ms <= 0. ->
        usage_error "--deadline-ms must be > 0 (got %g)" ms
    | _ -> ());
    let threads =
      match threads with
      | Some n -> n
      | None -> ( match backend with `Sim -> 24 | `Native -> 4)
    in
    if threads < 1 then
      usage_error "--threads/--domains must be >= 1 (got %d)" threads;
    let req =
      SReq.make ~input ~backend
        ~technique:(Cx.technique_name technique)
        ~threads ~policy
        ?grain ?batch ?sig_kind ?spec_distance ~verify:(not no_verify) ~cache
        ?fault:(Option.map Xinv_native.Fault.spec_to_string inject)
        ?deadline_ms ~priority ~tenant
        (`Name wl.Wl.Workload.name)
    in
    match client_call socket (Proto.Run req) with
    | Proto.Outcome s as reply ->
        Format.printf "%a@." Proto.pp_server reply;
        if not s.Proto.o_verified then exit 2
    | Proto.Rejected _ as reply ->
        Format.eprintf "%a@." Proto.pp_server reply;
        exit 1
    | Proto.Failed _ as reply ->
        Format.eprintf "%a@." Proto.pp_server reply;
        exit 1
    | reply ->
        Format.eprintf "unexpected reply: %a@." Proto.pp_server reply;
        exit 1
  in
  let wl_arg =
    Arg.(
      required
      & pos 0 (some workload_conv) None
      & info [] ~docv:"WORKLOAD" ~doc:"Registry workload to run.")
  in
  let grain_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "grain" ] ~docv:"N" ~doc:"Native chunk size (default 1).")
  in
  let batch_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:"Native write-combining factor (default 32).")
  in
  let submit_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "End-to-end budget from submission, queue wait included; an \
             expired queued request is rejected, a running one is cut off \
             by the daemon's watchdog.")
  in
  let submit_policy =
    Arg.(
      value
      & opt (enum [ ("fixed", `Fixed); ("auto", `Auto) ]) `Fixed
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "$(b,fixed) (the flags on this command line) or $(b,auto) (a \
             tuned policy from the daemon's analysis cache, falling back to \
             the flags on a miss).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit one run to a resident $(b,xinv serve) daemon and wait for \
          the outcome.  Exit status: 0 verified, 2 completed unverified, 1 \
          rejected/failed/unreachable.")
    Term.(
      const run $ socket_arg $ wl_arg $ tech_arg $ run_threads_arg $ input_arg
      $ backend_arg $ submit_policy $ grain_opt $ batch_opt $ sig_arg
      $ spec_arg $ cache_mode_arg $ inject_arg $ submit_deadline
      $ priority_arg $ tenant_arg $ no_verify_arg)

let ping_cmd =
  let run socket =
    let reply = client_call socket Proto.Ping in
    Format.printf "%a@." Proto.pp_server reply
  in
  Cmd.v
    (Cmd.info "ping"
       ~doc:
         "Liveness probe: uptime, pool size, pool (re)creations, queue \
          depth and served count of a running daemon.")
    Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    let reply = client_call socket Proto.Shutdown in
    Format.printf "%a@." Proto.pp_server reply
  in
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "Ask the daemon to stop: queued requests are rejected as shutting \
          down, the pool is torn down once, the socket file removed.")
    Term.(const run $ socket_arg)

let serve_stats_cmd =
  let run socket openmetrics =
    match client_call socket Proto.Stats with
    | Proto.Stats_reply snap ->
        if openmetrics then
          print_string (Xinv_obs.Snapshot.to_openmetrics snap)
        else Format.printf "%a@." Xinv_obs.Snapshot.pp snap
    | reply ->
        Format.eprintf "unexpected reply: %a@." Proto.pp_server reply;
        exit 1
  in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Emit the OpenMetrics text exposition instead of the table.")
  in
  Cmd.v
    (Cmd.info "serve-stats"
       ~doc:
         "Fetch the daemon's metrics snapshot: serve.* counters, per-tenant \
          counters, queue-wait histogram and queue-depth gauge.")
    Term.(const run $ socket_arg $ openmetrics)

let main =
  Cmd.group
    (Cmd.info "crossinv" ~version:"1.0.0"
       ~doc:
         "Cross-invocation parallelism using runtime information: DOMORE and \
          SPECCROSS on a simulated multicore.")
    [ list_cmd; run_cmd; stats_cmd; top_cmd; experiment_cmd; all_cmd; profile_cmd;
      plan_cmd; trace_cmd; tune_cmd; cache_cmd; serve_cmd; submit_cmd; ping_cmd;
      shutdown_cmd; serve_stats_cmd ]

let () = exit (Cmd.eval main)
