(* Serve-mode benchmark: request throughput and queue-wait latency of the
   resident daemon, in-process and over its Unix-domain socket, with a
   cold versus warm analysis cache.

   Usage:
     bench_serve --smoke        tiny fixed-size run attached to `dune
                                runtest`: exercises submit/await, the
                                socket path and the stats surface, and
                                asserts one shared pool + all verified
     bench_serve [--json OUT]   full matrix {inproc,socket} x {cold,warm};
                                --json writes schema xinv-serve-bench/1
                                (BENCH_PR10.json by convention)

   Rows report requests/s (submit-to-last-outcome wall time) and the
   daemon's own serve.queue_wait_ms histogram p50/p99, plus the summed
   per-run analysis-cache hits/misses — the warm rows are the cross-
   invocation claim in one number: same daemon, same pool, reused
   analyses. *)

module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads
module Proto = Xinv_serve.Protocol
module SReq = Xinv_serve.Request
module Server = Xinv_serve.Server
module SClient = Xinv_serve.Client
module Metrics = Xinv_obs.Metrics

let tmpdir prefix =
  let d = Filename.temp_file prefix ".d" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with _ -> ()
  end

(* The request mix: native DOMORE runs so the shared pool and the
   analysis cache (DOMORE plans) are both on the hot path; four workloads
   so the cache holds more than one fingerprint; two tenants and a
   priority sprinkle so the fairness queue does real work. *)
let mix n =
  let wls = [| "SYMM"; "CG"; "LLUBENCH"; "ECLAT" |] in
  List.init n (fun i ->
      SReq.make ~backend:`Native ~technique:"domore" ~threads:2
        ~input:Wl.Workload.Train ~cache:`Rw
        ~priority:(if i mod 7 = 0 then `High else `Normal)
        ~tenant:(if i mod 2 = 0 then "alice" else "bob")
        (`Name wls.(i mod Array.length wls)))

type row = {
  r_name : string;
  r_requests : int;
  r_clients : int;
  r_elapsed_ns : float;
  r_req_per_s : float;
  r_wait_p50_ms : float;
  r_wait_p99_ms : float;
  r_cache_hits : int;
  r_cache_misses : int;
  r_pool_creates : int;
  r_failures : int;
}

let finish_row ~name ~clients ~elapsed_ns ~outcomes ~failures srv =
  let h = Metrics.histogram (Server.metrics srv) "serve.queue_wait_ms" in
  let hits, misses =
    List.fold_left
      (fun (h, m) (s : Proto.summary) ->
        (h + s.Proto.o_cache_hits, m + s.Proto.o_cache_misses))
      (0, 0) outcomes
  in
  {
    r_name = name;
    r_requests = List.length outcomes + failures;
    r_clients = clients;
    r_elapsed_ns = elapsed_ns;
    r_req_per_s =
      float_of_int (List.length outcomes + failures) /. (elapsed_ns /. 1e9);
    r_wait_p50_ms = Metrics.quantile h 0.5;
    r_wait_p99_ms = Metrics.quantile h 0.99;
    r_cache_hits = hits;
    r_cache_misses = misses;
    r_pool_creates = Server.pool_creates srv;
    r_failures = failures;
  }

let server ~cache_dir () =
  let srv =
    Server.create
      { Server.default_config with Server.domains = 2; cache = `Rw;
        cache_dir = Some cache_dir }
  in
  srv

(* ---- in-process row: batch-submit then await ---- *)

let inproc_row ~name ~cache_dir n =
  let srv = server ~cache_dir () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      Server.start srv;
      let t0 = Unix.gettimeofday () in
      let jobs = List.map (Server.submit srv) (mix n) in
      let outcomes, failures =
        List.fold_left
          (fun (os, f) j ->
            match Server.await j with
            | Proto.Outcome s when s.Proto.o_verified -> (s :: os, f)
            | _ -> (os, f + 1))
          ([], 0) jobs
      in
      let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
      finish_row ~name ~clients:1 ~elapsed_ns ~outcomes ~failures srv)

(* ---- socket row: [clients] threads over persistent connections ---- *)

let socket_row ~name ~cache_dir ~clients n =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "xinv-bench-%d.sock" (Unix.getpid ()))
  in
  let srv = server ~cache_dir () in
  let daemon = Thread.create (fun () -> Server.serve srv ~socket) () in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec wait_up () =
    match SClient.with_connection socket (fun _ -> ()) with
    | () -> ()
    | exception _ when Unix.gettimeofday () < deadline ->
        Thread.delay 0.01;
        wait_up ()
    | exception e -> raise e
  in
  wait_up ();
  let per_client = n / clients in
  let mu = Mutex.create () in
  let outcomes = ref [] and failures = ref 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            SClient.with_connection socket (fun fd ->
                List.iter
                  (fun req ->
                    match SClient.request fd (Proto.Run req) with
                    | Proto.Outcome s when s.Proto.o_verified ->
                        Mutex.lock mu;
                        outcomes := s :: !outcomes;
                        Mutex.unlock mu
                    | _ ->
                        Mutex.lock mu;
                        incr failures;
                        Mutex.unlock mu)
                  (mix per_client);
                ignore c))
          ())
  in
  List.iter Thread.join threads;
  let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let row =
    finish_row ~name ~clients ~elapsed_ns ~outcomes:!outcomes
      ~failures:!failures srv
  in
  (match SClient.call ~socket Proto.Shutdown with
  | Proto.Shutdown_ack _ -> ()
  | _ -> prerr_endline "bench serve: unexpected shutdown reply");
  Thread.join daemon;
  row

(* ---- output ---- *)

let print_row r =
  Printf.printf
    "%-14s %5d req %d client%s  %8.1f req/s  queue-wait p50 %6.3f ms  p99 %6.3f ms  cache %d hit / %d miss  pools %d%s\n"
    r.r_name r.r_requests r.r_clients
    (if r.r_clients = 1 then " " else "s")
    r.r_req_per_s r.r_wait_p50_ms r.r_wait_p99_ms r.r_cache_hits
    r.r_cache_misses r.r_pool_creates
    (if r.r_failures > 0 then Printf.sprintf "  FAILURES %d" r.r_failures
     else "")

let emit_json ~out rows =
  let oc = open_out out in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"xinv-serve-bench/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string b "  \"protocol\": \"xinv-serve/1\",\n";
  Buffer.add_string b "  \"input\": \"train\",\n";
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"requests\": %d, \"clients\": %d, \
            \"elapsed_ns\": %.0f, \"req_per_s\": %.2f, \
            \"queue_wait_p50_ms\": %.4f, \"queue_wait_p99_ms\": %.4f, \
            \"cache_hits\": %d, \"cache_misses\": %d, \"pool_creates\": %d, \
            \"failures\": %d}%s\n"
           r.r_name r.r_requests r.r_clients r.r_elapsed_ns r.r_req_per_s
           r.r_wait_p50_ms r.r_wait_p99_ms r.r_cache_hits r.r_cache_misses
           r.r_pool_creates r.r_failures
           (if i = n - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "wrote %s\n" out

let assert_sane rows =
  let bad = ref false in
  List.iter
    (fun r ->
      if r.r_failures > 0 then begin
        Printf.eprintf "bench serve FAIL: %s had %d failed requests\n"
          r.r_name r.r_failures;
        bad := true
      end;
      if r.r_pool_creates <> 1 then begin
        Printf.eprintf "bench serve FAIL: %s created %d pools (want 1)\n"
          r.r_name r.r_pool_creates;
        bad := true
      end)
    rows;
  if !bad then exit 1

(* ---- modes ---- *)

let smoke () =
  let dir = tmpdir "xinv-serve-smoke" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let a = inproc_row ~name:"inproc-cold" ~cache_dir:dir 12 in
      let b = socket_row ~name:"socket-warm" ~cache_dir:dir ~clients:2 8 in
      print_row a;
      print_row b;
      assert_sane [ a; b ];
      if b.r_cache_hits = 0 then begin
        prerr_endline
          "bench serve FAIL: warm socket row saw zero analysis-cache hits";
        exit 1
      end;
      print_string "bench serve smoke: ok\n")

let full ~json =
  let n = 200 in
  let dir1 = tmpdir "xinv-serve-bench-a" and dir2 = tmpdir "xinv-serve-bench-b" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir1;
      rm_rf dir2)
    (fun () ->
      (* sequenced lets: list elements evaluate right-to-left, and cold
         rows must run before their warm twin on the shared cache dir *)
      let r1 = inproc_row ~name:"inproc-cold" ~cache_dir:dir1 n in
      let r2 = inproc_row ~name:"inproc-warm" ~cache_dir:dir1 n in
      let r3 = socket_row ~name:"socket-cold" ~cache_dir:dir2 ~clients:4 n in
      let r4 = socket_row ~name:"socket-warm" ~cache_dir:dir2 ~clients:4 n in
      let rows = [ r1; r2; r3; r4 ] in
      List.iter print_row rows;
      assert_sane rows;
      match json with Some out -> emit_json ~out rows | None -> ())

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--smoke" args then smoke ()
  else
    let rec json = function
      | "--json" :: out :: _ -> Some out
      | _ :: rest -> json rest
      | [] -> None
    in
    full ~json:(json args)
