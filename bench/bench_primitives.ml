(* Micro-benchmarks for the runtime primitives (shadow memory, access
   signatures, DES engine bookkeeping), plus a semantic fingerprint of a few
   fixed simulated runs.

   Modes:
     bench_primitives                  print a table of ns/op
     bench_primitives --smoke          run every kernel once at tiny scale
                                       (used by the @bench-smoke alias)
     bench_primitives --raw FILE      append "name ns_per_op" lines to FILE
     bench_primitives --json OUT [--baseline RAWFILE] [--from-raw RAWFILE]
                                       emit the BENCH_*.json document; with a
                                       baseline raw file, include before/after
                                       and speedup per kernel; with --from-raw,
                                       read the candidate numbers from a raw
                                       file instead of re-timing.  Raw files
                                       with repeated lines per kernel (from
                                       alternating appended runs) are merged
                                       by per-kernel minimum, which cancels
                                       slow machine drift
     bench_primitives --fingerprint    print makespan/tasks/checks/misspecs of
                                       fixed DOMORE and SPECCROSS runs (perf
                                       work must keep these bit-identical)

   The kernels go through the stable public API only, so the same driver
   measures any implementation of the primitives. *)

module Rt = Xinv_runtime
module Sim = Xinv_sim

(* ---------- timing harness ---------- *)

(* A kernel runs one fixed-size chunk and returns the number of primitive
   operations it performed.  The harness repeats chunks until [target_s] of
   wall clock elapsed, three times, and keeps the best rate. *)
type kernel = { name : string; chunk : unit -> int }

let time_kernel ?(target_s = 0.25) k =
  ignore (k.chunk ());
  (* warmup *)
  let best = ref infinity in
  for _ = 1 to 3 do
    let ops = ref 0 in
    let t0 = Unix.gettimeofday () in
    let elapsed () = Unix.gettimeofday () -. t0 in
    while elapsed () < target_s do
      ops := !ops + k.chunk ()
    done;
    let ns_per_op = elapsed () *. 1e9 /. float_of_int !ops in
    if ns_per_op < !best then best := ns_per_op
  done;
  !best

(* ---------- shadow-memory kernels ---------- *)

let shadow_note_chunk n () =
  let sh = Rt.Shadow.create () in
  for i = 0 to n - 1 do
    let addr = i * 17 land 4095 in
    let e = { Rt.Shadow.tid = i land 3; iter = i } in
    if i land 3 = 0 then ignore (Rt.Shadow.note_write sh addr e)
    else ignore (Rt.Shadow.note_read sh addr e)
  done;
  n

let shadow_reset_chunk rounds fill () =
  let sh = Rt.Shadow.create () in
  for r = 0 to rounds - 1 do
    for i = 0 to fill - 1 do
      ignore (Rt.Shadow.note_write sh i { Rt.Shadow.tid = r land 3; iter = i })
    done;
    Rt.Shadow.reset sh
  done;
  rounds * fill

(* ---------- signature kernels ---------- *)

let sig_chunk kind adds probes () =
  let a = Rt.Signature.create kind and b = Rt.Signature.create kind in
  for i = 0 to adds - 1 do
    Rt.Signature.add a (i * 13 land 8191);
    Rt.Signature.add b ((i * 29) + 4096 land 8191)
  done;
  for _ = 1 to probes do
    ignore (Rt.Signature.intersects a b)
  done;
  Rt.Signature.merge ~into:a b;
  (2 * adds) + probes + 1

let seg_bounds = Array.init 16 (fun i -> i * 512)

(* ---------- engine kernels ---------- *)

let engine_advance_chunk threads per_thread () =
  let eng = Sim.Engine.create () in
  for _ = 1 to threads do
    ignore
      (Sim.Engine.spawn eng (fun () ->
           for _ = 1 to per_thread do
             Sim.Proc.work 1.
           done))
  done;
  Sim.Engine.run eng;
  threads * per_thread

let engine_charge_chunk n () =
  let eng = Sim.Engine.create () in
  let tid = Sim.Engine.spawn eng (fun () -> ()) in
  Sim.Engine.run eng;
  for i = 1 to n do
    Sim.Engine.charge eng tid
      (if i land 1 = 0 then Sim.Category.Work else Sim.Category.Runtime)
      1.0
  done;
  ignore (Sim.Engine.charged eng tid Sim.Category.Work);
  n

(* ---------- end-to-end kernels ---------- *)

(* One complete simulated run per chunk.  These exist to measure the cost of
   the observability layer: the names without a suffix run with observability
   disabled (the default), the [+obs] variants with a live recorder, and the
   overhead section of the JSON report compares the two. *)

let e2e_domore_chunk ?(obs = false) name threads () =
  let module Ir = Xinv_ir in
  let module Wl = Xinv_workloads in
  let wl = Wl.Registry.find name in
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
  let p = wl.Wl.Workload.program Wl.Workload.Train in
  let rec_ = if obs then Some (Xinv_obs.Recorder.create ()) else None in
  (match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Plan plan ->
      let config = Xinv_domore.Domore.default_config ~workers:(threads - 1) in
      ignore (Xinv_domore.Domore.run ~config ?obs:rec_ ~plan p env)
  | Ir.Mtcg.Inapplicable r -> failwith r);
  1

let e2e_speccross_chunk ?(obs = false) name threads () =
  let module Ir = Xinv_ir in
  let module Wl = Xinv_workloads in
  let module Sp = Xinv_speccross in
  let wl = Wl.Registry.find name in
  let env = wl.Wl.Workload.fresh_env Wl.Workload.Train in
  let p = wl.Wl.Workload.program Wl.Workload.Train in
  let rec_ = if obs then Some (Xinv_obs.Recorder.create ()) else None in
  let cfg =
    {
      (Sp.Runtime.default_config ~workers:(threads - 1)) with
      Sp.Runtime.sig_kind = Rt.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
      spec_distance = 4 * Ir.Program.total_iterations p env / Ir.Program.invocations p;
    }
  in
  ignore (Sp.Runtime.run ~config:cfg ?obs:rec_ p env);
  1

(* ---------- kernel table ---------- *)

let kernels ~smoke =
  let s n tiny = if smoke then tiny else n in
  [
    { name = "shadow.note_mixed"; chunk = shadow_note_chunk (s 100_000 256) };
    { name = "shadow.fill_reset"; chunk = shadow_reset_chunk (s 64 2) (s 10_000 64) };
    { name = "signature.range"; chunk = sig_chunk Rt.Signature.Range (s 2_000 16) (s 64 2) };
    {
      name = "signature.segmented";
      chunk = sig_chunk (Rt.Signature.Segmented seg_bounds) (s 2_000 16) (s 64 2);
    };
    {
      name = "signature.bloom";
      chunk =
        sig_chunk (Rt.Signature.Bloom { bits = 4096; hashes = 3 }) (s 2_000 16) (s 64 2);
    };
    { name = "signature.exact"; chunk = sig_chunk Rt.Signature.Exact (s 2_000 16) (s 64 2) };
    { name = "engine.spawn_advance"; chunk = engine_advance_chunk 4 (s 2_500 8) };
    { name = "engine.charge"; chunk = engine_charge_chunk (s 100_000 64) };
    { name = "e2e.domore_cg"; chunk = e2e_domore_chunk "CG" 8 };
    { name = "e2e.speccross_jacobi"; chunk = e2e_speccross_chunk "JACOBI" 8 };
    { name = "e2e.domore_cg+obs"; chunk = e2e_domore_chunk ~obs:true "CG" 8 };
    {
      name = "e2e.speccross_jacobi+obs";
      chunk = e2e_speccross_chunk ~obs:true "JACOBI" 8;
    };
  ]

(* ---------- semantic fingerprint ---------- *)

let fingerprint () =
  let module Ir = Xinv_ir in
  let module Wl = Xinv_workloads in
  let module Sp = Xinv_speccross in
  let train = Wl.Workload.Train in
  let runs = ref [] in
  let record name (r : Xinv_parallel.Run.t) =
    runs :=
      (name, r.Xinv_parallel.Run.makespan, r.Xinv_parallel.Run.tasks,
       r.Xinv_parallel.Run.checks, r.Xinv_parallel.Run.misspecs)
      :: !runs
  in
  let domore name threads =
    let wl = Wl.Registry.find name in
    let env = wl.Wl.Workload.fresh_env train in
    let p = wl.Wl.Workload.program train in
    match Ir.Mtcg.generate p env with
    | Ir.Mtcg.Plan plan ->
        let config = Xinv_domore.Domore.default_config ~workers:(threads - 1) in
        record ("domore." ^ name) (Xinv_domore.Domore.run ~config ~plan p env)
    | Ir.Mtcg.Inapplicable r -> failwith r
  in
  let speccross name threads kind =
    let wl = Wl.Registry.find name in
    let env = wl.Wl.Workload.fresh_env train in
    let p = wl.Wl.Workload.program train in
    let sig_kind =
      match kind with
      | `Segmented -> Rt.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem)
      | `Range -> Rt.Signature.Range
    in
    let cfg =
      {
        (Sp.Runtime.default_config ~workers:(threads - 1)) with
        Sp.Runtime.sig_kind;
        spec_distance = 4 * Ir.Program.total_iterations p env / Ir.Program.invocations p;
      }
    in
    record ("speccross." ^ name) (Sp.Runtime.run ~config:cfg p env)
  in
  domore "CG" 8;
  domore "BLACKSCHOLES" 8;
  speccross "JACOBI" 8 `Segmented;
  speccross "FDTD" 8 `Range;
  List.rev !runs

let print_fingerprint () =
  List.iter
    (fun (name, makespan, tasks, checks, misspecs) ->
      Printf.printf "%-24s makespan %.3f tasks %d checks %d misspecs %d\n" name makespan
        tasks checks misspecs)
    (fingerprint ())

(* ---------- output ---------- *)

(* Raw files may hold several lines per kernel (repeated --raw runs append);
   the merged value is the per-kernel minimum, so alternating baseline and
   candidate runs cancels slow machine drift. *)
let read_raw_ordered path =
  let ic = open_in path in
  let order = ref [] and tbl = Hashtbl.create 16 in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' (String.trim line) with
       | [ name; ns ] ->
           let v = float_of_string ns in
           (match Hashtbl.find_opt tbl name with
           | None ->
               order := name :: !order;
               Hashtbl.replace tbl name v
           | Some prev -> if v < prev then Hashtbl.replace tbl name v)
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

let read_baseline path =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace tbl name v) (read_raw_ordered path);
  tbl

let emit_json ~out ~baseline results fp =
  let oc = open_out out in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"xinv-bench/1\",\n";
  Buffer.add_string b "  \"unit\": \"ns_per_op\",\n";
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length results in
  List.iteri
    (fun i (name, ns) ->
      let before =
        match baseline with
        | Some tbl -> Hashtbl.find_opt tbl name
        | None -> None
      in
      Buffer.add_string b "    {";
      Buffer.add_string b (Printf.sprintf "\"name\": %S" name);
      (match before with
      | Some b0 ->
          Buffer.add_string b
            (Printf.sprintf ", \"before_ns_per_op\": %.2f, \"after_ns_per_op\": %.2f, \"speedup\": %.2f"
               b0 ns (b0 /. ns))
      | None -> Buffer.add_string b (Printf.sprintf ", \"ns_per_op\": %.2f" ns));
      Buffer.add_string b (if i = n - 1 then "}\n" else "},\n"))
    results;
  Buffer.add_string b "  ],\n";
  (* Observability overhead: for every kernel with a "+obs" twin, compare the
     disabled path against the pre-observability baseline (must stay within
     noise) and the enabled path against the disabled one (the price of a
     live recorder). *)
  let overheads =
    List.filter_map
      (fun (name, ns_on) ->
        let l = String.length name in
        if l > 4 && String.sub name (l - 4) 4 = "+obs" then
          let base = String.sub name 0 (l - 4) in
          match List.assoc_opt base results with
          | Some ns_off -> Some (base, ns_off, ns_on)
          | None -> None
        else None)
      results
  in
  if overheads <> [] then begin
    Buffer.add_string b "  \"obs_overhead\": [\n";
    let m = List.length overheads in
    List.iteri
      (fun i (base, ns_off, ns_on) ->
        let vs_baseline =
          match baseline with
          | Some tbl -> (
              match Hashtbl.find_opt tbl base with
              | Some b0 ->
                  Printf.sprintf ", \"disabled_vs_baseline_pct\": %.2f"
                    (100. *. ((ns_off /. b0) -. 1.))
              | None -> "")
          | None -> ""
        in
        Buffer.add_string b
          (Printf.sprintf
             "    {\"kernel\": %S, \"disabled_ns_per_op\": %.2f, \
              \"enabled_ns_per_op\": %.2f, \"enabled_overhead_pct\": %.2f%s}%s\n"
             base ns_off ns_on
             (100. *. ((ns_on /. ns_off) -. 1.))
             vs_baseline
             (if i = m - 1 then "" else ",")))
      overheads;
    Buffer.add_string b "  ],\n"
  end;
  Buffer.add_string b "  \"semantics\": [\n";
  let m = List.length fp in
  List.iteri
    (fun i (name, makespan, tasks, checks, misspecs) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"run\": %S, \"makespan\": %.3f, \"tasks\": %d, \"checks\": %d, \"misspecs\": %d}%s\n"
           name makespan tasks checks misspecs
           (if i = m - 1 then "" else ","));
      ())
    fp;
  Buffer.add_string b "  ]\n}\n";
  Buffer.add_string b "";
  output_string oc (Buffer.contents b);
  close_out oc

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let opt f =
    let rec go = function
      | a :: v :: _ when a = f -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  if has "--smoke" then begin
    List.iter
      (fun k ->
        let ops = k.chunk () in
        Printf.printf "smoke %-24s ok (%d ops)\n" k.name ops)
      (kernels ~smoke:true);
    print_string "bench smoke: all kernels ran\n"
  end
  else if has "--fingerprint" then print_fingerprint ()
  else begin
    (* Fail on a bad --baseline path before the multi-minute timing run, not
       at JSON-emit time. *)
    let baseline = Option.map read_baseline (opt "--baseline") in
    let results =
      match opt "--from-raw" with
      | Some path -> read_raw_ordered path
      | None -> List.map (fun k -> (k.name, time_kernel k)) (kernels ~smoke:false)
    in
    List.iter (fun (name, ns) -> Printf.printf "%-24s %10.1f ns/op\n%!" name ns) results;
    (match opt "--raw" with
    | Some path ->
        let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
        List.iter (fun (name, ns) -> Printf.fprintf oc "%s %.4f\n" name ns) results;
        close_out oc
    | None -> ());
    match opt "--json" with
    | Some out ->
        let fp = fingerprint () in
        emit_json ~out ~baseline results fp;
        Printf.printf "wrote %s\n" out
    | None -> ()
  end
