(* Cache-line contention microbenchmark for the native backend's shared
   state (satellite of the hot-path overhaul): quantifies exactly the two
   effects the data plane was rebuilt around.

     1. false sharing — two domains hammering adjacent [Atomic.t] cells in
        one array versus two [Pad.atomic] cells on their own lines.  On a
        real multicore the padded variant wins by an order of magnitude; on
        a single core both degenerate to the same uncontended cost (the
        printout says which situation was measured).

     2. publish batching — streaming N words through an {!Xinv_native.Spsc}
        ring with per-word [push]/[pop] (two seq_cst stores per word) versus
        [Batch]/[pop_chunk] (one store per burst).

   Modes:
     bench_contention           full measurement, table on stdout
     bench_contention --smoke   tiny iteration counts, correctness only
                                (runtest alias: exercises both code paths) *)

module Nat = Xinv_native

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

(* -------- false sharing: adjacent vs padded atomic increments -------- *)

let bump_loop (a : int Atomic.t) iters =
  for _ = 1 to iters do
    Atomic.incr a
  done

let two_domains f0 f1 =
  let d = Domain.spawn f1 in
  f0 ();
  Domain.join d

let adjacent_ns iters =
  (* one flat array: cells 0 and 1 share a cache line by construction *)
  let cells = Array.init 8 (fun _ -> Atomic.make 0) in
  let ns =
    time (fun () ->
        two_domains
          (fun () -> bump_loop cells.(0) iters)
          (fun () -> bump_loop cells.(1) iters))
  in
  assert (Atomic.get cells.(0) = iters && Atomic.get cells.(1) = iters);
  ns

let padded_ns iters =
  let cells = Nat.Pad.atomic_array 2 0 in
  let ns =
    time (fun () ->
        two_domains
          (fun () -> bump_loop cells.(0) iters)
          (fun () -> bump_loop cells.(1) iters))
  in
  assert (Atomic.get cells.(0) = iters && Atomic.get cells.(1) = iters);
  ns

(* -------- ring throughput: per-word vs batched publish -------- *)

let consume_sum q words =
  let sum = ref 0 in
  for _ = 1 to words do
    sum := !sum + Nat.Spsc.pop q
  done;
  !sum

let spsc_per_word_ns words =
  let q = Nat.Spsc.create ~dummy:0 ~capacity:1024 in
  let sum = ref 0 in
  let ns =
    time (fun () ->
        two_domains
          (fun () ->
            for w = 1 to words do
              Nat.Spsc.push q w
            done)
          (fun () -> sum := consume_sum q words))
  in
  assert (!sum = words * (words + 1) / 2);
  ns

let spsc_batched_ns words =
  let q = Nat.Spsc.create ~dummy:0 ~capacity:1024 in
  let sum = ref 0 in
  let ns =
    time (fun () ->
        two_domains
          (fun () ->
            let b = Nat.Spsc.Batch.create ~size:64 q in
            for w = 1 to words do
              Nat.Spsc.Batch.push b w
            done;
            Nat.Spsc.Batch.flush b)
          (fun () ->
            let buf = Array.make 64 0 in
            let got = ref 0 and sum' = ref 0 in
            while !got < words do
              let n = Nat.Spsc.pop_chunk q buf ~pos:0 ~len:64 in
              if n = 0 then Domain.cpu_relax ()
              else begin
                for i = 0 to n - 1 do
                  sum' := !sum' + buf.(i)
                done;
                got := !got + n
              end
            done;
            sum := !sum'))
  in
  assert (!sum = words * (words + 1) / 2);
  ns

let () =
  let smoke = Array.mem "--smoke" Sys.argv in
  let iters = if smoke then 10_000 else 2_000_000 in
  let words = if smoke then 10_000 else 2_000_000 in
  let cores = Domain.recommended_domain_count () in
  let adj = adjacent_ns iters and pad = padded_ns iters in
  let pw = spsc_per_word_ns words and ba = spsc_batched_ns words in
  if smoke then
    Printf.printf "bench contention smoke: ok (%d cores)\n" cores
  else begin
    Printf.printf "contention (%d cores, 2 domains, %d ops/side)\n" cores iters;
    Printf.printf "  atomic incr, adjacent cells   %7.2f ns/op\n"
      (adj /. float_of_int iters);
    Printf.printf "  atomic incr, padded cells     %7.2f ns/op  (%.2fx)\n"
      (pad /. float_of_int iters) (adj /. pad);
    if cores < 2 then
      print_string "  (single core: both variants uncontended, ratio ~1x expected)\n";
    Printf.printf "spsc throughput (%d words)\n" words;
    Printf.printf "  per-word push/pop             %7.2f ns/word\n"
      (pw /. float_of_int words);
    Printf.printf "  batched push/pop_chunk        %7.2f ns/word  (%.2fx)\n"
      (ba /. float_of_int words) (pw /. ba)
  end
