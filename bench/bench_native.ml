(* Wall-clock scaling of the native (real OCaml domains) backend.

   Measures sequential vs barrier vs DOMORE vs SPECCROSS at 1/2/4 domains on
   the two workloads both engines support (SYMM, LLUBENCH), with the
   calibrated spin work model so statement costs from the simulator's cost
   model become real nanoseconds.

   Modes:
     bench_native                   print a table of wall ms per configuration
     bench_native --smoke           one tiny run per engine (runtest alias)
     bench_native --raw FILE        append "name wall_ns" lines to FILE
     bench_native --json OUT [--from-raw RAWFILE]
                                    emit BENCH_PR4.json; with --from-raw, read
                                    the numbers from a raw file instead of
                                    re-timing.  Repeated lines per
                                    configuration merge by minimum, so
                                    alternating appended runs cancel machine
                                    drift (same protocol as bench_primitives)

   Each configuration is timed [repeats] times after a warmup run and the
   minimum wall time is kept.  Speedups are computed against the same
   workload's native-sequential row.  The JSON records the machine's core
   count: scaling beyond 1.0x needs at least as many cores as domains, so a
   single-core container measures (honest) slowdowns. *)

module Ir = Xinv_ir
module Nat = Xinv_native
module Wl = Xinv_workloads
module C = Xinv_core.Crossinv

let workloads = [ "SYMM"; "LLUBENCH" ]
let domain_counts = [ 1; 2; 4 ]
let techniques = [ ("barrier", C.Barrier); ("domore", C.Domore); ("speccross", C.Speccross) ]

(* ns of real spinning per simulated cycle: large enough that task work
   dominates queue/atomic traffic, small enough to keep the matrix fast. *)
let ns_per_cycle = 1.0

let repeats = 3

type row = { name : string; wall_ns : float }

let backend ~work = `Native { C.native_defaults with C.work }

let time_config ~work ~input (wl : Wl.Workload.t) technique domains =
  let best = ref infinity in
  for i = 0 to repeats do
    let o =
      C.run ~backend:(backend ~work) ~input ~verify:(i = 0) ~technique
        ~threads:domains wl
    in
    (* i = 0 is the warmup (and the verified run); the rest are timed. *)
    let wall = C.cost_value o.C.cost in
    if i > 0 && wall < !best then best := wall;
    if not o.C.verified then begin
      Printf.eprintf "FATAL: %s under %s failed verification\n"
        wl.Wl.Workload.name (C.technique_name technique);
      exit 1
    end
  done;
  !best

let measure () =
  let work = Nat.Work.Spin ns_per_cycle in
  let input = Wl.Workload.Train in
  List.concat_map
    (fun wname ->
      let wl = Wl.Registry.find wname in
      let seq = time_config ~work ~input wl C.Sequential 1 in
      Printf.printf "%-28s %10.2f ms\n%!" (wname ^ ".seq") (seq /. 1e6);
      { name = wname ^ ".seq"; wall_ns = seq }
      :: List.concat_map
           (fun (tname, tech) ->
             List.map
               (fun d ->
                 let ns = time_config ~work ~input wl tech d in
                 let name = Printf.sprintf "%s.%s.d%d" wname tname d in
                 Printf.printf "%-28s %10.2f ms  (%.2fx)\n%!" name (ns /. 1e6)
                   (seq /. ns);
                 { name; wall_ns = ns })
               domain_counts)
           techniques)
    workloads

(* ---------- raw-file merge (same protocol as bench_primitives) ---------- *)

let read_raw_ordered path =
  let ic = open_in path in
  let order = ref [] and tbl = Hashtbl.create 16 in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' (String.trim line) with
       | [ name; ns ] ->
           let v = float_of_string ns in
           (match Hashtbl.find_opt tbl name with
           | None ->
               order := name :: !order;
               Hashtbl.replace tbl name v
           | Some prev -> if v < prev then Hashtbl.replace tbl name v)
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

(* ---------- JSON ---------- *)

let seq_of rows name =
  (* "SYMM.domore.d4" -> the "SYMM.seq" row *)
  match String.index_opt name '.' with
  | None -> None
  | Some i -> List.assoc_opt (String.sub name 0 i ^ ".seq") rows

let emit_json ~out rows =
  let oc = open_out out in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"xinv-bench-native/1\",\n";
  Buffer.add_string b "  \"unit\": \"wall_ns\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string b
    (Printf.sprintf "  \"work_ns_per_cycle\": %.2f,\n" ns_per_cycle);
  Buffer.add_string b "  \"input\": \"train\",\n";
  Buffer.add_string b (Printf.sprintf "  \"repeats_min_of\": %d,\n" repeats);
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %S, \"wall_ns\": %.0f" name ns);
      (match seq_of rows name with
      | Some seq when name <> "" && not (String.length name >= 4
                                         && String.sub name (String.length name - 4) 4 = ".seq") ->
          Buffer.add_string b
            (Printf.sprintf ", \"speedup_vs_seq\": %.3f" (seq /. ns))
      | _ -> ());
      Buffer.add_string b (if i = n - 1 then "}\n" else "},\n"))
    rows;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

(* ---------- smoke ---------- *)

let smoke () =
  let input = Wl.Workload.Train in
  let wl = Wl.Registry.find "SYMM" in
  List.iter
    (fun (tname, tech) ->
      let o =
        C.run ~backend:(backend ~work:Nat.Work.Off) ~input ~technique:tech
          ~threads:2 wl
      in
      if not o.C.verified then begin
        Printf.eprintf "smoke %s: verification failed\n" tname;
        exit 1
      end;
      let nrun = Option.get o.C.nrun in
      Printf.printf "smoke native.%-10s ok (%d tasks, %.1f ms)\n" tname
        nrun.Nat.Nrun.tasks
        (nrun.Nat.Nrun.wall_ns /. 1e6))
    (("sequential", C.Sequential) :: techniques);
  print_string "bench native smoke: all engines ran\n"

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let opt f =
    let rec go = function
      | a :: v :: _ when a = f -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  if has "--smoke" then smoke ()
  else begin
    let rows =
      match opt "--from-raw" with
      | Some path -> read_raw_ordered path
      | None -> List.map (fun r -> (r.name, r.wall_ns)) (measure ())
    in
    (match opt "--raw" with
    | Some path ->
        let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
        List.iter (fun (name, ns) -> Printf.fprintf oc "%s %.0f\n" name ns) rows;
        close_out oc
    | None -> ());
    match opt "--json" with
    | Some out ->
        emit_json ~out rows;
        Printf.printf "wrote %s\n" out
    | None -> ()
  end
