(* Wall-clock scaling of the native (real OCaml domains) backend.

   Measures sequential vs barrier vs DOMORE vs SPECCROSS at 1/2/4 domains on
   the two workloads both engines support (SYMM, LLUBENCH), with the
   calibrated spin work model so statement costs from the simulator's cost
   model become real nanoseconds.

   Modes:
     bench_native                   print a table of wall ms per configuration
     bench_native --smoke           one tiny run per engine plus an analysis
                                    cache round-trip (runtest alias)
     bench_native --cache-bench     cold vs warm analysis cache: run each
                                    workload x technique with --cache rw in a
                                    scratch directory twice and report the
                                    analysis-phase time of both runs; with
                                    --json OUT writes schema xinv-cache/1
     bench_native --perf-smoke      CI gate: time SYMM seq vs barrier.d2 and
                                    assert the parallel run stays inside a
                                    sanity envelope of sequential; with --json
                                    it also writes the two rows as an artifact
     bench_native --grain N         dispatch grain for all parallel rows
     bench_native --raw FILE        append "name wall_ns cause=ns,... analysis_ns"
                                    to FILE
     bench_native --obs-smoke       CI gate: alternating off/on pair timing
                                    of SYMM domore.d2 with the flight
                                    recorder; fails when the median pair
                                    ratio exceeds 1.05 (5%% wall time)
     bench_native --json OUT [--from-raw RAWFILE]
                                    emit BENCH json (schema xinv-bench-native/4);
                                    with --from-raw, read the numbers from a raw
                                    file instead of re-timing.  Repeated lines
                                    per configuration merge by minimum wall
                                    time, so alternating appended runs cancel
                                    machine drift (same protocol as
                                    bench_primitives)

   Each configuration is timed [repeats] times after a warmup run and the
   minimum wall time is kept; the stall breakdown reported is the one from
   that fastest run, so causes explain the number beside them.  One extra
   non-timed run per configuration records a flight recording, and its
   critical-path verdict (anchored to the fastest run's wall time and
   authoritative stall totals, so dominant causes agree) rides along in the
   JSON rows.  Speedups are computed against the same workload's
   native-sequential row.  The JSON records the machine's core count:
   scaling beyond 1.0x needs at least as many cores as domains, so a
   single-core container measures (honest) slowdowns — which is exactly
   what the stall column is for. *)

module Nat = Xinv_native
module Wl = Xinv_workloads
module C = Xinv_core.Crossinv

let workloads = [ "SYMM"; "LLUBENCH" ]
let domain_counts = [ 1; 2; 4 ]
let techniques = [ ("barrier", C.Barrier); ("domore", C.Domore); ("speccross", C.Speccross) ]

(* ns of real spinning per simulated cycle: large enough that task work
   dominates queue/atomic traffic, small enough to keep the matrix fast. *)
let ns_per_cycle = 1.0

let repeats = 3

type row = {
  name : string;
  wall_ns : float;
  analysis_ns : float;
  stalls : (string * float) list;
  critpath : Xinv_obs.Critpath.verdict option;
}

let backend ~work ~grain = `Native { C.native_defaults with C.work; grain }

let dominant stalls =
  match List.sort (fun (_, a) (_, b) -> compare b a) stalls with
  | (c, ns) :: _ when ns > 0. -> Some c
  | _ -> None

let stall_note stalls =
  match dominant stalls with
  | Some c -> Printf.sprintf "[mostly %s]" c
  | None -> "[no stalls]"

let time_config ~work ~grain ~input (wl : Wl.Workload.t) technique domains =
  let best = ref infinity and best_stalls = ref [] and best_analysis = ref 0. in
  for i = 0 to repeats do
    let o =
      C.run_request @@ C.Request.make ~backend:(backend ~work ~grain) ~input ~verify:(i = 0)
        ~technique ~threads:domains wl
    in
    (* i = 0 is the warmup (and the verified run); the rest are timed. *)
    let wall = C.cost_value o.C.cost in
    if i > 0 && wall < !best then begin
      best := wall;
      best_analysis := o.C.analysis_ns;
      best_stalls :=
        (match o.C.nrun with Some n -> n.Nat.Nrun.stalls | None -> [])
    end;
    if not o.C.verified then begin
      Printf.eprintf "FATAL: %s under %s failed verification\n"
        wl.Wl.Workload.name (C.technique_name technique);
      exit 1
    end
  done;
  (* One extra, non-timed run records the flight; anchoring the verdict to
     the fastest timed run's wall and stall totals keeps the recorder's
     overhead out of the numbers and the dominant cause consistent with
     the row's dominant_stall. *)
  let critpath =
    match technique with
    | C.Sequential -> None
    | _ -> (
        let o =
          C.run_request @@ C.Request.make
            ~backend:
              (`Native { C.native_defaults with C.work; grain; flight = true })
            ~input ~verify:false ~technique ~threads:domains wl
        in
        match o.C.flight with
        | Some fl ->
            Some
              (Xinv_obs.Critpath.analyze ~wall_ns:!best ~stalls:!best_stalls fl)
        | None -> None)
  in
  (!best, !best_analysis, !best_stalls, critpath)

let measure ~grain =
  let work = Nat.Work.Spin ns_per_cycle in
  let input = Wl.Workload.Train in
  List.concat_map
    (fun wname ->
      let wl = Wl.Registry.find wname in
      let seq, seq_an, seq_st, _ = time_config ~work ~grain ~input wl C.Sequential 1 in
      Printf.printf "%-28s %10.2f ms              %s\n%!" (wname ^ ".seq")
        (seq /. 1e6) (stall_note seq_st);
      {
        name = wname ^ ".seq";
        wall_ns = seq;
        analysis_ns = seq_an;
        stalls = seq_st;
        critpath = None;
      }
      :: List.concat_map
           (fun (tname, tech) ->
             List.map
               (fun d ->
                 let ns, an, st, cp = time_config ~work ~grain ~input wl tech d in
                 let name = Printf.sprintf "%s.%s.d%d" wname tname d in
                 Printf.printf "%-28s %10.2f ms  (%.2fx)    %s\n%!" name
                   (ns /. 1e6) (seq /. ns) (stall_note st);
                 (match cp with
                 | Some v ->
                     Printf.printf "%-28s   %s\n%!" ""
                       v.Xinv_obs.Critpath.v_bottleneck
                 | None -> ());
                 { name; wall_ns = ns; analysis_ns = an; stalls = st;
                   critpath = cp })
               domain_counts)
           techniques)
    workloads

(* ---------- raw-file merge (same protocol as bench_primitives) ---------- *)

let stalls_to_string stalls =
  String.concat ","
    (List.map (fun (c, ns) -> Printf.sprintf "%s=%.0f" c ns) stalls)

let stalls_of_string s =
  if s = "" then []
  else
    List.filter_map
      (fun kv ->
        match String.split_on_char '=' kv with
        | [ c; ns ] -> ( try Some (c, float_of_string ns) with _ -> None)
        | _ -> None)
      (String.split_on_char ',' s)

let read_raw_ordered path =
  let ic = open_in path in
  let order = ref [] and tbl = Hashtbl.create 16 in
  (try
     while true do
       let line = input_line ic in
       let record name v st an =
         match Hashtbl.find_opt tbl name with
         | None ->
             order := name :: !order;
             Hashtbl.replace tbl name (v, st, an)
         | Some (prev, _, _) ->
             if v < prev then Hashtbl.replace tbl name (v, st, an)
       in
       match String.split_on_char ' ' (String.trim line) with
       | [ name; ns ] -> record name (float_of_string ns) [] 0.
       | [ name; ns; st ] ->
           record name (float_of_string ns) (stalls_of_string st) 0.
       | [ name; ns; st; an ] ->
           record name (float_of_string ns) (stalls_of_string st)
             (float_of_string an)
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev_map
    (fun name ->
      let wall_ns, stalls, analysis_ns = Hashtbl.find tbl name in
      (* Raw files carry no flight recording, so merged rows have no
         critical-path verdict. *)
      { name; wall_ns; analysis_ns; stalls; critpath = None })
    !order

(* ---------- JSON ---------- *)

let seq_of rows name =
  (* "SYMM.domore.d4" -> the "SYMM.seq" row *)
  match String.index_opt name '.' with
  | None -> None
  | Some i ->
      List.find_map
        (fun r ->
          if r.name = String.sub name 0 i ^ ".seq" then Some r.wall_ns else None)
        rows

let is_seq name =
  String.length name >= 4
  && String.sub name (String.length name - 4) 4 = ".seq"

let emit_json ~out ~grain rows =
  let cores = Domain.recommended_domain_count () in
  let oc = open_out out in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"xinv-bench-native/4\",\n";
  Buffer.add_string b "  \"unit\": \"wall_ns\",\n";
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b (Printf.sprintf "  \"grain\": %d,\n" grain);
  Buffer.add_string b
    (Printf.sprintf "  \"work_ns_per_cycle\": %.2f,\n" ns_per_cycle);
  Buffer.add_string b "  \"input\": \"train\",\n";
  Buffer.add_string b (Printf.sprintf "  \"repeats_min_of\": %d,\n" repeats);
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"wall_ns\": %.0f, \"analysis_ns\": %.0f, \"cores\": %d, \"grain\": %d"
           r.name r.wall_ns r.analysis_ns cores grain);
      (match seq_of rows r.name with
      | Some seq when not (is_seq r.name) ->
          Buffer.add_string b
            (Printf.sprintf ", \"speedup_vs_seq\": %.3f" (seq /. r.wall_ns))
      | _ -> ());
      Buffer.add_string b ", \"stall_causes\": {";
      List.iteri
        (fun k (c, ns) ->
          Buffer.add_string b
            (Printf.sprintf "%s%S: %.0f" (if k = 0 then "" else ", ") c ns))
        r.stalls;
      Buffer.add_string b "}";
      Buffer.add_string b
        (Printf.sprintf ", \"dominant_stall\": %S"
           (match dominant r.stalls with Some c -> c | None -> "none"));
      Buffer.add_string b
        (Printf.sprintf ", \"critpath\": %s"
           (match r.critpath with
           | Some v -> Xinv_obs.Critpath.to_json v
           | None -> "null"));
      Buffer.add_string b (if i = n - 1 then "}\n" else "},\n"))
    rows;
  Buffer.add_string b "  ]\n}\n";
  output_string oc (Buffer.contents b);
  close_out oc

(* ---------- smoke ---------- *)

let smoke () =
  let input = Wl.Workload.Train in
  let wl = Wl.Registry.find "SYMM" in
  List.iter
    (fun (tname, tech) ->
      let o =
        C.run_request @@ C.Request.make
          ~backend:(backend ~work:Nat.Work.Off ~grain:C.native_defaults.C.grain)
          ~input ~technique:tech ~threads:2 wl
      in
      if not o.C.verified then begin
        Printf.eprintf "smoke %s: verification failed\n" tname;
        exit 1
      end;
      let nrun = Option.get o.C.nrun in
      Printf.printf "smoke native.%-10s ok (%d tasks, %.1f ms)\n" tname
        nrun.Nat.Nrun.tasks
        (nrun.Nat.Nrun.wall_ns /. 1e6))
    (("sequential", C.Sequential) :: techniques);
  (* Flight recorder round-trip: a recorded run must surface events and a
     critical-path verdict without disturbing verification. *)
  let fo =
    C.run_request @@ C.Request.make
      ~backend:(`Native { C.native_defaults with C.flight = true })
      ~input ~technique:C.Domore ~threads:2 wl
  in
  (match fo.C.flight with
  | Some fl when fo.C.verified && Xinv_obs.Flight.total_length fl > 0 ->
      let v = Xinv_obs.Critpath.analyze fl in
      Printf.printf "smoke flight ok (%d events, bottleneck: %s)\n"
        (Xinv_obs.Flight.total_length fl)
        v.Xinv_obs.Critpath.v_bottleneck
  | _ ->
      prerr_endline "smoke flight: no events recorded or verification failed";
      exit 1);
  (* Analysis cache round-trip: second run with the same scratch directory
     must be served entirely from the cache and still verify. *)
  let cdir = Filename.temp_file "xinv-smoke-cache" "" in
  Sys.remove cdir;
  Unix.mkdir cdir 0o755;
  let cached () =
    C.run_request @@ C.Request.make
      ~backend:(backend ~work:Nat.Work.Off ~grain:C.native_defaults.C.grain)
      ~input ~cache:`Rw ~cache_dir:cdir ~technique:C.Domore ~threads:2 wl
  in
  let cold = cached () in
  let warm = cached () in
  if
    (not (cold.C.verified && warm.C.verified))
    || cold.C.cache_misses = 0 || warm.C.cache_misses > 0
    || warm.C.cache_hits = 0
  then begin
    Printf.eprintf
      "smoke cache: round-trip broken (cold %d/%d, warm %d/%d hit/miss)\n"
      cold.C.cache_hits cold.C.cache_misses warm.C.cache_hits
      warm.C.cache_misses;
    exit 1
  end;
  Array.iter (fun f -> Sys.remove (Filename.concat cdir f)) (Sys.readdir cdir);
  Unix.rmdir cdir;
  Printf.printf "smoke cache ok (cold %d miss, warm %d hit)\n"
    cold.C.cache_misses warm.C.cache_hits;
  print_string "bench native smoke: all engines ran\n"

(* ---------- cache bench ---------- *)

(* Cold vs warm analysis: each workload x technique runs three times — cache
   off (the baseline analysis cost), cold rw (first run populates a scratch
   cache), warm rw (everything replayed from disk).  The warm row's
   analysis_ns is the headline: fingerprint + artifact replay instead of
   PDG/SCC/partition/profiling, so repeat-run analysis time collapses. *)
let cache_bench ~json =
  let input = Wl.Workload.Train in
  let grain = C.native_defaults.C.grain in
  let rows =
    List.concat_map
      (fun wname ->
        let wl = Wl.Registry.find wname in
        List.concat_map
          (fun (tname, tech) ->
            let cdir = Filename.temp_file "xinv-cache-bench" "" in
            Sys.remove cdir;
            Unix.mkdir cdir 0o755;
            let go cache =
              C.run_request @@ C.Request.make
                ~backend:(backend ~work:Nat.Work.Off ~grain)
                ~input ?cache_dir:(if cache = `Off then None else Some cdir)
                ~cache ~technique:tech ~threads:2 wl
            in
            let off = go `Off in
            let cold = go `Rw in
            let warm = go `Rw in
            List.iter
              (fun (o : C.outcome) ->
                if not o.C.verified then begin
                  Printf.eprintf "FATAL: %s.%s failed verification\n" wname tname;
                  exit 1
                end)
              [ off; cold; warm ];
            if warm.C.cache_misses > 0 || warm.C.cache_hits = 0 then begin
              Printf.eprintf "FATAL: %s.%s warm run missed the cache (%d/%d)\n"
                wname tname warm.C.cache_hits warm.C.cache_misses;
              exit 1
            end;
            Array.iter
              (fun f -> Sys.remove (Filename.concat cdir f))
              (Sys.readdir cdir);
            Unix.rmdir cdir;
            List.iter
              (fun (phase, (o : C.outcome)) ->
                Printf.printf
                  "%-24s %-5s analysis %10.3f ms   wall %10.2f ms   (%d hit, %d miss)\n%!"
                  (wname ^ "." ^ tname) phase
                  (o.C.analysis_ns /. 1e6)
                  (C.cost_value o.C.cost /. 1e6)
                  o.C.cache_hits o.C.cache_misses;
                ignore phase)
              [ ("off", off); ("cold", cold); ("warm", warm) ];
            Printf.printf "%-24s warm analysis is %.1fx cheaper than cold\n%!"
              (wname ^ "." ^ tname)
              (cold.C.analysis_ns /. Float.max 1. warm.C.analysis_ns);
            List.map
              (fun (phase, (o : C.outcome)) ->
                (wname, tname, phase, o.C.analysis_ns, C.cost_value o.C.cost,
                 o.C.cache_hits, o.C.cache_misses))
              [ ("off", off); ("cold", cold); ("warm", warm) ])
          [ ("domore", C.Domore); ("speccross", C.Speccross) ])
      workloads
  in
  match json with
  | None -> ()
  | Some out ->
      let oc = open_out out in
      let b = Buffer.create 2048 in
      Buffer.add_string b "{\n";
      Buffer.add_string b "  \"schema\": \"xinv-cache/1\",\n";
      Buffer.add_string b "  \"unit\": \"analysis_ns\",\n";
      Buffer.add_string b "  \"input\": \"train\",\n";
      Buffer.add_string b
        (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
      Buffer.add_string b "  \"results\": [\n";
      let n = List.length rows in
      List.iteri
        (fun i (w, t, phase, an, wall, hits, misses) ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"name\": \"%s.%s.%s\", \"analysis_ns\": %.0f, \"wall_ns\": \
                %.0f, \"cache_hits\": %d, \"cache_misses\": %d}%s\n"
               w t phase an wall hits misses
               (if i = n - 1 then "" else ",")))
        rows;
      Buffer.add_string b "  ]\n}\n";
      output_string oc (Buffer.contents b);
      close_out oc;
      Printf.printf "wrote %s\n" out

(* ---------- perf smoke (CI gate) ---------- *)

(* Sanity envelope, not a scaling target: on >= 2 real cores a 2-domain
   barrier run of SYMM must not be catastrophically slower than sequential
   (lock convoy, livelock, quadratic sync).  On an oversubscribed single
   core, honest slowdown from context switching is expected, so the bound
   is loose there — it still catches hangs and order-of-magnitude
   regressions. *)
let perf_smoke ~grain ~json =
  let work = Nat.Work.Spin ns_per_cycle in
  let input = Wl.Workload.Train in
  let wl = Wl.Registry.find "SYMM" in
  let cores = Domain.recommended_domain_count () in
  let seq, seq_an, seq_st, _ = time_config ~work ~grain ~input wl C.Sequential 1 in
  let par, par_an, par_st, par_cp = time_config ~work ~grain ~input wl C.Barrier 2 in
  let envelope = if cores >= 2 then 4.0 else 12.0 in
  let ratio = par /. seq in
  Printf.printf "perf-smoke: cores=%d grain=%d\n" cores grain;
  Printf.printf "  SYMM.seq         %10.2f ms  %s\n" (seq /. 1e6)
    (stall_note seq_st);
  Printf.printf "  SYMM.barrier.d2  %10.2f ms  (%.2fx of seq)  %s\n"
    (par /. 1e6) ratio (stall_note par_st);
  (match json with
  | Some out ->
      emit_json ~out ~grain
        [
          {
            name = "SYMM.seq";
            wall_ns = seq;
            analysis_ns = seq_an;
            stalls = seq_st;
            critpath = None;
          };
          {
            name = "SYMM.barrier.d2";
            wall_ns = par;
            analysis_ns = par_an;
            stalls = par_st;
            critpath = par_cp;
          };
        ];
      Printf.printf "wrote %s\n" out
  | None -> ());
  if ratio > envelope then begin
    Printf.eprintf
      "perf-smoke FAIL: barrier.d2 is %.2fx sequential (envelope %.1fx at %d cores)\n"
      ratio envelope cores;
    exit 1
  end;
  Printf.printf "perf-smoke ok: %.2fx within %.1fx envelope\n" ratio envelope

(* ---------- tuned bench (PR 9) ---------- *)

(* Autotuned policy vs the best fixed grid configuration vs sequential.

   Per workload: (1) the fixed grid — sequential plus every technique x
   domain count at the default grain — timed with the min-of-repeats
   protocol; (2) one [Tune.tune] search into a scratch rw cache, a second
   warm tune that must be served from the cache with zero trials, and the
   winning policy re-timed under the same protocol; (3) an adaptive stream
   of runs against the same cache, which must end either committed to the
   candidate or switched to sequential.  Assertions exit 1; --json writes
   schema xinv-tune-bench/1. *)
let tuned_bench ~json =
  let module Tune = Xinv_tune.Tune in
  let module Policy = Xinv_cache.Policy in
  let work = Nat.Work.Spin ns_per_cycle in
  let input = Wl.Workload.Train in
  let cores = Domain.recommended_domain_count () in
  let time_policy (p : Policy.t) wl =
    let native = { C.native_defaults with C.work } in
    let best = ref infinity in
    for i = 0 to repeats do
      let o =
        C.run_request
        @@ C.Request.make ~input
             ~backend:(`Native native)
             ~policy:(`Reified (p, "searched"))
             ~technique:C.Sequential ~threads:1 wl
      in
      if not o.C.verified then begin
        Printf.eprintf "FATAL: tuned policy %s failed verification\n"
          (Policy.key p);
        exit 1
      end;
      let wall = C.cost_value o.C.cost in
      if i > 0 && wall < !best then best := wall
    done;
    !best
  in
  let any_tuned_ok = ref false in
  let results =
    List.map
      (fun wname ->
        let wl = Wl.Registry.find wname in
        let seq, _, _, _ = time_config ~work ~grain:1 ~input wl C.Sequential 1 in
        Printf.printf "%-28s %10.2f ms\n%!" (wname ^ ".seq") (seq /. 1e6);
        let fixed =
          List.concat_map
            (fun (tname, tech) ->
              List.map
                (fun d ->
                  let ns, _, _, _ = time_config ~work ~grain:1 ~input wl tech d in
                  let name = Printf.sprintf "%s.d%d" tname d in
                  Printf.printf "%-28s %10.2f ms  (%.2fx)\n%!"
                    (wname ^ "." ^ name) (ns /. 1e6) (seq /. ns);
                  (name, ns))
                domain_counts)
            techniques
        in
        let best_fixed_name, best_fixed =
          List.fold_left
            (fun (bn, b) (n, v) -> if v < b then (n, v) else (bn, b))
            ("seq", seq) fixed
        in
        let cdir = Filename.temp_file "xinv-tune-bench" "" in
        Sys.remove cdir;
        Unix.mkdir cdir 0o755;
        let r =
          Tune.tune ~cache:`Rw ~cache_dir:cdir ~input ~budget:24 ~seed:42 ~work
            wl
        in
        let warm =
          Tune.tune ~cache:`Rw ~cache_dir:cdir ~input ~budget:24 ~seed:42 ~work
            wl
        in
        if warm.Tune.source <> `Cached || warm.Tune.trials <> [] then begin
          Printf.eprintf
            "FATAL: %s warm tune re-searched (%d trials, source %s)\n" wname
            (List.length warm.Tune.trials)
            (Tune.source_name warm.Tune.source);
          exit 1
        end;
        let tuned_policy = r.Tune.tuned.Policy.policy in
        let tuned_wall = time_policy tuned_policy wl in
        let vs_fixed = tuned_wall /. best_fixed in
        Printf.printf
          "%-28s %10.2f ms  (%.2fx)  [%s, %d trials, %.2fx of best fixed \
           %s]\n%!"
          (wname ^ ".tuned") (tuned_wall /. 1e6) (seq /. tuned_wall)
          (Policy.key tuned_policy)
          (List.length r.Tune.trials)
          vs_fixed best_fixed_name;
        (* Within-noise bound is generous: on small boxes the tuned policy
           is often the same config as the best fixed row, so the gap is
           pure measurement noise. *)
        if vs_fixed <= 1.25 then any_tuned_ok := true;
        (* Adaptive stream against the freshly tuned cache: the candidate
           is the stored policy; the controller must end the stream either
           committed to it or switched to sequential. *)
        let ctl = C.adaptive () in
        let nruns = 8 in
        let last = ref None in
        for _ = 1 to nruns do
          last :=
            Some
              (C.run_request @@ C.Request.make
                 ~backend:(`Native { C.native_defaults with C.work })
                 ~input ~cache:`Ro ~cache_dir:cdir ~policy:(`Adaptive ctl)
                 ~technique:C.Domore
                 ~threads:(Stdlib.min 4 (Stdlib.max 2 cores))
                 wl)
        done;
        let final = Option.get !last in
        if not final.C.verified then begin
          Printf.eprintf "FATAL: %s adaptive stream failed verification\n"
            wname;
          exit 1
        end;
        let phase_name =
          match C.adaptive_phase ctl with
          | `Probing -> "probing"
          | `Candidate -> "candidate"
          | `Sequential -> "sequential"
        in
        let committed = C.adaptive_phase ctl = `Candidate in
        let bailed = final.C.policy_source = "adaptive:sequential" in
        if not (committed || bailed) then begin
          Printf.eprintf
            "FATAL: %s adaptive stream ended in %s after %d runs (must \
             commit or switch to sequential)\n"
            wname phase_name nruns;
          exit 1
        end;
        let final_ratio =
          C.cost_value final.C.cost /. C.cost_value final.C.seq_cost
        in
        Printf.printf
          "%-28s %10s      [%s after %d runs, %d switches, final %.2fx of \
           seq]\n%!"
          (wname ^ ".adaptive")
          (if committed then "committed" else "switched")
          phase_name nruns
          (C.adaptive_switches ctl)
          final_ratio;
        Array.iter
          (fun f -> Sys.remove (Filename.concat cdir f))
          (Sys.readdir cdir);
        Unix.rmdir cdir;
        ( wname, seq, best_fixed_name, best_fixed, tuned_policy, tuned_wall,
          List.length r.Tune.trials, phase_name,
          C.adaptive_switches ctl, final.C.policy_source, final_ratio ))
      workloads
  in
  if not !any_tuned_ok then begin
    Printf.eprintf
      "FATAL: no workload's autotuned policy came within 1.15x of its best \
       fixed grid configuration\n";
    exit 1
  end;
  Printf.printf "tuned bench ok: autotuned <= best fixed (within noise) on \
                 >= 1 workload\n";
  match json with
  | None -> ()
  | Some out ->
      let oc = open_out out in
      let b = Buffer.create 4096 in
      Buffer.add_string b "{\n";
      Buffer.add_string b "  \"schema\": \"xinv-tune-bench/1\",\n";
      Buffer.add_string b "  \"unit\": \"wall_ns\",\n";
      Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
      Buffer.add_string b
        (Printf.sprintf "  \"work_ns_per_cycle\": %.2f,\n" ns_per_cycle);
      Buffer.add_string b "  \"input\": \"train\",\n";
      Buffer.add_string b (Printf.sprintf "  \"repeats_min_of\": %d,\n" repeats);
      Buffer.add_string b "  \"results\": [\n";
      let n = List.length results in
      List.iteri
        (fun i
             ( w, seq, bf_name, bf, policy, tuned_wall, trials, phase,
               switches, final_source, final_ratio ) ->
          Buffer.add_string b
            (Printf.sprintf
               "    {\"workload\": %S, \"seq_wall_ns\": %.0f, \"best_fixed\": \
                {\"name\": %S, \"wall_ns\": %.0f, \"speedup_vs_seq\": %.3f}, \
                \"tuned\": {\"policy\": %s, \"key\": %S, \"wall_ns\": %.0f, \
                \"speedup_vs_seq\": %.3f, \"vs_best_fixed\": %.3f, \
                \"search_trials\": %d, \"warm_trials\": 0}, \"adaptive\": \
                {\"runs\": 8, \"phase\": %S, \"switches\": %d, \
                \"final_source\": %S, \"final_ratio_vs_seq\": %.3f}}%s\n"
               w seq bf_name bf (seq /. bf)
               (Xinv_cache.Policy.to_json policy)
               (Xinv_cache.Policy.key policy)
               tuned_wall (seq /. tuned_wall) (tuned_wall /. bf) trials phase
               switches final_source final_ratio
               (if i = n - 1 then "" else ",")))
        results;
      Buffer.add_string b "  ]\n}\n";
      output_string oc (Buffer.contents b);
      close_out oc;
      Printf.printf "wrote %s\n" out

(* ---------- obs overhead smoke (CI gate) ---------- *)

(* The flight recorder's write path must stay in the noise: the same
   configuration is timed with the recorder off and on in back-to-back
   pairs (order alternating, so thermal or scheduler drift hits both sides
   equally) and the gate statistic is the median per-pair ratio.  The 5%
   bound is the contract README advertises. *)
let obs_smoke () =
  let work = Nat.Work.Spin ns_per_cycle in
  let input = Wl.Workload.Train in
  let wl = Wl.Registry.find "SYMM" in
  let reps = 7 in
  let run ~flight =
    let o =
      C.run_request @@ C.Request.make
        ~backend:(`Native { C.native_defaults with C.work; flight })
        ~input ~verify:false ~technique:C.Domore ~threads:2 wl
    in
    C.cost_value o.C.cost
  in
  (* Warm up both variants (pool spin-up, allocator, branch predictors). *)
  ignore (run ~flight:false);
  ignore (run ~flight:true);
  (* One pair = one off run and one on run back to back (order alternating
     to cancel drift); the gate statistic is the MEDIAN of the per-pair
     ratios.  A quiet window yields a clean pair whose ratio is the true
     overhead, so symmetric container noise moves the median far less than
     it moves a min-of-N on either side; a real systematic regression moves
     every pair.  A shared CI box can still produce a skewed attempt, so
     retry up to [attempts] times and pass on the first clean one. *)
  let attempts = 3 in
  let measure_ratio () =
    let ratios =
      Array.init reps (fun i ->
          if i mod 2 = 0 then
            let a = run ~flight:false in
            let b = run ~flight:true in
            b /. a
          else
            let b = run ~flight:true in
            let a = run ~flight:false in
            b /. a)
    in
    Array.sort compare ratios;
    ratios.(reps / 2)
  in
  let rec go attempt =
    let ratio = measure_ratio () in
    Printf.printf
      "obs-smoke[%d/%d]: SYMM.domore.d2 median of %d off/on pair ratios: \
       %.3fx\n"
      attempt attempts reps ratio;
    if ratio <= 1.05 then
      Printf.printf "obs-smoke ok: recorder overhead %.1f%% within 5%% budget\n"
        (Float.max 0. ((ratio -. 1.) *. 100.))
    else if attempt < attempts then go (attempt + 1)
    else begin
      Printf.eprintf
        "obs-smoke FAIL: flight recorder costs %.1f%% wall time (budget 5%%) \
         in %d consecutive attempts\n"
        ((ratio -. 1.) *. 100.)
        attempts;
      exit 1
    end
  in
  go 1

let () =
  let args = Array.to_list Sys.argv in
  let has f = List.mem f args in
  let opt f =
    let rec go = function
      | a :: v :: _ when a = f -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let grain =
    match opt "--grain" with
    | Some g -> (
        match int_of_string_opt g with
        | Some g when g >= 1 -> g
        | _ ->
            prerr_endline "--grain wants a positive integer";
            exit 2)
    | None -> C.native_defaults.C.grain
  in
  if has "--smoke" then smoke ()
  else if has "--cache-bench" then cache_bench ~json:(opt "--json")
  else if has "--perf-smoke" then perf_smoke ~grain ~json:(opt "--json")
  else if has "--obs-smoke" then obs_smoke ()
  else if has "--tuned" then tuned_bench ~json:(opt "--json")
  else begin
    let rows =
      match opt "--from-raw" with
      | Some path -> read_raw_ordered path
      | None -> measure ~grain
    in
    (match opt "--raw" with
    | Some path ->
        let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
        List.iter
          (fun r ->
            Printf.fprintf oc "%s %.0f %s %.0f\n" r.name r.wall_ns
              (stalls_to_string r.stalls) r.analysis_ns)
          rows;
        close_out oc
    | None -> ());
    match opt "--json" with
    | Some out ->
        emit_json ~out ~grain rows;
        Printf.printf "wrote %s\n" out
    | None -> ()
  end
