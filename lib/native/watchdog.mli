(** Bounded waits and cohort cancellation for the native backend.

    The lock-free primitives ({!Nbar}, {!Spsc}, the {!Pool} join) spin
    until a peer makes progress; if that peer died the wait never ends.
    A watchdog turns every such spin into a bounded, cancellable wait:

    - a {e per-run deadline} ([deadline_ms], absolute) and a {e per-wait
      timeout} ([wait_timeout_ms], relative to each wait's start) bound
      the wall-clock of any single wait — exceeding either raises
      {!Stalled} with the role, the awaited resource and the time spent;
    - a {e cancellation token}: the first failing domain publishes its
      exception via {!cancel}; every other domain's waits then raise
      {!Cancelled} so the whole cohort unwinds promptly instead of
      spinning on state the dead domain will never update.

    One watchdog is shared by every domain of one run (all operations are
    thread-safe); an {!unbounded} watchdog still provides cancellation. *)

exception
  Stalled of { role : string; waiting_for : string; waited_ns : float }
(** A bounded wait exceeded its per-wait timeout or the run deadline.
    [role] identifies the waiting domain (e.g. ["worker 2"]), and
    [waiting_for] the awaited resource (e.g. ["barrier"]). *)

exception Cancelled of string
(** A wait observed the cancellation token; payload is the waiter's role.
    The originating failure is available from {!root_cause}. *)

type t

val unbounded : unit -> t
(** No deadline, no per-wait timeout; cancellation only. *)

val create : ?deadline_ms:float -> ?wait_timeout_ms:float -> unit -> t
(** [deadline_ms] starts counting now; [wait_timeout_ms] applies to each
    individual wait.  Omitted bounds are infinite. *)

val wait :
  ?cancellable:bool -> t -> role:string -> for_:string -> (unit -> bool) -> unit
(** [wait t ~role ~for_ pred] spins (with {!Backoff} escalation) until
    [pred ()] holds.
    @raise Cancelled when the token is set (unless [cancellable:false],
      used by the pool join which must keep waiting for unwinding workers).
    @raise Stalled when a time bound is exceeded. *)

val park : t -> role:string -> 'a
(** Block until cancelled or timed out — never returns normally.  Used by
    fault injection to simulate a wedged domain.
    @raise Cancelled when the token is set.
    @raise Stalled when a time bound is exceeded. *)

val cancel : t -> exn -> bool
(** Set the cancellation token.  True iff this call was the first: the
    winner's exception becomes the run's {!root_cause}; later calls are
    secondary failures and are dropped. *)

val cancelled : t -> bool
val root_cause : t -> exn option

val raise_if_cancelled : t -> role:string -> unit

val stalls : t -> int
(** Number of {!Stalled} raises on this watchdog (feeds the
    [watchdog.stall] counter). *)

val grace : t -> t
(** A fresh watchdog whose bounds are one wait window starting {e now}
    (the original per-wait timeout, or 5 s when it was unbounded), with a
    clean cancellation token.  The {!Pool} recovery join uses it after
    cohort cancellation: the original watchdog's absolute deadline may
    already be in the past — often exactly why the join stalled — which
    would make a "second chance" wait on the same watchdog zero-width and
    condemn a shared pool whose workers were unwinding fine. *)
