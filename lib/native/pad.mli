(** Cache-line isolation for contended shared state.

    OCaml heap blocks allocated consecutively share cache lines; for the
    native backend's hot atomics (ring-queue indices, barrier counters,
    per-worker progress cells) that false sharing costs an order of
    magnitude in cross-core traffic.  These helpers re-allocate a block
    with enough trailing filler that its payload field owns its line
    ([bench/bench_contention.exe] measures the effect). *)

val words_per_cache_line : int

val pad_words : int
(** Filler words appended per padded block (two cache lines' worth). *)

val copy_as_padded : 'a -> 'a
(** Re-allocate a heap block with [pad_words] immediate filler words
    appended.  Immediates are returned unchanged.  Safe for any block whose
    consumers only access its declared fields (records, [Atomic.t]). *)

val atomic : 'a -> 'a Atomic.t
(** [Atomic.make] on its own pair of cache lines. *)

val atomic_array : int -> 'a -> 'a Atomic.t array
(** [n] independent padded atomics (one per worker, say): unlike
    [Array.init n (fun _ -> Atomic.make v)], updating one element never
    invalidates a peer's line. *)

type cell = { mutable v : int }

val cell : int -> cell
(** A padded single-writer scratch cell (not atomic: only the owning domain
    may touch it — used for producer/consumer-local index caches). *)
