type t = {
  technique : string;
  domains : int;
  workers : int;
  wall_ns : float;
  tasks : int;
  invocations : int;
  conds : int;
  checks : int;
  misspecs : int;
  barrier_episodes : int;
  stalls : (string * float) list;
}

let make ~technique ~domains ~workers ~wall_ns ~tasks ~invocations ?(conds = 0)
    ?(checks = 0) ?(misspecs = 0) ?(barrier_episodes = 0) ?(stalls = []) () =
  { technique; domains; workers; wall_ns; tasks; invocations; conds; checks;
    misspecs; barrier_episodes; stalls }

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  1e9 *. (Unix.gettimeofday () -. t0)

let speedup ~seq_wall_ns t = if t.wall_ns <= 0. then 1.0 else seq_wall_ns /. t.wall_ns

let dominant_stall t =
  match
    List.fold_left
      (fun acc (k, v) ->
        match acc with Some (_, bv) when bv >= v -> acc | _ -> Some (k, v))
      None t.stalls
  with
  | Some (k, _) -> Some k
  | None -> None

let pp ppf t =
  Format.fprintf ppf
    "%s: %d domains (%d workers), %.3f ms wall, %d tasks / %d invocations"
    t.technique t.domains t.workers (t.wall_ns /. 1e6) t.tasks t.invocations;
  if t.conds > 0 then Format.fprintf ppf ", %d conds" t.conds;
  if t.checks > 0 then Format.fprintf ppf ", %d checks" t.checks;
  if t.misspecs > 0 then Format.fprintf ppf ", %d misspecs" t.misspecs;
  if t.barrier_episodes > 0 then
    Format.fprintf ppf ", %d barrier episodes" t.barrier_episodes;
  match dominant_stall t with
  | Some cause ->
      let total = List.fold_left (fun a (_, v) -> a +. v) 0. t.stalls in
      Format.fprintf ppf ", stalled %.3f ms (mostly %s)" (total /. 1e6) cause
  | None -> ()
