type t = {
  technique : string;
  domains : int;
  workers : int;
  wall_ns : float;
  tasks : int;
  invocations : int;
  conds : int;
  checks : int;
  misspecs : int;
  barrier_episodes : int;
}

let make ~technique ~domains ~workers ~wall_ns ~tasks ~invocations ?(conds = 0)
    ?(checks = 0) ?(misspecs = 0) ?(barrier_episodes = 0) () =
  { technique; domains; workers; wall_ns; tasks; invocations; conds; checks;
    misspecs; barrier_episodes }

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  1e9 *. (Unix.gettimeofday () -. t0)

let speedup ~seq_wall_ns t = if t.wall_ns <= 0. then 1.0 else seq_wall_ns /. t.wall_ns

let pp ppf t =
  Format.fprintf ppf
    "%s: %d domains (%d workers), %.3f ms wall, %d tasks / %d invocations"
    t.technique t.domains t.workers (t.wall_ns /. 1e6) t.tasks t.invocations;
  if t.conds > 0 then Format.fprintf ppf ", %d conds" t.conds;
  if t.checks > 0 then Format.fprintf ppf ", %d checks" t.checks;
  if t.misspecs > 0 then Format.fprintf ppf ", %d misspecs" t.misspecs;
  if t.barrier_episodes > 0 then
    Format.fprintf ppf ", %d barrier episodes" t.barrier_episodes
