type msg = Idle | Job of (unit -> unit) | Quit

type slot = {
  cell : msg Atomic.t;
  done_ : int Atomic.t;  (* jobs completed; read by the dispatcher to join *)
  err : exn option Atomic.t;
}

type t = { slots : slot array; doms : unit Domain.t array; mutable live : bool }

let worker_loop (s : slot) =
  let b = Backoff.create () in
  let running = ref true in
  while !running do
    match Atomic.get s.cell with
    | Idle -> Backoff.once b
    | Quit -> running := false
    | Job f ->
        Backoff.reset b;
        (try f () with e -> Atomic.set s.err (Some e));
        Atomic.set s.cell Idle;
        Atomic.incr s.done_
  done

let create ~workers =
  if workers < 0 then invalid_arg "Pool.create: negative worker count";
  let slots =
    Array.init workers (fun _ ->
        { cell = Atomic.make Idle; done_ = Atomic.make 0; err = Atomic.make None })
  in
  let doms = Array.map (fun s -> Domain.spawn (fun () -> worker_loop s)) slots in
  { slots; doms; live = true }

let workers t = Array.length t.doms
let live t = t.live

let run ?wd ?(on_stall = fun (_ : exn) -> ()) t fns =
  if not t.live then invalid_arg "Pool.run: pool was shut down";
  let n = Array.length fns in
  if n = 0 then ()
  else begin
    if n - 1 > Array.length t.doms then invalid_arg "Pool.run: too many functions";
    let before = Array.init (n - 1) (fun i -> Atomic.get t.slots.(i).done_) in
    for i = 1 to n - 1 do
      let s = t.slots.(i - 1) in
      Atomic.set s.err None;
      Atomic.set s.cell (Job fns.(i))
    done;
    let main_err = ref None in
    (try fns.(0) () with e -> main_err := Some e);
    let join i =
      let s = t.slots.(i - 1) in
      let pred () = Atomic.get s.done_ > before.(i - 1) in
      match wd with
      | None -> Backoff.wait_until pred
      | Some wd -> (
          (* The join must outlive cancellation — cancelled workers are
             still unwinding — so it is non-cancellable. *)
          let role = "pool" and for_ = Printf.sprintf "join of worker %d" i in
          try Watchdog.wait ~cancellable:false wd ~role ~for_ pred
          with Watchdog.Stalled _ as stall -> (
            (* Give the caller one chance to cancel the cohort (close
               queues, poison barriers) and the worker one more timeout
               window to unwind before declaring it wedged.  The window
               comes from a fresh grace watchdog: the original absolute
               deadline may already be in the past — often exactly why
               this join stalled — and a zero-width second chance would
               condemn a shared pool whose workers unwind fine once
               cancelled. *)
            on_stall stall;
            try Watchdog.wait ~cancellable:false (Watchdog.grace wd) ~role ~for_ pred
            with Watchdog.Stalled _ ->
              (* The domain is unrecoverable; abandoning its join would
                 corrupt the next run, so the pool dies with it.  The
                 domain itself is leaked until process exit. *)
              t.live <- false;
              raise stall))
    in
    let join_err = ref None in
    for i = 1 to n - 1 do
      try join i with e -> if !join_err = None then join_err := Some e
    done;
    (match !join_err with Some e -> raise e | None -> ());
    (match !main_err with Some e -> raise e | None -> ());
    Array.iteri
      (fun i s -> if i < n - 1 then
          match Atomic.get s.err with Some e -> raise e | None -> ())
      t.slots
  end

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter (fun s -> Atomic.set s.cell Quit) t.slots;
    Array.iter Domain.join t.doms
  end

let with_pool ~workers f =
  let t = create ~workers in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
