(** Native DOMORE (dissertation Chapter 3) on real domains.

    One scheduler domain executes the sequential regions, evaluates the
    address slice per iteration, detects dynamic dependences in shadow
    memory ({!Xinv_runtime.Shadow}) and streams synchronization conditions
    plus Do-task messages to worker domains over lock-free int queues
    ({!Spsc}).  Workers publish completed iteration numbers in monotonic
    [Atomic] cells; a [Wait] condition spins until the named worker's cell
    reaches the named iteration.

    Wire format (one word per message on the queue): words with low bits
    00/01/10 are {!Xinv_runtime.Sync_cond.to_int} encodings; low bits 11
    (the encoding's reserved tag) frame a Do-task header carrying the inner
    index.  Bit 2 of the header selects the frame shape: clear means a
    single iteration ([hdr; t; j; iter]), set means a chunk of [len]
    consecutive iterations ([hdr; t; j0; len; iter0]) produced when
    [grain > 1].  Words travel through per-worker write-combining buffers
    ({!Spsc.Batch}): one atomic publish per [batch] words instead of one
    per word, with the flushed stream identical to the unbatched one. *)

type config = {
  policy : Xinv_domore.Policy.t;
  workers : int;  (** worker domains, excluding the scheduler *)
  queue_capacity : int;
  work : Work.t;
  grain : int;
      (** max consecutive iterations dispatched as one chunk frame; 1
          (the default) reproduces the per-iteration protocol exactly *)
  batch : int;
      (** write-combining buffer size in words (scheduler side); in
          {!run_duplicated}, owned iterations per completion-cell publish *)
}

val default_config : workers:int -> config

val run :
  pool:Pool.t ->
  ?wd:Watchdog.t ->
  ?fault:Fault.t ->
  ?fr:Xinv_obs.Flight.t ->
  ?config:config ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Nrun.t
(** The scheduler runs on the calling domain, workers on pool domains (the
    pool needs [workers] of them).  Mutates the environment's memory to the
    final state; with deterministic scheduling policies the dispatch — and
    therefore the sync-condition count — matches the simulator exactly.

    All queue operations and cell waits are bounded by [wd] (an internal
    unbounded watchdog provides cancellation when omitted).  A failing
    domain closes every queue and cancels the cohort; the first failure
    is re-raised after the run unwinds.  [fault] sites are combined
    iteration numbers: [Scheduler_die] raises in the scheduler,
    [Worker_raise] in the dispatched worker, [Queue_stall] wedges the
    scheduler before feeding the matched worker, and [Poison_cond] sends
    that worker an unsatisfiable [Wait].

    With a flight recorder [fr] attached (needs [workers + 1] rings:
    scheduler on ring 0, worker [w] on ring [w+1]) the run records
    dispatches, sync-cond sends/recvs, queue samples and stall episodes
    with no effect on the executed schedule. *)

val run_duplicated :
  pool:Pool.t ->
  ?wd:Watchdog.t ->
  ?fault:Fault.t ->
  ?fr:Xinv_obs.Flight.t ->
  ?config:config ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Nrun.t
(** §3.4 duplicated-scheduler variant: every one of [workers] domains runs
    the full scheduling computation against a private shadow memory and
    executes only the iterations it owns — no scheduler domain, no queues,
    synchronization purely through the completion cells.  Flight ring
    mapping: worker [tid] on ring [tid]. *)
