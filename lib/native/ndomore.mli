(** Native DOMORE (dissertation Chapter 3) on real domains.

    One scheduler domain executes the sequential regions, evaluates the
    address slice per iteration, detects dynamic dependences in shadow
    memory ({!Xinv_runtime.Shadow}) and streams synchronization conditions
    plus Do-task messages to worker domains over lock-free int queues
    ({!Spsc}).  Workers publish completed iteration numbers in monotonic
    [Atomic] cells; a [Wait] condition spins until the named worker's cell
    reaches the named iteration.

    Wire format (one word per message on the queue): words with low bits
    00/01/10 are {!Xinv_runtime.Sync_cond.to_int} encodings; low bits 11
    (the encoding's reserved tag) frame a Do-task header carrying the inner
    index, followed by three raw words [t], [j], [iter]. *)

type config = {
  policy : Xinv_domore.Policy.t;
  workers : int;  (** worker domains, excluding the scheduler *)
  queue_capacity : int;
  work : Work.t;
}

val default_config : workers:int -> config

val run :
  pool:Pool.t ->
  ?wd:Watchdog.t ->
  ?fault:Fault.t ->
  ?config:config ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Nrun.t
(** The scheduler runs on the calling domain, workers on pool domains (the
    pool needs [workers] of them).  Mutates the environment's memory to the
    final state; with deterministic scheduling policies the dispatch — and
    therefore the sync-condition count — matches the simulator exactly.

    All queue operations and cell waits are bounded by [wd] (an internal
    unbounded watchdog provides cancellation when omitted).  A failing
    domain closes every queue and cancels the cohort; the first failure
    is re-raised after the run unwinds.  [fault] sites are combined
    iteration numbers: [Scheduler_die] raises in the scheduler,
    [Worker_raise] in the dispatched worker, [Queue_stall] wedges the
    scheduler before feeding the matched worker, and [Poison_cond] sends
    that worker an unsatisfiable [Wait]. *)

val run_duplicated :
  pool:Pool.t ->
  ?wd:Watchdog.t ->
  ?fault:Fault.t ->
  ?config:config ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Nrun.t
(** §3.4 duplicated-scheduler variant: every one of [workers] domains runs
    the full scheduling computation against a private shadow memory and
    executes only the iterations it owns — no scheduler domain, no queues,
    synchronization purely through the completion cells. *)
