(* Cache-line isolation for contended atomics.

   OCaml allocates an [int Atomic.t] as a one-word heap block, and blocks
   allocated back to back land on the same cache line: a ring queue whose
   [head] and [tail] were created consecutively ping-pongs one line between
   the producer and the consumer core on every operation (false sharing).

   [copy_as_padded] re-allocates a block with trailing immediate filler
   words so the payload field gets a cache line (plus spillover against the
   adjacent-line prefetcher) to itself.  The trick is the same one the
   multicore-magic library uses: [Atomic.get]/[Atomic.set] only ever touch
   field 0, so the oversized block behaves exactly like the original.  The
   filler fields hold immediates, which the GC scans without chasing. *)

let words_per_cache_line = 8 (* 64-byte lines, 8-byte words *)

(* Two lines: one for the payload, one to defeat adjacent-line prefetch. *)
let pad_words = 2 * words_per_cache_line

let copy_as_padded (v : 'a) : 'a =
  let o = Obj.repr v in
  if Obj.is_int o then v
  else begin
    let n = Obj.size o in
    let b = Obj.new_block (Obj.tag o) (n + pad_words) in
    for i = 0 to n - 1 do
      Obj.set_field b i (Obj.field o i)
    done;
    for i = n to n + pad_words - 1 do
      Obj.set_field b i (Obj.repr 0)
    done;
    Obj.magic b
  end

let atomic v = copy_as_padded (Atomic.make v)

let atomic_array n v = Array.init n (fun _ -> atomic v)

(* A padded mutable int cell for single-writer state (e.g. the producer's
   cached view of the consumer's index): not atomic, so only the owning
   domain may read or write it. *)
type cell = { mutable v : int }

let cell v = copy_as_padded { v }
