module Ir = Xinv_ir
module Rt = Xinv_runtime
module Sx = Xinv_speccross
module Obs = Xinv_obs

type config = {
  workers : int;
  sig_kind : Rt.Signature.kind;
  checkpoint_every : int;
  spec_distance : int;
  mode_of : string -> Sx.Runtime.mode;
  inject_misspec : (int * int) option;
  work : Work.t;
  queue_capacity : int;
  grain : int;
}

let default_config ~workers =
  {
    workers;
    sig_kind = Rt.Signature.Range;
    checkpoint_every = 1000;
    spec_distance = max_int / 4;
    mode_of = (fun _ -> Sx.Runtime.M_doall);
    inject_misspec = None;
    work = Work.Off;
    queue_capacity = 1024;
    grain = 1;
  }

(* Signature request, one per speculative task.  [r_started] is the dpos
   snapshot taken at task entry; [r_g] the task's global position. *)
type req = {
  r_gen : int;
  r_worker : int;
  r_epoch : int;
  r_g : int;
  r_sig : Rt.Signature.t;
  r_started : int array;
  r_force : bool;
}

exception Abort_now

(* Exceptions raised while executing a *speculative* task on possibly
   inconsistent state are contained: the task is submitted as a forced
   conflict and recovery re-executes it non-speculatively (where a
   deterministic bug would then surface for real).  Runtime faults and
   cancellation are *not* misspeculation — they must escape and unwind
   the whole cohort. *)
let containable = function
  | Out_of_memory | Stack_overflow -> false
  | Fault.Injected _ | Watchdog.Stalled _ | Watchdog.Cancelled _
  | Spsc.Closed | Nbar.Poisoned ->
      false
  | _ -> true

let run ~pool ?wd ?fault ?fr ?config (p : Ir.Program.t) env =
  let cfg = match config with Some c -> c | None -> default_config ~workers:3 in
  let workers = cfg.workers in
  assert (workers > 0);
  (* Flight ring mapping: worker w -> ring w, checker -> ring [workers]. *)
  let ev k ~domain ~a ~b =
    match fr with Some f -> Obs.Flight.record f ~domain k ~a ~b | None -> ()
  in
  if cfg.grain <= 0 then invalid_arg "Nspec.run: grain must be positive";
  (* A block is checked as one unit at its last task's position, so its
     whole extent counts against the speculative range: clamp the grain so
     chunking can never widen the misspeculation window past the
     spec-distance throttle. *)
  let grain = Stdlib.max 1 (Stdlib.min cfg.grain (Stdlib.max 1 (cfg.spec_distance / 2))) in
  if workers > Pool.workers pool then invalid_arg "Nspec.run: pool too small";
  let wd = match wd with Some w -> w | None -> Watchdog.unbounded () in
  let mem = env.Ir.Env.mem in
  let inners = Array.of_list p.Ir.Program.inners in
  let ninners = Array.length inners in
  let nepochs = p.Ir.Program.outer_trip * ninners in
  Array.iter
    (fun (il : Ir.Program.inner) ->
      match cfg.mode_of il.Ir.Program.ilabel with
      | Sx.Runtime.M_domore _ ->
          invalid_arg "Nspec.run: M_domore epochs are not supported natively"
      | Sx.Runtime.M_doall | Sx.Runtime.M_localwrite -> ())
    inners;
  let ckpts = Rt.Checkpoint.create () in
  Rt.Checkpoint.save ckpts ~epoch:0 mem;
  let env_of_epoch e =
    let t = e / ninners in
    (inners.(e mod ninners), Ir.Env.with_outer env t)
  in
  let hot_arrays =
    List.concat_map
      (fun (st : Ir.Stmt.t) ->
        List.map (fun (a : Ir.Access.t) -> a.Ir.Access.base) st.Ir.Stmt.writes)
      (Ir.Program.body_stmts p)
    |> List.sort_uniq String.compare
  in
  let hot arr = List.mem arr hot_arrays in
  let irreversible =
    Array.map
      (fun (il : Ir.Program.inner) ->
        List.exists
          (fun (st : Ir.Stmt.t) -> st.Ir.Stmt.side_effect)
          (il.Ir.Program.pre @ il.Ir.Program.body))
      inners
  in
  (* Global task position of each epoch's first task; trip counts read only
     input data the region never writes, so this pre-pass is safe. *)
  let epoch_base = Array.make (nepochs + 1) 0 in
  for e = 0 to nepochs - 1 do
    let il, env_t = env_of_epoch e in
    epoch_base.(e + 1) <- epoch_base.(e) + il.Ir.Program.trip env_t
  done;

  (* ---- shared state ---- *)
  let dummy_req =
    { r_gen = -1; r_worker = 0; r_epoch = 0; r_g = 0;
      r_sig = Rt.Signature.create cfg.sig_kind; r_started = [||]; r_force = false }
  in
  let qs =
    Array.init workers (fun _ ->
        Spsc.create ~dummy:dummy_req ~capacity:cfg.queue_capacity)
  in
  (* The frontier arrays are the contended heart of the protocol: every
     worker writes its own slot while every peer polls all of them, so each
     slot lives on its own cache line ({!Pad}), as do the scalar flags the
     throttle and rally predicates spin on. *)
  let tpos = Pad.atomic_array workers (-1) in
  let dpos = Pad.atomic_array workers (-1) in
  let progress = Pad.atomic_array workers (-1) in
  let abort = Pad.atomic false in
  let checker_gen = Pad.atomic 0 in
  let submitted = Pad.atomic 0 in
  let processed = Pad.atomic 0 in
  let submitted_total = Pad.atomic 0 in
  let misspec_ctr = Pad.atomic 0 in
  let comparison_ctr = Pad.atomic 0 in
  let max_epoch = Pad.atomic 0 in
  let ckpt_done = Pad.atomic (-1) in
  let io_done = Pad.atomic (-1) in
  let prune_floor = Pad.atomic (-1) in
  let redo_from = Pad.atomic 0 in
  let redo_to = Pad.atomic 0 in
  let resume_from = Pad.atomic 0 in
  let finished = Pad.atomic false in
  let injected = Pad.atomic false in
  let bar = Nbar.create ~parties:workers in
  let stat = Stallcat.create () in
  let tasks_total = ref 0 in
  (* worker 0 runs on the calling domain *)
  let aborted () = Atomic.get abort in
  let role_of w = Printf.sprintf "worker %d" w in
  let wait_or_abort ?(cause = Stallcat.Rally) ~w ~for_ pred =
    if not (pred () || aborted ()) then
      Stallcat.timed ?fr ~domain:w stat cause (fun () ->
          Watchdog.wait wd ~role:(role_of w) ~for_ (fun () ->
              pred () || aborted ()))
  in
  let episodes = Array.make workers 0 in
  let bar_wait ~w =
    ev Obs.Flight.Barrier_arrive ~domain:w ~a:episodes.(w) ~b:0;
    Stallcat.timed ?fr ~domain:w stat Stallcat.Barrier_wait (fun () ->
        Nbar.wait ~wd ~role:(role_of w) bar);
    ev Obs.Flight.Barrier_release ~domain:w ~a:episodes.(w) ~b:0;
    episodes.(w) <- episodes.(w) + 1
  in
  (* A queue-stalled worker keeps executing but stops submitting
     signatures, starving the checker — the failure the watchdog's
     bounded waits must surface. *)
  let q_stalled = Array.make workers false in
  let all_progress_ge e =
    let ok = ref true in
    for w' = 0 to workers - 1 do
      if Atomic.get progress.(w') < e then ok := false
    done;
    !ok
  in
  let drained () = Atomic.get processed >= Atomic.get submitted in

  (* ---- checker domain ---- *)
  let checker () =
    let cur_gen = ref 0 in
    let pending = Array.init workers (fun _ -> Queue.create ()) in
    (* Per worker, newest-first: (global position, epoch, signature). *)
    let storage = Array.make workers ([] : (int * int * Rt.Signature.t) list) in
    let floor_seen = ref (-1) in
    let drain () =
      let any = ref false in
      for w = 0 to workers - 1 do
        let continue_ = ref true in
        while !continue_ do
          match Spsc.try_pop qs.(w) with
          | None -> continue_ := false
          | Some r ->
              any := true;
              if r.r_gen = !cur_gen then Queue.add r pending.(w)
        done
      done;
      !any
    in
    let prune () =
      let fl = Atomic.get prune_floor in
      if fl > !floor_seen then begin
        floor_seen := fl;
        for w = 0 to workers - 1 do
          storage.(w) <- List.filter (fun (g, _, _) -> g > fl) storage.(w)
        done
      end
    in
    (* A request is processable once every other worker's signatures for
       epochs below it are complete (its frontier passed the epoch base). *)
    let ready (r : req) =
      let need = epoch_base.(r.r_epoch) - 1 in
      let ok = ref true in
      for w' = 0 to workers - 1 do
        if w' <> r.r_worker && Atomic.get dpos.(w') < need then ok := false
      done;
      !ok
    in
    let process (r : req) =
      Fault.inject fault Fault.Checker_die ~domain:workers
        ~site:(Atomic.get processed);
      let conflict = ref r.r_force in
      for w' = 0 to workers - 1 do
        if w' <> r.r_worker then begin
          let from_pos = r.r_started.(w') in
          let rec scan = function
            | [] -> ()
            | (g', e', sg') :: rest ->
                if g' > from_pos then begin
                  if e' < r.r_epoch then begin
                    Atomic.incr comparison_ctr;
                    if Rt.Signature.intersects r.r_sig sg' then conflict := true
                  end;
                  scan rest
                end
            (* positions descend: nothing below from_pos matters *)
          in
          scan storage.(w')
        end
      done;
      storage.(r.r_worker) <- (r.r_g, r.r_epoch, r.r_sig) :: storage.(r.r_worker);
      if !conflict then begin
        Array.iter Queue.clear pending;
        Array.fill storage 0 workers [];
        incr cur_gen;
        Atomic.set checker_gen !cur_gen;
        Atomic.incr misspec_ctr;
        ev Obs.Flight.Misspec ~domain:workers ~a:r.r_epoch ~b:r.r_worker;
        Atomic.set abort true;
        (* abort is published before processed so a worker that observes the
           full drain also observes the abort *)
        Atomic.incr processed
      end
      else Atomic.incr processed
    in
    let b = Backoff.create () in
    let running = ref true in
    while !running do
      let any = drain () in
      prune ();
      (* Process pending requests in ascending global position, so every
         signature a later request's window needs is in storage first. *)
      let pick () =
        let best = ref (-1) in
        for w = 0 to workers - 1 do
          match Queue.peek_opt pending.(w) with
          | Some r ->
              if !best < 0 || r.r_g < (Queue.peek pending.(!best)).r_g then
                best := w
          | None -> ()
        done;
        !best
      in
      let progressed = ref true in
      while !progressed do
        progressed := false;
        let b = pick () in
        if b >= 0 then begin
          let r = Queue.peek pending.(b) in
          if ready r then begin
            (* The frontiers [ready] just read prove every signature from
               epochs below [r]'s is already *pushed* — but possibly still
               sitting in a queue.  Drain now and re-pick: a just-drained
               request can sort below [r] and must be processed first, or
               its signature would silently miss [r]'s comparison window. *)
            drain () |> ignore;
            let b' = pick () in
            if b' >= 0 && Queue.peek pending.(b') == r then begin
              ignore (Queue.pop pending.(b'));
              process r;
              (* a conflict purged the pending queues *)
              drain () |> ignore
            end;
            progressed := true
          end
        end
      done;
      let empty =
        Array.for_all Queue.is_empty pending
        && Array.for_all (fun q -> Spsc.length q = 0) qs
      in
      if Atomic.get finished && empty then running := false
      else if Watchdog.cancelled wd then running := false
      else if any then Backoff.reset b
      else Backoff.once b
    done
  in

  (* ---- per-epoch execution ---- *)
  let exec_pre env_t (il : Ir.Program.inner) =
    (* Replicated on every worker (privatizable per-invocation slots). *)
    List.iter
      (fun (s : Ir.Stmt.t) ->
        Work.burn cfg.work (s.Ir.Stmt.cost env_t);
        s.Ir.Stmt.exec env_t)
      il.Ir.Program.pre
  in
  let plain_body env_j (il : Ir.Program.inner) =
    List.iter
      (fun (s : Ir.Stmt.t) ->
        Work.burn cfg.work (s.Ir.Stmt.cost env_j);
        s.Ir.Stmt.exec env_j)
      il.Ir.Program.body
  in
  let submit ~w req =
    (* Fast path: the checker normally keeps the ring drained.  Only a
       genuinely full queue pays the blocking (and stall-accounted) push. *)
    if not (Spsc.try_push qs.(w) req) then
      Stallcat.timed ?fr ~domain:w stat Stallcat.Queue_full (fun () ->
          Spsc.push ~wd ~role:(role_of w) qs.(w) req);
    ev Obs.Flight.Queue_sample ~domain:w ~a:w ~b:(Spsc.length qs.(w))
  in
  let throttle ~w g =
    (* Publish first, then wait for every trailing worker to come within the
       speculative range (dissertation 4.2.1).  A stalled worker keeps
       executing but stops publishing: its frozen frontier starves the
       peers' range throttle, which the watchdog then bounds. *)
    if not q_stalled.(w) then Atomic.set tpos.(w) g;
    if aborted () then raise Abort_now;
    let floor_ = g - cfg.spec_distance + 1 in
    if floor_ > 0 then
      for w' = 0 to workers - 1 do
        if w' <> w && Atomic.get tpos.(w') < floor_ then begin
          wait_or_abort ~cause:Stallcat.Throttle ~w
            ~for_:(Printf.sprintf "spec-range throttle behind worker %d" w')
            (fun () -> Atomic.get tpos.(w') >= floor_);
          if aborted () then raise Abort_now
        end
      done
  in
  (* [task] executes the block and returns the instrumented addresses it
     touched (footprints evaluated iteration by iteration, each just before
     its body runs, exactly as the unchunked protocol did). *)
  let run_task ~w ~gen ~epoch ~g task =
    ev Obs.Flight.Dispatch ~domain:w ~a:g ~b:epoch;
    if q_stalled.(w) then
      (* Stalled signature stream: execute the task but never submit it,
         and freeze the frontier — downstream waits must time out. *)
      (try ignore (task ()) with e when containable e -> ())
    else begin
      (* Everything of mine below [g] is already enqueued. *)
      Atomic.set dpos.(w) (g - 1);
      let started = Array.map Atomic.get dpos in
      let sg = Rt.Signature.create cfg.sig_kind in
      let force = ref false in
      (try Rt.Signature.add_list sg (task ())
       with e when containable e -> force := true);
      (match cfg.inject_misspec with
      | Some (ie, iw) when ie = epoch && iw = w && not (Atomic.get injected) ->
          Atomic.set injected true;
          force := true
      | _ -> ());
      Atomic.incr submitted;
      Atomic.incr submitted_total;
      submit ~w
        { r_gen = gen; r_worker = w; r_epoch = epoch; r_g = g; r_sig = sg;
          r_started = started; r_force = !force };
      Atomic.set dpos.(w) g
    end
  in
  (* Submit a no-signature forced conflict: used when speculative state is
     so inconsistent that even scheduling-side evaluation raises. *)
  let submit_forced ~w ~gen ~epoch ~g =
    Atomic.set dpos.(w) (g - 1);
    let started = Array.map Atomic.get dpos in
    Atomic.incr submitted;
    Atomic.incr submitted_total;
    submit ~w
      { r_gen = gen; r_worker = w; r_epoch = epoch; r_g = g;
        r_sig = Rt.Signature.create cfg.sig_kind; r_started = started;
        r_force = true };
    Atomic.set dpos.(w) g
  in
  let exec_epoch_spec ~w ~gen e =
    let il, env_t = env_of_epoch e in
    (try exec_pre env_t il
     with ex when containable ex ->
       submit_forced ~w ~gen ~epoch:e ~g:epoch_base.(e);
       raise Abort_now);
    let trip = il.Ir.Program.trip env_t in
    if w = 0 then tasks_total := !tasks_total + trip;
    match cfg.mode_of il.Ir.Program.ilabel with
    | Sx.Runtime.M_domore _ -> assert false
    | Sx.Runtime.M_doall ->
        (* Block-cyclic blocks of [grain] tasks: one throttle, one signature
           and one checking request per block, positioned (like any task) at
           the block's last global position.  Grain 1 is the original
           task-per-iteration protocol. *)
        let nblocks = (trip + grain - 1) / grain in
        let b = ref w in
        while !b < nblocks do
          if aborted () then raise Abort_now;
          let j0 = !b * grain in
          let j1 = Stdlib.min trip (j0 + grain) - 1 in
          let g = epoch_base.(e) + j1 in
          throttle ~w g;
          run_task ~w ~gen ~epoch:e ~g (fun () ->
              let acc = ref [] in
              for j = j0 to j1 do
                let env_j = Ir.Env.with_inner env_t j in
                let addrs = Ir.Footprint.body_filtered ~hot env_j il in
                plain_body env_j il;
                acc := List.rev_append addrs !acc
              done;
              !acc);
          b := !b + workers
        done
    | Sx.Runtime.M_localwrite ->
        for j = 0 to trip - 1 do
          if aborted () then raise Abort_now;
          let env_j = Ir.Env.with_inner env_t j in
          let g = epoch_base.(e) + j in
          throttle ~w g;
          let owned (st : Ir.Stmt.t) =
            List.exists
              (fun (a : Ir.Access.t) ->
                let idx = Ir.Expr.eval env_j a.Ir.Access.index in
                let size = Ir.Memory.size mem a.Ir.Access.base in
                idx * workers / size = w)
              st.Ir.Stmt.writes
          in
          let mine =
            match List.exists owned il.Ir.Program.body with
            | m -> Some m
            | exception ex when containable ex -> None
          in
          (match mine with
          | None ->
              (* Ownership itself read garbage: force a conflict. *)
              submit_forced ~w ~gen ~epoch:e ~g;
              raise Abort_now
          | Some false -> Atomic.set dpos.(w) g
          | Some true ->
              run_task ~w ~gen ~epoch:e ~g (fun () ->
                  let addrs = Ir.Footprint.body_filtered ~hot env_j il in
                  List.iter
                    (fun (stm : Ir.Stmt.t) ->
                      if stm.Ir.Stmt.writes = [] || owned stm then begin
                        Work.burn cfg.work (stm.Ir.Stmt.cost env_j);
                        stm.Ir.Stmt.exec env_j
                      end)
                    il.Ir.Program.body;
                  addrs))
        done
  in
  let exec_epoch_nonspec w e =
    let il, env_t = env_of_epoch e in
    if w = 0 then exec_pre env_t il;
    bar_wait ~w;
    let trip = il.Ir.Program.trip env_t in
    (match cfg.mode_of il.Ir.Program.ilabel with
    | Sx.Runtime.M_domore _ -> assert false
    | Sx.Runtime.M_doall ->
        let j = ref w in
        while !j < trip do
          plain_body (Ir.Env.with_inner env_t !j) il;
          j := !j + workers
        done
    | Sx.Runtime.M_localwrite ->
        for j = 0 to trip - 1 do
          let env_j = Ir.Env.with_inner env_t j in
          List.iter
            (fun (stm : Ir.Stmt.t) ->
              if stm.Ir.Stmt.writes = [] then begin
                Work.burn cfg.work (stm.Ir.Stmt.cost env_j);
                if w = 0 then stm.Ir.Stmt.exec env_j
              end
              else if
                List.exists
                  (fun (a : Ir.Access.t) ->
                    let idx = Ir.Expr.eval env_j a.Ir.Access.index in
                    let size = Ir.Memory.size mem a.Ir.Access.base in
                    idx * workers / size = w)
                  stm.Ir.Stmt.writes
              then begin
                Work.burn cfg.work (stm.Ir.Stmt.cost env_j);
                stm.Ir.Stmt.exec env_j
              end)
            il.Ir.Program.body
        done)
  in

  (* ---- recovery ---- *)
  let recover w gen =
    let role = role_of w in
    bar_wait ~w;
    (* All workers rallied: nothing new is being pushed or executed. *)
    if w = 0 then begin
      Stallcat.timed ?fr ~domain:w stat Stallcat.Checker_lag (fun () ->
          Watchdog.wait wd ~role ~for_:"checker generation bump" (fun () ->
              Atomic.get checker_gen > !gen));
      let ck = Rt.Checkpoint.restore ckpts ~into:mem in
      Atomic.set redo_from ck;
      Atomic.set redo_to (Stdlib.min (Atomic.get max_epoch) (nepochs - 1));
      let rf = Atomic.get redo_to + 1 in
      Atomic.set resume_from rf;
      Atomic.set submitted 0;
      Atomic.set processed 0;
      let base = epoch_base.(rf) - 1 in
      for w' = 0 to workers - 1 do
        Atomic.set tpos.(w') base;
        Atomic.set dpos.(w') base;
        Atomic.set progress.(w') (rf - 1)
      done;
      (* Everyone already exited their abort-escaping waits (they are at the
         barrier), so the flag can drop before they resume. *)
      Atomic.set abort false
    end;
    bar_wait ~w;
    gen := Atomic.get checker_gen;
    (* Re-execute the misspeculated epochs with real non-speculative
       barriers, then checkpoint the resume point. *)
    for e' = Atomic.get redo_from to Atomic.get redo_to do
      exec_epoch_nonspec w e';
      bar_wait ~w
    done;
    if w = 0 then begin
      let rf = Atomic.get resume_from in
      Rt.Checkpoint.save ckpts ~epoch:rf mem;
      Atomic.set ckpt_done rf;
      Atomic.set prune_floor (epoch_base.(rf) - 1)
    end;
    bar_wait ~w;
    Atomic.get resume_from
  in

  (* ---- worker ---- *)
  let worker w () =
    let role = role_of w in
    let e = ref 0 in
    let gen = ref 0 in
    let running = ref true in
    while !running do
      if aborted () then e := recover w gen
      else if !e >= nepochs then begin
        if not q_stalled.(w) then begin
          Atomic.set progress.(w) nepochs;
          Atomic.set tpos.(w) epoch_base.(nepochs);
          Atomic.set dpos.(w) epoch_base.(nepochs)
        end;
        wait_or_abort ~w ~for_:"peers to finish" (fun () ->
            all_progress_ge nepochs);
        wait_or_abort ~cause:Stallcat.Checker_lag ~w ~for_:"checker drain" drained;
        if aborted () then e := recover w gen
        else begin
          if w = 0 then Atomic.set finished true;
          running := false
        end
      end
      else begin
        if not q_stalled.(w) then Atomic.set progress.(w) !e;
        (* Fault sites are epoch ordinals. *)
        Fault.inject fault Fault.Worker_raise ~domain:w ~site:!e;
        if w = 0 then
          Fault.inject fault Fault.Scheduler_die ~domain:0 ~site:!e;
        if Fault.fires fault Fault.Queue_stall ~domain:w ~site:!e then
          q_stalled.(w) <- true;
        if Fault.fires fault Fault.Poison_cond ~domain:w ~site:!e then
          Watchdog.park wd ~role;
        if Atomic.get max_epoch < !e then begin
          (* monotonic max; racy in-between values are still monotone *)
          let rec bump () =
            let cur = Atomic.get max_epoch in
            if cur < !e && not (Atomic.compare_and_set max_epoch cur !e) then bump ()
          in
          bump ()
        end;
        if
          cfg.checkpoint_every > 0
          && !e > 0
          && !e mod cfg.checkpoint_every = 0
          && Atomic.get ckpt_done < !e
        then begin
          if w = 0 then begin
            wait_or_abort ~w ~for_:"checkpoint rally" (fun () ->
                all_progress_ge !e);
            wait_or_abort ~cause:Stallcat.Checker_lag ~w ~for_:"checker drain" drained;
            if not (aborted ()) then begin
              Rt.Checkpoint.save ckpts ~epoch:!e mem;
              Atomic.set prune_floor (epoch_base.(!e) - 1);
              Atomic.set ckpt_done !e
            end
          end
          else
            wait_or_abort ~w ~for_:"checkpoint" (fun () ->
                Atomic.get ckpt_done >= !e)
        end;
        if aborted () then e := recover w gen
        else if irreversible.(!e mod ninners) then begin
          (* Rally, drain, one worker executes the epoch exactly once,
             checkpoint, resume (§4.2.2). *)
          if w = 0 then begin
            wait_or_abort ~w ~for_:"irreversible-epoch rally" (fun () ->
                all_progress_ge !e);
            wait_or_abort ~cause:Stallcat.Checker_lag ~w ~for_:"checker drain" drained;
            if not (aborted ()) then begin
              let il, env_t = env_of_epoch !e in
              List.iter
                (fun (st : Ir.Stmt.t) ->
                  Work.burn cfg.work (st.Ir.Stmt.cost env_t);
                  st.Ir.Stmt.exec env_t)
                il.Ir.Program.pre;
              let trip = il.Ir.Program.trip env_t in
              tasks_total := !tasks_total + trip;
              for j = 0 to trip - 1 do
                let env_j = Ir.Env.with_inner env_t j in
                List.iter
                  (fun (st : Ir.Stmt.t) ->
                    Work.burn cfg.work (st.Ir.Stmt.cost env_j);
                    st.Ir.Stmt.exec env_j)
                  il.Ir.Program.body
              done;
              Rt.Checkpoint.save ckpts ~epoch:(!e + 1) mem;
              Atomic.set prune_floor (epoch_base.(!e + 1) - 1);
              Atomic.set io_done !e
            end
          end
          else
            wait_or_abort ~w ~for_:"irreversible epoch" (fun () ->
                Atomic.get io_done >= !e);
          if aborted () then e := recover w gen
          else begin
            Atomic.set tpos.(w) (epoch_base.(!e + 1) - 1);
            Atomic.set dpos.(w) (epoch_base.(!e + 1) - 1);
            ev Obs.Flight.Epoch_commit ~domain:w ~a:!e ~b:0;
            incr e
          end
        end
        else begin
          Atomic.set tpos.(w) (epoch_base.(!e) - 1);
          Atomic.set dpos.(w) (epoch_base.(!e) - 1);
          (try
             exec_epoch_spec ~w ~gen:!gen !e;
             if not (aborted ()) then begin
               ev Obs.Flight.Epoch_commit ~domain:w ~a:!e ~b:0;
               incr e
             end
           with Abort_now -> ())
        end
      end
    done
  in
  let cancel_cohort e =
    ignore (Watchdog.cancel wd e);
    Array.iter Spsc.close qs;
    Nbar.poison bar
  in
  let guard fn () =
    try fn ()
    with e -> (
      let first = Watchdog.cancel wd e in
      Array.iter Spsc.close qs;
      Nbar.poison bar;
      match e with
      | (Watchdog.Cancelled _ | Spsc.Closed | Nbar.Poisoned) when not first ->
          ()
      | _ -> raise e)
  in
  let fns =
    Array.init (workers + 1) (fun i ->
        if i = 0 then guard (fun () -> worker 0 ())
        else if i <= workers - 1 then guard (fun () -> worker i ())
        else guard checker)
  in
  let wall_ns =
    Nrun.timed (fun () ->
        try Pool.run ~wd ~on_stall:cancel_cohort pool fns
        with e -> (
          match Watchdog.root_cause wd with
          | Some root when root != e -> raise root
          | _ -> raise e))
  in
  Nrun.make ~technique:"native-SPECCROSS" ~domains:(workers + 1) ~workers ~wall_ns
    ~tasks:!tasks_total ~invocations:(Ir.Program.invocations p)
    ~checks:(Atomic.get submitted_total) ~misspecs:(Atomic.get misspec_ctr)
    ~barrier_episodes:(Nbar.waits bar) ~stalls:(Stallcat.to_list stat) ()
