type t = { parties : int; count : int Atomic.t; sense : int Atomic.t }

let create ~parties =
  if parties <= 0 then invalid_arg "Nbar.create: parties must be positive";
  { parties; count = Atomic.make 0; sense = Atomic.make 0 }

let wait t =
  let s = Atomic.get t.sense in
  if Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
    (* Last arrival resets and flips the sense, releasing the others. *)
    Atomic.set t.count 0;
    Atomic.set t.sense (s + 1)
  end
  else Backoff.wait_until (fun () -> Atomic.get t.sense <> s)

let waits t = Atomic.get t.sense
