exception Poisoned

type t = {
  parties : int;
  count : int Atomic.t;
  sense : int Atomic.t;
  poisoned_ : bool Atomic.t;
}

let create ~parties =
  if parties <= 0 then invalid_arg "Nbar.create: parties must be positive";
  (* Each atomic on its own cache line: arrivals hammer [count] while
     released parties spin on [sense]; sharing a line would make every
     arrival invalidate every spinner. *)
  {
    parties;
    count = Pad.atomic 0;
    sense = Pad.atomic 0;
    poisoned_ = Pad.atomic false;
  }

let poison t = Atomic.set t.poisoned_ true
let poisoned t = Atomic.get t.poisoned_

let wait ?wd ?(role = "party") t =
  if Atomic.get t.poisoned_ then raise Poisoned;
  let s = Atomic.get t.sense in
  if Atomic.fetch_and_add t.count 1 = t.parties - 1 then begin
    (* Last arrival resets and flips the sense, releasing the others. *)
    Atomic.set t.count 0;
    Atomic.set t.sense (s + 1)
  end
  else begin
    let pred () = Atomic.get t.sense <> s || Atomic.get t.poisoned_ in
    (match wd with
    | Some wd -> Watchdog.wait wd ~role ~for_:"barrier" pred
    | None -> Backoff.wait_until pred);
    (* A poison racing a legitimate release lets the release win: only a
       party still stuck on the old sense reports the poisoning. *)
    if Atomic.get t.sense = s then raise Poisoned
  end

let waits t = Atomic.get t.sense
