(** Bounded lock-free single-producer/single-consumer ring queue.

    The native-backend counterpart of the simulator's {!Xinv_sim.Channel}:
    the DOMORE scheduler domain streams {!Xinv_runtime.Sync_cond.to_int}
    words to each worker domain through one of these, and SPECCROSS workers
    stream signature requests to the checker domain.

    Exactly one domain may push and exactly one may pop.  [head] and [tail]
    are monotonic [Atomic] counters; each side writes only its own counter,
    so every operation is one plain array access plus one seq_cst store —
    no CAS loops.  The slot write happens before the counter store, which
    gives the peer happens-before on the payload. *)

type 'a t

exception Closed

val create : dummy:'a -> capacity:int -> 'a t
(** [capacity] is rounded up to a power of two.  [dummy] fills empty slots
    (popped slots are reset to it so the queue never pins dead payloads). *)

val capacity : 'a t -> int

val close : 'a t -> unit
(** Marks the queue closed (any domain may call it — cancellation runs on
    whichever domain failed first).  Blocked producers and consumers wake
    with {!Closed}; the consumer first drains items already enqueued. *)

val closed : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer only.  False when full. *)

val push : ?wd:Watchdog.t -> ?role:string -> 'a t -> 'a -> unit
(** Producer only.  Blocks (with backoff) while full.
    @raise Closed when the queue is or becomes closed.
    @raise Watchdog.Stalled / Watchdog.Cancelled per [wd]'s bounds. *)

val try_pop : 'a t -> 'a option
(** Consumer only.  [None] when empty. *)

val pop : ?wd:Watchdog.t -> ?role:string -> 'a t -> 'a
(** Consumer only.  Blocks (with backoff) while empty.
    @raise Closed when the queue is closed and fully drained.
    @raise Watchdog.Stalled / Watchdog.Cancelled per [wd]'s bounds. *)

val length : 'a t -> int
(** Racy snapshot of the occupancy — exact for the producer/consumer
    themselves, approximate for third parties (the scheduling policy's
    load sampling tolerates staleness). *)
