(** Bounded lock-free single-producer/single-consumer ring queue.

    The native-backend counterpart of the simulator's {!Xinv_sim.Channel}:
    the DOMORE scheduler domain streams {!Xinv_runtime.Sync_cond.to_int}
    words to each worker domain through one of these, and SPECCROSS workers
    stream signature requests to the checker domain.

    Exactly one domain may push and exactly one may pop.  [head] and [tail]
    are monotonic [Atomic] counters padded onto their own cache lines; each
    side writes only its own counter and keeps a local cache of the peer's,
    so a steady-state operation touches no contended line beyond its own
    counter's.  The slot write happens before the counter store, which gives
    the peer happens-before on the payload.

    The bulk operations ({!try_push_array}, {!pop_chunk}, {!Batch}) amortize
    the expensive seq_cst counter store over many items: one atomic publish
    per batch instead of one per element. *)

type 'a t

exception Closed

val create : dummy:'a -> capacity:int -> 'a t
(** The queue admits exactly [capacity] items (the backing buffer is rounded
    up to a power of two internally, but occupancy is bounded by the
    requested figure — a capacity-5 queue rejects a sixth push).  [dummy]
    fills empty slots (popped slots are reset to it so the queue never pins
    dead payloads). *)

val capacity : 'a t -> int
(** The requested capacity: the exact maximum occupancy. *)

val close : 'a t -> unit
(** Marks the queue closed (any domain may call it — cancellation runs on
    whichever domain failed first).  Blocked producers and consumers wake
    with {!Closed}; the consumer first drains items already enqueued. *)

val closed : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** Producer only.  False when full. *)

val try_push_array : 'a t -> 'a array -> pos:int -> len:int -> int
(** Producer only.  Writes as many of [src.(pos .. pos+len-1)] as currently
    fit and publishes them with a {e single} atomic store; returns the
    number written (0 when full). *)

val push : ?wd:Watchdog.t -> ?role:string -> 'a t -> 'a -> unit
(** Producer only.  Blocks (with backoff) while full.
    @raise Closed when the queue is or becomes closed.
    @raise Watchdog.Stalled / Watchdog.Cancelled per [wd]'s bounds. *)

val try_pop : 'a t -> 'a option
(** Consumer only.  [None] when empty. *)

val pop_chunk : 'a t -> 'a array -> pos:int -> len:int -> int
(** Consumer only.  Pops up to [len] items into [dst.(pos ..)] with a
    single atomic store of the head index; returns the number popped (0
    when empty — closure must be checked separately). *)

val pop : ?wd:Watchdog.t -> ?role:string -> 'a t -> 'a
(** Consumer only.  Blocks (with backoff) while empty.
    @raise Closed when the queue is closed and fully drained.
    @raise Watchdog.Stalled / Watchdog.Cancelled per [wd]'s bounds. *)

val length : 'a t -> int
(** Racy snapshot of the occupancy — exact for the producer/consumer
    themselves, approximate for third parties (the scheduling policy's
    load sampling tolerates staleness). *)

(** Producer-side write-combining buffer: [push] accumulates items locally
    and publishes them in ring-sized bursts, so the per-item cost drops to
    a plain array store.  The flushed stream is byte-for-byte the same
    sequence a plain {!push} loop would have produced — framing only, no
    reordering (property-tested against the unbatched path). *)
module Batch : sig
  type 'a queue := 'a t

  type 'a b

  val create : ?size:int -> 'a queue -> 'a b
  (** A buffer of [size] (default 32) items over [q].  Producer only. *)

  val queue : 'a b -> 'a queue

  val pending : 'a b -> int
  (** Items buffered locally, not yet visible to the consumer. *)

  val size : 'a b -> int

  val try_flush : 'a b -> bool
  (** Publish as much of the buffer as currently fits (one atomic store);
      true when the buffer drained completely. *)

  val flush : ?wd:Watchdog.t -> ?role:string -> 'a b -> unit
  (** Blocking {!try_flush} until the buffer drains.
      @raise Closed if the queue closes first. *)

  val add : 'a b -> 'a -> bool
  (** Append without blocking (auto-[try_flush] when the buffer fills);
      false if neither buffer nor ring had room — the caller decides how to
      wait (see [Ndomore]'s all-queues flush loop, which must not block on
      one full queue while holding another worker's wake-up words). *)

  val push : ?wd:Watchdog.t -> ?role:string -> 'a b -> 'a -> unit
  (** Blocking [add]: flushes and waits for ring space as needed.
      @raise Closed when the queue is or becomes closed. *)
end
