(** Result of one native (real-domain) execution — the wall-clock
    counterpart of {!Xinv_parallel.Run.t}, which reports virtual time. *)

type t = {
  technique : string;
  domains : int;  (** total domains used, including scheduler/checker roles *)
  workers : int;  (** domains executing loop iterations *)
  wall_ns : float;  (** monotonic wall-clock duration of the region *)
  tasks : int;  (** loop iterations executed (first attempt; redo excluded) *)
  invocations : int;
  conds : int;  (** DOMORE sync conditions forwarded *)
  checks : int;  (** SPECCROSS signature requests submitted *)
  misspecs : int;
  barrier_episodes : int;
  stalls : (string * float) list;
      (** blocked wall-ns by cause ({!Stallcat}); names the run's bottleneck *)
}

val make :
  technique:string ->
  domains:int ->
  workers:int ->
  wall_ns:float ->
  tasks:int ->
  invocations:int ->
  ?conds:int ->
  ?checks:int ->
  ?misspecs:int ->
  ?barrier_episodes:int ->
  ?stalls:(string * float) list ->
  unit ->
  t

val dominant_stall : t -> string option
(** The stall cause with the most blocked wall time, if any. *)

val timed : (unit -> unit) -> float
(** Wall-clock nanoseconds the thunk took. *)

val speedup : seq_wall_ns:float -> t -> float

val pp : Format.formatter -> t -> unit
