module Ir = Xinv_ir
module Rt = Xinv_runtime
module Obs = Xinv_obs

type config = {
  policy : Xinv_domore.Policy.t;
  workers : int;
  queue_capacity : int;
  work : Work.t;
  grain : int;
  batch : int;
}

let default_config ~workers =
  { policy = Xinv_domore.Policy.Round_robin; workers; queue_capacity = 1024;
    work = Work.Off; grain = 1; batch = 32 }

(* Do-task framing: the Sync_cond encoding never produces tag 3, so a header
   word with low bits 11 is unambiguous on the same queue.  Bit 2
   distinguishes the single-iteration frame [hdr; t; j; iter] from the
   chunked frame [hdr; t; j0; len; iter0] carrying [len] consecutive
   iterations — grain 1 keeps the wire format (and word count) of the
   original per-iteration protocol. *)
let do_header inner = 3 lor (inner lsl 3)
let do_chunk_header inner = 7 lor (inner lsl 3)

(* [domain] is this waiter's flight ring, [src] the ring of the worker the
   condition points at; the recv lands in the waiter's ring once satisfied. *)
let wait_cell ~wd ~role ~stat ?fr ~domain ~src cells dep_tid dep_iter =
  if Atomic.get cells.(dep_tid) < dep_iter then
    Stallcat.timed ?fr ~domain stat Stallcat.Sync_cond (fun () ->
        Watchdog.wait wd ~role
          ~for_:(Printf.sprintf "iteration %d of worker %d" dep_iter dep_tid)
          (fun () -> Atomic.get cells.(dep_tid) >= dep_iter));
  match fr with
  | Some f -> Obs.Flight.record f ~domain Obs.Flight.Sync_recv ~a:dep_iter ~b:src
  | None -> ()

let reraise_root wd e =
  match Watchdog.root_cause wd with
  | Some root when root != e -> raise root
  | _ -> raise e

let run ~pool ?wd ?fault ?fr ?config ~(plan : Ir.Mtcg.plan) (p : Ir.Program.t) env =
  let config = match config with Some c -> c | None -> default_config ~workers:3 in
  let { policy; workers; queue_capacity; work; grain; batch } = config in
  (* Flight ring mapping: scheduler -> 0, worker w -> w+1. *)
  let ev k ~domain ~a ~b =
    match fr with Some f -> Obs.Flight.record f ~domain k ~a ~b | None -> ()
  in
  assert (workers > 0);
  if grain <= 0 then invalid_arg "Ndomore.run: grain must be positive";
  if workers > Pool.workers pool then invalid_arg "Ndomore.run: pool too small";
  if plan.Ir.Mtcg.scheduler_extra <> [] then
    invalid_arg "Ndomore.run: body statements re-partitioned into the scheduler";
  let wd = match wd with Some w -> w | None -> Watchdog.unbounded () in
  let stat = Stallcat.create () in
  let queues =
    Array.init workers (fun _ -> Spsc.create ~dummy:0 ~capacity:queue_capacity)
  in
  let bufs =
    Array.init workers (fun w -> Spsc.Batch.create ~size:(max 1 batch) queues.(w))
  in
  let cells = Array.init workers (fun _ -> Pad.atomic (-1)) in
  let shadow = Rt.Shadow.create () in
  let iternum = ref 0 in
  let conds = ref 0 in
  let bodies = Array.of_list p.Ir.Program.inners in
  let loads = Array.make workers 0 in
  let loads_opt = Some loads in
  let sample_loads = policy = Xinv_domore.Policy.Least_loaded in
  let deps = Rt.Shadow.Deps.create () in
  let end_word = Rt.Sync_cond.to_int Rt.Sync_cond.End_token in
  let scheduler () =
    let role = "scheduler" in
    (* Blocking word push through the write-combining buffers.  A blocked
       producer must keep draining *every* buffer: the words that would let
       the consumer it waits on make progress may sit, still unpublished, in
       a peer's buffer. *)
    let drain_all () =
      let all = ref true in
      for w' = 0 to workers - 1 do
        if not (Spsc.Batch.try_flush bufs.(w')) then all := false
      done;
      !all
    in
    let push_word tid word =
      if not (Spsc.Batch.add bufs.(tid) word) then
        Stallcat.timed ?fr ~domain:0 stat Stallcat.Queue_full (fun () ->
            Watchdog.wait wd ~role
              ~for_:(Printf.sprintf "space on worker %d's queue" tid)
              (fun () ->
                ignore (drain_all ());
                Spsc.Batch.add bufs.(tid) word))
    in
    let flush_all () =
      if not (drain_all ()) then
        Stallcat.timed ?fr ~domain:0 stat Stallcat.Queue_full (fun () ->
            Watchdog.wait wd ~role ~for_:"worker queue space (flush)" drain_all)
    in
    (* The one open chunk: a run of consecutive iterations bound for the
       same worker, sealed into a frame when the run breaks (different
       worker / invocation), fills up to [grain], or a sync condition must
       be ordered before the next iteration. *)
    let c_tid = ref (-1) and c_inner = ref 0 and c_t = ref 0 in
    let c_j = ref 0 and c_iter = ref 0 and c_len = ref 0 in
    let nsealed = ref 0 in
    let seal () =
      if !c_len > 0 then begin
        let tid = !c_tid in
        if !c_len = 1 then begin
          push_word tid (do_header !c_inner);
          push_word tid !c_t;
          push_word tid !c_j;
          push_word tid !c_iter
        end
        else begin
          push_word tid (do_chunk_header !c_inner);
          push_word tid !c_t;
          push_word tid !c_j;
          push_word tid !c_len;
          push_word tid !c_iter
        end;
        ev Obs.Flight.Dispatch ~domain:0 ~a:!c_iter ~b:(tid + 1);
        incr nsealed;
        if !nsealed land 63 = 0 then
          ev Obs.Flight.Queue_sample ~domain:0 ~a:tid
            ~b:(Spsc.length queues.(tid));
        c_len := 0;
        c_tid := -1
      end
    in
    let sched () =
      for t = 0 to p.Ir.Program.outer_trip - 1 do
        let env_t = Ir.Env.with_outer env t in
        Array.iteri
          (fun ii (il : Ir.Program.inner) ->
            List.iter
              (fun (s : Ir.Stmt.t) ->
                Work.burn work (s.Ir.Stmt.cost env_t);
                s.Ir.Stmt.exec env_t)
              il.Ir.Program.pre;
            let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
            let trip = il.Ir.Program.trip env_t in
            for j = 0 to trip - 1 do
              Fault.inject fault Fault.Scheduler_die ~domain:0 ~site:!iternum;
              let env_j = Ir.Env.with_inner env_t j in
              let waddrs = Ir.Slice.write_addresses slice env_j in
              if sample_loads then
                for w = 0 to workers - 1 do
                  loads.(w) <- Spsc.length queues.(w) + Spsc.Batch.pending bufs.(w)
                done;
              let tid =
                Xinv_domore.Policy.pick policy ~loads:loads_opt ~mem:env.Ir.Env.mem
                  ~threads:workers ~iter:(!iternum / grain) ~write_addrs:waddrs
              in
              (* A stalled queue: the producer wedges and the consumer
                 starves — exactly what the watchdog must detect. *)
              if Fault.fires fault Fault.Queue_stall ~domain:tid ~site:!iternum
              then Watchdog.park wd ~role;
              (* A poisoned sync condition: the worker is told to await an
                 iteration number no execution can ever reach. *)
              if Fault.fires fault Fault.Poison_cond ~domain:tid ~site:!iternum
              then begin
                seal ();
                incr conds;
                push_word tid
                  (Rt.Sync_cond.to_int
                     (Rt.Sync_cond.Wait
                        { dep_tid = tid; dep_iter = Rt.Sync_cond.max_iter }));
                ev Obs.Flight.Sync_send ~domain:0 ~a:Rt.Sync_cond.max_iter
                  ~b:(tid + 1)
              end;
              Rt.Shadow.Deps.clear deps;
              Ir.Slice.iter_read_addresses slice env_j (fun addr ->
                  Rt.Shadow.note_read_deps shadow addr ~tid ~iter:!iternum deps);
              List.iter
                (fun addr ->
                  Rt.Shadow.note_write_deps shadow addr ~tid ~iter:!iternum deps)
                waddrs;
              if Rt.Shadow.Deps.length deps > 0 then begin
                (* Conditions must precede this iteration's frame on [tid]'s
                   queue, so any open chunk is sealed first. *)
                seal ();
                Rt.Shadow.Deps.iter
                  (fun ~tid:dt ~iter:di ->
                    incr conds;
                    push_word tid
                      (Rt.Sync_cond.to_int
                         (Rt.Sync_cond.Wait { dep_tid = dt; dep_iter = di }));
                    ev Obs.Flight.Sync_send ~domain:0 ~a:di ~b:(tid + 1))
                  deps
              end;
              if
                !c_len > 0 && !c_tid = tid && !c_inner = ii && !c_t = t
                && !c_j + !c_len = j && !c_len < grain
              then incr c_len
              else begin
                seal ();
                c_tid := tid;
                c_inner := ii;
                c_t := t;
                c_j := j;
                c_iter := !iternum;
                c_len := 1
              end;
              incr iternum
            done)
          bodies
      done;
      seal ()
    in
    (* Workers block on their queues: release them even if scheduling itself
       fails.  Closing the queues (rather than pushing end tokens, which can
       block on a full queue whose consumer is dead) guarantees the wakeup. *)
    (try sched ()
     with e ->
       Array.iter Spsc.close queues;
       raise e);
    for w = 0 to workers - 1 do
      push_word w end_word
    done;
    flush_all ()
  in
  let worker w () =
    let role = Printf.sprintf "worker %d" w in
    let q = queues.(w) in
    (* Local read buffer: one atomic head update per refill instead of one
       per word.  The blocking single-word pop only runs when a refill found
       the ring empty. *)
    let rbuf = Array.make 64 0 in
    let rpos = ref 0 and rlen = ref 0 in
    let next_word () =
      if !rpos < !rlen then begin
        let word = rbuf.(!rpos) in
        incr rpos;
        word
      end
      else begin
        let n = Spsc.pop_chunk q rbuf ~pos:0 ~len:(Array.length rbuf) in
        if n > 0 then begin
          rpos := 1;
          rlen := n;
          rbuf.(0)
        end
        else
          Stallcat.timed ?fr ~domain:(w + 1) stat Stallcat.Queue_empty
            (fun () -> Spsc.pop ~wd ~role q)
      end
    in
    let exec_one env_t inner j iter =
      Fault.inject fault Fault.Worker_raise ~domain:w ~site:iter;
      let il = bodies.(inner) in
      let env_j = Ir.Env.with_inner env_t j in
      List.iter
        (fun (s : Ir.Stmt.t) ->
          Work.burn work (s.Ir.Stmt.cost env_j);
          s.Ir.Stmt.exec env_j)
        il.Ir.Program.body;
      Atomic.set cells.(w) iter
    in
    let continue_ = ref true in
    while !continue_ do
      let word = next_word () in
      if word land 3 = 3 then begin
        let inner = word lsr 3 in
        let t = next_word () in
        let env_t = Ir.Env.with_outer env t in
        if word land 4 = 0 then begin
          let j = next_word () in
          let iter = next_word () in
          exec_one env_t inner j iter
        end
        else begin
          let j0 = next_word () in
          let len = next_word () in
          let iter0 = next_word () in
          for k = 0 to len - 1 do
            exec_one env_t inner (j0 + k) (iter0 + k)
          done
        end
      end
      else
        match Rt.Sync_cond.of_int word with
        | Rt.Sync_cond.End_token -> continue_ := false
        | Rt.Sync_cond.No_sync _ -> ()
        | Rt.Sync_cond.Wait { dep_tid; dep_iter } ->
            wait_cell ~wd ~role ~stat ?fr ~domain:(w + 1) ~src:(dep_tid + 1)
              cells dep_tid dep_iter
    done
  in
  let cancel_cohort e =
    ignore (Watchdog.cancel wd e);
    Array.iter Spsc.close queues
  in
  let guard fn () =
    try fn ()
    with e -> (
      let first = Watchdog.cancel wd e in
      Array.iter Spsc.close queues;
      match e with
      | (Watchdog.Cancelled _ | Spsc.Closed) when not first -> ()
      | _ -> raise e)
  in
  let fns =
    Array.init (workers + 1) (fun i ->
        if i = 0 then guard scheduler else guard (fun () -> worker (i - 1) ()))
  in
  let wall_ns =
    Nrun.timed (fun () ->
        try Pool.run ~wd ~on_stall:cancel_cohort pool fns
        with e -> reraise_root wd e)
  in
  Nrun.make ~technique:"native-DOMORE" ~domains:(workers + 1) ~workers ~wall_ns
    ~tasks:!iternum ~invocations:(Ir.Program.invocations p) ~conds:!conds
    ~checks:!conds ~stalls:(Stallcat.to_list stat) ()

let run_duplicated ~pool ?wd ?fault ?fr ?config ~(plan : Ir.Mtcg.plan)
    (p : Ir.Program.t) env =
  let config = match config with Some c -> c | None -> default_config ~workers:4 in
  let { policy; workers; work; batch; _ } = config in
  (* Flight ring mapping: worker tid -> ring tid (no scheduler domain). *)
  let ev k ~domain ~a ~b =
    match fr with Some f -> Obs.Flight.record f ~domain k ~a ~b | None -> ()
  in
  assert (workers > 0);
  if workers - 1 > Pool.workers pool then
    invalid_arg "Ndomore.run_duplicated: pool too small";
  if plan.Ir.Mtcg.scheduler_extra <> [] then
    invalid_arg "Ndomore.run_duplicated: body statements re-partitioned into the scheduler";
  let wd = match wd with Some w -> w | None -> Watchdog.unbounded () in
  let stat = Stallcat.create () in
  let cells = Array.init workers (fun _ -> Pad.atomic (-1)) in
  let batch = max 1 batch in
  let tasks = ref 0 in
  let worker tid () =
    let role = Printf.sprintf "worker %d" tid in
    let shadow = Rt.Shadow.create () in
    let deps = Rt.Shadow.Deps.create () in
    let iternum = ref 0 in
    (* Write-combined completion frontier: the cell is published every
       [batch] owned iterations instead of after each one.  It must also be
       published before blocking on a peer (our completed work may be
       exactly what unblocks the chain back to us) and at every invocation
       end (peers can wait on our final iterations). *)
    let last_done = ref (-1) in
    let unpublished = ref 0 in
    let publish () =
      if !unpublished > 0 then begin
        Atomic.set cells.(tid) !last_done;
        unpublished := 0;
        ev Obs.Flight.Epoch_commit ~domain:tid ~a:!last_done ~b:0
      end
    in
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          (* Sequential region duplicated on every domain; privatizable
             per-invocation slots make the replicated writes idempotent
             (same values in racy stores — benign under the OCaml memory
             model for these int/float arrays). *)
          List.iter
            (fun (s : Ir.Stmt.t) ->
              Work.burn work (s.Ir.Stmt.cost env_t);
              s.Ir.Stmt.exec env_t)
            il.Ir.Program.pre;
          let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then tasks := !tasks + trip;
          for j = 0 to trip - 1 do
            let env_j = Ir.Env.with_inner env_t j in
            let waddrs = Ir.Slice.write_addresses slice env_j in
            let owner =
              Xinv_domore.Policy.pick policy ~loads:None ~mem:env.Ir.Env.mem
                ~threads:workers ~iter:!iternum ~write_addrs:waddrs
            in
            Rt.Shadow.Deps.clear deps;
            Ir.Slice.iter_read_addresses slice env_j (fun addr ->
                Rt.Shadow.note_read_deps shadow addr ~tid:owner ~iter:!iternum deps);
            List.iter
              (fun addr ->
                Rt.Shadow.note_write_deps shadow addr ~tid:owner ~iter:!iternum deps)
              waddrs;
            if owner = tid then begin
              Fault.inject fault Fault.Worker_raise ~domain:tid ~site:!iternum;
              if Fault.fires fault Fault.Poison_cond ~domain:tid ~site:!iternum
              then Watchdog.park wd ~role;
              Rt.Shadow.Deps.iter
                (fun ~tid:dt ~iter:di ->
                  if Atomic.get cells.(dt) < di then begin
                    publish ();
                    wait_cell ~wd ~role ~stat ?fr ~domain:tid ~src:dt cells dt
                      di
                  end)
                deps;
              List.iter
                (fun (s : Ir.Stmt.t) ->
                  Work.burn work (s.Ir.Stmt.cost env_j);
                  s.Ir.Stmt.exec env_j)
                il.Ir.Program.body;
              last_done := !iternum;
              incr unpublished;
              if !unpublished >= batch then publish ()
            end;
            incr iternum
          done;
          publish ())
        p.Ir.Program.inners
    done;
    publish ()
  in
  let guard fn () =
    try fn ()
    with e -> (
      let first = Watchdog.cancel wd e in
      match e with
      | Watchdog.Cancelled _ when not first -> ()
      | _ -> raise e)
  in
  let fns = Array.init workers (fun tid -> guard (worker tid)) in
  let cancel_cohort e = ignore (Watchdog.cancel wd e) in
  let wall_ns =
    Nrun.timed (fun () ->
        try Pool.run ~wd ~on_stall:cancel_cohort pool fns
        with e -> reraise_root wd e)
  in
  Nrun.make ~technique:"native-DOMORE-dup" ~domains:workers ~workers ~wall_ns
    ~tasks:!tasks ~invocations:(Ir.Program.invocations p)
    ~stalls:(Stallcat.to_list stat) ()
