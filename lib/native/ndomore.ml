module Ir = Xinv_ir
module Rt = Xinv_runtime

type config = {
  policy : Xinv_domore.Policy.t;
  workers : int;
  queue_capacity : int;
  work : Work.t;
}

let default_config ~workers =
  { policy = Xinv_domore.Policy.Round_robin; workers; queue_capacity = 1024;
    work = Work.Off }

(* Do-task framing: the Sync_cond encoding never produces tag 3, so a header
   word [3 lor (inner lsl 2)] is unambiguous on the same queue. *)
let do_header inner = 3 lor (inner lsl 2)

let wait_cell ~wd ~role cells dep_tid dep_iter =
  if Atomic.get cells.(dep_tid) < dep_iter then
    Watchdog.wait wd ~role
      ~for_:(Printf.sprintf "iteration %d of worker %d" dep_iter dep_tid)
      (fun () -> Atomic.get cells.(dep_tid) >= dep_iter)

let reraise_root wd e =
  match Watchdog.root_cause wd with
  | Some root when root != e -> raise root
  | _ -> raise e

let run ~pool ?wd ?fault ?config ~(plan : Ir.Mtcg.plan) (p : Ir.Program.t) env =
  let config = match config with Some c -> c | None -> default_config ~workers:3 in
  let { policy; workers; queue_capacity; work } = config in
  assert (workers > 0);
  if workers > Pool.workers pool then invalid_arg "Ndomore.run: pool too small";
  if plan.Ir.Mtcg.scheduler_extra <> [] then
    invalid_arg "Ndomore.run: body statements re-partitioned into the scheduler";
  let wd = match wd with Some w -> w | None -> Watchdog.unbounded () in
  let queues =
    Array.init workers (fun _ -> Spsc.create ~dummy:0 ~capacity:queue_capacity)
  in
  let cells = Array.init workers (fun _ -> Atomic.make (-1)) in
  let shadow = Rt.Shadow.create () in
  let iternum = ref 0 in
  let conds = ref 0 in
  let bodies = Array.of_list p.Ir.Program.inners in
  let loads = Array.make workers 0 in
  let loads_opt = Some loads in
  let deps = Rt.Shadow.Deps.create () in
  let end_word = Rt.Sync_cond.to_int Rt.Sync_cond.End_token in
  let scheduler () =
    let role = "scheduler" in
    let push q word = Spsc.push ~wd ~role q word in
    let sched () =
      for t = 0 to p.Ir.Program.outer_trip - 1 do
        let env_t = Ir.Env.with_outer env t in
        Array.iteri
          (fun ii (il : Ir.Program.inner) ->
            List.iter
              (fun (s : Ir.Stmt.t) ->
                Work.burn work (s.Ir.Stmt.cost env_t);
                s.Ir.Stmt.exec env_t)
              il.Ir.Program.pre;
            let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
            let trip = il.Ir.Program.trip env_t in
            for j = 0 to trip - 1 do
              Fault.inject fault Fault.Scheduler_die ~domain:0 ~site:!iternum;
              let env_j = Ir.Env.with_inner env_t j in
              let waddrs = Ir.Slice.write_addresses slice env_j in
              for w = 0 to workers - 1 do
                loads.(w) <- Spsc.length queues.(w)
              done;
              let tid =
                Xinv_domore.Policy.pick policy ~loads:loads_opt ~mem:env.Ir.Env.mem
                  ~threads:workers ~iter:!iternum ~write_addrs:waddrs
              in
              (* A stalled queue: the producer wedges and the consumer
                 starves — exactly what the watchdog must detect. *)
              if Fault.fires fault Fault.Queue_stall ~domain:tid ~site:!iternum
              then Watchdog.park wd ~role;
              (* A poisoned sync condition: the worker is told to await an
                 iteration number no execution can ever reach. *)
              if Fault.fires fault Fault.Poison_cond ~domain:tid ~site:!iternum
              then begin
                incr conds;
                push queues.(tid)
                  (Rt.Sync_cond.to_int
                     (Rt.Sync_cond.Wait
                        { dep_tid = tid; dep_iter = Rt.Sync_cond.max_iter }))
              end;
              Rt.Shadow.Deps.clear deps;
              Ir.Slice.iter_read_addresses slice env_j (fun addr ->
                  Rt.Shadow.note_read_deps shadow addr ~tid ~iter:!iternum deps);
              List.iter
                (fun addr ->
                  Rt.Shadow.note_write_deps shadow addr ~tid ~iter:!iternum deps)
                waddrs;
              Rt.Shadow.Deps.iter
                (fun ~tid:dt ~iter:di ->
                  incr conds;
                  push queues.(tid)
                    (Rt.Sync_cond.to_int
                       (Rt.Sync_cond.Wait { dep_tid = dt; dep_iter = di })))
                deps;
              push queues.(tid) (do_header ii);
              push queues.(tid) t;
              push queues.(tid) j;
              push queues.(tid) !iternum;
              incr iternum
            done)
          bodies
      done
    in
    (* Workers block on their queues: release them even if scheduling itself
       fails.  Closing the queues (rather than pushing end tokens, which can
       block on a full queue whose consumer is dead) guarantees the wakeup. *)
    (try sched ()
     with e ->
       Array.iter Spsc.close queues;
       raise e);
    Array.iter (fun q -> push q end_word) queues
  in
  let worker w () =
    let role = Printf.sprintf "worker %d" w in
    let q = queues.(w) in
    let continue_ = ref true in
    while !continue_ do
      let word = Spsc.pop ~wd ~role q in
      if word land 3 = 3 then begin
        let inner = word lsr 2 in
        let t = Spsc.pop ~wd ~role q in
        let j = Spsc.pop ~wd ~role q in
        let iter = Spsc.pop ~wd ~role q in
        Fault.inject fault Fault.Worker_raise ~domain:w ~site:iter;
        let il = bodies.(inner) in
        let env_j = Ir.Env.with_inner (Ir.Env.with_outer env t) j in
        List.iter
          (fun (s : Ir.Stmt.t) ->
            Work.burn work (s.Ir.Stmt.cost env_j);
            s.Ir.Stmt.exec env_j)
          il.Ir.Program.body;
        Atomic.set cells.(w) iter
      end
      else
        match Rt.Sync_cond.of_int word with
        | Rt.Sync_cond.End_token -> continue_ := false
        | Rt.Sync_cond.No_sync _ -> ()
        | Rt.Sync_cond.Wait { dep_tid; dep_iter } ->
            wait_cell ~wd ~role cells dep_tid dep_iter
    done
  in
  let cancel_cohort e =
    ignore (Watchdog.cancel wd e);
    Array.iter Spsc.close queues
  in
  let guard fn () =
    try fn ()
    with e -> (
      let first = Watchdog.cancel wd e in
      Array.iter Spsc.close queues;
      match e with
      | (Watchdog.Cancelled _ | Spsc.Closed) when not first -> ()
      | _ -> raise e)
  in
  let fns =
    Array.init (workers + 1) (fun i ->
        if i = 0 then guard scheduler else guard (fun () -> worker (i - 1) ()))
  in
  let wall_ns =
    Nrun.timed (fun () ->
        try Pool.run ~wd ~on_stall:cancel_cohort pool fns
        with e -> reraise_root wd e)
  in
  Nrun.make ~technique:"native-DOMORE" ~domains:(workers + 1) ~workers ~wall_ns
    ~tasks:!iternum ~invocations:(Ir.Program.invocations p) ~conds:!conds
    ~checks:!conds ()

let run_duplicated ~pool ?wd ?fault ?config ~(plan : Ir.Mtcg.plan)
    (p : Ir.Program.t) env =
  let config = match config with Some c -> c | None -> default_config ~workers:4 in
  let { policy; workers; work; _ } = config in
  assert (workers > 0);
  if workers - 1 > Pool.workers pool then
    invalid_arg "Ndomore.run_duplicated: pool too small";
  if plan.Ir.Mtcg.scheduler_extra <> [] then
    invalid_arg "Ndomore.run_duplicated: body statements re-partitioned into the scheduler";
  let wd = match wd with Some w -> w | None -> Watchdog.unbounded () in
  let cells = Array.init workers (fun _ -> Atomic.make (-1)) in
  let tasks = ref 0 in
  let worker tid () =
    let role = Printf.sprintf "worker %d" tid in
    let shadow = Rt.Shadow.create () in
    let deps = Rt.Shadow.Deps.create () in
    let iternum = ref 0 in
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          (* Sequential region duplicated on every domain; privatizable
             per-invocation slots make the replicated writes idempotent
             (same values in racy stores — benign under the OCaml memory
             model for these int/float arrays). *)
          List.iter
            (fun (s : Ir.Stmt.t) ->
              Work.burn work (s.Ir.Stmt.cost env_t);
              s.Ir.Stmt.exec env_t)
            il.Ir.Program.pre;
          let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then tasks := !tasks + trip;
          for j = 0 to trip - 1 do
            let env_j = Ir.Env.with_inner env_t j in
            let waddrs = Ir.Slice.write_addresses slice env_j in
            let owner =
              Xinv_domore.Policy.pick policy ~loads:None ~mem:env.Ir.Env.mem
                ~threads:workers ~iter:!iternum ~write_addrs:waddrs
            in
            Rt.Shadow.Deps.clear deps;
            Ir.Slice.iter_read_addresses slice env_j (fun addr ->
                Rt.Shadow.note_read_deps shadow addr ~tid:owner ~iter:!iternum deps);
            List.iter
              (fun addr ->
                Rt.Shadow.note_write_deps shadow addr ~tid:owner ~iter:!iternum deps)
              waddrs;
            if owner = tid then begin
              Fault.inject fault Fault.Worker_raise ~domain:tid ~site:!iternum;
              if Fault.fires fault Fault.Poison_cond ~domain:tid ~site:!iternum
              then Watchdog.park wd ~role;
              Rt.Shadow.Deps.iter
                (fun ~tid:dt ~iter:di -> wait_cell ~wd ~role cells dt di)
                deps;
              List.iter
                (fun (s : Ir.Stmt.t) ->
                  Work.burn work (s.Ir.Stmt.cost env_j);
                  s.Ir.Stmt.exec env_j)
                il.Ir.Program.body;
              Atomic.set cells.(tid) !iternum
            end;
            incr iternum
          done)
        p.Ir.Program.inners
    done
  in
  let guard fn () =
    try fn ()
    with e -> (
      let first = Watchdog.cancel wd e in
      match e with
      | Watchdog.Cancelled _ when not first -> ()
      | _ -> raise e)
  in
  let fns = Array.init workers (fun tid -> guard (worker tid)) in
  let cancel_cohort e = ignore (Watchdog.cancel wd e) in
  let wall_ns =
    Nrun.timed (fun () ->
        try Pool.run ~wd ~on_stall:cancel_cohort pool fns
        with e -> reraise_root wd e)
  in
  Nrun.make ~technique:"native-DOMORE-dup" ~domains:workers ~workers ~wall_ns
    ~tasks:!tasks ~invocations:(Ir.Program.invocations p) ()
