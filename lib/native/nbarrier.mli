(** Native sequential execution and the pthreads-style baseline: the
    workload's per-invocation plan ({!Xinv_parallel.Intra}) with a real
    barrier after every inner-loop invocation. *)

val run_seq : ?work:Work.t -> Xinv_ir.Program.t -> Xinv_ir.Env.t -> Nrun.t
(** Program order on the calling domain; the wall-clock baseline. *)

val run :
  pool:Pool.t ->
  ?wd:Watchdog.t ->
  ?fault:Fault.t ->
  ?fr:Xinv_obs.Flight.t ->
  ?work:Work.t ->
  ?grain:int ->
  threads:int ->
  plan:(string -> Xinv_parallel.Intra.technique) ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Nrun.t
(** [threads] domains (1 from the caller + [threads - 1] pool domains)
    execute every invocation under its planned technique, separated by
    barriers.  The pool must have at least [threads - 1] workers.
    [grain] (default 1) selects a block-cyclic iteration distribution for
    cyclic techniques: blocks of [grain] consecutive iterations per thread,
    trading load balance for spatial locality; 1 is the classic cyclic
    distribution and leaves the memory state bit-identical.

    All barrier waits are bounded by [wd] (an internal unbounded watchdog
    provides cancellation when omitted).  A failing domain poisons the
    barrier and cancels the cohort; the first failure is re-raised after
    the run unwinds.  [fault] injection sites are global invocation
    ordinals; the barrier engine honours [Worker_raise] and
    [Poison_cond].

    With a flight recorder [fr] attached ([threads] rings, thread [tid] on
    ring [tid]) every barrier episode records arrive/release events plus a
    timed barrier stall, and thread 0 marks invocation dispatch/commit. *)
