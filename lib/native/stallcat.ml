(* Wall-clock accounting of *why* native domains block.

   Each engine owns one accumulator and wraps only its blocking slow paths
   (the fast path pays nothing); every blocked episode adds its measured
   nanoseconds to one cause bucket.  The buckets are padded atomics because
   several domains report concurrently.

   The cause names intentionally match the simulator's Obs stall
   vocabulary where the concepts coincide, so bench rows and `xinv stats`
   reports read the same across backends. *)

type cause =
  | Queue_empty   (* consumer waiting for work words *)
  | Queue_full    (* producer waiting for ring space *)
  | Sync_cond     (* worker waiting on a forwarded synchronization condition *)
  | Barrier_wait  (* party waiting at a barrier *)
  | Checker_lag   (* speculative worker waiting for the checker to drain *)
  | Throttle      (* speculative worker held back by the spec-distance range *)
  | Rally         (* waiting for peers at a checkpoint / irreversible rally *)

let all = [ Queue_empty; Queue_full; Sync_cond; Barrier_wait; Checker_lag; Throttle; Rally ]

let index = function
  | Queue_empty -> 0
  | Queue_full -> 1
  | Sync_cond -> 2
  | Barrier_wait -> 3
  | Checker_lag -> 4
  | Throttle -> 5
  | Rally -> 6

let name = function
  | Queue_empty -> "queue-empty"
  | Queue_full -> "queue-full"
  | Sync_cond -> "sync-cond"
  | Barrier_wait -> "barrier"
  | Checker_lag -> "checker-lag"
  | Throttle -> "throttle"
  | Rally -> "rally"

type t = int Atomic.t array (* accumulated ns per cause, padded *)

let ncauses = List.length all

let create () = Pad.atomic_array ncauses 0

let add_ns t cause ns =
  if ns > 0 then ignore (Atomic.fetch_and_add t.(index cause) ns)

let now_ns () = int_of_float (1e9 *. Unix.gettimeofday ())

(* Times [f] and charges the elapsed wall time to [cause].  Use only around
   code that is (or is about to be) blocked: the two clock reads cost ~50ns,
   noise against a backoff episode but not against a ring operation.  With a
   flight recorder attached the episode also lands in [domain]'s ring as a
   Stall_begin/Stall_end pair (the end entry carries the duration). *)
let timed ?fr ?(domain = 0) t cause f =
  (match fr with
  | Some fr ->
      Xinv_obs.Flight.record fr ~domain Xinv_obs.Flight.Stall_begin
        ~a:(index cause) ~b:0
  | None -> ());
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let d = now_ns () - t0 in
      add_ns t cause d;
      match fr with
      | Some fr ->
          Xinv_obs.Flight.record fr ~domain Xinv_obs.Flight.Stall_end
            ~a:(index cause) ~b:d
      | None -> ())
    f

let ns t cause = Atomic.get t.(index cause)

let to_list t =
  List.filter_map
    (fun c ->
      let v = Atomic.get t.(index c) in
      if v > 0 then Some (name c, float_of_int v) else None)
    all

let dominant t =
  let best = ref None in
  List.iter
    (fun c ->
      let v = Atomic.get t.(index c) in
      match !best with
      | Some (_, bv) when bv >= v -> ()
      | _ -> if v > 0 then best := Some (name c, v))
    all;
  Option.map fst !best
