(** Deterministic fault injection for the native backend.

    A fault is armed at a (domain, site) coordinate — sites are engine
    progress ordinals (global iteration number for barrier/DOMORE plans,
    epoch for SPECCROSS, drained requests for the checker) — and fires
    {e exactly once}, at the first occasion at or after the armed site on
    a matching domain.  Firing is claimed with a compare-and-set, so even
    a wildcard-domain fault is injected by a single domain.

    Kinds model the failure classes the robustness layer must survive:
    an exception escaping a worker's task, the DOMORE scheduler or
    SPECCROSS checker dying mid-stream, a queue producer wedging (stall),
    and a poisoned synchronization condition that can never be satisfied. *)

type kind =
  | Worker_raise  (** a worker task raises {!Injected} *)
  | Scheduler_die  (** the DOMORE scheduler / SPECCROSS worker 0 raises *)
  | Checker_die  (** the SPECCROSS checker domain raises *)
  | Queue_stall  (** a producer stops feeding its consumer *)
  | Poison_cond  (** an unsatisfiable sync condition / wedged domain *)

type t

type spec =
  | Exact of { kind : kind; domain : int; site : int }
      (** [domain = -1] matches any domain. *)
  | Random of int  (** seed; resolved via {!Xinv_util.Prng} at run start. *)

exception Injected of { kind : kind; domain : int; site : int }
(** Raised at the injection point (for kinds that raise); carries the
    actual firing coordinate. *)

val kind_name : kind -> string

val spec_of_string : string -> (spec, string) result
(** Parses the CLI [--inject] syntax: [raise@D:S], [stall@D:S],
    [poison@D:S] (with [D] a domain index or [*]), [sched-die@S],
    [checker-die@S], and [rand:SEED]. *)

val spec_to_string : spec -> string

val resolve : domains:int -> sites:int -> spec -> t
(** Fix a concrete fault for one run.  [Random] draws kind, domain and
    site from a {!Xinv_util.Prng} stream seeded with the spec's seed, so
    a given seed always yields the same fault. *)

val fires : t option -> kind -> domain:int -> site:int -> bool
(** [fires f kind ~domain ~site] is true exactly once per fault: when the
    kind matches, the domain matches (or the fault is wildcard), the site
    is at or past the armed site, and this caller wins the firing CAS.
    [None] never fires — engines thread [t option] unconditionally. *)

val inject : t option -> kind -> domain:int -> site:int -> unit
(** Convenience: raise {!Injected} when {!fires}. *)

val fired : t option -> bool
(** Whether the fault has fired (feeds the [fault.injected] counter). *)

val kind : t option -> kind option

val info : t -> kind * int * int
(** Armed (kind, domain, site) — the spec's coordinates, not necessarily
    the exact firing coordinate (wildcard domains, at-or-after sites). *)

val describe : t -> string
