(** Exponential spin/sleep backoff for the native backend's busy-wait loops.

    The first rounds spin on {!Domain.cpu_relax}; persistent waits escalate
    to short [Unix.sleepf] naps so an oversubscribed machine (fewer cores
    than domains — including the 1-core degenerate case) still makes
    progress instead of burning a whole scheduling quantum per wait. *)

type t

val create : unit -> t

val once : t -> unit
(** One backoff step: spin while young, nap when the wait persists. *)

val reset : t -> unit

val steps : t -> int
(** Backoff steps taken since creation/reset — lets callers amortize
    expensive per-iteration checks (clock reads) over the spin phase. *)

val wait_until : (unit -> bool) -> unit
(** Spin (with escalation) until the predicate holds.  The predicate is
    expected to read [Atomic] state, so a satisfied wait also establishes
    the usual happens-before edge with the writer. *)
