(** Persistent domain pool.

    Domains are spawned once and park in a resident backoff loop between
    jobs ("pinned" in the sense of one dedicated domain per worker for the
    backend's whole lifetime; OS-level CPU affinity is left to the runner —
    see EXPERIMENTS.md).  Spawning domains per run would dominate the
    short regions the benchmarks measure. *)

type t

val create : workers:int -> t
(** Spawns [workers] parked domains. *)

val workers : t -> int

val live : t -> bool
(** False once the pool was shut down or a wedged join marked it dead.
    A long-lived owner (the serve daemon) checks this before reuse and
    replaces a dead pool instead of calling {!run} into an
    [Invalid_argument]. *)

val run :
  ?wd:Watchdog.t -> ?on_stall:(exn -> unit) -> t -> (unit -> unit) array -> unit
(** [run pool fns] executes [fns.(0)] on the calling domain and
    [fns.(1..)] on pool domains, returning when all have finished.
    [Array.length fns - 1] must not exceed [workers pool].  If any
    function raises, the first exception (lowest index) is re-raised
    after all functions have terminated.

    With [wd], joins are bounded: a worker that exceeds the watchdog's
    bounds triggers [on_stall] (the engine's chance to cancel the cohort
    so wedged workers unwind), then one more bounded wait; if the worker
    is still stuck the pool is marked dead — its domains leak until
    process exit, but the stall surfaces as {!Watchdog.Stalled} instead
    of a hang, and the poisoned pool can never corrupt a later run. *)

val shutdown : t -> unit
(** Terminates and joins the pool domains.  The pool is unusable after.
    No-op on a pool already marked dead by a stalled join (joining a
    wedged domain would hang forever). *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** Create, apply, always shut down. *)
