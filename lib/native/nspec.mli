(** Native SPECCROSS (dissertation Chapter 4): speculative barriers on real
    domains, with a dedicated checker domain.

    Workers execute consecutive epochs (inner-loop invocations) without
    barriers, bounded by the speculative-range throttle.  Each task logs a
    {!Xinv_runtime.Signature} of its instrumented accesses together with a
    snapshot of every other worker's signature frontier ([dpos], a
    monotonic [Atomic] per worker: every signature at a global task
    position <= its value is already enqueued, and — because the frontier
    store follows the task's memory writes — those tasks' effects are
    visible to any domain that reads the frontier afterwards).  The checker
    compares a task only against other workers' signatures {e above the
    snapshot} and {e from earlier epochs}: anything at or below the
    snapshot was finished before the task started and is therefore ordered;
    same-epoch tasks are independent by construction.

    On a conflict the checker flips the global abort flag and bumps the
    generation; workers rally at a sense-reversing barrier, worker 0
    restores the last in-memory checkpoint, the misspeculated epochs are
    re-executed non-speculatively with real barriers, a fresh checkpoint is
    taken and speculation resumes.  Requests from dead generations are
    drained and dropped, so recovery never leaks stale conflicts. *)

type config = {
  workers : int;  (** worker domains, excluding the checker *)
  sig_kind : Xinv_runtime.Signature.kind;
  checkpoint_every : int;  (** epochs between checkpoints; 0 disables *)
  spec_distance : int;  (** max task lead over the slowest worker *)
  mode_of : string -> Xinv_speccross.Runtime.mode;
      (** per-inner execution mode; [M_domore] is not supported natively *)
  inject_misspec : (int * int) option;  (** force one conflict at (epoch, worker) *)
  work : Work.t;
  queue_capacity : int;
  grain : int;
      (** [M_doall] tasks per speculative block: one throttle step, one
          signature and one checking request per block of [grain]
          consecutive iterations.  1 (the default) is the original
          task-per-iteration protocol; larger grains are clamped against
          [spec_distance] so chunking cannot widen the misspeculation
          window past the throttle. *)
}

val default_config : workers:int -> config

val run :
  pool:Pool.t ->
  ?wd:Watchdog.t ->
  ?fault:Fault.t ->
  ?fr:Xinv_obs.Flight.t ->
  ?config:config ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Nrun.t
(** Worker 0 runs on the calling domain; workers 1.. and the checker run on
    pool domains (the pool needs [workers] of them).  Mutates the
    environment's memory to the final state.

    Every blocking wait (throttle, rallies, barrier, queue push) is
    bounded by [wd] (an internal unbounded watchdog provides cancellation
    when omitted).  A failing domain closes the request queues, poisons
    the rally barrier and cancels the cohort; the first failure is
    re-raised after the run unwinds — speculative misspeculation recovery
    is unaffected.  [fault] sites are epoch ordinals ([Checker_die]:
    drained-request count): [Worker_raise] raises in the matched worker,
    [Scheduler_die] in worker 0, [Checker_die] in the checker,
    [Queue_stall] freezes the matched worker's signature stream, and
    [Poison_cond] wedges the matched worker.

    With a flight recorder [fr] attached (needs [workers + 1] rings:
    worker [w] on ring [w], checker on ring [workers]) the run records
    block dispatches, epoch commits, misspeculations, barrier episodes,
    queue samples and stall episodes with no effect on speculation.
    @raise Invalid_argument if any inner's mode is [M_domore]. *)
