(** Work model for native runs.

    Workload statement bodies execute a handful of float operations — real
    but far lighter than the kernels whose cost model they carry
    ({!Xinv_ir.Stmt.cost} in simulated cycles).  For wall-clock scaling
    measurements each statement additionally burns CPU proportional to its
    modeled cost, so the compute/runtime-overhead ratio matches the cost
    model instead of being dominated by queue traffic.  [Off] (the default
    everywhere except the benchmark) runs the bare statement semantics. *)

type t =
  | Off
  | Spin of float
      (** nanoseconds of real compute per simulated cycle of statement cost *)

val calibrated_spin : ns_per_cycle:float -> t
(** [Spin] with the spin loop calibrated (once, lazily) against the
    monotonic clock so [burn] converts cycles to approximate nanoseconds. *)

val burn : t -> float -> unit
(** [burn w cycles] consumes CPU for roughly [cycles] times the configured
    factor.  [Off] is free.  Safe to call concurrently from any domain. *)
