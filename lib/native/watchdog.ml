exception
  Stalled of { role : string; waiting_for : string; waited_ns : float }

exception Cancelled of string

type t = {
  deadline_at : float;  (* absolute Unix time; infinity when unbounded *)
  wait_timeout_s : float;  (* per-wait budget; infinity when unbounded *)
  root : exn option Atomic.t;
  stall_count : int Atomic.t;
}

let make deadline_at wait_timeout_s =
  {
    deadline_at;
    wait_timeout_s;
    root = Atomic.make None;
    stall_count = Atomic.make 0;
  }

let unbounded () = make infinity infinity

let create ?deadline_ms ?wait_timeout_ms () =
  let deadline_at =
    match deadline_ms with
    | None -> infinity
    | Some ms ->
        if ms <= 0. then invalid_arg "Watchdog.create: deadline must be positive";
        Unix.gettimeofday () +. (ms /. 1e3)
  in
  let wait_timeout_s =
    match wait_timeout_ms with
    | None -> infinity
    | Some ms ->
        if ms <= 0. then invalid_arg "Watchdog.create: timeout must be positive";
        ms /. 1e3
  in
  make deadline_at wait_timeout_s

let bounded t = t.deadline_at < infinity || t.wait_timeout_s < infinity

(* A fresh watchdog for the recovery join after cohort cancellation: the
   original absolute deadline may already have expired — that can be
   exactly why the join stalled — but the unwinding workers still deserve
   one full wait window before the pool is declared wedged.  Bounds are
   relative to now; cancellation state is not carried (the recovery join
   is non-cancellable anyway). *)
let grace t =
  let w = if t.wait_timeout_s < infinity then t.wait_timeout_s else 5. in
  make (Unix.gettimeofday () +. w) w
let cancelled t = Atomic.get t.root <> None
let root_cause t = Atomic.get t.root
let stalls t = Atomic.get t.stall_count

let rec cancel t e =
  match Atomic.get t.root with
  | Some _ -> false
  | None -> Atomic.compare_and_set t.root None (Some e) || cancel t e

let raise_if_cancelled t ~role = if cancelled t then raise (Cancelled role)

let stall t ~role ~for_ ~started =
  Atomic.incr t.stall_count;
  let waited_ns = (Unix.gettimeofday () -. started) *. 1e9 in
  raise (Stalled { role; waiting_for = for_; waited_ns })

(* Clock reads are amortized over the spin phase: during the first
   [Backoff.spin_rounds] steps only every 32nd iteration checks the clock;
   once the backoff escalates to naps, every iteration does (the nap
   dominates the gettimeofday). *)
let check_clock b =
  let s = Backoff.steps b in
  s land 31 = 0 || s > 128

let wait ?(cancellable = true) t ~role ~for_ pred =
  if not (pred ()) then begin
    let b = Backoff.create () in
    let time_bounded = bounded t in
    let started = if time_bounded then Unix.gettimeofday () else 0. in
    let give_up_at = Float.min (started +. t.wait_timeout_s) t.deadline_at in
    let continue = ref true in
    while !continue do
      if pred () then continue := false
      else if cancellable && cancelled t then raise (Cancelled role)
      else begin
        if time_bounded && check_clock b && Unix.gettimeofday () > give_up_at
        then stall t ~role ~for_ ~started;
        Backoff.once b
      end
    done
  end

let park t ~role =
  let b = Backoff.create () in
  let time_bounded = bounded t in
  let started = if time_bounded then Unix.gettimeofday () else 0. in
  let give_up_at = Float.min (started +. t.wait_timeout_s) t.deadline_at in
  while true do
    if cancelled t then raise (Cancelled role);
    if time_bounded && check_clock b && Unix.gettimeofday () > give_up_at then
      stall t ~role ~for_:"park" ~started;
    Backoff.once b
  done;
  assert false
