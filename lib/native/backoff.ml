type t = { mutable steps : int }

let create () = { steps = 0 }

let spin_rounds = 128
let max_nap = 0.0005 (* 500us cap keeps recovery latency bounded *)

let once b =
  b.steps <- b.steps + 1;
  if b.steps <= spin_rounds then Domain.cpu_relax ()
  else
    let nap = 1e-6 *. float_of_int (b.steps - spin_rounds) in
    Unix.sleepf (Float.min max_nap nap)

let reset b = b.steps <- 0
let steps b = b.steps

let wait_until pred =
  if not (pred ()) then begin
    let b = create () in
    while not (pred ()) do
      once b
    done
  end
