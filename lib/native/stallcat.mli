(** Per-run accounting of why native domains block, by wall time.

    Engines wrap their blocking slow paths in {!timed}; the accumulated
    nanoseconds per cause flow into {!Nrun.t.stalls} and from there into
    bench rows and the Obs stall report, so every measured configuration
    names its bottleneck (queue-empty vs barrier-wait vs checker-lag …). *)

type cause =
  | Queue_empty
  | Queue_full
  | Sync_cond
  | Barrier_wait
  | Checker_lag
  | Throttle
  | Rally

val all : cause list

val name : cause -> string
(** Stable label, shared with the bench JSON and the Obs vocabulary. *)

type t

val create : unit -> t

val add_ns : t -> cause -> int -> unit
(** Thread-safe; the buckets are padded atomics. *)

val timed :
  ?fr:Xinv_obs.Flight.t -> ?domain:int -> t -> cause -> (unit -> 'a) -> 'a
(** Charge [f]'s wall time to [cause] (exception-safe).  Wrap only blocking
    episodes — the two clock reads are noise against a backoff wait, not
    against a ring operation.  When a flight recorder [fr] is attached the
    episode is also recorded into ring [domain] as a Stall_begin/Stall_end
    pair. *)

val ns : t -> cause -> int

val to_list : t -> (string * float) list
(** Non-zero buckets as [(name, ns)], in fixed cause order. *)

val dominant : t -> string option
(** The cause with the most blocked time, if any blocking happened. *)
