type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced only by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced only by the producer *)
}

let create ~dummy ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    buf = Array.make !cap dummy;
    mask = !cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let try_push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- x;
    (* seq_cst store publishes the slot write to the consumer *)
    Atomic.set t.tail (tail + 1);
    true
  end

let push t x =
  if not (try_push t x) then begin
    let b = Backoff.create () in
    while not (try_push t x) do
      Backoff.once b
    done
  end

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

let pop t =
  match try_pop t with
  | Some x -> x
  | None ->
      let b = Backoff.create () in
      let r = ref t.dummy in
      let got = ref false in
      while not !got do
        Backoff.once b;
        match try_pop t with
        | Some x ->
            r := x;
            got := true
        | None -> ()
      done;
      !r

let length t = Stdlib.max 0 (Atomic.get t.tail - Atomic.get t.head)
