exception Closed

type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced only by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced only by the producer *)
  closed_ : bool Atomic.t;
}

let create ~dummy ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    buf = Array.make !cap dummy;
    mask = !cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed_ = Atomic.make false;
  }

let capacity t = t.mask + 1
let close t = Atomic.set t.closed_ true
let closed t = Atomic.get t.closed_

let try_push t x =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.buf.(tail land t.mask) <- x;
    (* seq_cst store publishes the slot write to the consumer *)
    Atomic.set t.tail (tail + 1);
    true
  end

let push ?wd ?(role = "producer") t x =
  if Atomic.get t.closed_ then raise Closed;
  if not (try_push t x) then begin
    let pushed = ref false in
    let pred () =
      Atomic.get t.closed_
      ||
      let ok = try_push t x in
      pushed := ok;
      ok
    in
    (match wd with
    | Some wd -> Watchdog.wait wd ~role ~for_:"queue slot" pred
    | None -> Backoff.wait_until pred);
    if not !pushed then raise Closed
  end

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

let pop ?wd ?(role = "consumer") t =
  match try_pop t with
  | Some x -> x
  | None ->
      let r = ref t.dummy in
      let got = ref false in
      (* Drain before reporting closure: items pushed before [close] must
         still reach the consumer, so emptiness is re-checked first. *)
      let pred () =
        match try_pop t with
        | Some x ->
            r := x;
            got := true;
            true
        | None -> Atomic.get t.closed_
      in
      (match wd with
      | Some wd -> Watchdog.wait wd ~role ~for_:"queue item" pred
      | None -> Backoff.wait_until pred);
      if !got then !r else raise Closed

let length t = Stdlib.max 0 (Atomic.get t.tail - Atomic.get t.head)
