exception Closed

(* Hot-path layout:
   - [head]/[tail] are padded onto their own cache lines (Pad.atomic), so a
     producer advancing [tail] never invalidates the consumer's spin on
     [head] and vice versa.
   - Each side keeps a *cached* copy of the peer's index (again padded and
     single-writer): the producer only re-reads [head] when the queue looks
     full against its cache, so in steady state an operation touches no
     shared line but its own counter.
   - [cap] is the exact requested capacity: a queue asked for 5 slots admits
     exactly 5 items even though the backing buffer is rounded to 8 for
     mask-indexing. *)
type 'a t = {
  buf : 'a array;
  mask : int;
  cap : int;
  dummy : 'a;
  head : int Atomic.t;  (* next slot to pop; advanced only by the consumer *)
  tail : int Atomic.t;  (* next slot to fill; advanced only by the producer *)
  closed_ : bool Atomic.t;
  head_cache : Pad.cell;  (* producer's view of head; producer-only *)
  tail_cache : Pad.cell;  (* consumer's view of tail; consumer-only *)
}

let create ~dummy ~capacity =
  if capacity <= 0 then invalid_arg "Spsc.create: capacity must be positive";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    buf = Array.make !cap dummy;
    mask = !cap - 1;
    cap = capacity;
    dummy;
    head = Pad.atomic 0;
    tail = Pad.atomic 0;
    closed_ = Pad.atomic false;
    head_cache = Pad.cell 0;
    tail_cache = Pad.cell 0;
  }

let capacity t = t.cap
let close t = Atomic.set t.closed_ true
let closed t = Atomic.get t.closed_

let try_push t x =
  let tail = Atomic.get t.tail in
  (if tail - t.head_cache.Pad.v >= t.cap then
     (* Looks full against the cached view: refresh from the shared index. *)
     t.head_cache.Pad.v <- Atomic.get t.head);
  if tail - t.head_cache.Pad.v >= t.cap then false
  else begin
    t.buf.(tail land t.mask) <- x;
    (* seq_cst store publishes the slot write to the consumer *)
    Atomic.set t.tail (tail + 1);
    true
  end

(* Bulk publish: writes as many of [src.(pos .. pos+len-1)] as fit, with a
   single atomic store of [tail] covering all of them.  Returns the number
   written.  Producer only. *)
let try_push_array t src ~pos ~len =
  if len = 0 then 0
  else begin
    let tail = Atomic.get t.tail in
    (if tail + len - t.head_cache.Pad.v > t.cap then
       t.head_cache.Pad.v <- Atomic.get t.head);
    let room = t.cap - (tail - t.head_cache.Pad.v) in
    let n = Stdlib.min len room in
    if n <= 0 then 0
    else begin
      for k = 0 to n - 1 do
        t.buf.((tail + k) land t.mask) <- src.(pos + k)
      done;
      Atomic.set t.tail (tail + n);
      n
    end
  end

let push ?wd ?(role = "producer") t x =
  if Atomic.get t.closed_ then raise Closed;
  if not (try_push t x) then begin
    let pushed = ref false in
    let pred () =
      Atomic.get t.closed_
      ||
      let ok = try_push t x in
      pushed := ok;
      ok
    in
    (match wd with
    | Some wd -> Watchdog.wait wd ~role ~for_:"queue slot" pred
    | None -> Backoff.wait_until pred);
    if not !pushed then raise Closed
  end

let try_pop t =
  let head = Atomic.get t.head in
  (if t.tail_cache.Pad.v - head <= 0 then
     t.tail_cache.Pad.v <- Atomic.get t.tail);
  if t.tail_cache.Pad.v - head <= 0 then None
  else begin
    let i = head land t.mask in
    let x = t.buf.(i) in
    t.buf.(i) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some x
  end

(* Bulk drain: pops up to [len] items into [dst.(pos ..)], with a single
   atomic store of [head] covering all of them.  Returns the number popped
   (0 when empty — check [closed] separately).  Consumer only. *)
let pop_chunk t dst ~pos ~len =
  if len = 0 then 0
  else begin
    let head = Atomic.get t.head in
    (if t.tail_cache.Pad.v - head < len then
       t.tail_cache.Pad.v <- Atomic.get t.tail);
    let avail = t.tail_cache.Pad.v - head in
    let n = Stdlib.min len avail in
    if n <= 0 then 0
    else begin
      for k = 0 to n - 1 do
        let i = (head + k) land t.mask in
        dst.(pos + k) <- t.buf.(i);
        t.buf.(i) <- t.dummy
      done;
      Atomic.set t.head (head + n);
      n
    end
  end

let pop ?wd ?(role = "consumer") t =
  match try_pop t with
  | Some x -> x
  | None ->
      let r = ref t.dummy in
      let got = ref false in
      (* Drain before reporting closure: items pushed before [close] must
         still reach the consumer, so emptiness is re-checked first. *)
      let pred () =
        match try_pop t with
        | Some x ->
            r := x;
            got := true;
            true
        | None -> Atomic.get t.closed_
      in
      (match wd with
      | Some wd -> Watchdog.wait wd ~role ~for_:"queue item" pred
      | None -> Backoff.wait_until pred);
      if !got then !r else raise Closed

let length t = Stdlib.max 0 (Atomic.get t.tail - Atomic.get t.head)

(* ---- producer-side write combining ---- *)

module Batch = struct
  type 'a queue = 'a t

  type 'a b = { q : 'a queue; store : 'a array; mutable fill : int }

  let create ?(size = 32) q =
    if size <= 0 then invalid_arg "Spsc.Batch.create: size must be positive";
    { q; store = Array.make size q.dummy; fill = 0 }

  let queue b = b.q
  let pending b = b.fill
  let size b = Array.length b.store

  let try_flush b =
    if b.fill = 0 then true
    else begin
      let n = try_push_array b.q b.store ~pos:0 ~len:b.fill in
      if n > 0 && n < b.fill then
        Array.blit b.store n b.store 0 (b.fill - n);
      b.fill <- b.fill - n;
      b.fill = 0
    end

  let flush ?wd ?(role = "producer") b =
    if not (try_flush b) then begin
      let pred () = Atomic.get b.q.closed_ || try_flush b in
      (match wd with
      | Some wd -> Watchdog.wait wd ~role ~for_:"queue space for batch" pred
      | None -> Backoff.wait_until pred);
      if b.fill > 0 then raise Closed
    end

  let add b x =
    if b.fill >= Array.length b.store then ignore (try_flush b);
    if b.fill >= Array.length b.store then false
    else begin
      b.store.(b.fill) <- x;
      b.fill <- b.fill + 1;
      true
    end

  let push ?wd ?role b x =
    if Atomic.get b.q.closed_ then raise Closed;
    if not (add b x) then begin
      flush ?wd ?role b;
      b.store.(0) <- x;
      b.fill <- 1
    end
end
