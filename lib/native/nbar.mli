(** Reusable sense-reversing barrier over [Atomic] counters — the native
    counterpart of {!Xinv_sim.Barrier}.  Crossing it establishes
    happens-before between everything done before the barrier on any party
    and everything done after it on any other. *)

type t

val create : parties:int -> t

val wait : t -> unit

val waits : t -> int
(** Completed barrier episodes. *)
