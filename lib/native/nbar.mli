(** Reusable sense-reversing barrier over [Atomic] counters — the native
    counterpart of {!Xinv_sim.Barrier}.  Crossing it establishes
    happens-before between everything done before the barrier on any party
    and everything done after it on any other.

    A barrier can be {e poisoned} when a party dies: instead of leaving
    the surviving parties spinning for an arrival that will never come,
    every current and future [wait] raises {!Poisoned}. *)

type t

exception Poisoned

val create : parties:int -> t

val wait : ?wd:Watchdog.t -> ?role:string -> t -> unit
(** @raise Poisoned if the barrier is or becomes poisoned while waiting
      (a release racing the poison wins — parties already released
      proceed normally).
    @raise Watchdog.Stalled / Watchdog.Cancelled per [wd]'s bounds. *)

val poison : t -> unit
(** Release all waiting parties with {!Poisoned}; subsequent waits raise
    immediately.  Irreversible. *)

val poisoned : t -> bool

val waits : t -> int
(** Completed barrier episodes. *)
