type t = Off | Spin of float

(* One spin unit is a data-dependent float multiply-add chain the compiler
   cannot collapse; [Sys.opaque_identity] keeps it live. *)
let spin_units n =
  let x = ref 1.0 in
  for _ = 1 to n do
    x := Float.fma !x 1.0000001 1e-9
  done;
  ignore (Sys.opaque_identity !x)

(* ns per spin unit, measured once on first use.  Not a [lazy]: forcing
   those concurrently from several domains is unsafe, whereas a racy
   double-measurement is merely redundant. *)
let cached = Atomic.make 0.0

let measure () =
  let calib = 2_000_000 in
  spin_units calib;
  (* warm *)
  let t0 = Unix.gettimeofday () in
  spin_units calib;
  let dt = Unix.gettimeofday () -. t0 in
  let m = Float.max 0.05 (1e9 *. dt /. float_of_int calib) in
  Atomic.set cached m;
  m

let ns_per_unit () =
  let v = Atomic.get cached in
  if v > 0. then v else measure ()

let calibrated_spin ~ns_per_cycle =
  ignore (ns_per_unit ());
  Spin ns_per_cycle

let burn w cycles =
  match w with
  | Off -> ()
  | Spin ns_per_cycle ->
      if cycles > 0. then begin
        let units = cycles *. ns_per_cycle /. ns_per_unit () in
        if units >= 1. then spin_units (int_of_float units)
      end
