type kind =
  | Worker_raise
  | Scheduler_die
  | Checker_die
  | Queue_stall
  | Poison_cond

type t = { kind : kind; domain : int; site : int; fired_ : bool Atomic.t }

type spec =
  | Exact of { kind : kind; domain : int; site : int }
  | Random of int

exception Injected of { kind : kind; domain : int; site : int }

let kind_name = function
  | Worker_raise -> "raise"
  | Scheduler_die -> "sched-die"
  | Checker_die -> "checker-die"
  | Queue_stall -> "stall"
  | Poison_cond -> "poison"

let all_kinds =
  [| Worker_raise; Scheduler_die; Checker_die; Queue_stall; Poison_cond |]

let describe { kind; domain; site; _ } =
  let dom = if domain < 0 then "*" else string_of_int domain in
  Printf.sprintf "%s@%s:%d" (kind_name kind) dom site

let spec_to_string = function
  | Random seed -> Printf.sprintf "rand:%d" seed
  | Exact { kind; domain; site } ->
      let dom = if domain < 0 then "*" else string_of_int domain in
      (match kind with
      | Scheduler_die | Checker_die ->
          Printf.sprintf "%s@%d" (kind_name kind) site
      | _ -> Printf.sprintf "%s@%s:%d" (kind_name kind) dom site)

let spec_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "bad fault spec %S (expected KIND@DOMAIN:SITE, KIND@SITE or rand:SEED)"
         s)
  in
  let int_of x = int_of_string_opt (String.trim x) in
  match String.index_opt s ':' with
  | Some i when String.length s > 5 && String.sub s 0 5 = "rand:" -> (
      ignore i;
      match int_of (String.sub s 5 (String.length s - 5)) with
      | Some seed -> Ok (Random seed)
      | None -> fail ())
  | _ -> (
      match String.index_opt s '@' with
      | None -> fail ()
      | Some at -> (
          let kind_s = String.sub s 0 at in
          let rest = String.sub s (at + 1) (String.length s - at - 1) in
          let kind =
            match kind_s with
            | "raise" -> Some Worker_raise
            | "sched-die" -> Some Scheduler_die
            | "checker-die" -> Some Checker_die
            | "stall" -> Some Queue_stall
            | "poison" -> Some Poison_cond
            | _ -> None
          in
          match kind with
          | None -> fail ()
          | Some kind -> (
              match String.index_opt rest ':' with
              | None -> (
                  (* KIND@SITE: any domain *)
                  match int_of rest with
                  | Some site when site >= 0 ->
                      Ok (Exact { kind; domain = -1; site })
                  | _ -> fail ())
              | Some c -> (
                  let dom_s = String.sub rest 0 c in
                  let site_s =
                    String.sub rest (c + 1) (String.length rest - c - 1)
                  in
                  let domain =
                    if dom_s = "*" then Some (-1) else int_of dom_s
                  in
                  match (domain, int_of site_s) with
                  | Some domain, Some site when site >= 0 ->
                      Ok (Exact { kind; domain; site })
                  | _ -> fail ()))))

let resolve ~domains ~sites spec =
  match spec with
  | Exact { kind; domain; site } ->
      { kind; domain; site; fired_ = Atomic.make false }
  | Random seed ->
      let p = Xinv_util.Prng.create ~seed in
      let kind = all_kinds.(Xinv_util.Prng.int p (Array.length all_kinds)) in
      let domain = Xinv_util.Prng.int p (Stdlib.max 1 domains) in
      let site = Xinv_util.Prng.int p (Stdlib.max 1 sites) in
      { kind; domain; site; fired_ = Atomic.make false }

let fires fo want ~domain ~site =
  match fo with
  | None -> false
  | Some f ->
      f.kind = want
      && (f.domain < 0 || f.domain = domain)
      && site >= f.site
      && Atomic.compare_and_set f.fired_ false true

let inject fo want ~domain ~site =
  if fires fo want ~domain ~site then
    match fo with
    | Some { kind; site = _; _ } -> raise (Injected { kind; domain; site })
    | None -> assert false

let fired = function None -> false | Some f -> Atomic.get f.fired_
let kind = function None -> None | Some f -> Some f.kind
let info { kind; domain; site; _ } = (kind, domain, site)
