module Ir = Xinv_ir
module Par = Xinv_parallel
module Obs = Xinv_obs

let run_seq ?(work = Work.Off) (p : Ir.Program.t) env =
  let tasks = ref 0 in
  let wall_ns =
    Nrun.timed (fun () ->
        for t = 0 to p.Ir.Program.outer_trip - 1 do
          let env_t = Ir.Env.with_outer env t in
          List.iter
            (fun (il : Ir.Program.inner) ->
              List.iter
                (fun (s : Ir.Stmt.t) ->
                  Work.burn work (s.Ir.Stmt.cost env_t);
                  s.Ir.Stmt.exec env_t)
                il.Ir.Program.pre;
              let trip = il.Ir.Program.trip env_t in
              tasks := !tasks + trip;
              for j = 0 to trip - 1 do
                let env_j = Ir.Env.with_inner env_t j in
                List.iter
                  (fun (s : Ir.Stmt.t) ->
                    Work.burn work (s.Ir.Stmt.cost env_j);
                    s.Ir.Stmt.exec env_j)
                  il.Ir.Program.body
              done)
            p.Ir.Program.inners
        done)
  in
  Nrun.make ~technique:"native-sequential" ~domains:1 ~workers:1 ~wall_ns
    ~tasks:!tasks ~invocations:(Ir.Program.invocations p) ()

(* Owner of a write access: the same index-range partition the simulator's
   LOCALWRITE uses ({!Xinv_parallel.Intra.owner}). *)
let owner_of env ~threads (a : Ir.Access.t) =
  let mem = env.Ir.Env.mem in
  let idx = Ir.Expr.eval env a.Ir.Access.index in
  let size = Ir.Memory.size mem a.Ir.Access.base in
  idx * threads / size

let run ~pool ?wd ?fault ?fr ?(work = Work.Off) ?(grain = 1) ~threads ~plan
    (p : Ir.Program.t) env =
  assert (threads > 0);
  (* Flight ring mapping: thread tid -> ring tid. *)
  let ev k ~domain ~a ~b =
    match fr with Some f -> Obs.Flight.record f ~domain k ~a ~b | None -> ()
  in
  if grain <= 0 then invalid_arg "Nbarrier.run: grain must be positive";
  if threads - 1 > Pool.workers pool then
    invalid_arg "Nbarrier.run: pool too small for the requested thread count";
  let wd = match wd with Some w -> w | None -> Watchdog.unbounded () in
  let stat = Stallcat.create () in
  let bar = Nbar.create ~parties:threads in
  let nlocks = 64 in
  let locks = Array.init nlocks (fun _ -> Mutex.create ()) in
  let total_words = Ir.Memory.total_words env.Ir.Env.mem in
  let lock_of env_j (a : Ir.Access.t) =
    let addr = Ir.Access.addr env_j env_j.Ir.Env.mem a in
    locks.(addr * nlocks / Stdlib.max 1 total_words)
  in
  let tasks = ref 0 and invocations = ref 0 in
  let exec_stmt env_j (s : Ir.Stmt.t) =
    Work.burn work (s.Ir.Stmt.cost env_j);
    s.Ir.Stmt.exec env_j
  in
  let exec_iteration tech tid env_j (il : Ir.Program.inner) =
    match (tech : Par.Intra.technique) with
    | Par.Intra.Doall | Par.Intra.Spec_doall ->
        List.iter (exec_stmt env_j) il.Ir.Program.body
    | Par.Intra.Doany ->
        List.iter
          (fun (s : Ir.Stmt.t) ->
            if s.Ir.Stmt.commutes && s.Ir.Stmt.writes <> [] then begin
              let m = lock_of env_j (List.hd s.Ir.Stmt.writes) in
              Mutex.lock m;
              Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () ->
                  exec_stmt env_j s)
            end
            else exec_stmt env_j s)
          il.Ir.Program.body
    | Par.Intra.Localwrite ->
        let body = il.Ir.Program.body in
        let owners_of (s : Ir.Stmt.t) =
          List.sort_uniq compare (List.map (owner_of env_j ~threads) s.Ir.Stmt.writes)
        in
        let all_owners = List.concat_map owners_of body |> List.sort_uniq compare in
        let executor = match all_owners with o :: _ -> o | [] -> 0 in
        List.iter
          (fun (s : Ir.Stmt.t) ->
            if s.Ir.Stmt.writes = [] then begin
              (* Redundant traversal on every thread; semantics once. *)
              Work.burn work (s.Ir.Stmt.cost env_j);
              if tid = executor then s.Ir.Stmt.exec env_j
            end
            else if List.mem tid (owners_of s) then exec_stmt env_j s)
          body
  in
  let ninners = List.length p.Ir.Program.inners in
  let worker tid () =
    let role = Printf.sprintf "worker %d" tid in
    let episode = ref 0 in
    let bwait () =
      ev Obs.Flight.Barrier_arrive ~domain:tid ~a:!episode ~b:0;
      Stallcat.timed ?fr ~domain:tid stat Stallcat.Barrier_wait (fun () ->
          Nbar.wait ~wd ~role bar);
      ev Obs.Flight.Barrier_release ~domain:tid ~a:!episode ~b:0;
      incr episode
    in
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iteri
        (fun k (il : Ir.Program.inner) ->
          let site = (t * ninners) + k in
          let tech = plan il.Ir.Program.ilabel in
          if tid = 0 then
            List.iter
              (fun (s : Ir.Stmt.t) ->
                Work.burn work (s.Ir.Stmt.cost env_t);
                s.Ir.Stmt.exec env_t)
              il.Ir.Program.pre;
          (* Unlike the simulator, real workers race ahead: order the
             sequential region before any body iteration reads it. *)
          bwait ();
          Fault.inject fault Fault.Worker_raise ~domain:tid ~site;
          if Fault.fires fault Fault.Poison_cond ~domain:tid ~site then
            Watchdog.park wd ~role;
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then begin
            incr invocations;
            tasks := !tasks + trip;
            ev Obs.Flight.Dispatch ~domain:0 ~a:site ~b:trip
          end;
          if Par.Intra.visits_all_iterations tech then
            for j = 0 to trip - 1 do
              exec_iteration tech tid (Ir.Env.with_inner env_t j) il
            done
          else begin
            (* Block-cyclic: thread [tid] owns blocks of [grain] consecutive
               iterations, [threads * grain] apart — grain 1 is the classic
               cyclic distribution, larger grains trade balance for locality
               (taskloop-style chunking). *)
            let base = ref (tid * grain) in
            while !base < trip do
              let stop = Stdlib.min trip (!base + grain) in
              for j = !base to stop - 1 do
                exec_iteration tech tid (Ir.Env.with_inner env_t j) il
              done;
              base := !base + (threads * grain)
            done
          end;
          bwait ();
          if tid = 0 then ev Obs.Flight.Epoch_commit ~domain:0 ~a:site ~b:0)
        p.Ir.Program.inners
    done
  in
  let cancel_cohort e =
    ignore (Watchdog.cancel wd e);
    Nbar.poison bar
  in
  let guard tid fn () =
    try fn ()
    with e -> (
      let first = Watchdog.cancel wd e in
      Nbar.poison bar;
      match e with
      | (Watchdog.Cancelled _ | Nbar.Poisoned) when not first ->
          ignore tid (* secondary unwind, not a failure of its own *)
      | _ -> raise e)
  in
  let fns = Array.init threads (fun tid -> guard tid (worker tid)) in
  let wall_ns =
    Nrun.timed (fun () ->
        try Pool.run ~wd ~on_stall:cancel_cohort pool fns
        with e -> (
          match Watchdog.root_cause wd with
          | Some root when root != e -> raise root
          | _ -> raise e))
  in
  let tech0 = plan (List.hd p.Ir.Program.inners).Ir.Program.ilabel in
  Nrun.make
    ~technique:(Printf.sprintf "native-%s+barrier" (Par.Intra.name tech0))
    ~domains:threads ~workers:threads ~wall_ns ~tasks:!tasks
    ~invocations:!invocations ~barrier_episodes:(Nbar.waits bar)
    ~stalls:(Stallcat.to_list stat) ()
