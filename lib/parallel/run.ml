type t = {
  technique : string;
  threads : int;
  makespan : float;
  engine : Xinv_sim.Engine.t;
  tasks : int;
  invocations : int;
  barrier_episodes : int;
  checks : int;
  misspecs : int;
  recorder : Xinv_obs.Recorder.t option;
}

let make ~technique ~threads ~makespan ~engine ?(tasks = 0) ?(invocations = 0)
    ?(barrier_episodes = 0) ?(checks = 0) ?(misspecs = 0) ?recorder () =
  {
    technique;
    threads;
    makespan;
    engine;
    tasks;
    invocations;
    barrier_episodes;
    checks;
    misspecs;
    recorder;
  }

let speedup ~seq_cost r = if r.makespan <= 0. then infinity else seq_cost /. r.makespan

let category_total r cat = Xinv_sim.Engine.total r.engine cat

let barrier_overhead_pct r =
  let cap = float_of_int r.threads *. r.makespan in
  if cap <= 0. then 0.
  else 100. *. category_total r Xinv_sim.Category.Barrier_wait /. cap

let utilization r =
  let cap = float_of_int r.threads *. r.makespan in
  if cap <= 0. then 0.
  else
    (category_total r Xinv_sim.Category.Work +. category_total r Xinv_sim.Category.Sequential)
    /. cap

let report r = Xinv_obs.Report.build ~engine:r.engine ?recorder:r.recorder ()

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d threads, makespan %.0f@,tasks %d, invocations %d, barriers %d, checks %d, misspecs %d@,barrier overhead %.1f%%, utilization %.1f%%@]"
    r.technique r.threads r.makespan r.tasks r.invocations r.barrier_episodes r.checks
    r.misspecs (barrier_overhead_pct r)
    (100. *. utilization r)
