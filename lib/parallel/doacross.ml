module Sim = Xinv_sim
module Ir = Xinv_ir

(* Statement ids of each inner loop that participate in a cross-iteration
   dependence cycle: these form the serialized portion. *)
let serialized_sids (p : Ir.Program.t) =
  let pdg = Ir.Pdg.build p in
  List.mapi
    (fun ii (il : Ir.Program.inner) ->
      let sids =
        List.filter_map
          (fun (s : Ir.Stmt.t) ->
            let sid = s.Ir.Stmt.sid in
            let in_cycle =
              List.exists
                (fun (a, b) ->
                  (a = sid || b = sid)
                  && (Ir.Pdg.loc_of pdg a).Ir.Pdg.inner_idx = ii
                  && (Ir.Pdg.loc_of pdg b).Ir.Pdg.inner_idx = ii)
                (Ir.Pdg.cross_iter_pairs pdg)
            in
            if in_cycle then Some sid else None)
          il.Ir.Program.body
      in
      (il.Ir.Program.ilabel, sids))
    p.Ir.Program.inners

let run ?(machine = Sim.Machine.default) ?obs ~threads (p : Ir.Program.t) env =
  assert (threads > 0);
  let module Obs = Xinv_obs in
  let m_crossings =
    match obs with
    | Some o -> Some (Obs.Metrics.counter (Obs.Recorder.metrics o) "barrier.crossings")
    | None -> None
  in
  let eng = Sim.Engine.create () in
  let bar = Sim.Barrier.create ~parties:threads in
  let serial = serialized_sids p in
  let barrier_cost =
    machine.Sim.Machine.barrier_base
    +. (machine.Sim.Machine.barrier_per_thread *. float_of_int threads)
  in
  let comm = machine.Sim.Machine.queue_produce +. machine.Sim.Machine.queue_consume in
  let tasks = ref 0 and invocations = ref 0 in
  (* One progress cell per invocation occurrence, allocated up front. *)
  let cells = Hashtbl.create 64 in
  let ninners = List.length p.Ir.Program.inners in
  for t = 0 to p.Ir.Program.outer_trip - 1 do
    for ii = 0 to ninners - 1 do
      Hashtbl.replace cells (t, ii) (Sim.Mono_cell.create ~init:(-1) ())
    done
  done;
  let worker tid () =
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iteri
        (fun ii (il : Ir.Program.inner) ->
          if tid = 0 then begin
            List.iter (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.exec env_t) il.Ir.Program.pre;
            incr invocations
          end;
          List.iter
            (fun (s : Ir.Stmt.t) ->
              let cat =
                if tid = 0 then Sim.Category.Sequential else Sim.Category.Redundant
              in
              Sim.Proc.advance ~label:s.Ir.Stmt.name cat (s.Ir.Stmt.cost env_t))
            il.Ir.Program.pre;
          let cell = Hashtbl.find cells (t, ii) in
          let serial_sids = List.assoc il.Ir.Program.ilabel serial in
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then tasks := !tasks + trip;
          let j = ref tid in
          while !j < trip do
            let env_j = Ir.Env.with_inner env_t !j in
            (* Parallel portion first. *)
            List.iter
              (fun (s : Ir.Stmt.t) ->
                if not (List.mem s.Ir.Stmt.sid serial_sids) then begin
                  Sim.Proc.work ~label:s.Ir.Stmt.name
                    (Sim.Machine.work_factor machine ~threads *. s.Ir.Stmt.cost env_j);
                  s.Ir.Stmt.exec env_j
                end)
              il.Ir.Program.body;
            (* Serialized portion in strict iteration order. *)
            if serial_sids <> [] then begin
              (match obs with
              | None -> Sim.Mono_cell.wait_ge cell (!j - 1)
              | Some o ->
                  let module Obs = Xinv_obs in
                  let t0 = Sim.Proc.now () in
                  Sim.Mono_cell.wait_ge cell (!j - 1);
                  let dur = Sim.Proc.now () -. t0 in
                  if dur > 0. then
                    Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                      (Obs.Event.Worker_stalled { cause = Obs.Event.Sync_cond; dur }));
              Sim.Proc.advance ~label:"recv" Sim.Category.Queue comm;
              List.iter
                (fun (s : Ir.Stmt.t) ->
                  if List.mem s.Ir.Stmt.sid serial_sids then begin
                    Sim.Proc.work ~label:s.Ir.Stmt.name
                    (Sim.Machine.work_factor machine ~threads *. s.Ir.Stmt.cost env_j);
                    s.Ir.Stmt.exec env_j
                  end)
                il.Ir.Program.body;
              Sim.Mono_cell.set cell !j
            end;
            j := !j + threads
          done;
          Sim.Barrier.wait ~cost:barrier_cost bar;
          match obs with
          | None -> ()
          | Some o ->
              let module Obs = Xinv_obs in
              (match m_crossings with Some c -> Obs.Metrics.incr c | None -> ());
              Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                (Obs.Event.Barrier_crossed { episode = Sim.Barrier.waits bar }))
        p.Ir.Program.inners
    done
  in
  for tid = 0 to threads - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "doacross%d" tid) (worker tid))
  done;
  Sim.Engine.run eng;
  Run.make ~technique:"DOACROSS+barrier" ~threads ~makespan:(Sim.Engine.now eng)
    ~engine:eng ~tasks:!tasks ~invocations:!invocations
    ~barrier_episodes:(Sim.Barrier.waits bar) ?recorder:obs ()
