module Sim = Xinv_sim
module Ir = Xinv_ir

let stages_of_inner (pdg : Ir.Pdg.t) ii (il : Ir.Program.inner) =
  let body = il.Ir.Program.body in
  let sids = Array.of_list (List.map (fun s -> s.Ir.Stmt.sid) body) in
  let idx_of = Hashtbl.create 8 in
  Array.iteri (fun i sid -> Hashtbl.replace idx_of sid i) sids;
  let n = Array.length sids in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Ir.Pdg.edge) ->
      match (Hashtbl.find_opt idx_of e.Ir.Pdg.src, Hashtbl.find_opt idx_of e.Ir.Pdg.dst) with
      | Some i, Some j
        when (Ir.Pdg.loc_of pdg e.Ir.Pdg.src).Ir.Pdg.inner_idx = ii
             && (Ir.Pdg.loc_of pdg e.Ir.Pdg.dst).Ir.Pdg.inner_idx = ii
             && i <> j ->
          if not (List.mem j adj.(i)) then adj.(i) <- j :: adj.(i)
      | _ -> ())
    pdg.Ir.Pdg.edges;
  let comps = Ir.Scc.topological { Ir.Scc.nodes = n; succs = (fun i -> adj.(i)) } in
  List.map (fun comp -> List.map (fun i -> sids.(i)) comp) comps

let stages (p : Ir.Program.t) =
  let pdg = Ir.Pdg.build p in
  List.mapi
    (fun ii (il : Ir.Program.inner) ->
      (il.Ir.Program.ilabel, stages_of_inner pdg ii il))
    p.Ir.Program.inners

let merge_stages ~max_stages groups =
  let n = List.length groups in
  if n <= max_stages then groups
  else begin
    let keep = max_stages - 1 in
    let rec split i = function
      | [] -> ([], [])
      | g :: rest ->
          if i < keep then
            let front, back = split (i + 1) rest in
            (g :: front, back)
          else ([], g :: rest)
    in
    let front, back = split 0 groups in
    front @ [ List.concat back ]
  end

let run ?(machine = Sim.Machine.default) ?obs ~threads (p : Ir.Program.t) env =
  assert (threads > 0);
  let module Obs = Xinv_obs in
  let m_crossings =
    match obs with
    | Some o -> Some (Obs.Metrics.counter (Obs.Recorder.metrics o) "barrier.crossings")
    | None -> None
  in
  let eng = Sim.Engine.create () in
  let bar = Sim.Barrier.create ~parties:threads in
  let all_stages = stages p in
  let barrier_cost =
    machine.Sim.Machine.barrier_base
    +. (machine.Sim.Machine.barrier_per_thread *. float_of_int threads)
  in
  let tasks = ref 0 and invocations = ref 0 in
  (* Queues between consecutive stages, shared across invocations: the token
     is the iteration number. *)
  let queues =
    Array.init threads (fun _ ->
        Sim.Channel.create ~produce_cost:machine.Sim.Machine.queue_produce
          ~consume_cost:machine.Sim.Machine.queue_consume ())
  in
  let worker tid () =
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          if tid = 0 then begin
            List.iter (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.exec env_t) il.Ir.Program.pre;
            incr invocations
          end;
          List.iter
            (fun (s : Ir.Stmt.t) ->
              let cat =
                if tid = 0 then Sim.Category.Sequential else Sim.Category.Redundant
              in
              Sim.Proc.advance ~label:s.Ir.Stmt.name cat (s.Ir.Stmt.cost env_t))
            il.Ir.Program.pre;
          let groups =
            merge_stages ~max_stages:threads
              (List.assoc il.Ir.Program.ilabel all_stages)
          in
          let nstages = List.length groups in
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then tasks := !tasks + trip;
          if tid < nstages then begin
            let my_sids = List.nth groups tid in
            for j = 0 to trip - 1 do
              if tid > 0 then begin
                match obs with
                | None -> ignore (Sim.Channel.consume queues.(tid))
                | Some o ->
                    let module Obs = Xinv_obs in
                    let t0 = Sim.Proc.now () in
                    ignore (Sim.Channel.consume queues.(tid));
                    let dur =
                      Sim.Proc.now () -. t0 -. machine.Sim.Machine.queue_consume
                    in
                    if dur > 0. then
                      Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                        (Obs.Event.Worker_stalled
                           { cause = Obs.Event.Queue_empty; dur })
              end;
              let env_j = Ir.Env.with_inner env_t j in
              List.iter
                (fun (s : Ir.Stmt.t) ->
                  if List.mem s.Ir.Stmt.sid my_sids then begin
                    Sim.Proc.work ~label:s.Ir.Stmt.name
                    (Sim.Machine.work_factor machine ~threads *. s.Ir.Stmt.cost env_j);
                    s.Ir.Stmt.exec env_j
                  end)
                il.Ir.Program.body;
              if tid < nstages - 1 then Sim.Channel.produce queues.(tid + 1) j
            done
          end;
          Sim.Barrier.wait ~cost:barrier_cost bar;
          match obs with
          | None -> ()
          | Some o ->
              let module Obs = Xinv_obs in
              (match m_crossings with Some c -> Obs.Metrics.incr c | None -> ());
              Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                (Obs.Event.Barrier_crossed { episode = Sim.Barrier.waits bar }))
        p.Ir.Program.inners
    done
  in
  for tid = 0 to threads - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "dswp%d" tid) (worker tid))
  done;
  Sim.Engine.run eng;
  Run.make ~technique:"DSWP+barrier" ~threads ~makespan:(Sim.Engine.now eng) ~engine:eng
    ~tasks:!tasks ~invocations:!invocations ~barrier_episodes:(Sim.Barrier.waits bar)
    ?recorder:obs ()
