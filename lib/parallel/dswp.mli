(** DSWP baseline (dissertation §2.2, Figure 2.5b).

    The inner-loop body is partitioned into pipeline stages along the
    topological order of its dependence SCCs; each stage runs on its own
    thread for all iterations of the invocation, with produce/consume queues
    between consecutive stages.  Stages beyond the thread budget are merged
    into the last stage. *)

val stages : Xinv_ir.Program.t -> (string * int list list) list
(** Per inner label: statement-id groups, pipeline order. *)

val run :
  ?machine:Xinv_sim.Machine.t ->
  ?obs:Xinv_obs.Recorder.t ->
  threads:int ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Run.t
