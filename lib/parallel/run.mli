(** Result of one simulated parallel execution of a region. *)

type t = {
  technique : string;
  threads : int;  (** worker threads (excluding scheduler/checker helpers) *)
  makespan : float;  (** virtual time from region start to completion *)
  engine : Xinv_sim.Engine.t;  (** retained for per-category accounting *)
  tasks : int;  (** inner-loop iterations executed (first try) *)
  invocations : int;
  barrier_episodes : int;
  checks : int;  (** speculation checking requests processed *)
  misspecs : int;  (** misspeculation recoveries *)
  recorder : Xinv_obs.Recorder.t option;
      (** the observability recorder the run was instrumented with, if any *)
}

val make :
  technique:string ->
  threads:int ->
  makespan:float ->
  engine:Xinv_sim.Engine.t ->
  ?tasks:int ->
  ?invocations:int ->
  ?barrier_episodes:int ->
  ?checks:int ->
  ?misspecs:int ->
  ?recorder:Xinv_obs.Recorder.t ->
  unit ->
  t

val speedup : seq_cost:float -> t -> float

val category_total : t -> Xinv_sim.Category.t -> float

val barrier_overhead_pct : t -> float
(** Share of all cores' time spent at barriers: Figure 4.3's metric. *)

val utilization : t -> float
(** Fraction of [threads * makespan] charged to useful work. *)

val report : t -> Xinv_obs.Report.t
(** Stall/utilization diagnosis from the engine accounting plus the event
    log when the run carried a recorder. *)

val pp : Format.formatter -> t -> unit
