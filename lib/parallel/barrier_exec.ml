module Sim = Xinv_sim
module Ir = Xinv_ir
module Obs = Xinv_obs

let run ?(machine = Sim.Machine.default) ?(nlocks = 64) ?(trace = false) ?obs ~threads
    ~plan (p : Ir.Program.t) env =
  assert (threads > 0);
  let m_crossings =
    match obs with
    | Some o -> Some (Obs.Metrics.counter (Obs.Recorder.metrics o) "barrier.crossings")
    | None -> None
  in
  let eng = Sim.Engine.create ~trace () in
  let bar = Sim.Barrier.create ~parties:threads in
  let locks =
    Array.init nlocks (fun _ ->
        Sim.Mutex.create ~acquire_cost:machine.Sim.Machine.lock_cost ())
  in
  let total_words = Ir.Memory.total_words env.Ir.Env.mem in
  let barrier_cost =
    machine.Sim.Machine.barrier_base
    +. (machine.Sim.Machine.barrier_per_thread *. float_of_int threads)
  in
  let tasks = ref 0 and invocations = ref 0 in
  let worker tid () =
    let ctx = Intra.make_ctx ~machine ~threads ~tid ~locks ~total_words in
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          let tech = plan il.Ir.Program.ilabel in
          (* Sequential region: semantics once (thread 0), cost everywhere. *)
          if tid = 0 then
            List.iter (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.exec env_t) il.Ir.Program.pre;
          let wf = Sim.Machine.work_factor machine ~threads in
          List.iter
            (fun (s : Ir.Stmt.t) ->
              let cat =
                if tid = 0 then Sim.Category.Sequential else Sim.Category.Redundant
              in
              Sim.Proc.advance ~label:s.Ir.Stmt.name cat (wf *. s.Ir.Stmt.cost env_t))
            il.Ir.Program.pre;
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then begin
            incr invocations;
            tasks := !tasks + trip
          end;
          if Intra.visits_all_iterations tech then
            for j = 0 to trip - 1 do
              Intra.exec_iteration tech ctx (Ir.Env.with_inner env_t j) il
            done
          else begin
            let j = ref tid in
            while !j < trip do
              Intra.exec_iteration tech ctx (Ir.Env.with_inner env_t !j) il;
              j := !j + threads
            done
          end;
          (match obs with
          | None -> Sim.Barrier.wait ~cost:barrier_cost bar
          | Some o ->
              let t0 = Sim.Proc.now () in
              Sim.Barrier.wait ~cost:barrier_cost bar;
              let dur = Sim.Proc.now () -. t0 -. barrier_cost in
              (match m_crossings with Some c -> Obs.Metrics.incr c | None -> ());
              if dur > 0. then
                Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                  (Obs.Event.Worker_stalled { cause = Obs.Event.Barrier; dur });
              Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                (Obs.Event.Barrier_crossed { episode = Sim.Barrier.waits bar })))
        p.Ir.Program.inners
    done
  in
  for tid = 0 to threads - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "worker%d" tid) (worker tid))
  done;
  Sim.Engine.run eng;
  Run.make ~technique:(Printf.sprintf "%s+barrier" (Intra.name (plan (List.hd p.Ir.Program.inners).Ir.Program.ilabel)))
    ~threads ~makespan:(Sim.Engine.now eng) ~engine:eng ~tasks:!tasks
    ~invocations:!invocations ~barrier_episodes:(Sim.Barrier.waits bar) ?recorder:obs ()

let run_uniform ?machine ~threads ~technique p env =
  run ?machine ~threads ~plan:(fun _ -> technique) p env
