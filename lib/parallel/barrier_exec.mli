(** The pthread-barrier parallel execution model (dissertation Figure 1.3b).

    Every worker thread runs the outer loop; each inner-loop invocation is
    parallelized with the technique the plan assigns to it; a global barrier
    separates consecutive invocations.  This is the baseline all of the
    dissertation's speedup figures compare against ("Pthread Barrier"). *)

val run :
  ?machine:Xinv_sim.Machine.t ->
  ?nlocks:int ->
  ?trace:bool ->
  ?obs:Xinv_obs.Recorder.t ->
  threads:int ->
  plan:(string -> Intra.technique) ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Run.t
(** [run ~threads ~plan p env] simulates the barrier-parallel execution,
    mutating [env]'s memory to the final program state.  [plan] maps an
    inner-loop label to its technique.  With [?obs], barrier crossings and
    stall episodes are recorded; recording consumes no virtual time, so the
    run is bit-identical with and without it. *)

val run_uniform :
  ?machine:Xinv_sim.Machine.t ->
  threads:int ->
  technique:Intra.technique ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Run.t
