(** DOACROSS baseline (dissertation §2.2, Figure 2.5a).

    Iterations are distributed cyclically; the statements participating in a
    cross-iteration dependence cycle execute strictly in iteration order,
    enforced by thread-wise synchronization, while the remaining statements
    overlap freely.  Barriers still separate invocations. *)

val run :
  ?machine:Xinv_sim.Machine.t ->
  ?obs:Xinv_obs.Recorder.t ->
  threads:int ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Run.t
