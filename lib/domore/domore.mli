(** The DOMORE runtime engine (dissertation Chapter 3).

    One scheduler thread executes the sequential regions, duplicates address
    computation ([computeAddr]) for every inner-loop iteration, detects
    dynamic dependences through shadow memory, and dispatches iterations with
    synchronization conditions to worker threads over lock-free queues.
    Workers stall only on conditions that name iterations they genuinely
    depend on, so iterations of consecutive invocations overlap — the
    non-speculative exploitation of cross-invocation parallelism. *)

type config = {
  machine : Xinv_sim.Machine.t;
  policy : Policy.t;
  workers : int;  (** worker threads, excluding the scheduler *)
}

val default_config : workers:int -> config

val run :
  ?config:config ->
  ?obs:Xinv_obs.Recorder.t ->
  ?trace:bool ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Xinv_parallel.Run.t
(** Simulates DOMORE execution; mutates the environment's memory to the
    final program state.  The scheduler is simulated thread 0, workers are
    threads 1..workers.  With [?obs], sync-condition forwarding, task
    dispatch, queue occupancy and worker stalls are recorded; recording
    consumes no virtual time, so the run is bit-identical with and without
    it.  @raise Invalid_argument if the plan re-partitioned body statements
    into the scheduler (unsupported degenerate case). *)

val transform_and_run :
  ?config:config ->
  ?obs:Xinv_obs.Recorder.t ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  (Xinv_parallel.Run.t, string) result
(** Full pipeline: MTCG compile (against a pristine copy of the input
    state), then {!run}. *)

val scheduler_worker_ratio : Xinv_parallel.Run.t -> float
(** Scheduler busy time over total worker work (Table 5.2's metric). *)
