(** Duplicated-scheduler DOMORE (dissertation §3.4, Figures 3.8/3.9).

    Every worker thread runs the scheduler code — sequential regions,
    [computeAddr], a private shadow memory, the scheduling decision — and
    executes only the iterations scheduled to itself, synchronizing through
    the shared [latestFinished] cells.  Trading redundant scheduling work for
    the absence of a dedicated scheduler thread is what lets DOMORE run
    inside the SPECCROSS framework (used for FLUIDANIMATE in Figure 5.6). *)

val run :
  ?config:Domore.config ->
  ?obs:Xinv_obs.Recorder.t ->
  plan:Xinv_ir.Mtcg.plan ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Xinv_parallel.Run.t
(** Workers only (no scheduler thread): simulated threads 0..workers-1. *)

val iteration_executor :
  config:Domore.config ->
  plan:Xinv_ir.Mtcg.plan ->
  cells:Xinv_sim.Mono_cell.t array ->
  shadow:Xinv_runtime.Shadow.t ->
  ?deps:Xinv_runtime.Shadow.Deps.t ->
  ?obs:Xinv_obs.Recorder.t ->
  iternum:int ref ->
  tid:int ->
  Xinv_ir.Env.t ->
  Xinv_ir.Program.inner ->
  unit
(** One iteration of the duplicated-scheduler protocol, exposed so the
    SPECCROSS executor can drive DOMORE-scheduled invocations: pays the
    duplicated scheduling cost, and if the iteration belongs to [tid], waits
    on its synchronization conditions, executes the body, and publishes
    completion.  [shadow] must be the calling thread's private copy;
    [iternum] the thread's private combined iteration counter; [deps] an
    optional per-thread scratch accumulator (allocated per call when
    omitted). *)
