module Sim = Xinv_sim
module Ir = Xinv_ir
module Rt = Xinv_runtime

let iteration_executor ~(config : Domore.config) ~(plan : Ir.Mtcg.plan) ~cells ~shadow
    ?deps ?obs ~iternum ~tid env (il : Ir.Program.inner) =
  let module Obs = Xinv_obs in
  let machine = config.Domore.machine in
  let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
  (* Duplicated scheduling work: every thread pays it for every iteration. *)
  Sim.Proc.advance ~label:"computeAddr" Sim.Category.Redundant
    (Ir.Slice.cost_per_iter slice +. machine.Sim.Machine.sched_per_iter);
  let waddrs = Ir.Slice.write_addresses slice env in
  let owner =
    Policy.pick config.Domore.policy ~loads:None ~mem:env.Ir.Env.mem
      ~threads:config.Domore.workers ~iter:!iternum ~write_addrs:waddrs
  in
  Sim.Proc.advance ~label:"shadow" Sim.Category.Redundant
    (machine.Sim.Machine.shadow_per_addr
    *. float_of_int (List.length slice.Ir.Slice.reads + List.length waddrs));
  let deps = match deps with Some d -> Rt.Shadow.Deps.clear d; d | None -> Rt.Shadow.Deps.create () in
  Ir.Slice.iter_read_addresses slice env (fun addr ->
      Rt.Shadow.note_read_deps shadow addr ~tid:owner ~iter:!iternum deps);
  List.iter
    (fun addr -> Rt.Shadow.note_write_deps shadow addr ~tid:owner ~iter:!iternum deps)
    waddrs;
  if owner = tid then begin
    let wf = Sim.Machine.work_factor machine ~threads:config.Domore.workers in
    (* Conditions are self-produced and self-consumed (Figure 3.9). *)
    Sim.Proc.advance ~label:"conds" Sim.Category.Queue
      (float_of_int (Rt.Shadow.Deps.length deps)
      *. (machine.Sim.Machine.queue_produce +. machine.Sim.Machine.queue_consume));
    Rt.Shadow.Deps.iter
      (fun ~tid:dt ~iter:di ->
        match obs with
        | None -> Sim.Mono_cell.wait_ge ~cat:Sim.Category.Sync_wait cells.(dt) di
        | Some o ->
            Obs.Metrics.incr
              (Obs.Metrics.counter (Obs.Recorder.metrics o) "domore.sync_conds_forwarded");
            Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
              (Obs.Event.Sync_forwarded { to_tid = tid; dep_tid = dt; dep_iter = di });
            let t0 = Sim.Proc.now () in
            Sim.Mono_cell.wait_ge ~cat:Sim.Category.Sync_wait cells.(dt) di;
            let dur = Sim.Proc.now () -. t0 in
            if dur > 0. then
              Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                (Obs.Event.Worker_stalled { cause = Obs.Event.Sync_cond; dur }))
      deps;
    List.iter
      (fun (s : Ir.Stmt.t) ->
        Sim.Proc.work ~label:s.Ir.Stmt.name (wf *. s.Ir.Stmt.cost env);
        s.Ir.Stmt.exec env)
      il.Ir.Program.body;
    Sim.Mono_cell.set cells.(tid) !iternum
  end;
  incr iternum

let run ?config ?obs ~(plan : Ir.Mtcg.plan) (p : Ir.Program.t) env =
  let config = match config with Some c -> c | None -> Domore.default_config ~workers:4 in
  let workers = config.Domore.workers in
  assert (workers > 0);
  if plan.Ir.Mtcg.scheduler_extra <> [] then
    invalid_arg "Duplicated.run: body statements re-partitioned into the scheduler";
  let eng = Sim.Engine.create () in
  let cells = Array.init workers (fun _ -> Sim.Mono_cell.create ~init:(-1) ()) in
  let tasks = ref 0 in
  let worker tid () =
    let shadow = Rt.Shadow.create () in
    let deps = Rt.Shadow.Deps.create () in
    let iternum = ref 0 in
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          (* Sequential region duplicated on every thread: threads may be in
             different outer iterations, so each executes its own copy; the
             privatizability requirement (per-invocation slots, deterministic
             values) makes the duplicated writes idempotent. *)
          let wf = Sim.Machine.work_factor config.Domore.machine ~threads:workers in
          List.iter
            (fun (s : Ir.Stmt.t) ->
              let cat =
                if tid = 0 then Sim.Category.Sequential else Sim.Category.Redundant
              in
              Sim.Proc.advance ~label:s.Ir.Stmt.name cat (wf *. s.Ir.Stmt.cost env_t);
              s.Ir.Stmt.exec env_t)
            il.Ir.Program.pre;
          let trip = il.Ir.Program.trip env_t in
          if tid = 0 then tasks := !tasks + trip;
          for j = 0 to trip - 1 do
            iteration_executor ~config ~plan ~cells ~shadow ~deps ?obs ~iternum ~tid
              (Ir.Env.with_inner env_t j) il
          done)
        p.Ir.Program.inners
    done
  in
  for w = 0 to workers - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "dup%d" w) (worker w))
  done;
  Sim.Engine.run eng;
  Xinv_parallel.Run.make ~technique:"DOMORE-dup" ~threads:workers
    ~makespan:(Sim.Engine.now eng) ~engine:eng ~tasks:!tasks
    ~invocations:(Ir.Program.invocations p) ?recorder:obs ()
