module Sim = Xinv_sim
module Ir = Xinv_ir
module Rt = Xinv_runtime

type config = { machine : Sim.Machine.t; policy : Policy.t; workers : int }

let default_config ~workers =
  { machine = Sim.Machine.default; policy = Policy.Round_robin; workers }

(* Queue payload.  Sync carries a {!Rt.Sync_cond.to_int}-encoded condition:
   the simulator's channels and the native backend's atomic int queues share
   one wire format. *)
type msg =
  | Sync of int
  | Do of { t : int; j : int; inner : int; iter : int }

let run ?config ?obs ?(trace = false) ~(plan : Ir.Mtcg.plan) (p : Ir.Program.t) env =
  let config = match config with Some c -> c | None -> default_config ~workers:3 in
  let { machine; policy; workers } = config in
  assert (workers > 0);
  if plan.Ir.Mtcg.scheduler_extra <> [] then
    invalid_arg "Domore.run: body statements re-partitioned into the scheduler";
  let module Obs = Xinv_obs in
  let m_conds, m_dispatched, h_occupancy =
    match obs with
    | Some o ->
        let m = Obs.Recorder.metrics o in
        ( Some (Obs.Metrics.counter m "domore.sync_conds_forwarded"),
          Some (Obs.Metrics.counter m "domore.tasks_dispatched"),
          Some (Obs.Metrics.histogram m "domore.queue_occupancy") )
    | None -> (None, None, None)
  in
  let eng = Sim.Engine.create ~trace () in
  let queues =
    Array.init workers (fun _ ->
        Sim.Channel.create ~produce_cost:machine.Sim.Machine.queue_produce
          ~consume_cost:machine.Sim.Machine.queue_consume ())
  in
  let cells = Array.init workers (fun _ -> Sim.Mono_cell.create ~init:(-1) ()) in
  let shadow = Rt.Shadow.create () in
  let wf = Sim.Machine.work_factor machine ~threads:(workers + 1) in
  let iternum = ref 0 in
  let conds = ref 0 in
  let bodies = Array.of_list p.Ir.Program.inners in
  (* Scratch reused across every iteration: the queue-load snapshot for the
     scheduling policy and the deduplicated dependence set. *)
  let loads = Array.make workers 0 in
  let loads_opt = Some loads in
  let deps = Rt.Shadow.Deps.create () in
  let scheduler () =
    for t = 0 to p.Ir.Program.outer_trip - 1 do
      let env_t = Ir.Env.with_outer env t in
      Array.iteri
        (fun ii (il : Ir.Program.inner) ->
          List.iter
            (fun (s : Ir.Stmt.t) ->
              Sim.Proc.advance ~label:s.Ir.Stmt.name Sim.Category.Sequential
                (wf *. s.Ir.Stmt.cost env_t);
              s.Ir.Stmt.exec env_t)
            il.Ir.Program.pre;
          let slice = Ir.Mtcg.slice_for plan il.Ir.Program.ilabel in
          let slice_cost = Ir.Slice.cost_per_iter slice in
          (* The slice's access count is static, so the per-iteration shadow
             charge is too. *)
          let shadow_cost =
            machine.Sim.Machine.shadow_per_addr
            *. float_of_int
                 (List.length slice.Ir.Slice.reads + List.length slice.Ir.Slice.writes)
          in
          let trip = il.Ir.Program.trip env_t in
          for j = 0 to trip - 1 do
            let env_j = Ir.Env.with_inner env_t j in
            Sim.Proc.advance ~label:"computeAddr" Sim.Category.Runtime
              (slice_cost +. machine.Sim.Machine.sched_per_iter);
            let waddrs = Ir.Slice.write_addresses slice env_j in
            for w = 0 to workers - 1 do
              loads.(w) <- Sim.Channel.length queues.(w)
            done;
            (match obs with
            | None -> ()
            | Some o ->
                let at = Sim.Proc.now () in
                for w = 0 to workers - 1 do
                  (match h_occupancy with
                  | Some h -> Obs.Metrics.observe h (float_of_int loads.(w))
                  | None -> ());
                  Obs.Recorder.record o ~at ~tid:0
                    (Obs.Event.Queue_sampled { queue = w; len = loads.(w) })
                done);
            let tid =
              Policy.pick policy ~loads:loads_opt ~mem:env.Ir.Env.mem ~threads:workers
                ~iter:!iternum ~write_addrs:waddrs
            in
            Sim.Proc.advance ~label:"shadow" Sim.Category.Runtime shadow_cost;
            Rt.Shadow.Deps.clear deps;
            Ir.Slice.iter_read_addresses slice env_j (fun addr ->
                Rt.Shadow.note_read_deps shadow addr ~tid ~iter:!iternum deps);
            List.iter
              (fun addr -> Rt.Shadow.note_write_deps shadow addr ~tid ~iter:!iternum deps)
              waddrs;
            Rt.Shadow.Deps.iter
              (fun ~tid:dt ~iter:di ->
                incr conds;
                (match obs with
                | None -> ()
                | Some o ->
                    (match m_conds with Some c -> Obs.Metrics.incr c | None -> ());
                    Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid:0
                      (Obs.Event.Sync_forwarded
                         { to_tid = tid; dep_tid = dt; dep_iter = di }));
                Sim.Channel.produce queues.(tid)
                  (Sync (Rt.Sync_cond.to_int (Rt.Sync_cond.Wait { dep_tid = dt; dep_iter = di }))))
              deps;
            (match obs with
            | None -> ()
            | Some o ->
                (match m_dispatched with Some c -> Obs.Metrics.incr c | None -> ());
                Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid:0
                  (Obs.Event.Task_dispatched { iter = !iternum; to_tid = tid }));
            Sim.Channel.produce queues.(tid) (Do { t; j; inner = ii; iter = !iternum });
            incr iternum
          done)
        bodies
    done;
    Array.iter
      (fun q -> Sim.Channel.produce q (Sync (Rt.Sync_cond.to_int Rt.Sync_cond.End_token)))
      queues
  in
  let worker w () =
    (* Engine tid of worker [w]: the scheduler is spawned first as thread 0. *)
    let tid = w + 1 in
    let consume q =
      match obs with
      | None -> Sim.Channel.consume q
      | Some o ->
          let t0 = Sim.Proc.now () in
          let msg = Sim.Channel.consume q in
          let dur = Sim.Proc.now () -. t0 -. machine.Sim.Machine.queue_consume in
          if dur > 0. then
            Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
              (Obs.Event.Worker_stalled { cause = Obs.Event.Queue_empty; dur });
          msg
    in
    let continue_ = ref true in
    while !continue_ do
      match consume queues.(w) with
      | Sync word -> (
          match Rt.Sync_cond.of_int word with
          | Rt.Sync_cond.End_token -> continue_ := false
          | Rt.Sync_cond.No_sync _ -> ()
          | Rt.Sync_cond.Wait { dep_tid; dep_iter } -> (
              match obs with
              | None ->
                  Sim.Mono_cell.wait_ge ~cat:Sim.Category.Sync_wait cells.(dep_tid)
                    dep_iter
              | Some o ->
                  let t0 = Sim.Proc.now () in
                  Sim.Mono_cell.wait_ge ~cat:Sim.Category.Sync_wait cells.(dep_tid)
                    dep_iter;
                  let dur = Sim.Proc.now () -. t0 in
                  if dur > 0. then
                    Obs.Recorder.record o ~at:(Sim.Proc.now ()) ~tid
                      (Obs.Event.Worker_stalled { cause = Obs.Event.Sync_cond; dur })))
      | Do { t; j; inner; iter } ->
          let il = bodies.(inner) in
          let env_j = Ir.Env.with_inner (Ir.Env.with_outer env t) j in
          List.iter
            (fun (s : Ir.Stmt.t) ->
              Sim.Proc.work ~label:s.Ir.Stmt.name (wf *. s.Ir.Stmt.cost env_j);
              s.Ir.Stmt.exec env_j)
            il.Ir.Program.body;
          Sim.Mono_cell.set cells.(w) iter
    done
  in
  let _sched = Sim.Engine.spawn eng ~name:"scheduler" scheduler in
  for w = 0 to workers - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "worker%d" w) (worker w))
  done;
  Sim.Engine.run eng;
  Xinv_parallel.Run.make ~technique:"DOMORE" ~threads:(workers + 1)
    ~makespan:(Sim.Engine.now eng) ~engine:eng ~tasks:!iternum
    ~invocations:(Ir.Program.invocations p) ~checks:!conds ?recorder:obs ()

let transform_and_run ?config ?obs (p : Ir.Program.t) env =
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable reason -> Error reason
  | Ir.Mtcg.Plan plan -> Ok (run ?config ?obs ~plan p env)

let scheduler_worker_ratio (r : Xinv_parallel.Run.t) =
  let eng = r.Xinv_parallel.Run.engine in
  let sched = Sim.Engine.busy eng 0 -. Sim.Engine.charged eng 0 Sim.Category.Idle in
  let work = Sim.Engine.total eng Sim.Category.Work in
  if work <= 0. then infinity else sched /. work
