module Ir = Xinv_ir
module Sim = Xinv_sim
module Par = Xinv_parallel
module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv
module Sp = Xinv_speccross

let run_spec_with ~sig_kind ~threads (wl : Wl.Workload.t) =
  let input = Common.spec_input wl in
  let program = wl.Wl.Workload.program input in
  let seq_env = wl.Wl.Workload.fresh_env input in
  let seq_cost = Ir.Seq_interp.run program seq_env in
  let train_input =
    match input with Wl.Workload.Ref_spec -> Wl.Workload.Train_spec | _ -> Wl.Workload.Train
  in
  let prof =
    Sp.Profiler.profile
      (wl.Wl.Workload.program train_input)
      (wl.Wl.Workload.fresh_env train_input)
  in
  let env = wl.Wl.Workload.fresh_env input in
  let workers = threads - 1 in
  let cfg =
    {
      (Sp.Runtime.default_config ~workers) with
      Sp.Runtime.sig_kind = sig_kind env;
      spec_distance =
        (match prof.Sp.Profiler.min_task_distance with
        | Some d -> Stdlib.max workers d
        | None ->
            Stdlib.max (4 * workers)
              (int_of_float (4. *. prof.Sp.Profiler.avg_tasks_per_epoch)));
      mode_of = Cx.spec_mode_of_plan wl;
    }
  in
  let r = Sp.Runtime.run ~config:cfg program env in
  assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
  (Par.Run.speedup ~seq_cost r, r.Par.Run.misspecs)

let signatures () =
  let kinds =
    [
      ("plain range", fun _env -> Xinv_runtime.Signature.Range);
      ( "per-array range",
        fun env -> Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem) );
      ("Bloom 4096/3", fun _ -> Xinv_runtime.Signature.Bloom { bits = 4096; hashes = 3 });
      ("exact set", fun _ -> Xinv_runtime.Signature.Exact);
    ]
  in
  let benches = [ "JACOBI"; "FDTD"; "SYMM" ] in
  let rows =
    List.map
      (fun name ->
        let wl = Wl.Registry.find name in
        name
        :: List.concat_map
             (fun (_, kind) ->
               let s, m = run_spec_with ~sig_kind:kind ~threads:16 wl in
               [ Xinv_util.Tab.fmt_speedup s; string_of_int m ])
             kinds)
      benches
  in
  let header =
    "benchmark"
    :: List.concat_map (fun (n, _) -> [ n; "missp." ]) kinds
  in
  "Ablation: access-signature scheme at 16 threads.  A signature may only\n\
   over-approximate, so coarse schemes stay correct but misspeculate on\n\
   false positives; the per-array range scheme (the paper's \"range of\n\
   array indices\") is as clean as the exact oracle at a fraction of the\n\
   cost.\n\n"
  ^ Xinv_util.Tab.render ~header rows

let policies () =
  let benches = [ "CG"; "BLACKSCHOLES"; "ECLAT"; "LLUBENCH" ] in
  let pols =
    [
      ("round-robin", Xinv_domore.Policy.Round_robin);
      ("mem-partition", Xinv_domore.Policy.Mem_partition);
      ("least-loaded", Xinv_domore.Policy.Least_loaded);
    ]
  in
  let rows =
    List.map
      (fun name ->
        let wl = Wl.Registry.find name in
        let program = wl.Wl.Workload.program Wl.Workload.Ref in
        let seq_env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
        let seq_cost = Ir.Seq_interp.run program seq_env in
        name
        :: List.map
             (fun (_, policy) ->
               let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
               match Ir.Mtcg.generate program env with
               | Ir.Mtcg.Inapplicable _ -> "-"
               | Ir.Mtcg.Plan plan ->
                   let config =
                     { (Xinv_domore.Domore.default_config ~workers:23) with
                       Xinv_domore.Domore.policy }
                   in
                   let r = Xinv_domore.Domore.run ~config ~plan program env in
                   assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
                   Xinv_util.Tab.fmt_speedup (Par.Run.speedup ~seq_cost r))
             pols)
      benches
  in
  "Ablation: DOMORE iteration-scheduling policy at 24 threads (23 workers).\n\
   Memory partitioning turns repeated same-location conflicts into\n\
   same-worker ordering; least-loaded fixes imbalance but pays\n\
   synchronization on every conflict.\n\n"
  ^ Xinv_util.Tab.render ~header:("benchmark" :: List.map fst pols) rows

let contention () =
  let levels = [ 0.0; 0.011; 0.022; 0.044 ] in
  let cell technique input wl alpha =
    let machine = { Sim.Machine.default with Sim.Machine.contention = alpha } in
    (Cx.run_request @@ Cx.Request.make ~backend:(`Sim (Some machine)) ~input ~technique ~threads:24 wl)
      .Cx.speedup
  in
  let rows =
    [
      ( "CG / DOMORE",
        fun a -> cell Cx.Domore Wl.Workload.Ref (Wl.Registry.find "CG") a );
      ( "JACOBI / SPECCROSS",
        fun a -> cell Cx.Speccross Wl.Workload.Ref (Wl.Registry.find "JACOBI") a );
      ( "JACOBI / barrier",
        fun a -> cell Cx.Barrier Wl.Workload.Ref (Wl.Registry.find "JACOBI") a );
    ]
  in
  let table =
    List.map
      (fun (name, f) ->
        name :: List.map (fun a -> Xinv_util.Tab.fmt_speedup (f a)) levels)
      rows
  in
  "Ablation: memory-contention factor of the machine model (per-thread\n\
   slowdown of useful work; the default 0.022 approximates the 4-socket\n\
   FSB Xeon).  Orderings are stable across the sweep; only magnitudes move.\n\n"
  ^ Xinv_util.Tab.render
      ~header:("configuration" :: List.map (fun a -> Printf.sprintf "a=%.3f" a) levels)
      table

let inspector () =
  let benches = [ "CG"; "LLUBENCH"; "BLACKSCHOLES"; "ECLAT" ] in
  let rows =
    List.map
      (fun name ->
        let wl = Wl.Registry.find name in
        let s technique =
          match Cx.applicable technique wl with
          | Error _ -> "-"
          | Ok () ->
              Xinv_util.Tab.fmt_speedup
                (Cx.run_request @@ Cx.Request.make ~technique ~threads:24 wl).Cx.speedup
        in
        [ name; s Cx.Barrier; s Cx.Inspector; s Cx.Domore ])
      benches
  in
  "Ablation: inspector-executor vs DOMORE at 24 threads.  Both discover the\n\
   same dynamic dependences from the same computeAddr slice, but IE\n\
   serializes inspection with execution and still synchronizes every\n\
   invocation boundary; DOMORE pipelines the inspection and crosses the\n\
   boundary.\n\n"
  ^ Xinv_util.Tab.render
      ~header:[ "benchmark"; "pthread barrier"; "inspector-executor"; "DOMORE" ]
      rows
