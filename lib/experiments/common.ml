module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv

let threads_axis = [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20; 22; 24 ]

let speedup_at ?(input = Wl.Workload.Ref) ?checkpoint_every wl technique threads =
  let o = Cx.run_request @@ Cx.Request.make ?checkpoint_every ~input ~technique ~threads wl in
  if not o.Cx.verified then
    failwith
      (Printf.sprintf "%s under %s with %d threads diverged from sequential (%d cells)"
         wl.Wl.Workload.name (Cx.technique_name technique) threads
         (List.length o.Cx.mismatches));
  o

type series = { label : string; points : (int * float) list }

let sweep ?input ~label wl technique =
  {
    label;
    points =
      List.map
        (fun n -> (n, (speedup_at ?input wl technique n).Cx.speedup))
        threads_axis;
  }

let render_series ~title series =
  let header = "threads" :: List.map (fun s -> s.label) series in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun s ->
               match List.assoc_opt n s.points with
               | Some v -> Xinv_util.Tab.fmt_speedup v
               | None -> "-")
             series)
      threads_axis
  in
  Printf.sprintf "%s\n%s" title (Xinv_util.Tab.render ~header rows)

let spec_input (wl : Wl.Workload.t) =
  if String.equal wl.Wl.Workload.name "CG" then Wl.Workload.Ref_spec else Wl.Workload.Ref
