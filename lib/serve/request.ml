module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads

type workload = [ `Name of string | `Inline of string ]

type t = {
  workload : workload;
  input : Wl.Workload.input;
  backend : [ `Sim | `Native ];
  technique : string;
  threads : int;
  policy : [ `Fixed | `Auto ];
  grain : int;
  batch : int;
  sig_kind : [ `Range | `Segmented | `Bloom | `Exact ] option;
  spec_distance : int option;
  checkpoint_every : int;
  verify : bool;
  cache : [ `Off | `Ro | `Rw ];
  fault : string option;
  deadline_ms : float option;
  priority : [ `High | `Normal ];
  tenant : string;
}

let make ?(input = Wl.Workload.Ref) ?(backend = `Sim)
    ?(technique = "sequential") ?(threads = 1) ?(policy = `Fixed) ?(grain = 1)
    ?(batch = 32) ?sig_kind ?spec_distance ?(checkpoint_every = 1000)
    ?(verify = true) ?(cache = `Off) ?fault ?deadline_ms ?(priority = `Normal)
    ?(tenant = "default") workload =
  {
    workload;
    input;
    backend;
    technique;
    threads;
    policy;
    grain;
    batch;
    sig_kind;
    spec_distance;
    checkpoint_every;
    verify;
    cache;
    fault;
    deadline_ms;
    priority;
    tenant;
  }

let of_workload ?priority ?tenant t (wl : Wl.Workload.t) =
  {
    t with
    workload = `Inline (Marshal.to_string wl [ Marshal.Closures ]);
    priority = Option.value priority ~default:t.priority;
    tenant = Option.value tenant ~default:t.tenant;
  }

(* ---- codec ---- *)

let input_tag = function
  | Wl.Workload.Train -> 0
  | Wl.Workload.Train_spec -> 1
  | Wl.Workload.Ref -> 2
  | Wl.Workload.Ref_spec -> 3

let input_of_tag = function
  | 0 -> Wl.Workload.Train
  | 1 -> Wl.Workload.Train_spec
  | 2 -> Wl.Workload.Ref
  | 3 -> Wl.Workload.Ref_spec
  | n -> raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "input %d" n)))

let sig_tag = function `Range -> 0 | `Segmented -> 1 | `Bloom -> 2 | `Exact -> 3

let sig_of_tag = function
  | 0 -> `Range
  | 1 -> `Segmented
  | 2 -> `Bloom
  | 3 -> `Exact
  | n -> raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "sig_kind %d" n)))

let cache_tag = function `Off -> 0 | `Ro -> 1 | `Rw -> 2

let cache_of_tag = function
  | 0 -> `Off
  | 1 -> `Ro
  | 2 -> `Rw
  | n -> raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "cache %d" n)))

let put w t =
  (match t.workload with
  | `Name n ->
      Wire.put_u8 w 0;
      Wire.put_string w n
  | `Inline m ->
      Wire.put_u8 w 1;
      Wire.put_string w m);
  Wire.put_u8 w (input_tag t.input);
  Wire.put_u8 w (match t.backend with `Sim -> 0 | `Native -> 1);
  Wire.put_string w t.technique;
  Wire.put_u32 w t.threads;
  Wire.put_u8 w (match t.policy with `Fixed -> 0 | `Auto -> 1);
  Wire.put_u32 w t.grain;
  Wire.put_u32 w t.batch;
  Wire.put_opt w (fun w k -> Wire.put_u8 w (sig_tag k)) t.sig_kind;
  Wire.put_opt w Wire.put_u32 t.spec_distance;
  Wire.put_u32 w t.checkpoint_every;
  Wire.put_bool w t.verify;
  Wire.put_u8 w (cache_tag t.cache);
  Wire.put_opt w Wire.put_string t.fault;
  Wire.put_opt w Wire.put_f64 t.deadline_ms;
  Wire.put_u8 w (match t.priority with `High -> 0 | `Normal -> 1);
  Wire.put_string w t.tenant

let get r =
  let workload =
    match Wire.get_u8 r with
    | 0 -> `Name (Wire.get_string r)
    | 1 -> `Inline (Wire.get_string r)
    | n ->
        raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "workload %d" n)))
  in
  let input = input_of_tag (Wire.get_u8 r) in
  let backend =
    match Wire.get_u8 r with
    | 0 -> `Sim
    | 1 -> `Native
    | n ->
        raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "backend %d" n)))
  in
  let technique = Wire.get_string r in
  let threads = Wire.get_u32 r in
  let policy =
    match Wire.get_u8 r with
    | 0 -> `Fixed
    | 1 -> `Auto
    | n -> raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "policy %d" n)))
  in
  let grain = Wire.get_u32 r in
  let batch = Wire.get_u32 r in
  let sig_kind = Wire.get_opt r (fun r -> sig_of_tag (Wire.get_u8 r)) in
  let spec_distance = Wire.get_opt r Wire.get_u32 in
  let checkpoint_every = Wire.get_u32 r in
  let verify = Wire.get_bool r in
  let cache = cache_of_tag (Wire.get_u8 r) in
  let fault = Wire.get_opt r Wire.get_string in
  let deadline_ms = Wire.get_opt r Wire.get_f64 in
  let priority =
    match Wire.get_u8 r with
    | 0 -> `High
    | 1 -> `Normal
    | n ->
        raise (Wire.Error (Wire.Bad_payload (Printf.sprintf "priority %d" n)))
  in
  let tenant = Wire.get_string r in
  {
    workload;
    input;
    backend;
    technique;
    threads;
    policy;
    grain;
    batch;
    sig_kind;
    spec_distance;
    checkpoint_every;
    verify;
    cache;
    fault;
    deadline_ms;
    priority;
    tenant;
  }

(* ---- resolution ---- *)

let cache_rank = function `Off -> 0 | `Ro -> 1 | `Rw -> 2

let min_cache a b = if cache_rank a <= cache_rank b then a else b

type resolve_error =
  [ `Unknown_workload of string | `Bad_request of string ]

let to_crossinv ?obs ?pool ?cache_dir ?(cache_limit = `Rw) ?deadline_ms
    ?on_watchdog t =
  if t.threads < 1 then
    Error (`Bad_request (Printf.sprintf "bad thread count %d" t.threads))
  else
    let wl =
      match t.workload with
      | `Name n -> (
          try Ok (Wl.Registry.find n)
          with Invalid_argument _ -> Error (`Unknown_workload n))
      | `Inline m -> (
          try Ok (Marshal.from_string m 0 : Wl.Workload.t)
          with _ -> Error (`Bad_request "inline workload does not unmarshal"))
    in
    let fault =
      match t.fault with
      | None -> Ok None
      | Some s -> (
          match Xinv_native.Fault.spec_of_string s with
          | Ok sp -> Ok (Some sp)
          | Error m -> Error (`Bad_request ("bad fault spec: " ^ m)))
    in
    match (wl, fault) with
    | (Error _ as e), _ -> e
    | _, (Error _ as e) -> e
    | Ok wl, Ok fault -> (
        match Cx.technique_of_string t.technique with
        | None -> Error (`Bad_request ("unknown technique " ^ t.technique))
        | Some technique ->
            let backend =
              match t.backend with
              | `Sim -> `Sim None
              | `Native ->
                  `Native
                    {
                      Cx.native_defaults with
                      pool;
                      grain = t.grain;
                      batch = t.batch;
                      fault;
                      deadline_ms;
                      on_watchdog;
                    }
            in
            Ok
              (Cx.Request.make ~backend ~input:t.input
                 ~checkpoint_every:t.checkpoint_every ~verify:t.verify
                 ~cache:(min_cache t.cache cache_limit)
                 ?cache_dir ?obs
                 ~policy:(t.policy :> Cx.policy)
                 ?sig_kind:t.sig_kind ?spec_distance:t.spec_distance
                 ~technique ~threads:t.threads wl))

let describe t =
  let name =
    match t.workload with `Name n -> n | `Inline _ -> "<inline>"
  in
  Printf.sprintf "%s/%s %s x%d %s%s tenant=%s"
    name
    (Wl.Workload.input_name t.input)
    t.technique t.threads
    (match t.backend with `Sim -> "sim" | `Native -> "native")
    (match t.priority with `High -> " high" | `Normal -> "")
    t.tenant
