(** The resident parallelization daemon behind [xinv serve].

    One server owns exactly one shared {!Xinv_native.Pool} (created once;
    recreated — and counted — only if a wedged join ever marks it dead),
    one analysis-cache configuration, and one {!Xinv_obs.Metrics}
    registry.  Requests from any number of clients funnel through a
    bounded {!Fair} queue into a single scheduler thread, which executes
    them one at a time on the shared pool — concurrency lives in the
    queue, parallelism inside each run — so a thousand queued runs reuse
    the same domains instead of churning a pool each ({!pool_creates}
    stays 1).

    Scheduling contract:
    - {e admission control}: a full queue rejects with
      [Rejected (Queue_full _)] at submission, typed, never blocking;
    - {e deadlines}: a request's [deadline_ms] is an end-to-end budget
      from submission.  Spent entirely in the queue it rejects with
      [Deadline_exceeded]; for a run the remainder is armed as the native
      run's {!Xinv_native.Watchdog} deadline.  A tune job has no
      end-to-end abort: the remainder instead caps each trial's watchdog
      deadline (tightening {!Xinv_tune.Tune.tune}'s default), so a large
      trial budget can still overrun the deadline in aggregate;
    - {e fairness}: [`High] before [`Normal], round-robin across tenants
      within a level (see {!Fair});
    - {e cancellation}: {!cancel} withdraws a queued job immediately, and
      cancels a running job's cohort through the watchdog the
      [on_watchdog] hook captured — the shared pool survives (the workers
      unwind within the grace window; see {!Xinv_native.Pool.run}).

    Per-tenant counters ([serve.tenant.<name>.submitted] etc.), global
    [serve.*] counters, the [serve.queue_wait_ms] histogram and the
    [serve.queue.depth] gauge live in the shared registry; {!snapshot}
    returns the consistent view a [stats] request ships back. *)

type config = {
  domains : int;  (** worker domains in the shared pool *)
  queue_capacity : int;
  cache : [ `Off | `Ro | `Rw ];
      (** daemon-wide cache ceiling; requests intersect with it *)
  cache_dir : string option;
  default_deadline_ms : float option;
      (** applied to requests that carry no deadline of their own *)
}

val default_config : config
(** 2 pool domains, capacity 1024, cache off, no default deadline. *)

type t

type job
(** Handle on one submitted request: await it, cancel it. *)

val create : config -> t
(** Creates the metrics registry and the shared pool (bumping
    [serve.pool.create] to 1).  The scheduler is not running yet. *)

val start : t -> unit
(** Spawn the scheduler thread.  Idempotent. *)

val stop : ?drain:bool -> t -> unit
(** Stop the scheduler and join it.  Queued jobs are drained: executed
    first when [drain] (default false), else rejected with
    [Shutting_down].  Idempotent; the pool is shut down last. *)

val submit : t -> Request.t -> job
(** Enqueue a run.  Admission control applies here: on a full queue or a
    stopping server the returned job is already finished with the typed
    rejection. *)

val submit_tune : t -> Protocol.tune_req -> job
(** Enqueue an autotune request; it takes its fairness turn like a run
    and executes on the daemon's cache configuration, so the tuned policy
    is visible to every later [`Auto] run. *)

val await : job -> Protocol.server_msg
(** Block until the job finishes (thread-safe, any number of waiters). *)

val peek : job -> Protocol.server_msg option
(** [Some _] once finished, without blocking. *)

val cancel : t -> job -> unit
(** Queued: withdrawn and finished as [Rejected Cancelled].  Running
    native: the job's watchdog token is cancelled so only that cohort
    unwinds, and the job finishes [Rejected Cancelled] even if the
    degradation chain completed a weaker attempt after the cancel point.
    Running sim: no cancel point — the run completes and delivers its
    outcome.  Finished: no-op. *)

val snapshot : t -> Xinv_obs.Snapshot.t
val metrics : t -> Xinv_obs.Metrics.t

val pool_creates : t -> int
(** Times the shared pool was (re)created.  1 for the daemon's whole
    life unless a run wedged a domain beyond recovery. *)

val served : t -> int
(** Finished jobs (outcomes, rejections and failures alike). *)

val queued : t -> int

val pong : t -> Protocol.pong

val serve : t -> socket:string -> unit
(** Bind the Unix-domain socket (unlinking any stale file), start the
    scheduler, and accept clients until a [Shutdown] frame arrives; each
    connection gets its own thread that watches for client disconnect
    while its request is in flight (disconnect ⇒ {!cancel}, and no reply
    is written to the dead peer).  SIGPIPE is set to ignore
    process-wide, so a racing disconnect surfaces as a per-connection
    [EPIPE] instead of killing the daemon.  Requests carrying an
    [`Inline] workload (a Marshal image — memory-unsafe to decode from
    an untrusted peer) are rejected with [Bad_request] at this boundary;
    only in-process {!submit} accepts them.  On shutdown every
    still-open connection is forcibly EOF'd so idle keep-alive clients
    cannot stall the exit.  Returns after the listener is closed, the
    socket file unlinked, all connection threads joined and the
    scheduler stopped. *)
