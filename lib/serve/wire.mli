(** The [xinv-serve/1] wire format: length-prefixed, checksummed,
    versioned frames over a byte stream (Unix-domain socket in practice,
    any string in tests).

    Frame layout, all integers big-endian:

    {v
    offset size  field
    0      4     magic "XSRV" (0x58535256)
    4      1     protocol version (1)
    5      1     message tag (see Protocol)
    6      4     payload length in bytes
    10     16    MD5 of the payload (raw digest bytes)
    26     n     payload
    v}

    Payloads are built from the primitive codec below: fixed-width
    integers, IEEE-754 doubles via their bit patterns, length-prefixed
    strings, and option/list combinators.  Everything is explicit — no
    [Marshal] on the framing path — so a foreign client can speak the
    protocol, and corrupt input surfaces as a typed {!error}, never as a
    crash or an over-allocation ({!max_payload} bounds the length field
    before any buffer is sized from it). *)

val schema : string
(** ["xinv-serve/1"]. *)

val version : int

val max_payload : int
(** Upper bound accepted for the frame length field (64 MiB). *)

val header_bytes : int
(** Size of the fixed frame header (26). *)

type error =
  | Truncated  (** input ended inside a header, payload or field *)
  | Bad_magic of int
  | Bad_version of int
  | Bad_length of int  (** negative or above {!max_payload} *)
  | Bad_checksum
  | Bad_tag of int  (** unknown message tag for the decoding side *)
  | Bad_payload of string  (** structurally invalid field inside a frame *)
  | Closed  (** clean EOF at a frame boundary *)

exception Error of error

val error_to_string : error -> string

(** {1 Payload writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val put_u8 : writer -> int -> unit
val put_u32 : writer -> int -> unit
val put_i64 : writer -> int -> unit
val put_f64 : writer -> float -> unit
val put_bool : writer -> bool -> unit
val put_string : writer -> string -> unit
val put_opt : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val put_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit

(** {1 Payload reader}

    All getters raise [Error Truncated] past the end and
    [Error (Bad_payload _)] on domain errors (e.g. a bool byte that is
    neither 0 nor 1). *)

type reader

val reader : string -> reader
val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int
val get_f64 : reader -> float
val get_bool : reader -> bool
val get_string : reader -> string
val get_opt : reader -> (reader -> 'a) -> 'a option
val get_list : reader -> (reader -> 'a) -> 'a list

val reader_done : reader -> bool
(** True when every payload byte has been consumed. *)

(** {1 Frames} *)

val encode_frame : tag:int -> string -> string
(** Header + payload as one string. *)

val decode_frame : string -> int * string
(** [(tag, payload)].  Raises {!Error} on any malformation: truncation,
    wrong magic/version, oversized length, checksum mismatch, trailing
    garbage after the payload. *)

(** {1 Stream transport} *)

val write_frame : Unix.file_descr -> tag:int -> string -> unit

val read_frame : Unix.file_descr -> int * string
(** Blocking read of one frame.  A clean EOF before the first header byte
    raises [Error Closed]; EOF anywhere later raises [Error Truncated]. *)
