let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let with_connection path f =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let request fd msg =
  Protocol.send_client fd msg;
  Protocol.recv_server fd

let call ~socket msg = with_connection socket (fun fd -> request fd msg)
