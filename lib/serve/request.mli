(** A serializable run request — the unit of work submitted to the serve
    daemon, and the wire twin of {!Xinv_core.Crossinv.Request.t}.

    Where the core record holds live values (a workload descriptor full of
    closures, a recorder, a domain pool), this one holds only data that
    survives a socket: the workload by registry name (or as a marshalled
    descriptor for same-binary callers), the technique by
    {!Xinv_core.Crossinv.technique_name} spelling, and scheduling fields
    the in-process API has no use for (deadline, priority, tenant).
    {!to_crossinv} resolves it against the live registry into a core
    request; the daemon injects its own shared pool, cache directory and
    cancellation hook at that point. *)

type workload =
  [ `Name of string  (** registry lookup, case-insensitive *)
  | `Inline of string
    (** a marshalled {!Xinv_workloads.Workload.t} (with closures) — a
        same-process construct for callers embedding {!Server} as a
        library.  Unmarshalling bytes of unknown provenance is
        memory-unsafe, so the daemon's socket front end rejects inline
        workloads with [Bad_request]; only registry names cross the
        wire. *) ]

type t = {
  workload : workload;
  input : Xinv_workloads.Workload.input;
  backend : [ `Sim | `Native ];
  technique : string;  (** {!Xinv_core.Crossinv.technique_name} spelling *)
  threads : int;
  policy : [ `Fixed | `Auto ];
  grain : int;
  batch : int;
  sig_kind : [ `Range | `Segmented | `Bloom | `Exact ] option;
  spec_distance : int option;
  checkpoint_every : int;
  verify : bool;
  cache : [ `Off | `Ro | `Rw ];
      (** intersected with the daemon's cache mode: a request can opt
          down (e.g. [`Off]) but never escalate past the server config *)
  fault : string option;
      (** native fault injection in {!Xinv_native.Fault.spec_to_string}
          spelling — how tests and CI provoke stalls and failures through
          the daemon; parsed at resolution, [`Bad_request] if malformed *)
  deadline_ms : float option;
      (** end-to-end budget from submission, queue wait included *)
  priority : [ `High | `Normal ];
  tenant : string;
}

val make :
  ?input:Xinv_workloads.Workload.input ->
  ?backend:[ `Sim | `Native ] ->
  ?technique:string ->
  ?threads:int ->
  ?policy:[ `Fixed | `Auto ] ->
  ?grain:int ->
  ?batch:int ->
  ?sig_kind:[ `Range | `Segmented | `Bloom | `Exact ] ->
  ?spec_distance:int ->
  ?checkpoint_every:int ->
  ?verify:bool ->
  ?cache:[ `Off | `Ro | `Rw ] ->
  ?fault:string ->
  ?deadline_ms:float ->
  ?priority:[ `High | `Normal ] ->
  ?tenant:string ->
  workload ->
  t
(** Defaults mirror {!Xinv_core.Crossinv.Request.make} where the two
    overlap (sim backend, [Ref] input, checkpoint every 1000, verify on,
    cache off, fixed policy) plus serve-side defaults: technique
    ["sequential"], 1 thread, native grain 1 / batch 32, no deadline,
    [`Normal] priority, tenant ["default"]. *)

val of_workload : ?priority:[ `High | `Normal ] -> ?tenant:string ->
  t -> Xinv_workloads.Workload.t -> t
(** Re-point an existing request at an inline workload descriptor, for
    in-process {!Server.submit} only — the socket boundary rejects the
    resulting request (see {!workload}). *)

val put : Wire.writer -> t -> unit
val get : Wire.reader -> t
(** Payload codec (raises {!Wire.Error} on malformed input). *)

type resolve_error =
  [ `Unknown_workload of string
  | `Bad_request of string
    (** unparsable technique, non-positive thread count, or an inline
        descriptor that does not unmarshal *) ]

val to_crossinv :
  ?obs:Xinv_obs.Recorder.t ->
  ?pool:Xinv_native.Pool.t ->
  ?cache_dir:string ->
  ?cache_limit:[ `Off | `Ro | `Rw ] ->
  ?deadline_ms:float ->
  ?on_watchdog:(Xinv_native.Watchdog.t -> unit) ->
  t ->
  (Xinv_core.Crossinv.Request.t, resolve_error) result
(** Resolve against the live registry.  [deadline_ms] is the
    {e remaining} budget the scheduler computed (the request's own
    [deadline_ms] minus queue wait); [cache_limit] caps the request's
    cache mode ([`Rw] > [`Ro] > [`Off]); the native pool, watchdog hook
    and recorder are the daemon's. *)

val describe : t -> string
(** One-line human rendering for logs. *)
