type 'a level = {
  (* rotation order; invariant: a tenant appears here iff its queue in
     [by_tenant] is non-empty, and appears exactly once *)
  mutable order : string list;
  by_tenant : (string, 'a Queue.t) Hashtbl.t;
}

type 'a t = { cap : int; mutable len : int; high : 'a level; normal : 'a level }

let level () = { order = []; by_tenant = Hashtbl.create 8 }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fair.create: capacity must be positive";
  { cap = capacity; len = 0; high = level (); normal = level () }

let capacity t = t.cap
let length t = t.len

let level_of t = function `High -> t.high | `Normal -> t.normal

let push t ~priority ~tenant v =
  if t.len >= t.cap then Error (`Full t.cap)
  else begin
    let l = level_of t priority in
    let q =
      match Hashtbl.find_opt l.by_tenant tenant with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add l.by_tenant tenant q;
          q
    in
    if Queue.is_empty q then l.order <- l.order @ [ tenant ];
    Queue.push v q;
    t.len <- t.len + 1;
    Ok ()
  end

let pop_level l =
  match l.order with
  | [] -> None
  | tenant :: rest ->
      let q = Hashtbl.find l.by_tenant tenant in
      let v = Queue.pop q in
      (* the tenant yields its turn; it rejoins the rotation only while it
         still has queued work *)
      l.order <- (if Queue.is_empty q then rest else rest @ [ tenant ]);
      Some v

let pop t =
  let r =
    match pop_level t.high with Some _ as v -> v | None -> pop_level t.normal
  in
  (match r with Some _ -> t.len <- t.len - 1 | None -> ());
  r

let remove_level l pred =
  let found = ref None in
  List.iter
    (fun tenant ->
      if !found = None then begin
        let q = Hashtbl.find l.by_tenant tenant in
        let keep = Queue.create () in
        Queue.iter
          (fun v ->
            if !found = None && pred v then found := Some v
            else Queue.push v keep)
          q;
        if !found <> None then begin
          Queue.clear q;
          Queue.transfer keep q;
          if Queue.is_empty q then
            l.order <- List.filter (fun x -> not (String.equal x tenant)) l.order
        end
      end)
    l.order;
  !found

let remove t pred =
  let r =
    match remove_level t.high pred with
    | Some _ as v -> v
    | None -> remove_level t.normal pred
  in
  (match r with Some _ -> t.len <- t.len - 1 | None -> ());
  r

let tenants t = t.high.order @ t.normal.order
