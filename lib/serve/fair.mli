(** Bounded two-level priority queue with round-robin-per-tenant
    fairness — the admission-controlled run queue of the serve daemon.

    [`High] items always dispatch before [`Normal] ones; within one
    level, tenants take strict turns (a tenant that just dispatched goes
    to the back of its level's rotation), so one tenant flooding the
    queue delays its own requests, not its neighbours'.  Within one
    tenant, items dispatch FIFO.

    Purely sequential — the daemon serializes access under its own lock —
    which is what makes the rotation testable in isolation. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument on a non-positive capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int

val push :
  'a t -> priority:[ `High | `Normal ] -> tenant:string -> 'a ->
  (unit, [ `Full of int ]) result
(** [Error (`Full capacity)] when the queue is at capacity — typed
    admission-control rejection, never an exception. *)

val pop : 'a t -> 'a option
(** Highest level first, then the level's tenant rotation, then FIFO
    within the tenant.  [None] when empty. *)

val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the first queued item (in an unspecified order
    across tenants) satisfying the predicate — how a disconnected
    client's still-queued request is withdrawn. *)

val tenants : 'a t -> string list
(** Tenants with at least one queued item, high level first, each level
    in current rotation order. *)
