module Cx = Xinv_core.Crossinv
module Snapshot = Xinv_obs.Snapshot

type tune_req = {
  t_workload : string;
  t_input : Xinv_workloads.Workload.input;
  t_budget : int;
  t_seed : int;
  t_max_domains : int option;
  t_strategy : string;
  t_priority : [ `High | `Normal ];
  t_tenant : string;
}

let tune_req ?(input = Xinv_workloads.Workload.Train) ?(budget = 16)
    ?(seed = 42) ?max_domains ?(strategy = "hill") ?(priority = `Normal)
    ?(tenant = "default") name =
  {
    t_workload = name;
    t_input = input;
    t_budget = budget;
    t_seed = seed;
    t_max_domains = max_domains;
    t_strategy = strategy;
    t_priority = priority;
    t_tenant = tenant;
  }

type client_msg =
  | Run of Request.t
  | Ping
  | Stats
  | Shutdown
  | Tune of tune_req

type reject_reason =
  | Queue_full of int
  | Unknown_workload of string
  | Bad_request of string
  | Shutting_down
  | Deadline_exceeded
  | Cancelled

let reject_to_string = function
  | Queue_full cap -> Printf.sprintf "queue full (capacity %d)" cap
  | Unknown_workload n -> "unknown workload " ^ n
  | Bad_request r -> "bad request: " ^ r
  | Shutting_down -> "daemon shutting down"
  | Deadline_exceeded -> "deadline exceeded while queued"
  | Cancelled -> "cancelled (client disconnected)"

type summary = {
  o_workload : string;
  o_technique : string;
  o_cost_kind : [ `Cycles | `Wall_ns ];
  o_cost : float;
  o_seq_cost : float;
  o_speedup : float;
  o_verified : bool;
  o_mismatches : int;
  o_degraded : (string * string * string) list;
  o_analysis_ns : float;
  o_cache_hits : int;
  o_cache_misses : int;
  o_policy_source : string;
  o_tasks : int;
  o_queue_wait_ns : float;
}

let summary_of_outcome ~workload ~queue_wait_ns (o : Cx.outcome) =
  {
    o_workload = workload;
    o_technique = Cx.technique_name o.Cx.technique;
    o_cost_kind =
      (match o.Cx.cost with Cx.Sim_cycles _ -> `Cycles | Cx.Wall_ns _ -> `Wall_ns);
    o_cost = Cx.cost_value o.Cx.cost;
    o_seq_cost = Cx.cost_value o.Cx.seq_cost;
    o_speedup = o.Cx.speedup;
    o_verified = o.Cx.verified;
    o_mismatches = List.length o.Cx.mismatches;
    o_degraded =
      List.map
        (fun (d : Cx.degrade_step) ->
          ( Cx.technique_name d.Cx.d_from,
            Cx.technique_name d.Cx.d_to,
            d.Cx.d_reason ))
        o.Cx.degraded;
    o_analysis_ns = o.Cx.analysis_ns;
    o_cache_hits = o.Cx.cache_hits;
    o_cache_misses = o.Cx.cache_misses;
    o_policy_source = o.Cx.policy_source;
    o_tasks =
      (match o.Cx.nrun with Some n -> n.Xinv_native.Nrun.tasks | None -> 0);
    o_queue_wait_ns = queue_wait_ns;
  }

type pong = {
  p_uptime_ns : float;
  p_pool_domains : int;
  p_pool_creates : int;
  p_queued : int;
  p_served : int;
}

type tune_reply = {
  r_policy_key : string;
  r_wall_ns : float;
  r_seq_wall_ns : float;
  r_trials : int;
  r_source : string;
}

type server_msg =
  | Outcome of summary
  | Rejected of reject_reason
  | Failed of string
  | Pong of pong
  | Stats_reply of Snapshot.t
  | Tune_reply of tune_reply
  | Shutdown_ack of { served : int }

(* ---- tags ---- *)

let tag_run = 1
let tag_ping = 2
let tag_stats = 3
let tag_shutdown = 4
let tag_tune = 5
let tag_outcome = 64
let tag_rejected = 65
let tag_failed = 66
let tag_pong = 67
let tag_stats_reply = 68
let tag_tune_reply = 69
let tag_shutdown_ack = 70

(* ---- payload codecs ---- *)

let bad fmt = Printf.ksprintf (fun s -> raise (Wire.Error (Wire.Bad_payload s))) fmt

let put_priority w = function
  | `High -> Wire.put_u8 w 0
  | `Normal -> Wire.put_u8 w 1

let get_priority r =
  match Wire.get_u8 r with
  | 0 -> `High
  | 1 -> `Normal
  | n -> bad "priority %d" n

let put_tune w t =
  Wire.put_string w t.t_workload;
  Wire.put_u8 w
    (match t.t_input with
    | Xinv_workloads.Workload.Train -> 0
    | Train_spec -> 1
    | Ref -> 2
    | Ref_spec -> 3);
  Wire.put_u32 w t.t_budget;
  Wire.put_u32 w t.t_seed;
  Wire.put_opt w Wire.put_u32 t.t_max_domains;
  Wire.put_string w t.t_strategy;
  put_priority w t.t_priority;
  Wire.put_string w t.t_tenant

let get_tune r =
  let t_workload = Wire.get_string r in
  let t_input =
    match Wire.get_u8 r with
    | 0 -> Xinv_workloads.Workload.Train
    | 1 -> Xinv_workloads.Workload.Train_spec
    | 2 -> Xinv_workloads.Workload.Ref
    | 3 -> Xinv_workloads.Workload.Ref_spec
    | n -> bad "input %d" n
  in
  let t_budget = Wire.get_u32 r in
  let t_seed = Wire.get_u32 r in
  let t_max_domains = Wire.get_opt r Wire.get_u32 in
  let t_strategy = Wire.get_string r in
  let t_priority = get_priority r in
  let t_tenant = Wire.get_string r in
  {
    t_workload;
    t_input;
    t_budget;
    t_seed;
    t_max_domains;
    t_strategy;
    t_priority;
    t_tenant;
  }

let put_reject w = function
  | Queue_full cap ->
      Wire.put_u8 w 0;
      Wire.put_u32 w cap
  | Unknown_workload n ->
      Wire.put_u8 w 1;
      Wire.put_string w n
  | Bad_request s ->
      Wire.put_u8 w 2;
      Wire.put_string w s
  | Shutting_down -> Wire.put_u8 w 3
  | Deadline_exceeded -> Wire.put_u8 w 4
  | Cancelled -> Wire.put_u8 w 5

let get_reject r =
  match Wire.get_u8 r with
  | 0 -> Queue_full (Wire.get_u32 r)
  | 1 -> Unknown_workload (Wire.get_string r)
  | 2 -> Bad_request (Wire.get_string r)
  | 3 -> Shutting_down
  | 4 -> Deadline_exceeded
  | 5 -> Cancelled
  | n -> bad "reject reason %d" n

let put_summary w s =
  Wire.put_string w s.o_workload;
  Wire.put_string w s.o_technique;
  Wire.put_u8 w (match s.o_cost_kind with `Cycles -> 0 | `Wall_ns -> 1);
  Wire.put_f64 w s.o_cost;
  Wire.put_f64 w s.o_seq_cost;
  Wire.put_f64 w s.o_speedup;
  Wire.put_bool w s.o_verified;
  Wire.put_u32 w s.o_mismatches;
  Wire.put_list w
    (fun w (a, b, c) ->
      Wire.put_string w a;
      Wire.put_string w b;
      Wire.put_string w c)
    s.o_degraded;
  Wire.put_f64 w s.o_analysis_ns;
  Wire.put_u32 w s.o_cache_hits;
  Wire.put_u32 w s.o_cache_misses;
  Wire.put_string w s.o_policy_source;
  Wire.put_u32 w s.o_tasks;
  Wire.put_f64 w s.o_queue_wait_ns

let get_summary r =
  let o_workload = Wire.get_string r in
  let o_technique = Wire.get_string r in
  let o_cost_kind =
    match Wire.get_u8 r with 0 -> `Cycles | 1 -> `Wall_ns | n -> bad "cost kind %d" n
  in
  let o_cost = Wire.get_f64 r in
  let o_seq_cost = Wire.get_f64 r in
  let o_speedup = Wire.get_f64 r in
  let o_verified = Wire.get_bool r in
  let o_mismatches = Wire.get_u32 r in
  let o_degraded =
    Wire.get_list r (fun r ->
        let a = Wire.get_string r in
        let b = Wire.get_string r in
        let c = Wire.get_string r in
        (a, b, c))
  in
  let o_analysis_ns = Wire.get_f64 r in
  let o_cache_hits = Wire.get_u32 r in
  let o_cache_misses = Wire.get_u32 r in
  let o_policy_source = Wire.get_string r in
  let o_tasks = Wire.get_u32 r in
  let o_queue_wait_ns = Wire.get_f64 r in
  {
    o_workload;
    o_technique;
    o_cost_kind;
    o_cost;
    o_seq_cost;
    o_speedup;
    o_verified;
    o_mismatches;
    o_degraded;
    o_analysis_ns;
    o_cache_hits;
    o_cache_misses;
    o_policy_source;
    o_tasks;
    o_queue_wait_ns;
  }

let put_snapshot w (s : Snapshot.t) =
  Wire.put_f64 w s.Snapshot.s_at;
  Wire.put_list w
    (fun w (n, v) ->
      Wire.put_string w n;
      Wire.put_i64 w v)
    s.Snapshot.s_counters;
  Wire.put_list w
    (fun w (n, v) ->
      Wire.put_string w n;
      Wire.put_f64 w v)
    s.Snapshot.s_gauges;
  Wire.put_list w
    (fun w (h : Snapshot.hist) ->
      Wire.put_string w h.Snapshot.s_name;
      Wire.put_list w Wire.put_f64 (Array.to_list h.Snapshot.s_bounds);
      Wire.put_list w Wire.put_i64 (Array.to_list h.Snapshot.s_counts);
      Wire.put_i64 w h.Snapshot.s_count;
      Wire.put_f64 w h.Snapshot.s_sum)
    s.Snapshot.s_hists

let get_snapshot r : Snapshot.t =
  let s_at = Wire.get_f64 r in
  let s_counters =
    Wire.get_list r (fun r ->
        let n = Wire.get_string r in
        let v = Wire.get_i64 r in
        (n, v))
  in
  let s_gauges =
    Wire.get_list r (fun r ->
        let n = Wire.get_string r in
        let v = Wire.get_f64 r in
        (n, v))
  in
  let s_hists =
    Wire.get_list r (fun r ->
        let s_name = Wire.get_string r in
        let s_bounds = Array.of_list (Wire.get_list r Wire.get_f64) in
        let s_counts = Array.of_list (Wire.get_list r Wire.get_i64) in
        let s_count = Wire.get_i64 r in
        let s_sum = Wire.get_f64 r in
        if Array.length s_counts <> Array.length s_bounds + 1 then
          bad "histogram %s: %d bounds / %d counts" s_name
            (Array.length s_bounds) (Array.length s_counts);
        { Snapshot.s_name; s_bounds; s_counts; s_count; s_sum })
  in
  { Snapshot.s_at; s_counters; s_gauges; s_hists }

(* ---- frame codecs ---- *)

let encode_client m =
  let w = Wire.writer () in
  let tag =
    match m with
    | Run req ->
        Request.put w req;
        tag_run
    | Ping -> tag_ping
    | Stats -> tag_stats
    | Shutdown -> tag_shutdown
    | Tune t ->
        put_tune w t;
        tag_tune
  in
  Wire.encode_frame ~tag (Wire.contents w)

let decode_client_payload tag payload =
  let r = Wire.reader payload in
  let m =
    if tag = tag_run then Run (Request.get r)
    else if tag = tag_ping then Ping
    else if tag = tag_stats then Stats
    else if tag = tag_shutdown then Shutdown
    else if tag = tag_tune then Tune (get_tune r)
    else raise (Wire.Error (Wire.Bad_tag tag))
  in
  if not (Wire.reader_done r) then
    raise (Wire.Error (Wire.Bad_payload "trailing bytes"));
  m

let decode_client s =
  let tag, payload = Wire.decode_frame s in
  decode_client_payload tag payload

let encode_server m =
  let w = Wire.writer () in
  let tag =
    match m with
    | Outcome s ->
        put_summary w s;
        tag_outcome
    | Rejected why ->
        put_reject w why;
        tag_rejected
    | Failed msg ->
        Wire.put_string w msg;
        tag_failed
    | Pong p ->
        Wire.put_f64 w p.p_uptime_ns;
        Wire.put_u32 w p.p_pool_domains;
        Wire.put_u32 w p.p_pool_creates;
        Wire.put_u32 w p.p_queued;
        Wire.put_u32 w p.p_served;
        tag_pong
    | Stats_reply s ->
        put_snapshot w s;
        tag_stats_reply
    | Tune_reply t ->
        Wire.put_string w t.r_policy_key;
        Wire.put_f64 w t.r_wall_ns;
        Wire.put_f64 w t.r_seq_wall_ns;
        Wire.put_u32 w t.r_trials;
        Wire.put_string w t.r_source;
        tag_tune_reply
    | Shutdown_ack { served } ->
        Wire.put_u32 w served;
        tag_shutdown_ack
  in
  Wire.encode_frame ~tag (Wire.contents w)

let decode_server_payload tag payload =
  let r = Wire.reader payload in
  let m =
    if tag = tag_outcome then Outcome (get_summary r)
    else if tag = tag_rejected then Rejected (get_reject r)
    else if tag = tag_failed then Failed (Wire.get_string r)
    else if tag = tag_pong then begin
      let p_uptime_ns = Wire.get_f64 r in
      let p_pool_domains = Wire.get_u32 r in
      let p_pool_creates = Wire.get_u32 r in
      let p_queued = Wire.get_u32 r in
      let p_served = Wire.get_u32 r in
      Pong { p_uptime_ns; p_pool_domains; p_pool_creates; p_queued; p_served }
    end
    else if tag = tag_stats_reply then Stats_reply (get_snapshot r)
    else if tag = tag_tune_reply then begin
      let r_policy_key = Wire.get_string r in
      let r_wall_ns = Wire.get_f64 r in
      let r_seq_wall_ns = Wire.get_f64 r in
      let r_trials = Wire.get_u32 r in
      let r_source = Wire.get_string r in
      Tune_reply { r_policy_key; r_wall_ns; r_seq_wall_ns; r_trials; r_source }
    end
    else if tag = tag_shutdown_ack then
      Shutdown_ack { served = Wire.get_u32 r }
    else raise (Wire.Error (Wire.Bad_tag tag))
  in
  if not (Wire.reader_done r) then
    raise (Wire.Error (Wire.Bad_payload "trailing bytes"));
  m

let decode_server s =
  let tag, payload = Wire.decode_frame s in
  decode_server_payload tag payload

(* ---- stream transport ---- *)

let send_client fd m =
  let s = encode_client m in
  let tag, payload = Wire.decode_frame s in
  Wire.write_frame fd ~tag payload

let recv_client fd =
  let tag, payload = Wire.read_frame fd in
  decode_client_payload tag payload

let send_server fd m =
  let s = encode_server m in
  let tag, payload = Wire.decode_frame s in
  Wire.write_frame fd ~tag payload

let recv_server fd =
  let tag, payload = Wire.read_frame fd in
  decode_server_payload tag payload

(* ---- rendering ---- *)

let pp_server ppf = function
  | Outcome s ->
      Format.fprintf ppf
        "@[<v>workload         %s@,technique        %s@,cost             %s@,\
         seq cost         %s@,speedup          %.2fx@,verified         %b@,\
         policy source    %s@,queue wait       %.2f ms%a@]"
        s.o_workload s.o_technique
        (match s.o_cost_kind with
        | `Cycles -> Printf.sprintf "%.0f cycles" s.o_cost
        | `Wall_ns -> Printf.sprintf "%.2f ms" (s.o_cost /. 1e6))
        (match s.o_cost_kind with
        | `Cycles -> Printf.sprintf "%.0f cycles" s.o_seq_cost
        | `Wall_ns -> Printf.sprintf "%.2f ms" (s.o_seq_cost /. 1e6))
        s.o_speedup s.o_verified s.o_policy_source
        (s.o_queue_wait_ns /. 1e6)
        (fun ppf steps ->
          List.iter
            (fun (f, t, why) ->
              Format.fprintf ppf "@,degraded         %s -> %s (%s)" f t why)
            steps)
        s.o_degraded
  | Rejected why -> Format.fprintf ppf "rejected: %s" (reject_to_string why)
  | Failed msg -> Format.fprintf ppf "failed: %s" msg
  | Pong p ->
      Format.fprintf ppf
        "pong: up %.1f s, %d pool domains (%d create%s), %d queued, %d served"
        (p.p_uptime_ns /. 1e9) p.p_pool_domains p.p_pool_creates
        (if p.p_pool_creates = 1 then "" else "s")
        p.p_queued p.p_served
  | Stats_reply s -> Xinv_obs.Snapshot.pp ppf s
  | Tune_reply t ->
      Format.fprintf ppf "tuned (%s, %d trials): %s (%.2fx)" t.r_source
        t.r_trials t.r_policy_key
        (if t.r_wall_ns > 0. then t.r_seq_wall_ns /. t.r_wall_ns else 0.)
  | Shutdown_ack { served } ->
      Format.fprintf ppf "daemon stopped after %d served request%s" served
        (if served = 1 then "" else "s")
