(** Thin synchronous client for a running [xinv serve] daemon. *)

val connect : string -> Unix.file_descr
(** Connect to the daemon's Unix-domain socket path.
    @raise Unix.Unix_error when nothing is listening. *)

val with_connection : string -> (Unix.file_descr -> 'a) -> 'a
(** Connect, apply, always close. *)

val request : Unix.file_descr -> Protocol.client_msg -> Protocol.server_msg
(** One round trip on an open connection (the connection can be reused
    for many round trips).  Raises {!Wire.Error} on protocol trouble. *)

val call : socket:string -> Protocol.client_msg -> Protocol.server_msg
(** One-shot: connect, one round trip, close. *)
