(** [xinv-serve/1] message vocabulary: what a client can ask
    ({!client_msg}) and what the daemon answers ({!server_msg}), with
    frame-level codecs over {!Wire}.

    Tags: client frames use 1–5 (Run, Ping, Stats, Shutdown, Tune);
    server frames use 64–70 (Outcome, Rejected, Failed, Pong,
    Stats_reply, Tune_reply, Shutdown_ack).  A decoder presented with the
    other side's tag — or any unknown tag — raises
    [Wire.Error (Bad_tag _)]. *)

type tune_req = {
  t_workload : string;  (** registry name *)
  t_input : Xinv_workloads.Workload.input;
  t_budget : int;
  t_seed : int;
  t_max_domains : int option;
  t_strategy : string;  (** {!Xinv_tune.Search.strategy_name} spelling *)
  t_priority : [ `High | `Normal ];
  t_tenant : string;
}

val tune_req :
  ?input:Xinv_workloads.Workload.input ->
  ?budget:int ->
  ?seed:int ->
  ?max_domains:int ->
  ?strategy:string ->
  ?priority:[ `High | `Normal ] ->
  ?tenant:string ->
  string ->
  tune_req

type client_msg =
  | Run of Request.t
  | Ping
  | Stats
  | Shutdown
  | Tune of tune_req

type reject_reason =
  | Queue_full of int  (** payload: the queue capacity *)
  | Unknown_workload of string
  | Bad_request of string
  | Shutting_down
  | Deadline_exceeded
      (** the end-to-end deadline expired while the request was queued *)
  | Cancelled  (** the submitting client disconnected *)

val reject_to_string : reject_reason -> string

(** The outcome fields that survive a socket — everything scalar from
    {!Xinv_core.Crossinv.outcome}, plus the daemon-side queue wait. *)
type summary = {
  o_workload : string;
  o_technique : string;  (** executed (after degradation) *)
  o_cost_kind : [ `Cycles | `Wall_ns ];
  o_cost : float;
  o_seq_cost : float;
  o_speedup : float;
  o_verified : bool;
  o_mismatches : int;
  o_degraded : (string * string * string) list;  (** from, to, reason *)
  o_analysis_ns : float;
  o_cache_hits : int;
  o_cache_misses : int;
  o_policy_source : string;
  o_tasks : int;  (** native run tasks; 0 on the sim backend *)
  o_queue_wait_ns : float;
}

val summary_of_outcome :
  workload:string ->
  queue_wait_ns:float ->
  Xinv_core.Crossinv.outcome ->
  summary

type pong = {
  p_uptime_ns : float;
  p_pool_domains : int;
  p_pool_creates : int;
  p_queued : int;
  p_served : int;
}

type tune_reply = {
  r_policy_key : string;
  r_wall_ns : float;
  r_seq_wall_ns : float;
  r_trials : int;
  r_source : string;  (** ["cached"] or ["searched"] *)
}

type server_msg =
  | Outcome of summary
  | Rejected of reject_reason
  | Failed of string  (** the run raised; payload is the exception text *)
  | Pong of pong
  | Stats_reply of Xinv_obs.Snapshot.t
  | Tune_reply of tune_reply
  | Shutdown_ack of { served : int }

val encode_client : client_msg -> string
(** A full wire frame. *)

val decode_client : string -> client_msg
(** Raises {!Wire.Error} on any malformation. *)

val encode_server : server_msg -> string
val decode_server : string -> server_msg

val send_client : Unix.file_descr -> client_msg -> unit
val recv_client : Unix.file_descr -> client_msg
val send_server : Unix.file_descr -> server_msg -> unit
val recv_server : Unix.file_descr -> server_msg

val pp_server : Format.formatter -> server_msg -> unit
(** Human rendering for the CLI client. *)
