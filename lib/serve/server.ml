module Cx = Xinv_core.Crossinv
module Nat = Xinv_native
module Metrics = Xinv_obs.Metrics
module Snapshot = Xinv_obs.Snapshot

type config = {
  domains : int;
  queue_capacity : int;
  cache : [ `Off | `Ro | `Rw ];
  cache_dir : string option;
  default_deadline_ms : float option;
}

let default_config =
  {
    domains = 2;
    queue_capacity = 1024;
    cache = `Off;
    cache_dir = None;
    default_deadline_ms = None;
  }

type kind = KRun of Request.t | KTune of Protocol.tune_req

type job = {
  id : int;
  kind : kind;
  priority : [ `High | `Normal ];
  tenant : string;
  enqueued_at : float;
  deadline_ms : float option;  (** end-to-end budget from [enqueued_at] *)
  jm : Mutex.t;
  jc : Condition.t;
  mutable result : Protocol.server_msg option;
  mutable wd : Nat.Watchdog.t option;
  mutable cancelled : bool;
}

type t = {
  cfg : config;
  metrics : Metrics.t;
  mutable pool : Nat.Pool.t;
  mutable pool_creates : int;
  queue : job Fair.t;
  mu : Mutex.t;
  work : Condition.t;
  mutable stopping : bool;
  mutable scheduler : Thread.t option;
  served_jobs : int Atomic.t;
  next_id : int Atomic.t;
  started_at : float;
  (* pre-registered hot handles *)
  c_pool_create : Metrics.counter;
  c_submitted : Metrics.counter;
  c_completed : Metrics.counter;
  c_rejected : Metrics.counter;
  c_failed : Metrics.counter;
  c_cancelled : Metrics.counter;
  c_deadline_missed : Metrics.counter;
  h_queue_wait : Metrics.histogram;
  g_depth : Metrics.gauge;
}

let now () = Unix.gettimeofday ()

let metrics t = t.metrics
let pool_creates t = t.pool_creates
let served t = Atomic.get t.served_jobs

let tenant_counter t tenant what =
  Metrics.counter t.metrics (Printf.sprintf "serve.tenant.%s.%s" tenant what)

let new_pool t =
  t.pool_creates <- t.pool_creates + 1;
  Metrics.incr t.c_pool_create;
  Nat.Pool.create ~workers:t.cfg.domains

let create cfg =
  let metrics = Metrics.create () in
  let c_pool_create = Metrics.counter metrics "serve.pool.create" in
  let t =
    {
      cfg;
      metrics;
      pool = Nat.Pool.create ~workers:0 (* replaced below *);
      pool_creates = 0;
      queue = Fair.create ~capacity:cfg.queue_capacity;
      mu = Mutex.create ();
      work = Condition.create ();
      stopping = false;
      scheduler = None;
      served_jobs = Atomic.make 0;
      next_id = Atomic.make 0;
      started_at = now ();
      c_pool_create;
      c_submitted = Metrics.counter metrics "serve.submitted";
      c_completed = Metrics.counter metrics "serve.completed";
      c_rejected = Metrics.counter metrics "serve.rejected";
      c_failed = Metrics.counter metrics "serve.failed";
      c_cancelled = Metrics.counter metrics "serve.cancelled";
      c_deadline_missed = Metrics.counter metrics "serve.deadline_missed";
      h_queue_wait = Metrics.histogram metrics "serve.queue_wait_ms";
      g_depth = Metrics.gauge metrics "serve.queue.depth";
    }
  in
  Nat.Pool.shutdown t.pool;
  t.pool <- new_pool t;
  t

(* ---- job lifecycle ---- *)

let finish t job msg =
  Mutex.lock job.jm;
  let first = job.result = None in
  if first then begin
    job.result <- Some msg;
    Condition.broadcast job.jc
  end;
  Mutex.unlock job.jm;
  if first then begin
    Atomic.incr t.served_jobs;
    match msg with
    | Protocol.Outcome _ | Protocol.Tune_reply _ ->
        Metrics.incr t.c_completed;
        Metrics.incr (tenant_counter t job.tenant "completed")
    | Protocol.Rejected why ->
        Metrics.incr t.c_rejected;
        Metrics.incr (tenant_counter t job.tenant "rejected");
        (match why with
        | Protocol.Deadline_exceeded ->
            Metrics.incr t.c_deadline_missed;
            Metrics.incr (tenant_counter t job.tenant "deadline_missed")
        | Protocol.Cancelled -> Metrics.incr t.c_cancelled
        | _ -> ())
    | Protocol.Failed _ -> Metrics.incr t.c_failed
    | _ -> ()
  end

let await job =
  Mutex.lock job.jm;
  while job.result = None do
    Condition.wait job.jc job.jm
  done;
  let r = Option.get job.result in
  Mutex.unlock job.jm;
  r

let peek job =
  Mutex.lock job.jm;
  let r = job.result in
  Mutex.unlock job.jm;
  r

let enqueue t ~kind ~priority ~tenant ~deadline_ms =
  let job =
    {
      id = Atomic.fetch_and_add t.next_id 1;
      kind;
      priority;
      tenant;
      enqueued_at = now ();
      deadline_ms;
      jm = Mutex.create ();
      jc = Condition.create ();
      result = None;
      wd = None;
      cancelled = false;
    }
  in
  Metrics.incr t.c_submitted;
  Metrics.incr (tenant_counter t tenant "submitted");
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    finish t job (Protocol.Rejected Protocol.Shutting_down)
  end
  else begin
    match Fair.push t.queue ~priority ~tenant job with
    | Ok () ->
        Metrics.set t.g_depth (float_of_int (Fair.length t.queue));
        Condition.signal t.work;
        Mutex.unlock t.mu
    | Error (`Full cap) ->
        Mutex.unlock t.mu;
        finish t job (Protocol.Rejected (Protocol.Queue_full cap))
  end;
  job

let submit t (req : Request.t) =
  let deadline_ms =
    match req.Request.deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.default_deadline_ms
  in
  enqueue t ~kind:(KRun req) ~priority:req.Request.priority
    ~tenant:req.Request.tenant ~deadline_ms

let submit_tune t (tr : Protocol.tune_req) =
  enqueue t ~kind:(KTune tr) ~priority:tr.Protocol.t_priority
    ~tenant:tr.Protocol.t_tenant ~deadline_ms:t.cfg.default_deadline_ms

let cancel t job =
  Mutex.lock t.mu;
  let withdrawn = Fair.remove t.queue (fun j -> j.id = job.id) in
  (match withdrawn with
  | Some _ -> Metrics.set t.g_depth (float_of_int (Fair.length t.queue))
  | None -> ());
  Mutex.unlock t.mu;
  match withdrawn with
  | Some j -> finish t j (Protocol.Rejected Protocol.Cancelled)
  | None ->
      (* already popped: flag it and cancel the attempt's watchdog if one
         is armed; the [on_watchdog] hook covers the window before the
         first attempt arms one. *)
      Mutex.lock job.jm;
      job.cancelled <- true;
      let wd = job.wd in
      Mutex.unlock job.jm;
      (match wd with
      | Some wd ->
          ignore (Nat.Watchdog.cancel wd (Failure "client disconnected"))
      | None -> ())

(* ---- execution ---- *)

let disconnect_exn = Failure "client disconnected"

(* A tuned [`Auto] policy or an oversized request may ask for more
   contexts than the shared pool holds; shrink to the largest thread
   count whose pool demand fits, instead of bouncing the run. *)
let fit_threads ~pool ~technique threads =
  let cap = Nat.Pool.workers pool in
  let rec go th =
    if th <= 1 then 1
    else if Cx.native_pool_size ~technique ~threads:th <= cap then th
    else go (th - 1)
  in
  go threads

let exec_run t job (req : Request.t) ~queue_wait_ns ~remaining_ms =
  if not (Nat.Pool.live t.pool) then t.pool <- new_pool t;
  let req =
    match req.Request.backend with
    | `Sim -> req
    | `Native -> (
        match Cx.technique_of_string req.Request.technique with
        | None -> req (* surfaces as Bad_request below *)
        | Some technique ->
            {
              req with
              Request.threads =
                fit_threads ~pool:t.pool ~technique req.Request.threads;
            })
  in
  let on_watchdog wd =
    Mutex.lock job.jm;
    job.wd <- Some wd;
    let c = job.cancelled in
    Mutex.unlock job.jm;
    if c then ignore (Nat.Watchdog.cancel wd disconnect_exn)
  in
  match
    Request.to_crossinv ~pool:t.pool ?cache_dir:t.cfg.cache_dir
      ~cache_limit:t.cfg.cache ?deadline_ms:remaining_ms ~on_watchdog req
  with
  | Error (`Unknown_workload n) ->
      finish t job (Protocol.Rejected (Protocol.Unknown_workload n))
  | Error (`Bad_request r) ->
      finish t job (Protocol.Rejected (Protocol.Bad_request r))
  | Ok creq -> (
      let was_cancelled () =
        Mutex.lock job.jm;
        let c = job.cancelled in
        Mutex.unlock job.jm;
        c
      in
      let workload = creq.Cx.Request.workload.Xinv_workloads.Workload.name in
      match Cx.run_request creq with
      | o ->
          (* A cancelled native cohort is degradable, so the run may have
             completed sequentially after the cancel point — the client is
             gone either way, and the cancellation wins.  (Sim runs have no
             cancel point and deliver their outcome; see the mli.) *)
          if was_cancelled () && req.Request.backend = `Native then
            finish t job (Protocol.Rejected Protocol.Cancelled)
          else
            finish t job
              (Protocol.Outcome
                 (Protocol.summary_of_outcome ~workload ~queue_wait_ns o))
      | exception e ->
          if was_cancelled () then
            finish t job (Protocol.Rejected Protocol.Cancelled)
          else (
            match e with
            | Nat.Watchdog.Stalled _ ->
                finish t job (Protocol.Rejected Protocol.Deadline_exceeded)
            | e -> finish t job (Protocol.Failed (Printexc.to_string e))))

let exec_tune t job (tr : Protocol.tune_req) ~remaining_ms =
  match Xinv_workloads.Registry.find tr.Protocol.t_workload with
  | exception Invalid_argument _ ->
      finish t job
        (Protocol.Rejected (Protocol.Unknown_workload tr.Protocol.t_workload))
  | wl -> (
      match Xinv_tune.Search.strategy_of_string tr.Protocol.t_strategy with
      | None ->
          finish t job
            (Protocol.Rejected
               (Protocol.Bad_request
                  ("unknown strategy " ^ tr.Protocol.t_strategy)))
      | Some strategy -> (
          (* [Tune.tune] has no end-to-end abort, so the deadline's
             remainder is threaded in as the per-trial watchdog cap
             (tightening the 2000 ms default): a nearly-spent budget
             cannot fund long trials, though a large [t_budget] can still
             overrun in aggregate — see the mli. *)
          let trial_deadline_ms =
            Option.map (fun r -> Float.min r 2000.) remaining_ms
          in
          match
            Xinv_tune.Tune.tune ~cache:t.cfg.cache ?cache_dir:t.cfg.cache_dir
              ~input:tr.Protocol.t_input ~budget:tr.Protocol.t_budget
              ~strategy ~seed:tr.Protocol.t_seed
              ?max_domains:tr.Protocol.t_max_domains ?trial_deadline_ms wl
          with
          | r ->
              let tuned = r.Xinv_tune.Tune.tuned in
              finish t job
                (Protocol.Tune_reply
                   {
                     Protocol.r_policy_key =
                       Xinv_cache.Policy.key tuned.Xinv_cache.Policy.policy;
                     r_wall_ns = tuned.Xinv_cache.Policy.wall_ns;
                     r_seq_wall_ns = tuned.Xinv_cache.Policy.seq_wall_ns;
                     r_trials = List.length r.Xinv_tune.Tune.trials;
                     r_source =
                       Xinv_tune.Tune.source_name r.Xinv_tune.Tune.source;
                   })
          | exception e -> finish t job (Protocol.Failed (Printexc.to_string e))
          ))

let execute t job =
  let queue_wait_ns = (now () -. job.enqueued_at) *. 1e9 in
  Metrics.observe t.h_queue_wait (queue_wait_ns /. 1e6);
  let remaining_ms =
    Option.map (fun d -> d -. (queue_wait_ns /. 1e6)) job.deadline_ms
  in
  let cancelled =
    Mutex.lock job.jm;
    let c = job.cancelled in
    Mutex.unlock job.jm;
    c
  in
  if cancelled then finish t job (Protocol.Rejected Protocol.Cancelled)
  else
    match remaining_ms with
    | Some r when r <= 0. ->
        finish t job (Protocol.Rejected Protocol.Deadline_exceeded)
    | _ -> (
        match job.kind with
        | KRun req -> exec_run t job req ~queue_wait_ns ~remaining_ms
        | KTune tr -> exec_tune t job tr ~remaining_ms)

(* ---- scheduler ---- *)

let scheduler_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.mu;
    while (not t.stopping) && Fair.length t.queue = 0 do
      Condition.wait t.work t.mu
    done;
    (match Fair.pop t.queue with
    | None ->
        (* stopping and empty *)
        running := false;
        Mutex.unlock t.mu
    | Some job ->
        Metrics.set t.g_depth (float_of_int (Fair.length t.queue));
        Mutex.unlock t.mu;
        execute t job)
  done

let start t =
  Mutex.lock t.mu;
  let need = t.scheduler = None && not t.stopping in
  Mutex.unlock t.mu;
  if need then begin
    let th = Thread.create scheduler_loop t in
    Mutex.lock t.mu;
    t.scheduler <- Some th;
    Mutex.unlock t.mu
  end

let stop ?(drain = false) t =
  Mutex.lock t.mu;
  t.stopping <- true;
  let rejected =
    if drain then []
    else begin
      (* empty the queue now so the scheduler exits without running them *)
      let rec all acc =
        match Fair.pop t.queue with None -> acc | Some j -> all (j :: acc)
      in
      all []
    end
  in
  Metrics.set t.g_depth (float_of_int (Fair.length t.queue));
  Condition.broadcast t.work;
  let th = t.scheduler in
  t.scheduler <- None;
  Mutex.unlock t.mu;
  List.iter
    (fun j -> finish t j (Protocol.Rejected Protocol.Shutting_down))
    rejected;
  (match th with Some th -> Thread.join th | None -> ());
  Nat.Pool.shutdown t.pool

(* ---- stats ---- *)

let queued t =
  Mutex.lock t.mu;
  let n = Fair.length t.queue in
  Mutex.unlock t.mu;
  n

let snapshot t = Snapshot.take t.metrics

let pong t =
  {
    Protocol.p_uptime_ns = (now () -. t.started_at) *. 1e9;
    p_pool_domains = Nat.Pool.workers t.pool;
    p_pool_creates = t.pool_creates;
    p_queued = queued t;
    p_served = served t;
  }

(* ---- socket front end ---- *)

(* While a connection's request is in flight, poll the socket: pending
   bytes that peek to EOF mean the client hung up, so its job is
   cancelled (only that cohort unwinds; the pool and every other tenant's
   run are untouched) and [None] is returned — the peer is dead, so no
   reply must be written to it.  OCaml's [Condition] has no timed wait,
   hence the 20 ms poll cadence — queue waits dominate it in any loaded
   daemon. *)
let await_watching t fd job =
  let gone () =
    cancel t job;
    ignore (await job);
    None
  in
  let rec go () =
    match peek job with
    | Some r -> Some r
    | None -> (
        match Unix.select [ fd ] [] [] 0. with
        | [], _, _ ->
            Thread.delay 0.02;
            go ()
        | _ :: _, _, _ -> (
            let b = Bytes.create 1 in
            match Unix.recv fd b 0 1 [ Unix.MSG_PEEK ] with
            | 0 -> gone ()
            | _ ->
                (* client pipelined its next frame; stop watching *)
                Some (await job)
            | exception Unix.Unix_error _ -> gone ())
        | exception Unix.Unix_error _ -> gone ())
  in
  go ()

type session = { srv : t; fd : Unix.file_descr; mutable shutdown_seen : bool }

let reply_watching s job =
  match await_watching s.srv s.fd job with
  | Some r ->
      Protocol.send_server s.fd r;
      true
  | None -> false (* client gone: nothing to write, drop the session *)

let handle_message s msg =
  match (msg : Protocol.client_msg) with
  | Protocol.Ping ->
      Protocol.send_server s.fd (Protocol.Pong (pong s.srv));
      true
  | Protocol.Stats ->
      Protocol.send_server s.fd (Protocol.Stats_reply (snapshot s.srv));
      true
  | Protocol.Shutdown ->
      s.shutdown_seen <- true;
      Protocol.send_server s.fd
        (Protocol.Shutdown_ack { served = served s.srv });
      false
  | Protocol.Run { Request.workload = `Inline _; _ } ->
      (* an [`Inline] workload is a Marshal image, and unmarshalling
         bytes that arrived from an arbitrary peer is memory-unsafe (a
         crafted or cross-binary payload can crash the daemon outside any
         exception handler).  The socket boundary therefore only admits
         registry names; [Request.of_workload] stays a same-process
         construct. *)
      Protocol.send_server s.fd
        (Protocol.Rejected
           (Protocol.Bad_request
              "inline workloads are not accepted over the socket; submit a \
               registry workload name"));
      true
  | Protocol.Run req -> reply_watching s (submit s.srv req)
  | Protocol.Tune tr -> reply_watching s (submit_tune s.srv tr)

let handle_conn s =
  let rec session () =
    match Protocol.recv_client s.fd with
    | msg -> if (try handle_message s msg with _ -> false) then session ()
    | exception Wire.Error Wire.Closed -> ()
    | exception Wire.Error e ->
        (* framing is gone; answer once, then drop the connection *)
        (try
           Protocol.send_server s.fd
             (Protocol.Rejected
                (Protocol.Bad_request (Wire.error_to_string e)))
         with _ -> ())
    | exception _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close s.fd with _ -> ())
    session

let serve t ~socket =
  (* A client that disconnects between the poll in [await_watching] and a
     reply write would otherwise deliver SIGPIPE, whose default action
     terminates the whole multi-tenant daemon.  Ignored, a write to a
     dead peer fails with a catchable [EPIPE] instead, which the session
     loop treats as end-of-connection. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  start t;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  let stop_requested = Atomic.make false in
  (* (fd, thread) of every accepted connection; touched only by this
     thread (accept loop, then the [finally] below), so unlocked *)
  let conns = ref [] in
  let rec accept_loop () =
    if not (Atomic.get stop_requested) then begin
      match Unix.accept fd with
      | cfd, _ ->
          let s = { srv = t; fd = cfd; shutdown_seen = false } in
          let th =
            Thread.create
              (fun () ->
                handle_conn s;
                if s.shutdown_seen then begin
                  Atomic.set stop_requested true;
                  (* poke the accept loop awake so it can exit *)
                  try
                    let p = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                    (try Unix.connect p (Unix.ADDR_UNIX socket)
                     with Unix.Unix_error _ -> ());
                    Unix.close p
                  with Unix.Unix_error _ -> ()
                end)
              ()
          in
          conns := (cfd, th) :: !conns;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      (* EOF the surviving connections before joining: a thread parked in
         [recv_client] on an idle keep-alive connection would otherwise
         never return and the join would hang the shutdown forever.
         shutdown(2) wakes the reader without racing the owning thread's
         close; on an fd its thread already closed (possibly reused by a
         non-socket) it fails with a caught EBADF/ENOTSOCK. *)
      List.iter
        (fun (cfd, _) ->
          try Unix.shutdown cfd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ | Invalid_argument _ -> ())
        !conns;
      List.iter (fun (_, th) -> Thread.join th) !conns;
      stop t)
    accept_loop
