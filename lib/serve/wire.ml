let schema = "xinv-serve/1"
let magic = 0x58535256 (* "XSRV" *)
let version = 1
let max_payload = 64 * 1024 * 1024
let header_bytes = 4 + 1 + 1 + 4 + 16

type error =
  | Truncated
  | Bad_magic of int
  | Bad_version of int
  | Bad_length of int
  | Bad_checksum
  | Bad_tag of int
  | Bad_payload of string
  | Closed

exception Error of error

let error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic m -> Printf.sprintf "bad magic 0x%08x (want \"XSRV\")" m
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_length n -> Printf.sprintf "implausible payload length %d" n
  | Bad_checksum -> "payload checksum mismatch"
  | Bad_tag t -> Printf.sprintf "unknown message tag %d" t
  | Bad_payload what -> "bad payload: " ^ what
  | Closed -> "connection closed"

let fail e = raise (Error e)

(* ---- writer ---- *)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents
let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 then invalid_arg "Wire.put_u32: negative";
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b v =
  let v = Int64.of_int v in
  for i = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

let put_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt b f = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      f b v

let put_list b f xs =
  put_u32 b (List.length xs);
  List.iter (f b) xs

(* ---- reader ---- *)

type reader = { buf : string; mutable pos : int }

let reader s = { buf = s; pos = 0 }

let get_u8 r =
  if r.pos >= String.length r.buf then fail Truncated;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let a = get_u8 r in
  let b = get_u8 r in
  let c = get_u8 r in
  let d = get_u8 r in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let get_bits64 r =
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 r))
  done;
  !v

let get_i64 r = Int64.to_int (get_bits64 r)
let get_f64 r = Int64.float_of_bits (get_bits64 r)

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> fail (Bad_payload (Printf.sprintf "bool byte %d" n))

let get_string r =
  let n = get_u32 r in
  if n < 0 || n > String.length r.buf - r.pos then fail Truncated;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_opt r f = match get_u8 r with 0 -> None | _ -> Some (f r)

let get_list r f =
  let n = get_u32 r in
  (* Bound by the bytes actually present: every element takes at least one
     byte, so a hostile length can never drive an allocation larger than
     the payload itself. *)
  if n < 0 || n > String.length r.buf - r.pos then fail Truncated;
  List.init n (fun _ -> f r)

let reader_done r = r.pos = String.length r.buf

(* ---- frames ---- *)

let encode_frame ~tag payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Wire.encode_frame: payload too large";
  let b = Buffer.create (header_bytes + n) in
  put_u32 b magic;
  put_u8 b version;
  put_u8 b tag;
  put_u32 b n;
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let decode_header h =
  let r = reader h in
  let m = get_u32 r in
  if m <> magic then fail (Bad_magic m);
  let v = get_u8 r in
  if v <> version then fail (Bad_version v);
  let tag = get_u8 r in
  let len = get_u32 r in
  if len < 0 || len > max_payload then fail (Bad_length len);
  (* the digest is the fixed 16 raw bytes, not length-prefixed *)
  let digest = String.sub h 10 16 in
  (tag, len, digest)

let decode_frame s =
  if String.length s < header_bytes then fail Truncated;
  let tag, len, digest = decode_header (String.sub s 0 header_bytes) in
  if String.length s <> header_bytes + len then fail Truncated;
  let payload = String.sub s header_bytes len in
  if not (String.equal (Digest.string payload) digest) then fail Bad_checksum;
  (tag, payload)

(* ---- stream transport ---- *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd ~tag payload =
  let s = encode_frame ~tag payload in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* [eof_ok] distinguishes a client that hung up between frames (clean
   [Closed]) from one that died mid-frame ([Truncated]). *)
let read_exactly fd n ~eof_ok =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k = Unix.read fd buf off (n - off) in
      if k = 0 then fail (if off = 0 && eof_ok then Closed else Truncated);
      go (off + k)
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

let read_frame fd =
  let h = read_exactly fd header_bytes ~eof_ok:true in
  let tag, len, digest = decode_header h in
  let payload = if len = 0 then "" else read_exactly fd len ~eof_ok:false in
  if not (String.equal (Digest.string payload) digest) then fail Bad_checksum;
  (tag, payload)
