module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* PolyBench SYMM: symmetric rank-k style kernel.  Fully affine: iteration
   (t, j) writes Cm[t*TRIP + j], so invocations are provably independent
   within themselves and actually independent across invocations — yet the
   parallelizer still synchronizes after every invocation, which is exactly
   the waste SPECCROSS removes.  Small, regular iterations also make it the
   DOMORE stress case: invocations are only tens of thousands of cycles, so
   per-iteration scheduling overhead dominates (§5.1). *)

let trip = 60

let outer_of = function Workload.Train | Workload.Train_spec -> 200 | _ -> 700

let build_input input =
  let n = outer_of input in
  let a = Array.init trip (fun i -> float_of_int ((i * 7) mod 97)) in
  let b = Array.init n (fun i -> float_of_int ((i * 13) mod 89)) in
  let cm = Array.make (n * trip) 0. in
  Ir.Memory.create
    [ Ir.Memory.Floats ("A", a); Ir.Memory.Floats ("B", b); Ir.Memory.Floats ("Cm", cm) ]

let out_expr = E.((o * c trip) + i)

let build_program outer =
  let handles =
    Wl_util.memo (fun mem ->
        ( Ir.Memory.float_data mem "A",
          Ir.Memory.float_data mem "B",
          Ir.Memory.float_data mem "Cm" ))
  in
  let body =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "A" E.i; Ir.Access.make "B" E.o ]
      ~writes:[ Ir.Access.make "Cm" out_expr ]
      ~cost:(fun env -> Wl_util.jittered ~base:400. ~spread:0.3 ~salt:11 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        if Ir.Memory.observed mem then begin
          (* Observable slow path: Validate watches every access. *)
          let av = Ir.Memory.get_float mem "A" env.Ir.Env.j_inner in
          let bv = Ir.Memory.get_float mem "B" env.Ir.Env.t_outer in
          Ir.Memory.set_float mem "Cm" (E.eval env out_expr)
            (Float.rem ((av *. bv) +. av +. bv) Wl_util.modulus)
        end
        else begin
          let a, b, cm = handles mem in
          let av = a.(env.Ir.Env.j_inner) in
          let bv = b.(env.Ir.Env.t_outer) in
          cm.((env.Ir.Env.t_outer * trip) + env.Ir.Env.j_inner) <-
            Float.rem ((av *. bv) +. av +. bv) Wl_util.modulus
        end)
      "C[i][j] = acc(A, B)"
  in
  Ir.Program.make ~name:"SYMM" ~outer_trip:outer
    [ Ir.Program.inner ~label:"symm" ~trip:(Ir.Program.const_trip trip) [ body ] ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let n = outer_of input in
    match Hashtbl.find_opt progs n with
    | Some p -> p
    | None ->
        let p = build_program n in
        Hashtbl.replace progs n p;
        p
  in
  {
    Workload.name = "SYMM";
    suite = "PolyBench";
    func = "main";
    exec_pct = 100.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan = [ ("symm", Xinv_parallel.Intra.Doall) ];
    mem_partition = false;
    domore_expected = true;
    speccross_expected = true;
  }
