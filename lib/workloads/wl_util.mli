(** Shared helpers for workload construction. *)

val hash01 : int -> int -> int -> float
(** [hash01 salt t j] is a deterministic pseudo-random float in [\[0, 1)]. *)

val jittered : base:float -> ?spread:float -> salt:int -> Xinv_ir.Env.t -> float
(** Cost model: [base * (1 +- spread)], deterministic per (outer, inner)
    iteration.  Default spread 0.5 — load imbalance is what makes barriers
    expensive. *)

val mix : float -> float -> float
(** Order-sensitive exact float update: [mix x k = (3x + k) mod 2^20].  Both
    operations are exact in double precision, so any reordering of dependent
    updates changes the final bits — the property the correctness tests
    rely on. *)

val distinct_ints : Xinv_util.Prng.t -> bound:int -> n:int -> int array
(** [n] distinct values below [bound]. *)

val permutation : Xinv_util.Prng.t -> int -> int array

val modulus : float
(** The modulus used by {!mix} (2^20). *)

val memo : (Xinv_ir.Memory.t -> 'a) -> Xinv_ir.Memory.t -> 'a
(** [memo resolve] caches [resolve mem] keyed on the {e physical identity}
    of [mem] (one slot, refilled whenever a different memory shows up).
    Workloads use it to resolve {!Xinv_ir.Memory.float_data} handles once
    per run instead of once per access; [resolve] must be pure.  Thread-safe
    — concurrent refills just recompute the same value. *)
