module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* PolyBench JACOBI: ping-pong 1-D stencil.  Two invocations per timestep
   (U -> V, then V -> U); the stencil's halo makes consecutive invocations
   truly dependent, at a task distance of about one invocation (Table 5.3:
   497 train / 997 ref at the paper's scale).  A residual diagnostic in the
   sequential region reads the field, which drags the bodies into the DOMORE
   scheduler partition — DOMORE inapplicable, exactly the Table 5.1 row. *)

let trip_of = function Workload.Train | Workload.Train_spec -> 60 | _ -> 100

let outer_of = function Workload.Train | Workload.Train_spec -> 20 | _ -> 50

let build_input input =
  let n = trip_of input in
  let u = Array.init (n + 2) (fun i -> float_of_int ((i * 37) mod 1021)) in
  let v = Array.make (n + 2) 0. in
  Ir.Memory.create [ Ir.Memory.Floats ("U", u); Ir.Memory.Floats ("V", v) ]

let stencil ~label ~src ~dst n =
  let out = E.(i + c 1) in
  let handles =
    Wl_util.memo (fun mem ->
        (Ir.Memory.float_data mem src, Ir.Memory.float_data mem dst))
  in
  let body =
    Ir.Stmt.make
      ~reads:
        [
          Ir.Access.make src E.i;
          Ir.Access.make src E.(i + c 1);
          Ir.Access.make src E.(i + c 2);
        ]
      ~writes:[ Ir.Access.make dst out ]
      ~cost:(fun env -> Wl_util.jittered ~base:900. ~salt:31 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let j = env.Ir.Env.j_inner in
        if Ir.Memory.observed mem then begin
          (* Observable slow path: Validate watches every access. *)
          let s =
            Ir.Memory.get_float mem src j
            +. Ir.Memory.get_float mem src (j + 1)
            +. Ir.Memory.get_float mem src (j + 2)
          in
          Ir.Memory.set_float mem dst (j + 1) (Float.rem (s +. 1.) Wl_util.modulus)
        end
        else begin
          let s, d = handles mem in
          d.(j + 1) <- Float.rem (s.(j) +. s.(j + 1) +. s.(j + 2) +. 1.) Wl_util.modulus
        end)
      (Printf.sprintf "%s[j+1] = avg(%s[j..j+2])" dst src)
  in
  let residual =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make src E.(Bin (Mod, o, c n) + c 1) ]
      ~cost:(Ir.Stmt.fixed_cost 140.)
      "residual_check(field)"
  in
  Ir.Program.inner ~pre:[ residual ] ~label ~trip:(Ir.Program.const_trip n) [ body ]

let build_program input =
  let n = trip_of input in
  Ir.Program.make ~name:"JACOBI" ~outer_trip:(outer_of input)
    [ stencil ~label:"fwd" ~src:"U" ~dst:"V" n; stencil ~label:"bwd" ~src:"V" ~dst:"U" n ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let key = (trip_of input, outer_of input) in
    match Hashtbl.find_opt progs key with
    | Some p -> p
    | None ->
        let p = build_program input in
        Hashtbl.replace progs key p;
        p
  in
  {
    Workload.name = "JACOBI";
    suite = "PolyBench";
    func = "main";
    exec_pct = 100.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan =
      [ ("fwd", Xinv_parallel.Intra.Doall); ("bwd", Xinv_parallel.Intra.Doall) ];
    mem_partition = false;
    domore_expected = false;
    speccross_expected = true;
  }
