let hash01 salt t j =
  let z = Int64.of_int (((salt * 0x9E3779B9) + (t * 0x85EBCA6B)) lxor (j * 0xC2B2AE35)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  let r = Int64.to_float (Int64.shift_right_logical z 11) in
  r /. 9007199254740992.0

let jittered ~base ?(spread = 0.5) ~salt (env : Xinv_ir.Env.t) =
  let h = hash01 salt env.Xinv_ir.Env.t_outer env.Xinv_ir.Env.j_inner in
  base *. (1. +. (spread *. ((2. *. h) -. 1.)))

let modulus = 1048576.0

let mix x k = Float.rem ((3.0 *. x) +. k) modulus

let distinct_ints rng ~bound ~n =
  assert (n <= bound);
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let v = Xinv_util.Prng.int rng bound in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      out.(!i) <- v;
      incr i
    end
  done;
  out

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  Xinv_util.Prng.shuffle rng a;
  a

(* Single-slot memo keyed on the memory's physical identity.  Workload exec
   closures resolve their backing arrays through this, so the Hashtbl name
   lookup happens once per (closure, memory) pair instead of once per
   access.  The slot is an Atomic because native workers share the closure
   across domains: a racing fill recomputes the same handles (resolution is
   pure), so last-write-wins is harmless. *)
let memo f =
  let slot = Atomic.make None in
  fun mem ->
    match Atomic.get slot with
    | Some (m, v) when m == mem -> v
    | _ ->
        let v = f mem in
        Atomic.set slot (Some (mem, v));
        v
