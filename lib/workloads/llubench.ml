module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* LLVMBENCH LLUBENCH: linked-list traversal micro-benchmark.  Each outer
   iteration updates a chain of list nodes reached through a pointer
   (index) array; every dynamic access is distinct, so no cross-invocation
   dependence ever manifests — but static analysis cannot see through the
   pointer indirection, so the barrier version synchronizes anyway. *)

let trip = 55

let outer_of = function Workload.Train | Workload.Train_spec -> 60 | _ -> 200

let build_input input =
  let n = outer_of input in
  let seed = match input with Workload.Train | Workload.Train_spec -> 7 | _ -> 91 in
  let rng = Xinv_util.Prng.create ~seed in
  let ntasks = n * trip in
  let nodeidx = Wl_util.permutation rng ntasks in
  let data = Array.init ntasks (fun i -> float_of_int (i mod 509)) in
  Ir.Memory.create
    [ Ir.Memory.Ints ("nodeidx", nodeidx); Ir.Memory.Floats ("data", data) ]

let build_program outer =
  let node = E.ld "nodeidx" E.((o * c trip) + i) in
  let handles =
    Wl_util.memo (fun mem ->
        (Ir.Memory.int_data mem "nodeidx", Ir.Memory.float_data mem "data"))
  in
  let update =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "data" node ]
      ~writes:[ Ir.Access.make "data" node ]
      ~cost:(fun env -> Wl_util.jittered ~base:1500. ~spread:0.6 ~salt:5 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        if Ir.Memory.observed mem then begin
          (* Observable slow path: Validate watches every access. *)
          let ni = E.eval env node in
          let cur = Ir.Memory.get_float mem "data" ni in
          Ir.Memory.set_float mem "data" ni
            (Wl_util.mix cur (float_of_int (ni mod 127)))
        end
        else begin
          let nodeidx, data = handles mem in
          let ni = nodeidx.((env.Ir.Env.t_outer * trip) + env.Ir.Env.j_inner) in
          data.(ni) <- Wl_util.mix data.(ni) (float_of_int (ni mod 127))
        end)
      "node->val = work(node)"
  in
  Ir.Program.make ~name:"LLUBENCH" ~outer_trip:outer
    [ Ir.Program.inner ~label:"chase" ~trip:(Ir.Program.const_trip trip) [ update ] ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let n = outer_of input in
    match Hashtbl.find_opt progs n with
    | Some p -> p
    | None ->
        let p = build_program n in
        Hashtbl.replace progs n p;
        p
  in
  {
    Workload.name = "LLUBENCH";
    suite = "LLVMBENCH";
    func = "main";
    exec_pct = 50.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan = [ ("chase", Xinv_parallel.Intra.Doall) ];
    mem_partition = false;
    domore_expected = true;
    speccross_expected = true;
  }
