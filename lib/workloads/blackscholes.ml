module Ir = Xinv_ir
module E = Xinv_ir.Expr

(* PARSEC BLACKSCHOLES, function bs_thread: repeated sweeps pricing a
   portfolio of options.  Each sweep writes results through a static
   permutation, so iterations within a sweep never conflict — but the writes
   are irregular, so the paper's plan speculates (Spec-DOALL) and SPECCROSS
   is inapplicable (Table 5.1).  Across sweeps every location is rewritten,
   a dependence DOMORE's memory-partition scheduling turns into same-worker
   ordering with no synchronization at all. *)

let trip = 80

let outer_of = function Workload.Train | Workload.Train_spec -> 90 | _ -> 280

let build_input input =
  let seed = match input with Workload.Train | Workload.Train_spec -> 3 | _ -> 57 in
  let rng = Xinv_util.Prng.create ~seed in
  let pm = Wl_util.permutation rng trip in
  let price = Array.make trip 100. in
  let spot = Array.init trip (fun i -> float_of_int ((i * 17) mod 211)) in
  Ir.Memory.create
    [
      Ir.Memory.Ints ("pm", pm);
      Ir.Memory.Floats ("price", price);
      Ir.Memory.Floats ("spot", spot);
    ]

let slot = E.ld "pm" E.i

let build_program outer =
  let handles =
    Wl_util.memo (fun mem ->
        ( Ir.Memory.int_data mem "pm",
          Ir.Memory.float_data mem "price",
          Ir.Memory.float_data mem "spot" ))
  in
  let body =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "spot" E.i; Ir.Access.make "price" slot ]
      ~writes:[ Ir.Access.make "price" slot ]
      ~cost:(fun env -> Wl_util.jittered ~base:1600. ~spread:0.45 ~salt:23 env)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        if Ir.Memory.observed mem then begin
          (* Observable slow path: Validate watches every access. *)
          let s = Ir.Memory.get_float mem "spot" env.Ir.Env.j_inner in
          let p = E.eval env slot in
          let cur = Ir.Memory.get_float mem "price" p in
          Ir.Memory.set_float mem "price" p (Wl_util.mix cur s)
        end
        else begin
          let pm, price, spot = handles mem in
          let p = pm.(env.Ir.Env.j_inner) in
          price.(p) <- Wl_util.mix price.(p) spot.(env.Ir.Env.j_inner)
        end)
      "price[pm[j]] = BlkSchls(...)"
  in
  Ir.Program.make ~name:"BLACKSCHOLES" ~outer_trip:outer
    [ Ir.Program.inner ~label:"bs" ~trip:(Ir.Program.const_trip trip) [ body ] ]

let make () =
  let progs = Hashtbl.create 3 in
  let program input =
    let n = outer_of input in
    match Hashtbl.find_opt progs n with
    | Some p -> p
    | None ->
        let p = build_program n in
        Hashtbl.replace progs n p;
        p
  in
  {
    Workload.name = "BLACKSCHOLES";
    suite = "PARSEC";
    func = "bs_thread";
    exec_pct = 99.0;
    program;
    fresh_env = (fun input -> Ir.Env.make (build_input input));
    plan = [ ("bs", Xinv_parallel.Intra.Spec_doall) ];
    mem_partition = true;
    domore_expected = true;
    speccross_expected = false;
  }
