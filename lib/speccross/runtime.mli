(** The SPECCROSS speculative-barrier runtime (dissertation Chapter 4).

    Worker threads execute the region's invocations (epochs) without
    synchronizing at invocation boundaries: each task records the epoch/task
    positions of the other workers when it begins, computes an access
    signature, and submits a checking request; a dedicated checker thread
    compares the signature against every signature another worker logged
    between that recorded position and the task's own epoch.  A conflict is a
    misspeculation: workers rally, the last checkpoint is restored, and the
    affected epoch range re-executes under non-speculative barriers before
    speculation resumes.  A profiling-derived speculative range bounds how
    many epochs a thread may lead the slowest one. *)

type mode =
  | M_doall  (** iterations cyclically distributed, no within-epoch conflicts *)
  | M_localwrite  (** owner-compute within the epoch *)
  | M_domore of Xinv_domore.Policy.t
      (** §3.4 duplicated-scheduler DOMORE handles the epoch's irregular
          conflicts; the checker still guards cross-epoch dependences *)

type config = {
  machine : Xinv_sim.Machine.t;
  workers : int;  (** worker threads; the checker is one extra *)
  sig_kind : Xinv_runtime.Signature.kind;
  checkpoint_every : int;  (** epochs between checkpoints *)
  spec_distance : int;
      (** speculative range in tasks (§4.2.1): a thread stalls rather than
          run more than this many tasks ahead of the slowest thread; from
          {!Profiler} *)
  mode_of : string -> mode;  (** per inner-loop label *)
  inject_misspec : (int * int) option;
      (** force a misspeculation at [(epoch, worker)] — evaluation of
          Figure 5.3 *)
  non_spec_barriers : bool;
      (** replace speculative barriers with real ones: every epoch boundary
          synchronizes all workers and no signatures are computed.  Used for
          the "+Barrier" configurations of Figure 5.6, keeping the
          within-epoch execution modes identical. *)
  tm_style : bool;
      (** transactional-memory-style checking (Figure 4.4): the checker also
          compares a task against overlapping tasks of its *own* epoch, the
          provably-independent comparisons SPECCROSS's epoch rule skips.
          Costs only; such pairs can never be flagged as conflicts. *)
}

val default_config : workers:int -> config

val run :
  ?config:config ->
  ?obs:Xinv_obs.Recorder.t ->
  ?trace:bool ->
  Xinv_ir.Program.t ->
  Xinv_ir.Env.t ->
  Xinv_parallel.Run.t
(** Simulates the speculative execution, mutating the environment's memory
    to the (verified) final state.  [Run.checks] counts checking requests,
    [Run.misspecs] recoveries.  With [?obs], epoch commits, misspeculations,
    recoveries, checkpoints, signature checks and worker stalls are
    recorded; recording consumes no virtual time, so the run is
    bit-identical with and without it. *)
