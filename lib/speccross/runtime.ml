module Sim = Xinv_sim
module Ir = Xinv_ir
module Rt = Xinv_runtime

type mode = M_doall | M_localwrite | M_domore of Xinv_domore.Policy.t

type config = {
  machine : Sim.Machine.t;
  workers : int;
  sig_kind : Rt.Signature.kind;
  checkpoint_every : int;
  spec_distance : int;  (* max task lead over the slowest thread *)
  mode_of : string -> mode;
  inject_misspec : (int * int) option;
  non_spec_barriers : bool;
  tm_style : bool;
}

let default_config ~workers =
  {
    machine = Sim.Machine.default;
    workers;
    sig_kind = Rt.Signature.Range;
    checkpoint_every = 1000;
    spec_distance = max_int / 4;
    mode_of = (fun _ -> M_doall);
    inject_misspec = None;
    non_spec_barriers = false;
    tm_style = false;
  }

(* Sentinel larger than any epoch number, used to release waiters on abort. *)
let wake = max_int / 2

type gstate = {
  g_id : int;
  progress : Sim.Mono_cell.t array;  (** epoch boundary reached per worker *)
  tpos : Sim.Mono_cell.t array;  (** global task position per worker *)
  positions : (int * int) array;  (** live (epoch, task) per worker *)
  submitted : int ref;
  processed : Sim.Mono_cell.t;
  abort : bool ref;
  arrived_n : int ref;
  arrived : Sim.Mono_cell.t;
  recovery_done : Sim.Mono_cell.t;
  ckpt_done : Sim.Mono_cell.t;  (** highest checkpointed epoch boundary *)
  io_done : Sim.Mono_cell.t;  (** highest completed irreversible epoch *)
  mutable redo_barrier : Sim.Barrier.t;
}

let fresh_gstate ~id ~workers =
  {
    g_id = id;
    progress = Array.init workers (fun _ -> Sim.Mono_cell.create ~init:(-1) ());
    tpos = Array.init workers (fun _ -> Sim.Mono_cell.create ~init:(-1) ());
    positions = Array.make workers (0, 0);
    submitted = ref 0;
    processed = Sim.Mono_cell.create ~init:0 ();
    abort = ref false;
    arrived_n = ref 0;
    arrived = Sim.Mono_cell.create ~init:0 ();
    recovery_done = Sim.Mono_cell.create ~init:0 ();
    ckpt_done = Sim.Mono_cell.create ~init:(-1) ();
    io_done = Sim.Mono_cell.create ~init:(-1) ();
    redo_barrier = Sim.Barrier.create ~parties:workers;
  }

type cmsg =
  | Request of {
      gen : int;
      worker : int;
      epoch : int;
      task : int;
      sg : Rt.Signature.t;
      started : (int * int) array;
      force : bool;
    }
  | Reset of int
  | Finish of int

let run ?config ?obs ?(trace = false) (p : Ir.Program.t) env =
  let cfg = match config with Some c -> c | None -> default_config ~workers:3 in
  let { machine; workers; _ } = cfg in
  assert (workers > 0);
  let module Obs = Xinv_obs in
  let record ~at ~tid ev =
    match obs with None -> () | Some o -> Obs.Recorder.record o ~at ~tid ev
  in
  let mincr = function Some c -> Obs.Metrics.incr c | None -> () in
  let m_epochs, m_misspecs, m_checks, m_ckpts =
    match obs with
    | Some o ->
        let m = Obs.Recorder.metrics o in
        ( Some (Obs.Metrics.counter m "speccross.epochs_committed"),
          Some (Obs.Metrics.counter m "speccross.misspeculations"),
          Some (Obs.Metrics.counter m "speccross.signature_checks"),
          Some (Obs.Metrics.counter m "speccross.checkpoints") )
    | None -> (None, None, None, None)
  in
  let mem = env.Ir.Env.mem in
  let inners = Array.of_list p.Ir.Program.inners in
  let ninners = Array.length inners in
  let nepochs = p.Ir.Program.outer_trip * ninners in
  let eng = Sim.Engine.create ~trace () in
  let siglog = Rt.Siglog.create ~workers in
  let ckpts = Rt.Checkpoint.create () in
  Rt.Checkpoint.save ckpts ~epoch:0 mem;
  (* The initial checkpoint happens before the simulation starts. *)
  mincr m_ckpts;
  record ~at:0. ~tid:0 (Obs.Event.Checkpoint_forked { epoch = 0 });
  let states : (int, gstate) Hashtbl.t = Hashtbl.create 4 in
  let gen = ref 0 in
  let st = ref (fresh_gstate ~id:0 ~workers) in
  Hashtbl.replace states 0 !st;
  let checker_q =
    Sim.Channel.create ~produce_cost:machine.Sim.Machine.queue_produce
      ~consume_cost:machine.Sim.Machine.queue_consume ()
  in
  let max_epoch = ref 0 in
  let redo_from = ref 0 and redo_to = ref 0 and resume_from = ref 0 in
  let requests_total = ref 0 in
  let comparisons = ref 0 in
  let misspecs = ref 0 in
  let tasks_total = ref 0 in
  let injected = ref false in

  let env_of_epoch e =
    let t = e / ninners in
    (inners.(e mod ninners), Ir.Env.with_outer env t)
  in
  (* SPECCROSS only instruments accesses that may alias across invocations:
     anything touching an array some inner-loop body writes. *)
  let hot_arrays =
    List.concat_map
      (fun (st_ : Ir.Stmt.t) ->
        List.map (fun (a : Ir.Access.t) -> a.Ir.Access.base) st_.Ir.Stmt.writes)
      (Ir.Program.body_stmts p)
    |> List.sort_uniq String.compare
  in
  let hot arr = List.mem arr hot_arrays in
  (* Epochs containing irreversible (side-effecting) statements execute
     non-speculatively: all workers synchronize, one executes, and a fresh
     checkpoint follows so recovery never replays them (§4.2.2). *)
  let irreversible =
    Array.map
      (fun (il : Ir.Program.inner) ->
        List.exists
          (fun (st_ : Ir.Stmt.t) -> st_.Ir.Stmt.side_effect)
          (il.Ir.Program.pre @ il.Ir.Program.body))
      inners
  in
  (* Global task index of each epoch's first task; trip counts only read
     input data the region never writes. *)
  let epoch_base = Array.make (nepochs + 1) 0 in
  for e = 0 to nepochs - 1 do
    let il, env_t = env_of_epoch e in
    epoch_base.(e + 1) <- epoch_base.(e) + il.Ir.Program.trip env_t
  done;

  (* Within-epoch DOMORE completion cells, keyed by generation:epoch; shared
     between the workers that execute the epoch. *)
  let domore_cells : (string, Sim.Mono_cell.t array) Hashtbl.t = Hashtbl.create 64 in
  (* ---------- checker thread ---------- *)
  let do_abort (s : gstate) =
    if not !(s.abort) then begin
      s.abort := true;
      incr misspecs;
      Array.iter (fun c -> Sim.Mono_cell.raise_to c wake) s.progress;
      Array.iter (fun c -> Sim.Mono_cell.raise_to c wake) s.tpos;
      Sim.Mono_cell.raise_to s.processed wake;
      Sim.Mono_cell.raise_to s.ckpt_done wake;
      Sim.Mono_cell.raise_to s.io_done wake;
      (* Release workers blocked on within-epoch DOMORE conditions: whatever
         they then compute is discarded when the checkpoint is restored. *)
      Hashtbl.iter
        (fun _ cells -> Array.iter (fun c -> Sim.Mono_cell.raise_to c wake) cells)
        domore_cells
    end
  in
  let checker () =
    let cur = ref 0 in
    let finished = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      match Sim.Channel.consume checker_q with
      | Reset g ->
          cur := g;
          finished := 0
      | Finish g ->
          if g = !cur then begin
            incr finished;
            if !finished = workers then continue_ := false
          end
      | Request r when r.gen <> !cur -> ()
      | Request r -> (
          let s = Hashtbl.find states r.gen in
          if not !(s.abort) then begin
            (* Defer until every other worker's signatures for epochs below
               [r.epoch] are complete (it reached that epoch boundary). *)
            for w' = 0 to workers - 1 do
              if w' <> r.worker then
                Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checker s.progress.(w') r.epoch
            done
          end;
          if r.gen <> !gen || !(s.abort) then ()
          else begin
            let conflict = ref r.force in
            let win = ref 0 in
            for w' = 0 to workers - 1 do
              if w' <> r.worker then begin
                let e0, t0 = r.started.(w') in
                let upto = if cfg.tm_style then r.epoch + 1 else r.epoch in
                let window =
                  Rt.Siglog.between siglog ~worker:w' ~from_epoch:e0 ~from_task:t0
                    ~upto_epoch:upto
                in
                win := !win + List.length window;
                if window <> [] then
                  Sim.Proc.advance ~label:"check" Sim.Category.Checker
                    (machine.Sim.Machine.check_per_sig
                    *. float_of_int (List.length window));
                comparisons := !comparisons + List.length window;
                List.iter
                  (fun (we, wt, sg') ->
                    (* Same-epoch pairs are provably independent: TM-style
                       checking pays for them but cannot flag them. *)
                    if we < r.epoch && Rt.Signature.intersects r.sg sg' then begin
                      if Sys.getenv_opt "XINV_DEBUG" <> None then
                        Format.eprintf
                          "[speccross] conflict: w%d e%d t%d (%a) vs w%d e%d t%d (%a)@."
                          r.worker r.epoch r.task Rt.Signature.pp r.sg w' we wt
                          Rt.Signature.pp sg';
                      conflict := true
                    end)
                  window
              end
            done;
            mincr m_checks;
            record ~at:(Sim.Proc.now ()) ~tid:workers
              (Obs.Event.Signature_checked
                 { worker = r.worker; epoch = r.epoch; window = !win;
                   conflict = !conflict });
            if !conflict then begin
              if not !(s.abort) then begin
                mincr m_misspecs;
                record ~at:(Sim.Proc.now ()) ~tid:workers
                  (Obs.Event.Misspeculated { epoch = r.epoch; worker = r.worker })
              end;
              do_abort s
            end
            else Sim.Mono_cell.raise_to s.processed (Sim.Mono_cell.get s.processed + 1)
          end)
    done
  in

  (* ---------- per-epoch execution ---------- *)
  let wf = Sim.Machine.work_factor machine ~threads:(workers + 1) in
  let exec_pre w env_t (il : Ir.Program.inner) =
    List.iter
      (fun (s : Ir.Stmt.t) ->
        let cat = if w = 0 then Sim.Category.Sequential else Sim.Category.Redundant in
        Sim.Proc.advance ~label:s.Ir.Stmt.name cat (wf *. s.Ir.Stmt.cost env_t);
        s.Ir.Stmt.exec env_t)
      il.Ir.Program.pre
  in
  let plain_body env_j (il : Ir.Program.inner) =
    List.iter
      (fun (s : Ir.Stmt.t) ->
        Sim.Proc.work ~label:s.Ir.Stmt.name (wf *. s.Ir.Stmt.cost env_j);
        s.Ir.Stmt.exec env_j)
      il.Ir.Program.body
  in
  (* Speculative-range throttle (dissertation 4.2.1): before advancing to
     global task position [g], wait until no thread trails by more than the
     profiled minimum dependence distance. *)
  let throttle (s : gstate) ~w g =
    (* Publish first (a blocked thread still tells the others where it is),
       then wait for every trailing thread to come within range. *)
    Sim.Mono_cell.raise_to s.tpos.(w) g;
    let floor_ = g - cfg.spec_distance + 1 in
    if floor_ > 0 then begin
      let t0 = Sim.Proc.now () in
      for w' = 0 to workers - 1 do
        if w' <> w then
          Sim.Mono_cell.wait_ge ~cat:Sim.Category.Barrier_wait s.tpos.(w') floor_
      done;
      let dur = Sim.Proc.now () -. t0 in
      if dur > 0. then
        record ~at:(Sim.Proc.now ()) ~tid:w
          (Obs.Event.Worker_stalled { cause = Obs.Event.Barrier; dur })
    end
  in
  (* Speculative bracket around one task. *)
  let run_task (s : gstate) ~w ~epoch ~task ~addrs body =
    if cfg.non_spec_barriers then body ()
    else begin
      s.positions.(w) <- (epoch, task);
      Sim.Proc.advance ~label:"enter_task" Sim.Category.Runtime
        machine.Sim.Machine.task_enter;
      let started = Array.copy s.positions in
      Sim.Proc.advance ~label:"spec_access" Sim.Category.Runtime
        (machine.Sim.Machine.sig_per_access *. float_of_int (List.length addrs));
      body ();
      let sg = Rt.Signature.create cfg.sig_kind in
      Rt.Signature.add_list sg addrs;
      Sim.Proc.advance ~label:"exit_task" Sim.Category.Runtime
        machine.Sim.Machine.task_exit;
      Rt.Siglog.store siglog ~worker:w ~epoch ~task sg;
      let force =
        (not !injected)
        && match cfg.inject_misspec with
           | Some (e, iw) when e = epoch && iw = w ->
               injected := true;
               true
           | _ -> false
      in
      incr s.submitted;
      incr requests_total;
      Sim.Channel.produce checker_q
        (Request { gen = s.g_id; worker = w; epoch; task; sg; started; force });
      (* Everything strictly below (epoch, task+1) is now complete, so later
         tasks' comparison windows exclude this one once it is finished. *)
      s.positions.(w) <- (epoch, task + 1)
    end
  in
  let exec_epoch_spec (s : gstate) w e =
    let il, env_t = env_of_epoch e in
    exec_pre w env_t il;
    let trip = il.Ir.Program.trip env_t in
    if w = 0 then tasks_total := !tasks_total + trip;
    let task = ref 0 in
    match cfg.mode_of il.Ir.Program.ilabel with
    | M_doall ->
        let j = ref w in
        while !j < trip do
          let env_j = Ir.Env.with_inner env_t !j in
          let addrs = Ir.Footprint.body_filtered ~hot env_j il in
          throttle s ~w (epoch_base.(e) + !j);
          run_task s ~w ~epoch:e ~task:!task ~addrs (fun () -> plain_body env_j il);
          incr task;
          j := !j + workers
        done
    | M_localwrite ->
        for j = 0 to trip - 1 do
          let env_j = Ir.Env.with_inner env_t j in
          throttle s ~w (epoch_base.(e) + j);
          let owned (st_ : Ir.Stmt.t) =
            List.exists
              (fun (a : Ir.Access.t) ->
                let idx = Ir.Expr.eval env_j a.Ir.Access.index in
                let size = Ir.Memory.size mem a.Ir.Access.base in
                idx * workers / size = w)
              st_.Ir.Stmt.writes
          in
          let mine = List.exists owned il.Ir.Program.body in
          if mine then begin
            let addrs = Ir.Footprint.body_filtered ~hot env_j il in
            run_task s ~w ~epoch:e ~task:!task ~addrs (fun () ->
                List.iter
                  (fun (stm : Ir.Stmt.t) ->
                    if stm.Ir.Stmt.writes = [] then begin
                      Sim.Proc.work ~label:stm.Ir.Stmt.name (wf *. stm.Ir.Stmt.cost env_j);
                      stm.Ir.Stmt.exec env_j
                    end
                    else if owned stm then begin
                      Sim.Proc.work ~label:stm.Ir.Stmt.name (wf *. stm.Ir.Stmt.cost env_j);
                      stm.Ir.Stmt.exec env_j
                    end
                    else
                      Sim.Proc.advance ~label:"own?" Sim.Category.Redundant 4.)
                  il.Ir.Program.body);
            incr task
          end
          else begin
            (* Redundant visit: the non-writing traversal plus the ownership
               check; publish progress so checker windows stay tight. *)
            s.positions.(w) <- (e, !task);
            let traversal =
              List.fold_left
                (fun acc (stm : Ir.Stmt.t) ->
                  if stm.Ir.Stmt.writes = [] then acc +. stm.Ir.Stmt.cost env_j else acc)
                0. il.Ir.Program.body
            in
            Sim.Proc.advance ~label:"visit" Sim.Category.Redundant
              ((wf *. traversal) +. 4.
              +. (2. *. float_of_int (List.length il.Ir.Program.body)))
          end
        done
    | M_domore policy ->
        (* §3.4 duplicated scheduler, scoped to this epoch: private shadow,
           shared completion cells created by the first worker to arrive. *)
        let cells =
          let key = Printf.sprintf "%d:%d" s.g_id e in
          let tbl = domore_cells in
          match Hashtbl.find_opt tbl key with
          | Some c -> c
          | None ->
              let c = Array.init workers (fun _ -> Sim.Mono_cell.create ~init:(-1) ()) in
              Hashtbl.replace tbl key c;
              c
        in
        let shadow = Rt.Shadow.create () in
        let deps = Rt.Shadow.Deps.create () in
        for j = 0 to trip - 1 do
          let env_j = Ir.Env.with_inner env_t j in
          throttle s ~w (epoch_base.(e) + j);
          let addrs = Ir.Footprint.body_filtered ~hot env_j il in
          let waddrs =
            List.concat_map (fun stm -> Ir.Footprint.writes env_j stm) il.Ir.Program.body
          in
          Sim.Proc.advance ~label:"sched" Sim.Category.Redundant
            (machine.Sim.Machine.sched_per_iter
            +. (machine.Sim.Machine.shadow_per_addr *. float_of_int (List.length addrs)));
          let owner =
            Xinv_domore.Policy.pick policy ~loads:None ~mem ~threads:workers ~iter:j
              ~write_addrs:waddrs
          in
          Rt.Shadow.Deps.clear deps;
          List.iter
            (fun (stm : Ir.Stmt.t) ->
              List.iter
                (fun (a : Ir.Access.t) ->
                  if hot a.Ir.Access.base then
                    Rt.Shadow.note_read_deps shadow
                      (Ir.Access.addr env_j mem a)
                      ~tid:owner ~iter:j deps)
                stm.Ir.Stmt.reads)
            il.Ir.Program.body;
          List.iter
            (fun addr -> Rt.Shadow.note_write_deps shadow addr ~tid:owner ~iter:j deps)
            waddrs;
          if owner <> w then s.positions.(w) <- (e, !task);
          if owner = w then begin
            run_task s ~w ~epoch:e ~task:!task ~addrs (fun () ->
                Rt.Shadow.Deps.iter
                  (fun ~tid:dt ~iter:di ->
                    Sim.Mono_cell.wait_ge ~cat:Sim.Category.Sync_wait cells.(dt) di)
                  deps;
                plain_body env_j il;
                Sim.Mono_cell.raise_to cells.(w) j);
            incr task
          end
        done
  in
  (* Non-speculative re-execution of one epoch (technique preserved, barriers
     added by the caller). *)
  let exec_epoch_nonspec w e =
    let il, env_t = env_of_epoch e in
    exec_pre w env_t il;
    let trip = il.Ir.Program.trip env_t in
    match cfg.mode_of il.Ir.Program.ilabel with
    | M_doall ->
        let j = ref w in
        while !j < trip do
          plain_body (Ir.Env.with_inner env_t !j) il;
          j := !j + workers
        done
    | M_localwrite | M_domore _ ->
        (* Owner-compute, no speculation bookkeeping. *)
        for j = 0 to trip - 1 do
          let env_j = Ir.Env.with_inner env_t j in
          List.iter
            (fun (stm : Ir.Stmt.t) ->
              let owned =
                stm.Ir.Stmt.writes = []
                || List.exists
                     (fun (a : Ir.Access.t) ->
                       let idx = Ir.Expr.eval env_j a.Ir.Access.index in
                       let size = Ir.Memory.size mem a.Ir.Access.base in
                       idx * workers / size = w)
                     stm.Ir.Stmt.writes
              in
              if owned then begin
                let cat =
                  if stm.Ir.Stmt.writes = [] && w <> 0 then Sim.Category.Redundant
                  else Sim.Category.Work
                in
                Sim.Proc.advance ~label:stm.Ir.Stmt.name cat (wf *. stm.Ir.Stmt.cost env_j);
                if stm.Ir.Stmt.writes <> [] || w = 0 then stm.Ir.Stmt.exec env_j
              end)
            il.Ir.Program.body
        done
  in

  (* ---------- recovery ---------- *)
  let recover w (s : gstate) =
    let t_rec = Sim.Proc.now () in
    s.arrived_n := !(s.arrived_n) + 1;
    Sim.Mono_cell.raise_to s.arrived !(s.arrived_n);
    if w = 0 then begin
      Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checkpoint s.arrived workers;
      Sim.Proc.advance ~label:"recover" Sim.Category.Checkpoint
        machine.Sim.Machine.recovery_cost;
      let ck = Rt.Checkpoint.restore ckpts ~into:mem in
      redo_from := ck;
      redo_to := Stdlib.min !max_epoch (nepochs - 1);
      resume_from := !redo_to + 1;
      Rt.Siglog.clear_before siglog ~epoch:max_int;
      let g' = s.g_id + 1 in
      let s' = fresh_gstate ~id:g' ~workers in
      Hashtbl.replace states g' s';
      gen := g';
      st := s';
      Sim.Channel.produce checker_q (Reset g');
      Sim.Mono_cell.raise_to s.recovery_done 1
    end
    else Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checkpoint s.recovery_done 1;
    (* Re-execute the misspeculated epochs with non-speculative barriers. *)
    let bar = (!st).redo_barrier in
    let barrier_cost =
      machine.Sim.Machine.barrier_base
      +. (machine.Sim.Machine.barrier_per_thread *. float_of_int workers)
    in
    for e' = !redo_from to !redo_to do
      exec_epoch_nonspec w e';
      Sim.Barrier.wait ~cost:barrier_cost bar;
      if w = 0 then begin
        mincr m_epochs;
        record ~at:(Sim.Proc.now ()) ~tid:w (Obs.Event.Epoch_committed { epoch = e' })
      end
    done;
    (* Fresh checkpoint at the resume point. *)
    if w = 0 then begin
      Sim.Proc.advance ~label:"checkpoint" Sim.Category.Checkpoint
        machine.Sim.Machine.checkpoint_cost;
      Rt.Checkpoint.save ckpts ~epoch:!resume_from mem;
      mincr m_ckpts;
      record ~at:(Sim.Proc.now ()) ~tid:w
        (Obs.Event.Checkpoint_forked { epoch = !resume_from })
    end;
    Sim.Barrier.wait ~cost:0. bar;
    if w = 0 then
      record ~at:(Sim.Proc.now ()) ~tid:w
        (Obs.Event.Recovery_finished
           { dur = Sim.Proc.now () -. t_rec;
             epochs_redone = !redo_to - !redo_from + 1 });
    !resume_from
  in

  (* ---------- worker ---------- *)
  let worker w () =
    let e = ref 0 in
    let running = ref true in
    while !running do
      let s = !st in
      if !(s.abort) then e := recover w s
      else if !e >= nepochs then begin
        (* Region end: wait for everyone, then for the checker to drain. *)
        Sim.Mono_cell.raise_to s.progress.(w) nepochs;
        Sim.Mono_cell.raise_to s.tpos.(w) epoch_base.(nepochs);
        for w' = 0 to workers - 1 do
          if w' <> w then
            Sim.Mono_cell.wait_ge ~cat:Sim.Category.Barrier_wait s.progress.(w') nepochs
        done;
        let t0 = Sim.Proc.now () in
        Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checker s.processed !(s.submitted);
        let drain = Sim.Proc.now () -. t0 in
        if drain > 0. then
          record ~at:(Sim.Proc.now ()) ~tid:w
            (Obs.Event.Worker_stalled { cause = Obs.Event.Checker_lag; dur = drain });
        if !(s.abort) then e := recover w s
        else begin
          Sim.Channel.produce checker_q (Finish s.g_id);
          running := false
        end
      end
      else begin
        (* Epoch boundary. *)
        s.positions.(w) <- (!e, 0);
        Sim.Mono_cell.raise_to s.progress.(w) !e;
        if cfg.non_spec_barriers && !e > 0 then begin
          Sim.Proc.advance ~label:"barrier" Sim.Category.Barrier_wait
            (machine.Sim.Machine.barrier_base
            +. (machine.Sim.Machine.barrier_per_thread *. float_of_int workers));
          for w' = 0 to workers - 1 do
            if w' <> w then
              Sim.Mono_cell.wait_ge ~cat:Sim.Category.Barrier_wait s.progress.(w') !e
          done
        end;
        if !max_epoch < !e then max_epoch := !e;
        if
          cfg.checkpoint_every > 0
          && !e > 0
          && !e mod cfg.checkpoint_every = 0
          && Sim.Mono_cell.get s.ckpt_done < !e
        then begin
          if w = 0 then begin
            for w' = 0 to workers - 1 do
              if w' <> w then
                Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checkpoint s.progress.(w') !e
            done;
            Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checkpoint s.processed !(s.submitted);
            if not !(s.abort) then begin
              Sim.Proc.advance ~label:"checkpoint" Sim.Category.Checkpoint
                machine.Sim.Machine.checkpoint_cost;
              Rt.Checkpoint.save ckpts ~epoch:!e mem;
              mincr m_ckpts;
              record ~at:(Sim.Proc.now ()) ~tid:w
                (Obs.Event.Checkpoint_forked { epoch = !e });
              Rt.Siglog.clear_before siglog ~epoch:!e;
              Sim.Mono_cell.raise_to s.ckpt_done !e
            end
          end
          else begin
            let t0 = Sim.Proc.now () in
            Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checkpoint s.ckpt_done !e;
            let dur = Sim.Proc.now () -. t0 in
            if dur > 0. then
              record ~at:(Sim.Proc.now ()) ~tid:w
                (Obs.Event.Worker_stalled { cause = Obs.Event.Checkpoint_wait; dur })
          end
        end;
        if !(s.abort) then e := recover w s
        else if irreversible.(!e mod ninners) && not cfg.non_spec_barriers then begin
          (* Irreversible epoch: rally everyone, drain the checker, let one
             worker execute the epoch exactly once, checkpoint, resume. *)
          if w = 0 then begin
            for w' = 0 to workers - 1 do
              if w' <> w then
                Sim.Mono_cell.wait_ge ~cat:Sim.Category.Barrier_wait s.progress.(w') !e
            done;
            let t0 = Sim.Proc.now () in
            Sim.Mono_cell.wait_ge ~cat:Sim.Category.Checker s.processed !(s.submitted);
            let drain = Sim.Proc.now () -. t0 in
            if drain > 0. then
              record ~at:(Sim.Proc.now ()) ~tid:w
                (Obs.Event.Worker_stalled { cause = Obs.Event.Checker_lag; dur = drain });
            if not !(s.abort) then begin
              let il, env_t = env_of_epoch !e in
              List.iter
                (fun (st_ : Ir.Stmt.t) ->
                  Sim.Proc.advance ~label:st_.Ir.Stmt.name Sim.Category.Sequential
                    (wf *. st_.Ir.Stmt.cost env_t);
                  st_.Ir.Stmt.exec env_t)
                il.Ir.Program.pre;
              let trip = il.Ir.Program.trip env_t in
              tasks_total := !tasks_total + trip;
              for j = 0 to trip - 1 do
                let env_j = Ir.Env.with_inner env_t j in
                List.iter
                  (fun (st_ : Ir.Stmt.t) ->
                    Sim.Proc.advance ~label:st_.Ir.Stmt.name Sim.Category.Sequential
                      (wf *. st_.Ir.Stmt.cost env_j);
                    st_.Ir.Stmt.exec env_j)
                  il.Ir.Program.body
              done;
              Sim.Proc.advance ~label:"checkpoint" Sim.Category.Checkpoint
                machine.Sim.Machine.checkpoint_cost;
              Rt.Checkpoint.save ckpts ~epoch:(!e + 1) mem;
              mincr m_ckpts;
              record ~at:(Sim.Proc.now ()) ~tid:w
                (Obs.Event.Checkpoint_forked { epoch = !e + 1 });
              Rt.Siglog.clear_before siglog ~epoch:(!e + 1);
              Sim.Mono_cell.raise_to s.io_done !e
            end
          end
          else Sim.Mono_cell.wait_ge ~cat:Sim.Category.Barrier_wait s.io_done !e;
          if !(s.abort) then e := recover w s
          else begin
            Sim.Mono_cell.raise_to s.tpos.(w) (epoch_base.(!e + 1) - 1);
            if w = 0 then begin
              mincr m_epochs;
              record ~at:(Sim.Proc.now ()) ~tid:w
                (Obs.Event.Epoch_committed { epoch = !e })
            end;
            incr e
          end
        end
        else begin
          (* Everything of mine below this epoch is complete. *)
          Sim.Mono_cell.raise_to s.tpos.(w) (epoch_base.(!e) - 1);
          exec_epoch_spec s w !e;
          if w = 0 && not !(s.abort) then begin
            mincr m_epochs;
            record ~at:(Sim.Proc.now ()) ~tid:w
              (Obs.Event.Epoch_committed { epoch = !e })
          end;
          incr e
        end
      end
    done
  in
  for w = 0 to workers - 1 do
    ignore (Sim.Engine.spawn eng ~name:(Printf.sprintf "spec%d" w) (worker w))
  done;
  ignore (Sim.Engine.spawn eng ~name:"checker" checker);
  Sim.Engine.run eng;
  if Sys.getenv_opt "XINV_DEBUG" <> None then
    Format.eprintf
      "[speccross] makespan %.0f requests %d comparisons %d misspecs %d@\n\
      \  work %.0f runtime %.0f checker %.0f barrier %.0f queue %.0f ckpt %.0f@."
      (Sim.Engine.now eng) !requests_total !comparisons !misspecs
      (Sim.Engine.total eng Sim.Category.Work)
      (Sim.Engine.total eng Sim.Category.Runtime)
      (Sim.Engine.total eng Sim.Category.Checker)
      (Sim.Engine.total eng Sim.Category.Barrier_wait)
      (Sim.Engine.total eng Sim.Category.Queue)
      (Sim.Engine.total eng Sim.Category.Checkpoint);
  Xinv_parallel.Run.make ~technique:"SPECCROSS" ~threads:(workers + 1)
    ~makespan:(Sim.Engine.now eng) ~engine:eng ~tasks:!tasks_total
    ~invocations:(Ir.Program.invocations p) ~checks:!requests_total
    ~misspecs:!misspecs ?recorder:obs ()
