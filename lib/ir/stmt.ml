type t = {
  sid : int;
  name : string;
  reads : Access.t list;
  writes : Access.t list;
  commutes : bool;
  side_effect : bool;
  cost : Env.t -> float;
  exec : Env.t -> unit;
}

let counter = ref 0

let fixed_cost c _ = c

let make ?(reads = []) ?(writes = []) ?(commutes = false) ?(side_effect = false)
    ?(cost = fixed_cost 0.) ?(exec = fun _ -> ()) name =
  incr counter;
  { sid = !counter; name; reads; writes; commutes; side_effect; cost; exec }

let accesses s = s.reads @ s.writes

let index_arrays s =
  accesses s
  |> List.concat_map (fun (a : Access.t) -> Expr.loads a.Access.index)
  |> List.map fst
  |> List.sort_uniq String.compare

let touched_arrays s =
  let direct = List.map (fun (a : Access.t) -> a.Access.base) (accesses s) in
  List.sort_uniq String.compare (direct @ index_arrays s)

let feed_structure fi fs s =
  fi 8;
  fi (if s.commutes then 1 else 0);
  fi (if s.side_effect then 1 else 0);
  fi (List.length s.reads);
  List.iter (Access.feed fi fs) s.reads;
  fi (List.length s.writes);
  List.iter (Access.feed fi fs) s.writes

let pp ppf s =
  let pp_list ppf l =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      Access.pp ppf l
  in
  Format.fprintf ppf "@[<h>%s#%d: reads {%a} writes {%a}%s%s@]" s.name s.sid pp_list
    s.reads pp_list s.writes
    (if s.commutes then " [commutes]" else "")
    (if s.side_effect then " [side-effect]" else "")
