type binop = Add | Sub | Mul | Div | Mod | Min | Max

type t =
  | Const of int
  | Ivar
  | Ovar
  | Param of string
  | Load of string * t
  | Bin of binop * t * t

let apply op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then invalid_arg "Expr.eval: division by zero" else a / b
  | Mod -> if b = 0 then invalid_arg "Expr.eval: modulo by zero" else a mod b
  | Min -> Stdlib.min a b
  | Max -> Stdlib.max a b

let rec eval env = function
  | Const k -> k
  | Ivar -> env.Env.j_inner
  | Ovar -> env.Env.t_outer
  | Param p -> Env.param env p
  | Load (a, ix) -> Memory.get_int env.Env.mem a (eval env ix)
  | Bin (op, x, y) -> apply op (eval env x) (eval env y)

let op_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Min -> "min"
  | Max -> "max"

let rec pp ppf = function
  | Const k -> Format.fprintf ppf "%d" k
  | Ivar -> Format.fprintf ppf "j"
  | Ovar -> Format.fprintf ppf "t"
  | Param p -> Format.fprintf ppf "%s" p
  | Load (a, ix) -> Format.fprintf ppf "%s[%a]" a pp ix
  | Bin ((Min | Max) as op, x, y) ->
      Format.fprintf ppf "%s(%a, %a)" (op_str op) pp x pp y
  | Bin (op, x, y) -> Format.fprintf ppf "(%a %s %a)" pp x (op_str op) pp y

let to_string e = Format.asprintf "%a" pp e

let rec loads = function
  | Const _ | Ivar | Ovar | Param _ -> []
  | Load (a, ix) -> (a, ix) :: loads ix
  | Bin (_, x, y) -> loads x @ loads y

let rec uses_ivar = function
  | Ivar -> true
  | Const _ | Ovar | Param _ -> false
  | Load (_, ix) -> uses_ivar ix
  | Bin (_, x, y) -> uses_ivar x || uses_ivar y

let rec uses_ovar = function
  | Ovar -> true
  | Const _ | Ivar | Param _ -> false
  | Load (_, ix) -> uses_ovar ix
  | Bin (_, x, y) -> uses_ovar x || uses_ovar y

let is_loop_invariant e = not (uses_ivar e)

let ( + ) a b = Bin (Add, a, b)

let ( - ) a b = Bin (Sub, a, b)

let ( * ) a b = Bin (Mul, a, b)

let ( mod ) a b = Bin (Mod, a, b)

let i = Ivar

let o = Ovar

let c k = Const k

let ld a ix = Load (a, ix)

let op_tag = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Mod -> 4
  | Min -> 5
  | Max -> 6

let rec feed fi fs = function
  | Const k ->
      fi 1;
      fi k
  | Ivar -> fi 2
  | Ovar -> fi 3
  | Param p ->
      fi 4;
      fs p
  | Load (a, ix) ->
      fi 5;
      fs a;
      feed fi fs ix
  | Bin (op, x, y) ->
      fi 6;
      fi (op_tag op);
      feed fi fs x;
      feed fi fs y

let rec size = function
  | Const _ | Ivar | Ovar | Param _ -> 1
  | Load (_, ix) -> Stdlib.( + ) 1 (size ix)
  | Bin (_, x, y) -> Stdlib.( + ) 1 (Stdlib.( + ) (size x) (size y))
