type t = {
  accesses : Access.t list;
  reads : Access.t list;
  writes : Access.t list;
  index_arrays : string list;
  node_count : int;
}

type verdict = Sliceable of t | Inapplicable of string

let compute_addr (p : Program.t) (part : Partition.t) (pdg : Pdg.t) =
  let worker = Partition.worker_stmts part pdg in
  if worker = [] then Inapplicable "no worker statements (region is sequential)"
  else if List.exists (fun s -> s.Stmt.side_effect) worker then
    Inapplicable "worker statement has side effects"
  else begin
    let accesses = List.concat_map Stmt.accesses worker in
    let writes = List.concat_map (fun (s : Stmt.t) -> s.Stmt.writes) worker in
    let reads = List.concat_map (fun (s : Stmt.t) -> s.Stmt.reads) worker in
    let index_arrays =
      List.concat_map Stmt.index_arrays worker |> List.sort_uniq String.compare
    in
    let written_by_workers =
      List.concat_map
        (fun s -> List.map (fun (a : Access.t) -> a.Access.base) s.Stmt.writes)
        worker
      |> List.sort_uniq String.compare
    in
    let tainted =
      List.filter (fun a -> List.mem a written_by_workers) index_arrays
    in
    ignore p;
    if tainted <> [] then
      Inapplicable
        (Printf.sprintf "address computation reads arrays updated by workers: %s"
           (String.concat ", " tainted))
    else
      let node_count =
        List.fold_left
          (fun acc (a : Access.t) -> acc + Expr.size a.Access.index)
          0 accesses
      in
      Sliceable { accesses; reads; writes; index_arrays; node_count }
  end

let of_stmts stmts =
  let accesses = List.concat_map Stmt.accesses stmts in
  let reads = List.concat_map (fun (s : Stmt.t) -> s.Stmt.reads) stmts in
  let writes = List.concat_map (fun (s : Stmt.t) -> s.Stmt.writes) stmts in
  let index_arrays =
    List.concat_map Stmt.index_arrays stmts |> List.sort_uniq String.compare
  in
  let node_count =
    List.fold_left
      (fun acc (a : Access.t) -> acc + Expr.size a.Access.index)
      0 accesses
  in
  { accesses; reads; writes; index_arrays; node_count }

let cost_per_iter s =
  (2.0 *. float_of_int (List.length s.accesses))
  +. (1.5 *. float_of_int s.node_count)

let guard_ratio s (p : Program.t) env =
  let samples = ref [] in
  let t_max = Stdlib.min 2 (p.Program.outer_trip - 1) in
  for t = 0 to t_max do
    let env_t = Env.with_outer env t in
    List.iter
      (fun (il : Program.inner) ->
        let trip = il.Program.trip env_t in
        for j = 0 to Stdlib.min 7 (trip - 1) do
          let env_j = Env.with_inner env_t j in
          samples := Program.iteration_cost p il env_j :: !samples
        done)
      p.Program.inners
  done;
  let avg = Xinv_util.Stats.mean !samples in
  if avg <= 0. then infinity else cost_per_iter s /. avg

let addresses s env =
  List.map (fun a -> Access.addr env env.Env.mem a) s.accesses

let write_addresses s env =
  List.map (fun a -> Access.addr env env.Env.mem a) s.writes

let read_addresses s env =
  List.map (fun a -> Access.addr env env.Env.mem a) s.reads

let iter_addresses s env f =
  List.iter (fun a -> f (Access.addr env env.Env.mem a)) s.accesses

let iter_write_addresses s env f =
  List.iter (fun a -> f (Access.addr env env.Env.mem a)) s.writes

let iter_read_addresses s env f =
  List.iter (fun a -> f (Access.addr env env.Env.mem a)) s.reads
