(** Program dependence graph over the statements of a loop-nest region.

    Edges are classified the way Chapter 3 of the dissertation uses them:
    intra-iteration, cross-iteration (carried by the inner loop),
    cross-invocation (between invocations, carried by the outer loop), and
    scheduler-to-worker flow.  Classification is static and conservative:
    irregular (non-affine) accesses conflict unless proven otherwise. *)

type kind =
  | Intra  (** same inner iteration *)
  | Cross_iter  (** carried by the inner loop within one invocation *)
  | Cross_invoc  (** between different invocations (or sequential code) *)
  | Flow  (** sequential (pre) statement feeding an inner-loop body *)

type edge = {
  src : int;  (** source statement id *)
  dst : int;
  kind : kind;
  carried_outer : bool;  (** manifests on a later outer iteration (backedge) *)
}

type loc = { inner_idx : int; in_body : bool; ord : int }

type t = {
  stmts : (Stmt.t * loc) list;  (** program order *)
  edges : edge list;
}

val build : Program.t -> t

val stmt_table : Program.t -> (Stmt.t * loc) list
(** The statement/location listing {!build} starts from, in the canonical
    program order (per inner loop: pre, then body).  A statement's index in
    this list is its {e canonical position} — the process-independent
    identifier cached analysis artifacts use in place of the process-local
    [sid]. *)

val conflict : Stmt.t -> Stmt.t -> bool
(** May one statement's writes overlap the other's accesses (including
    index-array reads)?  Symmetric in neither argument: tests writes of the
    first against all accesses of the second. *)

val stmt_of : t -> int -> Stmt.t

val loc_of : t -> int -> loc

val edges_between : t -> int -> int -> edge list

val cross_iter_pairs : t -> (int * int) list
(** Statement-id pairs connected by a [Cross_iter] edge. *)

val has_cross_iter : t -> inner_idx:int -> bool
(** Any cross-iteration edge among the body statements of one inner loop —
    the static DOALL-blocking test. *)

val pp : Format.formatter -> t -> unit

val to_graph : t -> Scc.graph * int array
(** Dense graph over statement indices plus the [index -> sid] mapping. *)
