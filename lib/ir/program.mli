(** Loop-nest programs: an outer loop of consecutive inner-loop invocations.

    This is the program shape both DOMORE and SPECCROSS target (Figures 1.3,
    3.1, 4.2 of the dissertation): an outer loop that executes a sequence of
    parallelizable inner loops, with sequential code in between, repeated
    [outer_trip] times.  One execution of one inner loop is an
    {e invocation}; one inner-loop index value is an {e iteration}. *)

type inner = {
  ilabel : string;
  trip : Env.t -> int;  (** iteration count; may depend on the outer index and memory *)
  pre : Stmt.t list;  (** sequential statements executed before each invocation *)
  body : Stmt.t list;  (** statements of one inner-loop iteration *)
}

type t = {
  pname : string;
  outer_trip : int;
  inners : inner list;
}

val make : name:string -> outer_trip:int -> inner list -> t

val inner : ?pre:Stmt.t list -> label:string -> trip:(Env.t -> int) -> Stmt.t list -> inner

val const_trip : int -> Env.t -> int

val all_stmts : t -> Stmt.t list
(** Every statement of the region, in program order. *)

val body_stmts : t -> Stmt.t list

val pre_stmts : t -> Stmt.t list

val find_inner : t -> string -> inner

val iteration_cost : t -> inner -> Env.t -> float
(** Total cost of one inner iteration in context [env]. *)

val invocations : t -> int
(** [outer_trip * #inners]: number of inner-loop invocations executed. *)

val total_iterations : t -> Env.t -> int
(** Dynamic count of inner iterations over the whole region; evaluates trip
    counts against the (unmodified) environment for each outer index. *)

val feed_structure : (int -> unit) -> (string -> unit) -> t -> unit
(** Canonical token stream of the whole region's static structure: outer
    trip count, per-inner pre/body statement structures in program order
    (see {!Stmt.feed_structure}).  Excludes [pname] and inner labels —
    fingerprints are insensitive to name choices.  Trip-count and cost
    closures are excluded here and covered by probe evaluation in
    {!Xinv_cache.Fingerprint}. *)

val pp : Format.formatter -> t -> unit
