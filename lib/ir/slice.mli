(** [computeAddr] generation by program slicing (dissertation Algorithm 3).

    From the worker statements' access expressions, extract the instructions
    the scheduler must duplicate to predict every address an iteration will
    touch.  The transformation aborts when the slice would read state the
    workers themselves update (the Figure 4.1 limitation), or would have side
    effects; a separate performance guard compares slice cost against worker
    cost (the scheduler/worker ratio of Table 5.2). *)

type t = {
  accesses : Access.t list;  (** per-iteration addresses to precompute *)
  reads : Access.t list;  (** the subset that are read *)
  writes : Access.t list;  (** the subset that are written *)
  index_arrays : string list;  (** arrays loaded by the slice *)
  node_count : int;  (** expression nodes duplicated into the scheduler *)
}

type verdict = Sliceable of t | Inapplicable of string

val compute_addr : Program.t -> Partition.t -> Pdg.t -> verdict
(** Region-wide slice: used for the taint check, the performance guard and
    reporting.  Executors should predict a single iteration's addresses with
    the per-inner slice from {!of_stmts}. *)

val of_stmts : Stmt.t list -> t
(** Slice over the given statements only (no applicability checks) — the
    per-inner-loop [computeAddr] the scheduler evaluates for one
    iteration. *)

val cost_per_iter : t -> float
(** Estimated scheduler cycles to evaluate the slice for one iteration. *)

val guard_ratio : t -> Program.t -> Env.t -> float
(** [cost_per_iter / average worker-iteration cost], sampled over the first
    invocations; DOMORE is reported inapplicable when this is close to 1. *)

val addresses : t -> Env.t -> int list
(** Evaluate the slice: concrete flat addresses for the iteration in [env]. *)

val write_addresses : t -> Env.t -> int list

val read_addresses : t -> Env.t -> int list

val iter_addresses : t -> Env.t -> (int -> unit) -> unit
(** Evaluate the slice, feeding each address to the callback in the same
    order as {!addresses}, without building a list — runtime consumers
    (shadow memory, {!Xinv_runtime.Signature.add_iter}) stream from these
    on the hot path. *)

val iter_write_addresses : t -> Env.t -> (int -> unit) -> unit

val iter_read_addresses : t -> Env.t -> (int -> unit) -> unit
