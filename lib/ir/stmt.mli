(** IR statements.

    A statement carries its static memory footprint (read and write access
    expressions) for the compiler passes, and a dynamic semantics [exec] plus
    a cost model [cost] for simulated execution.  The static footprint must
    over-approximate what [exec] touches; property tests check this. *)

type t = {
  sid : int;  (** unique id, assigned by {!make} *)
  name : string;
  reads : Access.t list;
  writes : Access.t list;
  commutes : bool;  (** updates commute (DOANY may lock instead of order) *)
  side_effect : bool;  (** irreversible (I/O): cannot be speculated/duplicated *)
  cost : Env.t -> float;
  exec : Env.t -> unit;
}

val make :
  ?reads:Access.t list ->
  ?writes:Access.t list ->
  ?commutes:bool ->
  ?side_effect:bool ->
  ?cost:(Env.t -> float) ->
  ?exec:(Env.t -> unit) ->
  string ->
  t
(** Defaults: empty footprints, non-commutative, no side effect, zero cost,
    no-op semantics. *)

val fixed_cost : float -> Env.t -> float

val accesses : t -> Access.t list
(** Reads then writes. *)

val touched_arrays : t -> string list
(** Sorted, deduplicated base arrays of all accesses including index loads. *)

val index_arrays : t -> string list
(** Arrays read inside index expressions (what [computeAddr] must load). *)

val feed_structure : (int -> unit) -> (string -> unit) -> t -> unit
(** Canonical token stream of the statement's analysis-relevant structure:
    footprints (reads, then writes), commutativity and side-effect flags.
    Deliberately excludes [sid] (a process-local counter), [name] (fingerprints
    are insensitive to name choices) and the [cost]/[exec] closures — closures
    are unhashable; cost models are covered by the probe points
    {!Xinv_cache.Fingerprint} samples instead. *)

val pp : Format.formatter -> t -> unit
