type inner = {
  ilabel : string;
  trip : Env.t -> int;
  pre : Stmt.t list;
  body : Stmt.t list;
}

type t = { pname : string; outer_trip : int; inners : inner list }

let make ~name ~outer_trip inners =
  assert (outer_trip > 0);
  assert (inners <> []);
  { pname = name; outer_trip; inners }

let inner ?(pre = []) ~label ~trip body = { ilabel = label; trip; pre; body }

let const_trip n _ = n

let all_stmts p = List.concat_map (fun il -> il.pre @ il.body) p.inners

let body_stmts p = List.concat_map (fun il -> il.body) p.inners

let pre_stmts p = List.concat_map (fun il -> il.pre) p.inners

let find_inner p label =
  match List.find_opt (fun il -> String.equal il.ilabel label) p.inners with
  | Some il -> il
  | None -> invalid_arg (Printf.sprintf "Program.find_inner: no inner loop %s" label)

let iteration_cost _p il env =
  List.fold_left (fun acc (s : Stmt.t) -> acc +. s.Stmt.cost env) 0. il.body

let invocations p = p.outer_trip * List.length p.inners

let total_iterations p env =
  let n = ref 0 in
  for t = 0 to p.outer_trip - 1 do
    let env_t = Env.with_outer env t in
    List.iter (fun il -> n := !n + il.trip env_t) p.inners
  done;
  !n

let feed_structure fi fs p =
  fi 9;
  fi p.outer_trip;
  fi (List.length p.inners);
  List.iter
    (fun il ->
      (* Inner labels are deliberately not fed: renaming a loop changes no
         analysis result, and cached artifacts key per-inner data by position,
         not label. *)
      fi 10;
      fi (List.length il.pre);
      List.iter (Stmt.feed_structure fi fs) il.pre;
      fi (List.length il.body);
      List.iter (Stmt.feed_structure fi fs) il.body)
    p.inners

let pp ppf p =
  Format.fprintf ppf "@[<v>program %s (outer trip %d)@," p.pname p.outer_trip;
  List.iter
    (fun il ->
      Format.fprintf ppf "  invocation %s:@," il.ilabel;
      List.iter (fun s -> Format.fprintf ppf "    pre  %a@," Stmt.pp s) il.pre;
      List.iter (fun s -> Format.fprintf ppf "    body %a@," Stmt.pp s) il.body)
    p.inners;
  Format.fprintf ppf "@]"
