(** Simulated shared memory: named integer and floating-point arrays.

    Every array lives at a distinct base offset in one flat address space, so
    a concrete access can be rendered as a single global address — the
    currency of DOMORE's shadow memory and SPECCROSS's access signatures. *)

type t

type spec =
  | Ints of string * int array  (** name, initial contents (copied) *)
  | Floats of string * float array

val create : spec list -> t

val names : t -> string list

val base : t -> string -> int
(** Base offset of an array in the flat address space. *)

val size : t -> string -> int

val addr : t -> string -> int -> int
(** [addr m a i] is the flat address of [a.(i)].  Bounds-checked. *)

val get_int : t -> string -> int -> int

val set_int : t -> string -> int -> int -> unit

val get_float : t -> string -> int -> float

val set_float : t -> string -> int -> float -> unit

val is_int : t -> string -> bool
(** Whether the array holds integers (index/pattern data) rather than
    floats (value data) — the distinction {!Xinv_cache.Fingerprint} uses to
    decide which contents can influence analysis results. *)

val snapshot : t -> t
(** Deep copy (checkpointing). *)

val restore : dst:t -> src:t -> unit
(** Copy the contents of [src] (a {!snapshot} of the same layout) into
    [dst]. *)

val equal : t -> t -> bool
(** Structural equality of layout and contents (floats compared exactly). *)

val total_words : t -> int

val diff : t -> t -> (string * int) list
(** Locations (array, index) whose contents differ; empty iff {!equal}. *)

val bounds : t -> int array
(** Base offsets of all arrays in layout order (ascending) — the segment
    boundaries for per-array access signatures. *)

val locate : t -> int -> string * int
(** Array and index containing a flat address. *)

val to_specs : t -> spec list
(** Current contents as creation specs (layout order) — lets callers rebuild
    an extended memory. *)

val set_observer : (write:bool -> string -> int -> unit) option -> t -> unit
(** Install (or clear) an access observer: every subsequent [get_*]/[set_*]
    on this memory reports to it.  Used by {!Validate} to check that
    statement semantics stay within their declared footprints. *)

val observed : t -> bool
(** Whether an observer is installed.  Workload hot paths use this to pick
    between the raw-array fast path and the observable [get_*]/[set_*]
    route — direct array accesses bypass the observer, so they are only
    legal when this is [false]. *)

val int_data : t -> string -> int array
(** The live backing array of an int array — {e not} a copy: writes through
    it are writes to the memory.  Bypasses the observer and the per-access
    name lookup; callers must bounds-check like any OCaml array access.
    Raises if [name] holds floats. *)

val float_data : t -> string -> float array
(** The live backing array of a float array; see {!int_data}. *)
