type t = { base : string; index : Expr.t }

let make base index = { base; index }

let pp ppf a = Format.fprintf ppf "%s[%a]" a.base Expr.pp a.index

let addr env mem a = Memory.addr mem a.base (Expr.eval env a.index)

let affine a = Affine.of_expr a.index

let irregular a = affine a = None

let may_conflict a b =
  String.equal a.base b.base
  &&
  match (affine a, affine b) with
  | Some fa, Some fb -> Affine.overlaps_some_iteration fa fb
  | _ -> true

let feed fi fs a =
  fi 7;
  fs a.base;
  Expr.feed fi fs a.index

let same_iteration_only a b =
  String.equal a.base b.base
  &&
  match (affine a, affine b) with
  | Some fa, Some fb -> Affine.same_iteration_only fa fb
  | _ -> false
