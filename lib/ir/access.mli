(** A single array access: base array plus index expression. *)

type t = { base : string; index : Expr.t }

val make : string -> Expr.t -> t

val pp : Format.formatter -> t -> unit

val addr : Env.t -> Memory.t -> t -> int
(** Concrete flat address of the access in the given context. *)

val affine : t -> Affine.t option

val irregular : t -> bool
(** True when the index is not affine (the runtime techniques' target). *)

val may_conflict : t -> t -> bool
(** Conservative may-overlap test ignoring iteration bounds: same base and
    either one side irregular or the affine indices can coincide for some
    iteration vectors. *)

val same_iteration_only : t -> t -> bool
(** Precise static guarantee that two same-invocation accesses can only
    touch the same cell within one iteration (DOALL-legality test). *)

val feed : (int -> unit) -> (string -> unit) -> t -> unit
(** Canonical token stream of the access (see {!Expr.feed}): a tag to [fi],
    the base array to [fs], then the index expression. *)
