(** Integer index expressions of the loop-nest IR.

    Expressions compute array indices and scalar integer values.  They may
    read integer arrays ([Load]) — that is how irregular, input-dependent
    access patterns (index arrays, graph adjacency, particle grids) enter the
    IR, and it is exactly the part static dependence analysis cannot see
    through (Chapter 2 of the dissertation). *)

type binop = Add | Sub | Mul | Div | Mod | Min | Max

type t =
  | Const of int
  | Ivar  (** inner-loop induction variable *)
  | Ovar  (** outer-loop induction variable *)
  | Param of string  (** runtime-constant parameter *)
  | Load of string * t  (** integer-array element *)
  | Bin of binop * t * t

val eval : Env.t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val loads : t -> (string * t) list
(** All [Load] sub-terms (array name, index expression), outermost first. *)

val is_loop_invariant : t -> bool
(** True when the expression does not mention [Ivar] (constant within one
    inner-loop invocation as long as loaded arrays are not written). *)

val uses_ivar : t -> bool

val uses_ovar : t -> bool

(** Convenience constructors. *)

val ( + ) : t -> t -> t

val ( - ) : t -> t -> t

val ( * ) : t -> t -> t

val ( mod ) : t -> t -> t

val i : t
(** [Ivar]. *)

val o : t
(** [Ovar]. *)

val c : int -> t
(** Constant. *)

val ld : string -> t -> t
(** [Load]. *)

val size : t -> int
(** Number of nodes (address-computation cost proxy for slicing). *)

val feed : (int -> unit) -> (string -> unit) -> t -> unit
(** [feed fi fs e] streams a canonical, unambiguous token sequence for the
    expression structure: constructor tags and integers to [fi], array and
    parameter names to [fs].  The traversal is deterministic and
    sharing-insensitive, so two structurally equal expressions produce the
    same stream — the hashing hook {!Xinv_cache.Fingerprint} is built on. *)
