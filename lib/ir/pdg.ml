type kind = Intra | Cross_iter | Cross_invoc | Flow

type edge = { src : int; dst : int; kind : kind; carried_outer : bool }

type loc = { inner_idx : int; in_body : bool; ord : int }

type t = { stmts : (Stmt.t * loc) list; edges : edge list }

(* Reads of a statement for dependence purposes: declared reads plus a
   whole-array irregular access for every array loaded inside an index
   expression (the scheduler cannot know which element). *)
let eff_reads (s : Stmt.t) =
  let idx_reads =
    List.map (fun a -> Access.make a (Expr.Param "?")) (Stmt.index_arrays s)
  in
  s.Stmt.reads @ idx_reads

let eff_accesses s = eff_reads s @ s.Stmt.writes

let conflict s1 s2 =
  List.exists
    (fun w -> List.exists (fun a -> Access.may_conflict w a) (eff_accesses s2))
    s1.Stmt.writes

(* Do all conflicting access pairs stay within a single iteration? *)
let same_iteration_conflicts_only s1 s2 =
  List.for_all
    (fun (w : Access.t) ->
      List.for_all
        (fun (a : Access.t) ->
          (not (Access.may_conflict w a)) || Access.same_iteration_only w a)
        (eff_accesses s2))
    s1.Stmt.writes

let classify_pair (sa, (la : loc)) (sb, (lb : loc)) =
  (* [sa] precedes [sb] in program order. *)
  let edges = ref [] in
  let fwd = conflict sa sb || conflict sb sa in
  let back = fwd in
  if la.inner_idx = lb.inner_idx && la.in_body && lb.in_body then begin
    if fwd then
      if same_iteration_conflicts_only sa sb && same_iteration_conflicts_only sb sa
      then
        edges :=
          { src = sa.Stmt.sid; dst = sb.Stmt.sid; kind = Intra; carried_outer = false }
          :: !edges
      else begin
        edges :=
          { src = sa.Stmt.sid; dst = sb.Stmt.sid; kind = Cross_iter; carried_outer = false }
          :: { src = sb.Stmt.sid; dst = sa.Stmt.sid; kind = Cross_iter; carried_outer = false }
          :: !edges
      end
  end
  else begin
    (if conflict sa sb || conflict sb sa then
       let kind = if (not la.in_body) && lb.in_body && la.inner_idx = lb.inner_idx then Flow else Cross_invoc in
       edges :=
         { src = sa.Stmt.sid; dst = sb.Stmt.sid; kind; carried_outer = false } :: !edges);
    if back && conflict sb sa then
      (* The same conflict realized on a later outer iteration: a backedge. *)
      edges :=
        { src = sb.Stmt.sid; dst = sa.Stmt.sid; kind = Cross_invoc; carried_outer = true }
        :: !edges
  end;
  !edges

let self_edges (s, (l : loc)) =
  if l.in_body && conflict s s && not (same_iteration_conflicts_only s s) then
    [ { src = s.Stmt.sid; dst = s.Stmt.sid; kind = Cross_iter; carried_outer = false } ]
  else if (not l.in_body) && conflict s s then
    [ { src = s.Stmt.sid; dst = s.Stmt.sid; kind = Cross_invoc; carried_outer = true } ]
  else []

let stmt_table (p : Program.t) =
  List.concat
    (List.mapi
       (fun ii (il : Program.inner) ->
         List.map (fun s -> (s, ii, false)) il.Program.pre
         @ List.map (fun s -> (s, ii, true)) il.Program.body)
       p.Program.inners)
  |> List.mapi (fun ord (s, ii, in_body) -> (s, { inner_idx = ii; in_body; ord }))

let build (p : Program.t) =
  let stmts = stmt_table p in
  let edges = ref [] in
  List.iter (fun sl -> edges := self_edges sl @ !edges) stmts;
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> edges := classify_pair a b @ !edges) rest;
        pairs rest
  in
  pairs stmts;
  { stmts; edges = List.rev !edges }

let stmt_of t sid =
  match List.find_opt (fun (s, _) -> s.Stmt.sid = sid) t.stmts with
  | Some (s, _) -> s
  | None -> invalid_arg (Printf.sprintf "Pdg.stmt_of: unknown sid %d" sid)

let loc_of t sid =
  match List.find_opt (fun (s, _) -> s.Stmt.sid = sid) t.stmts with
  | Some (_, l) -> l
  | None -> invalid_arg (Printf.sprintf "Pdg.loc_of: unknown sid %d" sid)

let edges_between t a b = List.filter (fun e -> e.src = a && e.dst = b) t.edges

let cross_iter_pairs t =
  t.edges
  |> List.filter_map (fun e -> if e.kind = Cross_iter then Some (e.src, e.dst) else None)
  |> List.sort_uniq compare

let has_cross_iter t ~inner_idx =
  List.exists
    (fun e ->
      e.kind = Cross_iter
      && (loc_of t e.src).inner_idx = inner_idx
      && (loc_of t e.dst).inner_idx = inner_idx)
    t.edges

let kind_str = function
  | Intra -> "intra"
  | Cross_iter -> "cross-iter"
  | Cross_invoc -> "cross-invoc"
  | Flow -> "flow"

let pp ppf t =
  Format.fprintf ppf "@[<v>PDG: %d stmts, %d edges@," (List.length t.stmts)
    (List.length t.edges);
  List.iter
    (fun e ->
      Format.fprintf ppf "  #%d -> #%d  [%s%s]@," e.src e.dst (kind_str e.kind)
        (if e.carried_outer then ", outer-carried" else ""))
    t.edges;
  Format.fprintf ppf "@]"

let to_graph t =
  let sids = Array.of_list (List.map (fun (s, _) -> s.Stmt.sid) t.stmts) in
  let idx_of = Hashtbl.create 16 in
  Array.iteri (fun i sid -> Hashtbl.replace idx_of sid i) sids;
  let n = Array.length sids in
  let adj = Array.make n [] in
  List.iter
    (fun e ->
      let i = Hashtbl.find idx_of e.src and j = Hashtbl.find idx_of e.dst in
      if not (List.mem j adj.(i)) then adj.(i) <- j :: adj.(i))
    t.edges;
  ({ Scc.nodes = n; succs = (fun i -> adj.(i)) }, sids)
