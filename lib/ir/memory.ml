type contents = I of int array | F of float array

type entry = { ebase : int; data : contents }

type t = {
  tbl : (string, entry) Hashtbl.t;
  mutable next_base : int;
  order : string list ref;
  mutable observer : (write:bool -> string -> int -> unit) option;
}

type spec = Ints of string * int array | Floats of string * float array

let create specs =
  let t = { tbl = Hashtbl.create 16; next_base = 0; order = ref []; observer = None } in
  List.iter
    (fun spec ->
      let name, data, len =
        match spec with
        | Ints (n, a) -> (n, I (Array.copy a), Array.length a)
        | Floats (n, a) -> (n, F (Array.copy a), Array.length a)
      in
      assert (not (Hashtbl.mem t.tbl name));
      Hashtbl.replace t.tbl name { ebase = t.next_base; data };
      t.order := name :: !(t.order);
      t.next_base <- t.next_base + len)
    specs;
  t.order := List.rev !(t.order);
  t

let names m = !(m.order)

let entry m name =
  match Hashtbl.find_opt m.tbl name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Memory: unknown array %s" name)

let base m name = (entry m name).ebase

let size m name =
  match (entry m name).data with I a -> Array.length a | F a -> Array.length a

let addr m name i =
  let e = entry m name in
  let len = match e.data with I a -> Array.length a | F a -> Array.length a in
  if i < 0 || i >= len then
    invalid_arg (Printf.sprintf "Memory.addr: %s[%d] out of bounds (size %d)" name i len);
  e.ebase + i

let observe m ~write name i =
  match m.observer with Some f -> f ~write name i | None -> ()

let get_int m name i =
  observe m ~write:false name i;
  match (entry m name).data with
  | I a -> a.(i)
  | F _ -> invalid_arg (Printf.sprintf "Memory.get_int: %s is a float array" name)

let set_int m name i v =
  observe m ~write:true name i;
  match (entry m name).data with
  | I a -> a.(i) <- v
  | F _ -> invalid_arg (Printf.sprintf "Memory.set_int: %s is a float array" name)

let get_float m name i =
  observe m ~write:false name i;
  match (entry m name).data with
  | F a -> a.(i)
  | I _ -> invalid_arg (Printf.sprintf "Memory.get_float: %s is an int array" name)

let set_float m name i v =
  observe m ~write:true name i;
  match (entry m name).data with
  | F a -> a.(i) <- v
  | I _ -> invalid_arg (Printf.sprintf "Memory.set_float: %s is an int array" name)

let observed m = m.observer <> None

let is_int m name = match (entry m name).data with I _ -> true | F _ -> false

let int_data m name =
  match (entry m name).data with
  | I a -> a
  | F _ -> invalid_arg (Printf.sprintf "Memory.int_data: %s is a float array" name)

let float_data m name =
  match (entry m name).data with
  | F a -> a
  | I _ -> invalid_arg (Printf.sprintf "Memory.float_data: %s is an int array" name)

let snapshot m =
  let t =
    { tbl = Hashtbl.create 16; next_base = m.next_base; order = ref !(m.order); observer = None }
  in
  Hashtbl.iter
    (fun name e ->
      let data = match e.data with I a -> I (Array.copy a) | F a -> F (Array.copy a) in
      Hashtbl.replace t.tbl name { ebase = e.ebase; data })
    m.tbl;
  t

let restore ~dst ~src =
  List.iter
    (fun name ->
      let d = entry dst name and s = entry src name in
      match (d.data, s.data) with
      | I da, I sa -> Array.blit sa 0 da 0 (Array.length sa)
      | F da, F sa -> Array.blit sa 0 da 0 (Array.length sa)
      | _ -> invalid_arg "Memory.restore: layout mismatch")
    (names src)

let total_words m =
  List.fold_left (fun acc n -> acc + size m n) 0 (names m)

let diff a b =
  let out = ref [] in
  List.iter
    (fun name ->
      let ea = entry a name in
      match (ea.data, (entry b name).data) with
      | I xa, I xb ->
          Array.iteri (fun i v -> if v <> xb.(i) then out := (name, i) :: !out) xa
      | F xa, F xb ->
          Array.iteri (fun i v -> if v <> xb.(i) then out := (name, i) :: !out) xa
      | _ -> out := (name, -1) :: !out)
    (names a);
  List.rev !out

let equal a b =
  try names a = names b && diff a b = [] with Invalid_argument _ -> false

let bounds m = Array.of_list (List.map (base m) (names m))

let locate m addr =
  let rec go = function
    | [] -> invalid_arg (Printf.sprintf "Memory.locate: address %d out of range" addr)
    | name :: rest ->
        let b = base m name and s = size m name in
        if addr >= b && addr < b + s then (name, addr - b) else go rest
  in
  go (names m)

let to_specs m =
  List.map
    (fun name ->
      match (entry m name).data with
      | I a -> Ints (name, Array.copy a)
      | F a -> Floats (name, Array.copy a))
    (names m)

let set_observer obs m = m.observer <- obs
