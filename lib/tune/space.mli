(** The policy search space: which values each {!Xinv_cache.Policy} axis
    may take for one workload on this machine, plus the moves the search
    strategies make through it (random points, single-axis mutations,
    crossover, hill-climbing neighbourhoods).

    Many axis combinations are observationally equivalent — the publish
    batch does not exist under the barrier engine, the signature scheme
    only exists under SPECCROSS, a sequential run has no domains to count.
    {!canon} collapses every policy onto one representative per
    equivalence class, so the search never spends two trials measuring the
    same configuration under different spellings. *)

module Policy := Xinv_cache.Policy

type axes = {
  backends : Policy.backend list;
  techniques : string list;  (** technique names, always includes sequential *)
  domains : int list;
  grains : int list;
  batches : int list;
  sigs : Policy.sig_kind list;
  spec_distances : int option list;
  epochs : int list;
}

val default_axes : ?max_domains:int -> Xinv_workloads.Workload.t -> axes
(** The native search space for the workload: techniques are filtered to
    those {!Xinv_core.Crossinv.applicable} on the native backend, domain
    counts to [1;2;4] capped at [max_domains] (default
    [Domain.recommended_domain_count ()]). *)

val size : axes -> int
(** Upper bound on distinct points (pre-{!canon} product of axis sizes). *)

val canon : Policy.t -> Policy.t
(** Canonical representative: axes the policy's technique ignores are
    reset to {!Policy.default}'s values. *)

val random : Xinv_util.Prng.t -> axes -> Policy.t

val mutate : Xinv_util.Prng.t -> axes -> Policy.t -> Policy.t
(** Re-draw one axis (possibly the technique itself). *)

val crossover : Xinv_util.Prng.t -> Policy.t -> Policy.t -> Policy.t
(** Uniform crossover: each axis from either parent with equal odds. *)

val neighbours : axes -> Policy.t -> Policy.t list
(** Every canonical policy one axis-change away, deduplicated, without
    the policy itself.  Deterministic order (axis-major, axis-list
    order). *)

val seeds : axes -> Policy.t list
(** Hill-climbing starting points: one sensible configuration per
    applicable technique (widest domain count, mid grain). *)
