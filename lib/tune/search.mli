(** Deterministic policy search over a {!Space.axes}.

    The search never times anything itself: it asks the injected [measure]
    function for every evaluation, so given the same seed and the same
    measure it visits the same trial sequence and returns the same best
    policy.  Tests drive it with a synthetic cost model; {!Tune} drives it
    with real [Crossinv.run_policy] wall times.

    Policies are canonicalized ({!Space.canon}) and deduplicated by
    {!Xinv_cache.Policy.key} — each distinct configuration is measured at
    most once, and only fresh measurements consume budget. *)

module Policy := Xinv_cache.Policy

type strategy =
  | Hill  (** first-improvement hill climbing from {!Space.seeds}, then
              random restarts until the budget runs out *)
  | Ga  (** generational search: elite survivors, uniform crossover,
            single-axis mutation *)

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option

type measurement = {
  m_wall_ns : float;  (** measured cost; [infinity] when the run failed *)
  m_seq_ns : float;  (** sequential baseline of the same measurement *)
  m_ok : bool;  (** ran to completion and verified *)
  m_pruned : bool;
      (** cut off by the per-trial deadline (slower than the incumbent) *)
}

type trial = {
  t_index : int;  (** 1-based evaluation order *)
  t_policy : Policy.t;
  t_wall_ns : float;
  t_seq_ns : float;
  t_ok : bool;
  t_pruned : bool;
}

type result = {
  best : Policy.t;
  best_wall_ns : float;
  best_seq_ns : float;
  evaluated : int;  (** distinct policies measured (= budget consumed) *)
  trials : trial list;  (** in evaluation order *)
}

val search :
  ?obs:Xinv_obs.Recorder.t ->
  strategy:strategy ->
  budget:int ->
  seed:int ->
  axes:Space.axes ->
  measure:(incumbent_ns:float -> Policy.t -> measurement) ->
  unit ->
  result
(** Explore [axes] for at most [budget] measured trials.  Trial 1 is
    always {!Policy.default} (native sequential), which seeds the
    incumbent; [measure] receives the incumbent's wall time so it can set
    a pruning deadline ([infinity] before the first success).  With
    [?obs], each measurement bumps the [tune.trial] counter and records a
    [Tune_trial] event. *)
