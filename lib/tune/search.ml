module Policy = Xinv_cache.Policy
module Obs = Xinv_obs
module Prng = Xinv_util.Prng

type strategy = Hill | Ga

let strategy_name = function Hill -> "hill" | Ga -> "ga"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "hill" | "hillclimb" | "hill-climb" -> Some Hill
  | "ga" | "genetic" -> Some Ga
  | _ -> None

type measurement = {
  m_wall_ns : float;
  m_seq_ns : float;
  m_ok : bool;
  m_pruned : bool;
}

type trial = {
  t_index : int;
  t_policy : Policy.t;
  t_wall_ns : float;
  t_seq_ns : float;
  t_ok : bool;
  t_pruned : bool;
}

type result = {
  best : Policy.t;
  best_wall_ns : float;
  best_seq_ns : float;
  evaluated : int;
  trials : trial list;
}

exception Budget_exhausted

type state = {
  rng : Prng.t;
  axes : Space.axes;
  budget : int;
  obs : Obs.Recorder.t option;
  measure : incumbent_ns:float -> Policy.t -> measurement;
  seen : (string, measurement) Hashtbl.t;
  mutable n : int;
  mutable log : trial list;  (* reverse evaluation order *)
  mutable best : Policy.t;
  mutable best_wall : float;
  mutable best_seq : float;
}

let note st p m =
  match st.obs with
  | None -> ()
  | Some r ->
      Obs.Metrics.incr (Obs.Metrics.counter (Obs.Recorder.metrics r) "tune.trial");
      Obs.Recorder.record r ~at:0. ~tid:0
        (Obs.Event.Tune_trial
           { policy = Policy.key p; wall_ns = m.m_wall_ns; pruned = m.m_pruned })

(* Comparison score: failed or pruned trials never become the incumbent. *)
let score m = if m.m_ok && not m.m_pruned then m.m_wall_ns else Float.infinity

let eval st p =
  let p = Space.canon p in
  let k = Policy.key p in
  match Hashtbl.find_opt st.seen k with
  | Some m -> m
  | None ->
      if st.n >= st.budget then raise Budget_exhausted;
      st.n <- st.n + 1;
      let m = st.measure ~incumbent_ns:st.best_wall p in
      Hashtbl.add st.seen k m;
      st.log <-
        {
          t_index = st.n;
          t_policy = p;
          t_wall_ns = m.m_wall_ns;
          t_seq_ns = m.m_seq_ns;
          t_ok = m.m_ok;
          t_pruned = m.m_pruned;
        }
        :: st.log;
      note st p m;
      if score m < st.best_wall then begin
        st.best <- p;
        st.best_wall <- m.m_wall_ns;
        st.best_seq <- m.m_seq_ns
      end;
      m

(* First-improvement climb: shuffle the neighbourhood, move to the first
   neighbour that beats the current point, repeat until none does. *)
let climb st start =
  let cur = ref (Space.canon start) in
  let cur_score = ref (score (eval st !cur)) in
  let improved = ref true in
  while !improved do
    improved := false;
    let nbrs = Array.of_list (Space.neighbours st.axes !cur) in
    Prng.shuffle st.rng nbrs;
    (try
       Array.iter
         (fun p ->
           let s = score (eval st p) in
           if s < !cur_score then begin
             cur := p;
             cur_score := s;
             improved := true;
             raise Exit
           end)
         nbrs
     with Exit -> ())
  done

let hill st =
  List.iter (climb st) (Space.seeds st.axes);
  (* Random restarts with whatever budget remains.  The attempt bound
     terminates the loop when the space is exhausted and every random
     point is a (free, cached) re-visit. *)
  let attempts = ref 0 in
  let max_attempts = 8 * st.budget in
  while st.n < st.budget && !attempts < max_attempts do
    incr attempts;
    climb st (Space.random st.rng st.axes)
  done

let ga st =
  let pop_size = 6 and elite = 3 in
  let pop = ref (Space.seeds st.axes) in
  while List.length !pop < pop_size do
    pop := !pop @ [ Space.random st.rng st.axes ]
  done;
  let gens = ref 0 in
  let max_gens = 4 * st.budget in
  while st.n < st.budget && !gens < max_gens do
    incr gens;
    let scored = List.map (fun p -> (score (eval st p), p)) !pop in
    let sorted =
      List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) scored
    in
    let elites =
      List.filteri (fun i _ -> i < elite) sorted |> List.map snd
    in
    let parent () = List.nth elites (Prng.int st.rng (List.length elites)) in
    let children =
      List.init
        (pop_size - List.length elites)
        (fun _ ->
          let child = Space.crossover st.rng (parent ()) (parent ()) in
          if Prng.chance st.rng 0.7 then Space.mutate st.rng st.axes child
          else child)
    in
    pop := elites @ children
  done

let search ?obs ~strategy ~budget ~seed ~axes ~measure () =
  let st =
    {
      rng = Prng.create ~seed;
      axes;
      budget = Stdlib.max 1 budget;
      obs;
      measure;
      seen = Hashtbl.create 64;
      n = 0;
      log = [];
      best = Policy.default;
      best_wall = Float.infinity;
      best_seq = 0.;
    }
  in
  (try
     ignore (eval st Policy.default);
     match strategy with Hill -> hill st | Ga -> ga st
   with Budget_exhausted -> ());
  {
    best = st.best;
    best_wall_ns = st.best_wall;
    best_seq_ns = st.best_seq;
    evaluated = st.n;
    trials = List.rev st.log;
  }
