(** The autotuner facade: search for the fastest execution policy of one
    workload on this machine, persist the winner in the analysis cache,
    and report the whole trajectory as [xinv-tune/1] JSON.

    {[
      let wl = Xinv_workloads.Registry.find "SYMM" in
      let r = Tune.tune ~cache:`Rw ~budget:24 wl in
      Format.printf "%s: %s (%.2fx over sequential)@." r.Tune.workload
        (Xinv_cache.Policy.key r.Tune.tuned.Xinv_cache.Policy.policy)
        (r.Tune.tuned.Xinv_cache.Policy.seq_wall_ns
        /. r.Tune.tuned.Xinv_cache.Policy.wall_ns)
    ]}

    A second [tune] with the same [`Rw] (or [`Ro]) cache finds the stored
    {!Xinv_cache.Policy.tuned} under the workload's fingerprint and runs
    zero search trials. *)

type source = [ `Cached | `Searched ]

val source_name : source -> string

type report = {
  workload : string;
  input : Xinv_workloads.Workload.input;
  seed : int;
  strategy : Search.strategy;
  budget : int;
  source : source;
  tuned : Xinv_cache.Policy.tuned;
  trials : Search.trial list;
      (** the search trajectory; empty when [source = `Cached] *)
}

val tune :
  ?obs:Xinv_obs.Recorder.t ->
  ?cache:[ `Off | `Ro | `Rw ] ->
  ?cache_dir:string ->
  ?input:Xinv_workloads.Workload.input ->
  ?budget:int ->
  ?strategy:Search.strategy ->
  ?seed:int ->
  ?max_domains:int ->
  ?trial_deadline_ms:float ->
  ?work:Xinv_native.Work.t ->
  Xinv_workloads.Workload.t ->
  report
(** Autotune the workload.  With [cache] (default [`Off]) the stored
    policy is consulted first — a hit returns immediately with
    [source = `Cached]; otherwise a {!Search.search} runs (default:
    [Hill], [budget] 32 trials, [seed] 42) measuring each candidate with
    [Crossinv.run_policy] under a per-trial watchdog deadline of
    [1.5 ×] the incumbent's wall time (floored at 20 ms, capped at
    [trial_deadline_ms], default 2000) with degradation off, so trials
    slower than the incumbent are cut off and marked pruned rather than
    run to completion.  Unverified or failed candidates never become the
    incumbent.  With [`Rw] the winner is persisted under the workload's
    fingerprint. *)

val apply :
  ?obs:Xinv_obs.Recorder.t ->
  ?input:Xinv_workloads.Workload.input ->
  ?native:Xinv_core.Crossinv.native_opts ->
  report ->
  Xinv_workloads.Workload.t ->
  Xinv_core.Crossinv.outcome
(** Run the report's best policy once ([Crossinv.run_policy] with the
    report's source as the outcome's [policy_source]). *)

val report_json : report -> string
(** The report as an [xinv-tune/1] JSON object (schema, workload, input,
    seed, strategy, budget, trials_run, source, cores, best policy with
    measured wall times and speedup, and the full trial list).  Non-finite
    wall times are emitted as [-1]. *)
