module Core = Xinv_core
module Cache = Xinv_cache
module Policy = Xinv_cache.Policy
module Wl = Xinv_workloads
module Nat = Xinv_native
module Obs = Xinv_obs

type source = [ `Cached | `Searched ]

let source_name = function `Cached -> "cached" | `Searched -> "searched"

type report = {
  workload : string;
  input : Wl.Workload.input;
  seed : int;
  strategy : Search.strategy;
  budget : int;
  source : source;
  tuned : Policy.tuned;
  trials : Search.trial list;
}

let record obs ev =
  match obs with
  | None -> ()
  | Some r -> Obs.Recorder.record r ~at:0. ~tid:0 ev

let default_trial_deadline_ms = 2000.

let tune ?obs ?(cache = `Off) ?cache_dir ?(input = Wl.Workload.Ref)
    ?(budget = 32) ?(strategy = Search.Hill) ?(seed = 42) ?max_domains
    ?(trial_deadline_ms = default_trial_deadline_ms) ?(work = Nat.Work.Off)
    (wl : Wl.Workload.t) =
  let analysis =
    match cache with
    | `Off -> None
    | (`Ro | `Rw) as mode ->
        Some (Cache.Analysis.make ?obs ?dir:cache_dir ~mode ())
  in
  let program = wl.Wl.Workload.program input in
  let cached =
    match analysis with
    | None -> None
    | Some c ->
        Cache.Analysis.cached_policy c program (wl.Wl.Workload.fresh_env input)
  in
  match cached with
  | Some tuned ->
      record obs
        (Obs.Event.Policy_applied
           { source = "cached"; policy = Policy.key tuned.Policy.policy });
      {
        workload = wl.Wl.Workload.name;
        input;
        seed;
        strategy;
        budget;
        source = `Cached;
        tuned;
        trials = [];
      }
  | None ->
      let axes = Space.default_axes ?max_domains wl in
      let measure ~incumbent_ns (p : Policy.t) =
        (* The incumbent sets the pruning deadline: a candidate that is
           still running at 1.5x the best-known wall time cannot win, so
           the watchdog cuts it off (degradation stays off — a stall must
           surface as a pruned trial, not silently re-run as barrier). *)
        let deadline_ms =
          if Float.is_finite incumbent_ns && incumbent_ns > 0. then
            Float.min trial_deadline_ms
              (Stdlib.max 20. (incumbent_ns *. 1.5 /. 1e6))
          else trial_deadline_ms
        in
        let native =
          {
            Core.Crossinv.native_defaults with
            work;
            deadline_ms = Some deadline_ms;
            degrade = false;
          }
        in
        match
          Core.Crossinv.run_request
            (Core.Crossinv.Request.make
               ~backend:(`Native native)
               ~input ~cache ?cache_dir ?obs
               ~policy:(`Reified (p, "searched"))
               ~technique:Core.Crossinv.Sequential ~threads:1 wl)
        with
        | o ->
            {
              Search.m_wall_ns = Core.Crossinv.cost_value o.Core.Crossinv.cost;
              m_seq_ns = Core.Crossinv.cost_value o.Core.Crossinv.seq_cost;
              m_ok = o.Core.Crossinv.verified;
              m_pruned = false;
            }
        | exception (Nat.Watchdog.Stalled _ | Nat.Watchdog.Cancelled _) ->
            {
              Search.m_wall_ns = Float.infinity;
              m_seq_ns = 0.;
              m_ok = false;
              m_pruned = true;
            }
        | exception Nat.Fault.Injected _ ->
            {
              Search.m_wall_ns = Float.infinity;
              m_seq_ns = 0.;
              m_ok = false;
              m_pruned = true;
            }
        | exception Failure _ ->
            {
              Search.m_wall_ns = Float.infinity;
              m_seq_ns = 0.;
              m_ok = false;
              m_pruned = false;
            }
      in
      let r = Search.search ?obs ~strategy ~budget ~seed ~axes ~measure () in
      let tuned =
        {
          Policy.policy = r.Search.best;
          wall_ns = r.Search.best_wall_ns;
          seq_wall_ns = r.Search.best_seq_ns;
          trials = r.Search.evaluated;
          seed;
        }
      in
      (match analysis with
      | Some c when Cache.Analysis.mode c = `Rw ->
          Cache.Analysis.store_policy c program
            (wl.Wl.Workload.fresh_env input)
            tuned
      | _ -> ());
      {
        workload = wl.Wl.Workload.name;
        input;
        seed;
        strategy;
        budget;
        source = `Searched;
        tuned;
        trials = r.Search.trials;
      }

let apply ?obs ?(input = Wl.Workload.Ref)
    ?(native = Core.Crossinv.native_defaults) r wl =
  Core.Crossinv.run_request
    (Core.Crossinv.Request.make
       ~backend:(`Native native)
       ~input ?obs
       ~policy:(`Reified (r.tuned.Policy.policy, source_name r.source))
       ~technique:Core.Crossinv.Sequential ~threads:1 wl)

let json_ns v = if Float.is_finite v then Printf.sprintf "%.0f" v else "-1"

let report_json r =
  let b = Buffer.create 1024 in
  let t = r.tuned in
  let speedup =
    if Float.is_finite t.Policy.wall_ns && t.Policy.wall_ns > 0. then
      t.Policy.seq_wall_ns /. t.Policy.wall_ns
    else 0.
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\": \"xinv-tune/1\", \"workload\": %S, \"input\": %S, \
        \"seed\": %d, \"strategy\": %S, \"budget\": %d, \"trials_run\": %d, \
        \"source\": %S, \"cores\": %d, \"best\": {\"policy\": %s, \"key\": \
        %S, \"wall_ns\": %s, \"seq_wall_ns\": %s, \"speedup_vs_seq\": %.4f}, \
        \"trials\": ["
       r.workload
       (Wl.Workload.input_name r.input)
       r.seed
       (Search.strategy_name r.strategy)
       r.budget (List.length r.trials) (source_name r.source)
       (Domain.recommended_domain_count ())
       (Policy.to_json t.Policy.policy)
       (Policy.key t.Policy.policy) (json_ns t.Policy.wall_ns)
       (json_ns t.Policy.seq_wall_ns) speedup);
  List.iteri
    (fun i (tr : Search.trial) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"index\": %d, \"policy\": %S, \"wall_ns\": %s, \"ok\": %b, \
            \"pruned\": %b}"
           tr.Search.t_index
           (Policy.key tr.Search.t_policy)
           (json_ns tr.Search.t_wall_ns)
           tr.Search.t_ok tr.Search.t_pruned))
    r.trials;
  Buffer.add_string b "]}";
  Buffer.contents b
