module Policy = Xinv_cache.Policy
module Core = Xinv_core
module Wl = Xinv_workloads
module Prng = Xinv_util.Prng

type axes = {
  backends : Policy.backend list;
  techniques : string list;
  domains : int list;
  grains : int list;
  batches : int list;
  sigs : Policy.sig_kind list;
  spec_distances : int option list;
  epochs : int list;
}

let default_axes ?max_domains (wl : Wl.Workload.t) =
  let cores =
    match max_domains with
    | Some n -> Stdlib.max 1 n
    | None -> Domain.recommended_domain_count ()
  in
  let techniques =
    List.filter_map
      (fun t ->
        match Core.Crossinv.applicable ~backend:`Native t wl with
        | Ok () -> Some (Core.Crossinv.technique_name t)
        | Error _ -> None)
      Core.Crossinv.
        [ Sequential; Barrier; Domore; Domore_dup; Speccross ]
  in
  {
    backends = [ `Native ];
    techniques;
    domains = List.filter (fun d -> d <= cores) [ 1; 2; 4 ];
    grains = [ 1; 4; 16; 64 ];
    batches = [ 1; 32; 128 ];
    sigs = [ `Segmented; `Range; `Bloom ];
    spec_distances = [ None; Some 4; Some 16; Some 64 ];
    epochs = [ 250; 1000; 4000 ];
  }

let size a =
  List.length a.backends * List.length a.techniques * List.length a.domains
  * List.length a.grains * List.length a.batches * List.length a.sigs
  * List.length a.spec_distances * List.length a.epochs

let canon (p : Policy.t) =
  let d = Policy.default in
  match p.Policy.technique with
  | "sequential" ->
      {
        p with
        Policy.domains = 1;
        grain = d.Policy.grain;
        batch = d.Policy.batch;
        sig_kind = d.Policy.sig_kind;
        spec_distance = None;
        epoch_size = d.Policy.epoch_size;
      }
  | "barrier" ->
      (* The barrier engine has no publish protocol, signatures or
         checkpoints; only domains and grain are live. *)
      {
        p with
        Policy.batch = d.Policy.batch;
        sig_kind = d.Policy.sig_kind;
        spec_distance = None;
        epoch_size = d.Policy.epoch_size;
      }
  | "domore" | "domore-dup" ->
      {
        p with
        Policy.sig_kind = d.Policy.sig_kind;
        spec_distance = None;
        epoch_size = d.Policy.epoch_size;
      }
  | "speccross" ->
      (* SPECCROSS dispatches speculative blocks by grain but never
         batches publishes. *)
      { p with Policy.batch = d.Policy.batch }
  | _ -> p

let pick rng l = List.nth l (Prng.int rng (List.length l))

let random rng a =
  canon
    {
      Policy.backend = pick rng a.backends;
      technique = pick rng a.techniques;
      domains = pick rng a.domains;
      grain = pick rng a.grains;
      batch = pick rng a.batches;
      sig_kind = pick rng a.sigs;
      spec_distance = pick rng a.spec_distances;
      epoch_size = pick rng a.epochs;
    }

let mutate rng a (p : Policy.t) =
  let p =
    match Prng.int rng 7 with
    | 0 -> { p with Policy.technique = pick rng a.techniques }
    | 1 -> { p with Policy.domains = pick rng a.domains }
    | 2 -> { p with Policy.grain = pick rng a.grains }
    | 3 -> { p with Policy.batch = pick rng a.batches }
    | 4 -> { p with Policy.sig_kind = pick rng a.sigs }
    | 5 -> { p with Policy.spec_distance = pick rng a.spec_distances }
    | _ -> { p with Policy.epoch_size = pick rng a.epochs }
  in
  canon p

let crossover rng (a : Policy.t) (b : Policy.t) =
  let side x y = if Prng.bool rng then x else y in
  canon
    {
      Policy.backend = side a.Policy.backend b.Policy.backend;
      technique = side a.Policy.technique b.Policy.technique;
      domains = side a.Policy.domains b.Policy.domains;
      grain = side a.Policy.grain b.Policy.grain;
      batch = side a.Policy.batch b.Policy.batch;
      sig_kind = side a.Policy.sig_kind b.Policy.sig_kind;
      spec_distance = side a.Policy.spec_distance b.Policy.spec_distance;
      epoch_size = side a.Policy.epoch_size b.Policy.epoch_size;
    }

let dedup ps =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun p ->
      let k = Policy.key p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    ps

let neighbours a (p : Policy.t) =
  let p = canon p in
  let per_axis =
    [
      List.map (fun v -> { p with Policy.technique = v }) a.techniques;
      List.map (fun v -> { p with Policy.domains = v }) a.domains;
      List.map (fun v -> { p with Policy.grain = v }) a.grains;
      List.map (fun v -> { p with Policy.batch = v }) a.batches;
      List.map (fun v -> { p with Policy.sig_kind = v }) a.sigs;
      List.map (fun v -> { p with Policy.spec_distance = v }) a.spec_distances;
      List.map (fun v -> { p with Policy.epoch_size = v }) a.epochs;
    ]
  in
  List.concat_map (List.map canon) per_axis
  |> dedup
  |> List.filter (fun q -> not (Policy.equal q p))

let seeds a =
  let widest = List.fold_left Stdlib.max 1 a.domains in
  dedup
    (List.map
       (fun t ->
         canon
           { Policy.default with Policy.technique = t; domains = widest; grain = 16 })
       a.techniques)
