(** An execution policy: every runtime knob the facade exposes, bundled as
    one value the autotuner can search over and the cache can persist.

    A policy answers "how should this workload be executed on this
    machine": which backend, which technique, how many execution contexts,
    the native dispatch grain and publish batch, the SPECCROSS signature
    scheme and speculative distance, and the checkpoint epoch size.  The
    autotuner ([lib/tune]) explores this space, [Crossinv.run_policy]
    reifies a point of it into an actual run, and {!tuned} records the
    winning point together with the evidence (measured wall time, trials
    spent, search seed) inside the analysis-cache artifact keyed by the
    workload's {!Fingerprint} — so a tuned workload never re-searches.

    This module is deliberately dependency-free (strings and ints only):
    the technique is stored by name and the signature scheme as a selector,
    so the cache layer never depends on the engine layers above it. *)

type backend = [ `Sim | `Native ]

type sig_kind = [ `Range | `Segmented | `Bloom | `Exact ]
(** Selector for {!Xinv_runtime.Signature.kind}; the runner reifies
    [`Segmented] with the live environment's memory bounds and [`Bloom]
    with the repository-standard 4096/3 parameters. *)

type t = {
  backend : backend;
  technique : string;  (** {!Xinv_core.Crossinv.technique_name} spelling *)
  domains : int;  (** execution contexts (simulated threads or real domains) *)
  grain : int;  (** native dispatch chunk size *)
  batch : int;  (** native write-combining factor *)
  sig_kind : sig_kind;  (** SPECCROSS signature scheme *)
  spec_distance : int option;
      (** speculative lead bound; [None] defers to the profiled default *)
  epoch_size : int;  (** epochs between checkpoints ([checkpoint_every]) *)
}

type tuned = {
  policy : t;
  wall_ns : float;  (** measured wall time under [policy] at tuning time *)
  seq_wall_ns : float;  (** sequential baseline of the same tuning run *)
  trials : int;  (** search trials spent finding it *)
  seed : int;  (** search seed, for reproducing the trajectory *)
}

val default : t
(** Native sequential on one domain with default knobs — the incumbent
    every search starts from. *)

val backend_name : backend -> string

val backend_of_name : string -> backend option

val sig_kind_name : sig_kind -> string

val sig_kind_of_name : string -> sig_kind option

val equal : t -> t -> bool

val key : t -> string
(** Canonical one-line spelling, unique per distinct policy — used as the
    dedup key by the search and as the display form everywhere:
    ["native:speccross d4 g16 b32 sig=segmented spec=8 epoch=1000"]. *)

val to_string : t -> string
(** Same as {!key}. *)

val to_json : t -> string
(** The policy as a JSON object (stable field names, [xinv-tune/1]). *)

val pp : Format.formatter -> t -> unit
