(** Cached front door to the analysis pipeline.

    {!plan} and {!profile} are drop-in replacements for
    [Xinv_ir.Mtcg.generate] and [Xinv_speccross.Profiler.profile]: same
    signatures (modulo the handle), same results — proven bit-identical by
    the differential suite in [test/test_cache.ml] — but on a cache hit the
    expensive work (PDG construction, partitioning, slicing, or the full
    sequential profiling run) is skipped entirely and the result is
    reconstructed from the stored artifact.

    Hit discipline: a stored artifact is replayed only when the fingerprint
    matches, the name vector matches (alias defense), the artifact holds the
    component being asked for, and reconstruction against the live program
    succeeds; anything else — including a corrupt or wrong-version entry —
    degrades to fresh analysis.  In [`Rw] mode fresh results are merged into
    the entry (a fingerprint accumulates its DOMORE plan and its SPECCROSS
    profile independently) and published atomically. *)

type mode = [ `Ro | `Rw ]

type t

val make :
  ?obs:Xinv_obs.Recorder.t -> ?max_bytes:int -> ?dir:string -> mode:mode -> unit -> t
(** [dir] defaults to {!Store.default_dir}. *)

val store : t -> Store.t

val mode : t -> mode

val hits : t -> int
(** Usable hits served (plan + profile). *)

val misses : t -> int

val plan : t -> Xinv_ir.Program.t -> Xinv_ir.Env.t -> Xinv_ir.Mtcg.verdict
(** Cached [Mtcg.generate].  Caches negative verdicts too: a workload DOMORE
    rejects is rejected from the cache with the same reason, without
    rebuilding the PDG. *)

val cached_policy :
  t -> Xinv_ir.Program.t -> Xinv_ir.Env.t -> Policy.tuned option
(** The tuned execution policy stored for this workload's fingerprint, if
    any.  Same hit discipline as {!plan}/{!profile} (fingerprint + name
    vector must match, decode must succeed) but accounted under the
    [policy.cache.hit]/[policy.cache.miss] counters instead of
    [cache.hit]/[cache.miss]: a missing policy must not make a run that
    replayed its whole analysis look like a partial cache hit. *)

val store_policy :
  t -> Xinv_ir.Program.t -> Xinv_ir.Env.t -> Policy.tuned -> unit
(** Merge the tuned policy into the fingerprint's artifact and publish
    atomically ([`Rw] only; a no-op in [`Ro]). *)

val profile :
  t -> Xinv_ir.Program.t -> Xinv_ir.Env.t -> Xinv_speccross.Profiler.t
(** Cached [Profiler.profile].  On a miss the underlying profiling run
    mutates [env] (it executes the program) exactly as the uncached path
    does; on a hit [env] is left untouched — observably equivalent because
    callers profile on a scratch training environment. *)
