module Ir = Xinv_ir
module Obs = Xinv_obs

type mode = [ `Ro | `Rw ]

type t = {
  store : Store.t;
  mode : mode;
  obs : Obs.Recorder.t option;
  (* Registered in the store's registry — the recorder's when one is
     attached — so cache.hit/cache.miss sit next to the store's own
     counters in every exposition. *)
  c_hit : Obs.Metrics.counter;
  c_miss : Obs.Metrics.counter;
  mutable hits : int;
  mutable misses : int;
}

let make ?obs ?max_bytes ?dir ~mode () =
  let dir = match dir with Some d -> d | None -> Store.default_dir () in
  let store = Store.open_ ?obs ?max_bytes ~dir () in
  let m = Store.metrics store in
  {
    store;
    mode;
    obs;
    c_hit = Obs.Metrics.counter m "cache.hit";
    c_miss = Obs.Metrics.counter m "cache.miss";
    hits = 0;
    misses = 0;
  }

let store t = t.store
let mode t = t.mode
let hits t = t.hits
let misses t = t.misses

let record t ev =
  match t.obs with
  | None -> ()
  | Some r -> Obs.Recorder.record r ~at:(Unix.gettimeofday ()) ~tid:0 ev

let hit t fp =
  t.hits <- t.hits + 1;
  Obs.Metrics.incr t.c_hit;
  record t (Obs.Event.Fingerprint_hit { fp = Fingerprint.to_hex fp })

let miss t fp reason =
  t.misses <- t.misses + 1;
  Obs.Metrics.incr t.c_miss;
  record t (Obs.Event.Fingerprint_miss { fp = Fingerprint.to_hex fp; reason })

(* A usable artifact: valid on disk and written for these names (two
   programs that are renamings of each other share a fingerprint; replaying
   across the alias would wire the plan to the wrong arrays). *)
let lookup t fp names =
  match Store.load t.store fp with
  | Ok a when a.Artifact.names = names -> Ok a
  | Ok _ -> Error "alias"
  | Error reason -> Error reason

let merge_save t fp names update =
  if t.mode = `Rw then begin
    let base =
      match lookup t fp names with Ok a -> a | Error _ -> Artifact.empty ~names
    in
    Store.save t.store fp (update base)
  end

(* Statement ids are process-local; artifacts reference statements by
   canonical position in the {!Ir.Pdg.stmt_table} order.  [to_graph] numbers
   dense nodes in that same order, so SCC output needs no remapping. *)

let positions_of_plan (plan : Ir.Mtcg.plan) =
  let pos = Hashtbl.create 32 in
  List.iteri
    (fun i ((s : Ir.Stmt.t), _) -> Hashtbl.replace pos s.Ir.Stmt.sid i)
    plan.Ir.Mtcg.pdg.Ir.Pdg.stmts;
  Hashtbl.find pos

let domore_of_verdict = function
  | Ir.Mtcg.Inapplicable reason -> (Error reason, None, None)
  | Ir.Mtcg.Plan plan ->
      let pos_of = positions_of_plan plan in
      let edges =
        List.map
          (fun (e : Ir.Pdg.edge) ->
            ( pos_of e.Ir.Pdg.src,
              pos_of e.Ir.Pdg.dst,
              e.Ir.Pdg.kind,
              e.Ir.Pdg.carried_outer ))
          plan.Ir.Mtcg.pdg.Ir.Pdg.edges
      in
      let scc =
        let g, _sids = Ir.Pdg.to_graph plan.Ir.Mtcg.pdg in
        Ir.Scc.topological g
      in
      let d =
        {
          Artifact.d_assign =
            List.map
              (fun (sid, side) -> (pos_of sid, side))
              plan.Ir.Mtcg.partition.Ir.Partition.assign;
          d_moved = List.map pos_of plan.Ir.Mtcg.partition.Ir.Partition.moved;
          d_guard_ratio = plan.Ir.Mtcg.guard_ratio;
          d_slice = plan.Ir.Mtcg.slice;
          d_slices = List.map snd plan.Ir.Mtcg.slices;
        }
      in
      (Ok d, Some edges, Some scc)

(* Rebuild a full [Mtcg.plan] for the live program from the stored bundle.
   Any inconsistency (position out of range, inner-loop count drift) raises
   and is treated as a miss by the caller. *)
let replay_plan (p : Ir.Program.t) (a : Artifact.t) =
  match a.Artifact.domore with
  | None -> None
  | Some (Error reason) -> Some (Ir.Mtcg.Inapplicable reason)
  | Some (Ok d) ->
      let table = Array.of_list (Ir.Pdg.stmt_table p) in
      let sid_of pos = (fst table.(pos)).Ir.Stmt.sid in
      let edges =
        match a.Artifact.pdg_edges with
        | None -> raise Not_found
        | Some es ->
            List.map
              (fun (src, dst, kind, carried_outer) ->
                { Ir.Pdg.src = sid_of src; dst = sid_of dst; kind; carried_outer })
              es
      in
      let pdg = { Ir.Pdg.stmts = Array.to_list table; edges } in
      let partition =
        {
          Ir.Partition.assign =
            List.map (fun (pos, side) -> (sid_of pos, side)) d.Artifact.d_assign;
          moved = List.map sid_of d.Artifact.d_moved;
        }
      in
      let scheduler_extra =
        List.filter
          (fun (s : Ir.Stmt.t) ->
            List.mem s.Ir.Stmt.sid partition.Ir.Partition.moved)
          (Ir.Program.body_stmts p)
      in
      let slices =
        List.map2
          (fun (il : Ir.Program.inner) sl -> (il.Ir.Program.ilabel, sl))
          p.Ir.Program.inners d.Artifact.d_slices
      in
      Some
        (Ir.Mtcg.Plan
           {
             Ir.Mtcg.program = p;
             partition;
             pdg;
             slice = d.Artifact.d_slice;
             slices;
             scheduler_extra;
             guard_ratio = d.Artifact.d_guard_ratio;
           })

let fresh_plan t fp names why p env =
  miss t fp why;
  let verdict = Ir.Mtcg.generate p env in
  let domore, pdg_edges, scc_order = domore_of_verdict verdict in
  merge_save t fp names (fun a ->
      {
        a with
        Artifact.domore = Some domore;
        pdg_edges =
          (if pdg_edges = None then a.Artifact.pdg_edges else pdg_edges);
        scc_order =
          (if scc_order = None then a.Artifact.scc_order else scc_order);
      });
  verdict

let plan t p env =
  let fp, names = Fingerprint.keyed p env in
  match lookup t fp names with
  | Ok a -> (
      match (try replay_plan p a with _ -> None) with
      | Some v ->
          hit t fp;
          v
      | None -> fresh_plan t fp names "partial" p env)
  | Error why -> fresh_plan t fp names why p env

let bump_policy_counter t name =
  Obs.Metrics.incr (Obs.Metrics.counter (Store.metrics t.store) name)

let cached_policy t p env =
  let fp, names = Fingerprint.keyed p env in
  match lookup t fp names with
  | Ok { Artifact.policy = Some tuned; _ } ->
      bump_policy_counter t "policy.cache.hit";
      record t (Obs.Event.Fingerprint_hit { fp = Fingerprint.to_hex fp });
      Some tuned
  | Ok _ ->
      bump_policy_counter t "policy.cache.miss";
      None
  | Error why ->
      bump_policy_counter t "policy.cache.miss";
      record t
        (Obs.Event.Fingerprint_miss { fp = Fingerprint.to_hex fp; reason = why });
      None

let store_policy t p env tuned =
  let fp, names = Fingerprint.keyed p env in
  merge_save t fp names (fun a -> { a with Artifact.policy = Some tuned })

let profile t p env =
  let fp, names = Fingerprint.keyed p env in
  let fresh why =
    miss t fp why;
    let pr = Xinv_speccross.Profiler.profile p env in
    merge_save t fp names (fun a -> { a with Artifact.profile = Some pr });
    pr
  in
  match lookup t fp names with
  | Ok { Artifact.profile = Some pr; _ } ->
      hit t fp;
      pr
  | Ok _ -> fresh "partial"
  | Error why -> fresh why
