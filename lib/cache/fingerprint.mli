(** Canonical structural fingerprint of a workload (program + initial
    environment) — the content-hash key of the incremental analysis cache.

    The fingerprint is built from one deterministic traversal that streams
    integer tokens into a pair of FNV-1a accumulators.  It is:

    - {e insensitive to name choices}: array, parameter and loop names are
      replaced by first-occurrence ordinals, so consistently renaming
      everything yields the same fingerprint;
    - {e insensitive to physical sharing and statement identity}: the
      traversal is purely structural — [Stmt.sid] (a process-local counter)
      and pointer sharing never enter the hash, so the fingerprint is stable
      across process restarts;
    - {e insensitive to value data}: the contents of floating-point arrays
      cannot influence addresses, trip counts or dependence analysis in this
      IR, so they are excluded — re-running on different float data hits the
      cache;
    - {e sensitive to anything that changes analysis results}: program
      structure (access footprints, commutativity, side effects), problem
      size (memory layout: every array's kind and extent), runtime
      parameters, the full contents of integer arrays (the access patterns
      runtime analysis exists to observe — e.g. a [Synth] profile seed), and
      probed samples of the trip-count and cost closures.

    Invalidation rule for workload authors: trip counts and addresses must
    be derived from parameters and integer arrays only (true of every
    registry workload); a workload whose {e float} contents steer control
    flow must not be cached. *)

type t

val key : Xinv_ir.Program.t -> Xinv_ir.Env.t -> t
(** Fingerprint of the program paired with the environment it will run in.
    Reads the environment (trip/cost probes, integer-array contents) but
    never mutates it and never calls any [exec]. *)

val name_vector : Xinv_ir.Program.t -> Xinv_ir.Env.t -> string list
(** The actual names, in first-occurrence order of the same traversal
    {!key} performs.  Stored inside cache artifacts: two workloads that are
    renamings of each other share a fingerprint, and the name vector is how
    a hit detects the alias and falls back to fresh analysis. *)

val keyed : Xinv_ir.Program.t -> Xinv_ir.Env.t -> t * string list
(** {!key} and {!name_vector} from a single traversal. *)

val to_hex : t -> string
(** 32 lowercase hex characters (two 64-bit lanes). *)

val of_hex : string -> t option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
