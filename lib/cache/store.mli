(** On-disk artifact store: one file per fingerprint under a cache
    directory ([$XDG_CACHE_HOME/xinv] or [~/.cache/xinv] by default,
    overridable per store).

    Durability discipline, modelled on incremental-compiler caches:

    - {e atomic publication}: entries are written to a unique [.tmp] file
      and [rename(2)]d into place, so concurrent readers (other processes,
      other domains) only ever observe absent or complete entries — never a
      torn write;
    - {e corrupt-entry quarantine}: an entry that fails {!Artifact.decode}
      (truncated, bit-flipped, wrong version, zero-length) is moved aside to
      [<entry>.quarantined] and reported as invalid — the caller falls back
      to fresh analysis; the store never raises on bad data;
    - {e LRU size cap}: after each write, oldest-first eviction keeps the
      directory under [max_bytes];
    - {e best-effort IO}: filesystem errors (read-only dir, ENOSPC, races
      with concurrent evictions) make individual operations miss or no-op,
      never crash the run.

    Counters ([cache.evict], [cache.quarantine], [cache.store],
    [cache.io_error]) live in a {!Xinv_obs.Metrics} registry — the attached
    recorder's when one is given to {!open_} (so stats reports and
    OpenMetrics expositions pick them up for free), a private registry
    otherwise; see {!metrics}.  Usable-hit accounting ([cache.hit],
    [cache.miss]) lives in {!Analysis} and lands in the same registry. *)

type t

val default_dir : unit -> string

val open_ : ?obs:Xinv_obs.Recorder.t -> ?max_bytes:int -> dir:string -> unit -> t
(** Creates [dir] (and parents) when missing and sweeps stale [.tmp] files
    left by crashed writers.  Default [max_bytes]: 256 MiB. *)

val dir : t -> string

val load : t -> Fingerprint.t -> (Artifact.t, string) result
(** [Error reason] on anything but a complete, valid entry: ["absent"], or
    an {!Artifact.decode} reason (the entry is then quarantined).  Performs
    no hit/miss accounting — {!Analysis} decides usability. *)

val save : t -> Fingerprint.t -> Artifact.t -> unit
(** Atomic tmp+rename publication, then LRU enforcement.  Best-effort:
    errors are counted, not raised. *)

(** {2 Counters}

    Readers of the underlying registry counters.  When several stores share
    one recorder, the counters aggregate across them. *)

val metrics : t -> Xinv_obs.Metrics.t
(** The registry holding this store's counters: the recorder's when [obs]
    was passed to {!open_}, a store-private one otherwise. *)

val evictions : t -> int
(** The [cache.evict] counter. *)

val invalidated : t -> int
(** The [cache.quarantine] counter: entries quarantined after failing
    {!Artifact.decode}. *)

val stores : t -> int
(** The [cache.store] counter. *)

val io_errors : t -> int
(** The [cache.io_error] counter. *)

(** {2 Fault injection}

    A {!Xinv_native.Fault}-style injection point for crash-mid-write tests:
    the armed fault fires on the next {!save} (exactly once) and simulates a
    writer dying before publication.  Readers must be unaffected either
    way. *)

type fault =
  | Crash_before_rename  (** full tmp file written, never renamed *)
  | Torn_write  (** writer dies half-way through the tmp file *)

val inject : t -> fault option -> unit

(** {2 Directory-level maintenance (CLI [xinv cache ...])} *)

type entry_info = { e_fp : string; e_bytes : int; e_mtime : float }

val ls : dir:string -> entry_info list
(** Entries, oldest first. *)

type stats = {
  s_entries : int;
  s_bytes : int;
  s_quarantined : int;
  s_tmp : int;
}

val stats : dir:string -> stats

val clear : dir:string -> int
(** Removes entries, quarantined files and stale tmp files; returns the
    number of cache entries removed. *)
