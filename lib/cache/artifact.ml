type domore = {
  d_assign : (int * Xinv_ir.Partition.side) list;
  d_moved : int list;
  d_guard_ratio : float;
  d_slice : Xinv_ir.Slice.t;
  d_slices : Xinv_ir.Slice.t list;
}

type t = {
  names : string list;
  pdg_edges : (int * int * Xinv_ir.Pdg.kind * bool) list option;
  scc_order : int list list option;
  domore : (domore, string) result option;
  profile : Xinv_speccross.Profiler.t option;
  policy : Policy.tuned option;
}

let empty ~names =
  {
    names;
    pdg_edges = None;
    scc_order = None;
    domore = None;
    profile = None;
    policy = None;
  }

let magic = "xinvcache\n"

(* v2: the bundle gained the tuned execution policy. *)
let schema_version = 2

(* The payload is a Marshal image of the closure-free record above.  Marshal
   output is only guaranteed readable by a compatible runtime, which is
   exactly what the version+checksum envelope enforces: the digest is
   validated before a single payload byte reaches [Marshal.from_string], so
   corrupt data can never segfault the deserializer, and incompatible
   writers are expected to bump [schema_version]. *)

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let encode t =
  let payload = Marshal.to_string (t : t) [] in
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  put_u32 b schema_version;
  put_u32 b (String.length payload);
  Buffer.add_string b (Digest.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let header_len = String.length magic + 4 + 4 + 16

let decode s =
  let len = String.length s in
  if len < header_len then Error "truncated"
  else if String.sub s 0 (String.length magic) <> magic then Error "magic"
  else
    let version = get_u32 s (String.length magic) in
    if version <> schema_version then Error "version"
    else
      let plen = get_u32 s (String.length magic + 4) in
      if plen < 0 || len <> header_len + plen then Error "truncated"
      else
        let digest = String.sub s (String.length magic + 8) 16 in
        let payload = String.sub s header_len plen in
        if not (String.equal (Digest.string payload) digest) then
          Error "checksum"
        else
          match (Marshal.from_string payload 0 : t) with
          | t -> Ok t
          | exception _ -> Error "payload"
