(** Versioned binary serialization of one workload's analysis bundle.

    The payload is everything the compile-time/profiling pipeline produces
    for a fingerprinted workload: the PDG edge set, the SCC order of its
    condensation, the DOMORE partition + [computeAddr] slices + performance
    guard ratio (or the inapplicability verdict — negative results are worth
    caching too), and the SPECCROSS dependence-distance profile.  Statements
    are referenced by {e canonical position} ({!Xinv_ir.Pdg.stmt_table}
    order), never by the process-local [Stmt.sid], so an artifact written by
    one process reconstructs correctly in another.

    Wire format: magic string, schema version, payload length, MD5 payload
    checksum, payload.  {!decode} validates magic, version, length and
    checksum {e before} touching the payload bytes, so truncated, bit-flipped,
    wrong-version and zero-length files are rejected with a reason instead of
    crashing (or worse, deserializing garbage). *)

type domore = {
  d_assign : (int * Xinv_ir.Partition.side) list;
      (** canonical position -> partition side *)
  d_moved : int list;  (** canonical positions forced into the scheduler *)
  d_guard_ratio : float;
  d_slice : Xinv_ir.Slice.t;  (** region-wide [computeAddr] slice *)
  d_slices : Xinv_ir.Slice.t list;  (** per inner loop, in program order *)
}

type t = {
  names : string list;
      (** {!Fingerprint.name_vector} of the workload that produced this
          bundle; a loaded artifact whose vector differs from the current
          workload's is an alias (same structure, different names) and must
          not be replayed *)
  pdg_edges : (int * int * Xinv_ir.Pdg.kind * bool) list option;
      (** (src position, dst position, kind, outer-carried); [None] when the
          PDG was not computed for this fingerprint yet *)
  scc_order : int list list option;
      (** condensation SCCs (canonical positions), topological order *)
  domore : (domore, string) result option;
      (** [Some (Error reason)] caches DOMORE inapplicability *)
  profile : Xinv_speccross.Profiler.t option;
      (** SPECCROSS dependence-distance profile of this exact input *)
  policy : Policy.tuned option;
      (** autotuned execution policy ([xinv tune]): the fastest measured
          point of the policy space for this fingerprint on some machine,
          with the evidence (wall times, trials, seed) that chose it *)
}

val empty : names:string list -> t

val schema_version : int
(** Bump on any change to the payload type, the fingerprint traversal, or
    the meaning of either — old entries then miss on the version check and
    are re-analyzed, never misinterpreted. *)

val encode : t -> string

val decode : string -> (t, string) result
(** [Error reason] with [reason] one of ["truncated"], ["magic"],
    ["version"], ["checksum"], ["payload"].  Never raises. *)
