module Ir = Xinv_ir

type t = { lo : int64; hi : int64 }

(* FNV-1a over the token stream, two independent lanes.  Self-implemented
   (not [Hashtbl.hash]) so the value is pinned by this file, not by the
   OCaml runtime — stability across processes and compiler versions is what
   makes an on-disk cache keyed by it valid.  Changing the traversal or the
   mixing below is a cache-schema change: bump {!Artifact.schema_version}. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_offset2 = 0x84222325cbf29ce4L
let fnv_prime = 0x100000001b3L

type state = { mutable h1 : int64; mutable h2 : int64 }

let byte st b =
  st.h1 <- Int64.mul (Int64.logxor st.h1 (Int64.of_int (b land 0xff))) fnv_prime;
  st.h2 <-
    Int64.mul (Int64.logxor st.h2 (Int64.of_int ((b lxor 0xa5) land 0xff))) fnv_prime

let int64 st v =
  for k = 0 to 7 do
    byte st (Int64.to_int (Int64.shift_right_logical v (8 * k)))
  done

let int st v = int64 st (Int64.of_int v)

(* One traversal drives both the hash and the name vector.  Names are
   canonicalized to first-occurrence ordinals before hashing, so the hash is
   name-insensitive; the actual names are collected for alias validation. *)
let traverse (p : Ir.Program.t) (env : Ir.Env.t) ~fi =
  let ids = Hashtbl.create 16 in
  let order = ref [] in
  let fs s =
    match Hashtbl.find_opt ids s with
    | Some id -> fi id
    | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids s id;
        order := s :: !order;
        fi id
  in
  let ffloat f = fi (Int64.to_int (Int64.bits_of_float f)) in
  (* 1. Static structure: footprints, flags, expression trees. *)
  Ir.Program.feed_structure fi fs p;
  (* 2. Closure probes: trip counts and cost samples at canonical points.
     The closures themselves are unhashable; what analysis consumes of them
     (iteration counts, the guard's cost ratio, profiling trip structure) is
     covered by sampling a few (outer, inner) coordinates against the
     initial environment.  Never calls [exec]; cost/trip must not mutate. *)
  let probe_ts =
    List.sort_uniq compare
      [ 0; 1; p.Ir.Program.outer_trip / 2; p.Ir.Program.outer_trip - 1 ]
    |> List.filter (fun t -> t >= 0 && t < p.Ir.Program.outer_trip)
  in
  List.iter
    (fun t ->
      let env_t = Ir.Env.with_outer env t in
      List.iter
        (fun (il : Ir.Program.inner) ->
          let trip = il.Ir.Program.trip env_t in
          fi 11;
          fi trip;
          List.iter
            (fun j ->
              if j >= 0 && j < trip then begin
                let env_j = Ir.Env.with_inner env_t j in
                List.iter
                  (fun (s : Ir.Stmt.t) -> ffloat (s.Ir.Stmt.cost env_j))
                  il.Ir.Program.body
              end)
            [ 0; 1; trip - 1 ])
        p.Ir.Program.inners)
    probe_ts;
  (* 3. Problem size and access-pattern data: memory layout in address
     order, with full contents for integer arrays (index arrays, graph
     adjacency, particle grids — what runtime analysis actually reads) and
     kind+extent only for float arrays (value data cannot steer analysis). *)
  let mem = env.Ir.Env.mem in
  List.iter
    (fun a ->
      fs a;
      fi (Ir.Memory.size mem a);
      if Ir.Memory.is_int mem a then begin
        fi 12;
        Array.iter fi (Ir.Memory.int_data mem a)
      end
      else fi 13)
    (Ir.Memory.names mem);
  (* 4. Runtime parameters. *)
  List.iter
    (fun (name, v) ->
      fi 14;
      fs name;
      fi v)
    env.Ir.Env.params;
  List.rev !order

let keyed p env =
  let st = { h1 = fnv_offset; h2 = fnv_offset2 } in
  let names = traverse p env ~fi:(int st) in
  ({ lo = st.h1; hi = st.h2 }, names)

let key p env = fst (keyed p env)

let name_vector p env = traverse p env ~fi:(fun _ -> ())

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.hi t.lo

let of_hex s =
  if String.length s <> 32 then None
  else
    match
      ( Int64.of_string ("0x" ^ String.sub s 0 16),
        Int64.of_string ("0x" ^ String.sub s 16 16) )
    with
    | hi, lo -> Some { lo; hi }
    | exception _ -> None

let equal a b = Int64.equal a.lo b.lo && Int64.equal a.hi b.hi

let pp ppf t = Format.pp_print_string ppf (to_hex t)
