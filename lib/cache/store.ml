module Obs = Xinv_obs

type fault = Crash_before_rename | Torn_write

(* Counters live in a {!Obs.Metrics} registry — the attached recorder's
   when there is one (so `xinv stats` and OpenMetrics expositions see them
   for free), a private registry otherwise.  Handles are pre-registered
   here; the operational paths do O(1) bumps. *)
type t = {
  dir : string;
  max_bytes : int;
  metrics : Obs.Metrics.t;
  c_evict : Obs.Metrics.counter;
  c_quarantine : Obs.Metrics.counter;
  c_store : Obs.Metrics.counter;
  c_io_error : Obs.Metrics.counter;
  mutable injected : fault option;
  mutable tmp_seq : int;
}

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "xinv"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "xinv"
      | _ -> Filename.concat (Filename.get_temp_dir_name ()) "xinv-cache")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let is_entry f = Filename.check_suffix f ".xc"
let is_quarantined f = Filename.check_suffix f ".quarantined"

let is_tmp f =
  (* tmp files are named <hex>.xc.tmp.<pid>.<seq> *)
  let rec has_tmp_part f =
    let b = Filename.basename f in
    if Filename.extension b = ".tmp" then true
    else
      let r = Filename.remove_extension b in
      r <> b && has_tmp_part r
  in
  has_tmp_part f

let listing dir =
  match Sys.readdir dir with exception Sys_error _ -> [||] | fs -> fs

let open_ ?obs ?(max_bytes = 256 * 1024 * 1024) ~dir () =
  (try mkdir_p dir with _ -> ());
  (* Sweep tmp files abandoned by writers that crashed before publishing:
     they are invisible to readers but would leak disk forever. *)
  Array.iter
    (fun f -> if is_tmp f then try Sys.remove (Filename.concat dir f) with _ -> ())
    (listing dir);
  let metrics =
    match obs with
    | Some r -> Obs.Recorder.metrics r
    | None -> Obs.Metrics.create ()
  in
  {
    dir;
    max_bytes;
    metrics;
    c_evict = Obs.Metrics.counter metrics "cache.evict";
    c_quarantine = Obs.Metrics.counter metrics "cache.quarantine";
    c_store = Obs.Metrics.counter metrics "cache.store";
    c_io_error = Obs.Metrics.counter metrics "cache.io_error";
    injected = None;
    tmp_seq = 0;
  }

let dir t = t.dir
let metrics t = t.metrics
let evictions t = t.c_evict.Obs.Metrics.c_value
let invalidated t = t.c_quarantine.Obs.Metrics.c_value
let stores t = t.c_store.Obs.Metrics.c_value
let io_errors t = t.c_io_error.Obs.Metrics.c_value
let inject t f = t.injected <- f

let entry_path t fp = Filename.concat t.dir (Fingerprint.to_hex fp ^ ".xc")

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let r =
        try
          let n = in_channel_length ic in
          Some (really_input_string ic n)
        with _ -> None
      in
      close_in_noerr ic;
      r

let quarantine t path =
  Obs.Metrics.incr t.c_quarantine;
  (try Sys.rename path (path ^ ".quarantined")
   with _ -> ( (* last resort: a bad entry must not keep shadowing the slot *)
     try Sys.remove path with _ -> Obs.Metrics.incr t.c_io_error))

let load t fp =
  let path = entry_path t fp in
  match read_file path with
  | None -> Error "absent"
  | Some raw -> (
      match Artifact.decode raw with
      | Ok a -> Ok a
      | Error reason ->
          quarantine t path;
          Error reason)

(* Oldest-first eviction down to the size cap.  Races with concurrent
   evictors are benign: a stat or remove that loses the race is skipped. *)
let enforce_cap t =
  let entries =
    listing t.dir |> Array.to_list
    |> List.filter_map (fun f ->
           if not (is_entry f) then None
           else
             let p = Filename.concat t.dir f in
             match Unix.stat p with
             | exception _ -> None
             | st -> Some (p, st.Unix.st_size, st.Unix.st_mtime))
  in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
  if total > t.max_bytes then begin
    let oldest_first =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) entries
    in
    let excess = ref (total - t.max_bytes) in
    List.iter
      (fun (p, sz, _) ->
        if !excess > 0 then
          match Sys.remove p with
          | () ->
              excess := !excess - sz;
              Obs.Metrics.incr t.c_evict
          | exception _ -> ())
      oldest_first
  end

let save t fp art =
  let path = entry_path t fp in
  t.tmp_seq <- t.tmp_seq + 1;
  let tmp = Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) t.tmp_seq in
  let raw = Artifact.encode art in
  let fault = t.injected in
  if fault <> None then t.injected <- None;
  match open_out_bin tmp with
  | exception Sys_error _ -> Obs.Metrics.incr t.c_io_error
  | oc -> (
      match fault with
      | Some Torn_write ->
          (* Writer dies mid-payload: a torn tmp file is left behind, the
             entry slot stays untouched. *)
          output_string oc (String.sub raw 0 (String.length raw / 2));
          close_out_noerr oc
      | Some Crash_before_rename ->
          (* Writer dies after the write but before publication. *)
          output_string oc raw;
          close_out_noerr oc
      | None -> (
          let ok =
            try
              output_string oc raw;
              close_out oc;
              true
            with Sys_error _ ->
              close_out_noerr oc;
              false
          in
          if not ok then begin
            Obs.Metrics.incr t.c_io_error;
            try Sys.remove tmp with _ -> ()
          end
          else
            match Sys.rename tmp path with
            | () ->
                Obs.Metrics.incr t.c_store;
                enforce_cap t
            | exception _ ->
                Obs.Metrics.incr t.c_io_error;
                (try Sys.remove tmp with _ -> ())))

(* Directory-level maintenance for the CLI. *)

type entry_info = { e_fp : string; e_bytes : int; e_mtime : float }

let ls ~dir =
  listing dir |> Array.to_list
  |> List.filter_map (fun f ->
         if not (is_entry f) then None
         else
           let p = Filename.concat dir f in
           match Unix.stat p with
           | exception _ -> None
           | st ->
               Some
                 {
                   e_fp = Filename.chop_suffix f ".xc";
                   e_bytes = st.Unix.st_size;
                   e_mtime = st.Unix.st_mtime;
                 })
  |> List.sort (fun a b -> compare a.e_mtime b.e_mtime)

type stats = {
  s_entries : int;
  s_bytes : int;
  s_quarantined : int;
  s_tmp : int;
}

let stats ~dir =
  Array.fold_left
    (fun acc f ->
      let p = Filename.concat dir f in
      if is_entry f then
        let sz = match Unix.stat p with exception _ -> 0 | st -> st.Unix.st_size in
        { acc with s_entries = acc.s_entries + 1; s_bytes = acc.s_bytes + sz }
      else if is_quarantined f then
        { acc with s_quarantined = acc.s_quarantined + 1 }
      else if is_tmp f then { acc with s_tmp = acc.s_tmp + 1 }
      else acc)
    { s_entries = 0; s_bytes = 0; s_quarantined = 0; s_tmp = 0 }
    (listing dir)

let clear ~dir =
  Array.fold_left
    (fun removed f ->
      if is_entry f || is_quarantined f || is_tmp f then (
        let was_entry = is_entry f in
        match Sys.remove (Filename.concat dir f) with
        | () -> if was_entry then removed + 1 else removed
        | exception _ -> removed)
      else removed)
    0 (listing dir)
