type backend = [ `Sim | `Native ]

type sig_kind = [ `Range | `Segmented | `Bloom | `Exact ]

type t = {
  backend : backend;
  technique : string;
  domains : int;
  grain : int;
  batch : int;
  sig_kind : sig_kind;
  spec_distance : int option;
  epoch_size : int;
}

type tuned = {
  policy : t;
  wall_ns : float;
  seq_wall_ns : float;
  trials : int;
  seed : int;
}

let default =
  {
    backend = `Native;
    technique = "sequential";
    domains = 1;
    grain = 1;
    batch = 32;
    sig_kind = `Segmented;
    spec_distance = None;
    epoch_size = 1000;
  }

let backend_name = function `Sim -> "sim" | `Native -> "native"

let backend_of_name = function
  | "sim" -> Some `Sim
  | "native" -> Some `Native
  | _ -> None

let sig_kind_name = function
  | `Range -> "range"
  | `Segmented -> "segmented"
  | `Bloom -> "bloom"
  | `Exact -> "exact"

let sig_kind_of_name = function
  | "range" -> Some `Range
  | "segmented" -> Some `Segmented
  | "bloom" -> Some `Bloom
  | "exact" -> Some `Exact
  | _ -> None

let equal (a : t) (b : t) = a = b

let key p =
  Printf.sprintf "%s:%s d%d g%d b%d sig=%s spec=%s epoch=%d"
    (backend_name p.backend) p.technique p.domains p.grain p.batch
    (sig_kind_name p.sig_kind)
    (match p.spec_distance with None -> "auto" | Some d -> string_of_int d)
    p.epoch_size

let to_string = key

let to_json p =
  Printf.sprintf
    "{\"backend\": \"%s\", \"technique\": \"%s\", \"domains\": %d, \"grain\": \
     %d, \"batch\": %d, \"sig_kind\": \"%s\", \"spec_distance\": %s, \
     \"epoch_size\": %d}"
    (backend_name p.backend) p.technique p.domains p.grain p.batch
    (sig_kind_name p.sig_kind)
    (match p.spec_distance with None -> "null" | Some d -> string_of_int d)
    p.epoch_size

let pp ppf p = Format.pp_print_string ppf (key p)
