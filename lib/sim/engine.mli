(** Deterministic discrete-event simulator of a shared-memory multicore.

    Simulated threads are OCaml effect-handler coroutines.  Each thread is
    pinned to its own core, consumes virtual cycles via {!Proc.advance}, and
    blocks/wakes through the primitives built on {!Proc.suspend}
    ({!Barrier}, {!Channel}, {!Mono_cell}, {!Mutex}).

    Events at equal virtual times fire in FIFO order of scheduling, so a run
    is a pure function of its inputs — reproducibility the dissertation's
    evaluation relies on. *)

type t

type tid = int

exception Deadlock of string
(** Raised by {!run} when no event is pending but live threads remain
    suspended; the message carries the simulated clock and, per stuck thread,
    its name, id and state ([Suspended] vs [Ready]), e.g.
    ["at t=42: consumer(#1,Suspended)"]. *)

type _ Effect.t +=
  | E_advance : Category.t * string option * float -> unit Effect.t
  | E_suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | E_now : float Effect.t
  | E_self : tid Effect.t
  | E_engine : t Effect.t
  | E_spawn : string * (unit -> unit) -> tid Effect.t

val create : ?trace:bool -> unit -> t

val spawn : t -> ?name:string -> (unit -> unit) -> tid
(** [spawn eng f] registers a thread whose body runs when {!run} reaches its
    start time (the engine's current time). *)

val run : t -> unit
(** Runs until no event remains.  @raise Deadlock if threads are stuck. *)

val now : t -> float
(** Current virtual time (also the makespan once {!run} returned). *)

val thread_count : t -> int

val name_of : t -> tid -> string

val charged : t -> tid -> Category.t -> float
(** Virtual cycles charged by thread [tid] to a category. *)

val total : t -> Category.t -> float
(** Sum of {!charged} over all threads. *)

val busy : t -> tid -> float
(** Sum over all categories for one thread. *)

val charge : t -> tid -> Category.t -> float -> unit
(** Bookkeeping-only charge (no virtual time consumed); used by blocking
    primitives to attribute waiting time. *)

val segments : t -> Trace.segment list
(** Captured trace segments, oldest first (empty unless [~trace:true]). *)

val add_segment : t -> Trace.segment -> unit
