(** Simulated lock-free single-producer single-consumer queue.

    Models the produce/consume communication primitive DOMORE uses to forward
    synchronization conditions from the scheduler to the workers (the design
    cited as [30] in the dissertation).  Produce and consume each cost a few
    cycles; consuming from an empty queue blocks, with the blocked time
    charged to {!Category.Queue}. *)

type 'a t

val create : ?produce_cost:float -> ?consume_cost:float -> unit -> 'a t

val produce : 'a t -> 'a -> unit

val produce_list : 'a t -> 'a list -> unit
(** Equivalent to [List.iter (produce q) xs].  When the queue's produce cost
    is zero the machine model permits enqueueing the batch without the
    per-element effect dispatch; with a nonzero cost the per-element timing
    of {!produce} is preserved (a blocked consumer may legally observe the
    queue between two produces). *)

val consume : 'a t -> 'a
(** Blocks until an element is available. *)

val try_consume : 'a t -> 'a option
(** Non-blocking variant; pays the consume cost only on success. *)

val length : 'a t -> int

val produced : 'a t -> int
(** Total number of elements ever produced. *)
