type segment = {
  tid : int;
  label : string;
  cat : Category.t;
  t_start : float;
  t_end : float;
}

let by_thread segs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cur = try Hashtbl.find tbl s.tid with Not_found -> [] in
      Hashtbl.replace tbl s.tid (s :: cur))
    segs;
  Hashtbl.fold (fun tid ss acc -> (tid, List.rev ss) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Quantize the timeline into [width] rows and show, for each thread, the
   label of the segment active at each row's start time.  Each thread's
   segments are pre-sorted by start time and scanned with a cursor that only
   moves forward as the rows advance, so rendering is
   O(segments log segments + width * threads) instead of the former
   O(width * threads * segments) full-list probe per cell. *)
let render ?(width = 40) segs =
  match segs with
  | [] -> "(empty trace)"
  | _ ->
      let t_max = List.fold_left (fun acc s -> Stdlib.max acc s.t_end) 0. segs in
      let cols =
        List.map
          (fun (tid, ss) ->
            let arr = Array.of_list ss in
            Array.stable_sort (fun a b -> compare a.t_start b.t_start) arr;
            (tid, arr, ref 0))
          (by_thread segs)
      in
      let col_w =
        List.fold_left
          (fun acc s -> Stdlib.max acc (String.length s.label))
          8 segs
      in
      let cell arr cur t =
        let n = Array.length arr in
        while !cur < n && arr.(!cur).t_end <= t do
          incr cur
        done;
        if !cur < n && arr.(!cur).t_start <= t && t < arr.(!cur).t_end then
          arr.(!cur).label
        else "."
      in
      let header =
        String.concat " | "
          (List.map
             (fun (tid, _, _) -> Printf.sprintf "%-*s" col_w (Printf.sprintf "T%d" tid))
             cols)
      in
      let rows =
        List.init width (fun i ->
            let t = t_max *. float_of_int i /. float_of_int width in
            let cells =
              List.map
                (fun (_, arr, cur) -> Printf.sprintf "%-*s" col_w (cell arr cur t))
                cols
            in
            Printf.sprintf "%8.0f  %s" t (String.concat " | " cells))
      in
      String.concat "\n" ((Printf.sprintf "%8s  %s" "time" header) :: rows)
