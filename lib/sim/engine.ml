type tid = int

type thread_state = Ready | Running | Suspended | Finished

type thread = { id : tid; name : string; mutable state : thread_state }

(* Threads live in a growable array indexed by tid (tids are dense,
   allocated sequentially), charges in a flat float array indexed by
   [tid * Category.count + category], and trace segments in a growable
   array — no per-advance boxed tuple keys or list cells. *)
type t = {
  events : (float * (unit -> unit)) Xinv_util.Heap.t;
  mutable clock : float;
  mutable threads : thread array;
  mutable n_threads : int;
  mutable cur : tid;
  mutable charges : float array;  (* n_threads * Category.count, grown with threads *)
  trace_on : bool;
  mutable trace : Trace.segment array;
  mutable trace_len : int;
}

exception Deadlock of string

type _ Effect.t +=
  | E_advance : Category.t * string option * float -> unit Effect.t
  | E_suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | E_now : float Effect.t
  | E_self : tid Effect.t
  | E_engine : t Effect.t
  | E_spawn : string * (unit -> unit) -> tid Effect.t

let dummy_thread = { id = -1; name = ""; state = Finished }

let create ?(trace = false) () =
  {
    events = Xinv_util.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b);
    clock = 0.;
    threads = Array.make 8 dummy_thread;
    n_threads = 0;
    cur = -1;
    charges = Array.make (8 * Category.count) 0.;
    trace_on = trace;
    trace = [||];
    trace_len = 0;
  }

let now eng = eng.clock

let thread_count eng = eng.n_threads

let find_thread eng id =
  if id < 0 || id >= eng.n_threads then raise Not_found;
  eng.threads.(id)

let name_of eng id = (find_thread eng id).name

let charge eng id cat dt =
  let o = (id * Category.count) + Category.index cat in
  eng.charges.(o) <- eng.charges.(o) +. dt

let charged eng id cat =
  if id < 0 || id >= eng.n_threads then 0.
  else eng.charges.((id * Category.count) + Category.index cat)

let total eng cat =
  let acc = ref 0. in
  for id = 0 to eng.n_threads - 1 do
    acc := !acc +. eng.charges.((id * Category.count) + Category.index cat)
  done;
  !acc

let busy eng id =
  if id < 0 || id >= eng.n_threads then 0.
  else begin
    let acc = ref 0. in
    let base = id * Category.count in
    for c = 0 to Category.count - 1 do
      acc := !acc +. eng.charges.(base + c)
    done;
    !acc
  end

let dummy_segment =
  { Trace.tid = -1; label = ""; cat = Category.Idle; t_start = 0.; t_end = 0. }

let add_segment eng seg =
  if eng.trace_on then begin
    if eng.trace_len = Array.length eng.trace then begin
      let ncap = Stdlib.max 64 (2 * eng.trace_len) in
      let narr = Array.make ncap dummy_segment in
      Array.blit eng.trace 0 narr 0 eng.trace_len;
      eng.trace <- narr
    end;
    eng.trace.(eng.trace_len) <- seg;
    eng.trace_len <- eng.trace_len + 1
  end

let segments eng =
  let acc = ref [] in
  for i = eng.trace_len - 1 downto 0 do
    acc := eng.trace.(i) :: !acc
  done;
  !acc

let schedule eng time thunk = Xinv_util.Heap.push eng.events (time, thunk)

let register_thread eng th =
  let id = th.id in
  if id >= Array.length eng.threads then begin
    let ncap = Stdlib.max (2 * Array.length eng.threads) (id + 1) in
    let narr = Array.make ncap dummy_thread in
    Array.blit eng.threads 0 narr 0 eng.n_threads;
    eng.threads <- narr
  end;
  eng.threads.(id) <- th;
  eng.n_threads <- id + 1;
  let need = eng.n_threads * Category.count in
  if need > Array.length eng.charges then begin
    let ncap = Stdlib.max (2 * Array.length eng.charges) need in
    let narr = Array.make ncap 0. in
    Array.blit eng.charges 0 narr 0 (Array.length eng.charges);
    eng.charges <- narr
  end

(* Run [body] as a simulated thread under the effect handler.  Continuations
   captured by the handler are resumed from the engine loop, re-entering the
   same handler frame. *)
let rec start_thread eng th body =
  let open Effect.Deep in
  match_with
    (fun () ->
      th.state <- Running;
      body ())
    ()
    {
      retc = (fun () -> th.state <- Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_advance (cat, label, dt) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  assert (dt >= 0.);
                  charge eng th.id cat dt;
                  if eng.trace_on then
                    add_segment eng
                      {
                        Trace.tid = th.id;
                        label = (match label with Some l -> l | None -> Category.to_string cat);
                        cat;
                        t_start = eng.clock;
                        t_end = eng.clock +. dt;
                      };
                  th.state <- Ready;
                  schedule eng (eng.clock +. dt) (fun () ->
                      eng.cur <- th.id;
                      th.state <- Running;
                      continue k ()))
          | E_suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  th.state <- Suspended;
                  let woken = ref false in
                  let waker () =
                    if not !woken then begin
                      woken := true;
                      th.state <- Ready;
                      schedule eng eng.clock (fun () ->
                          eng.cur <- th.id;
                          th.state <- Running;
                          continue k ())
                    end
                  in
                  register waker)
          | E_now -> Some (fun k -> continue k eng.clock)
          | E_self -> Some (fun k -> continue k th.id)
          | E_engine -> Some (fun k -> continue k eng)
          | E_spawn (name, f) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let id = spawn_at eng ~name f in
                  continue k id)
          | _ -> None);
    }

and spawn_at : t -> name:string -> (unit -> unit) -> int =
 fun eng ~name body ->
  let id = eng.n_threads in
  let th = { id; name; state = Ready } in
  register_thread eng th;
  schedule eng eng.clock (fun () ->
      eng.cur <- th.id;
      start_thread eng th body);
  id

let spawn eng ?name body =
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" eng.n_threads in
  spawn_at eng ~name body

let run eng =
  let rec loop () =
    match Xinv_util.Heap.pop eng.events with
    | None ->
        let stuck = ref [] in
        for i = eng.n_threads - 1 downto 0 do
          let th = eng.threads.(i) in
          if th.state = Suspended || th.state = Ready then stuck := th :: !stuck
        done;
        if !stuck <> [] then begin
          let state_name = function
            | Suspended -> "Suspended"
            | Ready -> "Ready"
            | Running -> "Running"
            | Finished -> "Finished"
          in
          raise
            (Deadlock
               (Printf.sprintf "at t=%g: %s" eng.clock
                  (String.concat ", "
                     (List.map
                        (fun th ->
                          Printf.sprintf "%s(#%d,%s)" th.name th.id
                            (state_name th.state))
                        !stuck))))
        end
    | Some (time, thunk) ->
        assert (time >= eng.clock -. 1e-9);
        eng.clock <- Stdlib.max eng.clock time;
        thunk ();
        loop ()
  in
  loop ()
