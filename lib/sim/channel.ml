(* Ring buffer instead of a linked Queue.t: produce/consume allocate nothing
   once the ring has grown to the queue's high-water mark. *)
type 'a t = {
  mutable buf : 'a array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable waiters : (unit -> unit) list;  (* consumers blocked on empty *)
  produce_cost : float;
  consume_cost : float;
  mutable produced : int;
}

let create ?(produce_cost = 0.) ?(consume_cost = 0.) () =
  {
    buf = [||];
    head = 0;
    len = 0;
    waiters = [];
    produce_cost;
    consume_cost;
    produced = 0;
  }

let length q = q.len

let produced q = q.produced

let grow q x =
  let cap = Array.length q.buf in
  if cap = 0 then q.buf <- Array.make 16 x
  else begin
    let nbuf = Array.make (2 * cap) x in
    for i = 0 to q.len - 1 do
      nbuf.(i) <- q.buf.((q.head + i) mod cap)
    done;
    q.buf <- nbuf;
    q.head <- 0
  end

let push q x =
  if q.len = Array.length q.buf then grow q x;
  q.buf.((q.head + q.len) mod Array.length q.buf) <- x;
  q.len <- q.len + 1;
  q.produced <- q.produced + 1

let wake_one q =
  match q.waiters with
  | [] -> ()
  | w :: rest ->
      q.waiters <- rest;
      w ()

let produce q x =
  if q.produce_cost > 0. then Proc.advance Category.Queue q.produce_cost;
  push q x;
  wake_one q

let produce_list q xs =
  (* With a per-element produce cost, element k must become visible at
     t0 + k*cost (a blocked consumer legally observes the queue between two
     produces), so batching is only cost-neutral — and only taken — when the
     machine model charges nothing for a produce. *)
  if q.produce_cost > 0. then List.iter (produce q) xs
  else begin
    List.iter
      (fun x ->
        push q x;
        wake_one q)
      xs
  end

let pop q =
  let x = q.buf.(q.head) in
  q.head <- (q.head + 1) mod Array.length q.buf;
  q.len <- q.len - 1;
  x

let rec consume q =
  if q.len = 0 then begin
    let t0 = Proc.now () in
    Proc.suspend (fun waker -> q.waiters <- q.waiters @ [ waker ]);
    Proc.charge_wait Category.Queue ~since:t0;
    consume q
  end
  else begin
    if q.consume_cost > 0. then Proc.advance Category.Queue q.consume_cost;
    pop q
  end

let try_consume q =
  if q.len = 0 then None
  else begin
    if q.consume_cost > 0. then Proc.advance Category.Queue q.consume_cost;
    Some (pop q)
  end
