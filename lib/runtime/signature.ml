type kind =
  | Range
  | Segmented of int array
  | Bloom of { bits : int; hashes : int }
  | Exact

type repr =
  | R_range of { mutable lo : int; mutable hi : int }
  | R_seg of { bounds : int array; lo : int array; hi : int array }
      (* per-segment min/max accessed address; empty segment iff lo > hi *)
  | R_bloom of { bits : int; hashes : int; words : int array; pow2mask : int }
      (* pow2mask = bits - 1 when bits is a power of two (bit index by [land]
         instead of [mod]), 0 otherwise *)
  | R_exact of (int, unit) Hashtbl.t

(* Index of the segment containing [addr]: greatest i with bounds.(i) <= addr.
   Out-of-range addresses clamp to the first segment, so a workload address
   below bounds.(0) degrades precision (the first segment's range widens)
   instead of crashing. *)
let segment_of bounds addr =
  assert (Array.length bounds > 0);
  if addr < bounds.(0) then 0
  else begin
    let lo = ref 0 and hi = ref (Array.length bounds - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if bounds.(mid) <= addr then lo := mid else hi := mid - 1
    done;
    !lo
  end

type t = { k : kind; repr : repr; mutable adds : int }

let create k =
  let repr =
    match k with
    | Range -> R_range { lo = max_int; hi = min_int }
    | Segmented bounds ->
        assert (Array.length bounds > 0);
        let n = Array.length bounds in
        R_seg { bounds; lo = Array.make n max_int; hi = Array.make n min_int }
    | Bloom { bits; hashes } ->
        assert (bits > 0 && hashes > 0);
        let pow2mask = if bits land (bits - 1) = 0 then bits - 1 else 0 in
        (* 32 bits per word: word/bit indexing is a shift and a mask, no
           integer division.  Word grouping does not affect which bit
           positions are set, so the filter's precision is unchanged. *)
        R_bloom { bits; hashes; words = Array.make (((bits - 1) lsr 5) + 1) 0; pow2mask }
    | Exact -> R_exact (Hashtbl.create 64)
  in
  { k; repr; adds = 0 }

let kind t = t.k

(* All-int avalanche (no Int64 boxing).  Constants fit OCaml's 63-bit ints. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B03738712FAD5C9 in
  (x lxor (x lsr 32)) land max_int

(* Double hashing: two mixes give every probe, instead of one full avalanche
   round per hash function.  The stride is forced odd, so when [bits] is a
   power of two the probe positions never collapse onto one bit. *)
let bloom_set words bits hashes pow2mask addr =
  let h1 = mix (addr * 0x9E3779B9) in
  let h2 = mix (addr lxor 0x85EBCA6B) lor 1 in
  let h = ref h1 in
  for _ = 1 to hashes do
    let b = if pow2mask <> 0 then !h land pow2mask else !h mod bits in
    words.(b lsr 5) <- words.(b lsr 5) lor (1 lsl (b land 31));
    h := (!h + h2) land max_int
  done

let add t addr =
  t.adds <- t.adds + 1;
  match t.repr with
  | R_range r ->
      if addr < r.lo then r.lo <- addr;
      if addr > r.hi then r.hi <- addr
  | R_seg sgm ->
      let seg = segment_of sgm.bounds addr in
      if addr < sgm.lo.(seg) then sgm.lo.(seg) <- addr;
      if addr > sgm.hi.(seg) then sgm.hi.(seg) <- addr
  | R_bloom b -> bloom_set b.words b.bits b.hashes b.pow2mask addr
  | R_exact h -> Hashtbl.replace h addr ()

let add_list t addrs = List.iter (add t) addrs

let add_array t addrs =
  for i = 0 to Array.length addrs - 1 do
    add t addrs.(i)
  done

let add_iter t f = f (add t)

let count t = t.adds

let is_empty t = t.adds = 0

exception Hit

let intersects a b =
  if is_empty a || is_empty b then false
  else
    match (a.repr, b.repr) with
    | R_range ra, R_range rb -> ra.lo <= rb.hi && rb.lo <= ra.hi
    | R_seg sa, R_seg sb ->
        let n = Stdlib.min (Array.length sa.lo) (Array.length sb.lo) in
        let i = ref 0 and hit = ref false in
        while (not !hit) && !i < n do
          let s = !i in
          if sa.lo.(s) <= sb.hi.(s) && sb.lo.(s) <= sa.hi.(s) then hit := true;
          incr i
        done;
        !hit
    | R_bloom ba, R_bloom bb ->
        assert (ba.bits = bb.bits && ba.hashes = bb.hashes);
        (* Conservative: an address present in both sets every one of its
           bits in both filters; we test whether any word shares bits, which
           over-approximates membership overlap. *)
        let wa = ba.words and wb = bb.words in
        let n = Array.length wa in
        let i = ref 0 and hit = ref false in
        while (not !hit) && !i < n do
          if wa.(!i) land wb.(!i) <> 0 then hit := true;
          incr i
        done;
        !hit
    | R_exact ha, R_exact hb -> (
        let small, large =
          if Hashtbl.length ha <= Hashtbl.length hb then (ha, hb) else (hb, ha)
        in
        try
          Hashtbl.iter (fun addr () -> if Hashtbl.mem large addr then raise Hit) small;
          false
        with Hit -> true)
    | _ -> invalid_arg "Signature.intersects: kind mismatch"

let merge ~into src =
  match (into.repr, src.repr) with
  | R_range a, R_range b ->
      if b.lo < a.lo then a.lo <- b.lo;
      if b.hi > a.hi then a.hi <- b.hi;
      into.adds <- into.adds + src.adds
  | R_seg a, R_seg b ->
      let n = Stdlib.min (Array.length a.lo) (Array.length b.lo) in
      for s = 0 to n - 1 do
        if b.lo.(s) < a.lo.(s) then a.lo.(s) <- b.lo.(s);
        if b.hi.(s) > a.hi.(s) then a.hi.(s) <- b.hi.(s)
      done;
      into.adds <- into.adds + src.adds
  | R_bloom a, R_bloom b ->
      assert (a.bits = b.bits && a.hashes = b.hashes);
      for i = 0 to Array.length a.words - 1 do
        a.words.(i) <- a.words.(i) lor b.words.(i)
      done;
      into.adds <- into.adds + src.adds
  | R_exact a, R_exact b ->
      Hashtbl.iter (fun addr () -> Hashtbl.replace a addr ()) b;
      into.adds <- into.adds + src.adds
  | _ -> invalid_arg "Signature.merge: kind mismatch"

let pp ppf t =
  match t.repr with
  | R_range r ->
      if is_empty t then Format.fprintf ppf "range(empty)"
      else Format.fprintf ppf "range[%d, %d]" r.lo r.hi
  | R_seg sgm ->
      let populated = ref 0 in
      Array.iteri (fun s lo -> if lo <= sgm.hi.(s) then incr populated) sgm.lo;
      Format.fprintf ppf "segmented(%d segments)" !populated
  | R_bloom b -> Format.fprintf ppf "bloom(%d bits, %d adds)" b.bits t.adds
  | R_exact h -> Format.fprintf ppf "exact(%d addrs)" (Hashtbl.length h)
