(** Synchronization conditions forwarded from the DOMORE scheduler to the
    workers (dissertation §3.2.2).

    [Wait] tells a worker to stall until another worker finishes a given
    combined iteration; [No_sync] releases the iteration it names;
    [End_token] terminates a worker. *)

type t =
  | Wait of { dep_tid : int; dep_iter : int }
  | No_sync of { iter : int }
  | End_token

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

(** {2 Compact integer encoding}

    One OCaml immediate per condition, shared by the simulator's channels and
    the native backend's lock-free int queues (no allocation on either side).
    The low two bits carry the tag; tag [3] never appears in an encoded
    condition and is reserved for transport framing. *)

val max_tid : int
(** Largest encodable [dep_tid] (1023). *)

val max_iter : int
(** Largest encodable [dep_iter]. *)

val to_int : t -> int
(** @raise Invalid_argument when a field exceeds the encodable range. *)

val of_int : int -> t
(** Inverse of {!to_int}.  @raise Invalid_argument on malformed words. *)
