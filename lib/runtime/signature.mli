(** Memory-access signatures for speculation checking (dissertation §4.2.1).

    A signature is an over-approximate summary of the addresses a task
    accessed: intersection testing may report false positives but never false
    negatives.  SPECCROSS defaults to the min/max range scheme; a Bloom
    filter scheme suits scattered access patterns; the exact scheme (a hash
    set) is the oracle used by tests and by profiling. *)

type kind =
  | Range  (** minimum/maximum accessed address *)
  | Segmented of int array
      (** per-array min/max index ranges; the argument is the sorted list of
          array base offsets ({!Xinv_ir.Memory.bounds}) — the "range of array
          indices" scheme §5.2 describes.  Addresses outside the bounds clamp
          into the nearest segment (widening its range) rather than failing,
          so unexpected workload addresses degrade precision, not safety. *)
  | Bloom of { bits : int; hashes : int }
  | Exact

type t

val create : kind -> t

val kind : t -> kind

val add : t -> int -> unit
(** Record one accessed flat address. *)

val add_list : t -> int list -> unit

val add_array : t -> int array -> unit
(** As {!add_list} without requiring an intermediate list. *)

val add_iter : t -> ((int -> unit) -> unit) -> unit
(** [add_iter t feed] calls [feed] with a sink that records addresses;
    address producers (e.g. {!Xinv_ir.Slice} iterators) can stream into the
    signature without materializing a list. *)

val count : t -> int
(** Number of [add] calls (not distinct addresses). *)

val is_empty : t -> bool

val intersects : t -> t -> bool
(** May the two tasks have touched a common address?  Signatures must be of
    the same kind.

    Over-approximation contract: if the two tasks share an address, this
    returns [true] (no false negatives, for every kind); it may return
    [true] when they do not (false positives cost a needless
    misspeculation, never a missed dependence).  [Exact] signatures are
    precise.  The scan early-exits on the first overlapping range, segment,
    Bloom word or common address. *)

val merge : into:t -> t -> unit
(** Fold another signature of the same kind into [into]. *)

val pp : Format.formatter -> t -> unit
