(** DOMORE shadow memory (dissertation §3.2.1).

    Tracks, per flat address, the worker/iteration of the most recent write
    and of the most recent read, so the scheduler emits synchronization
    conditions for true, anti and output dependences but not for
    read-after-read.

    The table is an int-keyed open-addressing hash table whose slots are
    generation-stamped: {!reset} is O(1) (a generation bump) and never
    releases or rehashes storage.  Per-worker latest reads live in a flat
    matrix rather than per-slot association lists, so the note operations
    allocate nothing on the hot path (use the [_deps] variants). *)

type t

type entry = { tid : int; iter : int }

val create : unit -> t

val note_read : t -> int -> entry -> entry list
(** Record a read; returns the prior conflicting access (the last write, if
    by another worker) the reader must wait for. *)

val note_write : t -> int -> entry -> entry list
(** Record a write; returns prior conflicting accesses by other workers
    (last write and last read). *)

val last_write : t -> int -> entry option

val reset : t -> unit
(** O(1): bumps the slot generation.  Capacity is retained, so a table that
    is reset and refilled every invocation stops allocating entirely. *)

val entries : t -> int
(** Number of addresses currently tracked. *)

val capacity : t -> int
(** Internal slot capacity (diagnostics; lets tests check that {!reset} did
    not shrink or rehash the table). *)

(** Accumulator for one iteration's synchronization dependences: the
    distinct [(tid, iter)] pairs returned by the note operations, in
    first-seen order, deduplicated with a per-worker bitmask instead of the
    O(n²) [List.mem] scan.  Created once and {!Deps.clear}ed per iteration,
    so the dependence-collection hot path performs zero allocation. *)
module Deps : sig
  type t

  val create : unit -> t

  val clear : t -> unit

  val length : t -> int

  val iter : (tid:int -> iter:int -> unit) -> t -> unit
  (** Iterate in first-seen order (the order the seed implementation's
      [List.rev !deps] produced). *)

  val to_list : t -> (int * int) list
  (** [(tid, iter)] pairs, first-seen order; for tests and cold paths. *)
end

val note_read_deps : t -> int -> tid:int -> iter:int -> Deps.t -> unit
(** As {!note_read}, but folds the dependences into the accumulator without
    allocating. *)

val note_write_deps : t -> int -> tid:int -> iter:int -> Deps.t -> unit
(** As {!note_write}, but folds the dependences into the accumulator without
    allocating. *)
