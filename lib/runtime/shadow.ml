type entry = { tid : int; iter : int }

(* Open-addressing hash table keyed by flat address, with generation-stamped
   slots so [reset] is O(1): a slot belongs to the current generation iff
   [stamps.(i) = gen], and bumping [gen] frees every slot at once.  Within a
   generation slots only go free -> occupied, so linear-probe chains stay
   valid.

   Per slot we track the last write (worker/iteration) and, in a flat
   [cap * nw] matrix, the latest read iteration per worker together with a
   recency tick.  The tick reproduces the seed implementation's reader
   ordering (most recently reading worker first), which the simulator's
   makespans depend on. *)

type t = {
  mutable cap : int;  (* power of two *)
  mutable mask : int;
  mutable keys : int array;
  mutable stamps : int array;  (* generation that owns the slot; 0 = never *)
  mutable wtids : int array;  (* last writer tid, [no_entry] = none *)
  mutable witers : int array;
  mutable nw : int;  (* reader columns per slot (max tid + 1, rounded up) *)
  mutable r_iters : int array;  (* cap * nw; [no_entry] = absent *)
  mutable r_ticks : int array;  (* cap * nw; recency of the latest read *)
  mutable live : int;
  mutable gen : int;  (* starts at 1 so fresh [stamps] are all stale *)
  mutable tick : int;
  (* scratch for sorting a write's foreign readers by recency *)
  mutable sc_tid : int array;
  mutable sc_iter : int array;
  mutable sc_tick : int array;
}

let no_entry = min_int

let initial_cap = 4096

let initial_nw = 4

let create () =
  {
    cap = initial_cap;
    mask = initial_cap - 1;
    keys = Array.make initial_cap 0;
    stamps = Array.make initial_cap 0;
    wtids = Array.make initial_cap no_entry;
    witers = Array.make initial_cap no_entry;
    nw = initial_nw;
    r_iters = Array.make (initial_cap * initial_nw) no_entry;
    r_ticks = Array.make (initial_cap * initial_nw) 0;
    live = 0;
    gen = 1;
    tick = 0;
    sc_tid = Array.make initial_nw 0;
    sc_iter = Array.make initial_nw 0;
    sc_tick = Array.make initial_nw 0;
  }

(* Fibonacci-style multiplicative hash; [land mask] keeps it in range. *)
let hash_addr addr = (addr * 0x2545F4914F6CDD1D) lxor (addr lsr 7)

let clear_readers sh i =
  let base = i * sh.nw in
  for k = 0 to sh.nw - 1 do
    sh.r_iters.(base + k) <- no_entry
  done

(* Index of the slot holding [addr], or the first free slot of the probe
   chain (claimed, counted live, write/readers cleared). *)
let rec find_or_add sh addr =
  let mask = sh.mask in
  let i = ref (hash_addr addr land mask) in
  let found = ref (-1) in
  (try
     while true do
       let j = !i in
       if sh.stamps.(j) <> sh.gen then begin
         (* free this generation: claim it *)
         sh.keys.(j) <- addr;
         sh.stamps.(j) <- sh.gen;
         sh.wtids.(j) <- no_entry;
         clear_readers sh j;
         sh.live <- sh.live + 1;
         found := j;
         raise Exit
       end
       else if sh.keys.(j) = addr then begin
         found := j;
         raise Exit
       end
       else i := (j + 1) land mask
     done
   with Exit -> ());
  if sh.live * 4 > sh.cap * 3 then begin
    grow sh;
    find_or_add sh addr
  end
  else !found

and grow sh =
  let ocap = sh.cap and onw = sh.nw in
  let okeys = sh.keys and ostamps = sh.stamps in
  let owtids = sh.wtids and owiters = sh.witers in
  let oriters = sh.r_iters and orticks = sh.r_ticks in
  let ncap = ocap * 2 in
  sh.cap <- ncap;
  sh.mask <- ncap - 1;
  sh.keys <- Array.make ncap 0;
  sh.stamps <- Array.make ncap 0;
  sh.wtids <- Array.make ncap no_entry;
  sh.witers <- Array.make ncap no_entry;
  sh.r_iters <- Array.make (ncap * onw) no_entry;
  sh.r_ticks <- Array.make (ncap * onw) 0;
  for i = 0 to ocap - 1 do
    if ostamps.(i) = sh.gen then begin
      (* re-insert; the new table has room by construction *)
      let j = ref (hash_addr okeys.(i) land sh.mask) in
      while sh.stamps.(!j) = sh.gen do
        j := (!j + 1) land sh.mask
      done;
      let j = !j in
      sh.keys.(j) <- okeys.(i);
      sh.stamps.(j) <- sh.gen;
      sh.wtids.(j) <- owtids.(i);
      sh.witers.(j) <- owiters.(i);
      Array.blit oriters (i * onw) sh.r_iters (j * onw) onw;
      Array.blit orticks (i * onw) sh.r_ticks (j * onw) onw
    end
  done

(* Widen the reader matrix so column [tid] exists. *)
let grow_readers sh tid =
  let onw = sh.nw in
  let nnw =
    let n = ref onw in
    while tid >= !n do
      n := !n * 2
    done;
    !n
  in
  let nriters = Array.make (sh.cap * nnw) no_entry in
  let nrticks = Array.make (sh.cap * nnw) 0 in
  for i = 0 to sh.cap - 1 do
    Array.blit sh.r_iters (i * onw) nriters (i * nnw) onw;
    Array.blit sh.r_ticks (i * onw) nrticks (i * nnw) onw
  done;
  sh.nw <- nnw;
  sh.r_iters <- nriters;
  sh.r_ticks <- nrticks;
  sh.sc_tid <- Array.make nnw 0;
  sh.sc_iter <- Array.make nnw 0;
  sh.sc_tick <- Array.make nnw 0

(* Core note operations, emitting each synchronization dependence through
   [emit] in the order the seed implementation produced them. *)

let note_read_emit sh addr ~tid ~iter emit =
  if tid >= sh.nw then grow_readers sh tid;
  let i = find_or_add sh addr in
  if sh.wtids.(i) <> no_entry && sh.wtids.(i) <> tid then
    emit ~tid:sh.wtids.(i) ~iter:sh.witers.(i);
  let o = (i * sh.nw) + tid in
  let prev = sh.r_iters.(o) in
  sh.r_iters.(o) <- (if prev = no_entry || iter > prev then iter else prev);
  sh.r_ticks.(o) <- sh.tick;
  sh.tick <- sh.tick + 1

let note_write_emit sh addr ~tid ~iter emit =
  if tid >= sh.nw then grow_readers sh tid;
  let i = find_or_add sh addr in
  if sh.wtids.(i) <> no_entry && sh.wtids.(i) <> tid then
    emit ~tid:sh.wtids.(i) ~iter:sh.witers.(i);
  (* gather foreign readers, most recent first (insertion sort on tick) *)
  let base = i * sh.nw in
  let n = ref 0 in
  for k = 0 to sh.nw - 1 do
    let it = sh.r_iters.(base + k) in
    if it <> no_entry then begin
      if k <> tid then begin
        let tk = sh.r_ticks.(base + k) in
        let j = ref !n in
        while !j > 0 && sh.sc_tick.(!j - 1) < tk do
          sh.sc_tid.(!j) <- sh.sc_tid.(!j - 1);
          sh.sc_iter.(!j) <- sh.sc_iter.(!j - 1);
          sh.sc_tick.(!j) <- sh.sc_tick.(!j - 1);
          decr j
        done;
        sh.sc_tid.(!j) <- k;
        sh.sc_iter.(!j) <- it;
        sh.sc_tick.(!j) <- tk;
        incr n
      end;
      sh.r_iters.(base + k) <- no_entry
    end
  done;
  for j = 0 to !n - 1 do
    emit ~tid:sh.sc_tid.(j) ~iter:sh.sc_iter.(j)
  done;
  sh.wtids.(i) <- tid;
  sh.witers.(i) <- iter

(* ---------- list-returning API (compatibility; tests, cold paths) ---------- *)

let collect f =
  let acc = ref [] in
  f (fun ~tid ~iter -> acc := { tid; iter } :: !acc);
  List.rev !acc

let note_read sh addr e = collect (note_read_emit sh addr ~tid:e.tid ~iter:e.iter)

let note_write sh addr e = collect (note_write_emit sh addr ~tid:e.tid ~iter:e.iter)

let last_write sh addr =
  let mask = sh.mask in
  let i = ref (hash_addr addr land mask) in
  let res = ref None in
  (try
     while true do
       let j = !i in
       if sh.stamps.(j) <> sh.gen then raise Exit
       else if sh.keys.(j) = addr then begin
         if sh.wtids.(j) <> no_entry then
           res := Some { tid = sh.wtids.(j); iter = sh.witers.(j) };
         raise Exit
       end
       else i := (j + 1) land mask
     done
   with Exit -> ());
  !res

let reset sh =
  sh.gen <- sh.gen + 1;
  sh.live <- 0

let entries sh = sh.live

let capacity sh = sh.cap

(* ---------- per-iteration dependence accumulator ---------- *)

module Deps = struct
  (* Distinct (tid, iter) pairs in first-seen order.  A worker bitmask makes
     the common "first dependence on this worker" case O(1); only when the
     worker's bit is already set do we scan the (tiny) pair list. *)
  type t = {
    mutable tids : int array;
    mutable iters : int array;
    mutable n : int;
    mutable mask : int;
  }

  let create () = { tids = Array.make 8 0; iters = Array.make 8 0; n = 0; mask = 0 }

  let clear d =
    d.n <- 0;
    d.mask <- 0

  let length d = d.n

  let add d ~tid ~iter =
    let bit = if tid < 62 then 1 lsl tid else 0 in
    let maybe_seen = if tid < 62 then d.mask land bit <> 0 else d.n > 0 in
    let dup =
      maybe_seen
      &&
      let rec scan j = j < d.n && ((d.tids.(j) = tid && d.iters.(j) = iter) || scan (j + 1)) in
      scan 0
    in
    if not dup then begin
      if d.n = Array.length d.tids then begin
        let ntids = Array.make (2 * d.n) 0 and niters = Array.make (2 * d.n) 0 in
        Array.blit d.tids 0 ntids 0 d.n;
        Array.blit d.iters 0 niters 0 d.n;
        d.tids <- ntids;
        d.iters <- niters
      end;
      d.tids.(d.n) <- tid;
      d.iters.(d.n) <- iter;
      d.mask <- d.mask lor bit;
      d.n <- d.n + 1
    end

  let iter f d =
    for j = 0 to d.n - 1 do
      f ~tid:d.tids.(j) ~iter:d.iters.(j)
    done

  let to_list d =
    let acc = ref [] in
    for j = d.n - 1 downto 0 do
      acc := (d.tids.(j), d.iters.(j)) :: !acc
    done;
    !acc
end

let note_read_deps sh addr ~tid ~iter deps = note_read_emit sh addr ~tid ~iter (Deps.add deps)

let note_write_deps sh addr ~tid ~iter deps =
  note_write_emit sh addr ~tid ~iter (Deps.add deps)
