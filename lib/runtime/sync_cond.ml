type t =
  | Wait of { dep_tid : int; dep_iter : int }
  | No_sync of { iter : int }
  | End_token

let pp ppf = function
  | Wait { dep_tid; dep_iter } -> Format.fprintf ppf "(T%d, I%d)" dep_tid dep_iter
  | No_sync { iter } -> Format.fprintf ppf "(NO_SYNC, I%d)" iter
  | End_token -> Format.fprintf ppf "END_TOKEN"

let equal a b = a = b

(* Compact tagged-int encoding shared by the simulator's channels and the
   native backend's atomic ring queues.  Low two bits are the tag; tag 3 is
   reserved for transport-level framing (the native DOMORE queue uses it for
   Do-task headers).  Wait packs the dependence thread in 10 bits, leaving
   ~50 bits for the iteration number on 64-bit systems. *)

let tid_bits = 10
let max_tid = (1 lsl tid_bits) - 1
let max_iter = max_int lsr (tid_bits + 2)

let to_int = function
  | End_token -> 0
  | No_sync { iter } ->
      if iter < 0 || iter > max_int lsr 2 then
        invalid_arg (Printf.sprintf "Sync_cond.to_int: iter %d out of range" iter);
      1 lor (iter lsl 2)
  | Wait { dep_tid; dep_iter } ->
      if dep_tid < 0 || dep_tid > max_tid then
        invalid_arg (Printf.sprintf "Sync_cond.to_int: dep_tid %d out of range" dep_tid);
      if dep_iter < 0 || dep_iter > max_iter then
        invalid_arg
          (Printf.sprintf "Sync_cond.to_int: dep_iter %d out of range" dep_iter);
      2 lor (dep_tid lsl 2) lor (dep_iter lsl (tid_bits + 2))

let of_int w =
  if w < 0 then invalid_arg (Printf.sprintf "Sync_cond.of_int: negative word %d" w);
  match w land 3 with
  | 0 ->
      if w <> 0 then invalid_arg (Printf.sprintf "Sync_cond.of_int: bad end token %d" w);
      End_token
  | 1 -> No_sync { iter = w lsr 2 }
  | 2 ->
      Wait { dep_tid = (w lsr 2) land max_tid; dep_iter = w lsr (tid_bits + 2) }
  | _ -> invalid_arg (Printf.sprintf "Sync_cond.of_int: reserved tag in word %d" w)
