(** Named counters, gauges and fixed-bucket histograms.

    Registration ([counter], [gauge], [histogram]) is the cold path and may
    scan the registry; instrumented code pre-registers handles once and the
    per-event operations ([incr], [add], [set], [acc], [observe]) are O(1)
    field updates with no lookups and no allocation. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;
      (** strictly increasing bucket upper bounds; an implicit overflow
          bucket collects observations above the last bound *)
  counts : int array;  (** length [Array.length bounds + 1] *)
  mutable h_count : int;
  mutable h_sum : float;
}

type t

val create : unit -> t

val counter : t -> string -> counter
(** Registers (or returns the already-registered) counter under this name. *)

val gauge : t -> string -> gauge

val histogram : t -> ?bounds:float array -> string -> histogram
(** Default bounds are powers of two from 1 to 4096. *)

val incr : counter -> unit

val add : counter -> int -> unit

val set : gauge -> float -> unit

val acc : gauge -> float -> unit
(** Accumulate: [acc g x] adds [x] to the gauge (cycle totals). *)

val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** [quantile h q] returns the upper bound of the bucket containing the
    [q]-quantile (0 when the histogram is empty). *)

val counters : t -> (string * int) list
(** Registration order. *)

val gauges : t -> (string * float) list

val histograms : t -> histogram list
