type kind =
  | Dispatch
  | Sync_send
  | Sync_recv
  | Barrier_arrive
  | Barrier_release
  | Epoch_commit
  | Misspec
  | Stall_begin
  | Stall_end
  | Queue_sample
  | Mark

let kind_code = function
  | Dispatch -> 0
  | Sync_send -> 1
  | Sync_recv -> 2
  | Barrier_arrive -> 3
  | Barrier_release -> 4
  | Epoch_commit -> 5
  | Misspec -> 6
  | Stall_begin -> 7
  | Stall_end -> 8
  | Queue_sample -> 9
  | Mark -> 10

let kind_of_code = function
  | 0 -> Some Dispatch
  | 1 -> Some Sync_send
  | 2 -> Some Sync_recv
  | 3 -> Some Barrier_arrive
  | 4 -> Some Barrier_release
  | 5 -> Some Epoch_commit
  | 6 -> Some Misspec
  | 7 -> Some Stall_begin
  | 8 -> Some Stall_end
  | 9 -> Some Queue_sample
  | 10 -> Some Mark
  | _ -> None

let kind_name = function
  | Dispatch -> "dispatch"
  | Sync_send -> "sync-send"
  | Sync_recv -> "sync-recv"
  | Barrier_arrive -> "barrier-arrive"
  | Barrier_release -> "barrier-release"
  | Epoch_commit -> "epoch-commit"
  | Misspec -> "misspec"
  | Stall_begin -> "stall-begin"
  | Stall_end -> "stall-end"
  | Queue_sample -> "queue-sample"
  | Mark -> "mark"

(* Must match Xinv_native.Stallcat.index order; obs cannot depend on native,
   so the table is duplicated here and pinned by a parity test. *)
let cause_names =
  [|
    "queue-empty"; "queue-full"; "sync-cond"; "barrier"; "checker-lag";
    "throttle"; "rally";
  |]

let ncauses = Array.length cause_names

let cause_name i =
  if i >= 0 && i < ncauses then cause_names.(i) else "unknown"

type entry = {
  f_at : int;
  f_domain : int;
  f_kind : kind;
  f_a : int;
  f_b : int;
}

(* Slots are 4 consecutive ints: [ts; kind-code; a; b].  [idx] is the next
   write offset (avoids a division on the hot path), [total] the monotonic
   write count. *)
type ring = { data : int array; cap : int; mutable idx : int; mutable total : int }

type t = { rings : ring array; t0 : float }

let default_capacity = 8192

let create ?(capacity = default_capacity) ~domains () =
  if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
  if domains < 1 then invalid_arg "Flight.create: domains < 1";
  {
    rings =
      Array.init domains (fun _ ->
          { data = Array.make (4 * capacity) 0; cap = capacity; idx = 0; total = 0 });
    t0 = Unix.gettimeofday ();
  }

let record t ~domain kind ~a ~b =
  let r = t.rings.(domain) in
  let o = r.idx in
  r.data.(o) <- int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e9);
  r.data.(o + 1) <- kind_code kind;
  r.data.(o + 2) <- a;
  r.data.(o + 3) <- b;
  let o' = o + 4 in
  r.idx <- (if o' = 4 * r.cap then 0 else o');
  r.total <- r.total + 1

let mark t ~domain v = record t ~domain Mark ~a:v ~b:0

let domains t = Array.length t.rings

let capacity t = t.rings.(0).cap

let length t ~domain =
  let r = t.rings.(domain) in
  if r.total < r.cap then r.total else r.cap

let recorded t ~domain = t.rings.(domain).total

let drops t ~domain =
  let r = t.rings.(domain) in
  if r.total > r.cap then r.total - r.cap else 0

let total_drops t =
  Array.fold_left (fun acc r -> acc + if r.total > r.cap then r.total - r.cap else 0) 0 t.rings

let total_length t =
  Array.fold_left (fun acc r -> acc + min r.total r.cap) 0 t.rings

let read ?(since = 0) t ~domain =
  let r = t.rings.(domain) in
  let total = r.total in
  let n = if total < r.cap then total else r.cap in
  let oldest = total - n in
  let acc = ref [] in
  for k = n - 1 downto 0 do
    let slot = (oldest + k) mod r.cap in
    let o = 4 * slot in
    let ts = r.data.(o) in
    if ts >= since then
      match kind_of_code r.data.(o + 1) with
      | Some kind ->
          acc :=
            { f_at = ts; f_domain = domain; f_kind = kind; f_a = r.data.(o + 2); f_b = r.data.(o + 3) }
            :: !acc
      | None -> ()
  done;
  !acc

let entries t =
  let all = ref [] in
  for d = Array.length t.rings - 1 downto 0 do
    all := List.rev_append (List.rev (read t ~domain:d)) !all
  done;
  List.stable_sort (fun a b -> compare a.f_at b.f_at) !all

let elapsed_ns t =
  let m = ref 0 in
  Array.iteri
    (fun d _ ->
      List.iter (fun e -> if e.f_at > !m then m := e.f_at) (read t ~domain:d))
    t.rings;
  !m
