type stall_cause =
  | Sync_cond
  | Barrier
  | Queue_empty
  | Queue_full
  | Checker_lag
  | Checkpoint_wait
  | Throttle

let stall_cause_name = function
  | Sync_cond -> "sync-cond"
  | Barrier -> "barrier"
  | Queue_empty -> "queue-empty"
  | Queue_full -> "queue-full"
  | Checker_lag -> "checker-lag"
  | Checkpoint_wait -> "checkpoint-wait"
  | Throttle -> "throttle"

let all_stall_causes =
  [ Sync_cond; Barrier; Queue_empty; Queue_full; Checker_lag; Checkpoint_wait; Throttle ]

let stall_cause_of_name = function
  | "sync-cond" -> Some Sync_cond
  | "barrier" -> Some Barrier
  | "queue-empty" -> Some Queue_empty
  | "queue-full" -> Some Queue_full
  | "checker-lag" -> Some Checker_lag
  | "checkpoint-wait" -> Some Checkpoint_wait
  | "throttle" | "rally" -> Some Throttle
  | _ -> None

type t =
  | Sync_forwarded of { to_tid : int; dep_tid : int; dep_iter : int }
  | Worker_stalled of { cause : stall_cause; dur : float }
  | Queue_sampled of { queue : int; len : int }
  | Task_dispatched of { iter : int; to_tid : int }
  | Epoch_committed of { epoch : int }
  | Misspeculated of { epoch : int; worker : int }
  | Recovery_finished of { dur : float; epochs_redone : int }
  | Checkpoint_forked of { epoch : int }
  | Signature_checked of { worker : int; epoch : int; window : int; conflict : bool }
  | Barrier_crossed of { episode : int }
  | Fault_injected of { kind : string; domain : int; site : int }
  | Run_stalled of { role : string; waiting_for : string; waited_ns : float }
  | Degraded of { from_ : string; to_ : string; reason : string }
  | Fingerprint_hit of { fp : string }
  | Fingerprint_miss of { fp : string; reason : string }
  | Policy_applied of { source : string; policy : string }
  | Tune_trial of { policy : string; wall_ns : float; pruned : bool }
  | Tune_switch of { from_ : string; to_ : string; reason : string }

let name = function
  | Sync_forwarded _ -> "sync_forwarded"
  | Worker_stalled _ -> "worker_stalled"
  | Queue_sampled _ -> "queue_sampled"
  | Task_dispatched _ -> "task_dispatched"
  | Epoch_committed _ -> "epoch_committed"
  | Misspeculated _ -> "misspeculated"
  | Recovery_finished _ -> "recovery_finished"
  | Checkpoint_forked _ -> "checkpoint_forked"
  | Signature_checked _ -> "signature_checked"
  | Barrier_crossed _ -> "barrier_crossed"
  | Fault_injected _ -> "fault_injected"
  | Run_stalled _ -> "run_stalled"
  | Degraded _ -> "degraded"
  | Fingerprint_hit _ -> "fingerprint_hit"
  | Fingerprint_miss _ -> "fingerprint_miss"
  | Policy_applied _ -> "policy_applied"
  | Tune_trial _ -> "tune_trial"
  | Tune_switch _ -> "tune_switch"

type arg = I of int | F of float | B of bool | S of string

let args = function
  | Sync_forwarded { to_tid; dep_tid; dep_iter } ->
      [ ("to_tid", I to_tid); ("dep_tid", I dep_tid); ("dep_iter", I dep_iter) ]
  | Worker_stalled { cause; dur } ->
      [ ("cause", S (stall_cause_name cause)); ("dur", F dur) ]
  | Queue_sampled { queue; len } -> [ ("queue", I queue); ("len", I len) ]
  | Task_dispatched { iter; to_tid } -> [ ("iter", I iter); ("to_tid", I to_tid) ]
  | Epoch_committed { epoch } -> [ ("epoch", I epoch) ]
  | Misspeculated { epoch; worker } -> [ ("epoch", I epoch); ("worker", I worker) ]
  | Recovery_finished { dur; epochs_redone } ->
      [ ("dur", F dur); ("epochs_redone", I epochs_redone) ]
  | Checkpoint_forked { epoch } -> [ ("epoch", I epoch) ]
  | Signature_checked { worker; epoch; window; conflict } ->
      [ ("worker", I worker); ("epoch", I epoch); ("window", I window); ("conflict", B conflict) ]
  | Barrier_crossed { episode } -> [ ("episode", I episode) ]
  | Fault_injected { kind; domain; site } ->
      [ ("kind", S kind); ("domain", I domain); ("site", I site) ]
  | Run_stalled { role; waiting_for; waited_ns } ->
      [ ("role", S role); ("waiting_for", S waiting_for); ("waited_ns", F waited_ns) ]
  | Degraded { from_; to_; reason } ->
      [ ("from", S from_); ("to", S to_); ("reason", S reason) ]
  | Fingerprint_hit { fp } -> [ ("fp", S fp) ]
  | Fingerprint_miss { fp; reason } -> [ ("fp", S fp); ("reason", S reason) ]
  | Policy_applied { source; policy } ->
      [ ("source", S source); ("policy", S policy) ]
  | Tune_trial { policy; wall_ns; pruned } ->
      [ ("policy", S policy); ("wall_ns", F wall_ns); ("pruned", B pruned) ]
  | Tune_switch { from_; to_; reason } ->
      [ ("from", S from_); ("to", S to_); ("reason", S reason) ]
