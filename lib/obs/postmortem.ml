let tail_per_domain = 32

let render ~workload ~technique ~attempt ~reason ~event ?degraded_to ?counters
    ?flight () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# xinv-postmortem/1";
  line "workload: %s" workload;
  line "technique: %s" technique;
  line "backend: native";
  line "attempt: %d" attempt;
  line "reason: %s" reason;
  line "event: %s" event;
  (match degraded_to with Some t -> line "degraded-to: %s" t | None -> ());
  let verdict =
    match flight with Some f -> Some (Critpath.analyze f) | None -> None
  in
  (match flight with
  | Some f ->
      line "flight-events: %d" (Flight.total_length f);
      line "flight-drops: %d" (Flight.total_drops f)
  | None ->
      line "flight-events: 0";
      line "flight-drops: 0");
  (* Always list every cause: attribution stays parseable and non-empty even
     when the fault fired before any wait blocked. *)
  line "stall-attribution:";
  let stalls =
    match verdict with
    | Some v -> v.Critpath.v_stalls
    | None -> Array.to_list (Array.map (fun n -> (n, 0.)) Flight.cause_names)
  in
  List.iter (fun (name, ns) -> line "  %-12s %.0f" name ns) stalls;
  (match verdict with
  | Some v ->
      line "bottleneck: %s" v.Critpath.v_bottleneck;
      line "critical-path: %d edges %.0f ns" v.Critpath.v_chain
        v.Critpath.v_chain_ns
  | None -> line "bottleneck: unknown (no flight recording)");
  (match counters with
  | Some cs when cs <> [] ->
      line "counters:";
      List.iter (fun (name, v) -> line "  %-24s %d" name v) cs
  | _ -> ());
  (match flight with
  | Some f ->
      line "events:";
      for d = 0 to Flight.domains f - 1 do
        let es = Flight.read f ~domain:d in
        let n = List.length es in
        let es =
          if n > tail_per_domain then
            List.filteri (fun i _ -> i >= n - tail_per_domain) es
          else es
        in
        List.iter
          (fun (e : Flight.entry) ->
            line "  +%dns d%d %s a=%d b=%d" e.Flight.f_at e.Flight.f_domain
              (Flight.kind_name e.Flight.f_kind)
              e.Flight.f_a e.Flight.f_b)
          es
      done
  | None -> ());
  line "# end";
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write ~dir ~base ~workload ~technique ~attempt ~reason ~event ?degraded_to
    ?counters ?flight () =
  mkdir_p dir;
  let txt = Filename.concat dir (base ^ ".txt") in
  write_file txt
    (render ~workload ~technique ~attempt ~reason ~event ?degraded_to ?counters
       ?flight ());
  let trace =
    match flight with
    | Some f ->
        let path = Filename.concat dir (base ^ ".trace.json") in
        write_file path (Perfetto.flight_to_json f);
        Some path
    | None -> None
  in
  (txt, trace)
