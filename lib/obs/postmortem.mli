(** Postmortem dumps: on a failed native attempt (injected fault, watchdog
    stall, cancellation), snapshot the flight rings plus counters into a
    line-oriented text report and a companion Perfetto trace.

    The text format is deliberately grep-able: a [key: value] header block
    ([reason:], [event:], [degraded-to:], ...), a [stall-attribution:]
    section that always lists every stall cause (so attribution is non-empty
    even for faults that fired before any wait blocked), a [bottleneck:]
    line from {!Critpath}, a [counters:] section and a tail of recent
    flight events per domain. *)

val render :
  workload:string ->
  technique:string ->
  attempt:int ->
  reason:string ->
  event:string ->
  ?degraded_to:string ->
  ?counters:(string * int) list ->
  ?flight:Flight.t ->
  unit ->
  string
(** The postmortem text.  [event] is the machine-readable one-liner for the
    triggering exception (e.g. ["fault_injected kind=worker-raise domain=2
    site=2"]); [reason] is the human-readable form. *)

val write :
  dir:string ->
  base:string ->
  workload:string ->
  technique:string ->
  attempt:int ->
  reason:string ->
  event:string ->
  ?degraded_to:string ->
  ?counters:(string * int) list ->
  ?flight:Flight.t ->
  unit ->
  string * string option
(** Creates [dir] if needed, writes [<dir>/<base>.txt] and — when a flight
    recording is attached — [<dir>/<base>.trace.json] (Perfetto).  Returns
    the text path and the optional trace path. *)
