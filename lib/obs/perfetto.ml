module Sim = Xinv_sim

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* All numbers as plain floats: trace_event timestamps are microseconds and
   fractional values are accepted by both importers. *)
let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let add_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (escape k));
      match v with
      | Event.I n -> Buffer.add_string b (string_of_int n)
      | Event.F f -> Buffer.add_string b (num f)
      | Event.B v -> Buffer.add_string b (if v then "true" else "false")
      | Event.S s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (escape s)))
    args;
  Buffer.add_char b '}'

let to_json ?(process_name = "crossinv-sim") ~engine ?recorder () =
  let b = Buffer.create 65536 in
  let first = ref true in
  let event emit =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "    {";
    emit ();
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\n  \"traceEvents\": [\n";
  event (fun () ->
      Buffer.add_string b
        (Printf.sprintf
           "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,");
      add_args b [ ("name", Event.S process_name) ]);
  for tid = 0 to Sim.Engine.thread_count engine - 1 do
    event (fun () ->
        Buffer.add_string b
          (Printf.sprintf
             "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"ts\":0," tid);
        add_args b [ ("name", Event.S (Sim.Engine.name_of engine tid)) ])
  done;
  List.iter
    (fun (seg : Sim.Trace.segment) ->
      event (fun () ->
          Buffer.add_string b
            (Printf.sprintf
               "\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d"
               (escape seg.Sim.Trace.label)
               (escape (Sim.Category.to_string seg.Sim.Trace.cat))
               (num seg.Sim.Trace.t_start)
               (num (seg.Sim.Trace.t_end -. seg.Sim.Trace.t_start))
               seg.Sim.Trace.tid)))
    (Sim.Engine.segments engine);
  (match recorder with
  | None -> ()
  | Some r ->
      Recorder.iter
        (fun (e : Recorder.entry) ->
          match e.Recorder.ev with
          | Event.Queue_sampled { queue; len } ->
              event (fun () ->
                  Buffer.add_string b
                    (Printf.sprintf
                       "\"name\":\"queue%d\",\"ph\":\"C\",\"ts\":%s,\"pid\":0,\"tid\":%d,"
                       queue (num e.Recorder.at) e.Recorder.tid);
                  add_args b [ ("len", Event.I len) ])
          | ev ->
              event (fun () ->
                  Buffer.add_string b
                    (Printf.sprintf
                       "\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":0,\"tid\":%d,"
                       (Event.name ev) (num e.Recorder.at) e.Recorder.tid);
                  add_args b (Event.args ev)))
        r);
  Buffer.add_string b "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents b

let flight_to_json ?(process_name = "crossinv-native") flight =
  let b = Buffer.create 65536 in
  let first = ref true in
  let event emit =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "    {";
    emit ();
    Buffer.add_char b '}'
  in
  let us ns = float_of_int ns /. 1e3 in
  Buffer.add_string b "{\n  \"traceEvents\": [\n";
  event (fun () ->
      Buffer.add_string b
        "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,";
      add_args b [ ("name", Event.S process_name) ]);
  for d = 0 to Flight.domains flight - 1 do
    event (fun () ->
        Buffer.add_string b
          (Printf.sprintf
             "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"ts\":0," d);
        add_args b [ ("name", Event.S (Printf.sprintf "domain %d" d)) ])
  done;
  List.iter
    (fun (e : Flight.entry) ->
      match e.Flight.f_kind with
      | Flight.Stall_end ->
          (* Place the duration event where the stall began. *)
          event (fun () ->
              Buffer.add_string b
                (Printf.sprintf
                   "\"name\":\"stall:%s\",\"cat\":\"stall\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":0,\"tid\":%d"
                   (escape (Flight.cause_name e.Flight.f_a))
                   (num (us (e.Flight.f_at - e.Flight.f_b)))
                   (num (us e.Flight.f_b))
                   e.Flight.f_domain))
      | Flight.Stall_begin -> ()
      | Flight.Queue_sample ->
          event (fun () ->
              Buffer.add_string b
                (Printf.sprintf
                   "\"name\":\"queue%d\",\"ph\":\"C\",\"ts\":%s,\"pid\":0,\"tid\":%d,"
                   e.Flight.f_a
                   (num (us e.Flight.f_at))
                   e.Flight.f_domain);
              add_args b [ ("len", Event.I e.Flight.f_b) ])
      | k ->
          event (fun () ->
              Buffer.add_string b
                (Printf.sprintf
                   "\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":0,\"tid\":%d,"
                   (escape (Flight.kind_name k))
                   (num (us e.Flight.f_at))
                   e.Flight.f_domain);
              add_args b [ ("a", Event.I e.Flight.f_a); ("b", Event.I e.Flight.f_b) ]))
    (Flight.entries flight);
  Buffer.add_string b "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents b
