(** Critical-path analysis over a {!Flight} recording.

    Replays the merged event stream into a per-run verdict: the longest
    chain of dispatch → sync → commit edges (an approximation of the run's
    dependence critical path, counting cross-domain edges and epoch
    commits), wall time attributed per stall cause per domain, and a
    one-line "bottleneck: X" explanation. *)

type verdict = {
  v_wall_ns : float;  (** wall clock attributed to the run *)
  v_events : int;  (** flight entries retained *)
  v_drops : int;  (** flight entries lost to ring overwrite *)
  v_chain : int;  (** edges on the longest dispatch→sync→commit chain *)
  v_chain_ns : float;  (** wall span of that chain *)
  v_stalls : (string * float) list;
      (** ns blocked per stall cause, descending, all causes listed *)
  v_stall_domains : (int * (string * float) list) list;
      (** per-domain nonzero stall attribution, from the flight events *)
  v_dominant : string option;  (** cause with the largest attribution *)
  v_bottleneck : string;  (** one-line explanation *)
}

val analyze :
  ?wall_ns:float -> ?stalls:(string * float) list -> Flight.t -> verdict
(** [analyze flight] derives stall attribution from the recording's
    [Stall_end] events.  Pass [?stalls] (e.g. [Nrun.stalls] from the
    timed run) to substitute authoritative totals — flight-derived numbers
    can undercount after drop-oldest overwrite — guaranteeing the verdict's
    [v_dominant] matches the run's [dominant_stall].  [?wall_ns] defaults
    to the recording's elapsed time. *)

val to_json : verdict -> string
(** Compact JSON object (no trailing newline) for embedding in bench rows
    and [stats --json] output. *)

val pp : Format.formatter -> verdict -> unit
