(** Stall diagnosis and utilization analysis over one simulated run.

    Combines the engine's per-thread per-category cycle accounting with the
    typed event log into the numbers Chapter 5 of the dissertation argues
    with: per-thread utilization, stall-time breakdown by cause, queue
    occupancy percentiles, and misspeculation cost attribution. *)

type thread_report = {
  tid : int;
  thread_name : string;
  busy : float;  (** cycles charged to any category *)
  work : float;  (** Work + Sequential cycles *)
  stall : float;  (** Barrier_wait + Sync_wait + Queue + Checker + Checkpoint *)
  utilization : float;  (** work / makespan *)
}

type percentiles = { p50 : float; p90 : float; p99 : float; pmax : float }

type t = {
  makespan : float;
  threads : int;
  utilization : float;  (** (Work + Sequential) / (threads * makespan) *)
  per_thread : thread_report list;
  stall_by_cause : (string * float) list;
      (** stall/overhead cycles per engine category, all threads summed *)
  stall_events : (string * float) list;
      (** blocked time per {!Event.stall_cause}, from [Worker_stalled] events *)
  sync_forwarded : int;  (** DOMORE synchronization conditions forwarded *)
  queue_occupancy : percentiles option;  (** from [Queue_sampled] events *)
  epochs_committed : int;
  misspeculations : int;
  recovery_cycles : float;  (** virtual time inside misspeculation recovery *)
  epochs_redone : int;
  checkpoints : int;
  signature_checks : int;
  signatures_compared : int;  (** sum of checking-window sizes *)
  barrier_crossings : int;
  counters : (string * int) list;  (** metrics registry dump *)
  gauges : (string * float) list;
  events_logged : int;
}

val build : engine:Xinv_sim.Engine.t -> ?recorder:Recorder.t -> unit -> t

val pp : Format.formatter -> t -> unit
(** Human-readable stats: headline counters, worker stall time by cause,
    per-thread utilization, queue occupancy, speculation summary. *)

val to_json : t -> string
(** The machine-readable dump ([xinv-stats/1] schema, see EXPERIMENTS.md). *)

val to_csv : t -> string
(** Flat [key,value] lines covering the same scalar fields as the JSON. *)
