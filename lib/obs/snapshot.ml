type hist = {
  s_name : string;
  s_bounds : float array;
  s_counts : int array;
  s_count : int;
  s_sum : float;
}

type t = {
  s_at : float;
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_hists : hist list;
}

let take m =
  {
    s_at = Unix.gettimeofday ();
    s_counters = Metrics.counters m;
    s_gauges = Metrics.gauges m;
    s_hists =
      List.map
        (fun (h : Metrics.histogram) ->
          {
            s_name = h.Metrics.h_name;
            s_bounds = Array.copy h.Metrics.bounds;
            s_counts = Array.copy h.Metrics.counts;
            s_count = h.Metrics.h_count;
            s_sum = h.Metrics.h_sum;
          })
        (Metrics.histograms m);
  }

let counter t name = List.assoc_opt name t.s_counters

let gauge t name = List.assoc_opt name t.s_gauges

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_openmetrics ?(prefix = "xinv") t =
  let b = Buffer.create 1024 in
  let name n = prefix ^ "_" ^ sanitize n in
  List.iter
    (fun (n, v) ->
      let n = name n in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" n v))
    t.s_counters;
  List.iter
    (fun (n, v) ->
      let n = name n in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (fnum v)))
    t.s_gauges;
  List.iter
    (fun h ->
      let n = name h.s_name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (fnum h.s_bounds.(i)) !cum))
        (Array.sub h.s_counts 0 (Array.length h.s_bounds));
      cum := !cum + h.s_counts.(Array.length h.s_bounds);
      Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n !cum);
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.s_count);
      Buffer.add_string b (Printf.sprintf "%s_sum %s\n" n (fnum h.s_sum)))
    t.s_hists;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let pp ppf t =
  List.iter (fun (n, v) -> Format.fprintf ppf "%-28s %d@." n v) t.s_counters;
  List.iter (fun (n, v) -> Format.fprintf ppf "%-28s %s@." n (fnum v)) t.s_gauges;
  List.iter
    (fun h ->
      Format.fprintf ppf "%-28s count=%d sum=%s@." h.s_name h.s_count (fnum h.s_sum))
    t.s_hists
