(** Chrome/Perfetto [trace_event] JSON export.

    Builds one process with one track per simulated thread: engine trace
    segments become duration events ([ph:"X"]), typed {!Event} records become
    instant events ([ph:"i"]) on the recording thread's track, and
    [Queue_sampled] records become counter events ([ph:"C"]) so Perfetto
    draws queue occupancy as a graph.  Simulated cycles are exported as
    microseconds.  The output loads in https://ui.perfetto.dev and in
    [chrome://tracing]. *)

val to_json :
  ?process_name:string ->
  engine:Xinv_sim.Engine.t ->
  ?recorder:Recorder.t ->
  unit ->
  string
(** The engine provides thread names and (when created with [~trace:true])
    the duration segments; the recorder, when given, provides instant and
    counter events. *)

val flight_to_json : ?process_name:string -> Flight.t -> string
(** Wall-clock export of a native {!Flight} recording: one track per
    domain, [Stall_end] entries become duration events (placed at
    [ts - dur] and labelled by stall cause), [Queue_sample] entries become
    counter tracks, everything else renders as instant events.
    Nanosecond flight timestamps are exported as microseconds. *)
