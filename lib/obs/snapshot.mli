(** Consistent point-in-time view of a {!Metrics} registry plus an
    OpenMetrics text exposition.

    [take] copies every counter, gauge and histogram value in one pass, so
    later mutation of the registry does not disturb the snapshot — this is
    the stats surface a future [xinv serve] daemon mounts on a socket, and
    what [xinv top --openmetrics] prints today. *)

type hist = {
  s_name : string;
  s_bounds : float array;
  s_counts : int array;  (** length [Array.length s_bounds + 1] *)
  s_count : int;
  s_sum : float;
}

type t = {
  s_at : float;  (** Unix time the snapshot was taken *)
  s_counters : (string * int) list;  (** registration order *)
  s_gauges : (string * float) list;
  s_hists : hist list;
}

val take : Metrics.t -> t

val counter : t -> string -> int option

val gauge : t -> string -> float option

val to_openmetrics : ?prefix:string -> t -> string
(** OpenMetrics 1.0 text exposition.  Metric names are prefixed with
    [prefix] (default ["xinv"]) and sanitized (dots and dashes become
    underscores).  Counters render as [# TYPE name counter] +
    [name_total v]; gauges as gauges; histograms with cumulative
    [_bucket{le=...}] series plus [_count]/[_sum].  Ends with [# EOF]. *)

val pp : Format.formatter -> t -> unit
(** Human-oriented one-line-per-metric rendering. *)
