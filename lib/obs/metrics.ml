type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  bounds : float array;
  counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
}

(* Registration-order lists, newest first; readers reverse.  Registration is
   cold (once per run per name), so the linear duplicate scan is fine. *)
type t = {
  mutable cs : counter list;
  mutable gs : gauge list;
  mutable hs : histogram list;
}

let create () = { cs = []; gs = []; hs = [] }

let counter t name =
  match List.find_opt (fun c -> c.c_name = name) t.cs with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      t.cs <- c :: t.cs;
      c

let gauge t name =
  match List.find_opt (fun g -> g.g_name = name) t.gs with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0. } in
      t.gs <- g :: t.gs;
      g

let default_bounds = Array.init 13 (fun i -> float_of_int (1 lsl i))

let histogram t ?(bounds = default_bounds) name =
  match List.find_opt (fun h -> h.h_name = name) t.hs with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          h_count = 0;
          h_sum = 0.;
        }
      in
      t.hs <- h :: t.hs;
      h

let incr c = c.c_value <- c.c_value + 1

let add c n = c.c_value <- c.c_value + n

let set g v = g.g_value <- v

let acc g v = g.g_value <- g.g_value +. v

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

let quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let target = q *. float_of_int h.h_count in
    let acc = ref 0 and res = ref None in
    Array.iteri
      (fun i c ->
        if !res = None then begin
          acc := !acc + c;
          if float_of_int !acc >= target then
            res :=
              Some (if i < Array.length h.bounds then h.bounds.(i) else infinity)
        end)
      h.counts;
    match !res with Some v -> v | None -> infinity
  end

let counters t = List.rev_map (fun c -> (c.c_name, c.c_value)) t.cs

let gauges t = List.rev_map (fun g -> (g.g_name, g.g_value)) t.gs

let histograms t = List.rev t.hs
