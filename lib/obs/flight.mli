(** Wall-clock flight recorder for the native backend.

    One fixed-capacity ring buffer per domain, single-writer, lock-free:
    each domain records only into its own ring, so the write path is four
    plain [int array] stores plus a timestamp — no allocation, no atomics,
    no locks.  When a ring is full the oldest entry is overwritten
    (drop-oldest); a per-ring monotonic write count makes the number of
    dropped entries recoverable after the fact.

    Readers are expected to run either after the recorded run has quiesced
    (postmortems, critical-path analysis — fully consistent) or live against
    a ring that is still being written ([xinv top] — individual slots may be
    torn mid-write; [read] bounds-checks the decoded kind and skips
    undecodable slots, and a torn slot can at worst surface a stale or
    blended payload for one sample frame). *)

type kind =
  | Dispatch  (** a = first iteration / block / site, b = target domain *)
  | Sync_send  (** a = dependence iteration, b = target domain *)
  | Sync_recv  (** a = dependence iteration, b = source domain *)
  | Barrier_arrive  (** a = episode *)
  | Barrier_release  (** a = episode *)
  | Epoch_commit  (** a = epoch *)
  | Misspec  (** a = epoch, b = worker *)
  | Stall_begin  (** a = stall-cause code (see {!cause_name}) *)
  | Stall_end  (** a = stall-cause code, b = duration in ns *)
  | Queue_sample  (** a = queue index, b = queue length *)
  | Mark  (** free-form breadcrumb *)

val kind_name : kind -> string

type entry = {
  f_at : int;  (** ns since the recorder was created *)
  f_domain : int;
  f_kind : kind;
  f_a : int;
  f_b : int;
}

type t

val default_capacity : int
(** 8192 entries per ring. *)

val create : ?capacity:int -> domains:int -> unit -> t
(** One ring of [capacity] entries (default 8192) per domain.
    Raises [Invalid_argument] if [capacity < 1] or [domains < 1]. *)

val record : t -> domain:int -> kind -> a:int -> b:int -> unit
(** Append to [domain]'s ring, overwriting the oldest entry when full.
    Must only be called from that ring's single writer. *)

val mark : t -> domain:int -> int -> unit
(** [mark t ~domain v] records a {!Mark} breadcrumb carrying [v]. *)

val domains : t -> int

val capacity : t -> int

val length : t -> domain:int -> int
(** Entries currently retained in [domain]'s ring. *)

val recorded : t -> domain:int -> int
(** Entries ever written to [domain]'s ring (monotonic). *)

val drops : t -> domain:int -> int
(** [recorded - length]: entries lost to drop-oldest overwrite. *)

val total_drops : t -> int

val total_length : t -> int

val read : ?since:int -> t -> domain:int -> entry list
(** Retained entries of one ring, oldest first, filtered to
    [f_at >= since] (ns).  Safe to call against a live ring. *)

val entries : t -> entry list
(** All rings merged, sorted by timestamp. *)

val elapsed_ns : t -> int
(** Largest timestamp recorded so far (0 when empty). *)

val cause_name : int -> string
(** Decodes the stall-cause code carried by [Stall_begin]/[Stall_end].
    The table mirrors [Xinv_native.Stallcat.index] order exactly:
    queue-empty, queue-full, sync-cond, barrier, checker-lag, throttle,
    rally (a parity test in the native suite guards the correspondence).
    Out-of-range codes decode to ["unknown"]. *)

val cause_names : string array

val ncauses : int
