(** The observability collection point threaded through the runtimes.

    Holds the typed event log (a flat growable array, recorded with simulated
    timestamps) and the {!Metrics} registry.  Recording consumes no virtual
    time and performs no effects, so a run with a recorder attached is
    bit-identical (makespan, tasks, checks, misspeculations) to the same run
    without one — the property test in [test_obs.ml] pins this.

    Observability is off by default: executors take the recorder as an
    optional argument and instrumented sites guard on its presence, so the
    disabled path costs one pattern match. *)

type entry = { at : float;  (** simulated time *) tid : int; ev : Event.t }

type t

val create : unit -> t

val record : t -> at:float -> tid:int -> Event.t -> unit

val length : t -> int

val entries : t -> entry list
(** Oldest first. *)

val iter : (entry -> unit) -> t -> unit

val metrics : t -> Metrics.t
