module Sim = Xinv_sim

type thread_report = {
  tid : int;
  thread_name : string;
  busy : float;
  work : float;
  stall : float;
  utilization : float;
}

type percentiles = { p50 : float; p90 : float; p99 : float; pmax : float }

type t = {
  makespan : float;
  threads : int;
  utilization : float;
  per_thread : thread_report list;
  stall_by_cause : (string * float) list;
  stall_events : (string * float) list;
  sync_forwarded : int;
  queue_occupancy : percentiles option;
  epochs_committed : int;
  misspeculations : int;
  recovery_cycles : float;
  epochs_redone : int;
  checkpoints : int;
  signature_checks : int;
  signatures_compared : int;
  barrier_crossings : int;
  counters : (string * int) list;
  gauges : (string * float) list;
  events_logged : int;
}

let stall_categories =
  [
    Sim.Category.Barrier_wait;
    Sim.Category.Sync_wait;
    Sim.Category.Queue;
    Sim.Category.Checker;
    Sim.Category.Checkpoint;
  ]

let percentile_of_sorted arr q =
  let n = Array.length arr in
  if n = 0 then 0.
  else arr.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n)))

let build ~engine ?recorder () =
  let makespan = Sim.Engine.now engine in
  let threads = Sim.Engine.thread_count engine in
  let per_thread =
    List.init threads (fun tid ->
        let work =
          Sim.Engine.charged engine tid Sim.Category.Work
          +. Sim.Engine.charged engine tid Sim.Category.Sequential
        in
        let stall =
          List.fold_left
            (fun acc cat -> acc +. Sim.Engine.charged engine tid cat)
            0. stall_categories
        in
        {
          tid;
          thread_name = Sim.Engine.name_of engine tid;
          busy = Sim.Engine.busy engine tid;
          work;
          stall;
          utilization = (if makespan > 0. then work /. makespan else 0.);
        })
  in
  let stall_by_cause =
    List.map
      (fun cat -> (Sim.Category.to_string cat, Sim.Engine.total engine cat))
      stall_categories
  in
  let total_work =
    Sim.Engine.total engine Sim.Category.Work
    +. Sim.Engine.total engine Sim.Category.Sequential
  in
  let capacity = float_of_int threads *. makespan in
  (* Event-derived aggregates. *)
  let sync_forwarded = ref 0 in
  let epochs_committed = ref 0 in
  let misspeculations = ref 0 in
  let recovery_cycles = ref 0. in
  let epochs_redone = ref 0 in
  let checkpoints = ref 0 in
  let signature_checks = ref 0 in
  let signatures_compared = ref 0 in
  let barrier_crossings = ref 0 in
  let queue_samples = ref [] in
  let nqueue_samples = ref 0 in
  let stall_tbl = Hashtbl.create 8 in
  (match recorder with
  | None -> ()
  | Some r ->
      Recorder.iter
        (fun (e : Recorder.entry) ->
          match e.Recorder.ev with
          | Event.Sync_forwarded _ -> incr sync_forwarded
          | Event.Worker_stalled { cause; dur } ->
              let k = Event.stall_cause_name cause in
              let cur = try Hashtbl.find stall_tbl k with Not_found -> 0. in
              Hashtbl.replace stall_tbl k (cur +. dur)
          | Event.Queue_sampled { len; _ } ->
              queue_samples := float_of_int len :: !queue_samples;
              incr nqueue_samples
          | Event.Task_dispatched _ -> ()
          | Event.Epoch_committed _ -> incr epochs_committed
          | Event.Misspeculated _ -> incr misspeculations
          | Event.Recovery_finished { dur; epochs_redone = n } ->
              recovery_cycles := !recovery_cycles +. dur;
              epochs_redone := !epochs_redone + n
          | Event.Checkpoint_forked _ -> incr checkpoints
          | Event.Signature_checked { window; _ } ->
              incr signature_checks;
              signatures_compared := !signatures_compared + window
          | Event.Barrier_crossed _ -> incr barrier_crossings
          (* Robustness events surface through the fault.injected /
             watchdog.stall / degrade.level counters below. *)
          | Event.Fault_injected _ | Event.Run_stalled _ | Event.Degraded _ ->
              ()
          (* Cache events surface through the cache.* counters. *)
          | Event.Fingerprint_hit _ | Event.Fingerprint_miss _ -> ()
          (* Tuning events surface through the tune.*/policy.* counters. *)
          | Event.Policy_applied _ | Event.Tune_trial _ | Event.Tune_switch _
            -> ())
        r);
  let stall_events =
    List.filter_map
      (fun cause ->
        let k = Event.stall_cause_name cause in
        match Hashtbl.find_opt stall_tbl k with Some v -> Some (k, v) | None -> None)
      Event.all_stall_causes
  in
  let queue_occupancy =
    if !nqueue_samples = 0 then None
    else begin
      let arr = Array.of_list !queue_samples in
      Array.sort compare arr;
      Some
        {
          p50 = percentile_of_sorted arr 0.50;
          p90 = percentile_of_sorted arr 0.90;
          p99 = percentile_of_sorted arr 0.99;
          pmax = arr.(Array.length arr - 1);
        }
    end
  in
  {
    makespan;
    threads;
    utilization = (if capacity > 0. then total_work /. capacity else 0.);
    per_thread;
    stall_by_cause;
    stall_events;
    sync_forwarded = !sync_forwarded;
    queue_occupancy;
    epochs_committed = !epochs_committed;
    misspeculations = !misspeculations;
    recovery_cycles = !recovery_cycles;
    epochs_redone = !epochs_redone;
    checkpoints = !checkpoints;
    signature_checks = !signature_checks;
    signatures_compared = !signatures_compared;
    barrier_crossings = !barrier_crossings;
    counters = (match recorder with Some r -> Metrics.counters (Recorder.metrics r) | None -> []);
    gauges = (match recorder with Some r -> Metrics.gauges (Recorder.metrics r) | None -> []);
    events_logged = (match recorder with Some r -> Recorder.length r | None -> 0);
  }

let pct part whole = if whole > 0. then 100. *. part /. whole else 0.

let pp ppf t =
  let capacity = float_of_int t.threads *. t.makespan in
  Format.fprintf ppf "@[<v>makespan %.0f cycles, %d threads, %d events logged@,"
    t.makespan t.threads t.events_logged;
  Format.fprintf ppf "utilization      %.1f%%@," (100. *. t.utilization);
  Format.fprintf ppf "sync-conditions forwarded  %d@," t.sync_forwarded;
  Format.fprintf ppf "worker stall time by cause (cycles, %% of capacity):@,";
  List.iter
    (fun (name, cycles) ->
      Format.fprintf ppf "  %-14s %12.0f  (%4.1f%%)@," name cycles (pct cycles capacity))
    t.stall_by_cause;
  if t.stall_events <> [] then begin
    Format.fprintf ppf "stall episodes observed (event log):@,";
    List.iter
      (fun (name, cycles) -> Format.fprintf ppf "  %-14s %12.0f@," name cycles)
      t.stall_events
  end;
  (match t.queue_occupancy with
  | Some q ->
      Format.fprintf ppf "queue occupancy  p50 %.0f  p90 %.0f  p99 %.0f  max %.0f@,"
        q.p50 q.p90 q.p99 q.pmax
  | None -> ());
  if t.epochs_committed > 0 || t.misspeculations > 0 || t.signature_checks > 0 then
    Format.fprintf ppf
      "epochs committed %d, misspeculated %d, recovery cycles %.0f (%d epochs redone)@,\
       checkpoints %d, signature checks %d (%d signatures compared)@,"
      t.epochs_committed t.misspeculations t.recovery_cycles t.epochs_redone
      t.checkpoints t.signature_checks t.signatures_compared;
  if t.barrier_crossings > 0 then
    Format.fprintf ppf "barrier crossings %d@," t.barrier_crossings;
  Format.fprintf ppf "per-thread (busy%% / work%% / stall%% of makespan):@,";
  List.iter
    (fun tr ->
      Format.fprintf ppf "  t%-3d %-12s %5.1f%% / %5.1f%% / %5.1f%%@," tr.tid
        tr.thread_name (pct tr.busy t.makespan) (pct tr.work t.makespan)
        (pct tr.stall t.makespan))
    t.per_thread;
  if t.counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-36s %d@," k v) t.counters
  end;
  if t.gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-36s %.1f@," k v) t.gauges
  end;
  Format.fprintf ppf "@]"

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  let fnum f = if Float.is_nan f then "null" else Printf.sprintf "%.3f" f in
  Buffer.add_string b "{\n  \"schema\": \"xinv-stats/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"makespan\": %s,\n" (fnum t.makespan));
  Buffer.add_string b (Printf.sprintf "  \"threads\": %d,\n" t.threads);
  Buffer.add_string b (Printf.sprintf "  \"utilization\": %s,\n" (fnum t.utilization));
  Buffer.add_string b (Printf.sprintf "  \"events_logged\": %d,\n" t.events_logged);
  Buffer.add_string b (Printf.sprintf "  \"sync_forwarded\": %d,\n" t.sync_forwarded);
  let obj kvs =
    "{"
    ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (escape k) v) kvs)
    ^ "}"
  in
  Buffer.add_string b
    (Printf.sprintf "  \"stall_by_cause\": %s,\n"
       (obj (List.map (fun (k, v) -> (k, fnum v)) t.stall_by_cause)));
  Buffer.add_string b
    (Printf.sprintf "  \"stall_events\": %s,\n"
       (obj (List.map (fun (k, v) -> (k, fnum v)) t.stall_events)));
  Buffer.add_string b
    (Printf.sprintf "  \"queue_occupancy\": %s,\n"
       (match t.queue_occupancy with
       | None -> "null"
       | Some q ->
           obj
             [
               ("p50", fnum q.p50); ("p90", fnum q.p90); ("p99", fnum q.p99);
               ("max", fnum q.pmax);
             ]));
  Buffer.add_string b
    (Printf.sprintf "  \"speculation\": %s,\n"
       (obj
          [
            ("epochs_committed", string_of_int t.epochs_committed);
            ("misspeculated", string_of_int t.misspeculations);
            ("recovery_cycles", fnum t.recovery_cycles);
            ("epochs_redone", string_of_int t.epochs_redone);
            ("checkpoints", string_of_int t.checkpoints);
            ("signature_checks", string_of_int t.signature_checks);
            ("signatures_compared", string_of_int t.signatures_compared);
          ]));
  Buffer.add_string b
    (Printf.sprintf "  \"barrier_crossings\": %d,\n" t.barrier_crossings);
  Buffer.add_string b "  \"per_thread\": [\n";
  let n = List.length t.per_thread in
  List.iteri
    (fun i tr ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"tid\": %d, \"name\": \"%s\", \"busy\": %s, \"work\": %s, \"stall\": %s, \"utilization\": %s}%s\n"
           tr.tid (escape tr.thread_name) (fnum tr.busy) (fnum tr.work) (fnum tr.stall)
           (fnum tr.utilization)
           (if i = n - 1 then "" else ",")))
    t.per_thread;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"counters\": %s,\n"
       (obj (List.map (fun (k, v) -> (k, string_of_int v)) t.counters)));
  Buffer.add_string b
    (Printf.sprintf "  \"gauges\": %s\n"
       (obj (List.map (fun (k, v) -> (k, fnum v)) t.gauges)));
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_csv t =
  let b = Buffer.create 1024 in
  let line k v = Buffer.add_string b (Printf.sprintf "%s,%s\n" k v) in
  line "key" "value";
  line "makespan" (Printf.sprintf "%.3f" t.makespan);
  line "threads" (string_of_int t.threads);
  line "utilization" (Printf.sprintf "%.4f" t.utilization);
  line "events_logged" (string_of_int t.events_logged);
  line "sync_forwarded" (string_of_int t.sync_forwarded);
  List.iter
    (fun (k, v) -> line ("stall." ^ k) (Printf.sprintf "%.3f" v))
    t.stall_by_cause;
  (match t.queue_occupancy with
  | Some q ->
      line "queue_occupancy.p50" (Printf.sprintf "%.0f" q.p50);
      line "queue_occupancy.p90" (Printf.sprintf "%.0f" q.p90);
      line "queue_occupancy.p99" (Printf.sprintf "%.0f" q.p99);
      line "queue_occupancy.max" (Printf.sprintf "%.0f" q.pmax)
  | None -> ());
  line "epochs_committed" (string_of_int t.epochs_committed);
  line "misspeculated" (string_of_int t.misspeculations);
  line "recovery_cycles" (Printf.sprintf "%.3f" t.recovery_cycles);
  line "epochs_redone" (string_of_int t.epochs_redone);
  line "checkpoints" (string_of_int t.checkpoints);
  line "signature_checks" (string_of_int t.signature_checks);
  line "signatures_compared" (string_of_int t.signatures_compared);
  line "barrier_crossings" (string_of_int t.barrier_crossings);
  List.iter (fun (k, v) -> line ("counter." ^ k) (string_of_int v)) t.counters;
  List.iter (fun (k, v) -> line ("gauge." ^ k) (Printf.sprintf "%.3f" v)) t.gauges;
  Buffer.contents b
