(** Typed observability events.

    One constructor per runtime phenomenon the dissertation's evaluation
    reasons about: synchronization conditions forwarded by the DOMORE
    scheduler, worker stalls and their causes, queue occupancy samples,
    SPECCROSS epoch commits / misspeculations / recoveries, checkpoints,
    signature checks and barrier crossings.  Events are recorded by
    {!Recorder} with simulated timestamps and consume no virtual time, so
    enabling them cannot perturb a run. *)

type stall_cause =
  | Sync_cond  (** blocked on a DOMORE cross-iteration synchronization condition *)
  | Barrier  (** blocked at a (real or speculative-range) barrier *)
  | Queue_empty  (** consumer blocked on an empty communication queue *)
  | Queue_full  (** producer blocked on a full communication queue *)
  | Checker_lag  (** blocked waiting for the speculation checker to catch up *)
  | Checkpoint_wait  (** blocked on checkpointing or recovery rendezvous *)
  | Throttle  (** speculative worker held back by the spec-distance range *)

val stall_cause_name : stall_cause -> string

val all_stall_causes : stall_cause list

val stall_cause_of_name : string -> stall_cause option
(** Inverse of {!stall_cause_name}, for the native backend's string-keyed
    stall report ({!Xinv_native.Stallcat} names map onto these causes). *)

type t =
  | Sync_forwarded of { to_tid : int; dep_tid : int; dep_iter : int }
      (** the scheduler emitted a synchronization condition to [to_tid] *)
  | Worker_stalled of { cause : stall_cause; dur : float }
      (** a worker resumed after [dur] simulated cycles blocked *)
  | Queue_sampled of { queue : int; len : int }
      (** scheduler-side occupancy snapshot of worker queue [queue] *)
  | Task_dispatched of { iter : int; to_tid : int }
  | Epoch_committed of { epoch : int }
      (** speculative execution of [epoch] completed without rollback *)
  | Misspeculated of { epoch : int; worker : int }
  | Recovery_finished of { dur : float; epochs_redone : int }
  | Checkpoint_forked of { epoch : int }
  | Signature_checked of { worker : int; epoch : int; window : int; conflict : bool }
      (** one checking request: [window] signatures compared *)
  | Barrier_crossed of { episode : int }
  | Fault_injected of { kind : string; domain : int; site : int }
      (** a {!Xinv_native.Fault} fired at (domain, site) during a native run *)
  | Run_stalled of { role : string; waiting_for : string; waited_ns : float }
      (** a watchdog-bounded wait exceeded its budget and raised [Stalled] *)
  | Degraded of { from_ : string; to_ : string; reason : string }
      (** the facade retried a failed native run under a weaker technique *)
  | Fingerprint_hit of { fp : string }
      (** the analysis cache served this workload fingerprint from disk *)
  | Fingerprint_miss of { fp : string; reason : string }
      (** the analysis cache could not serve the fingerprint ([reason]:
          absent, partial, alias, corrupt, version, …) and fresh analysis ran *)
  | Policy_applied of { source : string; policy : string }
      (** the facade resolved the run's execution policy ([source]: cached,
          searched, default or adaptive) *)
  | Tune_trial of { policy : string; wall_ns : float; pruned : bool }
      (** the autotuner measured one candidate policy ([pruned] when the
          per-trial watchdog deadline cut it off as slower than the
          incumbent) *)
  | Tune_switch of { from_ : string; to_ : string; reason : string }
      (** the online adaptive controller switched policy mid-stream *)

val name : t -> string
(** Short stable identifier, used as the Perfetto event name. *)

type arg = I of int | F of float | B of bool | S of string

val args : t -> (string * arg) list
(** Payload as a flat association list (Perfetto [args], CSV columns). *)
