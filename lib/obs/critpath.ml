type verdict = {
  v_wall_ns : float;
  v_events : int;
  v_drops : int;
  v_chain : int;
  v_chain_ns : float;
  v_stalls : (string * float) list;
  v_stall_domains : (int * (string * float) list) list;
  v_dominant : string option;
  v_bottleneck : string;
}

(* Longest-chain DP over the merged, timestamp-ordered stream.  Edges worth
   one chain step: a dispatch consumed by the target domain's next event, a
   sync-recv back to the source domain's frontier, and an epoch commit
   extending its own domain's chain.  Plain same-domain succession
   propagates chain length without adding an edge. *)
let longest_chain ndomains (es : Flight.entry array) =
  let n = Array.length es in
  let chainlen = Array.make (max n 1) 0 in
  let chainstart = Array.make (max n 1) 0 in
  let last = Array.make ndomains (-1) in
  let pend = Array.make ndomains (-1) in
  let best = ref 0 and best_ns = ref 0. in
  for i = 0 to n - 1 do
    let e = es.(i) in
    let d = e.Flight.f_domain in
    let len = ref 0 and start = ref e.Flight.f_at in
    let consider p w =
      if p >= 0 then begin
        let cl = chainlen.(p) + w in
        if cl > !len || (cl = !len && chainstart.(p) < !start) then begin
          len := cl;
          start := chainstart.(p)
        end
      end
    in
    consider last.(d) (match e.Flight.f_kind with Flight.Epoch_commit -> 1 | _ -> 0);
    (match e.Flight.f_kind with
    | Flight.Sync_recv ->
        let src = e.Flight.f_b in
        if src >= 0 && src < ndomains then consider last.(src) 1
    | _ -> ());
    if pend.(d) >= 0 then begin
      consider pend.(d) 1;
      pend.(d) <- -1
    end;
    chainlen.(i) <- !len;
    chainstart.(i) <- !start;
    (match e.Flight.f_kind with
    | Flight.Dispatch ->
        let tgt = e.Flight.f_b in
        if tgt >= 0 && tgt < ndomains then pend.(tgt) <- i
    | _ -> ());
    last.(d) <- i;
    if !len > !best then begin
      best := !len;
      best_ns := float_of_int (e.Flight.f_at - !start)
    end
  done;
  (!best, !best_ns)

let analyze ?wall_ns ?stalls flight =
  let entries = Array.of_list (Flight.entries flight) in
  let ndomains = Flight.domains flight in
  (* Per-domain per-cause ns from Stall_end events. *)
  let by_domain = Array.make_matrix ndomains Flight.ncauses 0. in
  Array.iter
    (fun (e : Flight.entry) ->
      match e.Flight.f_kind with
      | Flight.Stall_end ->
          let c = e.Flight.f_a in
          if c >= 0 && c < Flight.ncauses then
            by_domain.(e.Flight.f_domain).(c) <-
              by_domain.(e.Flight.f_domain).(c) +. float_of_int e.Flight.f_b
      | _ -> ())
    entries;
  let derived =
    Array.to_list
      (Array.mapi
         (fun c name ->
           let total = ref 0. in
           for d = 0 to ndomains - 1 do
             total := !total +. by_domain.(d).(c)
           done;
           (name, !total))
         Flight.cause_names)
  in
  let totals =
    match stalls with
    | Some s ->
        (* Authoritative totals (Stallcat), padded so every cause appears. *)
        List.map
          (fun (name, _) ->
            (name, match List.assoc_opt name s with Some v -> v | None -> 0.))
          derived
    | None -> derived
  in
  let stalls_sorted =
    List.stable_sort (fun (_, a) (_, b) -> compare b a) totals
  in
  let dominant =
    match stalls_sorted with
    | (name, ns) :: _ when ns > 0. -> Some name
    | _ -> None
  in
  let chain, chain_ns = longest_chain ndomains entries in
  let wall =
    match wall_ns with
    | Some w -> w
    | None -> float_of_int (Flight.elapsed_ns flight)
  in
  let cap = wall *. float_of_int ndomains in
  let pct x = if cap > 0. then 100. *. x /. cap else 0. in
  let bottleneck =
    match dominant with
    | Some name when pct (List.assoc name totals) >= 5. ->
        Printf.sprintf "%s (%.1f%% of %d-domain wall capacity blocked)" name
          (pct (List.assoc name totals))
          ndomains
    | Some name ->
        Printf.sprintf "compute (dominant stall %s at only %.1f%% of capacity)"
          name (pct (List.assoc name totals))
    | None -> "compute (no stalls recorded)"
  in
  let stall_domains =
    List.filter_map
      (fun d ->
        let nz = ref [] in
        for c = Flight.ncauses - 1 downto 0 do
          if by_domain.(d).(c) > 0. then
            nz := (Flight.cause_names.(c), by_domain.(d).(c)) :: !nz
        done;
        if !nz = [] then None else Some (d, !nz))
      (List.init ndomains Fun.id)
  in
  {
    v_wall_ns = wall;
    v_events = Array.length entries;
    v_drops = Flight.total_drops flight;
    v_chain = chain;
    v_chain_ns = chain_ns;
    v_stalls = stalls_sorted;
    v_stall_domains = stall_domains;
    v_dominant = dominant;
    v_bottleneck = bottleneck;
  }

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"bottleneck\":\"%s\",\"dominant\":%s,\"chain\":%d,\"chain_ns\":%.0f,\"events\":%d,\"drops\":%d,\"stall_ns\":{"
       (escape v.v_bottleneck)
       (match v.v_dominant with
       | Some d -> Printf.sprintf "\"%s\"" (escape d)
       | None -> "null")
       v.v_chain v.v_chain_ns v.v_events v.v_drops);
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%.0f" (escape name) ns))
    v.v_stalls;
  Buffer.add_string b "}}";
  Buffer.contents b

let pp ppf v =
  Format.fprintf ppf "bottleneck: %s@." v.v_bottleneck;
  Format.fprintf ppf "chain: %d edges spanning %.3f ms@." v.v_chain
    (v.v_chain_ns /. 1e6);
  Format.fprintf ppf "flight: %d events, %d dropped@." v.v_events v.v_drops;
  List.iter
    (fun (name, ns) ->
      if ns > 0. then Format.fprintf ppf "stall %-12s %.3f ms@." name (ns /. 1e6))
    v.v_stalls
