type entry = { at : float; tid : int; ev : Event.t }

type t = { mutable log : entry array; mutable len : int; metrics : Metrics.t }

let dummy_entry = { at = 0.; tid = -1; ev = Event.Barrier_crossed { episode = -1 } }

let create () = { log = [||]; len = 0; metrics = Metrics.create () }

let record t ~at ~tid ev =
  if t.len = Array.length t.log then begin
    let ncap = Stdlib.max 256 (2 * t.len) in
    let narr = Array.make ncap dummy_entry in
    Array.blit t.log 0 narr 0 t.len;
    t.log <- narr
  end;
  t.log.(t.len) <- { at; tid; ev };
  t.len <- t.len + 1

let length t = t.len

let entries t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.log.(i) :: !acc
  done;
  !acc

let iter f t =
  for i = 0 to t.len - 1 do
    f t.log.(i)
  done

let metrics t = t.metrics
