module Ir = Xinv_ir
module Sim = Xinv_sim
module Par = Xinv_parallel
module Wl = Xinv_workloads
module Nat = Xinv_native
module Cache = Xinv_cache

type technique =
  | Sequential
  | Barrier
  | Doacross
  | Dswp
  | Inspector
  | Tls
  | Domore
  | Domore_dup
  | Speccross
  | Speccross_inject of int

let technique_name = function
  | Sequential -> "sequential"
  | Barrier -> "barrier"
  | Doacross -> "doacross"
  | Dswp -> "dswp"
  | Inspector -> "inspector-executor"
  | Tls -> "tls"
  | Domore -> "domore"
  | Domore_dup -> "domore-dup"
  | Speccross -> "speccross"
  | Speccross_inject e -> Printf.sprintf "speccross-inject@%d" e

let technique_of_string s =
  match String.lowercase_ascii s with
  | "sequential" | "seq" -> Some Sequential
  | "barrier" | "pthread" -> Some Barrier
  | "doacross" -> Some Doacross
  | "dswp" -> Some Dswp
  | "inspector" | "inspector-executor" | "ie" -> Some Inspector
  | "tls" -> Some Tls
  | "domore" -> Some Domore
  | "domore-dup" -> Some Domore_dup
  | "speccross" -> Some Speccross
  | _ -> None

type cost = Sim_cycles of float | Wall_ns of float

let cost_value = function Sim_cycles c -> c | Wall_ns ns -> ns

let cost_to_string = function
  | Sim_cycles c -> Printf.sprintf "%.0f cycles" c
  | Wall_ns ns -> Printf.sprintf "%.3f ms" (ns /. 1e6)

type native_opts = {
  work : Nat.Work.t;
  pool : Nat.Pool.t option;
  fault : Nat.Fault.spec option;
  deadline_ms : float option;
  wait_timeout_ms : float option;
  degrade : bool;
  grain : int;
  batch : int;
  flight : bool;
  flight_capacity : int;
  postmortem_dir : string option;
  on_flight : (Xinv_obs.Flight.t -> unit) option;
  on_watchdog : (Nat.Watchdog.t -> unit) option;
}

let native_defaults =
  {
    work = Nat.Work.Off;
    pool = None;
    fault = None;
    deadline_ms = None;
    wait_timeout_ms = None;
    degrade = true;
    grain = 1;
    batch = 32;
    flight = false;
    flight_capacity = Xinv_obs.Flight.default_capacity;
    postmortem_dir = None;
    on_flight = None;
    on_watchdog = None;
  }

type backend = [ `Sim of Sim.Machine.t option | `Native of native_opts ]

type degrade_step = { d_from : technique; d_to : technique; d_reason : string }

type outcome = {
  technique : technique;  (** the technique that actually executed *)
  cost : cost;
  seq_cost : cost;
  speedup : float;
  verified : bool;
  mismatches : (string * int) list;
  profile : Xinv_speccross.Profiler.t option;
  run : Par.Run.t option;
  nrun : Nat.Nrun.t option;
  degraded : degrade_step list;
  analysis_ns : float;
  cache_hits : int;
  cache_misses : int;
  flight : Xinv_obs.Flight.t option;
  postmortems : string list;
  policy_source : string;
}

(* ---- analysis front door ----

   Every compile-time/profiling step of a run — [Mtcg.generate] and
   [Profiler.profile] — goes through this context, which (a) accumulates the
   wall time spent in analysis regardless of caching, and (b) consults the
   incremental analysis cache when one is attached. *)

type analysis_ctx = {
  a_cache : Cache.Analysis.t option;
  mutable a_ns : float;
}

let analysis_ctx ?obs cache cache_dir =
  let a_cache =
    match cache with
    | `Off -> None
    | (`Ro | `Rw) as mode ->
        Some (Cache.Analysis.make ?obs ?dir:cache_dir ~mode ())
  in
  { a_cache; a_ns = 0. }

let timed actx f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  actx.a_ns <- actx.a_ns +. ((Unix.gettimeofday () -. t0) *. 1e9);
  r

let mtcg_verdict actx program env =
  timed actx (fun () ->
      match actx.a_cache with
      | None -> Ir.Mtcg.generate program env
      | Some c -> Cache.Analysis.plan c program env)

let profiler_profile actx program env =
  timed actx (fun () ->
      match actx.a_cache with
      | None -> Xinv_speccross.Profiler.profile program env
      | Some c -> Cache.Analysis.profile c program env)

let cache_stats actx =
  match actx.a_cache with
  | None -> (0, 0)
  | Some c -> (Cache.Analysis.hits c, Cache.Analysis.misses c)

let spec_mode_of_plan (wl : Wl.Workload.t) label =
  match Wl.Workload.technique_of wl label with
  | Par.Intra.Doall | Par.Intra.Spec_doall -> Xinv_speccross.Runtime.M_doall
  | Par.Intra.Localwrite -> Xinv_speccross.Runtime.M_localwrite
  | Par.Intra.Doany -> Xinv_speccross.Runtime.M_doall

let native_supported = function
  | Sequential | Barrier | Domore | Domore_dup | Speccross
  | Speccross_inject _ ->
      true
  | Doacross | Dswp | Inspector | Tls -> false

let supported ~backend =
  let all =
    [ Sequential; Barrier; Doacross; Dswp; Inspector; Tls; Domore; Domore_dup;
      Speccross ]
  in
  match backend with
  | `Sim -> all
  | `Native -> List.filter native_supported all

let applicable ?(backend = `Sim) ?(cache = `Off) ?cache_dir technique
    (wl : Wl.Workload.t) =
  let shared () =
    match technique with
    | Sequential | Barrier | Doacross | Dswp -> Ok ()
    | Inspector | Tls | Domore | Domore_dup -> (
        let actx = analysis_ctx cache cache_dir in
        let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
        match mtcg_verdict actx (wl.Wl.Workload.program Wl.Workload.Ref) env with
        | Ir.Mtcg.Plan _ -> Ok ()
        | Ir.Mtcg.Inapplicable reason -> Error reason)
    | Speccross | Speccross_inject _ ->
        if
          List.exists
            (fun (_, t) -> t = Par.Intra.Spec_doall)
            wl.Wl.Workload.plan
        then
          Error "inner loop requires speculative intra-invocation parallelization"
        else Par.Plan.speccross_applicable (wl.Wl.Workload.program Wl.Workload.Ref)
  in
  match backend with
  | `Sim -> shared ()
  | `Native ->
      if native_supported technique then shared ()
      else
        Error
          (Printf.sprintf "%s has no native backend (simulator only)"
             (technique_name technique))

let sequential_cost (wl : Wl.Workload.t) input =
  let env = wl.Wl.Workload.fresh_env input in
  (Ir.Seq_interp.run (wl.Wl.Workload.program input) env, env)

(* SPECCROSS profiles the train input matching the run input's speculative
   flavour, as the paper's toolchain does. *)
let spec_profile ~actx (wl : Wl.Workload.t) input =
  let train_input =
    match input with
    | Wl.Workload.Ref_spec -> Wl.Workload.Train_spec
    | _ -> Wl.Workload.Train
  in
  let train_env = wl.Wl.Workload.fresh_env train_input in
  profiler_profile actx (wl.Wl.Workload.program train_input) train_env

let spec_distance_of prof ~workers =
  match prof.Xinv_speccross.Profiler.min_task_distance with
  | Some d -> Stdlib.max workers d
  | None ->
      (* No profiled conflict: still bound the lead (a few invocations) so
         threads stay loosely coupled and the checker's comparison windows
         stay small. *)
      Stdlib.max (4 * workers)
        (int_of_float (4. *. prof.Xinv_speccross.Profiler.avg_tasks_per_epoch))

(* ---- tunable SPECCROSS knobs ----

   The signature scheme and the speculative distance were hard-wired
   (Segmented over the live memory bounds; the profiled distance); both are
   now policy axes.  [None] keeps the historical default, so every existing
   call site is unchanged. *)

let reify_sig sel env =
  match sel with
  | None | Some `Segmented ->
      Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem)
  | Some `Range -> Xinv_runtime.Signature.Range
  | Some `Bloom -> Xinv_runtime.Signature.Bloom { bits = 4096; hashes = 3 }
  | Some `Exact -> Xinv_runtime.Signature.Exact

(* An overridden distance below the worker count would let the throttle
   strangle the pipeline; clamp like the profiled default does. *)
let resolve_spec_distance override prof ~workers =
  match override with
  | Some d -> Stdlib.max workers d
  | None -> spec_distance_of prof ~workers

(* ---- simulated backend ---- *)

let run_sim ~actx ~machine ~input ~checkpoint_every ~sig_sel ~spec_override
    ?obs ~technique ~threads (wl : Wl.Workload.t) =
  let program = wl.Wl.Workload.program input in
  let env = wl.Wl.Workload.fresh_env input in
  let plan = Wl.Workload.plan_fn wl in
  let run, profile =
    match technique with
    | Sequential -> (None, None)
    | Barrier ->
        (Some (Par.Barrier_exec.run ~machine ?obs ~threads ~plan program env), None)
    | Doacross -> (Some (Par.Doacross.run ~machine ?obs ~threads program env), None)
    | Dswp -> (Some (Par.Dswp.run ~machine ?obs ~threads program env), None)
    | Inspector -> (
        match mtcg_verdict actx program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith
              (Printf.sprintf "inspector-executor inapplicable to %s: %s"
                 wl.Wl.Workload.name reason)
        | Ir.Mtcg.Plan mplan ->
            (Some (Par.Inspector.run ~machine ~threads ~plan:mplan program env), None))
    | Tls -> (
        match mtcg_verdict actx program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith
              (Printf.sprintf "TLS inapplicable to %s: %s" wl.Wl.Workload.name reason)
        | Ir.Mtcg.Plan mplan ->
            (Some (Par.Tls.run ~machine ~threads ~plan:mplan program env), None))
    | Domore -> (
        match mtcg_verdict actx program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith
              (Printf.sprintf "DOMORE inapplicable to %s: %s" wl.Wl.Workload.name
                 reason)
        | Ir.Mtcg.Plan mplan ->
            let workers = Stdlib.max 1 (threads - 1) in
            let config =
              {
                Xinv_domore.Domore.machine;
                policy =
                  (if wl.Wl.Workload.mem_partition then Xinv_domore.Policy.Mem_partition
                   else Xinv_domore.Policy.Round_robin);
                workers;
              }
            in
            (Some (Xinv_domore.Domore.run ~config ?obs ~plan:mplan program env), None))
    | Domore_dup -> (
        match mtcg_verdict actx program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith
              (Printf.sprintf "DOMORE inapplicable to %s: %s" wl.Wl.Workload.name
                 reason)
        | Ir.Mtcg.Plan mplan ->
            let config =
              {
                Xinv_domore.Domore.machine;
                policy =
                  (if wl.Wl.Workload.mem_partition then Xinv_domore.Policy.Mem_partition
                   else Xinv_domore.Policy.Round_robin);
                workers = threads;
              }
            in
            (Some (Xinv_domore.Duplicated.run ~config ?obs ~plan:mplan program env), None))
    | Speccross | Speccross_inject _ ->
        let prof = spec_profile ~actx wl input in
        let workers = Stdlib.max 1 (threads - 1) in
        if not (Xinv_speccross.Profiler.profitable prof ~workers) then
          (* §4.4: a minimum dependence distance below the worker count
             recommends against speculating — fall back to real barriers. *)
          ( Some (Par.Barrier_exec.run ~machine ?obs ~threads ~plan program env),
            Some prof )
        else
          let inject =
            match technique with Speccross_inject e -> Some (e, 0) | _ -> None
          in
          let config =
            {
              Xinv_speccross.Runtime.machine;
              workers;
              sig_kind = reify_sig sig_sel env;
              checkpoint_every;
              spec_distance = resolve_spec_distance spec_override prof ~workers;
              mode_of = spec_mode_of_plan wl;
              inject_misspec = inject;
              non_spec_barriers = false;
              tm_style = false;
            }
          in
          (Some (Xinv_speccross.Runtime.run ~config ?obs program env), Some prof)
  in
  (run, profile, env)

(* ---- native backend ---- *)

let native_mtcg_plan ~actx program env name =
  match mtcg_verdict actx program env with
  | Ir.Mtcg.Inapplicable reason ->
      failwith (Printf.sprintf "DOMORE inapplicable to %s: %s" name reason)
  | Ir.Mtcg.Plan mplan -> mplan

let native_pool_size ~technique ~threads =
  match technique with
  | Sequential -> 0
  | Barrier | Domore_dup -> threads - 1
  | Domore | Speccross | Speccross_inject _ -> Stdlib.max 1 (threads - 1)
  | Doacross | Dswp | Inspector | Tls -> 0

(* One native attempt of one technique; raises on failure. *)
let run_native_once ~actx ~opts ~wd ~fault ?fr ~input ~checkpoint_every
    ~sig_sel ~spec_override ~technique ~threads (wl : Wl.Workload.t) env =
  let program = wl.Wl.Workload.program input in
  let plan = Wl.Workload.plan_fn wl in
  let work = opts.work in
  let with_pool f =
    match opts.pool with
    | Some pool -> f pool
    | None -> Nat.Pool.with_pool ~workers:(native_pool_size ~technique ~threads) f
  in
  let policy =
    if wl.Wl.Workload.mem_partition then Xinv_domore.Policy.Mem_partition
    else Xinv_domore.Policy.Round_robin
  in
  match technique with
  | Sequential -> (Nat.Nbarrier.run_seq ~work program env, None)
  | Doacross | Dswp | Inspector | Tls ->
      failwith
        (Printf.sprintf "%s has no native backend (simulator only)"
           (technique_name technique))
  | Barrier ->
      ( with_pool (fun pool ->
            Nat.Nbarrier.run ~pool ~wd ?fault ?fr ~work ~grain:opts.grain
              ~threads ~plan program env),
        None )
  | Domore ->
      let mplan = native_mtcg_plan ~actx program env wl.Wl.Workload.name in
      let workers = Stdlib.max 1 (threads - 1) in
      let config =
        { (Nat.Ndomore.default_config ~workers) with
          Nat.Ndomore.policy; work; grain = opts.grain; batch = opts.batch }
      in
      ( with_pool (fun pool ->
            Nat.Ndomore.run ~pool ~wd ?fault ?fr ~config ~plan:mplan program env),
        None )
  | Domore_dup ->
      let mplan = native_mtcg_plan ~actx program env wl.Wl.Workload.name in
      let config =
        { (Nat.Ndomore.default_config ~workers:threads) with
          Nat.Ndomore.policy; work; grain = opts.grain; batch = opts.batch }
      in
      ( with_pool (fun pool ->
            Nat.Ndomore.run_duplicated ~pool ~wd ?fault ?fr ~config ~plan:mplan
              program env),
        None )
  | Speccross | Speccross_inject _ ->
      let prof = spec_profile ~actx wl input in
      let workers = Stdlib.max 1 (threads - 1) in
      if not (Xinv_speccross.Profiler.profitable prof ~workers) then
        (* Same §4.4 decision as the simulated path: a short minimum
           dependence distance recommends real barriers instead. *)
        ( with_pool (fun pool ->
              Nat.Nbarrier.run ~pool ~wd ?fault ?fr ~work ~threads ~plan
                program env),
          Some prof )
      else
        let inject =
          match technique with Speccross_inject e -> Some (e, 0) | _ -> None
        in
        let config =
          {
            (Nat.Nspec.default_config ~workers) with
            Nat.Nspec.sig_kind = reify_sig sig_sel env;
            checkpoint_every;
            spec_distance = resolve_spec_distance spec_override prof ~workers;
            mode_of = spec_mode_of_plan wl;
            inject_misspec = inject;
            work;
            grain = opts.grain;
          }
        in
        ( with_pool (fun pool ->
              Nat.Nspec.run ~pool ~wd ?fault ?fr ~config program env),
          Some prof )

(* Runtime failures trigger degradation; environment-level errors and
   programming bugs do not. *)
let degradable = function
  | Out_of_memory | Stack_overflow | Assert_failure _ | Invalid_argument _ ->
      false
  | _ -> true

let degrade_chain = function
  | Sequential -> [ Sequential ]
  | Barrier -> [ Barrier; Sequential ]
  | Domore -> [ Domore; Domore_dup; Barrier; Sequential ]
  | Domore_dup -> [ Domore_dup; Barrier; Sequential ]
  | (Speccross | Speccross_inject _) as t -> [ t; Barrier; Sequential ]
  | (Doacross | Dswp | Inspector | Tls) as t -> [ t ]

let failure_reason = function
  | Nat.Fault.Injected { kind; domain; site } ->
      Printf.sprintf "injected %s at domain %d, site %d"
        (Nat.Fault.kind_name kind) domain site
  | Nat.Watchdog.Stalled { role; waiting_for; waited_ns } ->
      Printf.sprintf "%s stalled %.1f ms waiting for %s" role (waited_ns /. 1e6)
        waiting_for
  | Nat.Watchdog.Cancelled role -> Printf.sprintf "%s cancelled" role
  | e -> Printexc.to_string e

(* Machine-readable one-liner for postmortem [event:] headers. *)
let event_line = function
  | Nat.Fault.Injected { kind; domain; site } ->
      Printf.sprintf "fault_injected kind=%s domain=%d site=%d"
        (Nat.Fault.kind_name kind) domain site
  | Nat.Watchdog.Stalled { role; waiting_for; waited_ns } ->
      Printf.sprintf "run_stalled role=%S waiting_for=%S waited_ns=%.0f" role
        waiting_for waited_ns
  | Nat.Watchdog.Cancelled role -> Printf.sprintf "run_cancelled role=%S" role
  | e -> Printf.sprintf "exception %S" (Printexc.to_string e)

let record_event obs ev =
  match obs with
  | None -> ()
  | Some r -> Xinv_obs.Recorder.record r ~at:0. ~tid:0 ev

let bump_counter obs name v =
  match obs with
  | None -> ()
  | Some r ->
      if v > 0 then
        let m = Xinv_obs.Recorder.metrics r in
        Xinv_obs.Metrics.add (Xinv_obs.Metrics.counter m name) v

(* Flight-recorder marks on ring 0 encode where the run's configuration
   came from, so a postmortem names the policy source without the obs
   recorder attached. *)
let source_code source =
  match source with
  | "fixed" -> 0
  | "cached" -> 1
  | "searched" -> 2
  | "default" -> 3
  | _ -> 4 (* adaptive:* *)

let run_native ~actx ~opts ~source ~input ~checkpoint_every ?obs ~sig_sel
    ~spec_override ~technique ~threads (wl : Wl.Workload.t) =
  let program = wl.Wl.Workload.program input in
  (* Wall-clock baseline and bit-exact reference memory in one pass. *)
  let seq_env = wl.Wl.Workload.fresh_env input in
  let seq_run = Nat.Nbarrier.run_seq ~work:opts.work program seq_env in
  (* The degradation chain shares one overall deadline and one armed fault
     (which fires at most once across every attempt). *)
  let overall_deadline =
    match opts.deadline_ms with
    | None -> None
    | Some ms -> Some (Unix.gettimeofday () +. (ms /. 1e3))
  in
  let wait_timeout_ms =
    match (opts.wait_timeout_ms, opts.deadline_ms, opts.fault) with
    | Some ms, _, _ -> Some ms
    | None, Some dl, _ -> Some (Float.min dl 5000.)
    | None, None, Some _ ->
        (* An armed fault without explicit bounds must still terminate. *)
        Some 5000.
    | None, None, None -> None
  in
  let fault =
    match opts.fault with
    | None -> None
    | Some spec ->
        let sites = Ir.Program.invocations program in
        Some (Nat.Fault.resolve ~domains:threads ~sites spec)
  in
  let stalls_total = ref 0 in
  let degraded = ref [] in
  (* Flight recording: one fresh set of rings per attempt, so a postmortem
     never mixes events across degradation levels; the last attempt's
     recording is surfaced in the outcome. *)
  let want_flight = opts.flight || opts.postmortem_dir <> None in
  let flight_domains = Stdlib.max 2 threads in
  let last_flight = ref None in
  let postmortems = ref [] in
  let attempt_no = ref 0 in
  let write_postmortem ~tech ~next e fr =
    match opts.postmortem_dir with
    | None -> ()
    | Some dir -> (
        let base =
          Printf.sprintf "%s-%s-attempt%d" wl.Wl.Workload.name
            (technique_name tech) !attempt_no
        in
        let counters =
          Option.map
            (fun r -> Xinv_obs.Metrics.counters (Xinv_obs.Recorder.metrics r))
            obs
        in
        match
          Xinv_obs.Postmortem.write ~dir ~base ~workload:wl.Wl.Workload.name
            ~technique:(technique_name tech) ~attempt:!attempt_no
            ~reason:(failure_reason e) ~event:(event_line e)
            ?degraded_to:(Option.map technique_name next)
            ?counters ?flight:fr ()
        with
        | txt, _ -> postmortems := !postmortems @ [ txt ]
        | exception _ ->
            (* Best-effort: an unwritable dump must never mask the failure. *)
            ())
  in
  let rec attempt = function
    | [] -> assert false
    | tech :: rest -> (
        let remaining_ms =
          match overall_deadline with
          | None -> None
          | Some at -> Some ((at -. Unix.gettimeofday ()) *. 1e3)
        in
        (match remaining_ms with
        | Some ms when ms <= 0. ->
            raise
              (Nat.Watchdog.Stalled
                 { role = "facade"; waiting_for = "run deadline";
                   waited_ns = Option.get opts.deadline_ms *. 1e6 })
        | _ -> ());
        let wd =
          Nat.Watchdog.create ?deadline_ms:remaining_ms ?wait_timeout_ms ()
        in
        (* Hand the attempt's watchdog to the caller (the serve daemon's
           client-disconnect cancellation handle, like [on_flight] for the
           recorder) before any domain starts waiting on it. *)
        (match opts.on_watchdog with Some f -> f wd | None -> ());
        let env = wl.Wl.Workload.fresh_env input in
        incr attempt_no;
        let fr =
          if not want_flight then None
          else
            Some
              (Xinv_obs.Flight.create ~capacity:opts.flight_capacity
                 ~domains:flight_domains ())
        in
        last_flight := fr;
        (match fr with
        | Some f -> Xinv_obs.Flight.mark f ~domain:0 (source_code source)
        | None -> ());
        (match (opts.on_flight, fr) with
        | Some f, Some flight -> f flight
        | _ -> ());
        let finish (nrun, profile) =
          stalls_total := !stalls_total + Nat.Watchdog.stalls wd;
          (tech, nrun, profile, env)
        in
        match
          run_native_once ~actx ~opts ~wd ~fault ?fr ~input ~checkpoint_every
            ~sig_sel ~spec_override ~technique:tech ~threads wl env
        with
        | result -> finish result
        | exception e when rest <> [] && opts.degrade && degradable e ->
            stalls_total := !stalls_total + Nat.Watchdog.stalls wd;
            (match e with
            | Nat.Watchdog.Stalled { role; waiting_for; waited_ns } ->
                record_event obs
                  (Xinv_obs.Event.Run_stalled { role; waiting_for; waited_ns })
            | _ -> ());
            let next = List.hd rest in
            write_postmortem ~tech ~next:(Some next) e fr;
            let reason = failure_reason e in
            degraded :=
              !degraded @ [ { d_from = tech; d_to = next; d_reason = reason } ];
            record_event obs
              (Xinv_obs.Event.Degraded
                 { from_ = technique_name tech; to_ = technique_name next; reason });
            attempt rest
        | exception e ->
            stalls_total := !stalls_total + Nat.Watchdog.stalls wd;
            write_postmortem ~tech ~next:None e fr;
            raise e)
  in
  let executed, nrun, nprofile, env = attempt (degrade_chain technique) in
  (if Nat.Fault.fired fault then
     match fault with
     | Some f ->
         let kind, domain, site = Nat.Fault.info f in
         record_event obs
           (Xinv_obs.Event.Fault_injected
              { kind = Nat.Fault.kind_name kind; domain; site })
     | None -> ());
  bump_counter obs "fault.injected" (if Nat.Fault.fired fault then 1 else 0);
  bump_counter obs "watchdog.stall" !stalls_total;
  bump_counter obs "degrade.level" (List.length !degraded);
  (match executed with
  | Domore | Domore_dup ->
      bump_counter obs "domore.tasks_dispatched" nrun.Nat.Nrun.tasks;
      bump_counter obs "domore.sync_conds_forwarded" nrun.Nat.Nrun.conds
  | Speccross | Speccross_inject _ ->
      bump_counter obs "speccross.epochs_committed" nrun.Nat.Nrun.invocations;
      bump_counter obs "speccross.signature_checks" nrun.Nat.Nrun.checks;
      bump_counter obs "speccross.misspeculations" nrun.Nat.Nrun.misspecs;
      bump_counter obs "barrier.crossings" nrun.Nat.Nrun.barrier_episodes
  | _ -> bump_counter obs "barrier.crossings" nrun.Nat.Nrun.barrier_episodes);
  (* Per-cause blocked wall time, as recorded by the engines' Stallcat
     accounting — one Worker_stalled event per cause with the aggregate
     duration, so `xinv stats` and Perfetto name the run's bottleneck. *)
  List.iter
    (fun (name, ns) ->
      match Xinv_obs.Event.stall_cause_of_name name with
      | Some cause ->
          record_event obs (Xinv_obs.Event.Worker_stalled { cause; dur = ns })
      | None -> ())
    nrun.Nat.Nrun.stalls;
  ( nrun, seq_run, nprofile, env, seq_env, executed, !degraded, !last_flight,
    !postmortems )

(* ---- unified entry point ---- *)

(* One fully-resolved execution: every knob pinned, no policy lookup. *)
let run_configured ~actx ~source ~backend ~input ~checkpoint_every ~verify ?obs
    ~sig_sel ~spec_override ~technique ~threads (wl : Wl.Workload.t) =
  assert (threads > 0);
  match backend with
  | `Sim machine ->
      let machine = Option.value machine ~default:Sim.Machine.default in
      let seq_cost, seq_env = sequential_cost wl input in
      let run, profile, env =
        run_sim ~actx ~machine ~input ~checkpoint_every ~sig_sel ~spec_override
          ?obs ~technique ~threads wl
      in
      let mismatches =
        if verify && technique <> Sequential then
          Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem
        else []
      in
      let cost =
        match run with
        | None -> Sim_cycles seq_cost
        | Some r -> Sim_cycles r.Par.Run.makespan
      in
      let speedup =
        match run with None -> 1.0 | Some r -> Par.Run.speedup ~seq_cost r
      in
      {
        technique;
        cost;
        seq_cost = Sim_cycles seq_cost;
        speedup;
        verified = mismatches = [];
        mismatches;
        profile;
        run;
        nrun = None;
        degraded = [];
        analysis_ns = actx.a_ns;
        cache_hits = fst (cache_stats actx);
        cache_misses = snd (cache_stats actx);
        flight = None;
        postmortems = [];
        policy_source = source;
      }
  | `Native opts ->
      let ( nrun, seq_run, profile, env, seq_env, executed, degraded, flight,
            postmortems ) =
        run_native ~actx ~opts ~source ~input ~checkpoint_every ?obs ~sig_sel
          ~spec_override ~technique ~threads wl
      in
      let requested_sequential = technique = Sequential && degraded = [] in
      let mismatches =
        if verify && not requested_sequential then
          Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem
        else []
      in
      let seq_wall_ns = seq_run.Nat.Nrun.wall_ns in
      {
        technique = executed;
        cost = Wall_ns nrun.Nat.Nrun.wall_ns;
        seq_cost = Wall_ns seq_wall_ns;
        speedup = Nat.Nrun.speedup ~seq_wall_ns nrun;
        verified = mismatches = [];
        mismatches;
        profile;
        run = None;
        nrun = Some nrun;
        degraded;
        analysis_ns = actx.a_ns;
        cache_hits = fst (cache_stats actx);
        cache_misses = snd (cache_stats actx);
        flight;
        postmortems;
        policy_source = source;
      }

(* ---- policy resolution ---- *)

let technique_of_policy (p : Cache.Policy.t) =
  match technique_of_string p.Cache.Policy.technique with
  | Some t -> t
  | None -> Sequential

(* The policy pins the performance axes (grain, batch); the caller's
   native_opts keep supplying the environmental ones (work model, pool,
   faults, deadlines, flight recording). *)
let backend_of_policy ~native (p : Cache.Policy.t) =
  match p.Cache.Policy.backend with
  | `Sim -> `Sim None
  | `Native ->
      `Native
        { native with grain = p.Cache.Policy.grain; batch = p.Cache.Policy.batch }

(* ---- online adaptive controller ---- *)

type adaptive_phase = [ `Probing | `Candidate | `Sequential ]

type adaptive = {
  a_probe_runs : int;
  a_margin : float;
  mutable a_runs : int;
  mutable a_cand_ns : float;
  mutable a_seq_ns : float;
  mutable a_phase : adaptive_phase;
  mutable a_bad : int;
  mutable a_switches : int;
}

let adaptive ?(probe_runs = 3) ?(margin = 1.1) () =
  {
    a_probe_runs = Stdlib.max 1 probe_runs;
    a_margin = margin;
    a_runs = 0;
    a_cand_ns = 0.;
    a_seq_ns = 0.;
    a_phase = `Probing;
    a_bad = 0;
    a_switches = 0;
  }

let adaptive_phase t = t.a_phase
let adaptive_switches t = t.a_switches

(* One observation of the candidate policy against the sequential baseline
   measured inside the same run.  Pure decision logic — no events — so tests
   can drive the state machine with synthetic timings. *)
let adaptive_note t ~cand_ns ~seq_ns =
  t.a_runs <- t.a_runs + 1;
  t.a_cand_ns <- t.a_cand_ns +. cand_ns;
  t.a_seq_ns <- t.a_seq_ns +. seq_ns;
  match t.a_phase with
  | `Sequential -> `Keep
  | `Probing ->
      if t.a_runs < t.a_probe_runs then `Keep
      else if t.a_cand_ns <= t.a_margin *. t.a_seq_ns then begin
        t.a_phase <- `Candidate;
        `Keep
      end
      else begin
        t.a_phase <- `Sequential;
        t.a_switches <- t.a_switches + 1;
        `Switch
      end
  | `Candidate ->
      if cand_ns > t.a_margin *. seq_ns then begin
        t.a_bad <- t.a_bad + 1;
        if t.a_bad >= 2 then begin
          t.a_phase <- `Sequential;
          t.a_switches <- t.a_switches + 1;
          `Switch
        end
        else `Keep
      end
      else begin
        t.a_bad <- 0;
        `Keep
      end

type policy =
  [ `Fixed | `Auto | `Adaptive of adaptive | `Reified of Cache.Policy.t * string ]

(* ---- the request record ----

   Every way of asking this library for one execution — the historical
   optional-argument [run], the reified-policy [run_policy], the autotuner's
   measurement runs, the CLI, and one serve-daemon submission — is a value
   of this record.  [run_request] is the single execution path; everything
   else constructs a [Request.t] and calls it. *)

module Request = struct
  type t = {
    workload : Wl.Workload.t;
    technique : technique;
    threads : int;
    backend : backend;
    input : Wl.Workload.input;
    checkpoint_every : int;
    verify : bool;
    cache : [ `Off | `Ro | `Rw ];
    cache_dir : string option;
    obs : Xinv_obs.Recorder.t option;
    policy : policy;
    sig_kind : [ `Range | `Segmented | `Bloom | `Exact ] option;
    spec_distance : int option;
  }

  let make ?(backend = `Sim None) ?(input = Wl.Workload.Ref)
      ?(checkpoint_every = 1000) ?(verify = true) ?(cache = `Off) ?cache_dir
      ?obs ?(policy = `Fixed) ?sig_kind ?spec_distance ~technique ~threads
      workload =
    {
      workload;
      technique;
      threads;
      backend;
      input;
      checkpoint_every;
      verify;
      cache;
      cache_dir;
      obs;
      policy;
      sig_kind;
      spec_distance;
    }

  (* The caller's native_opts keep supplying the environmental knobs (work
     model, pool, faults, deadlines, flight recording) when a policy
     overrides the performance axes. *)
  let native_opts t =
    match t.backend with `Native o -> o | `Sim _ -> native_defaults

  (* Pin every axis a stored policy decides; the result is a fully-resolved
     [`Fixed] request (this is what [run_with_policy] used to do). *)
  let apply_policy (p : Cache.Policy.t) t =
    {
      t with
      backend = backend_of_policy ~native:(native_opts t) p;
      technique = technique_of_policy p;
      threads = Stdlib.max 1 p.Cache.Policy.domains;
      checkpoint_every = p.Cache.Policy.epoch_size;
      sig_kind = Some p.Cache.Policy.sig_kind;
      spec_distance = p.Cache.Policy.spec_distance;
      policy = `Fixed;
    }
end

let exec ~actx ~source (r : Request.t) =
  run_configured ~actx ~source ~backend:r.Request.backend ~input:r.Request.input
    ~checkpoint_every:r.Request.checkpoint_every ~verify:r.Request.verify
    ?obs:r.Request.obs ~sig_sel:r.Request.sig_kind
    ~spec_override:r.Request.spec_distance ~technique:r.Request.technique
    ~threads:r.Request.threads r.Request.workload

let run_request (r : Request.t) =
  assert (r.Request.threads > 0);
  let obs = r.Request.obs in
  let wl = r.Request.workload in
  let input = r.Request.input in
  let actx = analysis_ctx ?obs r.Request.cache r.Request.cache_dir in
  let lookup_tuned () =
    match actx.a_cache with
    | None -> None
    | Some c ->
        timed actx (fun () ->
            Cache.Analysis.cached_policy c
              (wl.Wl.Workload.program input)
              (wl.Wl.Workload.fresh_env input))
  in
  match r.Request.policy with
  | `Fixed -> exec ~actx ~source:"fixed" r
  | `Reified (p, source) ->
      bump_counter obs ("policy.source." ^ source) 1;
      record_event obs
        (Xinv_obs.Event.Policy_applied
           { source; policy = Cache.Policy.to_string p });
      exec ~actx ~source (Request.apply_policy p r)
  | `Auto -> (
      match lookup_tuned () with
      | Some tuned ->
          let p = tuned.Cache.Policy.policy in
          bump_counter obs "policy.source.cached" 1;
          record_event obs
            (Xinv_obs.Event.Policy_applied
               { source = "cached"; policy = Cache.Policy.to_string p });
          exec ~actx ~source:"cached" (Request.apply_policy p r)
      | None ->
          bump_counter obs "policy.source.default" 1;
          record_event obs
            (Xinv_obs.Event.Policy_applied
               {
                 source = "default";
                 policy = technique_name r.Request.technique;
               });
          exec ~actx ~source:"default" r)
  | `Adaptive ctl ->
      let o =
        match ctl.a_phase with
        | `Sequential ->
            exec ~actx ~source:"adaptive:sequential"
              {
                r with
                Request.technique = Sequential;
                threads = 1;
                sig_kind = None;
                spec_distance = None;
                policy = `Fixed;
              }
        | `Probing | `Candidate -> (
            match lookup_tuned () with
            | Some tuned ->
                exec ~actx ~source:"adaptive:cached"
                  (Request.apply_policy tuned.Cache.Policy.policy r)
            | None -> exec ~actx ~source:"adaptive:default" r)
      in
      (match ctl.a_phase with
      | `Sequential -> ()
      | `Probing | `Candidate -> (
          let from_phase =
            match ctl.a_phase with `Probing -> "probe" | _ -> "candidate"
          in
          match
            adaptive_note ctl ~cand_ns:(cost_value o.cost)
              ~seq_ns:(cost_value o.seq_cost)
          with
          | `Keep -> ()
          | `Switch ->
              let ratio =
                if cost_value o.seq_cost > 0. then
                  ctl.a_cand_ns /. Stdlib.max 1. ctl.a_seq_ns
                else 0.
              in
              bump_counter obs "tune.switch" 1;
              record_event obs
                (Xinv_obs.Event.Tune_switch
                   {
                     from_ =
                       Printf.sprintf "%s:%s" from_phase
                         (technique_name o.technique);
                     to_ = "sequential";
                     reason =
                       Printf.sprintf "candidate at %.2fx of sequential" ratio;
                   })));
      o

(* ---- deprecated wrappers ---- *)

let run ?backend ?input ?checkpoint_every ?verify ?cache ?cache_dir ?obs
    ?policy ?sig_kind ?spec_distance ~technique ~threads (wl : Wl.Workload.t) =
  run_request
    (Request.make ?backend ?input ?checkpoint_every ?verify ?cache ?cache_dir
       ?obs ?policy ?sig_kind ?spec_distance ~technique ~threads wl)

let run_policy ?input ?verify ?cache ?cache_dir ?obs
    ?(native = native_defaults) ?(source = "searched") (p : Cache.Policy.t) wl
    =
  (* Technique and threads are placeholders: [`Reified] pins every axis the
     policy decides before execution. *)
  run_request
    (Request.make
       ~backend:(`Native native)
       ?input ?verify ?cache ?cache_dir ?obs
       ~policy:(`Reified (p, source))
       ~technique:Sequential ~threads:1 wl)
