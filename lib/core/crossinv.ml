module Ir = Xinv_ir
module Sim = Xinv_sim
module Par = Xinv_parallel
module Wl = Xinv_workloads

type technique =
  | Sequential
  | Barrier
  | Doacross
  | Dswp
  | Inspector
  | Tls
  | Domore
  | Domore_dup
  | Speccross
  | Speccross_inject of int

let technique_name = function
  | Sequential -> "sequential"
  | Barrier -> "barrier"
  | Doacross -> "doacross"
  | Dswp -> "dswp"
  | Inspector -> "inspector-executor"
  | Tls -> "tls"
  | Domore -> "domore"
  | Domore_dup -> "domore-dup"
  | Speccross -> "speccross"
  | Speccross_inject e -> Printf.sprintf "speccross-inject@%d" e

let technique_of_string s =
  match String.lowercase_ascii s with
  | "sequential" | "seq" -> Some Sequential
  | "barrier" | "pthread" -> Some Barrier
  | "doacross" -> Some Doacross
  | "dswp" -> Some Dswp
  | "inspector" | "inspector-executor" | "ie" -> Some Inspector
  | "tls" -> Some Tls
  | "domore" -> Some Domore
  | "domore-dup" -> Some Domore_dup
  | "speccross" -> Some Speccross
  | _ -> None

type outcome = {
  run : Par.Run.t option;
  seq_cost : float;
  speedup : float;
  verified : bool;
  mismatches : (string * int) list;
  profile : Xinv_speccross.Profiler.t option;
}

let spec_mode_of_plan (wl : Wl.Workload.t) label =
  match Wl.Workload.technique_of wl label with
  | Par.Intra.Doall | Par.Intra.Spec_doall -> Xinv_speccross.Runtime.M_doall
  | Par.Intra.Localwrite -> Xinv_speccross.Runtime.M_localwrite
  | Par.Intra.Doany -> Xinv_speccross.Runtime.M_doall

let applicable technique (wl : Wl.Workload.t) =
  match technique with
  | Sequential | Barrier | Doacross | Dswp -> Ok ()
  | Inspector | Tls | Domore | Domore_dup ->
      let env = wl.Wl.Workload.fresh_env Wl.Workload.Ref in
      Par.Plan.domore_applicable (wl.Wl.Workload.program Wl.Workload.Ref) env
  | Speccross | Speccross_inject _ ->
      if
        List.exists
          (fun (_, t) -> t = Par.Intra.Spec_doall)
          wl.Wl.Workload.plan
      then Error "inner loop requires speculative intra-invocation parallelization"
      else Par.Plan.speccross_applicable (wl.Wl.Workload.program Wl.Workload.Ref)

let sequential_cost (wl : Wl.Workload.t) input =
  let env = wl.Wl.Workload.fresh_env input in
  (Ir.Seq_interp.run (wl.Wl.Workload.program input) env, env)

let execute ?(machine = Sim.Machine.default) ?(input = Wl.Workload.Ref)
    ?(checkpoint_every = 1000) ?(verify = true) ?obs ~technique ~threads
    (wl : Wl.Workload.t) =
  assert (threads > 0);
  let program = wl.Wl.Workload.program input in
  let seq_cost, seq_env = sequential_cost wl input in
  let env = wl.Wl.Workload.fresh_env input in
  let plan = Wl.Workload.plan_fn wl in
  let run, profile =
    match technique with
    | Sequential -> (None, None)
    | Barrier ->
        (Some (Par.Barrier_exec.run ~machine ?obs ~threads ~plan program env), None)
    | Doacross -> (Some (Par.Doacross.run ~machine ?obs ~threads program env), None)
    | Dswp -> (Some (Par.Dswp.run ~machine ?obs ~threads program env), None)
    | Inspector -> (
        match Ir.Mtcg.generate program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith
              (Printf.sprintf "inspector-executor inapplicable to %s: %s"
                 wl.Wl.Workload.name reason)
        | Ir.Mtcg.Plan mplan ->
            (Some (Par.Inspector.run ~machine ~threads ~plan:mplan program env), None))
    | Tls -> (
        match Ir.Mtcg.generate program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith
              (Printf.sprintf "TLS inapplicable to %s: %s" wl.Wl.Workload.name reason)
        | Ir.Mtcg.Plan mplan ->
            (Some (Par.Tls.run ~machine ~threads ~plan:mplan program env), None))
    | Domore -> (
        match Ir.Mtcg.generate program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith (Printf.sprintf "DOMORE inapplicable to %s: %s" wl.Wl.Workload.name reason)
        | Ir.Mtcg.Plan mplan ->
            let workers = Stdlib.max 1 (threads - 1) in
            let config =
              {
                Xinv_domore.Domore.machine;
                policy =
                  (if wl.Wl.Workload.mem_partition then Xinv_domore.Policy.Mem_partition
                   else Xinv_domore.Policy.Round_robin);
                workers;
              }
            in
            (Some (Xinv_domore.Domore.run ~config ?obs ~plan:mplan program env), None))
    | Domore_dup -> (
        match Ir.Mtcg.generate program env with
        | Ir.Mtcg.Inapplicable reason ->
            failwith (Printf.sprintf "DOMORE inapplicable to %s: %s" wl.Wl.Workload.name reason)
        | Ir.Mtcg.Plan mplan ->
            let config =
              {
                Xinv_domore.Domore.machine;
                policy =
                  (if wl.Wl.Workload.mem_partition then Xinv_domore.Policy.Mem_partition
                   else Xinv_domore.Policy.Round_robin);
                workers = threads;
              }
            in
            (Some (Xinv_domore.Duplicated.run ~config ?obs ~plan:mplan program env), None))
    | Speccross | Speccross_inject _ ->
        let train_input =
          match input with
          | Wl.Workload.Ref_spec -> Wl.Workload.Train_spec
          | _ -> Wl.Workload.Train
        in
        let train_env = wl.Wl.Workload.fresh_env train_input in
        let prof =
          Xinv_speccross.Profiler.profile (wl.Wl.Workload.program train_input) train_env
        in
        let workers = Stdlib.max 1 (threads - 1) in
        if not (Xinv_speccross.Profiler.profitable prof ~workers) then
          (* §4.4: a minimum dependence distance below the worker count
             recommends against speculating — fall back to real barriers. *)
          ( Some (Par.Barrier_exec.run ~machine ?obs ~threads ~plan program env),
            Some prof )
        else
          let inject =
            match technique with Speccross_inject e -> Some (e, 0) | _ -> None
          in
          let config =
            {
              Xinv_speccross.Runtime.machine;
              workers;
              sig_kind =
                Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
              checkpoint_every;
              spec_distance =
                (match prof.Xinv_speccross.Profiler.min_task_distance with
                | Some d -> Stdlib.max workers d
                | None ->
                    (* No profiled conflict: still bound the lead (a few
                       invocations) so threads stay loosely coupled and the
                       checker's comparison windows stay small. *)
                    Stdlib.max (4 * workers)
                      (int_of_float
                         (4. *. prof.Xinv_speccross.Profiler.avg_tasks_per_epoch)));
              mode_of = spec_mode_of_plan wl;
              inject_misspec = inject;
              non_spec_barriers = false;
              tm_style = false;
            }
          in
          (Some (Xinv_speccross.Runtime.run ~config ?obs program env), Some prof)
  in
  let mismatches =
    if verify && technique <> Sequential then
      Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem
    else []
  in
  let speedup =
    match run with
    | None -> 1.0
    | Some r -> Par.Run.speedup ~seq_cost r
  in
  {
    run;
    seq_cost;
    speedup;
    verified = mismatches = [];
    mismatches;
    profile;
  }

module Nat = Xinv_native

type native_outcome = {
  nrun : Nat.Nrun.t;
  seq_wall_ns : float;
  nspeedup : float;
  nverified : bool;
  nmismatches : (string * int) list;
  nprofile : Xinv_speccross.Profiler.t option;
}

let native_mtcg_plan program env name =
  match Ir.Mtcg.generate program env with
  | Ir.Mtcg.Inapplicable reason ->
      failwith (Printf.sprintf "DOMORE inapplicable to %s: %s" name reason)
  | Ir.Mtcg.Plan mplan -> mplan

let native_pool_size ~technique ~threads =
  match technique with
  | Sequential -> 0
  | Barrier | Domore_dup -> threads - 1
  | Domore | Speccross | Speccross_inject _ -> Stdlib.max 1 (threads - 1)
  | Doacross | Dswp | Inspector | Tls -> 0

let execute_native ?(input = Wl.Workload.Ref) ?(checkpoint_every = 1000)
    ?(verify = true) ?(work = Nat.Work.Off) ?pool ?obs ~technique ~threads
    (wl : Wl.Workload.t) =
  assert (threads > 0);
  let program = wl.Wl.Workload.program input in
  (* Wall-clock baseline and bit-exact reference memory in one pass. *)
  let seq_env = wl.Wl.Workload.fresh_env input in
  let seq_run = Nat.Nbarrier.run_seq ~work program seq_env in
  let env = wl.Wl.Workload.fresh_env input in
  let plan = Wl.Workload.plan_fn wl in
  let with_pool f =
    match pool with
    | Some pool -> f pool
    | None -> Nat.Pool.with_pool ~workers:(native_pool_size ~technique ~threads) f
  in
  let policy =
    if wl.Wl.Workload.mem_partition then Xinv_domore.Policy.Mem_partition
    else Xinv_domore.Policy.Round_robin
  in
  let nrun, nprofile =
    match technique with
    | Sequential -> (Nat.Nbarrier.run_seq ~work program env, None)
    | Doacross | Dswp | Inspector | Tls ->
        failwith
          (Printf.sprintf "%s has no native backend (simulator only)"
             (technique_name technique))
    | Barrier ->
        ( with_pool (fun pool ->
              Nat.Nbarrier.run ~pool ~work ~threads ~plan program env),
          None )
    | Domore ->
        let mplan = native_mtcg_plan program env wl.Wl.Workload.name in
        let workers = Stdlib.max 1 (threads - 1) in
        let config =
          { (Nat.Ndomore.default_config ~workers) with Nat.Ndomore.policy; work }
        in
        ( with_pool (fun pool ->
              Nat.Ndomore.run ~pool ~config ~plan:mplan program env),
          None )
    | Domore_dup ->
        let mplan = native_mtcg_plan program env wl.Wl.Workload.name in
        let config =
          { (Nat.Ndomore.default_config ~workers:threads) with
            Nat.Ndomore.policy; work }
        in
        ( with_pool (fun pool ->
              Nat.Ndomore.run_duplicated ~pool ~config ~plan:mplan program env),
          None )
    | Speccross | Speccross_inject _ ->
        let train_input =
          match input with
          | Wl.Workload.Ref_spec -> Wl.Workload.Train_spec
          | _ -> Wl.Workload.Train
        in
        let train_env = wl.Wl.Workload.fresh_env train_input in
        let prof =
          Xinv_speccross.Profiler.profile
            (wl.Wl.Workload.program train_input)
            train_env
        in
        let workers = Stdlib.max 1 (threads - 1) in
        if not (Xinv_speccross.Profiler.profitable prof ~workers) then
          (* Same §4.4 decision as the simulated path: a short minimum
             dependence distance recommends real barriers instead. *)
          ( with_pool (fun pool ->
                Nat.Nbarrier.run ~pool ~work ~threads ~plan program env),
            Some prof )
        else
          let inject =
            match technique with Speccross_inject e -> Some (e, 0) | _ -> None
          in
          let config =
            {
              (Nat.Nspec.default_config ~workers) with
              Nat.Nspec.sig_kind =
                Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
              checkpoint_every;
              spec_distance =
                (match prof.Xinv_speccross.Profiler.min_task_distance with
                | Some d -> Stdlib.max workers d
                | None ->
                    Stdlib.max (4 * workers)
                      (int_of_float
                         (4. *. prof.Xinv_speccross.Profiler.avg_tasks_per_epoch)));
              mode_of = spec_mode_of_plan wl;
              inject_misspec = inject;
              work;
            }
          in
          ( with_pool (fun pool -> Nat.Nspec.run ~pool ~config program env),
            Some prof )
  in
  (match obs with
  | None -> ()
  | Some obs ->
      let m = Xinv_obs.Recorder.metrics obs in
      let bump name v =
        if v > 0 then Xinv_obs.Metrics.add (Xinv_obs.Metrics.counter m name) v
      in
      (match technique with
      | Domore | Domore_dup ->
          bump "domore.tasks_dispatched" nrun.Nat.Nrun.tasks;
          bump "domore.sync_conds_forwarded" nrun.Nat.Nrun.conds
      | Speccross | Speccross_inject _ ->
          bump "speccross.epochs_committed" nrun.Nat.Nrun.invocations;
          bump "speccross.signature_checks" nrun.Nat.Nrun.checks;
          bump "speccross.misspeculations" nrun.Nat.Nrun.misspecs;
          bump "barrier.crossings" nrun.Nat.Nrun.barrier_episodes
      | _ -> bump "barrier.crossings" nrun.Nat.Nrun.barrier_episodes));
  let nmismatches =
    if verify && technique <> Sequential then
      Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem
    else []
  in
  {
    nrun;
    seq_wall_ns = seq_run.Nat.Nrun.wall_ns;
    nspeedup = Nat.Nrun.speedup ~seq_wall_ns:seq_run.Nat.Nrun.wall_ns nrun;
    nverified = nmismatches = [];
    nmismatches;
    nprofile;
  }
