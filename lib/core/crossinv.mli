(** Public facade: run a workload under any of the parallelization systems
    this library reproduces, on a simulated multicore, and compare against
    sequential execution.

    Quickstart:
    {[
      let wl = Xinv_workloads.Registry.find "CG" in
      let outcome = Crossinv.execute ~technique:Crossinv.Domore ~threads:8 wl in
      Format.printf "speedup %.2fx, verified: %b@."
        outcome.Crossinv.speedup outcome.Crossinv.verified
    ]} *)

type technique =
  | Sequential
  | Barrier  (** per-invocation parallelization (Table 5.1 plan) + pthread barriers *)
  | Doacross
  | Dswp
  | Inspector  (** inspector-executor (§2.2): wavefront scheduling *)
  | Tls  (** thread-level speculation (§2.2): in-order-commit speculation *)
  | Domore  (** Chapter 3: scheduler/worker runtime engine *)
  | Domore_dup  (** §3.4: duplicated scheduler, no barriers *)
  | Speccross  (** Chapter 4: speculative barriers *)
  | Speccross_inject of int
      (** SPECCROSS with one forced misspeculation at the given epoch *)

val technique_name : technique -> string

val technique_of_string : string -> technique option

type outcome = {
  run : Xinv_parallel.Run.t option;  (** [None] for sequential execution *)
  seq_cost : float;  (** sequential virtual time of the same input *)
  speedup : float;
  verified : bool;  (** final memory identical to sequential execution *)
  mismatches : (string * int) list;  (** locations that differ, when any *)
  profile : Xinv_speccross.Profiler.t option;  (** SPECCROSS profiling result *)
}

val applicable :
  technique -> Xinv_workloads.Workload.t -> (unit, string) result
(** Compile-time applicability of the technique to the workload. *)

val execute :
  ?machine:Xinv_sim.Machine.t ->
  ?input:Xinv_workloads.Workload.input ->
  ?checkpoint_every:int ->
  ?verify:bool ->
  ?obs:Xinv_obs.Recorder.t ->
  technique:technique ->
  threads:int ->
  Xinv_workloads.Workload.t ->
  outcome
(** Runs the workload under the technique with [threads] simulated cores
    total (DOMORE: 1 scheduler + workers; SPECCROSS: workers + 1 checker).
    SPECCROSS profiles the train input first, as the paper's toolchain
    does.  With [?obs], the run is instrumented: the recorder collects
    typed events and metrics (retrievable via [Run.report] on the
    outcome's run, which also carries the recorder).  Recording consumes no
    virtual time — results are bit-identical with and without it.
    Inspector and TLS predate the event log and only surface
    engine-derived accounting.  @raise Failure when the technique is
    inapplicable. *)

val spec_mode_of_plan :
  Xinv_workloads.Workload.t -> string -> Xinv_speccross.Runtime.mode
(** Map the workload's Table 5.1 plan onto SPECCROSS execution modes. *)

(** {1 Native backend}

    The same programs on real OCaml 5 domains, measured in wall-clock time
    instead of simulated cycles. *)

type native_outcome = {
  nrun : Xinv_native.Nrun.t;
  seq_wall_ns : float;  (** native sequential wall time of the same input *)
  nspeedup : float;  (** wall-clock speedup over native sequential *)
  nverified : bool;  (** final memory identical to sequential execution *)
  nmismatches : (string * int) list;
  nprofile : Xinv_speccross.Profiler.t option;
}

val execute_native :
  ?input:Xinv_workloads.Workload.input ->
  ?checkpoint_every:int ->
  ?verify:bool ->
  ?work:Xinv_native.Work.t ->
  ?pool:Xinv_native.Pool.t ->
  ?obs:Xinv_obs.Recorder.t ->
  technique:technique ->
  threads:int ->
  Xinv_workloads.Workload.t ->
  native_outcome
(** Runs the workload on [threads] real domains total (DOMORE: scheduler +
    workers; SPECCROSS: workers + checker — both count the caller's domain).
    [?work] converts simulated statement costs into calibrated spinning so
    wall-clock scaling reflects the workload's cost model; the default
    [Work.Off] runs the raw memory operations.  [?pool] reuses an existing
    domain pool (it must hold at least [threads - 1] domains); otherwise a
    pool is spun up for this call.  SPECCROSS profiles the train input and
    falls back to native barriers when unprofitable, exactly like the
    simulated path.  With [?obs], the same counters the simulator maintains
    ([domore.*], [speccross.*], [barrier.crossings]) are bumped from the
    native run's totals.
    @raise Failure for techniques with no native backend
    (Doacross, DSWP, Inspector, TLS). *)
