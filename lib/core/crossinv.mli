(** Public facade: run a workload under any of the parallelization systems
    this library reproduces — on a simulated multicore or on real OCaml 5
    domains — and compare against sequential execution.

    Quickstart:
    {[
      let wl = Xinv_workloads.Registry.find "CG" in
      (* simulated machine (default backend) *)
      let o = Crossinv.run ~technique:Crossinv.Domore ~threads:8 wl in
      (* real domains, with robustness bounds *)
      let o' =
        Crossinv.run
          ~backend:
            (`Native { Crossinv.native_defaults with deadline_ms = Some 60_000. })
          ~technique:Crossinv.Domore ~threads:4 wl
      in
      Format.printf "sim %.2fx / native %.2fx, verified: %b@."
        o.Crossinv.speedup o'.Crossinv.speedup o'.Crossinv.verified
    ]} *)

type technique =
  | Sequential
  | Barrier  (** per-invocation parallelization (Table 5.1 plan) + pthread barriers *)
  | Doacross
  | Dswp
  | Inspector  (** inspector-executor (§2.2): wavefront scheduling *)
  | Tls  (** thread-level speculation (§2.2): in-order-commit speculation *)
  | Domore  (** Chapter 3: scheduler/worker runtime engine *)
  | Domore_dup  (** §3.4: duplicated scheduler, no barriers *)
  | Speccross  (** Chapter 4: speculative barriers *)
  | Speccross_inject of int
      (** SPECCROSS with one forced misspeculation at the given epoch *)

val technique_name : technique -> string

val technique_of_string : string -> technique option

(** {1 The unified entry point} *)

type cost =
  | Sim_cycles of float  (** virtual cycles on the simulated machine *)
  | Wall_ns of float  (** wall-clock nanoseconds on real domains *)

val cost_value : cost -> float
val cost_to_string : cost -> string

type native_opts = {
  work : Xinv_native.Work.t;
      (** calibrated spinning per simulated cost unit; [Off] runs raw ops *)
  pool : Xinv_native.Pool.t option;
      (** reuse an existing domain pool; one is spun up per run otherwise *)
  fault : Xinv_native.Fault.spec option;  (** armed fault, at most one firing *)
  deadline_ms : float option;  (** overall run deadline, degradation included *)
  wait_timeout_ms : float option;
      (** per-wait bound; defaults to [min deadline 5000] when a deadline is
          set, 5000 when only a fault is armed, unbounded otherwise *)
  degrade : bool;  (** retry failed runs under weaker techniques (default) *)
  grain : int;
      (** iterations dispatched/distributed as one chunk (barrier
          block-cyclic blocks, DOMORE chunk frames, SPECCROSS speculative
          blocks).  Default 1: per-iteration protocols, bit-identical to
          the simulator's dispatch. *)
  batch : int;
      (** native write-combining factor: words per {!Xinv_native.Spsc.Batch}
          publish in the DOMORE scheduler, owned iterations per
          completion-cell publish in the duplicated variant.  Default 32;
          1 publishes per word/iteration like the pre-batching protocol. *)
  flight : bool;
      (** attach a {!Xinv_obs.Flight} recorder to every attempt (default
          off).  Implied by [postmortem_dir]. *)
  flight_capacity : int;
      (** per-domain ring capacity (default
          {!Xinv_obs.Flight.default_capacity}) *)
  postmortem_dir : string option;
      (** when set, every failed attempt (injected fault, watchdog stall or
          cancellation, worker exception — whether it degrades or escapes)
          dumps a text postmortem plus a Perfetto trace of its flight
          recording into this directory; paths are surfaced in
          {!outcome.postmortems} *)
  on_flight : (Xinv_obs.Flight.t -> unit) option;
      (** called with each attempt's fresh flight recorder before the
          attempt starts executing — the hook [xinv top] uses to observe a
          live run.  The rings are still being written when this fires. *)
  on_watchdog : (Xinv_native.Watchdog.t -> unit) option;
      (** called with each attempt's fresh watchdog before any domain
          starts waiting on it — the serve daemon's cancellation handle:
          [Watchdog.cancel] on it unwinds just that request's cohort
          (e.g. when the submitting client disconnects) without touching
          a shared pool. *)
}

val native_defaults : native_opts

type backend = [ `Sim of Xinv_sim.Machine.t option | `Native of native_opts ]

type degrade_step = { d_from : technique; d_to : technique; d_reason : string }

type outcome = {
  technique : technique;
      (** the technique that actually executed (after degradation) *)
  cost : cost;  (** the run's cost in its backend's unit *)
  seq_cost : cost;  (** sequential execution of the same input, same unit *)
  speedup : float;
  verified : bool;  (** final memory identical to sequential execution *)
  mismatches : (string * int) list;  (** locations that differ, when any *)
  profile : Xinv_speccross.Profiler.t option;  (** SPECCROSS profiling result *)
  run : Xinv_parallel.Run.t option;  (** simulated backend's run record *)
  nrun : Xinv_native.Nrun.t option;  (** native backend's run record *)
  degraded : degrade_step list;  (** degradation steps taken, in order *)
  analysis_ns : float;
      (** wall time spent in compile-time analysis and profiling
          ([Mtcg.generate], [Profiler.profile]) — cached or fresh *)
  cache_hits : int;  (** analysis-cache hits served during this run *)
  cache_misses : int;  (** analysis-cache misses (0/0 when the cache is off) *)
  flight : Xinv_obs.Flight.t option;
      (** the last attempt's flight recording (native backend with
          [flight] or [postmortem_dir] set; [None] otherwise) *)
  postmortems : string list;
      (** text postmortem paths written during this run, in degradation
          order (each sits next to a [.trace.json] Perfetto dump) *)
  policy_source : string;
      (** where the run's configuration came from: ["fixed"] (caller's
          arguments, the default), ["cached"] / ["default"] for
          [~policy:`Auto], ["searched"] for {!run_policy}, or
          ["adaptive:cached"] / ["adaptive:default"] /
          ["adaptive:sequential"] under the online controller *)
}

val applicable :
  ?backend:[ `Sim | `Native ] ->
  ?cache:[ `Off | `Ro | `Rw ] ->
  ?cache_dir:string ->
  technique ->
  Xinv_workloads.Workload.t ->
  (unit, string) result
(** Compile-time applicability of the technique to the workload on the
    given backend (default [`Sim]).  Native inapplicability (Doacross,
    DSWP, Inspector, TLS have no native engines) is an [Error], not an
    exception.  [cache]/[cache_dir] as in {!run}: the DOMORE applicability
    check is itself a full [Mtcg.generate] and benefits the same way. *)

val supported : backend:[ `Sim | `Native ] -> technique list
(** Techniques with an engine on the backend. *)

(** {1 Execution policies}

    The facade can take its configuration from three places: the caller's
    arguments ([`Fixed], the historical behaviour), a tuned policy
    persisted in the analysis cache by the {!Xinv_tune} autotuner
    ([`Auto]), or an online controller that probes a candidate policy
    against the per-run sequential baseline and abandons it mid-stream
    when it does not pay ([`Adaptive]). *)

type adaptive
(** Mutable controller state shared across a stream of {!run} calls. *)

type adaptive_phase = [ `Probing | `Candidate | `Sequential ]

val adaptive : ?probe_runs:int -> ?margin:float -> unit -> adaptive
(** A fresh controller: the first [probe_runs] (default 3) invocations run
    the candidate policy; if their cumulative wall time stays within
    [margin] (default 1.1) of the cumulative sequential baseline the
    candidate is committed, otherwise the stream switches to sequential
    execution.  A committed candidate is still watched: two consecutive
    losing runs switch to sequential for the rest of the stream, so an
    adaptive stream can never end slower than [margin] × sequential. *)

val adaptive_phase : adaptive -> adaptive_phase
val adaptive_switches : adaptive -> int

val adaptive_note :
  adaptive -> cand_ns:float -> seq_ns:float -> [ `Keep | `Switch ]
(** The controller's decision function, exposed for tests: feed one
    run's candidate and sequential timings, get the transition. {!run}
    with [~policy:(`Adaptive ctl)] calls this internally. *)

type policy =
  [ `Fixed  (** the request's own fields, the historical behaviour *)
  | `Auto  (** tuned policy from the analysis cache, if one is stored *)
  | `Adaptive of adaptive  (** [`Auto] + online sequential-baseline probe *)
  | `Reified of Xinv_cache.Policy.t * string
    (** this exact policy record; the string labels [policy_source] and
        the [policy.source.*] counter (["searched"] from the autotuner) *)
  ]

(** {1 The request record}

    Every way of asking this library for one execution — the historical
    optional-argument {!run}, the reified-policy {!run_policy}, the
    autotuner's measurement runs, the CLI, and one serve-daemon
    submission — is a value of {!Request.t}.  {!run_request} is the single
    execution path; everything else constructs a request and submits it. *)

module Request : sig
  type t = {
    workload : Xinv_workloads.Workload.t;
    technique : technique;
    threads : int;
    backend : backend;
    input : Xinv_workloads.Workload.input;
    checkpoint_every : int;
    verify : bool;
    cache : [ `Off | `Ro | `Rw ];
    cache_dir : string option;
    obs : Xinv_obs.Recorder.t option;
    policy : policy;
    sig_kind : [ `Range | `Segmented | `Bloom | `Exact ] option;
    spec_distance : int option;
  }

  val make :
    ?backend:backend ->
    ?input:Xinv_workloads.Workload.input ->
    ?checkpoint_every:int ->
    ?verify:bool ->
    ?cache:[ `Off | `Ro | `Rw ] ->
    ?cache_dir:string ->
    ?obs:Xinv_obs.Recorder.t ->
    ?policy:policy ->
    ?sig_kind:[ `Range | `Segmented | `Bloom | `Exact ] ->
    ?spec_distance:int ->
    technique:technique ->
    threads:int ->
    Xinv_workloads.Workload.t ->
    t
  (** Smart constructor with the facade's defaults: simulated backend
      (default machine), [Ref] input, checkpoint every 1000, verification
      on, cache off, [`Fixed] policy. *)

  val native_opts : t -> native_opts
  (** The request's native options, or {!native_defaults} on the sim
      backend — the environmental knobs a policy never overrides. *)

  val apply_policy : Xinv_cache.Policy.t -> t -> t
  (** Pin every axis the policy decides — backend, technique, threads,
      grain, batch, signature kind, speculative distance, epoch size —
      onto the request, preserving its environmental knobs, and mark it
      [`Fixed] (fully resolved). *)
end

val run_request : Request.t -> outcome
(** The single execution path.  Resolves the request's [policy] field
    (bumping [policy.source.*] counters and emitting [Policy_applied] /
    [Tune_switch] events when [obs] is attached), then executes.  See
    {!run} for the execution semantics — {!run} is now a thin wrapper
    that builds a request and calls this. *)

val run :
  ?backend:backend ->
  ?input:Xinv_workloads.Workload.input ->
  ?checkpoint_every:int ->
  ?verify:bool ->
  ?cache:[ `Off | `Ro | `Rw ] ->
  ?cache_dir:string ->
  ?obs:Xinv_obs.Recorder.t ->
  ?policy:policy ->
  ?sig_kind:[ `Range | `Segmented | `Bloom | `Exact ] ->
  ?spec_distance:int ->
  technique:technique ->
  threads:int ->
  Xinv_workloads.Workload.t ->
  outcome
[@@deprecated "construct a Crossinv.Request.t and call Crossinv.run_request"]
(** Runs the workload under the technique with [threads] execution
    contexts total (DOMORE: 1 scheduler + workers; SPECCROSS: workers +
    1 checker) on the chosen backend (default: simulated, default
    machine).  SPECCROSS profiles the train input first and falls back to
    barriers when unprofitable (§4.4), on both backends.

    With [cache] (default [`Off]), the run consults the incremental
    analysis cache in [cache_dir] (default [~/.cache/xinv]): on a
    fingerprint hit the DOMORE plan and the SPECCROSS profile are
    reconstructed from disk instead of re-derived — identical results,
    near-zero [analysis_ns].  [`Ro] never writes; [`Rw] publishes fresh
    results atomically.

    With [?obs], the run is instrumented: the simulated backend streams
    typed events and metrics into the recorder; the native backend bumps
    aggregate counters ([domore.*], [speccross.*], [barrier.crossings])
    plus the robustness counters [fault.injected], [watchdog.stall] and
    [degrade.level], and records [Fault_injected] / [Run_stalled] /
    [Degraded] events.

    Native robustness: an armed [fault] fires at most once across the
    whole run; every blocking wait is bounded per [native_opts]; a failed
    attempt (injected fault, stall, worker exception) cancels its cohort,
    unwinds cleanly, and — with [degrade] on — is retried on a fresh
    environment under the next weaker technique
    (SPECCROSS → barrier → sequential; DOMORE → duplicated scheduler →
    barrier → sequential) within the same overall deadline.  The outcome's
    [technique] and [degraded] fields report what actually ran.  With
    [degrade] off, the typed error ({!Xinv_native.Fault.Injected},
    {!Xinv_native.Watchdog.Stalled}, …) is raised instead.

    [?policy] (default [`Fixed]) selects where the configuration comes
    from.  [`Auto] looks the workload's fingerprint up in the analysis
    cache: a stored tuned policy overrides backend, technique, threads,
    grain, batch, signature kind, speculative distance and epoch size
    (the caller's [native_opts] keep supplying work model, pool, faults,
    deadlines and flight recording); on a miss the caller's configuration
    runs unchanged with [policy_source = "default"].  [`Adaptive ctl]
    runs the [`Auto] resolution while the controller probes, and switches
    the stream to sequential execution when the candidate does not pay
    (see {!adaptive}).  Policy resolution bumps the
    [policy.source.cached|searched|default] counters and emits
    [Policy_applied] / [Tune_switch] events when [?obs] is attached.

    [?sig_kind] and [?spec_distance] expose the two previously hard-wired
    SPECCROSS knobs (default: [`Segmented] over live memory bounds; the
    profiled distance).  A [spec_distance] below the worker count is
    clamped up to it.

    @raise Failure when the technique is inapplicable to the backend
    (see {!applicable}).

    @deprecated construct a {!Request.t} and call {!run_request}. *)

val run_policy :
  ?input:Xinv_workloads.Workload.input ->
  ?verify:bool ->
  ?cache:[ `Off | `Ro | `Rw ] ->
  ?cache_dir:string ->
  ?obs:Xinv_obs.Recorder.t ->
  ?native:native_opts ->
  ?source:string ->
  Xinv_cache.Policy.t ->
  Xinv_workloads.Workload.t ->
  outcome
[@@deprecated
  "construct a Crossinv.Request.t with ~policy:(`Reified (p, source)) and \
   call Crossinv.run_request"]
(** Reify a {!Xinv_cache.Policy.t} into one run: backend, technique,
    threads, grain, batch, signature kind, speculative distance and epoch
    size all come from the policy; [?native] (default {!native_defaults})
    supplies the environmental knobs.  This is the measurement primitive
    the {!Xinv_tune} search and the tuned benchmark drive.  [?source]
    (default ["searched"]) labels the outcome's [policy_source] and the
    [policy.source.*] counter.

    @deprecated
      construct a {!Request.t} with [~policy:(`Reified (p, source))] and
      call {!run_request}. *)

val spec_mode_of_plan :
  Xinv_workloads.Workload.t -> string -> Xinv_speccross.Runtime.mode
(** Map the workload's Table 5.1 plan onto SPECCROSS execution modes. *)

val native_pool_size : technique:technique -> threads:int -> int
(** Pool domains one native run of [technique] needs beyond the caller. *)

(** The pre-unification wrappers [execute] / [execute_native] (deprecated
    since the [`Sim]/[`Native] facade merge) are gone; {!run} and
    {!run_policy} are this release's deprecated wrappers over
    {!run_request}. *)
