(* Benchmark executable:

   1. Regenerates every table and figure of the dissertation's evaluation
      (the experiment harness - the numbers EXPERIMENTS.md records).
   2. Runs a Bechamel suite with one measurement per table/figure, timing
      the kernel computation that experiment exercises (at train scale), plus
      a group over the runtime primitives. *)

module Ir = Xinv_ir
module Par = Xinv_parallel
module Wl = Xinv_workloads
module Cx = Xinv_core.Crossinv
module Sp = Xinv_speccross
module Exp = Xinv_experiments.Experiments
open Bechamel

let train = Wl.Workload.Train

(* ---------- kernels, one per experiment ---------- *)

let barrier_kernel name threads () =
  let wl = Wl.Registry.find name in
  let env = wl.Wl.Workload.fresh_env train in
  ignore
    (Par.Barrier_exec.run ~threads
       ~plan:(Wl.Workload.plan_fn wl)
       (wl.Wl.Workload.program train)
       env)

let domore_kernel name threads () =
  let wl = Wl.Registry.find name in
  let env = wl.Wl.Workload.fresh_env train in
  let p = wl.Wl.Workload.program train in
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Plan plan ->
      let config = Xinv_domore.Domore.default_config ~workers:(threads - 1) in
      ignore (Xinv_domore.Domore.run ~config ~plan p env)
  | Ir.Mtcg.Inapplicable r -> failwith r

let speccross_kernel ?(checkpoint_every = 1000) ?(inject = None) name threads () =
  let wl = Wl.Registry.find name in
  let env = wl.Wl.Workload.fresh_env train in
  let p = wl.Wl.Workload.program train in
  let cfg =
    {
      (Sp.Runtime.default_config ~workers:(threads - 1)) with
      Sp.Runtime.sig_kind =
        Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
      checkpoint_every;
      spec_distance = 4 * Ir.Program.total_iterations p env / Ir.Program.invocations p;
      inject_misspec = inject;
    }
  in
  ignore (Sp.Runtime.run ~config:cfg p env)

let experiment_tests =
  [
    Test.make ~name:"fig1.4 barrier execution plan"
      (Staged.stage (barrier_kernel "JACOBI" 4));
    Test.make ~name:"fig2.2 static planner on opaque arrays"
      (Staged.stage (fun () ->
           let wl = Wl.Registry.find "SYMM" in
           let wrapped = Ir.Opaque.wrap (wl.Wl.Workload.program train) in
           ignore (Par.Plan.choose wrapped)));
    Test.make ~name:"fig3.3 DOMORE on CG" (Staged.stage (domore_kernel "CG" 8));
    Test.make ~name:"fig4.3 barrier overhead accounting"
      (Staged.stage (fun () ->
           let wl = Wl.Registry.find "FDTD" in
           let env = wl.Wl.Workload.fresh_env train in
           let r =
             Par.Barrier_exec.run ~threads:8
               ~plan:(Wl.Workload.plan_fn wl)
               (wl.Wl.Workload.program train)
               env
           in
           ignore (Par.Run.barrier_overhead_pct r)));
    Test.make ~name:"tab5.1 applicability analysis"
      (Staged.stage (fun () ->
           List.iter
             (fun wl ->
               ignore (Cx.applicable Cx.Domore wl);
               ignore (Cx.applicable Cx.Speccross wl))
             (Wl.Registry.all ())));
    Test.make ~name:"tab5.2 MTCG compile pipeline"
      (Staged.stage (fun () ->
           let wl = Wl.Registry.find "CG" in
           let env = wl.Wl.Workload.fresh_env train in
           ignore (Ir.Mtcg.generate (wl.Wl.Workload.program train) env)));
    Test.make ~name:"fig5.1 DOMORE on BLACKSCHOLES"
      (Staged.stage (domore_kernel "BLACKSCHOLES" 8));
    Test.make ~name:"fig5.2 SPECCROSS on JACOBI"
      (Staged.stage (speccross_kernel "JACOBI" 8));
    Test.make ~name:"tab5.3 dependence profiler"
      (Staged.stage (fun () ->
           let wl = Wl.Registry.find "FDTD" in
           let env = wl.Wl.Workload.fresh_env train in
           ignore (Sp.Profiler.profile (wl.Wl.Workload.program train) env)));
    Test.make ~name:"fig5.3 checkpointed + misspec run"
      (Staged.stage
         (speccross_kernel ~checkpoint_every:8 ~inject:(Some (20, 0)) "JACOBI" 8));
    Test.make ~name:"fig5.4 DOACROSS baseline"
      (Staged.stage (fun () ->
           let wl = Wl.Registry.find "LOOPDEP" in
           let env = wl.Wl.Workload.fresh_env train in
           ignore (Par.Doacross.run ~threads:8 (wl.Wl.Workload.program train) env)));
    Test.make ~name:"fig5.6 FLUIDANIMATE speccross"
      (Staged.stage (speccross_kernel "FLUIDANIMATE-2" 8));
  ]

let primitive_tests =
  let sig_kernel kind () =
    let s = Xinv_runtime.Signature.create kind in
    for i = 0 to 199 do
      Xinv_runtime.Signature.add s (i * 37 mod 1000)
    done;
    let t = Xinv_runtime.Signature.create kind in
    Xinv_runtime.Signature.add t 500;
    ignore (Xinv_runtime.Signature.intersects s t)
  in
  [
    Test.make ~name:"signature range"
      (Staged.stage (sig_kernel Xinv_runtime.Signature.Range));
    Test.make ~name:"signature segmented"
      (Staged.stage (sig_kernel (Xinv_runtime.Signature.Segmented [| 0; 250; 500; 750 |])));
    Test.make ~name:"signature bloom"
      (Staged.stage (sig_kernel (Xinv_runtime.Signature.Bloom { bits = 1024; hashes = 3 })));
    Test.make ~name:"shadow memory 1k accesses"
      (Staged.stage (fun () ->
           let sh = Xinv_runtime.Shadow.create () in
           for i = 0 to 999 do
             ignore
               (Xinv_runtime.Shadow.note_write sh (i mod 128)
                  { Xinv_runtime.Shadow.tid = i mod 4; iter = i })
           done));
    Test.make ~name:"DES engine 1k events"
      (Staged.stage (fun () ->
           let eng = Xinv_sim.Engine.create () in
           for _ = 1 to 4 do
             ignore
               (Xinv_sim.Engine.spawn eng (fun () ->
                    for _ = 1 to 250 do
                      Xinv_sim.Proc.work 1.
                    done))
           done;
           Xinv_sim.Engine.run eng));
  ]

let run_bechamel tests =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:30 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"xinv" tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name res ->
      let est =
        match Analyze.OLS.estimates res with Some (e :: _) -> e | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  List.sort compare !rows

let () =
  print_endline "================================================================";
  print_endline " Part 1: regenerated evaluation (every table and figure)";
  print_endline "================================================================\n";
  List.iter
    (fun (e : Exp.t) ->
      Printf.printf "==== %s: %s ====\n%!" e.Exp.id e.Exp.title;
      print_endline (e.Exp.render ());
      print_newline ())
    Exp.all;
  print_endline "================================================================";
  print_endline " Part 2: Bechamel timings (train-scale kernels, wall clock)";
  print_endline "================================================================\n";
  let print_rows rows =
    List.iter
      (fun (name, ns) -> Printf.printf "  %-42s %12.0f ns/run\n" name ns)
      rows
  in
  print_endline "per-experiment kernels:";
  print_rows (run_bechamel experiment_tests);
  print_endline "\nruntime primitives:";
  print_rows (run_bechamel primitive_tests)
