test/test_domore.ml: Alcotest Array List Printf QCheck QCheck_alcotest Xinv_domore Xinv_ir Xinv_parallel Xinv_sim Xinv_workloads
