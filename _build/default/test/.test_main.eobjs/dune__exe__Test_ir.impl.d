test/test_ir.ml: Alcotest Array Fun List Option QCheck QCheck_alcotest String Xinv_ir Xinv_workloads
