test/test_workloads.ml: Alcotest Format List Option Printf String Xinv_core Xinv_domore Xinv_ir Xinv_parallel Xinv_speccross Xinv_util Xinv_workloads
