test/test_runtime.ml: Alcotest Format List QCheck QCheck_alcotest Xinv_ir Xinv_runtime
