test/test_speccross.ml: Alcotest Array List Printf QCheck QCheck_alcotest Xinv_ir Xinv_parallel Xinv_runtime Xinv_sim Xinv_speccross Xinv_workloads
