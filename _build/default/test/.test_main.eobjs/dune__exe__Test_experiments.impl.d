test/test_experiments.ml: Alcotest List Option Printf String Xinv_core Xinv_experiments Xinv_workloads
