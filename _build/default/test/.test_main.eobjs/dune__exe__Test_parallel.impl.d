test/test_parallel.ml: Alcotest Array List Printf QCheck QCheck_alcotest Xinv_ir Xinv_parallel Xinv_sim Xinv_workloads
