test/test_sim.ml: Alcotest Format Fun Gen List QCheck QCheck_alcotest Stdlib String Xinv_sim
