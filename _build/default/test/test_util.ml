(* Unit and property tests for the utility library. *)

module Heap = Xinv_util.Heap
module Prng = Xinv_util.Prng
module Stats = Xinv_util.Stats
module Tab = Xinv_util.Tab

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "size" 7 (Heap.size h);
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain []);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  (* Equal keys must come out in insertion order (simulator determinism). *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order =
    List.init 4 (fun _ -> match Heap.pop h with Some (_, s) -> s | None -> "?")
  in
  Alcotest.(check (list string)) "fifo" [ "z"; "a"; "b"; "c" ] order

let test_heap_peek_clear () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "to_list" 2 (List.length (Heap.to_list h));
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  let xs g = List.init 32 (fun _ -> Prng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (xs a) (xs b);
  let c = Prng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true (xs (Prng.create ~seed:42) <> xs c)

let test_prng_split () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xa = List.init 16 (fun _ -> Prng.int a 100) in
  let xb = List.init 16 (fun _ -> Prng.int b 100) in
  Alcotest.(check bool) "split streams independent" true (xa <> xb)

let prop_prng_bounds =
  QCheck.Test.make ~name:"Prng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      List.for_all (fun _ -> let v = Prng.int g bound in v >= 0 && v < bound)
        (List.init 50 Fun.id))

let prop_prng_int_in =
  QCheck.Test.make ~name:"Prng.int_in inclusive range" ~count:200
    QCheck.(pair small_int (pair (int_range (-50) 50) (int_range 0 100)))
    (fun (seed, (lo, span)) ->
      let g = Prng.create ~seed in
      let hi = lo + span in
      let v = Prng.int_in g lo hi in
      v >= lo && v <= hi)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ] ** 1.
                                              |> fun x -> x /. 1.);
  Alcotest.(check (float 1e-6)) "geomean 2" 2. (Stats.geomean [ 4.; 1. ]);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.minimum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "max" 3. (Stats.maximum [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "pct" 50. (Stats.pct 1. 2.);
  Alcotest.(check (float 1e-9)) "round" 3.14 (Stats.round_to 2 3.14159);
  Alcotest.(check (float 1e-9)) "stddev const" 0. (Stats.stddev [ 2.; 2.; 2. ])

let test_tab () =
  let t = Tab.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "33"; "4" ] ] in
  Alcotest.(check bool) "has header" true
    (String.length t > 0 && String.sub t 0 1 = "a");
  Alcotest.(check string) "speedup fmt" "3.14x" (Tab.fmt_speedup 3.14159);
  let bars = Tab.render_bars [ ("x", 1.); ("y", 2.) ] in
  Alcotest.(check bool) "bars render" true (String.length bars > 0)

let suite =
  [
    Alcotest.test_case "heap ordering" `Quick test_heap_ordering;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap peek/clear" `Quick test_heap_peek_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorted;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split" `Quick test_prng_split;
    QCheck_alcotest.to_alcotest prop_prng_bounds;
    QCheck_alcotest.to_alcotest prop_prng_int_in;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "tab" `Quick test_tab;
  ]
