(* Tests for the DOMORE runtime engine: correctness under arbitrary dynamic
   dependence patterns, scheduling policies, the duplicated-scheduler
   variant, accounting. *)

module Ir = Xinv_ir
module Par = Xinv_parallel
module Dm = Xinv_domore
module Wl = Xinv_workloads

let synth ?(seed = 1) ?(cells = 12) ?(outer = 5) ?(trip = 9) ?(inners = 2) () =
  Wl.Synth.make
    {
      Wl.Synth.default with
      Wl.Synth.seed;
      cells;
      outer;
      trip;
      inners;
      within_safe = true;
    }

let run_domore ?(workers = 3) ?(policy = Dm.Policy.Round_robin) (p, fresh) =
  let seq_env = fresh () in
  let seq_cost = Ir.Seq_interp.run p seq_env in
  let env = fresh () in
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "unexpectedly inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      let config = { (Dm.Domore.default_config ~workers) with Dm.Domore.policy } in
      let r = Dm.Domore.run ~config ~plan p env in
      (seq_env, env, seq_cost, r)

let check_equal name seq_env env =
  Alcotest.(check int)
    (name ^ ": matches sequential")
    0
    (List.length (Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem))

let test_domore_correct_round_robin () =
  List.iter
    (fun workers ->
      let seq_env, env, _, _ = run_domore ~workers (synth ~seed:3 ()) in
      check_equal (Printf.sprintf "rr@%d" workers) seq_env env)
    [ 1; 2; 3; 7 ]

let test_domore_correct_mem_partition () =
  let seq_env, env, _, _ =
    run_domore ~workers:4 ~policy:Dm.Policy.Mem_partition (synth ~seed:4 ())
  in
  check_equal "mem-partition" seq_env env

let test_domore_correct_least_loaded () =
  let seq_env, env, _, _ =
    run_domore ~workers:4 ~policy:Dm.Policy.Least_loaded (synth ~seed:6 ~cells:10 ())
  in
  check_equal "least-loaded" seq_env env

let test_domore_sync_conditions_emitted () =
  (* cells=6 over 90 tasks: conflicts are guaranteed; the scheduler must
     emit Wait conditions and execution must stay exact. *)
  let seq_env, env, _, r = run_domore ~workers:3 (synth ~seed:7 ~cells:9 ()) in
  check_equal "conflict-heavy" seq_env env;
  Alcotest.(check bool) "sync conditions emitted" true (r.Par.Run.checks > 0)

let test_domore_no_sync_when_disjoint () =
  (* Large cell space, distinct targets per invocation AND globally unique
     across the region: no Wait conditions at all. *)
  let p, fresh =
    Wl.Synth.make
      {
        Wl.Synth.default with
        Wl.Synth.seed = 13;
        cells = 2 * 5 * 9 * 2;
        outer = 5;
        trip = 9;
        inners = 2;
      }
  in
  (* Replace targets with globally distinct cells. *)
  let env = fresh () in
  let n = Ir.Memory.size env.Ir.Env.mem "tgt" in
  for i = 0 to n - 1 do
    Ir.Memory.set_int env.Ir.Env.mem "tgt" i i
  done;
  let seq_env = fresh () in
  for i = 0 to n - 1 do
    Ir.Memory.set_int seq_env.Ir.Env.mem "tgt" i i
  done;
  ignore (Ir.Seq_interp.run p seq_env);
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      let r = Dm.Domore.run ~config:(Dm.Domore.default_config ~workers:3) ~plan p env in
      check_equal "disjoint" seq_env env;
      Alcotest.(check int) "no sync conditions" 0 r.Par.Run.checks

let test_domore_scheduler_is_thread0 () =
  let _, _, _, r = run_domore ~workers:3 (synth ()) in
  let eng = r.Par.Run.engine in
  Alcotest.(check string) "thread 0 named scheduler" "scheduler"
    (Xinv_sim.Engine.name_of eng 0);
  Alcotest.(check bool) "scheduler did runtime work" true
    (Xinv_sim.Engine.charged eng 0 Xinv_sim.Category.Runtime > 0.);
  Alcotest.(check bool) "scheduler never does Work" true
    (Xinv_sim.Engine.charged eng 0 Xinv_sim.Category.Work = 0.);
  let ratio = Dm.Domore.scheduler_worker_ratio r in
  Alcotest.(check bool) "ratio positive and below 1" true (ratio > 0. && ratio < 1.)

let test_domore_outperforms_barrier_on_cg_pattern () =
  (* Many short invocations: barriers collapse, DOMORE overlaps. *)
  let p, fresh = synth ~outer:30 ~trip:5 ~inners:1 ~cells:200 ~seed:21 () in
  let seq_cost = Ir.Seq_interp.run p (fresh ()) in
  let env_b = fresh () in
  let rb = Par.Barrier_exec.run ~threads:8 ~plan:(fun _ -> Par.Intra.Doall) p env_b in
  let _, _, _, rd = run_domore ~workers:7 (p, fresh) in
  Alcotest.(check bool) "domore faster than barrier" true
    (Par.Run.speedup ~seq_cost rd > Par.Run.speedup ~seq_cost rb)

let test_duplicated_correct () =
  List.iter
    (fun workers ->
      let p, fresh = synth ~seed:31 ~cells:10 () in
      let seq_env = fresh () in
      ignore (Ir.Seq_interp.run p seq_env);
      let env = fresh () in
      match Ir.Mtcg.generate p env with
      | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
      | Ir.Mtcg.Plan plan ->
          let config = Dm.Domore.default_config ~workers in
          ignore (Dm.Duplicated.run ~config ~plan p env);
          check_equal (Printf.sprintf "dup@%d" workers) seq_env env)
    [ 1; 2; 4 ]

let test_duplicated_redundant_scheduling () =
  let p, fresh = synth ~seed:33 () in
  let env = fresh () in
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      let r = Dm.Duplicated.run ~config:(Dm.Domore.default_config ~workers:3) ~plan p env in
      Alcotest.(check bool) "redundant scheduling charged" true
        (Par.Run.category_total r Xinv_sim.Category.Redundant > 0.)

let test_policy () =
  let mem =
    Ir.Memory.create
      [ Ir.Memory.Ints ("x", Array.make 4 0); Ir.Memory.Floats ("d", Array.make 100 0.) ]
  in
  Alcotest.(check int) "round robin" 2
    (Dm.Policy.pick Dm.Policy.Round_robin ~loads:None ~mem ~threads:3 ~iter:5
       ~write_addrs:[ 50 ]);
  (* d[75] with 4 threads: owner 3 (per-array block partition). *)
  Alcotest.(check int) "mem partition by array index" 3
    (Dm.Policy.pick Dm.Policy.Mem_partition ~loads:None ~mem ~threads:4 ~iter:0
       ~write_addrs:[ Ir.Memory.addr mem "d" 75 ]);
  Alcotest.(check int) "fallback without writes" 1
    (Dm.Policy.pick Dm.Policy.Mem_partition ~loads:None ~mem ~threads:4 ~iter:5
       ~write_addrs:[]);
  Alcotest.(check int) "least loaded picks shortest queue" 1
    (Dm.Policy.pick Dm.Policy.Least_loaded ~loads:(Some [| 4; 0; 2 |]) ~mem ~threads:3
       ~iter:0 ~write_addrs:[ 50 ]);
  Alcotest.(check int) "least loaded without loads falls back" 2
    (Dm.Policy.pick Dm.Policy.Least_loaded ~loads:None ~mem ~threads:3 ~iter:5
       ~write_addrs:[])

let test_domore_run_deterministic () =
  let run () =
    let _, _, _, r = run_domore ~workers:3 (synth ~seed:41 ~cells:10 ()) in
    r.Par.Run.makespan
  in
  Alcotest.(check (float 1e-9)) "same makespan across runs" (run ()) (run ())

(* Property: DOMORE preserves sequential semantics on random conflict-dense
   programs at random worker counts, under both policies. *)
let prop_domore_correct =
  QCheck.Test.make ~name:"DOMORE exact on random dependence patterns" ~count:30
    QCheck.(triple (int_range 1 10_000) (int_range 1 6) bool)
    (fun (seed, workers, mem_partition) ->
      let p, fresh =
        Wl.Synth.make
          {
            Wl.Synth.default with
            Wl.Synth.seed;
            cells = 14;
            outer = 4;
            trip = 8;
            inners = 2;
          }
      in
      let seq_env = fresh () in
      ignore (Ir.Seq_interp.run p seq_env);
      let env = fresh () in
      match Ir.Mtcg.generate p env with
      | Ir.Mtcg.Inapplicable _ -> false
      | Ir.Mtcg.Plan plan ->
          let policy =
            if mem_partition then Dm.Policy.Mem_partition else Dm.Policy.Round_robin
          in
          let config = { (Dm.Domore.default_config ~workers) with Dm.Domore.policy } in
          ignore (Dm.Domore.run ~config ~plan p env);
          Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem)

let prop_duplicated_equals_domore_semantics =
  QCheck.Test.make ~name:"duplicated scheduler produces identical state" ~count:15
    QCheck.(pair (int_range 1 10_000) (int_range 1 5))
    (fun (seed, workers) ->
      let p, fresh =
        Wl.Synth.make
          { Wl.Synth.default with Wl.Synth.seed; cells = 14; outer = 3; trip = 6 }
      in
      let env1 = fresh () and env2 = fresh () in
      match Ir.Mtcg.generate p env1 with
      | Ir.Mtcg.Inapplicable _ -> false
      | Ir.Mtcg.Plan plan ->
          let config = Dm.Domore.default_config ~workers in
          ignore (Dm.Domore.run ~config ~plan p env1);
          ignore (Dm.Duplicated.run ~config ~plan p env2);
          Ir.Memory.equal env1.Ir.Env.mem env2.Ir.Env.mem)

let suite =
  [
    Alcotest.test_case "correct (round robin)" `Quick test_domore_correct_round_robin;
    Alcotest.test_case "correct (mem partition)" `Quick test_domore_correct_mem_partition;
    Alcotest.test_case "correct (least loaded)" `Quick test_domore_correct_least_loaded;
    Alcotest.test_case "sync conditions emitted" `Quick test_domore_sync_conditions_emitted;
    Alcotest.test_case "no sync when disjoint" `Quick test_domore_no_sync_when_disjoint;
    Alcotest.test_case "scheduler thread accounting" `Quick test_domore_scheduler_is_thread0;
    Alcotest.test_case "beats barriers on CG pattern" `Quick
      test_domore_outperforms_barrier_on_cg_pattern;
    Alcotest.test_case "duplicated variant correct" `Quick test_duplicated_correct;
    Alcotest.test_case "duplicated redundancy" `Quick test_duplicated_redundant_scheduling;
    Alcotest.test_case "scheduling policies" `Quick test_policy;
    Alcotest.test_case "run deterministic" `Quick test_domore_run_deterministic;
    QCheck_alcotest.to_alcotest prop_domore_correct;
    QCheck_alcotest.to_alcotest prop_duplicated_equals_domore_semantics;
  ]
