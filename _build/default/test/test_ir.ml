(* Tests for the compiler substrate: expressions, dependence analysis, PDG,
   partitioning, slicing, MTCG, profiling. *)

module Ir = Xinv_ir
module E = Xinv_ir.Expr

let mk_env specs = Ir.Env.make (Ir.Memory.create specs)

let test_expr_eval () =
  let env =
    mk_env [ Ir.Memory.Ints ("idx", [| 7; 8; 9 |]) ]
  in
  let env = Ir.Env.with_outer (Ir.Env.with_inner env 2) 5 in
  Alcotest.(check int) "const" 3 (E.eval env (E.c 3));
  Alcotest.(check int) "ivar" 2 (E.eval env E.i);
  Alcotest.(check int) "ovar" 5 (E.eval env E.o);
  Alcotest.(check int) "load" 9 (E.eval env (E.ld "idx" E.i));
  Alcotest.(check int) "arith" 17 E.(eval env ((o * c 3) + i));
  Alcotest.(check int) "mod" 1 E.(eval env (Bin (Mod, o, c 2)));
  Alcotest.(check int) "min" 2 E.(eval env (Bin (Min, i, o)))

let test_expr_helpers () =
  let e = E.(ld "a" (i + c 1)) in
  Alcotest.(check bool) "uses ivar" true (E.uses_ivar e);
  Alcotest.(check bool) "not ovar" false (E.uses_ovar e);
  Alcotest.(check int) "size" 4 (E.size e);
  Alcotest.(check int) "loads" 1 (List.length (E.loads e));
  Alcotest.(check string) "pp" "a[(j + 1)]" (E.to_string e)

let affine_t = Alcotest.testable Ir.Affine.pp Ir.Affine.equal

let test_affine () =
  let check_some name e exp =
    match Ir.Affine.of_expr e with
    | Some a -> Alcotest.check affine_t name exp a
    | None -> Alcotest.failf "%s: expected affine" name
  in
  check_some "i+1" E.(i + c 1) { Ir.Affine.ci = 1; co = 0; k = 1 };
  check_some "3*o - i" E.((c 3 * o) - i) { Ir.Affine.ci = -1; co = 3; k = 0 };
  check_some "o*100 + i" E.((o * c 100) + i) { Ir.Affine.ci = 1; co = 100; k = 0 };
  Alcotest.(check bool) "load not affine" true (Ir.Affine.of_expr (E.ld "x" E.i) = None);
  Alcotest.(check bool) "i*i not affine" true (Ir.Affine.of_expr E.(i * i) = None);
  Alcotest.(check bool) "param not affine" true
    (Ir.Affine.of_expr (E.Param "p") = None)

let test_affine_overlap () =
  let f e = Option.get (Ir.Affine.of_expr e) in
  Alcotest.(check bool) "A[i] vs A[i] same-iter only" true
    (Ir.Affine.same_iteration_only (f E.i) (f E.i));
  Alcotest.(check bool) "A[i] vs A[i+1] not same-iter" false
    (Ir.Affine.same_iteration_only (f E.i) (f E.(i + c 1)));
  Alcotest.(check bool) "A[i] overlaps A[i+1]" true
    (Ir.Affine.overlaps_some_iteration (f E.i) (f E.(i + c 1)));
  Alcotest.(check bool) "A[2i] vs A[2i+1] disjoint" false
    (Ir.Affine.overlaps_some_iteration (f E.(c 2 * i)) (f E.((c 2 * i) + c 1)))

let test_access () =
  let a1 = Ir.Access.make "A" E.i and a2 = Ir.Access.make "A" E.(i + c 1) in
  let b = Ir.Access.make "B" E.i in
  Alcotest.(check bool) "same array may conflict" true (Ir.Access.may_conflict a1 a2);
  Alcotest.(check bool) "different arrays never" false (Ir.Access.may_conflict a1 b);
  Alcotest.(check bool) "irregular conflicts" true
    (Ir.Access.may_conflict a1 (Ir.Access.make "A" (E.ld "idx" E.i)));
  Alcotest.(check bool) "same-iteration-only" true (Ir.Access.same_iteration_only a1 a1)

let test_memory () =
  let m =
    Ir.Memory.create
      [ Ir.Memory.Ints ("x", [| 1; 2 |]); Ir.Memory.Floats ("y", [| 1.5; 2.5; 3.5 |]) ]
  in
  Alcotest.(check int) "base y" 2 (Ir.Memory.base m "y");
  Alcotest.(check int) "addr" 3 (Ir.Memory.addr m "y" 1);
  Alcotest.(check int) "total" 5 (Ir.Memory.total_words m);
  Alcotest.(check (pair string int)) "locate" ("y", 1) (Ir.Memory.locate m 3);
  Alcotest.(check bool) "bounds" true (Ir.Memory.bounds m = [| 0; 2 |]);
  let snap = Ir.Memory.snapshot m in
  Ir.Memory.set_float m "y" 0 9.;
  Ir.Memory.set_int m "x" 1 7;
  Alcotest.(check int) "diff count" 2 (List.length (Ir.Memory.diff m snap));
  Alcotest.(check bool) "not equal" false (Ir.Memory.equal m snap);
  Ir.Memory.restore ~dst:m ~src:snap;
  Alcotest.(check bool) "restored" true (Ir.Memory.equal m snap);
  Alcotest.check_raises "oob addr"
    (Invalid_argument "Memory.addr: y[3] out of bounds (size 3)") (fun () ->
      ignore (Ir.Memory.addr m "y" 3));
  let specs = Ir.Memory.to_specs m in
  Alcotest.(check bool) "to_specs round-trip" true
    (Ir.Memory.equal m (Ir.Memory.create specs))

(* A small program: outer 3, L1 writes acc[tgt[...]] (irregular), with a
   read-only pre statement. *)
let small_program ?(pre_reads = []) () =
  let at = E.ld "tgt" E.((o * c 4) + i) in
  let body =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "acc" at ]
      ~writes:[ Ir.Access.make "acc" at ]
      ~cost:(Ir.Stmt.fixed_cost 100.)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let x = E.eval env at in
        Ir.Memory.set_float mem "acc" x (Ir.Memory.get_float mem "acc" x +. 1.))
      "upd"
  in
  let pre = Ir.Stmt.make ~reads:pre_reads ~cost:(Ir.Stmt.fixed_cost 10.) "pre" in
  ( Ir.Program.make ~name:"small" ~outer_trip:3
      [ Ir.Program.inner ~pre:[ pre ] ~label:"L" ~trip:(Ir.Program.const_trip 4) [ body ] ],
    fun () ->
      mk_env
        [
          Ir.Memory.Ints ("tgt", Array.init 12 (fun i -> (i * 5) mod 8));
          Ir.Memory.Floats ("acc", Array.make 8 0.);
        ] )

let test_program_shape () =
  let p, fresh = small_program () in
  Alcotest.(check int) "invocations" 3 (Ir.Program.invocations p);
  Alcotest.(check int) "total iterations" 12 (Ir.Program.total_iterations p (fresh ()));
  Alcotest.(check int) "all stmts" 2 (List.length (Ir.Program.all_stmts p));
  Alcotest.(check int) "body stmts" 1 (List.length (Ir.Program.body_stmts p));
  let il = Ir.Program.find_inner p "L" in
  Alcotest.(check (float 1e-9)) "iteration cost" 100.
    (Ir.Program.iteration_cost p il (fresh ()))

let test_seq_interp () =
  let p, fresh = small_program () in
  let env = fresh () in
  let cost = Ir.Seq_interp.run p env in
  Alcotest.(check (float 1e-9)) "cost = 3*(10 + 4*100)" 1230. cost;
  (* Each of the 12 iterations adds 1 somewhere in acc. *)
  let total = ref 0. in
  for i = 0 to 7 do
    total := !total +. Ir.Memory.get_float env.Ir.Env.mem "acc" i
  done;
  Alcotest.(check (float 1e-9)) "12 increments" 12. !total

let test_seq_deterministic () =
  let p, fresh = small_program () in
  let e1 = fresh () and e2 = fresh () in
  ignore (Ir.Seq_interp.run p e1);
  ignore (Ir.Seq_interp.run p e2);
  Alcotest.(check bool) "same final memory" true
    (Ir.Memory.equal e1.Ir.Env.mem e2.Ir.Env.mem)

let test_pdg_classification () =
  let p, _ = small_program () in
  let pdg = Ir.Pdg.build p in
  (* The irregular self-update carries a cross-iteration dependence. *)
  Alcotest.(check bool) "cross-iter self dep" true (Ir.Pdg.has_cross_iter pdg ~inner_idx:0);
  (* Pre reads nothing the body writes: no worker->scheduler edge. *)
  let part = Ir.Partition.compute p pdg in
  Alcotest.(check bool) "pipeline ok" true (Ir.Partition.pipeline_ok part pdg);
  Alcotest.(check int) "1 worker stmt" 1
    (List.length (Ir.Partition.worker_stmts part pdg));
  Alcotest.(check int) "1 scheduler stmt" 1
    (List.length (Ir.Partition.scheduler_stmts part pdg))

let test_partition_collapse_on_residual () =
  (* If the sequential region reads what the body writes, the body is pulled
     into the scheduler (the JACOBI/FDTD DOMORE-blocking pattern). *)
  let p, _ = small_program ~pre_reads:[ Ir.Access.make "acc" (E.ld "tgt" E.o) ] () in
  let pdg = Ir.Pdg.build p in
  let part = Ir.Partition.compute p pdg in
  Alcotest.(check int) "no worker stmts" 0
    (List.length (Ir.Partition.worker_stmts part pdg));
  match Ir.Mtcg.generate p (snd (small_program ()) ()) with
  | Ir.Mtcg.Inapplicable reason ->
      Alcotest.(check bool) "reported sequential" true
        (String.length reason > 0)
  | Ir.Mtcg.Plan _ -> Alcotest.fail "expected inapplicable"

let test_scc () =
  (* 0 -> 1 <-> 2, 3 isolated *)
  let g =
    {
      Ir.Scc.nodes = 4;
      succs = (function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> []);
    }
  in
  let comps = Ir.Scc.topological g in
  let sorted = List.map (List.sort compare) comps in
  Alcotest.(check bool) "{1,2} is one SCC" true (List.mem [ 1; 2 ] sorted);
  Alcotest.(check int) "3 components" 3 (List.length comps);
  (* topological: 0 before {1,2} *)
  let pos x = ref (-1) |> fun r ->
    List.iteri (fun i c -> if List.mem x c then r := i) comps;
    !r
  in
  Alcotest.(check bool) "0 before 1" true (pos 0 < pos 1);
  let _, edges = Ir.Scc.condense g in
  Alcotest.(check int) "1 condensed edge" 1 (List.length edges)

let test_slice () =
  let p, fresh = small_program () in
  let env = fresh () in
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "unexpected: %s" r
  | Ir.Mtcg.Plan plan ->
      let slice = plan.Ir.Mtcg.slice in
      Alcotest.(check int) "two accesses (r+w)" 2 (List.length slice.Ir.Slice.accesses);
      Alcotest.(check (list string)) "index arrays" [ "tgt" ] slice.Ir.Slice.index_arrays;
      let env0 = Ir.Env.with_inner (Ir.Env.with_outer env 0) 1 in
      let addrs = Ir.Slice.addresses slice env0 in
      (* tgt[0*4+1] = 5; acc base is 12. *)
      Alcotest.(check (list int)) "addresses" [ 17; 17 ] addrs;
      Alcotest.(check bool) "guard ratio sane" true (plan.Ir.Mtcg.guard_ratio < 0.9);
      let rendered = Ir.Mtcg.render plan in
      Alcotest.(check bool) "render mentions scheduler" true
        (String.length rendered > 0
        && Option.is_some (String.index_opt rendered 's'))

let test_slice_taint () =
  (* Figure 4.1: a body statement writes the index array another loop loads
     through -> slice rejected. *)
  let at = E.ld "tgt" E.i in
  let l1 =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "acc" at ]
      ~writes:[ Ir.Access.make "out" E.i ]
      ~cost:(Ir.Stmt.fixed_cost 50.) "l1"
  in
  let l2 =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "tgt" E.i ]
      ~cost:(Ir.Stmt.fixed_cost 50.) "l2"
  in
  let p =
    Ir.Program.make ~name:"taint" ~outer_trip:2
      [
        Ir.Program.inner ~label:"L1" ~trip:(Ir.Program.const_trip 4) [ l1 ];
        Ir.Program.inner ~label:"L2" ~trip:(Ir.Program.const_trip 4) [ l2 ];
      ]
  in
  let env =
    mk_env
      [
        Ir.Memory.Ints ("tgt", Array.make 8 0);
        Ir.Memory.Floats ("acc", Array.make 8 0.);
        Ir.Memory.Floats ("out", Array.make 8 0.);
      ]
  in
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable reason ->
      Alcotest.(check bool) "mentions tgt" true
        (Option.is_some
           (String.index_opt reason 't')
        && String.length reason > 10)
  | Ir.Mtcg.Plan _ -> Alcotest.fail "expected taint rejection"

let test_profile () =
  let p, fresh = small_program () in
  let env = fresh () in
  let res = Ir.Profile.run p env in
  Alcotest.(check int) "tasks" 12 res.Ir.Profile.total_tasks;
  Alcotest.(check int) "invocations" 3 res.Ir.Profile.total_invocations;
  (* tgt = (i*5) mod 8 over 12 slots: repeats across invocations. *)
  Alcotest.(check bool) "cross-invocation distance found" true
    (res.Ir.Profile.min_task_distance <> None)

let test_profile_manifest_rate () =
  (* Same cell written every outer iteration: the pair manifests in every
     outer iteration after the first. *)
  let body =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "acc" (E.c 0) ]
      ~exec:(fun env -> Ir.Memory.set_float env.Ir.Env.mem "acc" 0 1.)
      "w0"
  in
  let p =
    Ir.Program.make ~name:"m" ~outer_trip:5
      [ Ir.Program.inner ~label:"L" ~trip:(Ir.Program.const_trip 1) [ body ] ]
  in
  let env = mk_env [ Ir.Memory.Floats ("acc", Array.make 2 0.) ] in
  let res = Ir.Profile.run p env in
  let rate =
    Ir.Profile.manifest_rate res p ~src_sid:body.Ir.Stmt.sid ~dst_sid:body.Ir.Stmt.sid
  in
  Alcotest.(check (float 1e-9)) "100% manifest" 1.0 rate;
  Alcotest.(check (option int)) "distance 1" (Some 1) res.Ir.Profile.min_task_distance

let test_profile_deterministic () =
  let p, fresh = small_program () in
  let r1 = Ir.Profile.run p (fresh ()) and r2 = Ir.Profile.run p (fresh ()) in
  Alcotest.(check bool) "pair summaries identical" true
    (r1.Ir.Profile.pairs = r2.Ir.Profile.pairs);
  Alcotest.(check (option int)) "distances identical" r1.Ir.Profile.min_task_distance
    r2.Ir.Profile.min_task_distance

let test_footprint () =
  let p, fresh = small_program () in
  let env = Ir.Env.with_inner (Ir.Env.with_outer (fresh ()) 0) 1 in
  let il = Ir.Program.find_inner p "L" in
  let fp = Ir.Footprint.body env il in
  (* acc read + acc write + tgt index load (twice: once per access) *)
  Alcotest.(check int) "footprint size" 4 (List.length fp);
  let hot = Ir.Footprint.body_filtered ~hot:(String.equal "acc") env il in
  Alcotest.(check (list int)) "filtered to acc" [ 17; 17 ] hot

let test_opaque () =
  let p, fresh = small_program () in
  let wrapped = Ir.Opaque.wrap p in
  let env = Ir.Opaque.extend_env (fresh ()) ~size:32 in
  let env_ref = fresh () in
  ignore (Ir.Seq_interp.run p env_ref);
  ignore (Ir.Seq_interp.run wrapped env);
  (* Semantics unchanged on the shared arrays. *)
  List.iter
    (fun name ->
      for i = 0 to Ir.Memory.size env_ref.Ir.Env.mem name - 1 do
        Alcotest.(check (float 1e-9)) "same value"
          (Ir.Memory.get_float env_ref.Ir.Env.mem name i)
          (Ir.Memory.get_float env.Ir.Env.mem name i)
      done)
    [ "acc" ];
  (* Every body access became irregular. *)
  List.iter
    (fun (s : Ir.Stmt.t) ->
      List.iter
        (fun a -> Alcotest.(check bool) "irregular" true (Ir.Access.irregular a))
        (Ir.Stmt.accesses s))
    (Ir.Program.body_stmts wrapped)

let test_validate_catches_undeclared () =
  let good =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "a" E.i ]
      ~exec:(fun env -> Ir.Memory.set_float env.Ir.Env.mem "a" env.Ir.Env.j_inner 1.)
      "good"
  in
  let bad =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "a" E.i ]
      ~exec:(fun env ->
        (* Declared a[j], also touches a[j+1]: a footprint bug. *)
        Ir.Memory.set_float env.Ir.Env.mem "a" env.Ir.Env.j_inner 1.;
        Ir.Memory.set_float env.Ir.Env.mem "a" (env.Ir.Env.j_inner + 1) 2.)
      "bad"
  in
  let env = mk_env [ Ir.Memory.Floats ("a", Array.make 8 0.) ] in
  Alcotest.(check int) "good stmt clean" 0 (List.length (Ir.Validate.stmt env good));
  match Ir.Validate.stmt env bad with
  | [ v ] ->
      Alcotest.(check string) "culprit array" "a" v.Ir.Validate.arr;
      Alcotest.(check bool) "is a write" true v.Ir.Validate.write;
      Alcotest.(check int) "index" 1 v.Ir.Validate.idx
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_validate_program () =
  let p, fresh = small_program () in
  Alcotest.(check int) "small program footprints sound" 0
    (List.length (Ir.Validate.program p (fresh ())))

let test_forwarding_hazard () =
  (* A sequential-region statement rewriting the same scalar slot every
     outer iteration, feeding the bodies: the model cannot represent the
     queue value-forwarding the real MTCG would emit, so the plan is
     rejected. *)
  let pre =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "scal" (E.c 0) ]
      ~cost:(Ir.Stmt.fixed_cost 10.)
      ~exec:(fun env ->
        Ir.Memory.set_float env.Ir.Env.mem "scal" 0 (float_of_int env.Ir.Env.t_outer))
      "scal=f(t)"
  in
  let body =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "scal" (E.c 0) ]
      ~writes:[ Ir.Access.make "out" E.i ]
      ~cost:(Ir.Stmt.fixed_cost 200.)
      ~exec:(fun env ->
        Ir.Memory.set_float env.Ir.Env.mem "out" env.Ir.Env.j_inner
          (Ir.Memory.get_float env.Ir.Env.mem "scal" 0))
      "out[i]=scal"
  in
  let p =
    Ir.Program.make ~name:"fwd" ~outer_trip:3
      [ Ir.Program.inner ~pre:[ pre ] ~label:"L" ~trip:(Ir.Program.const_trip 4) [ body ] ]
  in
  let env =
    mk_env
      [ Ir.Memory.Floats ("scal", [| 0. |]); Ir.Memory.Floats ("out", Array.make 4 0.) ]
  in
  (match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable reason ->
      Alcotest.(check string) "forwarding rejected"
        "scheduler-to-worker value forwarding not representable" reason
  | Ir.Mtcg.Plan _ -> Alcotest.fail "expected rejection");
  (* Per-invocation slots are fine: the scheduler may run ahead. *)
  let pre_ok =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "slots" E.o ]
      ~cost:(Ir.Stmt.fixed_cost 10.)
      ~exec:(fun env ->
        Ir.Memory.set_float env.Ir.Env.mem "slots" env.Ir.Env.t_outer 1.)
      "slots[t]=f(t)"
  in
  let body_ok =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "slots" E.o ]
      ~writes:[ Ir.Access.make "out" E.i ]
      ~cost:(Ir.Stmt.fixed_cost 200.)
      ~exec:(fun env ->
        Ir.Memory.set_float env.Ir.Env.mem "out" env.Ir.Env.j_inner
          (Ir.Memory.get_float env.Ir.Env.mem "slots" env.Ir.Env.t_outer))
      "out[i]=slots[t]"
  in
  let p2 =
    Ir.Program.make ~name:"fwd2" ~outer_trip:3
      [
        Ir.Program.inner ~pre:[ pre_ok ] ~label:"L"
          ~trip:(Ir.Program.const_trip 4) [ body_ok ];
      ]
  in
  let env2 =
    mk_env
      [ Ir.Memory.Floats ("slots", Array.make 3 0.); Ir.Memory.Floats ("out", Array.make 4 0.) ]
  in
  match Ir.Mtcg.generate p2 env2 with
  | Ir.Mtcg.Plan _ -> ()
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "per-invocation slots rejected: %s" r

let test_error_contracts () =
  let env = mk_env [ Ir.Memory.Ints ("x", [| 1 |]); Ir.Memory.Floats ("f", [| 1. |]) ] in
  Alcotest.check_raises "unknown array"
    (Invalid_argument "Memory: unknown array nope") (fun () ->
      ignore (Ir.Memory.get_int env.Ir.Env.mem "nope" 0));
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Memory.get_int: f is a float array") (fun () ->
      ignore (Ir.Memory.get_int env.Ir.Env.mem "f" 0));
  Alcotest.check_raises "unknown param"
    (Invalid_argument "Env.param: unknown parameter n") (fun () ->
      ignore (E.eval env (E.Param "n")));
  Alcotest.check_raises "division by zero"
    (Invalid_argument "Expr.eval: division by zero") (fun () ->
      ignore (E.eval env (E.Bin (E.Div, E.c 1, E.c 0))));
  let p, _ = small_program () in
  Alcotest.check_raises "unknown inner"
    (Invalid_argument "Program.find_inner: no inner loop Z") (fun () ->
      ignore (Ir.Program.find_inner p "Z"));
  let env2 = Ir.Env.make ~params:[ ("n", 7) ] env.Ir.Env.mem in
  Alcotest.(check int) "param lookup" 7 (E.eval env2 (E.Param "n"))

let test_slice_for_contract () =
  let p, fresh = small_program () in
  match Ir.Mtcg.generate p (fresh ()) with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      Alcotest.(check int) "one per-inner slice" 1 (List.length plan.Ir.Mtcg.slices);
      let s = Ir.Mtcg.slice_for plan "L" in
      Alcotest.(check int) "inner slice covers body accesses" 2
        (List.length s.Ir.Slice.accesses);
      Alcotest.check_raises "unknown label"
        (Invalid_argument "Mtcg.slice_for: unknown inner nope") (fun () ->
          ignore (Ir.Mtcg.slice_for plan "nope"))

let test_dot_export () =
  let p, _ = small_program () in
  let pdg = Ir.Pdg.build p in
  let part = Ir.Partition.compute p pdg in
  let dot = Ir.Dot.pdg ~partition:part pdg in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 16 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "scheduler drawn as box" true
    (let rec contains i =
       i + 9 <= String.length dot
       && (String.sub dot i 9 = "shape=box" || contains (i + 1))
     in
     contains 0);
  let dag = Ir.Dot.dag_scc pdg in
  Alcotest.(check bool) "dag-scc renders" true (String.length dag > 16)

(* Random affine expressions: the symbolic normal form must agree with
   direct evaluation at random iteration points. *)
let affine_expr_gen =
  let open QCheck.Gen in
  let leaf = oneof [ return E.i; return E.o; map E.c (int_range (-20) 20) ] in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            map2
              (fun op (a, b) -> E.Bin (op, a, b))
              (oneofl [ E.Add; E.Sub ])
              (pair (go (n - 1)) (go (n - 1))) );
          (1, map2 (fun k e -> E.(c k * e)) (int_range (-5) 5) (go (n - 1)));
        ]
  in
  go 4

let prop_affine_agrees_with_eval =
  QCheck.Test.make ~name:"affine form agrees with evaluation" ~count:300
    (QCheck.make affine_expr_gen)
    (fun e ->
      match Ir.Affine.of_expr e with
      | None -> false (* this generator only builds affine expressions *)
      | Some { Ir.Affine.ci; co; k } ->
          List.for_all
            (fun (t, j) ->
              let env =
                Ir.Env.with_outer
                  (Ir.Env.with_inner (mk_env []) j)
                  t
              in
              E.eval env e = (ci * j) + (co * t) + k)
            [ (0, 0); (3, 5); (7, 2); (11, 13) ])

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"memory snapshot/restore round-trips" ~count:100
    QCheck.(pair (list (pair (int_range 0 15) (int_range (-100) 100))) small_int)
    (fun (mutations, _) ->
      let m =
        Ir.Memory.create
          [
            Ir.Memory.Ints ("a", Array.init 16 Fun.id);
            Ir.Memory.Floats ("b", Array.make 16 1.);
          ]
      in
      let snap = Ir.Memory.snapshot m in
      List.iter (fun (i, v) -> Ir.Memory.set_int m "a" i v) mutations;
      List.iter
        (fun (i, v) -> Ir.Memory.set_float m "b" i (float_of_int v))
        mutations;
      Ir.Memory.restore ~dst:m ~src:snap;
      Ir.Memory.equal m snap)

(* The sequential interpreter and the profiler must compute identical final
   states (the profiler only observes). *)
let prop_profiler_transparent =
  QCheck.Test.make ~name:"profiler does not perturb execution" ~count:50
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let p, fresh =
        Xinv_workloads.Synth.make
          { Xinv_workloads.Synth.default with Xinv_workloads.Synth.seed; outer = 4 }
      in
      let e1 = fresh () and e2 = fresh () in
      ignore (Ir.Seq_interp.run p e1);
      ignore (Ir.Profile.run p e2);
      Ir.Memory.equal e1.Ir.Env.mem e2.Ir.Env.mem)

let prop_stmt_ids_unique =
  QCheck.Test.make ~name:"stmt ids unique" ~count:20 QCheck.small_int (fun _ ->
      let a = Ir.Stmt.make "a" and b = Ir.Stmt.make "b" in
      a.Ir.Stmt.sid <> b.Ir.Stmt.sid)

let suite =
  [
    Alcotest.test_case "expr eval" `Quick test_expr_eval;
    Alcotest.test_case "expr helpers" `Quick test_expr_helpers;
    Alcotest.test_case "affine extraction" `Quick test_affine;
    Alcotest.test_case "affine overlap" `Quick test_affine_overlap;
    Alcotest.test_case "access conflicts" `Quick test_access;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "program shape" `Quick test_program_shape;
    Alcotest.test_case "seq interp" `Quick test_seq_interp;
    Alcotest.test_case "seq deterministic" `Quick test_seq_deterministic;
    Alcotest.test_case "pdg classification" `Quick test_pdg_classification;
    Alcotest.test_case "partition collapse" `Quick test_partition_collapse_on_residual;
    Alcotest.test_case "scc" `Quick test_scc;
    Alcotest.test_case "slice" `Quick test_slice;
    Alcotest.test_case "slice taint (fig 4.1)" `Quick test_slice_taint;
    Alcotest.test_case "profile" `Quick test_profile;
    Alcotest.test_case "profile manifest rate" `Quick test_profile_manifest_rate;
    Alcotest.test_case "profile deterministic" `Quick test_profile_deterministic;
    Alcotest.test_case "footprint" `Quick test_footprint;
    Alcotest.test_case "opaque wrapper" `Quick test_opaque;
    Alcotest.test_case "validate catches undeclared" `Quick test_validate_catches_undeclared;
    Alcotest.test_case "validate program" `Quick test_validate_program;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "forwarding hazard" `Quick test_forwarding_hazard;
    Alcotest.test_case "error contracts" `Quick test_error_contracts;
    Alcotest.test_case "per-inner slices" `Quick test_slice_for_contract;
    QCheck_alcotest.to_alcotest prop_affine_agrees_with_eval;
    QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
    QCheck_alcotest.to_alcotest prop_profiler_transparent;
    QCheck_alcotest.to_alcotest prop_stmt_ids_unique;
  ]
