(* Tests for the SPECCROSS speculative runtime: correctness under speculation,
   misspeculation detection and recovery, checkpointing, the profiler, and
   the non-speculative-barrier mode. *)

module Ir = Xinv_ir
module Par = Xinv_parallel
module Sp = Xinv_speccross
module Wl = Xinv_workloads

let synth ?(seed = 1) ?(cells = 200) ?(outer = 6) ?(trip = 10) ?(inners = 2) () =
  Wl.Synth.make
    { Wl.Synth.default with Wl.Synth.seed; cells; outer; trip; inners }

(* A variant whose dynamic accesses are globally unique: no cross-invocation
   dependence can ever manifest. *)
let synth_conflict_free ?(outer = 6) ?(trip = 10) ?(inners = 2) () =
  let total = outer * trip * inners in
  let p, fresh =
    Wl.Synth.make
      { Wl.Synth.default with Wl.Synth.seed = 1; cells = total; outer; trip; inners }
  in
  let fresh' () =
    let env = fresh () in
    for i = 0 to total - 1 do
      Ir.Memory.set_int env.Ir.Env.mem "tgt" i i
    done;
    env
  in
  (p, fresh')

let config ?(workers = 3) ?(checkpoint_every = 1000) ?(spec_distance = 1 lsl 20)
    ?(inject = None) ?(barriers = false) env =
  {
    (Sp.Runtime.default_config ~workers) with
    Sp.Runtime.sig_kind =
      Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env.Ir.Env.mem);
    checkpoint_every;
    spec_distance;
    inject_misspec = inject;
    non_spec_barriers = barriers;
  }

let run_spec ?workers ?checkpoint_every ?spec_distance ?inject ?barriers (p, fresh) =
  let seq_env = fresh () in
  let seq_cost = Ir.Seq_interp.run p seq_env in
  let env = fresh () in
  let cfg = config ?workers ?checkpoint_every ?spec_distance ?inject ?barriers env in
  let r = Sp.Runtime.run ~config:cfg p env in
  (seq_env, env, seq_cost, r)

let check_equal name seq_env env =
  Alcotest.(check int)
    (name ^ ": matches sequential")
    0
    (List.length (Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem))

let test_spec_correct_no_conflicts () =
  List.iter
    (fun workers ->
      let seq_env, env, _, r = run_spec ~workers (synth_conflict_free ()) in
      check_equal (Printf.sprintf "spec@%d" workers) seq_env env;
      Alcotest.(check int) "no misspeculation" 0 r.Par.Run.misspecs)
    [ 1; 2; 4; 8 ]

let test_spec_faster_than_barriers () =
  let p, fresh = synth_conflict_free ~outer:12 ~trip:8 () in
  let seq_cost = Ir.Seq_interp.run p (fresh ()) in
  let env_b = fresh () in
  let rb = Par.Barrier_exec.run ~threads:8 ~plan:(fun _ -> Par.Intra.Doall) p env_b in
  let _, _, _, rs = run_spec ~workers:7 (p, fresh) in
  Alcotest.(check bool) "speculative barriers win" true
    (Par.Run.speedup ~seq_cost rs > Par.Run.speedup ~seq_cost rb)

let test_misspec_detection_on_real_conflict () =
  (* Dense conflicts with unbounded speculation: the checker must catch a
     violation (or the schedule must happen to be safe), and the final state
     must match sequential either way. *)
  let p, fresh = synth ~seed:5 ~cells:8 ~outer:8 ~trip:6 () in
  let seq_env, env, _, r = run_spec ~workers:4 ~checkpoint_every:4 (p, fresh) in
  check_equal "recovered state" seq_env env;
  Alcotest.(check bool) "misspeculation detected" true (r.Par.Run.misspecs > 0)

let test_throttle_prevents_misspec () =
  (* A crafted program whose conflicts sit at exactly one invocation's
     distance: the profiled throttle must keep speculation safe. *)
  let trip = 6 in
  let p, fresh =
    Wl.Synth.make
      { Wl.Synth.default with Wl.Synth.seed = 5; cells = trip; outer = 8; trip; inners = 1 }
  in
  let fix env =
    for i = 0 to Ir.Memory.size env.Ir.Env.mem "tgt" - 1 do
      Ir.Memory.set_int env.Ir.Env.mem "tgt" i (i mod trip)
    done;
    env
  in
  let fresh () = fix (fresh ()) in
  let prof = Sp.Profiler.profile p (fresh ()) in
  (match prof.Sp.Profiler.min_task_distance with
  | Some d -> Alcotest.(check int) "distance is one invocation" trip d
  | None -> Alcotest.fail "expected profiled conflicts");
  let seq_env, env, _, r = run_spec ~workers:2 ~spec_distance:trip (p, fresh) in
  check_equal "throttled" seq_env env;
  Alcotest.(check int) "no misspeculation" 0 r.Par.Run.misspecs

let test_injected_misspec_recovers () =
  let p, fresh = synth ~seed:7 ~outer:8 () in
  let seq_env, env, _, r =
    run_spec ~workers:3 ~checkpoint_every:4 ~inject:(Some (9, 0)) (p, fresh)
  in
  check_equal "after recovery" seq_env env;
  Alcotest.(check int) "exactly one recovery" 1 r.Par.Run.misspecs

let test_injected_misspec_costs_time () =
  let p, fresh = synth ~seed:7 ~outer:8 () in
  let _, _, _, clean = run_spec ~workers:3 ~checkpoint_every:4 (p, fresh) in
  let _, _, _, dirty =
    run_spec ~workers:3 ~checkpoint_every:4 ~inject:(Some (9, 0)) (p, fresh)
  in
  Alcotest.(check bool) "recovery slows the run" true
    (dirty.Par.Run.makespan > clean.Par.Run.makespan)

let test_checkpoint_overhead_grows () =
  let p, fresh = synth ~seed:11 ~outer:16 () in
  let _, _, _, few = run_spec ~workers:3 ~checkpoint_every:16 (p, fresh) in
  let _, _, _, many = run_spec ~workers:3 ~checkpoint_every:1 (p, fresh) in
  Alcotest.(check bool) "checkpointing every epoch costs more" true
    (many.Par.Run.makespan > few.Par.Run.makespan)

let test_non_spec_barrier_mode () =
  let p, fresh = synth ~seed:13 () in
  let seq_env, env, _, r = run_spec ~workers:3 ~barriers:true (p, fresh) in
  check_equal "barrier mode" seq_env env;
  Alcotest.(check int) "no checking requests" 0 r.Par.Run.checks;
  Alcotest.(check bool) "barrier time charged" true
    (Par.Run.category_total r Xinv_sim.Category.Barrier_wait > 0.)

let test_checker_requests_counted () =
  let p, fresh = synth ~seed:17 () in
  let _, _, _, r = run_spec ~workers:3 (p, fresh) in
  Alcotest.(check int) "one request per task" r.Par.Run.tasks r.Par.Run.checks

let test_tm_style_costs_more () =
  let p, fresh = synth_conflict_free ~outer:10 ~trip:12 () in
  let run tm =
    let env = fresh () in
    let cfg = { (config ~workers:6 env) with Sp.Runtime.tm_style = tm } in
    Sp.Runtime.run ~config:cfg p env
  in
  let plain = run false and tm = run true in
  let checker (r : Par.Run.t) =
    Xinv_sim.Engine.total r.Par.Run.engine Xinv_sim.Category.Checker
  in
  Alcotest.(check bool) "TM checking strictly more expensive" true
    (checker tm > checker plain);
  Alcotest.(check int) "TM never misspeculates on independent epochs" 0
    tm.Par.Run.misspecs

let test_profiler () =
  let p, fresh = synth ~seed:19 ~cells:10 () in
  let prof = Sp.Profiler.profile p (fresh ()) in
  Alcotest.(check int) "epochs" (Ir.Program.invocations p) prof.Sp.Profiler.epochs;
  Alcotest.(check int) "tasks" (Ir.Program.total_iterations p (fresh ()))
    prof.Sp.Profiler.tasks;
  Alcotest.(check bool) "conflicts found on tight cells" true
    (prof.Sp.Profiler.min_task_distance <> None);
  Alcotest.(check bool) "profitability threshold" true
    (Sp.Profiler.profitable prof ~workers:1)

let test_profiler_conflict_free () =
  let p, fresh = synth ~seed:19 ~cells:100_000 ~outer:3 ~trip:5 ~inners:1 () in
  (* Make targets globally unique. *)
  let env = fresh () in
  let n = Ir.Memory.size env.Ir.Env.mem "tgt" in
  for i = 0 to n - 1 do
    Ir.Memory.set_int env.Ir.Env.mem "tgt" i i
  done;
  let prof = Sp.Profiler.profile p env in
  Alcotest.(check (option int)) "no distance" None prof.Sp.Profiler.min_task_distance;
  Alcotest.(check bool) "always profitable" true (Sp.Profiler.profitable prof ~workers:24)

let test_irreversible_epochs_exactly_once () =
  (* A frame loop with a side-effecting logging invocation: each occurrence
     must execute exactly once even when a later misspeculation forces
     recovery. *)
  let outer = 6 and trip = 8 in
  let work_p, fresh_work =
    Wl.Synth.make
      { Wl.Synth.default with Wl.Synth.seed = 3; cells = 30; outer; trip; inners = 1 }
  in
  let logger =
    Ir.Stmt.make ~side_effect:true
      ~writes:[ Ir.Access.make "log" Ir.Expr.o ]
      ~cost:(Ir.Stmt.fixed_cost 120.)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        Ir.Memory.set_float mem "log" env.Ir.Env.t_outer
          (Ir.Memory.get_float mem "log" env.Ir.Env.t_outer +. 1.))
      "emit(frame)"
  in
  let p =
    { work_p with
      Ir.Program.inners =
        work_p.Ir.Program.inners
        @ [ Ir.Program.inner ~label:"io" ~trip:(Ir.Program.const_trip 1) [ logger ] ] }
  in
  let fresh () =
    let base = fresh_work () in
    let specs =
      Ir.Memory.to_specs base.Ir.Env.mem @ [ Ir.Memory.Floats ("log", Array.make outer 0.) ]
    in
    Ir.Env.make (Ir.Memory.create specs)
  in
  let seq_env = fresh () in
  ignore (Ir.Seq_interp.run p seq_env);
  let env = fresh () in
  let cfg = config ~workers:3 ~checkpoint_every:1000 ~inject:(Some (4, 0)) env in
  let r = Sp.Runtime.run ~config:cfg p env in
  check_equal "with io epochs" seq_env env;
  Alcotest.(check bool) "misspeculation occurred" true (r.Par.Run.misspecs > 0);
  for t = 0 to outer - 1 do
    Alcotest.(check (float 1e-9)) "log written exactly once" 1.
      (Ir.Memory.get_float env.Ir.Env.mem "log" t)
  done

(* Property: speculation with recovery is semantically transparent for random
   conflict densities, worker counts, speculation ranges and checkpoint
   intervals. *)
let prop_spec_transparent =
  QCheck.Test.make ~name:"SPECCROSS always lands in the sequential state" ~count:40
    QCheck.(
      quad (int_range 1 10_000) (int_range 1 6) (int_range 12 60) (int_range 1 16))
    (fun (seed, workers, cells, every) ->
      let p, fresh =
        Wl.Synth.make
          { Wl.Synth.default with Wl.Synth.seed; cells; outer = 5; trip = 8 }
      in
      let seq_env = fresh () in
      ignore (Ir.Seq_interp.run p seq_env);
      let env = fresh () in
      let cfg = config ~workers ~checkpoint_every:every env in
      ignore (Sp.Runtime.run ~config:cfg p env);
      Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem)

(* Property: with the profiled distance as throttle, no misspeculation occurs
   when the performance input equals the profiling input. *)
let prop_profile_guided_no_misspec =
  QCheck.Test.make ~name:"profile-guided throttle avoids misspeculation" ~count:25
    QCheck.(pair (int_range 1 10_000) (int_range 2 6))
    (fun (seed, workers) ->
      let p, fresh =
        Wl.Synth.make
          { Wl.Synth.default with Wl.Synth.seed; cells = 24; outer = 5; trip = 8 }
      in
      let prof = Sp.Profiler.profile p (fresh ()) in
      let d =
        match prof.Sp.Profiler.min_task_distance with
        | Some d -> d
        | None -> 1 lsl 20
      in
      (* Below the worker count the planner would refuse to speculate. *)
      QCheck.assume (d >= workers);
      let env = fresh () in
      let cfg = config ~workers ~spec_distance:d env in
      let r = Sp.Runtime.run ~config:cfg p env in
      r.Par.Run.misspecs = 0)

let suite =
  [
    Alcotest.test_case "correct without conflicts" `Quick test_spec_correct_no_conflicts;
    Alcotest.test_case "faster than barriers" `Quick test_spec_faster_than_barriers;
    Alcotest.test_case "misspec detection" `Quick test_misspec_detection_on_real_conflict;
    Alcotest.test_case "throttle prevents misspec" `Quick test_throttle_prevents_misspec;
    Alcotest.test_case "injected misspec recovers" `Quick test_injected_misspec_recovers;
    Alcotest.test_case "misspec costs time" `Quick test_injected_misspec_costs_time;
    Alcotest.test_case "checkpoint overhead" `Quick test_checkpoint_overhead_grows;
    Alcotest.test_case "non-spec barrier mode" `Quick test_non_spec_barrier_mode;
    Alcotest.test_case "irreversible epochs" `Quick test_irreversible_epochs_exactly_once;
    Alcotest.test_case "checker request count" `Quick test_checker_requests_counted;
    Alcotest.test_case "tm-style checking costs" `Quick test_tm_style_costs_more;
    Alcotest.test_case "profiler" `Quick test_profiler;
    Alcotest.test_case "profiler conflict-free" `Quick test_profiler_conflict_free;
    QCheck_alcotest.to_alcotest prop_spec_transparent;
    QCheck_alcotest.to_alcotest prop_profile_guided_no_misspec;
  ]
