(* Tests for the experiment harness: registry lookup, id normalization, and
   the cheap renderers end-to-end. *)

module Exp = Xinv_experiments.Experiments
module Common = Xinv_experiments.Common
module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads

let test_registry_ids () =
  Alcotest.(check int) "eighteen experiments" 18 (List.length Exp.all);
  List.iter
    (fun id -> Alcotest.(check bool) ("find " ^ id) true ((Exp.find id).Exp.id = id))
    Exp.ids

let test_id_normalization () =
  Alcotest.(check string) "figure-5.2" "fig5.2" (Exp.find "figure-5.2").Exp.id;
  Alcotest.(check string) "bare number" "fig3.3" (Exp.find "3.3").Exp.id;
  Alcotest.(check string) "table5.1" "tab5.1" (Exp.find "table5.1").Exp.id;
  Alcotest.(check string) "case-insensitive" "fig5.6" (Exp.find "FIG5.6").Exp.id;
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument
       (Printf.sprintf "unknown experiment nope (known: %s)"
          (String.concat ", " Exp.ids)))
    (fun () -> ignore (Exp.find "nope"))

let test_fig1_4_renders () =
  let out = (Exp.find "fig1.4").Exp.render () in
  Alcotest.(check bool) "mentions barriers" true
    (Option.is_some (String.index_opt out 'b'));
  Alcotest.(check bool) "non-trivial output" true (String.length out > 400)

let test_fig2_2_shape () =
  let out = (Exp.find "fig2.2").Exp.render () in
  (* The dynamic-array variants must collapse to 1.00x. *)
  let occurrences needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i acc =
      if i + n > h then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "three collapsed bars" 3 (occurrences "1.00" out)

let test_sweep_and_render () =
  let wl = Wl.Registry.find "LLUBENCH" in
  let o = Common.speedup_at wl Cx.Barrier 4 in
  Alcotest.(check bool) "sane speedup" true (o.Cx.speedup > 0.5 && o.Cx.speedup < 4.5);
  let s =
    { Common.label = "x"; points = List.map (fun n -> (n, 1.0)) Common.threads_axis }
  in
  let rendered = Common.render_series ~title:"t" [ s ] in
  Alcotest.(check bool) "one row per thread count" true
    (List.length (String.split_on_char '\n' rendered)
    = 3 + List.length Common.threads_axis)

let test_spec_input_selection () =
  Alcotest.(check bool) "CG uses banded input" true
    (Common.spec_input (Wl.Registry.find "CG") = Wl.Workload.Ref_spec);
  Alcotest.(check bool) "others use ref" true
    (Common.spec_input (Wl.Registry.find "JACOBI") = Wl.Workload.Ref)

let test_verification_gate () =
  (* speedup_at must raise on a diverging run: simulate by asking for an
     inapplicable technique through execute's failure path. *)
  match Common.speedup_at (Wl.Registry.find "LOOPDEP") Cx.Domore 4 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure for inapplicable technique"

let suite =
  [
    Alcotest.test_case "registry ids" `Quick test_registry_ids;
    Alcotest.test_case "id normalization" `Quick test_id_normalization;
    Alcotest.test_case "fig1.4 renders" `Slow test_fig1_4_renders;
    Alcotest.test_case "fig2.2 collapse" `Slow test_fig2_2_shape;
    Alcotest.test_case "sweep and render" `Quick test_sweep_and_render;
    Alcotest.test_case "spec input selection" `Quick test_spec_input_selection;
    Alcotest.test_case "verification gate" `Quick test_verification_gate;
  ]
