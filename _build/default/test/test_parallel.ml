(* Tests for the intra-invocation baselines and the barrier execution model:
   every parallel schedule must produce the exact sequential memory state. *)

module Ir = Xinv_ir
module Par = Xinv_parallel
module Wl = Xinv_workloads

let verify_equal name seq_env env =
  let diff = Ir.Memory.diff seq_env.Ir.Env.mem env.Ir.Env.mem in
  Alcotest.(check int) (name ^ ": memory matches sequential") 0 (List.length diff)

let run_barrier ?(threads = 3) ~technique (p, fresh) =
  let seq_env = fresh () in
  let seq_cost = Ir.Seq_interp.run p seq_env in
  let env = fresh () in
  let r = Par.Barrier_exec.run ~threads ~plan:(fun _ -> technique) p env in
  (seq_env, env, seq_cost, r)

let synth ?(within_safe = true) ?(seed = 1) ?(inners = 2) () =
  Wl.Synth.make
    { Wl.Synth.default with Wl.Synth.within_safe; seed; inners; outer = 6; trip = 10 }

let test_doall_correct () =
  List.iter
    (fun threads ->
      let seq_env, env, _, _ = run_barrier ~threads ~technique:Par.Intra.Doall (synth ()) in
      verify_equal (Printf.sprintf "doall@%d" threads) seq_env env)
    [ 1; 2; 3; 8 ]

let test_doall_speedup_reasonable () =
  let _, _, seq_cost, r = run_barrier ~threads:4 ~technique:Par.Intra.Doall (synth ()) in
  let s = Par.Run.speedup ~seq_cost r in
  Alcotest.(check bool) "speedup within (0.1, 4]" true (s > 0.1 && s <= 4.0)

let test_localwrite_correct () =
  (* Conflicting within-invocation writes: LOCALWRITE must still match. *)
  List.iter
    (fun threads ->
      let seq_env, env, _, _ =
        run_barrier ~threads ~technique:Par.Intra.Localwrite
          (synth ~within_safe:false ~seed:5 ())
      in
      verify_equal (Printf.sprintf "localwrite@%d" threads) seq_env env)
    [ 1; 2; 3; 8 ]

let test_localwrite_redundant_accounting () =
  let _, _, _, r =
    run_barrier ~threads:4 ~technique:Par.Intra.Localwrite (synth ~within_safe:false ())
  in
  Alcotest.(check bool) "redundant time recorded" true
    (Par.Run.category_total r Xinv_sim.Category.Redundant > 0.)

let test_spec_doall_correct () =
  let seq_env, env, _, r =
    run_barrier ~threads:4 ~technique:Par.Intra.Spec_doall (synth ())
  in
  verify_equal "spec-doall" seq_env env;
  Alcotest.(check bool) "validation overhead charged" true
    (Par.Run.category_total r Xinv_sim.Category.Runtime > 0.)

(* DOANY needs commutative updates: build one directly. *)
let doany_program () =
  let at = Ir.Expr.ld "tgt" Ir.Expr.((o * c 6) + i) in
  let body =
    Ir.Stmt.make ~commutes:true
      ~reads:[ Ir.Access.make "acc" at ]
      ~writes:[ Ir.Access.make "acc" at ]
      ~cost:(Ir.Stmt.fixed_cost 80.)
      ~exec:(fun env ->
        let mem = env.Ir.Env.mem in
        let x = Ir.Expr.eval env at in
        Ir.Memory.set_float mem "acc" x (Ir.Memory.get_float mem "acc" x +. 2.))
      "acc+=2"
  in
  let p =
    Ir.Program.make ~name:"doany" ~outer_trip:5
      [ Ir.Program.inner ~label:"L" ~trip:(Ir.Program.const_trip 6) [ body ] ]
  in
  let fresh () =
    Ir.Env.make
      (Ir.Memory.create
         [
           Ir.Memory.Ints ("tgt", Array.init 30 (fun i -> i mod 4));
           Ir.Memory.Floats ("acc", Array.make 4 0.);
         ])
  in
  (p, fresh)

let test_doany_correct () =
  let seq_env, env, _, r = run_barrier ~threads:4 ~technique:Par.Intra.Doany (doany_program ()) in
  verify_equal "doany" seq_env env;
  ignore r

let test_barrier_counts () =
  let p, fresh = synth ~inners:3 () in
  let _, _, _, r = run_barrier ~threads:3 ~technique:Par.Intra.Doall (p, fresh) in
  Alcotest.(check int) "one barrier per invocation" (Ir.Program.invocations p)
    r.Par.Run.barrier_episodes;
  Alcotest.(check int) "invocations" (Ir.Program.invocations p) r.Par.Run.invocations;
  Alcotest.(check int) "tasks" (Ir.Program.total_iterations p (fresh ()))
    r.Par.Run.tasks;
  Alcotest.(check bool) "barrier overhead positive" true
    (Par.Run.barrier_overhead_pct r > 0.)

let test_doacross_correct () =
  let p, fresh = synth ~within_safe:false ~seed:9 () in
  let seq_env = fresh () in
  ignore (Ir.Seq_interp.run p seq_env);
  let env = fresh () in
  ignore (Par.Doacross.run ~threads:3 p env);
  verify_equal "doacross" seq_env env

let test_dswp_correct () =
  let p, fresh = synth ~within_safe:false ~seed:11 () in
  let seq_env = fresh () in
  ignore (Ir.Seq_interp.run p seq_env);
  let env = fresh () in
  let r = Par.Dswp.run ~threads:4 p env in
  verify_equal "dswp" seq_env env;
  Alcotest.(check bool) "stages computed" true (List.length (Par.Dswp.stages p) > 0);
  ignore r

let test_inspector_correct () =
  let p, fresh = synth ~within_safe:false ~seed:15 () in
  let seq_env = fresh () in
  ignore (Ir.Seq_interp.run p seq_env);
  let env = fresh () in
  (match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan -> ignore (Par.Inspector.run ~threads:4 ~plan p env));
  verify_equal "inspector-executor" seq_env env

let test_inspector_wavefronts () =
  (* Three iterations hitting cells a, a, b: waves 0, 1, 0. *)
  let at = Ir.Expr.ld "tgt" Ir.Expr.i in
  let body =
    Ir.Stmt.make
      ~reads:[ Ir.Access.make "d" at ]
      ~writes:[ Ir.Access.make "d" at ]
      ~cost:(Ir.Stmt.fixed_cost 300.) "w"
  in
  let p =
    Ir.Program.make ~name:"wf" ~outer_trip:1
      [ Ir.Program.inner ~label:"L" ~trip:(Ir.Program.const_trip 3) [ body ] ]
  in
  let env =
    Ir.Env.make
      (Ir.Memory.create
         [ Ir.Memory.Ints ("tgt", [| 0; 0; 1 |]); Ir.Memory.Floats ("d", Array.make 2 0.) ])
  in
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      let w = Par.Inspector.wavefronts plan.Ir.Mtcg.slice env ~trip:3 in
      Alcotest.(check (array int)) "wavefronts" [| 0; 1; 0 |] w

let test_tls_correct_and_squashes () =
  (* Conflict-dense program: TLS must squash at least once and still land in
     the sequential state. *)
  let p, fresh = synth ~within_safe:false ~seed:19 () in
  let seq_env = fresh () in
  ignore (Ir.Seq_interp.run p seq_env);
  let env = fresh () in
  (match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      let r = Par.Tls.run ~threads:4 ~plan p env in
      Alcotest.(check bool) "squashes observed" true (r.Par.Run.misspecs > 0));
  verify_equal "tls conflict-dense" seq_env env

let test_tls_no_squash_when_independent () =
  let p, fresh = synth ~seed:23 () in
  (* Distinct targets within each invocation and a large cell space: rare or
     no dynamic conflicts within an invocation. *)
  let seq_env = fresh () in
  ignore (Ir.Seq_interp.run p seq_env);
  let env = fresh () in
  (match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Inapplicable r -> Alcotest.failf "inapplicable: %s" r
  | Ir.Mtcg.Plan plan ->
      let r = Par.Tls.run ~threads:4 ~plan p env in
      Alcotest.(check int) "no squashes within invocations" 0 r.Par.Run.misspecs);
  verify_equal "tls independent" seq_env env

let test_plan_rules () =
  (* Conflict-free affine body -> DOALL. *)
  let affine_body =
    Ir.Stmt.make
      ~writes:[ Ir.Access.make "a" Ir.Expr.i ]
      ~cost:(Ir.Stmt.fixed_cost 10.) "w"
  in
  let p1 =
    Ir.Program.make ~name:"p1" ~outer_trip:2
      [ Ir.Program.inner ~label:"L" ~trip:(Ir.Program.const_trip 4) [ affine_body ] ]
  in
  (match Par.Plan.choose p1 with
  | [ c ] -> Alcotest.(check bool) "doall chosen" true (c.Par.Plan.technique = Par.Intra.Doall)
  | _ -> Alcotest.fail "one choice expected");
  (* Commutative irregular conflicts -> DOANY. *)
  let doany_p, _ = doany_program () in
  (match Par.Plan.choose doany_p with
  | [ c ] -> Alcotest.(check bool) "doany chosen" true (c.Par.Plan.technique = Par.Intra.Doany)
  | _ -> Alcotest.fail "one choice expected");
  (* Irregular non-commutative with single write -> LOCALWRITE (without a
     profile claiming they never manifest). *)
  let p3, _ = synth ~within_safe:false () in
  List.iter
    (fun c ->
      Alcotest.(check bool) "localwrite chosen" true
        (c.Par.Plan.technique = Par.Intra.Localwrite))
    (Par.Plan.choose p3);
  (* Same program, but a profile showing no within-invocation conflicts ->
     Spec-DOALL. *)
  let p4, fresh4 = synth ~within_safe:true () in
  let prof = Ir.Profile.run p4 (fresh4 ()) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "spec-doall chosen" true
        (c.Par.Plan.technique = Par.Intra.Spec_doall))
    (Par.Plan.choose ~profile:prof p4)

(* Property: iterations assigned to the same wavefront never conflict, and
   every iteration's dependences sit in strictly earlier wavefronts. *)
let prop_wavefronts_sound =
  QCheck.Test.make ~name:"inspector wavefronts are conflict-free levels" ~count:50
    QCheck.(pair (int_range 1 10_000) (int_range 2 24))
    (fun (seed, cells) ->
      let trip = 12 in
      let p, fresh =
        Wl.Synth.make
          {
            Wl.Synth.default with
            Wl.Synth.seed;
            cells;
            outer = 1;
            trip;
            inners = 1;
            within_safe = false;
          }
      in
      let env = fresh () in
      match Ir.Mtcg.generate p env with
      | Ir.Mtcg.Inapplicable _ -> false
      | Ir.Mtcg.Plan plan ->
          let slice = plan.Ir.Mtcg.slice in
          let wave = Par.Inspector.wavefronts slice env ~trip in
          let addr j =
            List.sort_uniq compare
              (Ir.Slice.addresses slice (Ir.Env.with_inner env j))
          in
          let conflict j k =
            List.exists (fun a -> List.mem a (addr k)) (addr j)
          in
          let ok = ref true in
          for j = 0 to trip - 1 do
            for k = j + 1 to trip - 1 do
              if conflict j k then begin
                (* Later conflicting iteration must be in a later wave. *)
                if wave.(k) <= wave.(j) then ok := false
              end
            done
          done;
          !ok)

(* Property: for random synthetic programs, barrier-parallel DOALL execution
   (legal because each invocation's targets are distinct) is exact. *)
let prop_barrier_exec_correct =
  QCheck.Test.make ~name:"barrier DOALL matches sequential on random programs"
    ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 1 6))
    (fun (seed, threads) ->
      let p, fresh =
        Wl.Synth.make
          { Wl.Synth.default with Wl.Synth.seed; outer = 4; trip = 8; cells = 30 }
      in
      let seq_env = fresh () in
      ignore (Ir.Seq_interp.run p seq_env);
      let env = fresh () in
      ignore (Par.Barrier_exec.run ~threads ~plan:(fun _ -> Par.Intra.Doall) p env);
      Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem)

(* Property: LOCALWRITE handles conflict-heavy random programs exactly. *)
let prop_localwrite_correct =
  QCheck.Test.make ~name:"LOCALWRITE matches sequential under conflicts" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 1 6))
    (fun (seed, threads) ->
      let p, fresh =
        Wl.Synth.make
          {
            Wl.Synth.default with
            Wl.Synth.seed;
            within_safe = false;
            outer = 4;
            trip = 8;
            cells = 12;
          }
      in
      let seq_env = fresh () in
      ignore (Ir.Seq_interp.run p seq_env);
      let env = fresh () in
      ignore (Par.Barrier_exec.run ~threads ~plan:(fun _ -> Par.Intra.Localwrite) p env);
      Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem)

let suite =
  [
    Alcotest.test_case "doall correct" `Quick test_doall_correct;
    Alcotest.test_case "doall speedup sane" `Quick test_doall_speedup_reasonable;
    Alcotest.test_case "localwrite correct" `Quick test_localwrite_correct;
    Alcotest.test_case "localwrite redundancy" `Quick test_localwrite_redundant_accounting;
    Alcotest.test_case "spec-doall correct" `Quick test_spec_doall_correct;
    Alcotest.test_case "doany correct" `Quick test_doany_correct;
    Alcotest.test_case "barrier accounting" `Quick test_barrier_counts;
    Alcotest.test_case "doacross correct" `Quick test_doacross_correct;
    Alcotest.test_case "dswp correct" `Quick test_dswp_correct;
    Alcotest.test_case "plan rules" `Quick test_plan_rules;
    Alcotest.test_case "tls correctness + squash" `Quick test_tls_correct_and_squashes;
    Alcotest.test_case "tls no squash when independent" `Quick test_tls_no_squash_when_independent;
    Alcotest.test_case "inspector-executor correct" `Quick test_inspector_correct;
    Alcotest.test_case "inspector wavefronts" `Quick test_inspector_wavefronts;
    QCheck_alcotest.to_alcotest prop_barrier_exec_correct;
    QCheck_alcotest.to_alcotest prop_wavefronts_sound;
    QCheck_alcotest.to_alcotest prop_localwrite_correct;
  ]
