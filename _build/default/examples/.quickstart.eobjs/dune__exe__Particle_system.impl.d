examples/particle_system.ml: List Printf Stdlib Xinv_core Xinv_domore Xinv_ir Xinv_parallel Xinv_runtime Xinv_speccross Xinv_workloads
