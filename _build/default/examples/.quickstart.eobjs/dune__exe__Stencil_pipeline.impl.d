examples/stencil_pipeline.ml: Array Float Format Printf Xinv_ir Xinv_parallel Xinv_runtime Xinv_speccross
