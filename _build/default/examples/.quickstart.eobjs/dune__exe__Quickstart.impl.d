examples/quickstart.ml: List Printf Xinv_core Xinv_workloads
