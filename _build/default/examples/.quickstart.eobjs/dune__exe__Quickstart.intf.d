examples/quickstart.mli:
