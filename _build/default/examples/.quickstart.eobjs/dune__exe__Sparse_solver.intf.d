examples/sparse_solver.mli:
