examples/particle_system.mli:
