examples/sparse_solver.ml: Array Float List Printf String Xinv_domore Xinv_ir Xinv_parallel Xinv_util
