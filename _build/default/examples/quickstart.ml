(* Quickstart: run a bundled benchmark under every applicable technique and
   compare against sequential execution.

     dune exec examples/quickstart.exe
*)

module Cx = Xinv_core.Crossinv
module Wl = Xinv_workloads

let () =
  let wl = Wl.Registry.find "CG" in
  Printf.printf "workload: %s (%s, function %s)\n\n" wl.Wl.Workload.name
    wl.Wl.Workload.suite wl.Wl.Workload.func;
  List.iter
    (fun technique ->
      match Cx.applicable technique wl with
      | Error reason ->
          Printf.printf "%-12s inapplicable: %s\n" (Cx.technique_name technique) reason
      | Ok () ->
          let o = Cx.execute ~technique ~threads:24 wl in
          Printf.printf "%-12s %6.2fx speedup on 24 simulated cores (verified: %b)\n"
            (Cx.technique_name technique) o.Cx.speedup o.Cx.verified)
    [ Cx.Barrier; Cx.Doacross; Cx.Dswp; Cx.Domore; Cx.Speccross ];
  print_newline ();
  (* The same loop nest on the conflict-free sparsity used for the
     speculative experiments. *)
  let o = Cx.execute ~input:Wl.Workload.Ref_spec ~technique:Cx.Speccross ~threads:24 wl in
  Printf.printf
    "speccross on the banded (conflict-free) input: %.2fx — barriers were pure waste\n"
    o.Cx.speedup
