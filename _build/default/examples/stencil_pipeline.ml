(* Building your own loop-nest program with the IR and running it under the
   speculative cross-invocation runtime.

   The program is a two-field relaxation pipeline: each timestep smooths
   field U into V, then folds V back into U.  The stencil halo makes
   consecutive invocations truly dependent, so barriers are needed — or
   SPECCROSS's speculative barriers with the profiled dependence distance.

     dune exec examples/stencil_pipeline.exe
*)

module Ir = Xinv_ir
module E = Xinv_ir.Expr
module Sp = Xinv_speccross
module Par = Xinv_parallel

let n = 120

let steps = 40

let smooth ~label ~src ~dst =
  Ir.Stmt.make
    ~reads:
      [
        Ir.Access.make src E.i;
        Ir.Access.make src E.(i + c 1);
        Ir.Access.make src E.(i + c 2);
      ]
    ~writes:[ Ir.Access.make dst E.(i + c 1) ]
    ~cost:(Ir.Stmt.fixed_cost 750.)
    ~exec:(fun env ->
      let mem = env.Ir.Env.mem in
      let j = env.Ir.Env.j_inner in
      let v =
        Ir.Memory.get_float mem src j
        +. Ir.Memory.get_float mem src (j + 1)
        +. Ir.Memory.get_float mem src (j + 2)
      in
      Ir.Memory.set_float mem dst (j + 1) (Float.rem v 1048576.0))
    label

let program =
  Ir.Program.make ~name:"relaxation" ~outer_trip:steps
    [
      Ir.Program.inner ~label:"smooth" ~trip:(Ir.Program.const_trip n)
        [ smooth ~label:"V=smooth(U)" ~src:"U" ~dst:"V" ];
      Ir.Program.inner ~label:"fold" ~trip:(Ir.Program.const_trip n)
        [ smooth ~label:"U=fold(V)" ~src:"V" ~dst:"U" ];
    ]

let fresh_env () =
  Ir.Env.make
    (Ir.Memory.create
       [
         Ir.Memory.Floats ("U", Array.init (n + 2) (fun i -> float_of_int (i mod 97)));
         Ir.Memory.Floats ("V", Array.make (n + 2) 0.);
       ])

let () =
  (* Sequential reference. *)
  let seq_env = fresh_env () in
  let seq_cost = Ir.Seq_interp.run program seq_env in
  Printf.printf "sequential: %.0f virtual cycles over %d invocations\n" seq_cost
    (Ir.Program.invocations program);

  (* Profile the dependence distance (here: one invocation's worth). *)
  let prof = Sp.Profiler.profile program (fresh_env ()) in
  Format.printf "%a@\n@." Sp.Profiler.pp prof;

  (* Barrier-parallel vs speculative barriers, 16 cores. *)
  let env_b = fresh_env () in
  let rb =
    Par.Barrier_exec.run ~threads:16 ~plan:(fun _ -> Par.Intra.Doall) program env_b
  in
  assert (Ir.Memory.equal seq_env.Ir.Env.mem env_b.Ir.Env.mem);
  Printf.printf "pthread barriers : %5.2fx  (%.0f%% of core time at barriers)\n"
    (Par.Run.speedup ~seq_cost rb)
    (Par.Run.barrier_overhead_pct rb);

  let env_s = fresh_env () in
  let cfg =
    {
      (Sp.Runtime.default_config ~workers:15) with
      Sp.Runtime.sig_kind =
        Xinv_runtime.Signature.Segmented (Ir.Memory.bounds env_s.Ir.Env.mem);
      spec_distance = prof.Sp.Profiler.spec_distance;
    }
  in
  let rs = Sp.Runtime.run ~config:cfg program env_s in
  assert (Ir.Memory.equal seq_env.Ir.Env.mem env_s.Ir.Env.mem);
  Printf.printf "speculative      : %5.2fx  (%d checking requests, %d misspeculations)\n"
    (Par.Run.speedup ~seq_cost rs)
    rs.Par.Run.checks rs.Par.Run.misspecs
