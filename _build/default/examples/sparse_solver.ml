(* Running the DOMORE compile-time pipeline by hand on a sparse-update
   kernel: build the PDG, partition into scheduler and workers, generate the
   computeAddr slice, inspect the generated pseudo-code, and execute.

   The kernel scatters updates through an index array the compiler cannot
   analyze — ~60% of rows collide with an earlier row, so speculation would
   misspeculate constantly, while DOMORE synchronizes exactly the colliding
   iterations.

     dune exec examples/sparse_solver.exe
*)

module Ir = Xinv_ir
module E = Xinv_ir.Expr
module Dm = Xinv_domore
module Par = Xinv_parallel

let rows = 300

let row_len = 8

let build_input () =
  let rng = Xinv_util.Prng.create ~seed:2024 in
  let nnz = rows * row_len in
  let col = Array.make nnz 0 in
  let perm = Array.init nnz (fun i -> i) in
  Xinv_util.Prng.shuffle rng perm;
  let fresh = ref 0 in
  for t = 0 to rows - 1 do
    for k = 0 to row_len - 1 do
      col.((t * row_len) + k) <-
        (if k = 0 && t > 0 && Xinv_util.Prng.chance rng 0.6 then
           col.(Xinv_util.Prng.int rng (t * row_len))
         else begin
           incr fresh;
           perm.(!fresh - 1)
         end)
    done
  done;
  Ir.Memory.create
    [
      Ir.Memory.Ints ("col", col);
      Ir.Memory.Floats ("x", Array.init nnz (fun i -> float_of_int (i mod 211)));
    ]

let col_at = E.ld "col" E.((o * c row_len) + i)

let update =
  Ir.Stmt.make
    ~reads:[ Ir.Access.make "x" col_at ]
    ~writes:[ Ir.Access.make "x" col_at ]
    ~cost:(Ir.Stmt.fixed_cost 1100.)
    ~exec:(fun env ->
      let mem = env.Ir.Env.mem in
      let c = E.eval env col_at in
      let v = Ir.Memory.get_float mem "x" c in
      Ir.Memory.set_float mem "x" c (Float.rem ((3. *. v) +. 1.) 1048576.0))
    "x[col[r,k]] = relax(x)"

let program =
  Ir.Program.make ~name:"sparse-solver" ~outer_trip:rows
    [ Ir.Program.inner ~label:"row" ~trip:(Ir.Program.const_trip row_len) [ update ] ]

let () =
  let env = Ir.Env.make (build_input ()) in

  (* Compile-time pipeline, step by step. *)
  let pdg = Ir.Pdg.build program in
  Printf.printf "PDG: %d statements, %d dependence edges\n"
    (List.length pdg.Ir.Pdg.stmts) (List.length pdg.Ir.Pdg.edges);
  let part = Ir.Partition.compute program pdg in
  Printf.printf "partition: %d scheduler stmts, %d worker stmts (pipeline ok: %b)\n"
    (List.length (Ir.Partition.scheduler_stmts part pdg))
    (List.length (Ir.Partition.worker_stmts part pdg))
    (Ir.Partition.pipeline_ok part pdg);
  (match Ir.Slice.compute_addr program part pdg with
  | Ir.Slice.Sliceable slice ->
      Printf.printf "computeAddr: %d accesses through %s (%.0f cycles/iteration)\n"
        (List.length slice.Ir.Slice.accesses)
        (String.concat ", " slice.Ir.Slice.index_arrays)
        (Ir.Slice.cost_per_iter slice)
  | Ir.Slice.Inapplicable r -> Printf.printf "slice rejected: %s\n" r);

  match Ir.Mtcg.generate program env with
  | Ir.Mtcg.Inapplicable r -> Printf.printf "DOMORE inapplicable: %s\n" r
  | Ir.Mtcg.Plan plan ->
      print_endline "\ngenerated multithreaded code:";
      print_endline (Ir.Mtcg.render plan);

      (* Sequential baseline on a second copy of the state. *)
      let seq_env = Ir.Env.make (build_input ()) in
      let seq_cost = Ir.Seq_interp.run program seq_env in

      List.iter
        (fun workers ->
          let env = Ir.Env.make (build_input ()) in
          let config =
            {
              (Dm.Domore.default_config ~workers) with
              Dm.Domore.policy = Dm.Policy.Mem_partition;
            }
          in
          let r = Dm.Domore.run ~config ~plan program env in
          assert (Ir.Memory.equal seq_env.Ir.Env.mem env.Ir.Env.mem);
          Printf.printf
            "DOMORE with %2d workers: %5.2fx (%d dynamic sync conditions over %d tasks)\n"
            workers
            (Par.Run.speedup ~seq_cost r)
            r.Par.Run.checks r.Par.Run.tasks)
        [ 3; 7; 15; 23 ]
