type t =
  | Wait of { dep_tid : int; dep_iter : int }
  | No_sync of { iter : int }
  | End_token

let pp ppf = function
  | Wait { dep_tid; dep_iter } -> Format.fprintf ppf "(T%d, I%d)" dep_tid dep_iter
  | No_sync { iter } -> Format.fprintf ppf "(NO_SYNC, I%d)" iter
  | End_token -> Format.fprintf ppf "END_TOKEN"

let equal a b = a = b
