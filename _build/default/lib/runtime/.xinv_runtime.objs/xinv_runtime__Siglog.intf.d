lib/runtime/siglog.mli: Signature
