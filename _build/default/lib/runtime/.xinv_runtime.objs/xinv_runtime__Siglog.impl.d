lib/runtime/siglog.ml: Array Hashtbl List Signature
