lib/runtime/sync_cond.mli: Format
