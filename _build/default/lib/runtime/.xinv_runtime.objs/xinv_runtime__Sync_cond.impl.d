lib/runtime/sync_cond.ml: Format
