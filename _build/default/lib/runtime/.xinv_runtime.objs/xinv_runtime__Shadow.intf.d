lib/runtime/shadow.mli:
