lib/runtime/checkpoint.ml: Option Xinv_ir
