lib/runtime/signature.ml: Array Format Hashtbl Int64 List Stdlib
