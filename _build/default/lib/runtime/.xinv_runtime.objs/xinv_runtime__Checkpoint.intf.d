lib/runtime/checkpoint.mli: Xinv_ir
