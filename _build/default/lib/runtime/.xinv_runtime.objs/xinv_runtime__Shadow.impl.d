lib/runtime/shadow.ml: Hashtbl List Stdlib
