lib/runtime/signature.mli: Format
