type entry = { tid : int; iter : int }

(* Per address: the last write, plus the latest read per worker since that
   write.  A write must wait for every foreign reader's latest read (waiting
   for a worker's latest iteration covers its earlier ones, since each worker
   executes its iterations in dispatch order); reads only wait for the last
   write, so read-after-read never synchronizes. *)
type slot = { mutable w : entry option; mutable rs : (int * int) list }

type t = (int, slot) Hashtbl.t

let create () = Hashtbl.create 4096

let slot sh addr =
  match Hashtbl.find_opt sh addr with
  | Some s -> s
  | None ->
      let s = { w = None; rs = [] } in
      Hashtbl.replace sh addr s;
      s

let foreign e = function Some d when d.tid <> e.tid -> [ d ] | _ -> []

let note_read sh addr e =
  let s = slot sh addr in
  let deps = foreign e s.w in
  let rest = List.remove_assoc e.tid s.rs in
  let prev = try List.assoc e.tid s.rs with Not_found -> min_int in
  s.rs <- (e.tid, Stdlib.max prev e.iter) :: rest;
  deps

let note_write sh addr e =
  let s = slot sh addr in
  let readers =
    List.filter_map
      (fun (tid, iter) -> if tid <> e.tid then Some { tid; iter } else None)
      s.rs
  in
  let deps = foreign e s.w @ readers in
  s.w <- Some e;
  s.rs <- [];
  deps

let last_write sh addr =
  match Hashtbl.find_opt sh addr with Some s -> s.w | None -> None

let reset sh = Hashtbl.reset sh

let entries sh = Hashtbl.length sh
