(** Synchronization conditions forwarded from the DOMORE scheduler to the
    workers (dissertation §3.2.2).

    [Wait] tells a worker to stall until another worker finishes a given
    combined iteration; [No_sync] releases the iteration it names;
    [End_token] terminates a worker. *)

type t =
  | Wait of { dep_tid : int; dep_iter : int }
  | No_sync of { iter : int }
  | End_token

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
