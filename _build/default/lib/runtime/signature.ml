type kind =
  | Range
  | Segmented of int array
  | Bloom of { bits : int; hashes : int }
  | Exact

type seg_repr = { bounds : int array; ranges : (int, int * int) Hashtbl.t }

type repr =
  | R_range of { mutable lo : int; mutable hi : int }
  | R_seg of seg_repr
  | R_bloom of { bits : int; hashes : int; words : int array }
  | R_exact of (int, unit) Hashtbl.t

(* Index of the segment containing [addr]: greatest i with bounds.(i) <= addr. *)
let segment_of bounds addr =
  let lo = ref 0 and hi = ref (Array.length bounds - 1) in
  assert (Array.length bounds > 0 && addr >= bounds.(0));
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if bounds.(mid) <= addr then lo := mid else hi := mid - 1
  done;
  !lo

type t = { k : kind; repr : repr; mutable adds : int }

let create k =
  let repr =
    match k with
    | Range -> R_range { lo = max_int; hi = min_int }
    | Segmented bounds ->
        assert (Array.length bounds > 0);
        R_seg { bounds; ranges = Hashtbl.create 8 }
    | Bloom { bits; hashes } ->
        assert (bits > 0 && hashes > 0);
        R_bloom { bits; hashes; words = Array.make (((bits - 1) / 63) + 1) 0 }
    | Exact -> R_exact (Hashtbl.create 64)
  in
  { k; repr; adds = 0 }

let kind t = t.k

(* splitmix-style avalanche, salted per hash function. *)
let hash salt addr =
  let z = Int64.of_int ((addr * 0x9E3779B9) lxor (salt * 0x85EBCA6B)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

let set_bit words bits salt addr =
  let b = hash salt addr mod bits in
  words.(b / 63) <- words.(b / 63) lor (1 lsl (b mod 63))

let add t addr =
  t.adds <- t.adds + 1;
  match t.repr with
  | R_range r ->
      if addr < r.lo then r.lo <- addr;
      if addr > r.hi then r.hi <- addr
  | R_seg sgm ->
      let seg = segment_of sgm.bounds addr in
      let lo, hi =
        match Hashtbl.find_opt sgm.ranges seg with
        | Some (lo, hi) -> (Stdlib.min lo addr, Stdlib.max hi addr)
        | None -> (addr, addr)
      in
      Hashtbl.replace sgm.ranges seg (lo, hi)
  | R_bloom b ->
      for s = 0 to b.hashes - 1 do
        set_bit b.words b.bits s addr
      done
  | R_exact h -> Hashtbl.replace h addr ()

let add_list t addrs = List.iter (add t) addrs

let count t = t.adds

let is_empty t = t.adds = 0

let intersects a b =
  if is_empty a || is_empty b then false
  else
    match (a.repr, b.repr) with
    | R_range ra, R_range rb -> ra.lo <= rb.hi && rb.lo <= ra.hi
    | R_seg sa, R_seg sb ->
        let small, large =
          if Hashtbl.length sa.ranges <= Hashtbl.length sb.ranges then (sa, sb)
          else (sb, sa)
        in
        Hashtbl.fold
          (fun seg (lo, hi) acc ->
            acc
            ||
            match Hashtbl.find_opt large.ranges seg with
            | Some (lo', hi') -> lo <= hi' && lo' <= hi
            | None -> false)
          small.ranges false
    | R_bloom ba, R_bloom bb ->
        assert (ba.bits = bb.bits && ba.hashes = bb.hashes);
        (* Conservative: an address present in both sets every one of its
           bits in both filters; we test whether any word shares bits, which
           over-approximates membership overlap. *)
        let shared = ref false in
        Array.iteri (fun i w -> if w land bb.words.(i) <> 0 then shared := true) ba.words;
        !shared
    | R_exact ha, R_exact hb ->
        let small, large = if Hashtbl.length ha <= Hashtbl.length hb then (ha, hb) else (hb, ha) in
        Hashtbl.fold (fun addr () acc -> acc || Hashtbl.mem large addr) small false
    | _ -> invalid_arg "Signature.intersects: kind mismatch"

let merge ~into src =
  match (into.repr, src.repr) with
  | R_range a, R_range b ->
      if b.lo < a.lo then a.lo <- b.lo;
      if b.hi > a.hi then a.hi <- b.hi;
      into.adds <- into.adds + src.adds
  | R_seg a, R_seg b ->
      Hashtbl.iter
        (fun seg (lo, hi) ->
          let lo', hi' =
            match Hashtbl.find_opt a.ranges seg with
            | Some (l, h) -> (Stdlib.min l lo, Stdlib.max h hi)
            | None -> (lo, hi)
          in
          Hashtbl.replace a.ranges seg (lo', hi'))
        b.ranges;
      into.adds <- into.adds + src.adds
  | R_bloom a, R_bloom b ->
      assert (a.bits = b.bits && a.hashes = b.hashes);
      Array.iteri (fun i w -> a.words.(i) <- a.words.(i) lor w) b.words;
      into.adds <- into.adds + src.adds
  | R_exact a, R_exact b ->
      Hashtbl.iter (fun addr () -> Hashtbl.replace a addr ()) b;
      into.adds <- into.adds + src.adds
  | _ -> invalid_arg "Signature.merge: kind mismatch"

let pp ppf t =
  match t.repr with
  | R_range r ->
      if is_empty t then Format.fprintf ppf "range(empty)"
      else Format.fprintf ppf "range[%d, %d]" r.lo r.hi
  | R_seg sgm -> Format.fprintf ppf "segmented(%d segments)" (Hashtbl.length sgm.ranges)
  | R_bloom b -> Format.fprintf ppf "bloom(%d bits, %d adds)" b.bits t.adds
  | R_exact h -> Format.fprintf ppf "exact(%d addrs)" (Hashtbl.length h)
