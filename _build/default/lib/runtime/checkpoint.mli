(** Checkpoint store for misspeculation recovery (dissertation §4.2.2).

    The real runtime forks the process and parks the child; we snapshot the
    simulated shared memory.  Only the most recent checkpoint is retained —
    recovery always restores the latest safe state. *)

type t

val create : unit -> t

val save : t -> epoch:int -> Xinv_ir.Memory.t -> unit
(** Snapshot the memory as the state at the start of [epoch]. *)

val latest_epoch : t -> int option

val restore : t -> into:Xinv_ir.Memory.t -> int
(** Copy the latest snapshot back into live memory; returns the epoch the
    snapshot was taken at.  @raise Invalid_argument when no checkpoint. *)

val saves : t -> int
(** Number of checkpoints taken so far. *)
