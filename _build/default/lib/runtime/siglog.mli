(** Signature log (dissertation Figure 4.8).

    Per-worker, per-epoch storage of task signatures.  The checker queries
    the window of another worker's signatures between the epoch/task position
    observed when a task began and the task's own epoch; entries older than
    the last checkpoint are recycled. *)

type t

val create : workers:int -> t

val store : t -> worker:int -> epoch:int -> task:int -> Signature.t -> unit

val between :
  t -> worker:int -> from_epoch:int -> from_task:int -> upto_epoch:int ->
  (int * int * Signature.t) list
(** [(epoch, task, signature)] entries of [worker] with
    [from_epoch <= epoch < upto_epoch], excluding tasks before [from_task]
    within [from_epoch]; oldest first. *)

val clear_before : t -> epoch:int -> unit
(** Drop entries of epochs [< epoch] (after a checkpoint). *)

val stored : t -> int
(** Total signatures currently held. *)
