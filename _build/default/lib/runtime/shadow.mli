(** DOMORE shadow memory (dissertation §3.2.1).

    Tracks, per flat address, the worker/iteration of the most recent write
    and of the most recent read, so the scheduler emits synchronization
    conditions for true, anti and output dependences but not for
    read-after-read. *)

type t

type entry = { tid : int; iter : int }

val create : unit -> t

val note_read : t -> int -> entry -> entry list
(** Record a read; returns the prior conflicting access (the last write, if
    by another worker) the reader must wait for. *)

val note_write : t -> int -> entry -> entry list
(** Record a write; returns prior conflicting accesses by other workers
    (last write and last read). *)

val last_write : t -> int -> entry option

val reset : t -> unit

val entries : t -> int
(** Number of addresses currently tracked. *)
