type t = { logs : (int, (int * Signature.t) list) Hashtbl.t array }

(* logs.(w) maps epoch -> (task, signature) list, newest first. *)

let create ~workers =
  assert (workers > 0);
  { logs = Array.init workers (fun _ -> Hashtbl.create 64) }

let store t ~worker ~epoch ~task sg =
  let tbl = t.logs.(worker) in
  let cur = try Hashtbl.find tbl epoch with Not_found -> [] in
  Hashtbl.replace tbl epoch ((task, sg) :: cur)

let between t ~worker ~from_epoch ~from_task ~upto_epoch =
  let tbl = t.logs.(worker) in
  let out = ref [] in
  for e = from_epoch to upto_epoch - 1 do
    match Hashtbl.find_opt tbl e with
    | None -> ()
    | Some entries ->
        List.iter
          (fun (task, sg) ->
            if e > from_epoch || task >= from_task then out := (e, task, sg) :: !out)
          entries
  done;
  List.sort (fun (e1, t1, _) (e2, t2, _) -> compare (e1, t1) (e2, t2)) !out

let clear_before t ~epoch =
  Array.iter
    (fun tbl ->
      let stale = Hashtbl.fold (fun e _ acc -> if e < epoch then e :: acc else acc) tbl [] in
      List.iter (Hashtbl.remove tbl) stale)
    t.logs

let stored t =
  Array.fold_left
    (fun acc tbl -> Hashtbl.fold (fun _ l a -> a + List.length l) tbl acc)
    0 t.logs
