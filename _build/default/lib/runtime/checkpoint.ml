type t = {
  mutable snap : (int * Xinv_ir.Memory.t) option;
  mutable saves : int;
}

let create () = { snap = None; saves = 0 }

let save t ~epoch mem =
  t.snap <- Some (epoch, Xinv_ir.Memory.snapshot mem);
  t.saves <- t.saves + 1

let latest_epoch t = Option.map fst t.snap

let restore t ~into =
  match t.snap with
  | None -> invalid_arg "Checkpoint.restore: no checkpoint saved"
  | Some (epoch, snap) ->
      Xinv_ir.Memory.restore ~dst:into ~src:snap;
      epoch

let saves t = t.saves
