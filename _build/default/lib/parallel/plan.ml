module Ir = Xinv_ir

type choice = { label : string; technique : Intra.technique; reason : string }

(* Cross-iteration edges restricted to one inner loop's body. *)
let cross_iter_edges (pdg : Ir.Pdg.t) ii =
  List.filter
    (fun (e : Ir.Pdg.edge) ->
      e.Ir.Pdg.kind = Ir.Pdg.Cross_iter
      && (Ir.Pdg.loc_of pdg e.Ir.Pdg.src).Ir.Pdg.inner_idx = ii
      && (Ir.Pdg.loc_of pdg e.Ir.Pdg.dst).Ir.Pdg.inner_idx = ii)
    pdg.Ir.Pdg.edges

let localwrite_ok (il : Ir.Program.inner) =
  List.for_all
    (fun (s : Ir.Stmt.t) -> List.length s.Ir.Stmt.writes <= 1)
    il.Ir.Program.body
  && List.exists (fun (s : Ir.Stmt.t) -> s.Ir.Stmt.writes <> []) il.Ir.Program.body

(* Did any cross-iteration dependence manifest within an invocation of this
   inner loop, according to the profile? *)
let profiled_within (profile : Ir.Profile.result option) (pdg : Ir.Pdg.t) ii =
  match profile with
  | None -> true (* unknown: assume they manifest *)
  | Some prof ->
      List.exists
        (fun ((src, dst), (stat : Ir.Profile.pair_stat)) ->
          stat.Ir.Profile.within > 0
          && (try
                (Ir.Pdg.loc_of pdg src).Ir.Pdg.inner_idx = ii
                && (Ir.Pdg.loc_of pdg dst).Ir.Pdg.inner_idx = ii
              with Invalid_argument _ -> false))
        prof.Ir.Profile.pairs

let choose ?profile (p : Ir.Program.t) =
  let pdg = Ir.Pdg.build p in
  List.mapi
    (fun ii (il : Ir.Program.inner) ->
      let label = il.Ir.Program.ilabel in
      let xiter = cross_iter_edges pdg ii in
      if xiter = [] then
        { label; technique = Intra.Doall; reason = "no cross-iteration dependence" }
      else begin
        let conflicting_sids =
          List.concat_map (fun (e : Ir.Pdg.edge) -> [ e.Ir.Pdg.src; e.Ir.Pdg.dst ]) xiter
          |> List.sort_uniq compare
        in
        let all_commute =
          List.for_all
            (fun sid -> (Ir.Pdg.stmt_of pdg sid).Ir.Stmt.commutes)
            conflicting_sids
        in
        if all_commute then
          { label; technique = Intra.Doany; reason = "conflicting updates commute" }
        else if not (profiled_within profile pdg ii) then
          {
            label;
            technique = Intra.Spec_doall;
            reason = "static may-dependences never manifest within an invocation";
          }
        else if localwrite_ok il then
          {
            label;
            technique = Intra.Localwrite;
            reason = "irregular writes partition by owner";
          }
        else
          failwith
            (Printf.sprintf "Plan.choose: inner loop %s not parallelizable" label)
      end)
    p.Ir.Program.inners

let technique_for choices label =
  match List.find_opt (fun c -> String.equal c.label label) choices with
  | Some c -> c.technique
  | None -> invalid_arg (Printf.sprintf "Plan.technique_for: no choice for %s" label)

let speccross_applicable (p : Ir.Program.t) =
  (* Irreversible statements are legal: their epochs execute non-speculatively
     between checkpoints (§4.2.2). *)
  match choose p with
    | exception Failure msg -> Error msg
  | choices ->
      if
        List.exists
          (fun c -> match c.technique with Intra.Spec_doall -> true | _ -> false)
          choices
      then Error "inner loop needs speculative parallelization"
      else Ok ()

let domore_applicable (p : Ir.Program.t) env =
  match Ir.Mtcg.generate p env with
  | Ir.Mtcg.Plan _ -> Ok ()
  | Ir.Mtcg.Inapplicable reason -> Error reason
